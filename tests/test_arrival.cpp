// Arrival-process tests: registry round-trips, per-model release-time
// laws (bounds, separations, empirical rates for the Poisson/IPPP
// models), trace replay, fingerprints — and the integration contracts:
// `periodic` is bit-identical to the pre-subsystem simulator (golden
// metrics captured at the pre-refactor HEAD), arrival-model sweeps on
// the engine are thread-count-invariant, and the empirical release
// rate read back off a Chrome-trace log matches the configured
// Poisson/IPPP rate (the trace-based diagnostic).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "arrival/arrival.hpp"
#include "exp/factories.hpp"
#include "obs/trace_log.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "tgff/workload.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Draws releases until `horizon` (or `max_count`) and returns them.
std::vector<double> draw_releases(arrival::ArrivalProcess& process,
                                  util::Rng& rng, double horizon,
                                  std::size_t max_count = 1000000) {
  std::vector<double> times;
  double prev = -1.0;
  while (times.size() < max_count) {
    const double next = process.next_release(prev, rng);
    if (next >= horizon) {
      break;
    }
    times.push_back(next);
    prev = next;
  }
  return times;
}

// ------------------------------------------------------------ registry

TEST(Arrival, RegistryListsEveryModelAndMakesThem) {
  const auto& names = arrival::labels();
  ASSERT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    arrival::Spec spec;
    spec.model = name;
    if (name == "trace-replay") {
      spec.params.trace = "0;1;2";
    }
    const auto process = arrival::make(spec, 1.0);
    ASSERT_NE(process, nullptr) << name;
    EXPECT_EQ(process->label(), name);
  }
}

TEST(Arrival, UnknownModelAndBadParamsThrow) {
  arrival::Spec spec;
  spec.model = "uniform";  // not a thing
  EXPECT_THROW(arrival::make(spec, 1.0), std::invalid_argument);
  EXPECT_THROW(arrival::fingerprint(spec), std::invalid_argument);

  spec = arrival::Spec{};
  EXPECT_THROW(arrival::make(spec, 0.0), std::invalid_argument);

  spec = arrival::Spec{{"periodic-jitter"}, {}};
  spec.params.jitter_frac = 1.0;  // would break monotonicity
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);

  spec = arrival::Spec{{"sporadic"}, {}};
  spec.params.gap_frac = -0.1;
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);

  spec = arrival::Spec{{"poisson"}, {}};
  spec.params.rate_scale = 0.0;
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);

  spec = arrival::Spec{{"ippp"}, {}};
  spec.params.diurnal_amp = 1.5;
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);

  spec = arrival::Spec{{"ippp"}, {}};
  spec.params.burst_period_s = 10.0;
  spec.params.burst_duty = 0.0;
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);

  spec = arrival::Spec{{"trace-replay"}, {}};  // no trace given
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);
  spec.params.trace = "1;banana;3";
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);
  spec.params.trace = "@/nonexistent/bas-arrival-trace.csv";
  EXPECT_THROW(arrival::validate(spec), std::invalid_argument);
}

TEST(Arrival, FingerprintCoversOnlyTheModelsOwnKnobs) {
  arrival::Spec poisson{{"poisson"}, {}};
  const auto base = arrival::fingerprint(poisson);
  EXPECT_NE(base.find("arrival=poisson"), std::string::npos);

  // An unrelated knob must not perturb the fingerprint (campaign caches
  // would invalidate spuriously)...
  auto tweaked = poisson;
  tweaked.params.jitter_frac = 0.9;
  EXPECT_EQ(arrival::fingerprint(tweaked), base);
  // ...but the model's own knob must.
  tweaked = poisson;
  tweaked.params.rate_scale = 2.0;
  EXPECT_NE(arrival::fingerprint(tweaked), base);

  arrival::Spec periodic{{"periodic"}, {}};
  EXPECT_EQ(arrival::fingerprint(periodic), "arrival=periodic");

  // ippp's gated knobs enter only while their gate is live: with the
  // burst envelope off (burst_period_s == 0) the rate function never
  // reads burst_factor, so changing it must not fork the cache key —
  // and symmetrically for diurnal_period under diurnal_amp == 0.
  arrival::Spec ippp{{"ippp"}, {}};
  const auto ippp_base = arrival::fingerprint(ippp);
  auto inert = ippp;
  inert.params.burst_factor = 7.0;
  inert.params.diurnal_period_s = 123.0;
  EXPECT_EQ(arrival::fingerprint(inert), ippp_base);
  auto live = ippp;
  live.params.burst_period_s = 100.0;
  const auto live_base = arrival::fingerprint(live);
  EXPECT_NE(live_base, ippp_base);
  live.params.burst_factor = 7.0;
  EXPECT_NE(arrival::fingerprint(live), live_base);
}

// ----------------------------------------------------- per-model laws

TEST(Arrival, PeriodicReleasesAreExactMultiplesOfThePeriod) {
  // Bit-for-bit the pre-subsystem schedule: release k is the double
  // `k * period`, not an accumulated sum (0.3 + 0.3 + 0.3 != 3 * 0.3).
  const double period = 0.3;
  arrival::Spec spec;  // periodic
  const auto process = arrival::make(spec, period);
  util::Rng rng(1);
  double prev = -1.0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double t = process->next_release(prev, rng);
    EXPECT_EQ(t, static_cast<double>(k) * period);  // exact, not NEAR
    prev = t;
  }
}

TEST(Arrival, PeriodicJitterStaysInTheJitterWindowAndMonotone) {
  const double period = 2.0;
  arrival::Spec spec{{"periodic-jitter"}, {}};
  spec.params.jitter_frac = 0.4;
  const auto process = arrival::make(spec, period);
  util::Rng rng(7);
  double prev = -1.0;
  bool saw_jitter = false;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const double t = process->next_release(prev, rng);
    const double nominal = static_cast<double>(k) * period;
    EXPECT_GE(t, nominal);
    EXPECT_LT(t, nominal + 0.4 * period);
    EXPECT_GT(t, prev);  // jitter_frac < 1 keeps releases ordered
    saw_jitter = saw_jitter || t != nominal;
    prev = t;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(Arrival, SporadicEnforcesTheMinimumSeparation) {
  const double period = 1.5;
  arrival::Spec spec{{"sporadic"}, {}};
  spec.params.gap_frac = 0.5;
  const auto process = arrival::make(spec, period);
  util::Rng rng(11);
  const auto times = draw_releases(*process, rng, 1e9, 5000);
  ASSERT_EQ(times.size(), 5000u);
  EXPECT_EQ(times.front(), 0.0);
  double mean_gap = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    EXPECT_GE(gap, period);  // hard minimum separation
    mean_gap += gap;
  }
  mean_gap /= static_cast<double>(times.size() - 1);
  // E[gap] = period * (1 + gap_frac) = 2.25 s.
  EXPECT_NEAR(mean_gap, period * 1.5, 0.05 * period * 1.5);
}

TEST(Arrival, PoissonHitsItsMeanRate) {
  const double period = 1.0;
  const double horizon = 4000.0;
  arrival::Spec spec{{"poisson"}, {}};
  spec.params.rate_scale = 1.0;
  const auto process = arrival::make(spec, period);
  util::Rng rng(13);
  const auto times = draw_releases(*process, rng, horizon);
  // Expected count = horizon / period = 4000, sigma = 63; 5% tolerance
  // is > 3 sigma and the seed is fixed, so this cannot flake.
  EXPECT_NEAR(static_cast<double>(times.size()), 4000.0, 200.0);

  // rate_scale scales the rate.
  spec.params.rate_scale = 2.0;
  const auto doubled = arrival::make(spec, period);
  util::Rng rng2(13);
  const auto times2 = draw_releases(*doubled, rng2, horizon);
  EXPECT_NEAR(static_cast<double>(times2.size()), 8000.0, 400.0);
}

TEST(Arrival, IpppHitsTheMeanRateOfItsRateFunction) {
  // Diurnal term integrates to zero over whole cycles; the on/off burst
  // envelope multiplies the mean by 1 + duty * (factor - 1).
  const double period = 1.0;
  const double horizon = 6000.0;  // whole number of 600 s diurnal cycles
  arrival::Spec spec{{"ippp"}, {}};
  spec.params.rate_scale = 1.0;
  spec.params.diurnal_amp = 0.5;
  spec.params.diurnal_period_s = 600.0;
  spec.params.burst_factor = 3.0;
  spec.params.burst_period_s = 100.0;
  spec.params.burst_duty = 0.2;
  const auto process = arrival::make(spec, period);
  util::Rng rng(17);
  const auto times = draw_releases(*process, rng, horizon);
  const double expected = horizon / period * (1.0 + 0.2 * (3.0 - 1.0));
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.06 * expected);
}

TEST(Arrival, IpppConcentratesReleasesInsideBurstWindows) {
  arrival::Spec spec{{"ippp"}, {}};
  spec.params.burst_factor = 4.0;
  spec.params.burst_period_s = 100.0;
  spec.params.burst_duty = 0.25;  // rate is 4x in [0, 25) of every 100 s
  const auto process = arrival::make(spec, 1.0);
  util::Rng rng(19);
  const auto times = draw_releases(*process, rng, 20000.0);
  std::size_t in_burst = 0;
  for (const double t : times) {
    in_burst += std::fmod(t, 100.0) < 25.0 ? 1 : 0;
  }
  // Burst windows hold 25% of the time but 4x the rate: expected share
  // = 4 * 0.25 / (4 * 0.25 + 0.75) = 57%. Far from the 25% a
  // homogeneous process would give.
  const double share =
      static_cast<double>(in_burst) / static_cast<double>(times.size());
  EXPECT_GT(share, 0.5);
  EXPECT_LT(share, 0.65);
}

TEST(Arrival, TraceReplayReplaysWrapsAndStops) {
  arrival::Spec spec{{"trace-replay"}, {}};
  spec.params.trace = "0;0.5;0.8";
  spec.params.trace_repeat = true;
  const auto process = arrival::make(spec, 1.0);  // wrap cycle = 0.8 + 1
  util::Rng rng(23);
  double prev = -1.0;
  const double expected[] = {0.0, 0.5, 0.8, 1.8, 2.3, 2.6, 3.6, 4.1, 4.4};
  for (const double want : expected) {
    const double t = process->next_release(prev, rng);
    EXPECT_DOUBLE_EQ(t, want);
    prev = t;
  }

  spec.params.trace_repeat = false;
  const auto once = arrival::make(spec, 1.0);
  prev = -1.0;
  for (const double want : {0.0, 0.5, 0.8}) {
    prev = once->next_release(prev, rng);
    EXPECT_DOUBLE_EQ(prev, want);
  }
  EXPECT_EQ(once->next_release(prev, rng), kInf);

  // Tied timestamps (routine in measured logs) collapse to one
  // release: a duplicate would instantly supersede its twin instance
  // and log a spurious deadline miss.
  spec.params.trace = "0;0.5;0.5;1";
  const auto deduped = arrival::make(spec, 1.0);
  prev = -1.0;
  for (const double want : {0.0, 0.5, 1.0}) {
    prev = deduped->next_release(prev, rng);
    EXPECT_DOUBLE_EQ(prev, want);
  }
  EXPECT_EQ(deduped->next_release(prev, rng), kInf);
}

TEST(Arrival, TraceReplayLoadsCsvFilesAndFingerprintsTheirContents) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bas-arrival-trace-" + std::to_string(::getpid()) + ".csv"))
          .string();
  {
    std::ofstream file(path);
    file << "# release times (s)\n0, 0.25\n1.5\n0.75; 2.0\n";
  }
  arrival::Spec spec{{"trace-replay"}, {}};
  spec.params.trace = "@" + path;
  spec.params.trace_repeat = false;
  const auto process = arrival::make(spec, 1.0);
  util::Rng rng(29);
  double prev = -1.0;
  for (const double want : {0.0, 0.25, 0.75, 1.5, 2.0}) {  // sorted
    prev = process->next_release(prev, rng);
    EXPECT_DOUBLE_EQ(prev, want);
  }
  const auto file_fp = arrival::fingerprint(spec);
  arrival::Spec inline_spec = spec;
  inline_spec.params.trace = "0;0.25;0.75;1.5;2.0";
  // Same parsed times -> same fingerprint, file or inline.
  EXPECT_EQ(arrival::fingerprint(inline_spec), file_fp);
  inline_spec.params.trace = "0;0.25;0.75;1.5;2.5";
  EXPECT_NE(arrival::fingerprint(inline_spec), file_fp);
  std::filesystem::remove(path);
}

// ------------------------------------------------- simulator contract

TEST(ArrivalSim, PeriodicIsBitIdenticalToThePreSubsystemSimulator) {
  // Golden metrics captured at the pre-refactor HEAD (rigid k * period
  // clock) for paper_workload(3, Rng(77)), horizon 20 s, drain, seed
  // 42. The default SimConfig must reproduce every double exactly —
  // the arrival subsystem's periodic path owes bit-identity.
  struct Golden {
    core::SchemeKind kind;
    double end, energy, charge, busy;
    std::uint64_t rel, comp, nodes, pre, finc;
    std::size_t miss;
  };
  const Golden golden[] = {
      {core::SchemeKind::kEdfNoDvs, 20.009722807590105, 16.774916313459375,
       15.646136426168624, 8.629072177705428, 248, 248, 2970, 76, 0, 0},
      {core::SchemeKind::kCcEdfRandom, 20.179791767625588,
       6.5918645712925086, 6.1395664678533048, 16.58097565752848, 248, 248,
       2970, 170, 1911, 0},
      {core::SchemeKind::kLaEdfRandom, 20.098345500567206,
       6.1476171843137299, 5.7215134034301585, 17.170818519932958, 248, 248,
       2970, 181, 1, 0},
      {core::SchemeKind::kBas1, 20.095896555070091, 6.1506640643434132,
       5.7243345886428258, 17.168369574435847, 248, 248, 2970, 181, 1, 0},
      {core::SchemeKind::kBas2, 20.098741777512664, 6.1471241523892637,
       5.7210568923889822, 17.171214796878417, 248, 248, 2970, 181, 1, 0},
  };

  util::Rng rng(77);
  const auto set = tgff::paper_workload(3, rng);
  const auto proc = dvs::Processor::paper_default();
  for (const auto& g : golden) {
    sim::SimConfig config;
    config.horizon_s = 20.0;
    config.drain = true;
    config.seed = 42;
    const auto r = sim::simulate_scheme(set, proc, g.kind, config);
    const auto label = core::to_string(g.kind);
    EXPECT_EQ(r.end_time_s, g.end) << label;
    EXPECT_EQ(r.energy_j, g.energy) << label;
    EXPECT_EQ(r.charge_c, g.charge) << label;
    EXPECT_EQ(r.busy_s, g.busy) << label;
    EXPECT_EQ(r.instances_released, g.rel) << label;
    EXPECT_EQ(r.instances_completed, g.comp) << label;
    EXPECT_EQ(r.nodes_executed, g.nodes) << label;
    EXPECT_EQ(r.preemptions, g.pre) << label;
    EXPECT_EQ(r.frequency_increases, g.finc) << label;
    EXPECT_EQ(r.deadline_misses, g.miss) << label;
  }
}

TEST(ArrivalSim, DeadlinesAreReleaseRelativeUnderJitter) {
  // One heavy single-node graph under jittered releases: every trace
  // slice must stay inside [release, release + period] of its own
  // (shifted) instance window, which only holds when deadlines follow
  // the actual release.
  tg::TaskGraphSet set;
  tg::TaskGraph g(1.0, "solo");
  g.add_node(3e8);
  set.add(std::move(g));
  const auto proc = dvs::Processor::paper_default();

  sim::SimConfig config;
  config.horizon_s = 50.0;
  config.drain = true;
  config.seed = 5;
  config.record_trace = true;
  config.arrival.model = "periodic-jitter";
  config.arrival.params.jitter_frac = 0.5;
  const auto r =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_GT(r.instances_released, 40u);
  ASSERT_FALSE(r.trace.empty());

  // Reconstruct release times from the per-instance first slices; the
  // jitter must actually move them off the k * period grid.
  bool saw_offset = false;
  double window_start = -1.0;
  std::uint32_t current = std::numeric_limits<std::uint32_t>::max();
  for (const auto& slice : r.trace) {
    if (slice.instance != current) {
      current = slice.instance;
      window_start = static_cast<double>(slice.instance) * 1.0;
      const double offset = slice.start_s - window_start;
      EXPECT_GE(offset, -1e-9);
      saw_offset = saw_offset || offset > 1e-6;
    }
    EXPECT_LE(slice.end_s,
              window_start + 1.0 + 0.5 + 1e-6);  // release + deadline bound
  }
  EXPECT_TRUE(saw_offset);
}

TEST(ArrivalSim, ArrivalsAreSeedStableAndSchemeIndependent) {
  // Common random numbers: the release schedule depends only on the
  // config seed, never on the scheme — equal released counts across
  // schemes for stochastic arrivals.
  util::Rng rng(31);
  const auto set = tgff::paper_workload(2, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 30.0;
  config.drain = true;
  config.seed = 99;
  config.arrival.model = "poisson";
  const auto a =
      sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, config);
  const auto b =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  EXPECT_GT(a.instances_released, 0u);
  EXPECT_EQ(a.instances_released, b.instances_released);

  const auto a2 =
      sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, config);
  EXPECT_DOUBLE_EQ(a.busy_s, a2.busy_s);
  EXPECT_DOUBLE_EQ(a.end_time_s, a2.end_time_s);

  config.seed = 100;
  const auto c =
      sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, config);
  EXPECT_NE(a.instances_released, c.instances_released);
}

TEST(ArrivalSim, SporadicReleasesFewerInstancesThanPeriodic) {
  util::Rng rng(37);
  const auto set = tgff::paper_workload(2, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 60.0;
  config.drain = true;
  config.seed = 3;
  const auto periodic =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  config.arrival.model = "sporadic";
  config.arrival.params.gap_frac = 1.0;
  const auto sporadic =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  // Mean inter-arrival doubles -> roughly half the instances.
  EXPECT_LT(sporadic.instances_released,
            periodic.instances_released * 3 / 4);
  EXPECT_EQ(sporadic.instances_released, sporadic.instances_completed);
}

// ------------------------------------------- trace-based diagnostics

TEST(ArrivalSim, TraceReleaseRateMatchesTheConfiguredPoissonRate) {
  // Observability as a measurement instrument: attach a TraceLog, run a
  // Poisson workload, and read the empirical release rate back off the
  // "release" instants — it must agree with the configured rate. This
  // cross-checks the engine's release loop against the process law the
  // draw_releases() tests pin in isolation.
  tg::TaskGraphSet set;
  tg::TaskGraph g(1.0, "solo");  // period 1 s -> nominal rate 1 Hz
  g.add_node(1e6);               // light node: the sim keeps up
  set.add(std::move(g));
  const auto proc = dvs::Processor::paper_default();

  const double horizon = 4000.0;
  obs::TraceLog log;
  sim::SimConfig config;
  config.horizon_s = horizon;
  config.seed = 13;
  config.arrival.model = "poisson";
  config.arrival.params.rate_scale = 1.0;
  config.trace_log = &log;
  const auto r =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);

  // The trace holds exactly the releases the run counted...
  ASSERT_EQ(log.count("release"), r.instances_released);
  // ...and their empirical rate matches lambda = 1/period within the
  // same > 3 sigma margin PoissonHitsItsMeanRate uses (sigma/mean =
  // 1/sqrt(4000) ~ 1.6%).
  const double rate = static_cast<double>(log.count("release")) / horizon;
  EXPECT_NEAR(rate, 1.0, 0.05);

  // Doubling rate_scale doubles the traced rate.
  obs::TraceLog log2;
  config.arrival.params.rate_scale = 2.0;
  config.trace_log = &log2;
  sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  const double rate2 = static_cast<double>(log2.count("release")) / horizon;
  EXPECT_NEAR(rate2, 2.0, 0.1);
}

TEST(ArrivalSim, TraceReleaseRateMatchesTheIpppEnvelopeMean) {
  // Same diagnostic against the inhomogeneous model: mean rate =
  // (1/period) * (1 + duty * (factor - 1)), the diurnal term averaging
  // out over whole cycles.
  tg::TaskGraphSet set;
  tg::TaskGraph g(1.0, "solo");
  g.add_node(1e6);
  set.add(std::move(g));
  const auto proc = dvs::Processor::paper_default();

  const double horizon = 6000.0;  // whole number of 600 s diurnal cycles
  obs::TraceLog log;
  sim::SimConfig config;
  config.horizon_s = horizon;
  config.seed = 17;
  config.arrival.model = "ippp";
  config.arrival.params.rate_scale = 1.0;
  config.arrival.params.diurnal_amp = 0.5;
  config.arrival.params.diurnal_period_s = 600.0;
  config.arrival.params.burst_factor = 3.0;
  config.arrival.params.burst_period_s = 100.0;
  config.arrival.params.burst_duty = 0.2;
  config.trace_log = &log;
  const auto r =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  ASSERT_EQ(log.count("release"), r.instances_released);
  const double expected = 1.0 * (1.0 + 0.2 * (3.0 - 1.0));  // 1.4 Hz
  const double rate = static_cast<double>(log.count("release")) / horizon;
  EXPECT_NEAR(rate, expected, 0.06 * expected);
}

// ------------------------------------------------- engine determinism

TEST(ArrivalSim, ArrivalAxisSweepIsThreadCountInvariant) {
  // The jobs=1 == jobs=4 contract of bench/arrival_stress at unit-test
  // scale: an (arrival x scheme) sweep over a real workload folds to
  // byte-identical results for any thread count.
  exp::ExperimentSpec spec;
  spec.title = "arrival_determinism";
  spec.grid = exp::Grid{
      std::vector<exp::Axis>{exp::arrival_axis(), exp::scheme_axis()}};
  spec.metrics = {"busy_s", "released", "misses"};
  spec.replicates = 2;
  spec.seed = 4242;
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.replicate_seed);
    const auto set = tgff::paper_workload(2, rng);
    const auto proc = dvs::Processor::paper_default();
    sim::SimConfig config;
    config.horizon_s = 8.0;
    config.drain = true;
    config.seed = util::Rng::hash_combine(job.replicate_seed, 1000u);
    config.arrival.model = arrival::labels()[job.at(0)];
    if (config.arrival.model == "trace-replay") {
      config.arrival.params.trace = "0;0.3;1.1";
    }
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(1)), config);
    return {r.busy_s, static_cast<double>(r.instances_released),
            static_cast<double>(r.deadline_misses)};
  };
  const auto serial = exp::run_experiment(spec, 1);
  const auto parallel = exp::run_experiment(spec, 4);
  EXPECT_EQ(exp::to_csv(serial), exp::to_csv(parallel));
  EXPECT_EQ(exp::to_json(serial), exp::to_json(parallel));
}

}  // namespace
}  // namespace bas
