// Tests for the core scheme module and analysis helpers, plus the
// noisy-oracle estimator used by the Table 1 harness.

#include <gtest/gtest.h>

#include "analysis/compare.hpp"
#include "battery/ideal.hpp"
#include "core/scheme.hpp"
#include "sched/estimator.hpp"
#include "tgff/workload.hpp"

namespace bas {
namespace {

TEST(SchemeFactory, AllTable2KindsConstruct) {
  for (const auto kind : core::table2_schemes()) {
    const auto scheme = core::make_scheme(kind, 1e9, 7);
    EXPECT_FALSE(scheme.name.empty());
    EXPECT_NE(scheme.dvs, nullptr);
    EXPECT_NE(scheme.priority, nullptr);
    EXPECT_NE(scheme.estimator, nullptr);
  }
}

TEST(SchemeFactory, NamesMatchPaperRows) {
  EXPECT_EQ(core::to_string(core::SchemeKind::kEdfNoDvs), "EDF");
  EXPECT_EQ(core::to_string(core::SchemeKind::kCcEdfRandom), "ccEDF");
  EXPECT_EQ(core::to_string(core::SchemeKind::kLaEdfRandom), "laEDF");
  EXPECT_EQ(core::to_string(core::SchemeKind::kBas1), "BAS-1");
  EXPECT_EQ(core::to_string(core::SchemeKind::kBas2), "BAS-2");
}

TEST(SchemeFactory, OnlyBas2UsesAllReleasedScope) {
  for (const auto kind : core::table2_schemes()) {
    const auto scheme = core::make_scheme(kind, 1e9);
    if (kind == core::SchemeKind::kBas2) {
      EXPECT_EQ(scheme.scope, core::ReadyScope::kAllReleased);
    } else {
      EXPECT_EQ(scheme.scope, core::ReadyScope::kMostImminent);
    }
  }
}

TEST(SchemeReset, ClearsEstimatorHistory) {
  auto scheme = core::make_scheme(core::SchemeKind::kBas1, 1e9);
  scheme.estimator->observe(0, 0, 10.0);
  for (int i = 0; i < 50; ++i) {
    scheme.estimator->observe(0, 0, 10.0);
  }
  EXPECT_NEAR(scheme.estimator->estimate(0, 0, 100.0, 0.0), 10.0, 1.0);
  scheme.reset();
  EXPECT_NEAR(scheme.estimator->estimate(0, 0, 100.0, 0.0), 60.0, 1e-9);
}

TEST(NoisyOracle, StaysWithinBounds) {
  auto e = sched::make_noisy_oracle_estimator(0.25, 3);
  for (int i = 0; i < 1000; ++i) {
    const double est = e->estimate(0, 0, 100.0, 60.0);
    EXPECT_GE(est, 60.0 * 0.75 - 1e-9);
    EXPECT_LE(est, 100.0 + 1e-9);  // clamped at wc
  }
}

TEST(NoisyOracle, ZeroNoiseIsOracle) {
  auto e = sched::make_noisy_oracle_estimator(0.0, 3);
  EXPECT_DOUBLE_EQ(e->estimate(0, 0, 100.0, 42.0), 42.0);
}

TEST(NoisyOracle, ResetReplaysStream) {
  auto e = sched::make_noisy_oracle_estimator(0.3, 5);
  const double a = e->estimate(0, 0, 100.0, 50.0);
  e->estimate(0, 0, 100.0, 50.0);
  e->reset();
  EXPECT_DOUBLE_EQ(e->estimate(0, 0, 100.0, 50.0), a);
}

TEST(NoisyOracle, RejectsBadNoise) {
  EXPECT_THROW(sched::make_noisy_oracle_estimator(1.5), std::invalid_argument);
  EXPECT_THROW(sched::make_noisy_oracle_estimator(-0.1),
               std::invalid_argument);
}

TEST(CompareSchemes, PreservesOrderAndNames) {
  util::Rng rng(3);
  const auto set = tgff::paper_workload(2, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 3.0;
  config.record_profile = false;
  const auto outcomes = analysis::compare_schemes(
      set, proc, {core::SchemeKind::kBas2, core::SchemeKind::kEdfNoDvs},
      config);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].scheme, "BAS-2");
  EXPECT_EQ(outcomes[1].scheme, "EDF");
}

TEST(CompareSchemes, BatteryPrototypeIsNotConsumed) {
  util::Rng rng(4);
  const auto set = tgff::paper_workload(2, rng);
  const auto proc = dvs::Processor::paper_default();
  const bat::IdealBattery prototype(bat::to_coulombs(2000.0));
  sim::SimConfig config;
  config.horizon_s = 3.0;
  config.drain = false;
  config.record_profile = false;
  const auto outcomes = analysis::compare_schemes(
      set, proc, core::table2_schemes(), config, &prototype);
  EXPECT_DOUBLE_EQ(prototype.charge_delivered_c(), 0.0);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.result.battery_attached) << o.scheme;
    EXPECT_GT(o.result.battery_delivered_mah, 0.0) << o.scheme;
  }
}

TEST(CompareSchemes, CommonRandomNumbersAcrossSchemes) {
  // Same seed -> the no-DVS busy time is a pure function of the actual
  // computations; two compare_schemes calls must agree exactly.
  util::Rng rng(5);
  const auto set = tgff::paper_workload(2, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 4.0;
  config.record_profile = false;
  const auto a = analysis::compare_schemes(
      set, proc, {core::SchemeKind::kEdfNoDvs}, config);
  const auto b = analysis::compare_schemes(
      set, proc, {core::SchemeKind::kEdfNoDvs}, config);
  EXPECT_DOUBLE_EQ(a[0].result.busy_s, b[0].result.busy_s);
  EXPECT_DOUBLE_EQ(a[0].result.energy_j, b[0].result.energy_j);
}

TEST(NearOptimal, StripPrecedenceNeverIncreasesEnergy) {
  // Relaxing precedence can only widen the scheduler's choices; with
  // the oracle estimator the near-optimal reference should sit at or
  // below the same scheme run on the constrained workload.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    util::Rng rng(seed);
    tgff::WorkloadParams wp;
    wp.graph_count = 3;
    wp.target_utilization = 0.9;
    const auto set = tgff::make_workload(wp, rng);
    const auto proc = dvs::Processor::paper_default();
    sim::SimConfig config;
    config.horizon_s = 6.0;
    config.record_profile = false;
    config.seed = seed;

    core::Scheme constrained = core::make_custom_scheme(
        "constrained", dvs::make_la_edf(proc.fmax_hz()),
        sched::make_pubs_priority(), sched::make_oracle_estimator(),
        core::ReadyScope::kAllReleased);
    sim::Simulator sim(set, proc, constrained, config);
    const double constrained_energy = sim.run().energy_j;
    const double relaxed_energy =
        analysis::near_optimal_energy_j(set, proc, config);
    EXPECT_LE(relaxed_energy, constrained_energy * 1.01) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bas
