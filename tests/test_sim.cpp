// Simulator tests: mechanics (releases, preemption, slack accounting,
// profiles), trace auditing, and behaviour of individual schemes on
// hand-built workloads.

#include <gtest/gtest.h>

#include <cmath>

#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tgff/workload.hpp"

namespace bas {
namespace {

tg::TaskGraphSet single_task_set(double wc_cycles, double period_s) {
  tg::TaskGraphSet set;
  tg::TaskGraph g(period_s, "solo");
  g.add_node(wc_cycles);
  set.add(std::move(g));
  return set;
}

sim::SimConfig quick_config(double horizon = 10.0) {
  sim::SimConfig c;
  c.horizon_s = horizon;
  c.drain = true;
  c.seed = 42;
  c.record_trace = true;
  c.record_profile = true;
  return c;
}

TEST(Simulator, ReleasesOncePerPeriod) {
  const auto set = single_task_set(3e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  const auto result = sim::simulate_scheme(
      set, proc, core::SchemeKind::kEdfNoDvs, quick_config(10.0));
  EXPECT_EQ(result.instances_released, 10u);
  EXPECT_EQ(result.instances_completed, 10u);
  EXPECT_EQ(result.nodes_executed, 10u);
  EXPECT_EQ(result.deadline_misses, 0u);
}

TEST(Simulator, NoDvsRunsAtFmaxAndIdles) {
  const auto set = single_task_set(3e8, 1.0);  // <= 0.3s busy at 1 GHz
  const auto proc = dvs::Processor::paper_default();
  const auto result = sim::simulate_scheme(
      set, proc, core::SchemeKind::kEdfNoDvs, quick_config(10.0));
  for (const auto& slice : result.trace) {
    EXPECT_DOUBLE_EQ(slice.freq_hz, 1e9);
  }
  // Busy fraction == actual utilization; the rest idles. In drain mode
  // the run ends when the last released instance completes.
  EXPECT_LT(result.busy_s, 0.35 * result.end_time_s);
  EXPECT_GT(result.end_time_s, 9.0 - 1e-9);
  EXPECT_LE(result.end_time_s, 10.0 + 1e-9);
}

TEST(Simulator, CcEdfStretchesExecution) {
  const auto set = single_task_set(3e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  const auto no_dvs = sim::simulate_scheme(
      set, proc, core::SchemeKind::kEdfNoDvs, quick_config(10.0));
  const auto cc = sim::simulate_scheme(
      set, proc, core::SchemeKind::kCcEdfRandom, quick_config(10.0));
  EXPECT_GT(cc.busy_s, no_dvs.busy_s * 1.3);
  EXPECT_LT(cc.energy_j, no_dvs.energy_j);
  EXPECT_EQ(cc.deadline_misses, 0u);
}

TEST(Simulator, EnergyMatchesProfileCharge) {
  // charge_c must equal the integral of the recorded profile.
  const auto set = single_task_set(4e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  const auto result = sim::simulate_scheme(
      set, proc, core::SchemeKind::kCcEdfRandom, quick_config(5.0));
  EXPECT_NEAR(result.charge_c, result.profile.total_charge_c(), 1e-9);
  EXPECT_NEAR(result.profile.duration_s(), result.end_time_s, 1e-6);
}

TEST(Simulator, TraceAuditCleanOnHandBuiltWorkload) {
  tg::TaskGraphSet set;
  tg::TaskGraph a(1.0, "a");
  const auto a0 = a.add_node(1e8);
  const auto a1 = a.add_node(1e8);
  a.add_edge(a0, a1);
  set.add(std::move(a));
  tg::TaskGraph b(1.5, "b");
  b.add_node(2e8);
  set.add(std::move(b));

  const auto proc = dvs::Processor::paper_default();
  for (const auto kind : core::table2_schemes()) {
    const auto result =
        sim::simulate_scheme(set, proc, kind, quick_config(12.0));
    const auto audit = sim::audit_trace(result.trace, set, proc, true);
    EXPECT_TRUE(audit.ok) << core::to_string(kind) << ": "
                          << audit.summary();
    EXPECT_EQ(result.deadline_misses, 0u) << core::to_string(kind);
  }
}

TEST(Simulator, PreemptionOnNewRelease) {
  // Long-period graph with a big node gets preempted by a short-period
  // graph's releases under EDF.
  tg::TaskGraphSet set;
  tg::TaskGraph big(10.0, "big");
  big.add_node(5e9);  // 5 s at fmax
  set.add(std::move(big));
  tg::TaskGraph small(0.5, "small");
  small.add_node(1e8);
  set.add(std::move(small));

  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config = quick_config(10.0);
  config.ac_lo_frac = 0.999;  // ~worst case so the big node stays busy
  config.ac_hi_frac = 1.0;
  const auto result =
      sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, config);
  EXPECT_GT(result.preemptions, 5u);
  EXPECT_EQ(result.deadline_misses, 0u);
  const auto audit = sim::audit_trace(result.trace, set, proc, true);
  EXPECT_TRUE(audit.ok) << audit.summary();
}

TEST(Simulator, ActualsAreSeedStableAcrossSchemes) {
  // Common random numbers: for a fixed config seed, every scheme faces
  // identical released work (same end time in drain mode is a proxy:
  // total cycles equal -> no-DVS busy time equal).
  const auto set = single_task_set(3e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  const auto r1 = sim::simulate_scheme(set, proc,
                                       core::SchemeKind::kEdfNoDvs,
                                       quick_config(8.0));
  const auto r2 = sim::simulate_scheme(set, proc,
                                       core::SchemeKind::kEdfNoDvs,
                                       quick_config(8.0));
  EXPECT_DOUBLE_EQ(r1.busy_s, r2.busy_s);
  EXPECT_DOUBLE_EQ(r1.energy_j, r2.energy_j);
}

TEST(Simulator, DifferentSeedsChangeActuals) {
  const auto set = single_task_set(3e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  auto c1 = quick_config(8.0);
  auto c2 = quick_config(8.0);
  c2.seed = 43;
  const auto r1 =
      sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, c1);
  const auto r2 =
      sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, c2);
  EXPECT_NE(r1.busy_s, r2.busy_s);
}

TEST(Simulator, PerNodeMeanModelIsMoreAutocorrelated) {
  // Under kPerNodeMean the same node's actuals cluster around its mean;
  // the no-DVS busy time is steadier across windows than under kIid.
  // Here we just verify both models produce valid runs with actuals in
  // range (busy fraction between 20% and 100% of the wc utilization).
  const auto set = single_task_set(5e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  for (const auto model : {sim::AcModel::kIid, sim::AcModel::kPerNodeMean}) {
    auto config = quick_config(20.0);
    config.ac_model = model;
    const auto r =
        sim::simulate_scheme(set, proc, core::SchemeKind::kEdfNoDvs, config);
    const double busy_frac = r.busy_s / r.end_time_s;
    EXPECT_GE(busy_frac, 0.2 * 0.5 - 1e-9);
    EXPECT_LE(busy_frac, 0.5 + 1e-9);
    EXPECT_EQ(r.deadline_misses, 0u);
  }
}

TEST(Simulator, DrainCompletesAllReleasedInstances) {
  util::Rng rng(77);
  const auto set = tgff::paper_workload(3, rng);
  const auto proc = dvs::Processor::paper_default();
  auto config = quick_config(5.0);
  const auto result =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  EXPECT_EQ(result.instances_released, result.instances_completed);
  // Drain can run past the horizon but not past the last deadline.
  double max_deadline = 0.0;
  for (const auto& g : set) {
    max_deadline = std::max(
        max_deadline,
        std::ceil(config.horizon_s / g.period()) * g.period());
  }
  EXPECT_LE(result.end_time_s, max_deadline + 1e-6);
}

TEST(Simulator, BatteryRunStopsAtCutoff) {
  const auto set = single_task_set(9e8, 1.0);  // heavy load
  const auto proc = dvs::Processor::paper_default();
  bat::KibamBattery battery(bat::KibamParams::paper_aaa_nimh());
  auto config = quick_config(1e6);
  config.drain = false;
  config.record_trace = false;
  config.record_profile = false;
  core::Scheme scheme =
      core::make_scheme(core::SchemeKind::kEdfNoDvs, proc.fmax_hz(), 1);
  sim::Simulator simulator(set, proc, scheme, config);
  const auto result = simulator.run(&battery);
  EXPECT_TRUE(result.battery_died);
  EXPECT_GT(result.battery_lifetime_s, 60.0);
  EXPECT_LT(result.end_time_s, 1e6);
  EXPECT_NEAR(result.battery_delivered_mah,
              battery.charge_delivered_mah(), 1e-9);
  // Lifetime anchor: ~90%-utilization full-speed load dies within a
  // couple of hours on the 2000 mAh cell.
  EXPECT_LT(result.battery_lifetime_s, 3.0 * 3600.0);
}

TEST(Simulator, IdleBatteryLastsUntilHorizon) {
  // Nearly idle workload: the battery must not die.
  const auto set = single_task_set(1e6, 10.0);
  const auto proc = dvs::Processor::paper_default();
  bat::IdealBattery battery(bat::to_coulombs(2000.0));
  auto config = quick_config(100.0);
  config.drain = false;
  core::Scheme scheme =
      core::make_scheme(core::SchemeKind::kBas2, proc.fmax_hz(), 1);
  sim::Simulator simulator(set, proc, scheme, config);
  const auto result = simulator.run(&battery);
  EXPECT_FALSE(result.battery_died);
  EXPECT_GE(result.end_time_s, 100.0 - 1e-6);
}

TEST(Simulator, RejectsBadConfig) {
  const auto set = single_task_set(1e8, 1.0);
  const auto proc = dvs::Processor::paper_default();
  core::Scheme scheme =
      core::make_scheme(core::SchemeKind::kBas2, proc.fmax_hz(), 1);
  sim::SimConfig bad;
  bad.horizon_s = 0.0;
  EXPECT_THROW(sim::Simulator(set, proc, scheme, bad),
               std::invalid_argument);
  bad = sim::SimConfig{};
  bad.ac_lo_frac = 0.0;
  EXPECT_THROW(sim::Simulator(set, proc, scheme, bad),
               std::invalid_argument);
  bad = sim::SimConfig{};
  bad.ac_hi_frac = 0.1;  // < lo
  EXPECT_THROW(sim::Simulator(set, proc, scheme, bad),
               std::invalid_argument);
}

TEST(TraceAudit, DetectsViolations) {
  tg::TaskGraphSet set;
  tg::TaskGraph g(1.0, "g");
  const auto n0 = g.add_node(1e8);
  const auto n1 = g.add_node(1e8);
  g.add_edge(n0, n1);
  set.add(std::move(g));
  const auto proc = dvs::Processor::paper_default();

  // Overlapping slices.
  std::vector<sim::ExecSlice> overlap{
      {0, 0, 0, 0.0, 0.3, 1e9, 1.0}, {0, 0, 1, 0.2, 0.5, 1e9, 1.0}};
  EXPECT_FALSE(sim::audit_trace(overlap, set, proc, false).ok);

  // Precedence violation: successor first.
  std::vector<sim::ExecSlice> prec{
      {0, 0, 1, 0.0, 0.1, 1e9, 1.0}, {0, 0, 0, 0.1, 0.2, 1e9, 1.0}};
  EXPECT_GT(sim::audit_trace(prec, set, proc, false).precedence_violations,
            0u);

  // Outside the instance window (deadline miss).
  std::vector<sim::ExecSlice> window{
      {0, 0, 0, 0.0, 0.1, 1e9, 1.0}, {0, 0, 1, 0.95, 1.2, 1e9, 1.0}};
  EXPECT_GT(sim::audit_trace(window, set, proc, false).window_violations, 0u);

  // Frequency outside the processor range.
  std::vector<sim::ExecSlice> freq{
      {0, 0, 0, 0.0, 0.1, 2e9, 1.0}, {0, 0, 1, 0.1, 0.2, 1e9, 1.0}};
  EXPECT_GT(sim::audit_trace(freq, set, proc, false).frequency_violations,
            0u);

  // Incomplete instance in drained mode.
  std::vector<sim::ExecSlice> incomplete{{0, 0, 0, 0.0, 0.1, 1e9, 1.0}};
  EXPECT_GT(sim::audit_trace(incomplete, set, proc, true)
                .incomplete_instances,
            0u);
  EXPECT_TRUE(sim::audit_trace(incomplete, set, proc, false).ok);

  // A clean trace passes.
  std::vector<sim::ExecSlice> clean{
      {0, 0, 0, 0.0, 0.1, 1e9, 1.0}, {0, 0, 1, 0.1, 0.2, 1e9, 1.0}};
  EXPECT_TRUE(sim::audit_trace(clean, set, proc, true).ok);
}

TEST(Simulator, PerfCountersCountWorkWithoutChangingResults) {
  const auto set = single_task_set(3e8, 1.0);
  const auto proc = dvs::Processor::paper_default();

  auto config = quick_config(10.0);
  const auto plain = sim::simulate_scheme(set, proc,
                                          core::SchemeKind::kBas2, config);
  config.record_perf_counters = true;
  bat::KibamBattery battery(bat::KibamParams::paper_aaa_nimh());
  const auto counted = sim::simulate_scheme(
      set, proc, core::SchemeKind::kBas2, config, &battery);

  // Off by default; on request the counters reflect the run's work.
  EXPECT_EQ(plain.perf.steps, 0u);
  EXPECT_EQ(plain.perf.battery_draws, 0u);
  EXPECT_GE(counted.perf.steps, counted.instances_released);
  EXPECT_GT(counted.perf.battery_draws, 0u);
  EXPECT_GE(counted.perf.candidates_scored, counted.nodes_executed);
  // Zero-alloc steady state: only the warmup growth of the reused
  // scratch buffers, bounded far below one per step.
  EXPECT_LT(counted.perf.scratch_grows, counted.perf.steps / 10 + 16);

  // Counting must not perturb a single output bit (battery-free runs
  // are comparable across the two configs).
  const auto recount = sim::simulate_scheme(set, proc,
                                            core::SchemeKind::kBas2, config);
  EXPECT_EQ(recount.end_time_s, plain.end_time_s);
  EXPECT_EQ(recount.energy_j, plain.energy_j);
  EXPECT_EQ(recount.charge_c, plain.charge_c);
  EXPECT_EQ(recount.nodes_executed, plain.nodes_executed);
}

TEST(TraceAudit, SummaryMentionsFirstProblem) {
  tg::TaskGraphSet set;
  tg::TaskGraph g(1.0, "g");
  g.add_node(1e8);
  set.add(std::move(g));
  const auto proc = dvs::Processor::paper_default();
  std::vector<sim::ExecSlice> bad{{0, 0, 0, 0.0, 1.5, 1e9, 1.0}};
  const auto audit = sim::audit_trace(bad, set, proc, false);
  EXPECT_FALSE(audit.ok);
  EXPECT_NE(audit.summary().find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace bas
