// Battery model tests: conservation, rate-capacity and recovery effects,
// cross-model coherence (paper §3), and profile bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/lifetime.hpp"
#include "battery/peukert.hpp"
#include "battery/profile.hpp"
#include "battery/stochastic.hpp"

namespace bas {
namespace {

constexpr double kCap = bat::to_coulombs(2000.0);

std::vector<std::unique_ptr<bat::Battery>> all_models() {
  std::vector<std::unique_ptr<bat::Battery>> models;
  models.push_back(std::make_unique<bat::IdealBattery>(kCap));
  models.push_back(std::make_unique<bat::PeukertBattery>(bat::PeukertParams{}));
  models.push_back(
      std::make_unique<bat::KibamBattery>(bat::KibamParams::paper_aaa_nimh()));
  models.push_back(std::make_unique<bat::DiffusionBattery>(
      bat::DiffusionParams::paper_aaa_nimh()));
  models.push_back(
      std::make_unique<bat::StochasticBattery>(bat::StochasticParams{}));
  return models;
}

TEST(Units, MahCoulombRoundTrip) {
  EXPECT_DOUBLE_EQ(bat::to_mah(bat::to_coulombs(2000.0)), 2000.0);
  EXPECT_DOUBLE_EQ(bat::to_coulombs(1.0), 3.6);
}

TEST(LoadProfile, AccumulatesAndMerges) {
  bat::LoadProfile p;
  p.add(1.0, 0.5);
  p.add(2.0, 0.5);  // merged with previous
  p.add(1.0, 1.0);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(p.total_charge_c(), 2.5);
  EXPECT_DOUBLE_EQ(p.average_current_a(), 0.625);
  EXPECT_DOUBLE_EQ(p.peak_current_a(), 1.0);
}

TEST(LoadProfile, DropsZeroDurationRejectsNegative) {
  bat::LoadProfile p;
  p.add(0.0, 1.0);
  EXPECT_TRUE(p.empty());
  EXPECT_THROW(p.add(-1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(p.add(1.0, -0.1), std::invalid_argument);
}

TEST(LoadProfile, MonotonicityPredicates) {
  bat::LoadProfile down;
  down.add(1.0, 1.0);
  down.add(1.0, 0.5);
  down.add(1.0, 0.2);
  EXPECT_TRUE(down.is_non_increasing());
  EXPECT_EQ(down.increase_count(), 0u);
  const auto up = down.reversed();
  EXPECT_FALSE(up.is_non_increasing());
  EXPECT_EQ(up.increase_count(), 2u);
}

TEST(LoadProfile, ConstantFactory) {
  const auto p = bat::LoadProfile::constant(0.7, 10.0);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.total_charge_c(), 7.0);
}

TEST(AllModels, DrawValidation) {
  for (auto& m : all_models()) {
    EXPECT_THROW(m->draw(-1.0, 1.0), std::invalid_argument) << m->name();
    EXPECT_THROW(m->draw(1.0, -1.0), std::invalid_argument) << m->name();
    EXPECT_DOUBLE_EQ(m->draw(1.0, 0.0), 0.0) << m->name();
  }
}

TEST(AllModels, StartFullAndTrackDeliveredCharge) {
  for (auto& m : all_models()) {
    EXPECT_FALSE(m->empty()) << m->name();
    EXPECT_NEAR(m->state_of_charge(), 1.0, 1e-9) << m->name();
    const double sustained = m->draw(1.0, 100.0);
    EXPECT_DOUBLE_EQ(sustained, 100.0) << m->name();
    EXPECT_NEAR(m->charge_delivered_c(), 100.0, 1e-9) << m->name();
    EXPECT_NEAR(m->time_alive_s(), 100.0, 1e-9) << m->name();
  }
}

TEST(AllModels, ResetRestoresFullState) {
  for (auto& m : all_models()) {
    m->draw(1.5, 500.0);
    m->reset();
    EXPECT_FALSE(m->empty()) << m->name();
    EXPECT_NEAR(m->state_of_charge(), 1.0, 1e-9) << m->name();
    EXPECT_DOUBLE_EQ(m->charge_delivered_c(), 0.0) << m->name();
    EXPECT_DOUBLE_EQ(m->time_alive_s(), 0.0) << m->name();
  }
}

TEST(AllModels, FreshCloneIsIndependentAndFull) {
  for (auto& m : all_models()) {
    m->draw(1.5, 500.0);
    const auto clone = m->fresh_clone();
    EXPECT_EQ(clone->name(), m->name());
    EXPECT_NEAR(clone->state_of_charge(), 1.0, 1e-9) << m->name();
    EXPECT_DOUBLE_EQ(clone->charge_delivered_c(), 0.0) << m->name();
  }
}

TEST(AllModels, DeliveredNeverExceedsCapacity) {
  for (auto& m : all_models()) {
    const auto result =
        bat::lifetime_under_profile(*m, bat::LoadProfile::constant(0.5, 1.0));
    EXPECT_TRUE(result.died) << m->name();
    EXPECT_LE(result.delivered_c, kCap * (1.0 + 1e-9)) << m->name();
    EXPECT_GT(result.delivered_c, 0.5 * kCap) << m->name();
  }
}

TEST(AllModels, EmptyBatteryDeliversNothingMore) {
  for (auto& m : all_models()) {
    bat::LoadProfile::constant(5.0, 1.0).discharge_repeating(*m, 1e7);
    ASSERT_TRUE(m->empty()) << m->name();
    EXPECT_DOUBLE_EQ(m->draw(1.0, 10.0), 0.0) << m->name();
  }
}

// --- rate-capacity effect ------------------------------------------------

class RateCapacity : public ::testing::TestWithParam<int> {};

TEST_P(RateCapacity, DeliveredCapacityMonotoneInLoad) {
  auto models = all_models();
  auto& m = models[static_cast<std::size_t>(GetParam())];
  const auto curve =
      bat::rate_capacity_curve(*m, {0.05, 0.2, 0.7, 1.8, 3.5});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].delivered_mah,
              curve[i - 1].delivered_mah + 1e-6)
        << m->name() << " at load " << curve[i].load_a;
    EXPECT_LT(curve[i].lifetime_min, curve[i - 1].lifetime_min)
        << m->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, RateCapacity,
                         ::testing::Range(0, 5));  // index into all_models

TEST(RateCapacityAnchors, MaxCapacityNearRated) {
  // The paper's cell: 2000 mAh maximum capacity under infinitesimal
  // load; all non-ideal models should extrapolate close to it.
  for (auto& m : all_models()) {
    EXPECT_NEAR(bat::max_capacity_mah(*m), 2000.0, 25.0) << m->name();
  }
}

TEST(RateCapacityAnchors, NominalCapacityAtFullLoad) {
  // ~1600 mAh nominal at the simulated full-speed current (~1.8 A):
  // the kinetic family lands in the right decade.
  const bat::KibamBattery kibam(bat::KibamParams::paper_aaa_nimh());
  const auto result = bat::lifetime_under_profile(
      kibam, bat::LoadProfile::constant(1.8, 1.0));
  EXPECT_GT(result.delivered_mah(), 1400.0);
  EXPECT_LT(result.delivered_mah(), 1750.0);
}

// --- recovery effect -----------------------------------------------------

TEST(Recovery, IdleRestoresAvailableCharge) {
  bat::KibamBattery b(bat::KibamParams::paper_aaa_nimh());
  b.draw(2.0, 600.0);
  const double available_after_load = b.available_c();
  b.draw(0.0, 600.0);  // rest
  EXPECT_GT(b.available_c(), available_after_load + 1.0);
}

TEST(Recovery, DiffusionUnavailableChargeDecaysWhenIdle) {
  bat::DiffusionBattery b(bat::DiffusionParams::paper_aaa_nimh());
  b.draw(2.0, 600.0);
  const double unavailable = b.unavailable_c();
  EXPECT_GT(unavailable, 0.0);
  b.draw(0.0, 600.0);
  EXPECT_LT(b.unavailable_c(), 0.5 * unavailable);
}

TEST(Recovery, PulsedLoadOutlastsConstantLoadOfEqualAverage) {
  // 1.0 A constant vs 2.0 A half the time: same average demand, but the
  // rests let the cell recover -> pulsed delivers more than the *peak*
  // constant... and constant-at-average beats pulsed (rate-capacity).
  const bat::KibamBattery proto(bat::KibamParams::paper_aaa_nimh());
  bat::LoadProfile pulsed;
  pulsed.add(10.0, 2.0);
  pulsed.add(10.0, 0.0);
  const auto pulse_life = bat::lifetime_under_profile(proto, pulsed);
  const auto const_peak = bat::lifetime_under_profile(
      proto, bat::LoadProfile::constant(2.0, 1.0));
  const auto const_avg = bat::lifetime_under_profile(
      proto, bat::LoadProfile::constant(1.0, 1.0));
  EXPECT_GT(pulse_life.delivered_c, const_peak.delivered_c);
  EXPECT_GE(const_avg.delivered_c, pulse_life.delivered_c - 1.0);
}

// --- Guideline 1 at model level -------------------------------------------

class ShapeSensitivity : public ::testing::TestWithParam<int> {};

/// Guideline 1 is a statement about one discharge serving a fixed
/// demand: if any order of the segments completes without hitting
/// cutoff, the non-increasing order does, and it leaves the cell in the
/// best state. We run one pass that fits (3600 C of 7200 C), then
/// immediately drain at a high rate — leaving no recovery window, as
/// under a tight deadline — so the state difference shows up as
/// extractable charge. (A slow drain would let recovery erase the
/// history; that near-indifference is itself checked in the bench.)
double total_after_pass_and_drain(bat::Battery& b,
                                  const bat::LoadProfile& pass) {
  pass.discharge_into(b);
  if (!b.empty()) {
    bat::LoadProfile::constant(2.5, 100.0).discharge_repeating(b, 1e7);
  }
  return b.charge_delivered_c();
}

TEST_P(ShapeSensitivity, NonIncreasingBeatsNonDecreasing) {
  // Index 2..4: kibam, diffusion, stochastic (shape-sensitive family).
  auto models = all_models();
  auto& m = models[static_cast<std::size_t>(GetParam())];
  bat::LoadProfile down;
  for (double i : {1.8, 1.2, 0.6}) {
    down.add(1000.0, i);
  }
  const auto fresh_d = m->fresh_clone();
  const auto fresh_u = m->fresh_clone();
  const double d = total_after_pass_and_drain(*fresh_d, down);
  const double u = total_after_pass_and_drain(*fresh_u, down.reversed());
  EXPECT_GT(d, u) << m->name();
}

INSTANTIATE_TEST_SUITE_P(KineticFamily, ShapeSensitivity,
                         ::testing::Values(2, 3, 4));

TEST(ShapeSensitivity, IdealIsIndifferent) {
  bat::IdealBattery a(kCap);
  bat::IdealBattery b(kCap);
  bat::LoadProfile down;
  for (double i : {1.8, 1.2, 0.6}) {
    down.add(1000.0, i);
  }
  const double d = total_after_pass_and_drain(a, down);
  const double u = total_after_pass_and_drain(b, down.reversed());
  EXPECT_NEAR(d, u, 1e-6);
}

TEST(ShapeSensitivity, KibamStateAfterEqualDemandFavorsNonIncreasing) {
  // Direct form of the theorem: after serving identical demand, the
  // non-increasing order leaves more charge in the available well.
  bat::KibamBattery down_cell(bat::KibamParams::paper_aaa_nimh());
  bat::KibamBattery up_cell(bat::KibamParams::paper_aaa_nimh());
  bat::LoadProfile down;
  for (double i : {1.8, 1.2, 0.6}) {
    down.add(1000.0, i);
  }
  down.discharge_into(down_cell);
  down.reversed().discharge_into(up_cell);
  ASSERT_FALSE(down_cell.empty());
  ASSERT_FALSE(up_cell.empty());
  EXPECT_GT(down_cell.available_c(), up_cell.available_c());
}

TEST(ShapeSensitivity, DiffusionApparentChargeFavorsNonIncreasing) {
  // Equivalent statement in the diffusion model: sigma(T) after equal
  // demand is smaller for the non-increasing order.
  bat::DiffusionBattery down_cell(bat::DiffusionParams::paper_aaa_nimh());
  bat::DiffusionBattery up_cell(bat::DiffusionParams::paper_aaa_nimh());
  bat::LoadProfile down;
  for (double i : {1.8, 1.2, 0.6}) {
    down.add(1000.0, i);
  }
  down.discharge_into(down_cell);
  down.reversed().discharge_into(up_cell);
  ASSERT_FALSE(down_cell.empty());
  ASSERT_FALSE(up_cell.empty());
  EXPECT_LT(down_cell.apparent_charge_c(), up_cell.apparent_charge_c());
}

// --- model coherence (paper §3: the models point in the same direction) ---

TEST(Coherence, KibamAndDiffusionRankProfilesIdentically) {
  // The paper's §3 argument: KiBaM is a coarse-grained diffusion model,
  // so the two must agree on which of two equal-demand profiles leaves
  // the battery better off. Compare the pass+drain totals for the
  // non-increasing and non-decreasing arrangements on both models.
  bat::LoadProfile down;
  for (double i : {1.5, 1.0, 0.5}) {
    down.add(1200.0, i);
  }
  const bat::LoadProfile up = down.reversed();

  bat::KibamBattery k1(bat::KibamParams::paper_aaa_nimh());
  bat::KibamBattery k2(bat::KibamParams::paper_aaa_nimh());
  const double k_down = total_after_pass_and_drain(k1, down);
  const double k_up = total_after_pass_and_drain(k2, up);

  bat::DiffusionBattery d1(bat::DiffusionParams::paper_aaa_nimh());
  bat::DiffusionBattery d2(bat::DiffusionParams::paper_aaa_nimh());
  const double d_down = total_after_pass_and_drain(d1, down);
  const double d_up = total_after_pass_and_drain(d2, up);

  EXPECT_GT(k_down, k_up);
  EXPECT_GT(d_down, d_up);
}

// --- KiBaM specifics -------------------------------------------------------

TEST(Kibam, ChargeConservationUnderDraw) {
  bat::KibamBattery b(bat::KibamParams::paper_aaa_nimh());
  const double before = b.available_c() + b.bound_c();
  b.draw(1.0, 100.0);
  const double after = b.available_c() + b.bound_c();
  EXPECT_NEAR(before - after, 100.0, 1e-6);
}

TEST(Kibam, ClosedFormMatchesFineEuler) {
  // Integrate the two-well ODE with tiny explicit-Euler steps and
  // compare against the closed-form stepping.
  bat::KibamParams p = bat::KibamParams::paper_aaa_nimh();
  bat::KibamBattery closed(p);
  closed.draw(1.5, 1000.0);

  const double c = p.c_fraction;
  const double k = p.k_rate;
  double y1 = c * p.capacity_c;
  double y2 = (1.0 - c) * p.capacity_c;
  const double dt = 1e-3;
  for (int i = 0; i < 1000000; ++i) {
    const double flow = k * c * (1.0 - c) * (y2 / (1.0 - c) - y1 / c);
    y1 += (flow - 1.5) * dt;
    y2 -= flow * dt;
  }
  EXPECT_NEAR(closed.available_c(), y1, 0.5);
  EXPECT_NEAR(closed.bound_c(), y2, 0.5);
}

TEST(Kibam, DiesWithTrappedCharge) {
  bat::KibamBattery b(bat::KibamParams::paper_aaa_nimh());
  bat::LoadProfile::constant(3.0, 1.0).discharge_repeating(b, 1e7);
  ASSERT_TRUE(b.empty());
  EXPECT_NEAR(b.available_c(), 0.0, 1e-6);
  EXPECT_GT(b.bound_c(), 0.05 * kCap);  // charge left behind
  EXPECT_GT(b.state_of_charge(), 0.0);
}

TEST(Kibam, RejectsBadParams) {
  bat::KibamParams p;
  p.c_fraction = 1.5;
  EXPECT_THROW(bat::KibamBattery{p}, std::invalid_argument);
  p = bat::KibamParams{};
  p.k_rate = 0.0;
  EXPECT_THROW(bat::KibamBattery{p}, std::invalid_argument);
}

// --- diffusion specifics ---------------------------------------------------

TEST(Diffusion, ApparentChargeExceedsDrawnUnderLoad) {
  bat::DiffusionBattery b(bat::DiffusionParams::paper_aaa_nimh());
  b.draw(1.5, 600.0);
  EXPECT_GT(b.apparent_charge_c(), b.charge_delivered_c());
}

TEST(Diffusion, MoreSeriesTermsIncreaseAccuracyMonotonically) {
  // Truncation error falls with M; delivered capacity converges.
  double prev = -1.0;
  double prev_delta = 1e18;
  for (int terms : {1, 3, 10, 30}) {
    bat::DiffusionParams p = bat::DiffusionParams::paper_aaa_nimh();
    p.series_terms = terms;
    const bat::DiffusionBattery proto(p);
    const double delivered =
        bat::lifetime_under_profile(proto,
                                    bat::LoadProfile::constant(1.8, 1.0))
            .delivered_c;
    if (prev >= 0.0) {
      const double delta = std::abs(delivered - prev);
      EXPECT_LT(delta, prev_delta + 1e-9);
      prev_delta = delta;
    }
    prev = delivered;
  }
}

TEST(Diffusion, RejectsBadParams) {
  bat::DiffusionParams p;
  p.beta_squared = 0.0;
  EXPECT_THROW(bat::DiffusionBattery{p}, std::invalid_argument);
  p = bat::DiffusionParams{};
  p.series_terms = 0;
  EXPECT_THROW(bat::DiffusionBattery{p}, std::invalid_argument);
}

// --- stochastic specifics ----------------------------------------------------

TEST(Stochastic, ExpectationTracksKibam) {
  // The stochastic model's mean behaviour is the kinetic model (see
  // DESIGN.md substitution note): delivered capacity at a fixed load
  // should agree within a couple of percent.
  const bat::KibamBattery kibam(bat::KibamParams::paper_aaa_nimh());
  const double k_del =
      bat::lifetime_under_profile(kibam, bat::LoadProfile::constant(1.8, 1.0))
          .delivered_c;
  bat::StochasticParams sp;
  sp.seed = 77;
  const bat::StochasticBattery stoch(sp);
  const double s_del =
      bat::lifetime_under_profile(stoch, bat::LoadProfile::constant(1.8, 1.0))
          .delivered_c;
  EXPECT_NEAR(s_del / k_del, 1.0, 0.02);
}

TEST(Stochastic, SeedChangesRunButNotRegime) {
  bat::StochasticParams a;
  a.seed = 1;
  bat::StochasticParams b;
  b.seed = 2;
  const double da = bat::lifetime_under_profile(
                        bat::StochasticBattery(a),
                        bat::LoadProfile::constant(1.8, 1.0))
                        .delivered_c;
  const double db = bat::lifetime_under_profile(
                        bat::StochasticBattery(b),
                        bat::LoadProfile::constant(1.8, 1.0))
                        .delivered_c;
  EXPECT_NE(da, db);
  EXPECT_NEAR(da / db, 1.0, 0.05);
}

TEST(Stochastic, RejectsBadParams) {
  bat::StochasticParams p;
  p.slot_s = 0.0;
  EXPECT_THROW(bat::StochasticBattery{p}, std::invalid_argument);
  p = bat::StochasticParams{};
  p.quantum_c = -1.0;
  EXPECT_THROW(bat::StochasticBattery{p}, std::invalid_argument);
}

// --- peukert specifics -------------------------------------------------------

TEST(Peukert, ConstantLoadLifetimeMatchesLaw) {
  bat::PeukertParams p;
  p.capacity_c = 7200.0;
  p.exponent = 1.2;
  p.reference_current_a = 0.2;
  const bat::PeukertBattery proto(p);
  // t = C / (I * (I/Iref)^(p-1)) for I > Iref.
  const double i = 2.0;
  const auto result =
      bat::lifetime_under_profile(proto, bat::LoadProfile::constant(i, 1.0));
  const double expected = 7200.0 / (i * std::pow(i / 0.2, 0.2));
  EXPECT_NEAR(result.lifetime_s, expected, 1e-6);
}

TEST(Peukert, NoRecoveryFromIdle) {
  bat::PeukertBattery b(bat::PeukertParams{});
  b.draw(1.0, 1000.0);
  const double soc = b.state_of_charge();
  b.draw(0.0, 10000.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), soc);
}

TEST(Ideal, ExactBucketSemantics) {
  bat::IdealBattery b(100.0);
  EXPECT_DOUBLE_EQ(b.draw(10.0, 5.0), 5.0);
  EXPECT_NEAR(b.state_of_charge(), 0.5, 1e-12);
  // 50 C left at 10 A -> exactly 5 more seconds.
  EXPECT_NEAR(b.draw(10.0, 100.0), 5.0, 1e-12);
  EXPECT_TRUE(b.empty());
  EXPECT_NEAR(b.charge_delivered_c(), 100.0, 1e-9);
}

// --- diffusion fast-path bit-exactness ---------------------------------------

/// The original per-call diffusion stepping, verbatim: rates recomputed
/// inside every loop, no decay/gain reuse. DiffusionBattery's
/// precomputed tables and shared buffers are contracted to reproduce
/// this arithmetic to the last bit — the same exact-transformation rule
/// the golden CSV smoke enforces end to end.
struct ReferenceDiffusion {
  bat::DiffusionParams p;
  std::vector<double> s_m;
  double drawn_c = 0.0;
  bool dead = false;

  explicit ReferenceDiffusion(bat::DiffusionParams params) : p(params) {
    s_m.assign(static_cast<std::size_t>(p.series_terms), 0.0);
  }

  double sigma_after(double current_a, double t) const {
    double sigma = drawn_c + current_a * t;
    for (int m = 1; m <= p.series_terms; ++m) {
      const double rate = p.beta_squared * m * m;
      const double decay = std::exp(-rate * t);
      const double s_prev = s_m[static_cast<std::size_t>(m - 1)];
      sigma += 2.0 * (s_prev * decay + current_a * (1.0 - decay) / rate);
    }
    return sigma;
  }

  void advance(double current_a, double t) {
    drawn_c += current_a * t;
    for (int m = 1; m <= p.series_terms; ++m) {
      const double rate = p.beta_squared * m * m;
      const double decay = std::exp(-rate * t);
      auto& s = s_m[static_cast<std::size_t>(m - 1)];
      s = s * decay + current_a * (1.0 - decay) / rate;
    }
  }

  double draw(double current_a, double dt_s) {
    if (dt_s == 0.0 || dead) {
      return 0.0;
    }
    if (sigma_after(current_a, dt_s) < p.alpha_c) {
      advance(current_a, dt_s);
      return dt_s;
    }
    double lo = 0.0;
    double hi = dt_s;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (sigma_after(current_a, mid) < p.alpha_c) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    advance(current_a, lo);
    dead = true;
    return lo;
  }

  double unavailable_c() const {
    double total = 0.0;
    for (double s : s_m) {
      total += s;
    }
    return 2.0 * total;
  }
};

TEST(Diffusion, PrecomputedTablesAreBitExact) {
  const auto params = bat::DiffusionParams::paper_aaa_nimh();
  bat::DiffusionBattery fast(params);
  ReferenceDiffusion ref(params);

  // Sweep of (current, dt) pairs shaped like simulator traffic: the
  // paper processor's three operating-point currents plus idle, over
  // durations from sub-millisecond slices to multi-minute stretches,
  // interleaved so decay-cache hits and misses both occur.
  const double currents[] = {0.0, 0.01, 0.3888, 1.8, 0.98415, 1.8,
                             1.8,  0.01, 0.3888, 0.0, 1.8,     0.98415};
  const double dts[] = {1e-4, 0.0123, 0.5,  3.75,  60.0,   0.5,
                        0.5,  17.2,   1e-3, 240.0, 0.0077, 33.3};
  int step = 0;
  for (int round = 0; round < 220 && !fast.empty(); ++round) {
    const double i = currents[step % 12];
    const double dt = dts[(step * 7 + round) % 12];
    ++step;
    const double got = fast.draw(i, dt);
    const double want = ref.draw(i, dt);
    ASSERT_EQ(got, want) << "sustained diverged at round " << round;
    ASSERT_EQ(fast.apparent_charge_c(), ref.drawn_c + ref.unavailable_c())
        << "sigma diverged at round " << round;
    ASSERT_EQ(fast.unavailable_c(), ref.unavailable_c())
        << "transient state diverged at round " << round;
    ASSERT_EQ(fast.empty(), ref.dead) << "cutoff diverged at round " << round;
  }

  // Push both through the cutoff bisection with a heavy draw and check
  // the located crossing to the last bit.
  if (!fast.empty()) {
    const double got = fast.draw(5.0, 1e7);
    const double want = ref.draw(5.0, 1e7);
    ASSERT_EQ(got, want);
    ASSERT_TRUE(fast.empty());
    ASSERT_TRUE(ref.dead);
    ASSERT_EQ(fast.unavailable_c(), ref.unavailable_c());
  }

  // reset() must restore the fresh state without perturbing the
  // (state-independent) decay cache's correctness.
  fast.reset();
  ReferenceDiffusion ref2(params);
  for (int round = 0; round < 40; ++round) {
    const double i = currents[round % 12];
    const double dt = dts[round % 12];
    ASSERT_EQ(fast.draw(i, dt), ref2.draw(i, dt));
    ASSERT_EQ(fast.unavailable_c(), ref2.unavailable_c());
  }
}

}  // namespace
}  // namespace bas
