#!/usr/bin/env bash
# Campaign-store acceptance smoke (ctest: *_store_backends).
#
# Against a representative engine driver this verifies, byte-for-byte
# via cmp, that the sqlite backend honours the same contract as jsonl:
#
#   1. fresh runs:      --store sqlite equals --store jsonl equals a
#                       storeless run;
#   2. 3-way shard+merge: three --shard i/3 writers into one store dir,
#                       then --merge, equals the fresh run — per backend
#                       AND across backends;
#   3. kill+resume:     a campaign killed mid-run (SIGKILL) resumes from
#                       whatever each backend committed and still folds
#                       to the fresh bytes;
#   4. compaction:      --cache-compact over the messy post-kill store
#                       leaves the merge output untouched.
#
# When the binary was built without sqlite3 the sqlite runs are skipped
# (exit 0 with a notice) so the smoke stays green on minimal toolchains.
#
# Usage: store_backends_smoke.sh /path/to/driver [driver flags...]

set -euo pipefail

bin="$1"
shift
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

if [ "$#" -gt 0 ]; then
  small="$*"
else
  small="--sets 2 --max-graphs 4 --horizon 10"
fi

run() { "$bin" $small --seed 6 "$@" > /dev/null; }

# Storeless reference.
run --jobs 4 --csv "$work/fresh.csv"

# Detect sqlite availability: a --store sqlite run against a throwaway
# dir either works or fails with the "unavailable" stub message.
backends="jsonl"
if run --jobs 1 --cache "$work/probe" --store sqlite 2> "$work/probe.err"; then
  backends="jsonl sqlite"
elif grep -q "SQLite backend unavailable" "$work/probe.err"; then
  echo "store smoke: sqlite3 not built in, exercising jsonl only" >&2
else
  cat "$work/probe.err" >&2
  exit 1
fi

for backend in $backends; do
  store="--store $backend"

  # 1. Fresh run writing through the store equals the storeless run.
  run --jobs 4 $store --cache "$work/$backend-fresh" \
      --csv "$work/$backend-fresh.csv"
  cmp "$work/fresh.csv" "$work/$backend-fresh.csv"

  # 2. Three shards + merge.
  for s in 0 1 2; do
    run --jobs 2 --shard $s/3 $store --cache "$work/$backend-shards"
  done
  run --merge $store --cache "$work/$backend-shards" \
      --csv "$work/$backend-merged.csv"
  cmp "$work/fresh.csv" "$work/$backend-merged.csv"

  # 3. Kill mid-campaign, then resume. The kill races the run — if the
  #    campaign finished before the signal landed, the resume degrades
  #    into a pure store replay, which the cmp still validates.
  "$bin" $small --seed 6 --jobs 1 $store --cache "$work/$backend-kill" \
      > /dev/null 2>&1 &
  victim=$!
  sleep 0.2
  kill -9 "$victim" 2> /dev/null || true
  wait "$victim" 2> /dev/null || true
  run --jobs 4 $store --cache "$work/$backend-kill" \
      --csv "$work/$backend-resumed.csv"
  cmp "$work/fresh.csv" "$work/$backend-resumed.csv"

  # 4. Compact the post-kill store (dupes, partial files) and re-merge.
  run --merge --cache-compact $store --cache "$work/$backend-kill" \
      --csv "$work/$backend-compacted.csv"
  cmp "$work/fresh.csv" "$work/$backend-compacted.csv"
done

# Cross-backend: the merge outputs are the same bytes.
if [ "$backends" = "jsonl sqlite" ]; then
  cmp "$work/jsonl-merged.csv" "$work/sqlite-merged.csv"
  cmp "$work/jsonl-resumed.csv" "$work/sqlite-resumed.csv"
fi

echo "store smoke: OK ($backends)"
