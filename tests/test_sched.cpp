// Tests for the ordering machinery: estimators, priority policies
// (pUBS foremost), the Algorithm 2 feasibility check, and the
// single-graph schedulers including the exhaustive-optimal search.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dvs/processor.hpp"
#include "sched/estimator.hpp"
#include "sched/feasibility.hpp"
#include "sched/optimal.hpp"
#include "sched/priority.hpp"
#include "taskgraph/algorithms.hpp"
#include "tgff/generator.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

// ---------------------------------------------------------------- utils ---

sched::Candidate candidate(double wc, double estimate, double deadline,
                           double remaining_wc, tg::NodeId node = 0,
                           int graph = 0) {
  sched::Candidate c;
  c.graph = graph;
  c.node = node;
  c.wc_cycles = wc;
  c.actual_cycles = estimate;  // oracle ground truth mirrors estimate here
  c.estimate_cycles = estimate;
  c.graph_abs_deadline_s = deadline;
  c.graph_remaining_wc_cycles = remaining_wc;
  return c;
}

dvs::GraphStatus status(int graph, double deadline, double remaining) {
  dvs::GraphStatus s;
  s.graph = graph;
  s.abs_deadline_s = deadline;
  s.remaining_wc_cycles = remaining;
  return s;
}

// ------------------------------------------------------------ estimators ---

TEST(Estimators, WorstCaseReturnsWc) {
  auto e = sched::make_worst_case_estimator();
  EXPECT_DOUBLE_EQ(e->estimate(0, 0, 100.0, 40.0), 100.0);
}

TEST(Estimators, MeanFractionScales) {
  auto e = sched::make_mean_fraction_estimator(0.6);
  EXPECT_DOUBLE_EQ(e->estimate(0, 0, 100.0, 40.0), 60.0);
  EXPECT_THROW(sched::make_mean_fraction_estimator(0.0),
               std::invalid_argument);
  EXPECT_THROW(sched::make_mean_fraction_estimator(1.5),
               std::invalid_argument);
}

TEST(Estimators, OracleSeesActual) {
  auto e = sched::make_oracle_estimator();
  EXPECT_DOUBLE_EQ(e->estimate(0, 0, 100.0, 37.5), 37.5);
}

TEST(Estimators, HistoryConvergesToObservedMean) {
  auto e = sched::make_history_estimator(0.5);
  // Prior before any observation: 0.6 * wc.
  EXPECT_DOUBLE_EQ(e->estimate(1, 2, 100.0, 0.0), 60.0);
  for (int i = 0; i < 40; ++i) {
    e->observe(1, 2, 30.0);
  }
  EXPECT_NEAR(e->estimate(1, 2, 100.0, 0.0), 30.0, 0.01);
  // Other (graph, node) keys are unaffected.
  EXPECT_DOUBLE_EQ(e->estimate(1, 3, 100.0, 0.0), 60.0);
  e->reset();
  EXPECT_DOUBLE_EQ(e->estimate(1, 2, 100.0, 0.0), 60.0);
}

TEST(Estimators, HistoryTracksDrift) {
  auto e = sched::make_history_estimator(0.3);
  for (int i = 0; i < 30; ++i) {
    e->observe(0, 0, 20.0);
  }
  for (int i = 0; i < 30; ++i) {
    e->observe(0, 0, 80.0);
  }
  EXPECT_NEAR(e->estimate(0, 0, 100.0, 0.0), 80.0, 1.0);
}

// -------------------------------------------------------------- priorities ---

TEST(Pubs, PrefersTaskWithLargerExpectedSlackRecovery) {
  auto p = sched::make_pubs_priority();
  // Two tasks, same wc, common deadline: the one expected to finish in
  // 20% of wc recovers more slack than the one expected to take 90%.
  const auto fast = candidate(1e8, 0.2e8, 1.0, 3e8, 0);
  const auto slow = candidate(1e8, 0.9e8, 1.0, 3e8, 1);
  EXPECT_LT(p->score(fast, 0.0), p->score(slow, 0.0));
}

TEST(Pubs, MatchesClosedFormFormula) {
  auto p = sched::make_pubs_priority();
  // Hand-computed: W=3e8, D-t=1, X=0.5e8, wc=1e8.
  // s_o = 3e8; t' = 1 - X/s_o = 5/6; s_ok = 2e8/(5/6) = 2.4e8.
  // denom = 9e16 - 5.76e16 = 3.24e16; score = 0.5e8/3.24e16.
  const auto c = candidate(1e8, 0.5e8, 1.0, 3e8);
  EXPECT_NEAR(p->score(c, 0.0), 0.5e8 / 3.24e16, 1e-15);
}

TEST(Pubs, DegenerateEstimateEqualsWcScoresLast) {
  auto p = sched::make_pubs_priority();
  // Xk == wc: zero expected recovery -> enormous score, ordered after
  // any candidate with real recovery.
  const auto none = candidate(1e8, 1e8, 1.0, 3e8, 0);
  const auto some = candidate(1e8, 0.99e8, 1.0, 3e8, 1);
  EXPECT_GT(p->score(none, 0.0), p->score(some, 0.0));
  EXPECT_TRUE(std::isfinite(p->score(none, 0.0)));
}

TEST(Pubs, PastDeadlineRunsFirst) {
  auto p = sched::make_pubs_priority();
  const auto late = candidate(1e8, 0.5e8, 1.0, 3e8);
  EXPECT_EQ(p->score(late, 2.0), -std::numeric_limits<double>::infinity());
}

TEST(Pubs, EstimateFillingWindowIsFiniteButLarge) {
  auto p = sched::make_pubs_priority();
  // X so large the estimated run uses the entire window.
  const auto filling = candidate(3e8, 3e8, 1.0, 3e8);
  const auto normal = candidate(1e8, 0.5e8, 1.0, 3e8);
  EXPECT_GT(p->score(filling, 0.0), p->score(normal, 0.0));
}

TEST(SimplePriorities, LtfAndStfAreOpposites) {
  auto ltf = sched::make_ltf_priority();
  auto stf = sched::make_stf_priority();
  const auto big = candidate(2e8, 1e8, 1.0, 3e8, 0);
  const auto small = candidate(1e8, 0.5e8, 1.0, 3e8, 1);
  EXPECT_LT(ltf->score(big, 0.0), ltf->score(small, 0.0));
  EXPECT_LT(stf->score(small, 0.0), stf->score(big, 0.0));
}

TEST(SimplePriorities, FifoIsByGraphThenNode) {
  auto fifo = sched::make_fifo_priority();
  EXPECT_LT(fifo->score(candidate(1e8, 1e8, 1, 1e8, /*node=*/3, /*graph=*/0),
                        0.0),
            fifo->score(candidate(1e8, 1e8, 1, 1e8, /*node=*/0, /*graph=*/1),
                        0.0));
}

TEST(SimplePriorities, RandomIsSeededAndResettable) {
  auto r1 = sched::make_random_priority(9);
  auto r2 = sched::make_random_priority(9);
  const auto c = candidate(1e8, 1e8, 1.0, 1e8);
  const double a = r1->score(c, 0.0);
  EXPECT_DOUBLE_EQ(a, r2->score(c, 0.0));
  const double b = r1->score(c, 0.0);
  EXPECT_NE(a, b);
  r1->reset();
  EXPECT_DOUBLE_EQ(r1->score(c, 0.0), a);
}

// ------------------------------------------------------ feasibility check ---

TEST(Feasibility, PositionZeroNeedsNoChecks) {
  const std::vector<dvs::GraphStatus> edf{status(0, 1.0, 9e9)};
  EXPECT_TRUE(sched::feasibility_check(edf, 0, 1e9, 1e8, 0.0));
}

TEST(Feasibility, AllowsOutOfOrderWhenSlackSuffices) {
  // Graph0: 1e8 cycles due t=1; candidate from graph1 wants 2e8 cycles.
  // At fref = 0.5e9, window 1 s fits 5e8 >= 1e8 + 2e8.
  const std::vector<dvs::GraphStatus> edf{status(0, 1.0, 1e8),
                                          status(1, 5.0, 6e8)};
  EXPECT_TRUE(sched::feasibility_check(edf, 1, 2e8, 0.5e9, 0.0));
}

TEST(Feasibility, RejectsWhenImminentDeadlineWouldBeJeopardized) {
  // Same but fref only 0.25e9: 2.5e8 < 1e8 + 2e8 -> reject.
  const std::vector<dvs::GraphStatus> edf{status(0, 1.0, 1e8),
                                          status(1, 5.0, 6e8)};
  EXPECT_FALSE(sched::feasibility_check(edf, 1, 2e8, 0.25e9, 0.0));
}

TEST(Feasibility, ChecksEveryPrefixNotJustTheFirst) {
  // Deep EDF order: candidate at position 3 must satisfy 3 conditions.
  // Prefix at j=1 is the binding one here.
  const std::vector<dvs::GraphStatus> edf{
      status(0, 1.0, 0.5e8), status(1, 1.2, 4e8), status(2, 8.0, 1e8),
      status(3, 9.0, 5e8)};
  // fref 0.5e9: j=0: 0.5e8+1e8 <= 5e8 OK; j=1: 4.5e8+1e8 <= 0.6e9 OK
  EXPECT_TRUE(sched::feasibility_check(edf, 3, 1e8, 0.5e9, 0.0));
  // Larger candidate: j=1 fails (4.5e8 + 2e8 > 6e8).
  EXPECT_FALSE(sched::feasibility_check(edf, 3, 2.0e8, 0.5e9, 0.0));
}

TEST(Feasibility, TimeAdvancesShrinkWindows) {
  const std::vector<dvs::GraphStatus> edf{status(0, 1.0, 1e8),
                                          status(1, 5.0, 6e8)};
  EXPECT_TRUE(sched::feasibility_check(edf, 1, 2e8, 0.5e9, 0.0));
  // At t=0.5 only 0.25e9... wait 0.5e9*0.5=2.5e8 < 3e8 -> reject.
  EXPECT_FALSE(sched::feasibility_check(edf, 1, 2e8, 0.5e9, 0.5));
}

TEST(Feasibility, PastDeadlinePrefixRejects) {
  const std::vector<dvs::GraphStatus> edf{status(0, 1.0, 1e8),
                                          status(1, 5.0, 6e8)};
  EXPECT_FALSE(sched::feasibility_check(edf, 1, 1e6, 1e9, 2.0));
}

// --------------------------------------------- single-graph evaluation ------

tg::TaskGraph two_task_graph() {
  // Figure 4's setup: wc 4 and 6 (scaled to cycles), deadline 10.
  tg::TaskGraph g(10.0, "fig4");
  g.add_node(4e8);
  g.add_node(6e8);
  return g;
}

TEST(EvaluateOrder, Figure4Case1StfBeatsLtf) {
  // Case 1: actuals 40% and 60% of wc -> STF (task 0 first) recovers
  // more slack, like the paper's Figure 4 trace A vs B.
  const auto g = two_task_graph();
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  const std::vector<double> actuals{0.4 * 4e8, 0.6 * 6e8};
  const auto stf = sched::evaluate_order(g, actuals, proc, {0, 1});
  const auto ltf = sched::evaluate_order(g, actuals, proc, {1, 0});
  EXPECT_LT(stf.energy_j, ltf.energy_j);
}

TEST(EvaluateOrder, Figure4Case2LtfBeatsStf) {
  // Case 2: actuals 60% and 40% -> LTF wins.
  const auto g = two_task_graph();
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  const std::vector<double> actuals{0.6 * 4e8, 0.4 * 6e8};
  const auto stf = sched::evaluate_order(g, actuals, proc, {0, 1});
  const auto ltf = sched::evaluate_order(g, actuals, proc, {1, 0});
  EXPECT_LT(ltf.energy_j, stf.energy_j);
}

TEST(EvaluateOrder, FinishesBeforeDeadline) {
  const auto g = two_task_graph();
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  const std::vector<double> actuals{4e8, 6e8};  // everything worst case
  const auto run = sched::evaluate_order(g, actuals, proc, {0, 1});
  EXPECT_LE(run.finish_time_s, g.deadline() + 1e-9);
}

TEST(EvaluateOrder, RejectsBadInputs) {
  const auto g = two_task_graph();
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  EXPECT_THROW(sched::evaluate_order(g, {1e8}, proc, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(sched::evaluate_order(g, {1e8, 9e8}, proc, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW(sched::evaluate_order(g, {5e8, 1e8}, proc, {0, 1}),
               std::invalid_argument);  // actual > wc
}

TEST(EvaluateOrder, RespectsPrecedence) {
  tg::TaskGraph g(1.0);
  g.add_node(1e8);
  g.add_node(1e8);
  g.add_edge(0, 1);
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  EXPECT_THROW(sched::evaluate_order(g, {1e8, 1e8}, proc, {1, 0}),
               std::invalid_argument);
}

TEST(GreedySchedule, ProducesTopologicalOrderAndMeetsDeadline) {
  util::Rng rng(21);
  tgff::GeneratorParams gp;
  gp.node_count = 12;
  auto g = tgff::generate(gp, rng);
  g.set_period(g.total_wcet_cycles() / (0.8e9));
  std::vector<double> actuals(g.node_count());
  for (tg::NodeId id = 0; id < g.node_count(); ++id) {
    actuals[id] = g.node(id).wcet_cycles * rng.uniform(0.2, 1.0);
  }
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  auto pubs = sched::make_pubs_priority();
  auto oracle = sched::make_oracle_estimator();
  const auto run = sched::greedy_schedule(g, actuals, proc, *pubs, *oracle);
  EXPECT_TRUE(tg::is_topological_order(g, run.order));
  EXPECT_LE(run.finish_time_s, g.deadline() + 1e-9);
  EXPECT_GT(run.energy_j, 0.0);
}

// -------------------------------------------------------- optimal search ---

class OptimalVsHeuristics : public ::testing::TestWithParam<int> {};

TEST_P(OptimalVsHeuristics, OptimalLowerBoundsEveryHeuristic) {
  const int n = GetParam();
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    util::Rng rng(seed + static_cast<std::uint64_t>(n));
    tgff::GeneratorParams gp;
    gp.node_count = n;
    auto g = tgff::generate(gp, rng);
    g.set_period(g.total_wcet_cycles() / (0.8e9));
    std::vector<double> actuals(g.node_count());
    for (tg::NodeId id = 0; id < g.node_count(); ++id) {
      actuals[id] = g.node(id).wcet_cycles * rng.uniform(0.2, 1.0);
    }
    const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
    const auto opt = sched::optimal_schedule(g, actuals, proc);
    ASSERT_TRUE(opt.exact);
    EXPECT_TRUE(tg::is_topological_order(g, opt.order));

    auto check = [&](std::unique_ptr<sched::PriorityPolicy> prio) {
      auto est = sched::make_oracle_estimator();
      const auto run = sched::greedy_schedule(g, actuals, proc, *prio, *est);
      EXPECT_GE(run.energy_j, opt.energy_j * (1.0 - 1e-9))
          << "n=" << n << " seed=" << seed;
    };
    check(sched::make_pubs_priority());
    check(sched::make_ltf_priority());
    check(sched::make_stf_priority());
    check(sched::make_random_priority(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OptimalVsHeuristics,
                         ::testing::Values(5, 7, 9, 11));

TEST(Optimal, PubsWithOracleIsNearOptimalOnIndependentTasks) {
  // Gruian's <1%-of-optimal claim is for *independent* tasks with a
  // common deadline and perfect estimates; check it tightly there.
  double worst_ratio = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    tg::TaskGraph g(1.0);
    for (int i = 0; i < 9; ++i) {
      g.add_node(rng.uniform(1e6, 1e7));
    }
    g.set_period(g.total_wcet_cycles() / (0.8e9));
    std::vector<double> actuals(g.node_count());
    for (tg::NodeId id = 0; id < g.node_count(); ++id) {
      actuals[id] = g.node(id).wcet_cycles * rng.uniform(0.2, 1.0);
    }
    const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
    const auto opt = sched::optimal_schedule(g, actuals, proc);
    ASSERT_TRUE(opt.exact);
    auto pubs = sched::make_pubs_priority();
    auto oracle = sched::make_oracle_estimator();
    const auto run = sched::greedy_schedule(g, actuals, proc, *pubs, *oracle);
    worst_ratio = std::max(worst_ratio, run.energy_j / opt.energy_j);
  }
  EXPECT_LT(worst_ratio, 1.03);
}

TEST(Optimal, PubsWithOracleIsCloseOnDags) {
  // With precedence constraints the greedy is only heuristic (the exact
  // problem is NP-hard, Lawler [6]); expect within ~15% on small DAGs.
  double worst_ratio = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    tgff::GeneratorParams gp;
    gp.node_count = 10;
    auto g = tgff::generate(gp, rng);
    g.set_period(g.total_wcet_cycles() / (0.8e9));
    std::vector<double> actuals(g.node_count());
    for (tg::NodeId id = 0; id < g.node_count(); ++id) {
      actuals[id] = g.node(id).wcet_cycles * rng.uniform(0.2, 1.0);
    }
    const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
    const auto opt = sched::optimal_schedule(g, actuals, proc);
    auto pubs = sched::make_pubs_priority();
    auto oracle = sched::make_oracle_estimator();
    const auto run = sched::greedy_schedule(g, actuals, proc, *pubs, *oracle);
    worst_ratio = std::max(worst_ratio, run.energy_j / opt.energy_j);
  }
  EXPECT_LT(worst_ratio, 1.15);
}

TEST(Optimal, ChainHasUniqueOrder) {
  tg::TaskGraph g(1.0);
  g.add_node(1e8);
  g.add_node(2e8);
  g.add_node(1e8);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  const std::vector<double> actuals{0.5e8, 1e8, 0.6e8};
  const auto opt = sched::optimal_schedule(g, actuals, proc);
  EXPECT_EQ(opt.order, (std::vector<tg::NodeId>{0, 1, 2}));
  const auto eval = sched::evaluate_order(g, actuals, proc, {0, 1, 2});
  EXPECT_NEAR(opt.energy_j, eval.energy_j, 1e-12);
}

TEST(Optimal, BudgetExhaustionFallsBackToIncumbent) {
  util::Rng rng(5);
  tgff::GeneratorParams gp;
  gp.node_count = 12;
  auto g = tgff::generate(gp, rng);
  g.set_period(g.total_wcet_cycles() / (0.8e9));
  std::vector<double> actuals(g.node_count());
  for (tg::NodeId id = 0; id < g.node_count(); ++id) {
    actuals[id] = g.node(id).wcet_cycles * rng.uniform(0.2, 1.0);
  }
  const auto proc = dvs::Processor::continuous_ideal(1e9, 5.0);
  const auto limited = sched::optimal_schedule(g, actuals, proc, 10);
  EXPECT_FALSE(limited.exact);
  EXPECT_TRUE(tg::is_topological_order(g, limited.order));
  EXPECT_GT(limited.energy_j, 0.0);
  const auto full = sched::optimal_schedule(g, actuals, proc);
  EXPECT_LE(full.energy_j, limited.energy_j + 1e-9);
}

TEST(Optimal, DiscreteProcessorSupported) {
  const auto g = two_task_graph();
  const auto proc = dvs::Processor::paper_default();
  const std::vector<double> actuals{2e8, 3e8};
  const auto opt = sched::optimal_schedule(g, actuals, proc);
  EXPECT_TRUE(opt.exact);
  EXPECT_GT(opt.energy_j, 0.0);
}

}  // namespace
}  // namespace bas
