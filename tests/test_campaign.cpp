// Tests for the campaign layer: plan/fingerprint, shard partition,
// resume cache (%.17g round trip, stale invalidation), merge collection
// and the coordinate-bearing runner error reports.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/cache.hpp"
#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

/// Fresh temp directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("bas-campaign-" + name + "-" +
               std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// A cheap spec whose metrics are awkward doubles (hash-derived, full
/// mantissas) — exactly what must survive the cache's text round trip.
exp::ExperimentSpec awkward_spec() {
  exp::ExperimentSpec spec;
  spec.title = "awkward";
  spec.grid.add("a", {"a0", "a1", "a2"}).add("b", {"b0", "b1"});
  spec.metrics = {"x", "y"};
  spec.replicates = 3;
  spec.seed = 77;
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    const double u =
        static_cast<double>(util::Rng::mix(job.seed)) / 1.8446744e19;
    return {std::sin(u) / 3.0, std::exp(-u) * 1e-7};
  };
  return spec;
}

void expect_bitwise_equal(const exp::ExperimentResult& a,
                          const exp::ExperimentResult& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.metric_names().size(), b.metric_names().size());
  EXPECT_EQ(exp::to_csv(a), exp::to_csv(b));
  EXPECT_EQ(exp::to_json(a), exp::to_json(b));
}

// ---------------------------------------------------------------- shard

TEST(Shard, ParseAcceptsValidSlices) {
  const auto shard = exp::parse_shard("2/5");
  EXPECT_EQ(shard.index, 2);
  EXPECT_EQ(shard.count, 5);
  EXPECT_EQ(exp::parse_shard("0/1").count, 1);
}

TEST(Shard, ParseRejectsMalformedSlices) {
  for (const char* bad :
       {"", "3", "1/", "/2", "2/2", "3/2", "-1/2", "1/0", "a/b", "1/2x"}) {
    EXPECT_THROW(exp::parse_shard(bad), std::runtime_error) << bad;
  }
}

TEST(Shard, PartitionIsDisjointAndComplete) {
  const int n = 3;
  std::vector<int> owners(100, -1);
  for (int s = 0; s < n; ++s) {
    const exp::Shard shard{s, n};
    for (std::size_t j = 0; j < owners.size(); ++j) {
      if (shard.contains(j)) {
        EXPECT_EQ(owners[j], -1) << "job " << j << " claimed twice";
        owners[j] = s;
      }
    }
  }
  for (std::size_t j = 0; j < owners.size(); ++j) {
    EXPECT_NE(owners[j], -1) << "job " << j << " unowned";
  }
}

// ----------------------------------------------------------------- plan

TEST(Plan, FingerprintIsStableAndSensitive) {
  const auto spec = awkward_spec();
  EXPECT_EQ(exp::spec_fingerprint(spec), exp::spec_fingerprint(spec));

  auto changed = awkward_spec();
  changed.seed = 78;
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.title = "other";
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.replicates = 4;
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.metrics[1] = "z";
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.grid = exp::Grid{};
  changed.grid.add("a", {"a0", "a1", "a2"}).add("b", {"b0", "B1"});
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));
}

TEST(Plan, FieldBoundariesChangeTheFingerprint) {
  // Length-prefixed serialization: moving a character between adjacent
  // fields must not collide.
  auto a = awkward_spec();
  a.grid = exp::Grid{};
  a.grid.add("ab", {"c"});
  auto b = awkward_spec();
  b.grid = exp::Grid{};
  b.grid.add("a", {"bc"});
  EXPECT_NE(exp::spec_fingerprint(a), exp::spec_fingerprint(b));
}

TEST(Plan, MaterializesTheFullManifest) {
  const auto spec = awkward_spec();
  const exp::Plan plan(spec);
  ASSERT_EQ(plan.job_count(), spec.job_count());
  for (std::size_t i = 0; i < plan.job_count(); ++i) {
    const auto& job = plan.job(i);
    EXPECT_EQ(job.index, i);
    EXPECT_EQ(job.cell, i / 3);
    EXPECT_EQ(job.replicate, static_cast<int>(i % 3));
    EXPECT_EQ(job.coord, spec.grid.coord(job.cell));
  }
  EXPECT_EQ(plan.fingerprint(), exp::spec_fingerprint(spec));
}

TEST(Plan, DescribeNamesCoordinatesAndReplicate) {
  const auto spec = awkward_spec();
  const exp::Plan plan(spec);
  EXPECT_EQ(plan.describe(plan.job(10)), "job 10 [a=a1, b=b1] replicate 1");
}

TEST(Plan, RejectsMalformedSpecs) {
  auto spec = awkward_spec();
  spec.run = nullptr;
  EXPECT_THROW(exp::Plan{spec}, std::invalid_argument);
  spec = awkward_spec();
  spec.metrics.clear();
  EXPECT_THROW(exp::Plan{spec}, std::invalid_argument);
  spec = awkward_spec();
  spec.replicates = 0;
  EXPECT_THROW(exp::Plan{spec}, std::invalid_argument);
}

// ---------------------------------------------------------------- cache

TEST(Cache, RoundTripsDoublesBitwise) {
  TempDir dir("roundtrip");
  const std::vector<double> metrics{1.0 / 3.0,  -0.0, 5e-324,
                                    1.7976931348623157e308, 0.1,
                                    123456789.123456789};
  {
    exp::ResultCache cache(dir.path, 0xabcdefULL, "");
    cache.append(7, metrics);
  }
  exp::ResultCache cache(dir.path, 0xabcdefULL, "");
  const auto loaded = cache.load(metrics.size());
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded.count(7));
  ASSERT_EQ(loaded.at(7).size(), metrics.size());
  EXPECT_EQ(0, std::memcmp(loaded.at(7).data(), metrics.data(),
                           metrics.size() * sizeof(double)));
}

TEST(Cache, IgnoresOtherFingerprintsTornLinesAndWrongArity) {
  TempDir dir("filter");
  exp::ResultCache mine(dir.path, 0x1111ULL, "");
  mine.append(0, {1.0, 2.0});
  exp::ResultCache other(dir.path, 0x2222ULL, "");
  other.append(1, {3.0, 4.0});
  mine.append(2, {5.0});  // wrong arity for a 2-metric load
  {
    std::ofstream torn(dir.path + "/torn.jsonl", std::ios::app);
    torn << "{\"fp\":\"" << exp::fingerprint_hex(0x1111ULL)
         << "\",\"job\":9,\"metrics\":[1.0";  // no closing brace/newline
  }
  const auto loaded = mine.load(2);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.count(0));
}

TEST(Cache, AppendHealsATornTailBeforeWriting) {
  TempDir dir("torn-tail");
  const std::string fp = exp::fingerprint_hex(0x4444ULL);
  exp::ResultCache probe(dir.path, 0x4444ULL, "");
  {
    // A killed writer's file: a complete record, then a torn line with
    // no trailing newline.
    std::ofstream file(probe.write_path());
    file << "{\"fp\":\"" << fp << "\",\"job\":0,\"metrics\":[1]}\n";
    file << "{\"fp\":\"" << fp << "\",\"job\":5,\"metrics\":";
  }
  exp::ResultCache cache(dir.path, 0x4444ULL, "");
  cache.append(9, {7.0});
  const auto loaded = cache.load(1);
  // The torn job-5 line must stay torn (skipped), never absorb job 9's
  // metrics; jobs 0 and 9 survive.
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.count(0));
  ASSERT_TRUE(loaded.count(9));
  EXPECT_EQ(loaded.at(9), std::vector<double>{7.0});
  EXPECT_FALSE(loaded.count(5));
}

TEST(Cache, SeparateWriterTagsSeparateFiles) {
  TempDir dir("tags");
  exp::ResultCache s0(dir.path, 0x3333ULL, "s0of2");
  exp::ResultCache s1(dir.path, 0x3333ULL, "s1of2");
  EXPECT_NE(s0.write_path(), s1.write_path());
  s0.append(0, {1.0});
  s1.append(1, {2.0});
  EXPECT_EQ(s0.load(1).size(), 2u);  // load pools every file in the dir
}

// ----------------------------------------------------- cache compaction

TEST(Compaction, DedupesReRunJobsAndDropsStaleFingerprints) {
  TempDir dir("compact");
  // Two writers of the live fingerprint re-ran job 0 (dupes), a third
  // file holds a dead campaign's records, and one torn tail.
  exp::ResultCache w0(dir.path, 0xAAAAULL, "s0of2");
  exp::ResultCache w1(dir.path, 0xAAAAULL, "s1of2");
  exp::ResultCache stale(dir.path, 0xBBBBULL, "");
  w0.append(0, {1.0, 2.0});
  w0.append(2, {3.0, 4.0});
  w1.append(0, {1.5, 2.5});  // job 0 re-run by the other shard
  w1.append(1, {5.0, 6.0});
  stale.append(0, {9.0, 9.0});
  stale.append(7, {9.0, 9.0});
  {
    std::ofstream torn(w0.write_path(), std::ios::app);
    torn << "{\"fp\":\"" << exp::fingerprint_hex(0xAAAAULL)
         << "\",\"job\":3,\"metrics\":";
  }

  // The invariant: a load() after compaction serves exactly what a
  // load() before it would have (same last-wins winners).
  const auto before = exp::ResultCache(dir.path, 0xAAAAULL, "").load(2);
  const auto stats = exp::compact_cache(dir.path, 0xAAAAULL, 2);
  const auto after = exp::ResultCache(dir.path, 0xAAAAULL, "").load(2);
  EXPECT_EQ(before, after);
  ASSERT_EQ(after.size(), 3u);  // jobs 0, 1, 2 — no stale job 7, no torn 3

  EXPECT_EQ(stats.files_scanned, 3u);
  EXPECT_EQ(stats.files_removed, 3u);
  EXPECT_EQ(stats.records_seen, 7u);  // 5 live-fp-file lines + 2 stale
  EXPECT_EQ(stats.records_kept, 3u);

  // One canonical file remains; the dead campaign's records are gone.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    ++files;
    EXPECT_EQ(entry.path().filename().string(),
              exp::fingerprint_hex(0xAAAAULL) + ".jsonl");
  }
  EXPECT_EQ(files, 1u);
  EXPECT_TRUE(exp::ResultCache(dir.path, 0xBBBBULL, "").load(2).empty());
}

TEST(Compaction, MissingOrEmptyDirectoryIsANoop) {
  const auto none =
      exp::compact_cache("/nonexistent/bas-compact-test", 0x1ULL, 2);
  EXPECT_EQ(none.files_scanned, 0u);
  EXPECT_EQ(none.records_kept, 0u);

  TempDir dir("compact-empty");
  std::filesystem::create_directories(dir.path);
  exp::ResultCache stale(dir.path, 0xBBBBULL, "");
  stale.append(0, {1.0});
  // Nothing matches the live fingerprint: old files are removed and no
  // compacted file is written.
  const auto stats = exp::compact_cache(dir.path, 0xAAAAULL, 1);
  EXPECT_EQ(stats.records_kept, 0u);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

TEST(Compaction, CompactedCacheRoundTripsThroughMergeBitwise) {
  TempDir dir("compact-merge");
  const auto spec = awkward_spec();
  const auto fresh = exp::run_experiment(spec, 4);

  // Populate via two shards, plus a duplicate re-run of shard 0 under a
  // different writer tag so the directory really holds re-run jobs.
  for (int s = 0; s < 2; ++s) {
    exp::RunnerOptions options;
    options.jobs = 2;
    options.shard = exp::Shard{s, 2};
    options.cache_dir = dir.path;
    exp::run_experiment(spec, options);
  }
  {
    const exp::Plan plan(spec);
    exp::ResultCache dupes(dir.path, plan.fingerprint(), "rerun");
    dupes.append(0, spec.run(plan.job(0)));
  }

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.compact_cache = true;
  merge.cache_dir = dir.path;
  const auto merged = exp::run_experiment(spec, merge);
  expect_bitwise_equal(fresh, merged);

  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir.path)) {
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // A second compact + resume run over the compacted dir still has
  // every job cached and folds to the same bytes.
  exp::RunnerOptions resume;
  resume.jobs = 4;
  resume.compact_cache = true;
  resume.cache_dir = dir.path;
  expect_bitwise_equal(fresh, exp::run_experiment(spec, resume));
}

TEST(Compaction, WithoutCacheDirIsRejected) {
  exp::RunnerOptions options;
  options.compact_cache = true;
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

TEST(Compaction, FromAShardIsRejected) {
  // A shard is one of several concurrent writers; compacting from it
  // would delete its siblings' in-flight files.
  TempDir dir("compact-shard");
  exp::RunnerOptions options;
  options.compact_cache = true;
  options.cache_dir = dir.path;
  options.shard = exp::Shard{0, 2};
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

// --------------------------------------------- sharded + resumed runs

TEST(Campaign, ShardsMergeBitIdenticalToUnsharded) {
  TempDir dir("merge");
  const auto spec = awkward_spec();
  const auto fresh = exp::run_experiment(spec, 4);

  for (int s = 0; s < 2; ++s) {
    exp::RunnerOptions options;
    options.jobs = 2;
    options.shard = exp::Shard{s, 2};
    options.cache_dir = dir.path;
    exp::run_experiment(spec, options);
  }
  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  const auto merged = exp::run_experiment(spec, merge);
  expect_bitwise_equal(fresh, merged);
}

TEST(Campaign, CacheResumeMatchesFreshRunAndSkipsCachedJobs) {
  TempDir dir("resume");
  auto spec = awkward_spec();
  const auto fresh = exp::run_experiment(spec, 4);

  // Interrupted stand-in: only shard 0/2 reached the cache.
  exp::RunnerOptions first;
  first.jobs = 2;
  first.shard = exp::Shard{0, 2};
  first.cache_dir = dir.path;
  exp::run_experiment(spec, first);

  std::atomic<std::size_t> executed{0};
  const auto inner = spec.run;
  spec.run = [&executed, inner](const exp::Job& job) {
    executed.fetch_add(1);
    return inner(job);
  };
  exp::RunnerOptions resume;
  resume.jobs = 4;
  resume.cache_dir = dir.path;
  const auto resumed = exp::run_experiment(spec, resume);
  expect_bitwise_equal(fresh, resumed);
  EXPECT_EQ(executed.load(), spec.job_count() / 2);

  // A second resume finds everything cached and executes nothing.
  executed = 0;
  const auto again = exp::run_experiment(spec, resume);
  expect_bitwise_equal(fresh, again);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(Campaign, StaleFingerprintInvalidatesTheCache) {
  TempDir dir("stale");
  auto spec = awkward_spec();
  exp::RunnerOptions options;
  options.jobs = 2;
  options.cache_dir = dir.path;
  exp::run_experiment(spec, options);

  spec.seed = 1234;  // a different sweep identity
  const auto fresh = exp::run_experiment(spec, 4);
  std::atomic<std::size_t> executed{0};
  const auto inner = spec.run;
  spec.run = [&executed, inner](const exp::Job& job) {
    executed.fetch_add(1);
    return inner(job);
  };
  const auto rerun = exp::run_experiment(spec, options);
  EXPECT_EQ(executed.load(), spec.job_count());  // nothing served stale
  expect_bitwise_equal(fresh, rerun);
}

TEST(Campaign, MergeReportsMissingJobs) {
  TempDir dir("missing");
  const auto spec = awkward_spec();
  exp::RunnerOptions shard0;
  shard0.shard = exp::Shard{0, 2};
  shard0.cache_dir = dir.path;
  exp::run_experiment(spec, shard0);

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  try {
    exp::run_experiment(spec, merge);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("merge"), std::string::npos);
    EXPECT_NE(message.find("job 1"), std::string::npos);
  }
}

TEST(Campaign, MergeIsNotFooledByOutOfRangeRecords) {
  TempDir dir("padding");
  const auto spec = awkward_spec();
  exp::RunnerOptions shard0;
  shard0.shard = exp::Shard{0, 2};
  shard0.cache_dir = dir.path;
  exp::run_experiment(spec, shard0);

  // Pad the cache with matching-fingerprint records whose job indices
  // are out of range, so the record count reaches job_count() while
  // every odd job is still missing.
  exp::ResultCache padding(dir.path, exp::spec_fingerprint(spec), "bogus");
  for (std::size_t i = 0; i < spec.job_count(); ++i) {
    padding.append(spec.job_count() + i, {1.0, 2.0});
  }

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  EXPECT_THROW(exp::run_experiment(spec, merge), std::runtime_error);
}

TEST(Campaign, MergeWithoutCacheOrWithShardIsRejected) {
  const auto spec = awkward_spec();
  exp::RunnerOptions merge;
  merge.merge_only = true;
  EXPECT_THROW(exp::run_experiment(spec, merge), std::invalid_argument);
  merge.cache_dir = "somewhere";
  merge.shard = exp::Shard{0, 2};
  EXPECT_THROW(exp::run_experiment(spec, merge), std::invalid_argument);
}

TEST(Campaign, ShardRunAloneYieldsPartialCells) {
  const auto spec = awkward_spec();
  exp::RunnerOptions options;
  options.shard = exp::Shard{0, 2};
  const auto partial = exp::run_experiment(spec, options);
  std::size_t samples = 0;
  for (std::size_t c = 0; c < partial.cell_count(); ++c) {
    samples += partial.at(c, 0).count();
  }
  EXPECT_EQ(samples, (spec.job_count() + 1) / 2);
}

// ----------------------------------------------------- error reporting

TEST(Campaign, ErrorsCarryGridCoordinatesAndReplicate) {
  auto spec = awkward_spec();
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    if (job.index == 10) {
      throw std::runtime_error("boom");
    }
    return {0.0, 0.0};
  };
  try {
    exp::run_experiment(spec, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("job 10 [a=a1, b=b1] replicate 1"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("boom"), std::string::npos);
  }
}

TEST(Campaign, ArityErrorsCarryCoordinatesToo) {
  auto spec = awkward_spec();
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    if (job.index == 4) {
      return {1.0};  // expected 2
    }
    return {0.0, 0.0};
  };
  try {
    exp::run_experiment(spec, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("job 4"), std::string::npos) << message;
    EXPECT_NE(message.find("expected 2"), std::string::npos);
  }
}

// ------------------------------------------------------ CLI threading

TEST(Campaign, OptionsFromCliParseTheCampaignFlags) {
  const char* argv[] = {"bench",   "--jobs", "3",          "--shard",
                        "1/4",     "--cache", "/tmp/c",    "--progress",
                        "--cache-compact"};
  util::Cli cli(9, argv, util::Cli::with_bench_defaults({}));
  const auto options = exp::options_from_cli(cli);
  EXPECT_EQ(options.jobs, 3);
  ASSERT_TRUE(options.shard.has_value());
  EXPECT_EQ(options.shard->index, 1);
  EXPECT_EQ(options.shard->count, 4);
  EXPECT_EQ(options.cache_dir, "/tmp/c");
  EXPECT_FALSE(options.merge_only);
  EXPECT_TRUE(options.compact_cache);
  EXPECT_TRUE(options.progress);
}

TEST(Campaign, OptionsFromCliDefaultsAreInert) {
  const char* argv[] = {"bench"};
  util::Cli cli(1, argv, util::Cli::with_bench_defaults({}));
  const auto options = exp::options_from_cli(cli);
  EXPECT_FALSE(options.shard.has_value());
  EXPECT_TRUE(options.cache_dir.empty());
  EXPECT_FALSE(options.merge_only);
  EXPECT_FALSE(options.compact_cache);
  EXPECT_FALSE(options.progress);
}

TEST(Campaign, MergeWithoutCacheFromCliIsRejectedByTheRunner) {
  const char* argv[] = {"bench", "--merge"};
  util::Cli cli(2, argv, util::Cli::with_bench_defaults({}));
  EXPECT_THROW(exp::run_experiment(awkward_spec(), exp::options_from_cli(cli)),
               std::invalid_argument);
}

TEST(Campaign, OutOfRangeShardIsRejected) {
  exp::RunnerOptions options;
  options.shard = exp::Shard{2, 2};
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
  options.shard = exp::Shard{-1, 2};
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

TEST(Campaign, ConfigEntersTheFingerprint) {
  auto spec = awkward_spec();
  spec.config = "--battery kibam";
  auto changed = awkward_spec();
  changed.config = "--battery peukert";
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));
}

TEST(Campaign, ConfigSummaryExcludesEngineFlags) {
  const char* argv_a[] = {"bench",   "--battery", "kibam", "--jobs",
                          "7",       "--shard",   "0/2",   "--cache",
                          "dir",     "--progress", "--cache-compact"};
  util::Cli a(11, argv_a,
              util::Cli::with_bench_defaults({{"battery", "kibam"}}));
  const char* argv_b[] = {"bench", "--battery", "kibam"};
  util::Cli b(3, argv_b,
              util::Cli::with_bench_defaults({{"battery", "kibam"}}));
  // Campaign/engine flags must not perturb the sweep identity...
  EXPECT_EQ(a.config_summary(), b.config_summary());
  // ...but driver parameters must.
  const char* argv_c[] = {"bench", "--battery", "peukert"};
  util::Cli c(3, argv_c,
              util::Cli::with_bench_defaults({{"battery", "kibam"}}));
  EXPECT_NE(b.config_summary(), c.config_summary());
  EXPECT_NE(b.config_summary().find("--battery kibam"), std::string::npos);
}

}  // namespace
}  // namespace bas
