// Tests for the campaign layer: plan/fingerprint, shard partition,
// store-backed resume, merge collection, job timeout/retry/keep-going
// robustness, work-stealing determinism and the coordinate-bearing
// runner error reports. The store subsystem itself (backends, async
// writer, compaction) is covered by test_store.cpp.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "store/jsonl.hpp"
#include "store/store.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

/// Fresh temp directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("bas-campaign-" + name + "-" +
               std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// A cheap spec whose metrics are awkward doubles (hash-derived, full
/// mantissas) — exactly what must survive the store's text round trip.
exp::ExperimentSpec awkward_spec() {
  exp::ExperimentSpec spec;
  spec.title = "awkward";
  spec.grid.add("a", {"a0", "a1", "a2"}).add("b", {"b0", "b1"});
  spec.metrics = {"x", "y"};
  spec.replicates = 3;
  spec.seed = 77;
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    const double u =
        static_cast<double>(util::Rng::mix(job.seed)) / 1.8446744e19;
    return {std::sin(u) / 3.0, std::exp(-u) * 1e-7};
  };
  return spec;
}

void expect_bitwise_equal(const exp::ExperimentResult& a,
                          const exp::ExperimentResult& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.metric_names().size(), b.metric_names().size());
  EXPECT_EQ(exp::to_csv(a), exp::to_csv(b));
  EXPECT_EQ(exp::to_json(a), exp::to_json(b));
}

// ---------------------------------------------------------------- shard

TEST(Shard, ParseAcceptsValidSlices) {
  const auto shard = exp::parse_shard("2/5");
  EXPECT_EQ(shard.index, 2);
  EXPECT_EQ(shard.count, 5);
  EXPECT_EQ(exp::parse_shard("0/1").count, 1);
}

TEST(Shard, ParseRejectsMalformedSlices) {
  for (const char* bad :
       {"", "3", "1/", "/2", "2/2", "3/2", "-1/2", "1/0", "a/b", "1/2x"}) {
    EXPECT_THROW(exp::parse_shard(bad), std::runtime_error) << bad;
  }
}

TEST(Shard, PartitionIsDisjointAndComplete) {
  const int n = 3;
  std::vector<int> owners(100, -1);
  for (int s = 0; s < n; ++s) {
    const exp::Shard shard{s, n};
    for (std::size_t j = 0; j < owners.size(); ++j) {
      if (shard.contains(j)) {
        EXPECT_EQ(owners[j], -1) << "job " << j << " claimed twice";
        owners[j] = s;
      }
    }
  }
  for (std::size_t j = 0; j < owners.size(); ++j) {
    EXPECT_NE(owners[j], -1) << "job " << j << " unowned";
  }
}

// ----------------------------------------------------------------- plan

TEST(Plan, FingerprintIsStableAndSensitive) {
  const auto spec = awkward_spec();
  EXPECT_EQ(exp::spec_fingerprint(spec), exp::spec_fingerprint(spec));

  auto changed = awkward_spec();
  changed.seed = 78;
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.title = "other";
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.replicates = 4;
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.metrics[1] = "z";
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));

  changed = awkward_spec();
  changed.grid = exp::Grid{};
  changed.grid.add("a", {"a0", "a1", "a2"}).add("b", {"b0", "B1"});
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));
}

TEST(Plan, FieldBoundariesChangeTheFingerprint) {
  // Length-prefixed serialization: moving a character between adjacent
  // fields must not collide.
  auto a = awkward_spec();
  a.grid = exp::Grid{};
  a.grid.add("ab", {"c"});
  auto b = awkward_spec();
  b.grid = exp::Grid{};
  b.grid.add("a", {"bc"});
  EXPECT_NE(exp::spec_fingerprint(a), exp::spec_fingerprint(b));
}

TEST(Plan, MaterializesTheFullManifest) {
  const auto spec = awkward_spec();
  const exp::Plan plan(spec);
  ASSERT_EQ(plan.job_count(), spec.job_count());
  for (std::size_t i = 0; i < plan.job_count(); ++i) {
    const auto& job = plan.job(i);
    EXPECT_EQ(job.index, i);
    EXPECT_EQ(job.cell, i / 3);
    EXPECT_EQ(job.replicate, static_cast<int>(i % 3));
    EXPECT_EQ(job.coord, spec.grid.coord(job.cell));
  }
  EXPECT_EQ(plan.fingerprint(), exp::spec_fingerprint(spec));
}

TEST(Plan, DescribeNamesCoordinatesAndReplicate) {
  const auto spec = awkward_spec();
  const exp::Plan plan(spec);
  EXPECT_EQ(plan.describe(plan.job(10)), "job 10 [a=a1, b=b1] replicate 1");
}

TEST(Plan, RejectsMalformedSpecs) {
  auto spec = awkward_spec();
  spec.run = nullptr;
  EXPECT_THROW(exp::Plan{spec}, std::invalid_argument);
  spec = awkward_spec();
  spec.metrics.clear();
  EXPECT_THROW(exp::Plan{spec}, std::invalid_argument);
  spec = awkward_spec();
  spec.replicates = 0;
  EXPECT_THROW(exp::Plan{spec}, std::invalid_argument);
}

// --------------------------------------------- sharded + resumed runs

TEST(Campaign, ShardsMergeBitIdenticalToUnsharded) {
  TempDir dir("merge");
  const auto spec = awkward_spec();
  const auto fresh = exp::run_experiment(spec, 4);

  for (int s = 0; s < 2; ++s) {
    exp::RunnerOptions options;
    options.jobs = 2;
    options.shard = exp::Shard{s, 2};
    options.cache_dir = dir.path;
    exp::run_experiment(spec, options);
  }
  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  const auto merged = exp::run_experiment(spec, merge);
  expect_bitwise_equal(fresh, merged);
}

TEST(Campaign, StoreResumeMatchesFreshRunAndSkipsStoredJobs) {
  TempDir dir("resume");
  auto spec = awkward_spec();
  const auto fresh = exp::run_experiment(spec, 4);

  // Interrupted stand-in: only shard 0/2 reached the store.
  exp::RunnerOptions first;
  first.jobs = 2;
  first.shard = exp::Shard{0, 2};
  first.cache_dir = dir.path;
  exp::run_experiment(spec, first);

  std::atomic<std::size_t> executed{0};
  const auto inner = spec.run;
  spec.run = [&executed, inner](const exp::Job& job) {
    executed.fetch_add(1);
    return inner(job);
  };
  exp::RunnerOptions resume;
  resume.jobs = 4;
  resume.cache_dir = dir.path;
  const auto resumed = exp::run_experiment(spec, resume);
  expect_bitwise_equal(fresh, resumed);
  EXPECT_EQ(executed.load(), spec.job_count() / 2);

  // A second resume finds everything stored and executes nothing.
  executed = 0;
  const auto again = exp::run_experiment(spec, resume);
  expect_bitwise_equal(fresh, again);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(Campaign, StaleFingerprintInvalidatesTheStore) {
  TempDir dir("stale");
  auto spec = awkward_spec();
  exp::RunnerOptions options;
  options.jobs = 2;
  options.cache_dir = dir.path;
  exp::run_experiment(spec, options);

  spec.seed = 1234;  // a different sweep identity
  const auto fresh = exp::run_experiment(spec, 4);
  std::atomic<std::size_t> executed{0};
  const auto inner = spec.run;
  spec.run = [&executed, inner](const exp::Job& job) {
    executed.fetch_add(1);
    return inner(job);
  };
  const auto rerun = exp::run_experiment(spec, options);
  EXPECT_EQ(executed.load(), spec.job_count());  // nothing served stale
  expect_bitwise_equal(fresh, rerun);
}

TEST(Campaign, MergeReportsMissingJobs) {
  TempDir dir("missing");
  const auto spec = awkward_spec();
  exp::RunnerOptions shard0;
  shard0.shard = exp::Shard{0, 2};
  shard0.cache_dir = dir.path;
  exp::run_experiment(spec, shard0);

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  try {
    exp::run_experiment(spec, merge);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("merge"), std::string::npos);
    EXPECT_NE(message.find("job 1"), std::string::npos);
  }
}

TEST(Campaign, MergeWithKeepGoingFoldsThePartialResult) {
  TempDir dir("partial-merge");
  const auto spec = awkward_spec();
  exp::RunnerOptions shard0;
  shard0.shard = exp::Shard{0, 2};
  shard0.cache_dir = dir.path;
  const auto partial = exp::run_experiment(spec, shard0);

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  merge.keep_going = true;
  const auto merged = exp::run_experiment(spec, merge);
  // Exactly the shard's half is folded, bit-identically.
  expect_bitwise_equal(partial, merged);
}

TEST(Campaign, MergeIsNotFooledByOutOfRangeRecords) {
  TempDir dir("padding");
  const auto spec = awkward_spec();
  exp::RunnerOptions shard0;
  shard0.shard = exp::Shard{0, 2};
  shard0.cache_dir = dir.path;
  exp::run_experiment(spec, shard0);

  // Pad the store with matching-fingerprint records whose job indices
  // are out of range, so the record count reaches job_count() while
  // every odd job is still missing.
  {
    store::JsonlStore padding(dir.path, exp::spec_fingerprint(spec), "bogus");
    std::vector<store::StoreRecord> batch;
    for (std::size_t i = 0; i < spec.job_count(); ++i) {
      batch.push_back({spec.job_count() + i, {1.0, 2.0}, ""});
    }
    padding.append(batch);
  }

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  EXPECT_THROW(exp::run_experiment(spec, merge), std::runtime_error);
}

TEST(Campaign, MergeWithoutStoreOrWithShardIsRejected) {
  const auto spec = awkward_spec();
  exp::RunnerOptions merge;
  merge.merge_only = true;
  EXPECT_THROW(exp::run_experiment(spec, merge), std::invalid_argument);
  merge.cache_dir = "somewhere";
  merge.shard = exp::Shard{0, 2};
  EXPECT_THROW(exp::run_experiment(spec, merge), std::invalid_argument);
}

TEST(Campaign, ShardRunAloneYieldsPartialCells) {
  const auto spec = awkward_spec();
  exp::RunnerOptions options;
  options.shard = exp::Shard{0, 2};
  const auto partial = exp::run_experiment(spec, options);
  std::size_t samples = 0;
  for (std::size_t c = 0; c < partial.cell_count(); ++c) {
    samples += partial.at(c, 0).count();
  }
  EXPECT_EQ(samples, (spec.job_count() + 1) / 2);
}

// -------------------------------------------- work-stealing execution

TEST(Campaign, UnevenCellCostsFoldBitIdenticalAcrossThreadCounts) {
  // Strongly skewed per-cell cost exercises the stealing path: the
  // worker owning the expensive range loses its remaining jobs to idle
  // threads. The fold must not care.
  auto spec = awkward_spec();
  const auto inner = spec.run;
  spec.run = [inner](const exp::Job& job) {
    if (job.cell == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return inner(job);
  };
  const auto serial = exp::run_experiment(spec, 1);
  for (const int jobs : {2, 4, 8}) {
    expect_bitwise_equal(serial, exp::run_experiment(spec, jobs));
  }
}

TEST(Campaign, EveryJobExecutesExactlyOnceUnderStealing) {
  auto spec = awkward_spec();
  std::vector<std::atomic<int>> executions(spec.job_count());
  const auto inner = spec.run;
  spec.run = [&executions, inner](const exp::Job& job) {
    executions[job.index].fetch_add(1);
    return inner(job);
  };
  exp::run_experiment(spec, 8);
  for (std::size_t i = 0; i < executions.size(); ++i) {
    EXPECT_EQ(executions[i].load(), 1) << "job " << i;
  }
}

// ------------------------------------- timeout, retry and keep-going

TEST(Campaign, FlakyJobSucceedsWithinItsRetryBudget) {
  auto spec = awkward_spec();
  std::atomic<int> failures{0};
  const auto inner = spec.run;
  spec.run = [&failures, inner](const exp::Job& job) {
    // Job 5 fails twice before succeeding.
    if (job.index == 5 && failures.load() < 2) {
      failures.fetch_add(1);
      throw std::runtime_error("transient");
    }
    return inner(job);
  };
  exp::RunnerOptions options;
  options.jobs = 2;
  options.job_attempts = 3;
  options.retry_backoff_s = 0.001;
  const auto retried = exp::run_experiment(spec, options);
  EXPECT_EQ(failures.load(), 2);
  expect_bitwise_equal(exp::run_experiment(awkward_spec(), 1), retried);
}

TEST(Campaign, ExhaustedRetriesReportTheAttemptCount) {
  auto spec = awkward_spec();
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    if (job.index == 3) {
      throw std::runtime_error("permanent");
    }
    return {0.0, 0.0};
  };
  exp::RunnerOptions options;
  options.job_attempts = 2;
  options.retry_backoff_s = 0.001;
  try {
    exp::run_experiment(spec, options);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("job 3"), std::string::npos) << message;
    EXPECT_NE(message.find("permanent"), std::string::npos) << message;
    EXPECT_NE(message.find("2 attempts"), std::string::npos) << message;
  }
}

TEST(Campaign, TimedOutJobFailsWithADeadlineError) {
  auto spec = awkward_spec();
  auto release = std::make_shared<std::atomic<bool>>(false);
  const auto inner = spec.run;
  spec.run = [release, inner](const exp::Job& job) {
    if (job.index == 2) {
      while (!release->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return inner(job);
  };
  exp::RunnerOptions options;
  options.job_timeout_s = 0.05;
  try {
    exp::run_experiment(spec, options);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("job 2"), std::string::npos) << message;
    EXPECT_NE(message.find("deadline"), std::string::npos) << message;
  }
  // Let the abandoned attempt's detached thread finish before the test
  // (and its spec) go away.
  release->store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

TEST(Campaign, KeepGoingRecordsErrorRowsAndFinishesTheShard) {
  TempDir dir("keep-going");
  auto spec = awkward_spec();
  const auto inner = spec.run;
  spec.run = [inner](const exp::Job& job) -> std::vector<double> {
    if (job.index == 4) {
      throw std::runtime_error("cell on fire");
    }
    return inner(job);
  };
  exp::RunnerOptions options;
  options.jobs = 2;
  options.cache_dir = dir.path;
  options.keep_going = true;
  const auto partial = exp::run_experiment(spec, options);

  // Job 4 is replicate 1 of cell 1: that cell aggregates 2 samples.
  EXPECT_EQ(partial.at(1, 0).count(), 2u);
  EXPECT_EQ(partial.at(0, 0).count(), 3u);

  // The failure is an error row, visible to merge diagnostics...
  {
    store::JsonlStore probe(dir.path, exp::spec_fingerprint(spec), "probe");
    const auto errors = probe.load_errors();
    ASSERT_EQ(errors.size(), 1u);
    ASSERT_TRUE(errors.count(4));
    EXPECT_NE(errors.at(4).find("cell on fire"), std::string::npos);
    EXPECT_EQ(probe.load(2).size(), spec.job_count() - 1);
  }

  // ...and merge without keep_going names the failed job.
  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.cache_dir = dir.path;
  try {
    exp::run_experiment(spec, merge);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("recorded as failed"), std::string::npos)
        << message;
    EXPECT_NE(message.find("cell on fire"), std::string::npos) << message;
  }

  // A resume with the failure fixed re-executes exactly the failed job
  // (error rows are never served as results) and completes the store.
  std::atomic<std::size_t> executed{0};
  auto fixed = awkward_spec();
  const auto fixed_inner = fixed.run;
  fixed.run = [&executed, fixed_inner](const exp::Job& job) {
    executed.fetch_add(1);
    return fixed_inner(job);
  };
  exp::RunnerOptions resume;
  resume.cache_dir = dir.path;
  const auto resumed = exp::run_experiment(fixed, resume);
  EXPECT_EQ(executed.load(), 1u);
  expect_bitwise_equal(exp::run_experiment(awkward_spec(), 1), resumed);
}

TEST(Campaign, InvalidRobustnessOptionsAreRejected) {
  exp::RunnerOptions options;
  options.job_attempts = 0;
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
  options = {};
  options.job_timeout_s = -1.0;
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

// ----------------------------------------------------- error reporting

TEST(Campaign, ErrorsCarryGridCoordinatesAndReplicate) {
  auto spec = awkward_spec();
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    if (job.index == 10) {
      throw std::runtime_error("boom");
    }
    return {0.0, 0.0};
  };
  try {
    exp::run_experiment(spec, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("job 10 [a=a1, b=b1] replicate 1"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("boom"), std::string::npos);
  }
}

TEST(Campaign, ArityErrorsCarryCoordinatesToo) {
  auto spec = awkward_spec();
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    if (job.index == 4) {
      return {1.0};  // expected 2
    }
    return {0.0, 0.0};
  };
  try {
    exp::run_experiment(spec, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("job 4"), std::string::npos) << message;
    EXPECT_NE(message.find("expected 2"), std::string::npos);
  }
}

// ------------------------------------------------------ CLI threading

TEST(Campaign, OptionsFromCliParseTheCampaignFlags) {
  const char* argv[] = {"bench",        "--jobs",   "3",
                        "--shard",      "1/4",      "--cache",
                        "/tmp/c",       "--progress", "--cache-compact",
                        "--store",      "sqlite",   "--job-timeout",
                        "2.5",          "--job-attempts", "3",
                        "--keep-going"};
  util::Cli cli(16, argv, util::Cli::with_bench_defaults({}));
  const auto options = exp::options_from_cli(cli);
  EXPECT_EQ(options.jobs, 3);
  ASSERT_TRUE(options.shard.has_value());
  EXPECT_EQ(options.shard->index, 1);
  EXPECT_EQ(options.shard->count, 4);
  EXPECT_EQ(options.cache_dir, "/tmp/c");
  EXPECT_EQ(options.store_backend, store::Backend::kSqlite);
  EXPECT_FALSE(options.merge_only);
  EXPECT_TRUE(options.compact_cache);
  EXPECT_TRUE(options.progress);
  EXPECT_DOUBLE_EQ(options.job_timeout_s, 2.5);
  EXPECT_EQ(options.job_attempts, 3);
  EXPECT_TRUE(options.keep_going);
}

TEST(Campaign, OptionsFromCliDefaultsAreInert) {
  const char* argv[] = {"bench"};
  util::Cli cli(1, argv, util::Cli::with_bench_defaults({}));
  const auto options = exp::options_from_cli(cli);
  EXPECT_FALSE(options.shard.has_value());
  EXPECT_TRUE(options.cache_dir.empty());
  EXPECT_EQ(options.store_backend, store::Backend::kJsonl);
  EXPECT_FALSE(options.merge_only);
  EXPECT_FALSE(options.compact_cache);
  EXPECT_FALSE(options.progress);
  EXPECT_DOUBLE_EQ(options.job_timeout_s, 0.0);
  EXPECT_EQ(options.job_attempts, 1);
  EXPECT_FALSE(options.keep_going);
}

TEST(Campaign, UnknownStoreBackendIsRejected) {
  const char* argv[] = {"bench", "--store", "parquet"};
  util::Cli cli(3, argv, util::Cli::with_bench_defaults({}));
  EXPECT_THROW(exp::options_from_cli(cli), std::runtime_error);
}

TEST(Campaign, MergeWithoutStoreFromCliIsRejectedByTheRunner) {
  const char* argv[] = {"bench", "--merge"};
  util::Cli cli(2, argv, util::Cli::with_bench_defaults({}));
  EXPECT_THROW(exp::run_experiment(awkward_spec(), exp::options_from_cli(cli)),
               std::invalid_argument);
}

TEST(Campaign, OutOfRangeShardIsRejected) {
  exp::RunnerOptions options;
  options.shard = exp::Shard{2, 2};
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
  options.shard = exp::Shard{-1, 2};
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

TEST(Campaign, ConfigEntersTheFingerprint) {
  auto spec = awkward_spec();
  spec.config = "--battery kibam";
  auto changed = awkward_spec();
  changed.config = "--battery peukert";
  EXPECT_NE(exp::spec_fingerprint(spec), exp::spec_fingerprint(changed));
}

TEST(Campaign, ConfigSummaryExcludesEngineFlags) {
  const char* argv_a[] = {"bench",      "--battery",     "kibam",
                          "--jobs",     "7",             "--shard",
                          "0/2",        "--cache",       "dir",
                          "--progress", "--cache-compact", "--store",
                          "sqlite",     "--job-timeout", "3",
                          "--job-attempts", "2",         "--keep-going"};
  util::Cli a(18, argv_a,
              util::Cli::with_bench_defaults({{"battery", "kibam"}}));
  const char* argv_b[] = {"bench", "--battery", "kibam"};
  util::Cli b(3, argv_b,
              util::Cli::with_bench_defaults({{"battery", "kibam"}}));
  // Campaign/engine flags must not perturb the sweep identity — a
  // store full of results stays valid when the backend or the retry
  // policy changes...
  EXPECT_EQ(a.config_summary(), b.config_summary());
  // ...but driver parameters must.
  const char* argv_c[] = {"bench", "--battery", "peukert"};
  util::Cli c(3, argv_c,
              util::Cli::with_bench_defaults({{"battery", "kibam"}}));
  EXPECT_NE(b.config_summary(), c.config_summary());
  EXPECT_NE(b.config_summary().find("--battery kibam"), std::string::npos);
}

}  // namespace
}  // namespace bas
