// Integration & property tests across the whole stack: the paper's
// central guarantee — the methodology never violates deadlines or
// precedence constraints, for ANY combination of DVS policy and priority
// function — swept over random workloads, plus end-to-end shape checks
// of the headline results.

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/compare.hpp"
#include "battery/kibam.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tgff/workload.hpp"

namespace bas {
namespace {

// ---- the deadline-safety property sweep -----------------------------------

struct SweepCase {
  core::SchemeKind kind;
  int graphs;
  std::uint64_t seed;
};

class DeadlineSafety
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DeadlineSafety, NoMissesNoViolationsUnderEdfGuarantee) {
  const auto [kind_idx, graphs, seed] = GetParam();
  const auto kind = core::table2_schemes()[static_cast<std::size_t>(kind_idx)];

  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919u + 13u);
  tgff::WorkloadParams wp;
  wp.graph_count = graphs;
  wp.target_utilization = 0.95;  // inside the EDF guarantee
  wp.period_lo_s = 0.05;
  wp.period_hi_s = 0.5;
  const auto set = tgff::make_workload(wp, rng);

  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 5.0;
  config.drain = true;
  config.seed = static_cast<std::uint64_t>(seed) + 1000u;
  config.record_trace = true;

  const auto result = sim::simulate_scheme(set, proc, kind, config);
  EXPECT_EQ(result.deadline_misses, 0u) << core::to_string(kind);
  const auto audit = sim::audit_trace(result.trace, set, proc, true);
  EXPECT_TRUE(audit.ok) << core::to_string(kind) << ": " << audit.summary();
  EXPECT_EQ(result.instances_released, result.instances_completed);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesGraphsSeeds, DeadlineSafety,
    ::testing::Combine(::testing::Range(0, 5),       // all 5 schemes
                       ::testing::Values(1, 3, 6),   // set sizes
                       ::testing::Values(1, 2, 3)));  // workload seeds

// ---- any DVS x any priority composes safely (paper §4 closing claim) ------

class Composability
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Composability, ArbitraryCompositionMeetsDeadlines) {
  const auto [dvs_idx, prio_idx, scope_idx] = GetParam();
  const auto proc = dvs::Processor::paper_default();

  auto make_dvs = [&]() -> std::unique_ptr<dvs::DvsPolicy> {
    switch (dvs_idx) {
      case 0:
        return dvs::make_no_dvs(proc.fmax_hz());
      case 1:
        return dvs::make_static_dvs(proc.fmax_hz());
      case 2:
        return dvs::make_cc_edf(proc.fmax_hz());
      default:
        return dvs::make_la_edf(proc.fmax_hz());
    }
  };
  auto make_prio = [&]() -> std::unique_ptr<sched::PriorityPolicy> {
    switch (prio_idx) {
      case 0:
        return sched::make_pubs_priority();
      case 1:
        return sched::make_ltf_priority();
      case 2:
        return sched::make_stf_priority();
      case 3:
        return sched::make_fifo_priority();
      default:
        return sched::make_random_priority(99);
    }
  };
  const auto scope = scope_idx == 0 ? core::ReadyScope::kMostImminent
                                    : core::ReadyScope::kAllReleased;

  util::Rng rng(static_cast<std::uint64_t>(dvs_idx * 100 + prio_idx * 10 +
                                           scope_idx));
  tgff::WorkloadParams wp;
  wp.graph_count = 4;
  wp.target_utilization = 0.9;
  wp.period_lo_s = 0.05;
  wp.period_hi_s = 0.5;
  const auto set = tgff::make_workload(wp, rng);

  core::Scheme scheme = core::make_custom_scheme(
      "custom", make_dvs(), make_prio(), sched::make_history_estimator(),
      scope);
  sim::SimConfig config;
  config.horizon_s = 3.0;
  config.record_trace = true;
  sim::Simulator simulator(set, proc, scheme, config);
  const auto result = simulator.run();
  EXPECT_EQ(result.deadline_misses, 0u)
      << "dvs=" << dvs_idx << " prio=" << prio_idx << " scope=" << scope_idx;
  const auto audit = sim::audit_trace(result.trace, set, proc, true);
  EXPECT_TRUE(audit.ok) << audit.summary();
}

INSTANTIATE_TEST_SUITE_P(
    DvsPriorityScope, Composability,
    ::testing::Combine(::testing::Range(0, 4),    // 4 DVS policies
                       ::testing::Range(0, 5),    // 5 priorities
                       ::testing::Range(0, 2)));  // 2 scopes

// ---- headline shape checks -------------------------------------------------

TEST(Headline, DvsSavesEnergyOverNoDvs) {
  util::Rng rng(404);
  const auto set = tgff::paper_workload(3, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 20.0;
  config.record_profile = false;
  const auto outcomes = analysis::compare_schemes(
      set, proc,
      {core::SchemeKind::kEdfNoDvs, core::SchemeKind::kCcEdfRandom,
       core::SchemeKind::kLaEdfRandom},
      config);
  EXPECT_GT(outcomes[0].result.energy_j, outcomes[1].result.energy_j);
  EXPECT_GT(outcomes[0].result.energy_j, outcomes[2].result.energy_j);
}

TEST(Headline, Table2LifetimeOrderingOnFixedSeed) {
  // The paper's Table 2 ordering on one fixed, representative seed (the
  // full distributional claim is the bench's job; a unit test needs a
  // deterministic assertion).
  util::Rng rng(2006);
  tgff::WorkloadParams wp;
  wp.graph_count = 3;
  wp.target_utilization = 0.7 / 0.6;  // 70% actual utilization regime
  wp.period_lo_s = 0.5;
  wp.period_hi_s = 5.0;
  const auto set = tgff::make_workload(wp, rng);

  const auto proc = dvs::Processor::paper_default();
  const bat::KibamBattery battery(bat::KibamParams::paper_aaa_nimh());
  sim::SimConfig config;
  config.horizon_s = 24.0 * 3600.0;
  config.drain = false;
  config.record_profile = false;
  config.ac_model = sim::AcModel::kPerNodeMean;
  config.seed = 99;

  const auto outcomes = analysis::compare_schemes(
      set, proc, core::table2_schemes(), config, &battery);
  ASSERT_EQ(outcomes.size(), 5u);
  const double edf = outcomes[0].result.battery_lifetime_s;
  const double cc = outcomes[1].result.battery_lifetime_s;
  const double la = outcomes[2].result.battery_lifetime_s;
  const double bas1 = outcomes[3].result.battery_lifetime_s;
  const double bas2 = outcomes[4].result.battery_lifetime_s;
  EXPECT_LT(edf, cc);
  EXPECT_LT(cc, la);
  EXPECT_LE(la, bas1 * (1.0 + 1e-9));
  EXPECT_LT(la, bas2);
  EXPECT_GT(bas2, bas1 * 0.999);
  // Everyone died; no scheme hit the horizon cap.
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.result.battery_died) << o.scheme;
    EXPECT_EQ(o.result.deadline_misses, 0u) << o.scheme;
  }
}

TEST(Headline, Bas2ProfileIsSmootherThanNoDvs) {
  // Guideline-1 proxy: BAS-2's current profile has far fewer upward
  // jumps per unit time than EDF-without-DVS's on/off profile.
  util::Rng rng(7);
  const auto set = tgff::paper_workload(3, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 20.0;
  const auto edf = sim::simulate_scheme(
      set, proc, core::SchemeKind::kEdfNoDvs, config);
  const auto bas2 =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  EXPECT_LT(bas2.profile.increase_count(),
            edf.profile.increase_count() / 2);
}

TEST(Headline, NearOptimalReferenceLowerBoundsOrderedSchemes) {
  util::Rng rng(31);
  tgff::WorkloadParams wp;
  wp.graph_count = 4;
  wp.target_utilization = 0.9;
  const auto set = tgff::make_workload(wp, rng);
  const auto proc = dvs::Processor::paper_default();
  sim::SimConfig config;
  config.horizon_s = 10.0;
  config.record_profile = false;
  const double near_opt = analysis::near_optimal_energy_j(set, proc, config);
  const auto bas2 =
      sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config);
  // Precedence-free oracle scheduling should not lose to the constrained
  // real scheme (allow 2% tolerance: it is a heuristic, not a bound).
  EXPECT_LT(near_opt, bas2.energy_j * 1.02);
}

TEST(StripPrecedence, KeepsNodesDropsEdges) {
  util::Rng rng(8);
  const auto set = tgff::paper_workload(2, rng);
  const auto stripped = analysis::strip_precedence(set);
  ASSERT_EQ(stripped.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(stripped.graph(i).node_count(), set.graph(i).node_count());
    EXPECT_EQ(stripped.graph(i).edge_count(), 0u);
    EXPECT_DOUBLE_EQ(stripped.graph(i).total_wcet_cycles(),
                     set.graph(i).total_wcet_cycles());
    EXPECT_DOUBLE_EQ(stripped.graph(i).period(), set.graph(i).period());
  }
}

TEST(Schemes, FactoryShapesMatchTable2) {
  const auto kinds = core::table2_schemes();
  ASSERT_EQ(kinds.size(), 5u);
  const auto edf = core::make_scheme(core::SchemeKind::kEdfNoDvs, 1e9);
  EXPECT_EQ(edf.dvs->name(), "noDVS");
  EXPECT_EQ(edf.priority->name(), "Random");
  EXPECT_EQ(edf.scope, core::ReadyScope::kMostImminent);
  const auto bas2 = core::make_scheme(core::SchemeKind::kBas2, 1e9);
  EXPECT_EQ(bas2.dvs->name(), "laEDF");
  EXPECT_EQ(bas2.priority->name(), "pUBS");
  EXPECT_EQ(bas2.scope, core::ReadyScope::kAllReleased);
  EXPECT_EQ(bas2.name, "BAS-2");
}

TEST(Schemes, CustomCompositionValidatesComponents) {
  EXPECT_THROW(core::make_custom_scheme("x", nullptr,
                                        sched::make_pubs_priority(),
                                        sched::make_oracle_estimator(),
                                        core::ReadyScope::kMostImminent),
               std::invalid_argument);
}

}  // namespace
}  // namespace bas
