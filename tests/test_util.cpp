// Unit tests for the util substrate: RNG determinism and distribution
// sanity, statistics accumulators, tables and CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bas {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(0.2, 1.0);
    ASSERT_GE(u, 0.2);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  util::Rng rng(99);
  util::Accumulator acc;
  for (int i = 0; i < 200000; ++i) {
    acc.add(rng.uniform(0.2, 1.0));
  }
  EXPECT_NEAR(acc.mean(), 0.6, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  util::Rng rng(3);
  std::map<int, int> histogram;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    ++histogram[v];
  }
  EXPECT_EQ(histogram.size(), 4u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 2000) << "value " << value << " undersampled";
  }
}

TEST(Rng, BernoulliExtremes) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  util::Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  util::Rng rng(8);
  util::Accumulator acc;
  for (int i = 0; i < 200000; ++i) {
    acc.add(rng.exponential(2.5));
  }
  EXPECT_NEAR(acc.mean(), 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  util::Rng rng(9);
  util::Accumulator acc;
  for (int i = 0; i < 200000; ++i) {
    acc.add(rng.normal(10.0, 3.0));
  }
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.05);
}

TEST(Rng, DeriveProducesIndependentStreams) {
  const util::Rng base(123);
  util::Rng a = base.derive(1);
  util::Rng b = base.derive(2);
  util::Rng a2 = base.derive(1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  util::Rng a3 = base.derive(1);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(util::Rng::hash_combine(1, 2), util::Rng::hash_combine(2, 1));
  EXPECT_EQ(util::Rng::hash_combine(1, 2), util::Rng::hash_combine(1, 2));
}

TEST(Accumulator, BasicMoments) {
  util::Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.add(v);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  util::Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Sample, QuantileInterpolation) {
  util::Sample s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Sample, GeometricMean) {
  EXPECT_NEAR(util::geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_EQ(util::geometric_mean({}), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  util::Table t({"name", "value"});
  t.add_row({"alpha", util::Table::num(1.5, 1)});
  t.add_row({"b", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("alpha  1.5"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(util::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::Table::num(static_cast<long long>(42)), "42");
}

TEST(Cli, ParsesValuesAndFlags) {
  const char* argv[] = {"prog", "--sets", "25", "--full", "--seed=9"};
  util::Cli cli(5, argv,
                {{"sets", "10"}, {"full", "false"}, {"seed", "1"}});
  EXPECT_EQ(cli.get_int("sets"), 25);
  EXPECT_TRUE(cli.get_flag("full"));
  EXPECT_EQ(cli.get_u64("seed"), 9u);
}

TEST(Cli, ValueOptionHoldingZeroOrOneStillConsumesItsArgument) {
  // Regression: flag-ness comes from the declared default ("false" /
  // "true"), never from the current value, so --seed 7 must not be
  // misread as a bare flag just because the default is "1".
  const char* argv[] = {"prog", "--seed", "7", "--full"};
  util::Cli cli(4, argv, {{"seed", "1"}, {"full", "false"}});
  EXPECT_EQ(cli.get_u64("seed"), 7u);
  EXPECT_TRUE(cli.get_flag("full"));
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, DefaultsApply) {
  const char* argv[] = {"prog"};
  util::Cli cli(1, argv, {{"sets", "10"}});
  EXPECT_EQ(cli.get_int("sets"), 10);
}

TEST(Cli, UnknownOptionThrows) {
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(util::Cli(3, argv, {{"sets", "10"}}), std::runtime_error);
}

TEST(Cli, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "file.csv", "--sets", "3"};
  util::Cli cli(4, argv, {{"sets", "10"}});
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.csv");
}

}  // namespace
}  // namespace bas
