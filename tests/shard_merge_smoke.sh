#!/usr/bin/env bash
# Campaign-layer acceptance smoke (ctest: campaign_shard_merge_resume).
#
# Against a representative engine driver (fig6_ordering_schemes by
# default) this verifies, byte-for-byte via cmp:
#
#   1. shard-merge:  --shard 0/2 + --shard 1/2 into one --cache dir,
#                    then --merge, equals a fresh --jobs 4 run;
#   2. resume:       a cache primed with only half the jobs (standing in
#                    for an interrupted run) plus a resumed full run
#                    equals the fresh run;
#   3. stale cache:  a run with a different --seed against the old cache
#                    ignores it (fingerprint mismatch) and still equals
#                    its own fresh run.
#
# Usage: shard_merge_smoke.sh /path/to/driver [driver flags...]
# Extra arguments replace the default small-run flags (which fit
# fig6_ordering_schemes); pass driver-appropriate ones for other
# binaries, e.g. arrival_stress --sets 2 --scenario.horizon 900.

set -euo pipefail

bin="$1"
shift
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

if [ "$#" -gt 0 ]; then
  small="$*"
else
  small="--sets 2 --max-graphs 4 --horizon 10"
fi

# 1. Fresh single-process reference, then two shards + merge.
"$bin" $small --seed 6 --jobs 4 --csv "$work/fresh.csv" > /dev/null
"$bin" $small --seed 6 --jobs 2 --shard 0/2 --cache "$work/cache" --progress > /dev/null 2> "$work/progress.log"
"$bin" $small --seed 6 --jobs 2 --shard 1/2 --cache "$work/cache" > /dev/null
"$bin" $small --seed 6 --merge --cache "$work/cache" --csv "$work/merged.csv" > /dev/null
cmp "$work/fresh.csv" "$work/merged.csv"

# The progress reporter heartbeats on stderr without touching stdout.
grep -q "jobs" "$work/progress.log"

# 2. Interrupted-then-resumed: prime a cache with half the jobs, then
#    let a full run resume the rest from it.
"$bin" $small --seed 6 --jobs 2 --shard 0/2 --cache "$work/resume" > /dev/null
"$bin" $small --seed 6 --jobs 4 --cache "$work/resume" --csv "$work/resumed.csv" > /dev/null
cmp "$work/fresh.csv" "$work/resumed.csv"

# 3. Stale fingerprint: the seed-6 cache must not serve a seed-7 sweep.
"$bin" $small --seed 7 --jobs 4 --csv "$work/fresh7.csv" > /dev/null
"$bin" $small --seed 7 --jobs 4 --cache "$work/resume" --csv "$work/resumed7.csv" > /dev/null
cmp "$work/fresh7.csv" "$work/resumed7.csv"
if cmp -s "$work/fresh.csv" "$work/fresh7.csv"; then
  echo "seed 6 and seed 7 produced identical output; smoke is vacuous" >&2
  exit 1
fi

echo "campaign smoke: OK"
