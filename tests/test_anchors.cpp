// Paper-anchor regression thresholds: the repo's reason to exist is
// that battery-aware ordering (BAS-2) outlives plain laEDF on the
// paper's evaluation worlds. These smoke-scale sweeps pin that shape
// per scenario so an estimator, feasibility or calibration regression
// fails loudly in ctest/CI instead of silently flattening the gap.
//
// The runs are deterministic (fixed seed, fixed replicate count, the
// engine's thread-count-invariant fold), so the assertions either hold
// on every run or on none — there is no flake margin to tune.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

/// Scheme-axis index by label, so a reordered axis fails loudly
/// instead of silently gating on the wrong schemes.
std::size_t scheme_index(const std::string& label) {
  const auto& labels = exp::scheme_labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      return i;
    }
  }
  throw std::logic_error("scheme label '" + label + "' not on the axis");
}

struct AnchorResult {
  std::vector<double> lifetime_by_scheme;
  double edf() const { return lifetime_by_scheme.at(scheme_index("EDF")); }
  double laedf() const {
    return lifetime_by_scheme.at(scheme_index("laEDF"));
  }
  double bas2() const {
    return lifetime_by_scheme.at(scheme_index("BAS-2"));
  }
};

/// Mean battery lifetime per Table-2 scheme on a scenario preset, at
/// smoke scale (4 replicates — the same order of magnitude the CI
/// determinism smokes run).
AnchorResult run_anchor(const std::string& scenario_name) {
  const auto& scn = scenario::scenario(scenario_name);
  const auto proc = scn.make_processor();

  exp::ExperimentSpec spec;
  spec.title = "anchor_" + scenario_name;
  spec.grid.add("scheme", exp::scheme_labels());
  spec.metrics = {"lifetime_min"};
  spec.replicates = 4;
  spec.seed = 2006;  // table2_battery_lifetime's default seed
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.replicate_seed);
    const auto set = scn.make_workload(rng);
    const auto config =
        scn.sim_config(util::Rng::hash_combine(job.replicate_seed, 1000u));
    const auto battery = scn.make_battery();
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(0)), config, battery.get());
    EXPECT_TRUE(r.battery_died) << scenario_name << ": horizon too short "
                                   "for a lifetime anchor";
    return {r.battery_lifetime_s / 60.0};
  };

  const auto result = exp::run_experiment(spec, 4);
  AnchorResult anchor;
  for (std::size_t k = 0; k < exp::scheme_labels().size(); ++k) {
    anchor.lifetime_by_scheme.push_back(result.mean(k, 0));
    EXPECT_GT(anchor.lifetime_by_scheme.back(), 0.0);
  }
  return anchor;
}

TEST(PaperAnchors, Bas2OutlivesLaEdfOnPaperTable2) {
  const auto anchor = run_anchor("paper-table2");
  // The paper's headline: BAS-2 gains up to +23.3% lifetime over laEDF.
  // Our calibration sits lower at smoke scale (see EXPERIMENTS.md), but
  // the gain must stay strictly positive — 0.1% slack only absorbs
  // last-digit rounding, not a real regression.
  EXPECT_GE(anchor.bas2(), 1.001 * anchor.laedf())
      << "BAS-2 lifetime " << anchor.bas2() << " min vs laEDF "
      << anchor.laedf() << " min";
  // And DVS must beat no-DVS by a wide margin (Table 2 shape).
  EXPECT_GE(anchor.laedf(), 1.2 * anchor.edf());
}

TEST(PaperAnchors, Bas2OutlivesLaEdfOnPaperGuideline1) {
  // The high-load regime where the discharge-profile shape (Guideline
  // 1) decides the gap — the anchor the battery models earn their keep
  // on.
  const auto anchor = run_anchor("paper-guideline1");
  EXPECT_GE(anchor.bas2(), 1.001 * anchor.laedf())
      << "BAS-2 lifetime " << anchor.bas2() << " min vs laEDF "
      << anchor.laedf() << " min";
}

}  // namespace
}  // namespace bas
