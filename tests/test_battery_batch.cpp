// Batch-probe and instrumentation suite for the kernel work of PR 8:
// the sigma_after_batch contract (bit-identical to the scalar probe
// sequence, lane for lane, across every model and memo state including
// post-bisection), the diffusion strength-reduced interval advance, the
// per-kernel counters behind BAS_KERNEL_COUNTERS, and the batched
// estimator / priority entry points' equivalence to their scalar call
// sequences.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/peukert.hpp"
#include "battery/stochastic.hpp"
#include "core/scheme.hpp"
#include "scenario/scenario.hpp"
#include "sched/estimator.hpp"
#include "sched/priority.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

constexpr double kCap = bat::to_coulombs(2000.0);

std::vector<std::unique_ptr<bat::Battery>> all_models() {
  std::vector<std::unique_ptr<bat::Battery>> models;
  models.push_back(std::make_unique<bat::IdealBattery>(kCap));
  models.push_back(std::make_unique<bat::PeukertBattery>(bat::PeukertParams{}));
  models.push_back(
      std::make_unique<bat::KibamBattery>(bat::KibamParams::paper_aaa_nimh()));
  models.push_back(std::make_unique<bat::DiffusionBattery>(
      bat::DiffusionParams::paper_aaa_nimh()));
  models.push_back(
      std::make_unique<bat::StochasticBattery>(bat::StochasticParams{}));
  return models;
}

// Probe currents shaped like simulator traffic: idle, the paper
// processor's three operating points, and an out-of-range heavy lane.
const std::vector<double> kLanes = {0.0, 0.01, 0.3888, 0.98415, 1.8, 2.5};

TEST(SigmaBatch, MatchesScalarBitwiseAcrossModels) {
  for (const auto& model : all_models()) {
    // Warm each cell with a mixed draw history so the probes run
    // against mid-life state, not just the fresh cell.
    model->draw(0.3888, 30.0);
    model->draw(0.0, 10.0);
    model->draw(1.8, 5.0);

    std::vector<double> batch(kLanes.size());
    // Repeated t values on purpose: the second pass must ride the
    // t-keyed memos and still reproduce the scalar sequence exactly.
    for (const double t : {0.0, 0.5, 37.5, 0.5, 3600.0, 37.5}) {
      model->sigma_after_batch(kLanes, t, batch);
      for (std::size_t i = 0; i < kLanes.size(); ++i) {
        ASSERT_EQ(batch[i], model->sigma_after(kLanes[i], t))
            << model->name() << " lane " << i << " t=" << t;
      }
    }
  }
}

TEST(SigmaBatch, MatchesScalarAfterBisectionProbes) {
  // Drive a diffusion cell through the cutoff bisection (80 probe
  // rounds at shrinking t) so the decay memo holds a bisection
  // midpoint, then check the batch still equals the scalar sequence.
  bat::DiffusionBattery cell(bat::DiffusionParams::paper_aaa_nimh());
  cell.draw(1.8, 3000.0);
  const double sustained = cell.draw(5.0, 1e7);
  ASSERT_TRUE(cell.empty());
  ASSERT_GT(sustained, 0.0);
  std::vector<double> batch(kLanes.size());
  for (const double t : {0.25, 12.0, 0.25}) {
    cell.sigma_after_batch(kLanes, t, batch);
    for (std::size_t i = 0; i < kLanes.size(); ++i) {
      ASSERT_EQ(batch[i], cell.sigma_after(kLanes[i], t)) << "lane " << i;
    }
  }
}

TEST(SigmaBatch, ProbeDoesNotPerturbDrawTrajectory) {
  // Twin cells, identical draw sequence; one is probed heavily between
  // draws. Every sustained duration and the transient state must stay
  // bitwise equal — the probe contract ("never changes observable
  // state").
  bat::DiffusionBattery quiet(bat::DiffusionParams::paper_aaa_nimh());
  bat::DiffusionBattery probed(bat::DiffusionParams::paper_aaa_nimh());
  std::vector<double> sink(kLanes.size());
  const double currents[] = {0.3888, 0.0, 1.8, 0.98415};
  const double dts[] = {0.5, 7.0, 0.125, 42.0};
  for (int round = 0; round < 200; ++round) {
    const double i = currents[round % 4];
    const double dt = dts[(round * 3) % 4];
    probed.sigma_after_batch(kLanes, 0.75 * (round % 5), sink);
    ASSERT_EQ(quiet.draw(i, dt), probed.draw(i, dt)) << "round " << round;
    ASSERT_EQ(quiet.unavailable_c(), probed.unavailable_c())
        << "round " << round;
  }
  EXPECT_EQ(quiet.charge_delivered_c(), probed.charge_delivered_c());
}

TEST(SigmaBatch, RejectsShortOutputAndNegativeTime) {
  bat::IdealBattery cell(kCap);
  std::vector<double> out(2);
  EXPECT_THROW(cell.sigma_after_batch(kLanes, 1.0, out),
               std::invalid_argument);
  std::vector<double> ok(kLanes.size());
  EXPECT_THROW(cell.sigma_after_batch(kLanes, -1.0, ok),
               std::invalid_argument);
}

TEST(FastAdvance, NonDiffusionIntervalAdvanceIsBitwiseDraw) {
  // Every kernel except diffusion leaves do_advance_interval at its
  // default — exactly do_draw — so a merged-window advance must equal
  // the equivalent draw to the last bit (this is what keeps window-0
  // event runs byte-identical to tick runs).
  auto draws = all_models();
  auto advances = all_models();
  for (std::size_t m = 0; m < draws.size(); ++m) {
    if (draws[m]->name() == "diffusion") {
      continue;  // overrides do_advance_interval; covered below
    }
    for (int round = 0; round < 50; ++round) {
      const double i = (round % 3 == 0) ? 0.0 : 0.45 * (1 + round % 4);
      const double dt = 0.5 + (round % 7);
      // advance_interval reconstructs current as charge/dt; feed it the
      // product so both paths see bitwise the same current.
      const double charge = i * dt;
      const double got = advances[m]->advance_interval(charge, dt);
      const double want = draws[m]->draw(charge / dt, dt);
      ASSERT_EQ(got, want) << draws[m]->name() << " round " << round;
      ASSERT_EQ(advances[m]->charge_delivered_c(),
                draws[m]->charge_delivered_c())
          << draws[m]->name() << " round " << round;
      ASSERT_EQ(advances[m]->state_of_charge(), draws[m]->state_of_charge())
          << draws[m]->name() << " round " << round;
    }
  }
}

TEST(FastAdvance, DiffusionFastSeriesTracksExactSeries) {
  // The strength-reduced series (x = e^{-β²t}, x^{m²} by recurrence) is
  // the same mathematical sum as the per-term exp sweep, associated
  // differently — so it is NOT bitwise, but must agree to far below any
  // output precision. One cell advances through the fast path, the twin
  // through the exact per-slice path.
  bat::DiffusionBattery fast(bat::DiffusionParams::paper_aaa_nimh());
  bat::DiffusionBattery exact(bat::DiffusionParams::paper_aaa_nimh());
  const double currents[] = {1.8, 0.0, 0.98415, 0.3888};
  for (int round = 0; round < 400 && !exact.empty(); ++round) {
    const double i = currents[round % 4];
    const double dt = 2.0 + (round % 9);
    fast.advance_interval(i * dt, dt);
    exact.draw(i, dt);
    const double rel =
        std::abs(fast.apparent_charge_c() - exact.apparent_charge_c()) /
        exact.apparent_charge_c();
    ASSERT_LT(rel, 1e-12) << "round " << round;
  }
  // Death through the fast bisection lands within the same tolerance.
  const double fast_cut = fast.advance_interval(5.0 * 1e6, 1e6);
  const double exact_cut = exact.draw(5.0, 1e6);
  EXPECT_TRUE(fast.empty());
  EXPECT_TRUE(exact.empty());
  EXPECT_NEAR(fast_cut, exact_cut, 1e-6 * std::max(1.0, exact_cut));
}

TEST(Counters, DiffusionMemoAndFastPathAttribution) {
  bat::DiffusionBattery cell(bat::DiffusionParams::paper_aaa_nimh());
  const auto& kc = cell.kernel_counters();
  if (!bat::KernelCounters::compiled_in) {
    cell.draw(1.8, 0.5);
    cell.advance_interval(0.9, 0.5);
    EXPECT_EQ(kc.exp_calls, 0u);
    EXPECT_EQ(kc.fast_advances, 0u);
    EXPECT_EQ(kc.decay_misses, 0u);
    return;  // the OFF config compiles every increment out
  }
  const auto terms = static_cast<std::uint64_t>(
      bat::DiffusionParams::paper_aaa_nimh().series_terms);
  // Three draws at one (current, dt): one decay sweep, then memo hits.
  for (int i = 0; i < 3; ++i) {
    cell.draw(1.8, 0.5);
  }
  EXPECT_EQ(cell.kernel_counters().exp_sweeps, 1u);
  EXPECT_EQ(cell.kernel_counters().exp_calls, terms);
  EXPECT_EQ(cell.kernel_counters().decay_misses, 1u);
  EXPECT_GE(cell.kernel_counters().decay_hits, 2u);
  EXPECT_EQ(cell.kernel_counters().gain_misses, 1u);
  // A changed current at the same t refills only the gain lane.
  cell.draw(0.3888, 0.5);
  EXPECT_EQ(cell.kernel_counters().exp_sweeps, 1u);
  EXPECT_EQ(cell.kernel_counters().gain_misses, 2u);
  // The merged-window fast path: one scalar exp per advance, no sweep.
  const auto exps_before = cell.kernel_counters().exp_calls;
  cell.advance_interval(1.8 * 4.0, 4.0);
  EXPECT_EQ(cell.kernel_counters().fast_advances, 1u);
  EXPECT_EQ(cell.kernel_counters().exp_calls, exps_before + 1);
  EXPECT_EQ(cell.kernel_counters().exp_sweeps, 1u);
  // Batch accounting and reset.
  std::vector<double> out(kLanes.size());
  cell.sigma_after_batch(kLanes, 2.0, out);
  EXPECT_EQ(cell.kernel_counters().batch_calls, 1u);
  EXPECT_EQ(cell.kernel_counters().batch_lanes, kLanes.size());
  cell.reset();
  EXPECT_EQ(cell.kernel_counters().exp_calls, 0u);
  EXPECT_EQ(cell.kernel_counters().fast_advances, 0u);
}

TEST(Counters, KibamAndPeukertAttribution) {
  if (!bat::KernelCounters::compiled_in) {
    GTEST_SKIP() << "BAS_KERNEL_COUNTERS=0 build";
  }
  bat::KibamBattery kibam(bat::KibamParams::paper_aaa_nimh());
  kibam.draw(0.9, 10.0);
  kibam.draw(0.0, 5.0);
  EXPECT_GE(kibam.kernel_counters().kibam_shared_exps, 2u);

  bat::PeukertBattery peukert{bat::PeukertParams{}};
  for (int i = 0; i < 4; ++i) {
    peukert.draw(0.9, 10.0);
  }
  peukert.draw(1.8, 10.0);
  EXPECT_EQ(peukert.kernel_counters().pow_misses, 2u);  // two distinct rates
  EXPECT_GE(peukert.kernel_counters().pow_hits, 3u);
}

TEST(Batch, HistoryEstimatorBatchMatchesScalarSequence) {
  auto batched = sched::make_history_estimator(0.3);
  auto scalar = sched::make_history_estimator(0.3);
  for (int round = 0; round < 5; ++round) {
    batched->observe(0, 1, 4000.0 + 100.0 * round);
    scalar->observe(0, 1, 4000.0 + 100.0 * round);
  }
  batched->observe(2, 0, 900.0);
  scalar->observe(2, 0, 900.0);
  // Seen, unseen-node, unseen-graph lanes in one batch.
  const std::vector<sched::EstimateQuery> queries = {
      {0, 1, 5000.0, 4100.0},
      {0, 7, 5000.0, 4100.0},
      {5, 0, 1000.0, 700.0},
      {2, 0, 1200.0, 800.0},
  };
  std::vector<double> out(queries.size());
  batched->estimate_batch(queries.data(), queries.size(), out.data());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(out[i],
              scalar->estimate(queries[i].graph, queries[i].node,
                               queries[i].wc_cycles,
                               queries[i].actual_cycles))
        << "lane " << i;
  }
}

std::vector<sched::Candidate> sample_candidates() {
  std::vector<sched::Candidate> cands;
  for (int i = 0; i < 5; ++i) {
    sched::Candidate c;
    c.graph = i % 3;
    c.node = static_cast<tg::NodeId>(i);
    c.wc_cycles = 5.0e5 * (i + 1);
    c.estimate_cycles = 3.1e5 * (i + 1);
    c.graph_abs_deadline_s = 0.25 * (i + 2);
    c.graph_remaining_wc_cycles = 2.0e6 - 1.0e5 * i;
    c.edf_position = i % 3;
    cands.push_back(c);
  }
  return cands;
}

TEST(Batch, PubsScoreBatchMatchesScalarSequence) {
  auto policy = sched::make_pubs_priority();
  const auto cands = sample_candidates();
  std::vector<double> out(cands.size());
  policy->score_batch(cands.data(), cands.size(), 0.1, out.data());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    ASSERT_EQ(out[i], policy->score(cands[i], 0.1)) << "lane " << i;
  }
}

TEST(Batch, RandomScoreBatchConsumesStreamExactlyLikeScalar) {
  // The CRN contract: the batch must advance the internal stream draw
  // for draw like the scalar sequence, so two same-seed policies stay
  // aligned through mixed batch/scalar use.
  auto batched = sched::make_random_priority(99);
  auto scalar = sched::make_random_priority(99);
  const auto cands = sample_candidates();
  std::vector<double> out(cands.size());
  batched->score_batch(cands.data(), cands.size(), 0.0, out.data());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    ASSERT_EQ(out[i], scalar->score(cands[i], 0.0)) << "lane " << i;
  }
  // Streams are still in lockstep after the batch.
  EXPECT_EQ(batched->score(cands[0], 1.0), scalar->score(cands[0], 1.0));
}

TEST(EngineCounters, EventEngineRoutesMergedWindowsThroughFastPath) {
  if (!bat::KernelCounters::compiled_in) {
    GTEST_SKIP() << "BAS_KERNEL_COUNTERS=0 build";
  }
  const auto& spec = scenario::scenario("paper-table2");
  util::Rng rng(7);
  const auto set = spec.make_workload(rng);
  const auto proc = spec.make_processor();
  auto config = spec.sim_config(util::Rng::hash_combine(7, 1000u));
  config.engine = sim::Engine::kEvent;
  config.record_perf_counters = true;
  config.horizon_s = 3600.0;

  bat::DiffusionBattery merged(bat::DiffusionParams::paper_aaa_nimh());
  const auto with_window = sim::simulate_scheme(
      set, proc, core::SchemeKind::kBas2, config, &merged);
  // Merged windows all route through the strength-reduced advance: no
  // per-term sweeps, one exp per advance probe.
  EXPECT_GT(with_window.perf.battery_interval_advances, 0u);
  EXPECT_GE(with_window.perf.kernel.fast_advances,
            with_window.perf.battery_interval_advances);
  EXPECT_EQ(with_window.perf.kernel.exp_sweeps, 0u);
  EXPECT_GT(with_window.perf.kernel.exp_calls, 0u);

  // Window 0 disables merging: every slice takes the exact per-term
  // path (bit-frozen against the tick engine), no fast advances at all.
  config.battery_window_s = 0.0;
  bat::DiffusionBattery exact(bat::DiffusionParams::paper_aaa_nimh());
  const auto no_window = sim::simulate_scheme(
      set, proc, core::SchemeKind::kBas2, config, &exact);
  EXPECT_EQ(no_window.perf.kernel.fast_advances, 0u);
  EXPECT_GT(no_window.perf.kernel.exp_sweeps, 0u);
  EXPECT_GT(no_window.perf.kernel.decay_hits, 0u);
}

}  // namespace
}  // namespace bas
