// Unit tests for the task-graph substrate: construction, validation,
// topological ordering, graph algorithms, and the task-graph set.

#include <gtest/gtest.h>

#include <stdexcept>

#include "taskgraph/algorithms.hpp"
#include "taskgraph/graph.hpp"
#include "taskgraph/set.hpp"

namespace bas {
namespace {

tg::TaskGraph diamond() {
  //      0
  //     / \
  //    1   2
  //     \ /
  //      3
  tg::TaskGraph g(10.0, "diamond");
  g.add_node(1e6);
  g.add_node(2e6);
  g.add_node(3e6);
  g.add_node(4e6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(TaskGraph, BasicConstruction) {
  const auto g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_DOUBLE_EQ(g.period(), 10.0);
  EXPECT_DOUBLE_EQ(g.deadline(), 10.0);
  EXPECT_DOUBLE_EQ(g.total_wcet_cycles(), 1e7);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, AdjacencyIsSymmetricallyRecorded) {
  const auto g = diamond();
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_EQ(g.predecessors(0).size(), 0u);
  EXPECT_EQ(g.successors(3).size(), 0u);
}

TEST(TaskGraph, DuplicateEdgeIgnored) {
  auto g = diamond();
  const auto before = g.edge_count();
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), before);
}

TEST(TaskGraph, SelfLoopRejected) {
  auto g = diamond();
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(TaskGraph, UnknownNodeRejected) {
  auto g = diamond();
  EXPECT_THROW(g.add_edge(0, 99), std::out_of_range);
}

TEST(TaskGraph, CycleDetected) {
  tg::TaskGraph g(1.0);
  g.add_node(1e6);
  g.add_node(1e6);
  g.add_node(1e6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.topological_order(), std::logic_error);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(TaskGraph, TopologicalOrderIsValidAndDeterministic) {
  const auto g = diamond();
  const auto order = g.topological_order();
  EXPECT_TRUE(tg::is_topological_order(g, order));
  EXPECT_EQ(order, g.topological_order());
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
}

TEST(TaskGraph, CriticalPath) {
  const auto g = diamond();
  // 0 -> 2 -> 3 = 1e6 + 3e6 + 4e6.
  EXPECT_DOUBLE_EQ(g.critical_path_cycles(), 8e6);
}

TEST(TaskGraph, SourcesAndSinks) {
  const auto g = diamond();
  EXPECT_EQ(g.sources(), std::vector<tg::NodeId>{0});
  EXPECT_EQ(g.sinks(), std::vector<tg::NodeId>{3});
}

TEST(TaskGraph, ScaleWcet) {
  auto g = diamond();
  g.scale_wcet(2.0);
  EXPECT_DOUBLE_EQ(g.total_wcet_cycles(), 2e7);
  EXPECT_THROW(g.scale_wcet(0.0), std::invalid_argument);
}

TEST(TaskGraph, ValidateRejectsBadInputs) {
  tg::TaskGraph empty(1.0);
  EXPECT_THROW(empty.validate(), std::logic_error);

  tg::TaskGraph no_period;
  no_period.add_node(1e6);
  EXPECT_THROW(no_period.validate(), std::logic_error);

  tg::TaskGraph zero_wc(1.0);
  zero_wc.add_node(0.0);
  EXPECT_THROW(zero_wc.validate(), std::logic_error);
}

TEST(Algorithms, Reachability) {
  const auto g = diamond();
  const auto reach = tg::reachability(g);
  EXPECT_TRUE(reach[0][3]);
  EXPECT_TRUE(reach[0][1]);
  EXPECT_FALSE(reach[1][2]);
  EXPECT_FALSE(reach[3][0]);
}

TEST(Algorithms, AncestorAndDescendantSets) {
  const auto g = diamond();
  const auto anc = tg::ancestor_sets(g);
  const auto desc = tg::descendant_sets(g);
  EXPECT_EQ(anc[3].size(), 3u);
  EXPECT_EQ(anc[0].size(), 0u);
  EXPECT_EQ(desc[0].size(), 3u);
  EXPECT_EQ(desc[3].size(), 0u);
}

TEST(Algorithms, TransitiveReductionRemovesImpliedEdges) {
  auto g = diamond();
  g.add_edge(0, 3);  // implied by 0->1->3
  const auto reduced = tg::transitive_reduction(g);
  EXPECT_EQ(reduced.edge_count(), 4u);
  const auto reach_orig = tg::reachability(g);
  const auto reach_red = tg::reachability(reduced);
  EXPECT_EQ(reach_orig, reach_red);
}

TEST(Algorithms, Levels) {
  const auto g = diamond();
  const auto lvl = tg::levels(g);
  EXPECT_EQ(lvl[0], 0);
  EXPECT_EQ(lvl[1], 1);
  EXPECT_EQ(lvl[2], 1);
  EXPECT_EQ(lvl[3], 2);
}

TEST(Algorithms, CountTopologicalOrders) {
  const auto g = diamond();
  // Orders: 0 {1,2 in either order} 3 -> exactly 2.
  EXPECT_EQ(tg::count_topological_orders(g, 1000), 2u);

  tg::TaskGraph chain(1.0);
  chain.add_node(1e6);
  chain.add_node(1e6);
  chain.add_node(1e6);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_EQ(tg::count_topological_orders(chain, 1000), 1u);

  tg::TaskGraph independent(1.0);
  for (int i = 0; i < 5; ++i) {
    independent.add_node(1e6);
  }
  EXPECT_EQ(tg::count_topological_orders(independent, 1000), 120u);
  EXPECT_EQ(tg::count_topological_orders(independent, 50), 50u);  // saturates
}

TEST(Algorithms, IsTopologicalOrderRejectsBadOrders) {
  const auto g = diamond();
  EXPECT_FALSE(tg::is_topological_order(g, {3, 1, 2, 0}));
  EXPECT_FALSE(tg::is_topological_order(g, {0, 1, 2}));        // wrong size
  EXPECT_FALSE(tg::is_topological_order(g, {0, 1, 1, 3}));     // duplicate
  EXPECT_TRUE(tg::is_topological_order(g, {0, 2, 1, 3}));
}

TEST(TaskGraphSet, UtilizationSumsGraphs) {
  tg::TaskGraphSet set;
  tg::TaskGraph a(1.0);
  a.add_node(3e8);  // 0.3 at 1 GHz
  tg::TaskGraph b(2.0);
  b.add_node(8e8);  // 0.4 at 1 GHz
  set.add(std::move(a));
  set.add(std::move(b));
  EXPECT_NEAR(set.utilization(1e9), 0.7, 1e-12);
  EXPECT_EQ(set.total_nodes(), 2u);
  EXPECT_NO_THROW(set.validate());
}

TEST(TaskGraphSet, EmptySetInvalid) {
  tg::TaskGraphSet set;
  EXPECT_THROW(set.validate(), std::logic_error);
  EXPECT_THROW(set.utilization(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace bas
