// Tests for the scenario layer: registry contents and round-trips, every
// preset building and simulating deterministically, the unknown-name
// error, the CLI override surface, and the factory forwarding that keeps
// exp:: and scenario:: label lists from drifting.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "arrival/arrival.hpp"
#include "exp/factories.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

util::Cli make_cli(std::vector<const char*> args,
                   const std::string& default_scenario = "paper-table2") {
  args.insert(args.begin(), "bench");
  return util::Cli(static_cast<int>(args.size()), args.data(),
                   util::Cli::with_bench_defaults(
                       scenario::with_scenario_defaults({}, default_scenario)));
}

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, HasAtLeastEightDistinctPresets) {
  const auto& names = scenario::scenario_names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (const char* required :
       {"paper-table2", "paper-guideline1", "multimedia-pipeline",
        "sensor-node", "bursty", "overload", "mixed-periods", "idle-heavy",
        "ippp-diurnal", "sporadic-sensor", "poisson-mix", "trace-replay"}) {
    EXPECT_NO_THROW(scenario::scenario(required)) << required;
  }
  // The arrival-process presets actually carry non-periodic clocks.
  EXPECT_EQ(scenario::scenario("ippp-diurnal").sim.arrival.model, "ippp");
  EXPECT_EQ(scenario::scenario("sporadic-sensor").sim.arrival.model,
            "sporadic");
  EXPECT_EQ(scenario::scenario("poisson-mix").sim.arrival.model, "poisson");
  EXPECT_EQ(scenario::scenario("trace-replay").sim.arrival.model,
            "trace-replay");
  EXPECT_EQ(scenario::scenario("paper-table2").sim.arrival.model, "periodic");
}

TEST(ScenarioRegistry, RoundTripsNameAndFingerprint) {
  std::set<std::string> fingerprints;
  for (const auto& name : scenario::scenario_names()) {
    const auto& spec = scenario::scenario(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.summary.empty());
    // Same name -> same spec -> same fingerprint; the fingerprint names
    // the scenario so distinct presets can never collide.
    EXPECT_EQ(spec.fingerprint(), scenario::scenario(name).fingerprint());
    EXPECT_NE(spec.fingerprint().find("scenario=" + name), std::string::npos);
    fingerprints.insert(spec.fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), scenario::scenario_names().size());
}

TEST(ScenarioRegistry, UnknownNameErrorListsValidNames) {
  try {
    scenario::scenario("no-such-world");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-world"), std::string::npos);
    for (const auto& name : scenario::scenario_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(ScenarioRegistry, EveryPresetBuildsItsWorld) {
  for (const auto& name : scenario::scenario_names()) {
    const auto& spec = scenario::scenario(name);
    util::Rng rng(42);
    const auto set = spec.make_workload(rng);
    EXPECT_EQ(set.size(), static_cast<std::size_t>(spec.workload.graph_count))
        << name;
    const auto proc = spec.make_processor();
    EXPECT_NEAR(set.utilization(proc.fmax_hz()),
                spec.worst_case_utilization(), 1e-6)
        << name;
    const auto battery = spec.make_battery();
    ASSERT_NE(battery, nullptr) << name;
    EXPECT_EQ(battery->name(), spec.battery) << name;
  }
}

TEST(ScenarioRegistry, EveryPresetSimulatesDeterministically) {
  for (const auto& name : scenario::scenario_names()) {
    const auto& spec = scenario::scenario(name);
    const auto proc = spec.make_processor();
    auto run_once = [&] {
      util::Rng rng(7);
      const auto set = spec.make_workload(rng);
      auto config = spec.sim_config(99);
      config.horizon_s = 5.0;  // keep the suite fast; drain for equal work
      config.drain = true;
      const auto battery = spec.make_battery();
      return sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config,
                                  battery.get());
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_GT(a.nodes_executed, 0u) << name;
    EXPECT_EQ(a.energy_j, b.energy_j) << name;
    EXPECT_EQ(a.charge_c, b.charge_c) << name;
    EXPECT_EQ(a.end_time_s, b.end_time_s) << name;
    EXPECT_EQ(a.battery_delivered_mah, b.battery_delivered_mah) << name;
  }
}

TEST(ScenarioSpec, UtilizationBasisScalesWorstCaseTarget) {
  auto spec = scenario::scenario("paper-table2");
  ASSERT_EQ(spec.basis, scenario::UtilBasis::kActual);
  // ac in U(0.2, 1.0) -> mean fraction 0.6.
  EXPECT_NEAR(spec.worst_case_utilization(), spec.utilization / 0.6, 1e-12);
  spec.basis = scenario::UtilBasis::kWorstCase;
  EXPECT_EQ(spec.worst_case_utilization(), spec.utilization);
}

// ----------------------------------------------------------------- CLI

TEST(ScenarioCli, SelectsPresetAndAppliesOverrides) {
  const auto cli = make_cli({"--scenario", "bursty",
                             "--scenario.utilization=0.9",
                             "--scenario.graphs", "7",
                             "--scenario.battery=peukert",
                             "--scenario.util-basis=worst-case",
                             "--scenario.horizon", "120",
                             "--scenario.ac-model=per-node-mean"});
  const auto spec = scenario::from_cli(cli);
  EXPECT_EQ(spec.name, "bursty");
  EXPECT_EQ(spec.utilization, 0.9);
  EXPECT_EQ(spec.workload.graph_count, 7);
  EXPECT_EQ(spec.battery, "peukert");
  EXPECT_EQ(spec.basis, scenario::UtilBasis::kWorstCase);
  EXPECT_EQ(spec.sim.horizon_s, 120.0);
  EXPECT_EQ(spec.sim.ac_model, sim::AcModel::kPerNodeMean);
  // Untouched fields keep the preset's values.
  EXPECT_EQ(spec.workload.period_lo_s,
            scenario::scenario("bursty").workload.period_lo_s);
}

TEST(ScenarioCli, OverrideChangesConfigSummaryForCacheInvalidation) {
  const auto plain = make_cli({});
  const auto overridden = make_cli({"--scenario.utilization=0.9"});
  EXPECT_NE(plain.config_summary(), overridden.config_summary());
  EXPECT_NE(overridden.config_summary().find("--scenario.utilization 0.9"),
            std::string::npos);
  // Unset overrides stay out of the summary entirely (they are empty),
  // so adding a new override field later cannot invalidate old caches.
  EXPECT_EQ(plain.config_summary().find("scenario.utilization"),
            std::string::npos);
  // And the fingerprint seen by the experiment spec changes too.
  EXPECT_NE(scenario::from_cli(plain).fingerprint(),
            scenario::from_cli(overridden).fingerprint());
}

TEST(ScenarioCli, BadOverridesThrowWithValidChoices) {
  EXPECT_THROW(scenario::from_cli(make_cli({"--scenario.utilization=fast"})),
               std::invalid_argument);
  EXPECT_THROW(scenario::from_cli(make_cli({"--scenario.ac-model=weird"})),
               std::invalid_argument);
  try {
    scenario::from_cli(make_cli({"--scenario.battery=unobtainium"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    for (const auto& label : scenario::battery_labels()) {
      EXPECT_NE(std::string(e.what()).find(label), std::string::npos);
    }
  }
  try {
    scenario::from_cli(make_cli({"--scenario.processor=quantum"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("continuous"), std::string::npos);
  }
}

TEST(ScenarioCli, EngineOverrideSelectsEngineAndEntersFingerprint) {
  // Default is the event engine; the override flips per spec.
  EXPECT_EQ(scenario::from_cli(make_cli({})).sim.engine, sim::Engine::kEvent);
  const auto tick = scenario::from_cli(make_cli({"--scenario.engine=tick"}));
  EXPECT_EQ(tick.sim.engine, sim::Engine::kTick);
  const auto event = scenario::from_cli(make_cli({"--scenario.engine=event"}));
  EXPECT_EQ(event.sim.engine, sim::Engine::kEvent);
  // Engine choice keys campaign caches: one engine's records must never
  // satisfy the other's jobs.
  EXPECT_NE(tick.fingerprint(), event.fingerprint());
  EXPECT_NE(tick.fingerprint().find("engine=tick"), std::string::npos);
  // So does the merge-window knob (it moves battery figures).
  EXPECT_NE(
      scenario::from_cli(make_cli({"--scenario.battery-window=2.5"}))
          .fingerprint(),
      event.fingerprint());
}

TEST(ScenarioCli, UnknownEngineOverrideFailsEagerlyListingKnownValues) {
  try {
    scenario::from_cli(make_cli({"--scenario.engine=warp"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp"), std::string::npos);
    EXPECT_NE(what.find("tick"), std::string::npos);
    EXPECT_NE(what.find("event"), std::string::npos);
  }
}

TEST(ScenarioCli, ArrivalOverridesSelectModelAndKnobs) {
  const auto cli = make_cli({"--scenario.arrival=ippp",
                             "--scenario.arrival.rate-scale=1.5",
                             "--scenario.arrival.diurnal-amp=0.4",
                             "--scenario.arrival.burst-factor=2.5",
                             "--scenario.arrival.burst-period=120",
                             "--scenario.arrival.burst-duty=0.3"});
  const auto spec = scenario::from_cli(cli);
  EXPECT_EQ(spec.sim.arrival.model, "ippp");
  EXPECT_EQ(spec.sim.arrival.params.rate_scale, 1.5);
  EXPECT_EQ(spec.sim.arrival.params.diurnal_amp, 0.4);
  EXPECT_EQ(spec.sim.arrival.params.burst_factor, 2.5);
  EXPECT_EQ(spec.sim.arrival.params.burst_period_s, 120.0);
  EXPECT_EQ(spec.sim.arrival.params.burst_duty, 0.3);
  // The arrival choice enters the scenario fingerprint (cache key).
  EXPECT_NE(spec.fingerprint().find("arrival=ippp"), std::string::npos);
  EXPECT_NE(spec.fingerprint(),
            scenario::from_cli(make_cli({})).fingerprint());

  const auto jitter = scenario::from_cli(
      make_cli({"--scenario.arrival=periodic-jitter",
                "--scenario.arrival.jitter=0.6"}));
  EXPECT_EQ(jitter.sim.arrival.params.jitter_frac, 0.6);
  const auto trace = scenario::from_cli(
      make_cli({"--scenario.arrival=trace-replay",
                "--scenario.arrival.trace=0;1;2",
                "--scenario.arrival.trace-repeat=false"}));
  EXPECT_EQ(trace.sim.arrival.params.trace, "0;1;2");
  EXPECT_FALSE(trace.sim.arrival.params.trace_repeat);
}

TEST(ScenarioCli, BadArrivalOverridesThrowEagerly) {
  try {
    scenario::from_cli(make_cli({"--scenario.arrival=burst-o-matic"}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ippp"), std::string::npos);
  }
  // A bad knob for the chosen model fails at CLI-parse time, not inside
  // a campaign worker.
  EXPECT_THROW(
      scenario::from_cli(make_cli({"--scenario.arrival=periodic-jitter",
                                   "--scenario.arrival.jitter=1.5"})),
      std::invalid_argument);
  EXPECT_THROW(
      scenario::from_cli(make_cli({"--scenario.arrival=trace-replay"})),
      std::invalid_argument);  // no trace supplied
  EXPECT_THROW(scenario::from_cli(
                   make_cli({"--scenario.arrival.trace-repeat=maybe"})),
               std::invalid_argument);
}

TEST(ScenarioCli, ListRequestFlag) {
  EXPECT_FALSE(scenario::handle_list_request(make_cli({})));
  EXPECT_TRUE(scenario::handle_list_request(make_cli({"--list-scenarios"})));
}

// ----------------------------------------------- factories integration

TEST(ScenarioFactories, ExpForwardsToTheScenarioRegistry) {
  EXPECT_EQ(&exp::battery_labels(), &scenario::battery_labels());
  for (const auto& label : scenario::battery_labels()) {
    EXPECT_EQ(exp::make_battery(label)->name(), label);
  }
  EXPECT_THROW(scenario::make_battery("unobtainium"), std::invalid_argument);
  EXPECT_THROW(scenario::make_processor("quantum"), std::invalid_argument);
  EXPECT_TRUE(scenario::make_processor("continuous").continuous());
  EXPECT_FALSE(scenario::make_processor("paper").continuous());

  const auto axis = exp::scenario_axis();
  EXPECT_EQ(axis.name, "scenario");
  EXPECT_EQ(axis.labels, scenario::scenario_names());

  const auto arrivals = exp::arrival_axis();
  EXPECT_EQ(arrivals.name, "arrival");
  EXPECT_EQ(arrivals.labels, arrival::labels());
}

}  // namespace
}  // namespace bas
