// Tests for the experiment engine: grid expansion, seed derivation,
// thread-count-independent determinism, sinks, and the shared bench CLI
// options.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "sim/simulator.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

// ---------------------------------------------------------------- Grid

TEST(Grid, CellCountIsAxisProduct) {
  exp::Grid grid;
  EXPECT_EQ(grid.cell_count(), 1u);  // axis-free grid: one cell
  grid.add("a", {"x", "y"}).add("b", {"p", "q", "r"});
  EXPECT_EQ(grid.axis_count(), 2u);
  EXPECT_EQ(grid.cell_count(), 6u);
}

TEST(Grid, LastAxisVariesFastest) {
  exp::Grid grid;
  grid.add("a", {"a0", "a1"}).add("b", {"b0", "b1", "b2"});
  EXPECT_EQ(grid.coord(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(grid.coord(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(grid.coord(2), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(grid.coord(3), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(grid.coord(5), (std::vector<std::size_t>{1, 2}));
}

TEST(Grid, IndexInvertsCoord) {
  exp::Grid grid;
  grid.add("a", {"a0", "a1"}).add("b", {"b0", "b1", "b2"}).add("c",
                                                               {"c0", "c1"});
  for (std::size_t cell = 0; cell < grid.cell_count(); ++cell) {
    EXPECT_EQ(grid.index(grid.coord(cell)), cell);
  }
}

TEST(Grid, LabelsFollowCoord) {
  exp::Grid grid;
  grid.add("a", {"a0", "a1"}).add("b", {"b0", "b1", "b2"});
  EXPECT_EQ(grid.labels(4), (std::vector<std::string>{"a1", "b1"}));
}

TEST(Grid, RejectsMalformedAxes) {
  exp::Grid grid;
  EXPECT_THROW(grid.add("", {"x"}), std::invalid_argument);
  EXPECT_THROW(grid.add("a", {}), std::invalid_argument);
  grid.add("a", {"x"});
  EXPECT_THROW(grid.coord(1), std::out_of_range);
  EXPECT_THROW(grid.index({1}), std::out_of_range);
  EXPECT_THROW(grid.index({0, 0}), std::out_of_range);
}

// ------------------------------------------------------- seed derivation

TEST(DeriveSeed, DeterministicAndSensitiveToEveryTag) {
  EXPECT_EQ(util::derive_seed(1, {2, 3}), util::derive_seed(1, {2, 3}));
  EXPECT_NE(util::derive_seed(1, {2, 3}), util::derive_seed(1, {3, 2}));
  EXPECT_NE(util::derive_seed(1, {2, 3}), util::derive_seed(2, {2, 3}));
  EXPECT_NE(util::derive_seed(1, {2}), util::derive_seed(1, {2, 0}));
}

TEST(Runner, JobSeedsFollowTheContract) {
  exp::ExperimentSpec spec;
  spec.title = "seed-audit";
  spec.grid.add("axis", {"v0", "v1", "v2"});
  spec.metrics = {"zero"};
  spec.replicates = 2;
  spec.seed = 99;

  std::mutex mutex;
  std::map<std::size_t, exp::Job> jobs;
  spec.run = [&](const exp::Job& job) {
    std::lock_guard<std::mutex> lock(mutex);
    jobs[job.index] = job;
    return std::vector<double>{0.0};
  };
  exp::run_experiment(spec, 3);

  ASSERT_EQ(jobs.size(), 6u);
  // Replicates of a cell are contiguous: index = cell * replicates + rep.
  EXPECT_EQ(jobs[3].cell, 1u);
  EXPECT_EQ(jobs[3].replicate, 1);
  // replicate_seed is shared across cells (common random numbers)...
  EXPECT_EQ(jobs[0].replicate_seed, jobs[2].replicate_seed);
  EXPECT_EQ(jobs[0].replicate_seed, jobs[4].replicate_seed);
  EXPECT_NE(jobs[0].replicate_seed, jobs[1].replicate_seed);
  // ...cell_seed across replicates...
  EXPECT_EQ(jobs[0].cell_seed, jobs[1].cell_seed);
  EXPECT_NE(jobs[0].cell_seed, jobs[2].cell_seed);
  // ...and the job seed is unique.
  std::vector<std::uint64_t> seeds;
  for (const auto& [index, job] : jobs) {
    seeds.push_back(job.seed);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

// ----------------------------------------------------------- the runner

exp::ExperimentSpec tiny_table2_spec() {
  // A miniature Table-2 sweep: every scheme on kibam over 3 sets, with a
  // short horizon so the whole thing runs in well under a second.
  exp::ExperimentSpec spec;
  spec.title = "tiny-table2";
  spec.grid.add("scheme", exp::scheme_labels());
  spec.metrics = {"lifetime_min", "delivered_mah", "energy_j"};
  spec.replicates = 3;
  spec.seed = 2006;
  spec.run = [](const exp::Job& job) {
    util::Rng rng(job.replicate_seed);
    tgff::WorkloadParams wp;
    wp.graph_count = 2;
    wp.target_utilization = 0.7 / 0.6;
    wp.period_lo_s = 0.1;
    wp.period_hi_s = 0.5;
    const auto set = tgff::make_workload(wp, rng);

    sim::SimConfig config;
    config.horizon_s = 30.0;
    config.drain = false;
    config.record_profile = false;
    config.ac_model = sim::AcModel::kPerNodeMean;
    config.seed = util::Rng::hash_combine(job.replicate_seed, 1000u);

    const auto battery = exp::make_battery("kibam");
    const auto proc = dvs::Processor::paper_default();
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(0)), config, battery.get());
    return std::vector<double>{r.battery_lifetime_s / 60.0,
                               r.battery_delivered_mah, r.energy_j};
  };
  return spec;
}

TEST(Runner, BitIdenticalForAnyThreadCount) {
  const auto spec = tiny_table2_spec();
  const auto serial = exp::run_experiment(spec, 1);
  const auto parallel = exp::run_experiment(spec, 4);

  ASSERT_EQ(serial.cell_count(), parallel.cell_count());
  for (std::size_t c = 0; c < serial.cell_count(); ++c) {
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      // Bitwise, not approximate: the engine promises byte-identical
      // aggregation for any --jobs value.
      const double a[] = {serial.at(c, m).mean(), serial.at(c, m).stddev(),
                          serial.at(c, m).min(), serial.at(c, m).max(),
                          serial.at(c, m).sum()};
      const double b[] = {parallel.at(c, m).mean(),
                          parallel.at(c, m).stddev(), parallel.at(c, m).min(),
                          parallel.at(c, m).max(), parallel.at(c, m).sum()};
      EXPECT_EQ(0, std::memcmp(a, b, sizeof(a)))
          << "cell " << c << " metric " << m;
      EXPECT_EQ(serial.at(c, m).count(), parallel.at(c, m).count());
    }
  }
  EXPECT_EQ(exp::to_csv(serial), exp::to_csv(parallel));
  EXPECT_EQ(exp::to_json(serial), exp::to_json(parallel));
}

TEST(Runner, AggregatesInReplicateOrder) {
  exp::ExperimentSpec spec;
  spec.title = "identity";
  spec.grid.add("cell", {"c0", "c1"});
  spec.metrics = {"replicate"};
  spec.replicates = 8;
  spec.run = [](const exp::Job& job) {
    return std::vector<double>{static_cast<double>(job.replicate)};
  };
  const auto result = exp::run_experiment(spec, 4);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(result.at(c, 0).count(), 8u);
    EXPECT_DOUBLE_EQ(result.at(c, 0).mean(), 3.5);
    EXPECT_DOUBLE_EQ(result.at(c, 0).min(), 0.0);
    EXPECT_DOUBLE_EQ(result.at(c, 0).max(), 7.0);
  }
}

TEST(Runner, PropagatesJobErrors) {
  exp::ExperimentSpec spec;
  spec.title = "exploding";
  spec.grid.add("cell", {"c0", "c1"});
  spec.metrics = {"x"};
  spec.replicates = 2;
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    if (job.index == 2) {
      throw std::runtime_error("boom");
    }
    return {1.0};
  };
  EXPECT_THROW(exp::run_experiment(spec, 2), std::runtime_error);
}

TEST(Runner, RejectsWrongMetricArity) {
  exp::ExperimentSpec spec;
  spec.title = "arity";
  spec.grid.add("cell", {"c0"});
  spec.metrics = {"x", "y"};
  spec.run = [](const exp::Job&) { return std::vector<double>{1.0}; };
  EXPECT_THROW(exp::run_experiment(spec, 1), std::runtime_error);
}

TEST(Runner, RejectsMalformedSpecs) {
  exp::ExperimentSpec spec;
  spec.title = "malformed";
  spec.grid.add("cell", {"c0"});
  spec.metrics = {"x"};
  EXPECT_THROW(exp::run_experiment(spec, 1), std::invalid_argument);  // no run
  spec.run = [](const exp::Job&) { return std::vector<double>{1.0}; };
  spec.replicates = 0;
  EXPECT_THROW(exp::run_experiment(spec, 1), std::invalid_argument);
  spec.replicates = 1;
  spec.metrics.clear();
  EXPECT_THROW(exp::run_experiment(spec, 1), std::invalid_argument);
}

// ------------------------------------------------------------ the sinks

TEST(Sink, CsvHasHeaderAndOneRowPerCell) {
  exp::ExperimentSpec spec;
  spec.title = "csv";
  spec.grid.add("a", {"x", "y"}).add("b", {"p", "q", "r"});
  spec.metrics = {"value"};
  spec.replicates = 2;
  spec.run = [](const exp::Job& job) {
    return std::vector<double>{static_cast<double>(job.cell)};
  };
  const auto result = exp::run_experiment(spec, 2);
  const auto csv = exp::to_csv(result);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);  // header + 6 cells
  EXPECT_EQ(csv.rfind("a,b,value_count,value_mean,value_stddev,value_min,"
                      "value_max,value_sum\n",
                      0),
            0u);
  EXPECT_NE(csv.find("\ny,r,2,5,0,5,5,10\n"), std::string::npos);
}

TEST(Sink, CsvQuotesAwkwardLabelsAndMetricNames) {
  exp::ExperimentSpec spec;
  spec.title = "csv-escape";
  spec.grid.add("axis", {"plain", "with,comma"});
  spec.metrics = {"lifetime,min"};
  spec.run = [](const exp::Job&) { return std::vector<double>{1.0}; };
  const auto csv = exp::to_csv(exp::run_experiment(spec, 1));
  // The _stat suffix must land inside the quotes, not after them.
  EXPECT_NE(csv.find("\"lifetime,min_mean\""), std::string::npos);
  EXPECT_NE(csv.find("\n\"with,comma\","), std::string::npos);
}

TEST(Sink, CsvDoublesEmbeddedQuotesAndQuotesNewlines) {
  exp::ExperimentSpec spec;
  spec.title = "csv-quotes";
  spec.grid.add("axis", {"say \"hi\"", "two\nlines"});
  spec.metrics = {"m"};
  spec.run = [](const exp::Job&) { return std::vector<double>{1.0}; };
  const auto csv = exp::to_csv(exp::run_experiment(spec, 1));
  // RFC 4180: the field is quoted and the inner quotes are doubled.
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\","), std::string::npos);
  EXPECT_NE(csv.find("\"two\nlines\","), std::string::npos);
}

TEST(Sink, DoublesRoundTripThroughSeventeenSigDigits) {
  // %.17g is the shortest fixed precision that round-trips every finite
  // double; both sinks and the resume cache rely on it. Parse the CSV
  // cell back and compare bitwise.
  const double awkward[] = {1.0 / 3.0, 0.1, 5e-324, 1.7976931348623157e308,
                            123456789.12345679};
  for (const double value : awkward) {
    exp::ExperimentSpec spec;
    spec.title = "roundtrip";
    spec.grid.add("axis", {"v"});
    spec.metrics = {"m"};
    spec.run = [value](const exp::Job&) { return std::vector<double>{value}; };
    const auto csv = exp::to_csv(exp::run_experiment(spec, 1));
    // Row: v,count,mean,stddev,min,max,sum — mean is the second field.
    const auto row = csv.substr(csv.find("\nv,") + 3);
    const auto mean_at = row.find(',') + 1;
    const double parsed =
        std::strtod(row.c_str() + mean_at, nullptr);
    EXPECT_EQ(0, std::memcmp(&parsed, &value, sizeof(double)))
        << "value " << value << " parsed as " << parsed;
  }
}

TEST(Sink, JsonEscapesControlCharacters) {
  exp::ExperimentSpec spec;
  spec.title = "tab\there";
  spec.grid.add("axis", {"v0"});
  spec.metrics = {"m"};
  spec.run = [](const exp::Job&) { return std::vector<double>{1.0}; };
  const auto json = exp::to_json(exp::run_experiment(spec, 1));
  EXPECT_NE(json.find("tab\\u0009here"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(Sink, JsonMentionsAxesMetricsAndCells) {
  exp::ExperimentSpec spec;
  spec.title = "json \"quoted\"";
  spec.grid.add("axis", {"v0"});
  spec.metrics = {"m"};
  spec.run = [](const exp::Job&) { return std::vector<double>{1.5}; };
  const auto json = exp::to_json(exp::run_experiment(spec, 1));
  EXPECT_NE(json.find("\"title\": \"json \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"axis\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 1.5"), std::string::npos);
}

// -------------------------------------------------------- the factories

TEST(Factories, EveryBatteryLabelBuilds) {
  for (const auto& label : exp::battery_labels()) {
    const auto battery = exp::make_battery(label);
    ASSERT_NE(battery, nullptr);
    EXPECT_EQ(battery->name(), label);
  }
  EXPECT_THROW(exp::make_battery("unobtainium"), std::invalid_argument);
}

TEST(Factories, SchemeAxisMatchesTable2) {
  const auto labels = exp::scheme_labels();
  ASSERT_EQ(labels.size(), core::table2_schemes().size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], core::to_string(exp::scheme_kind_at(i)));
  }
}

// ------------------------------------------------------ bench CLI flags

TEST(Cli, BenchDefaultsAddJobsAndCsv) {
  const char* argv[] = {"bench"};
  util::Cli cli(1, argv, util::Cli::with_bench_defaults({{"sets", "5"}}));
  EXPECT_EQ(cli.get("sets"), "5");
  EXPECT_EQ(cli.get("jobs"), "auto");
  EXPECT_EQ(cli.get("csv"), "");
  EXPECT_GE(cli.jobs(), 1);
}

TEST(Cli, BenchDefaultsDoNotOverrideCallerValues) {
  const char* argv[] = {"bench"};
  util::Cli cli(1, argv, util::Cli::with_bench_defaults({{"jobs", "3"}}));
  EXPECT_EQ(cli.jobs(), 3);
}

TEST(Cli, JobsParsesExplicitCounts) {
  const char* argv[] = {"bench", "--jobs", "7"};
  util::Cli cli(3, argv, util::Cli::with_bench_defaults({}));
  EXPECT_EQ(cli.jobs(), 7);
  const char* argv0[] = {"bench", "--jobs", "0"};
  util::Cli auto_cli(3, argv0, util::Cli::with_bench_defaults({}));
  EXPECT_GE(auto_cli.jobs(), 1);
}

TEST(Cli, UnknownOptionErrorNamesKnownOptions) {
  const char* argv[] = {"bench", "--stes", "5"};
  try {
    util::Cli cli(3, argv, util::Cli::with_bench_defaults({{"sets", "5"}}));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown option --stes"), std::string::npos);
    EXPECT_NE(message.find("--sets"), std::string::npos);
    EXPECT_NE(message.find("--jobs"), std::string::npos);
  }
}

}  // namespace
}  // namespace bas
