// Tick-vs-event engine equivalence suite.
//
// The two engines share candidate enumeration, policy-call sequence and
// arrival streams (common random numbers), so in exact arithmetic they
// walk the same trajectory. They may differ numerically only through
// the event engine's battery merge windows (SimConfig::battery_window_s
// — see EXPERIMENTS.md, "Event-driven core"): lifetime and charge
// figures move by well under 0.1% on the calibrated kernels, every
// scheme ordering is preserved, and runs that record a profile or trace
// (merging disabled) agree draw-for-draw. These tests pin those
// contracts with explicit tolerances; byte-identity *within* each
// engine is pinned separately by the golden smoke.

#include <gtest/gtest.h>

#include <cmath>

#include "battery/kibam.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

// Relative-difference gate for merged-vs-exact battery figures. The
// observed shift at the default 5 s window is < 0.1%; the gate leaves
// headroom so the test checks the contract, not one machine's noise.
constexpr double kLifetimeRelTol = 5e-3;

struct EngineRun {
  sim::SimResult result;
};

sim::SimResult run_scenario(const std::string& name, core::SchemeKind kind,
                            sim::Engine engine, std::uint64_t seed,
                            bool audit = false, double window_s = 5.0,
                            double horizon_s = 0.0) {
  const auto& spec = scenario::scenario(name);
  util::Rng rng(seed);
  const auto set = spec.make_workload(rng);
  const auto proc = spec.make_processor();
  auto config = spec.sim_config(util::Rng::hash_combine(seed, 1000u));
  config.engine = engine;
  config.battery_window_s = window_s;
  config.record_profile = audit;
  config.record_trace = false;
  config.record_perf_counters = true;
  if (horizon_s > 0.0) {
    config.horizon_s = horizon_s;
  }
  auto battery = scenario::make_battery(spec.battery);
  return sim::simulate_scheme(set, proc, kind, config, battery.get());
}

double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  return denom > 0.0 ? std::abs(a - b) / denom : 0.0;
}

TEST(EngineEquivalence, DenseLifetimeAndFeasibilityAgree) {
  // paper-table2: the dense anchor cell, every Table 2 scheme. CRN
  // across engines — same seeds, same workloads, same arrival draws.
  for (const auto kind : core::table2_schemes()) {
    const auto tick = run_scenario("paper-table2", kind, sim::Engine::kTick,
                                   11);
    const auto event = run_scenario("paper-table2", kind, sim::Engine::kEvent,
                                    11);
    EXPECT_LT(rel_diff(tick.battery_lifetime_s, event.battery_lifetime_s),
              kLifetimeRelTol)
        << core::to_string(kind);
    EXPECT_LT(rel_diff(tick.battery_delivered_mah,
                       event.battery_delivered_mah),
              kLifetimeRelTol)
        << core::to_string(kind);
    // Feasibility: released/completed work tracks the lifetime, and the
    // miss count may shift by at most the documented one-window slop.
    EXPECT_LE(
        std::abs(static_cast<double>(tick.deadline_misses) -
                 static_cast<double>(event.deadline_misses)),
        2.0)
        << core::to_string(kind);
  }
}

TEST(EngineEquivalence, GuidelineScenarioAgrees) {
  for (const auto kind :
       {core::SchemeKind::kLaEdfRandom, core::SchemeKind::kBas2}) {
    const auto tick =
        run_scenario("paper-guideline1", kind, sim::Engine::kTick, 23);
    const auto event =
        run_scenario("paper-guideline1", kind, sim::Engine::kEvent, 23);
    EXPECT_LT(rel_diff(tick.battery_lifetime_s, event.battery_lifetime_s),
              kLifetimeRelTol)
        << core::to_string(kind);
    EXPECT_LT(rel_diff(tick.energy_j, event.energy_j), kLifetimeRelTol)
        << core::to_string(kind);
  }
}

TEST(EngineEquivalence, SparseScenariosAgree) {
  // The event engine's headline cells: idle-heavy and sporadic traffic.
  // A shortened horizon keeps the test fast; the merge behaviour is the
  // same from the first window on.
  for (const char* name : {"idle-heavy", "sporadic-sensor"}) {
    const auto tick = run_scenario(name, core::SchemeKind::kBas2,
                                   sim::Engine::kTick, 7, false, 5.0,
                                   3600.0);
    const auto event = run_scenario(name, core::SchemeKind::kBas2,
                                    sim::Engine::kEvent, 7, false, 5.0,
                                    3600.0);
    EXPECT_LT(rel_diff(tick.end_time_s, event.end_time_s), kLifetimeRelTol)
        << name;
    EXPECT_LT(rel_diff(tick.charge_c, event.charge_c), kLifetimeRelTol)
        << name;
    EXPECT_EQ(tick.instances_released, event.instances_released) << name;
    // Both engines jump the same empty time (sparse by construction).
    EXPECT_GT(event.perf.idle_time_jumped_s, 0.0) << name;
    EXPECT_GT(tick.perf.idle_time_jumped_s, 0.0) << name;
  }
}

TEST(EngineEquivalence, AuditRunsAgreeDrawForDraw) {
  // Recording a profile disables battery merging: the engines then make
  // identical kernel calls in identical order, so every figure is
  // bit-equal, not merely close.
  const auto tick = run_scenario("paper-table2", core::SchemeKind::kBas2,
                                 sim::Engine::kTick, 31, /*audit=*/true);
  const auto event = run_scenario("paper-table2", core::SchemeKind::kBas2,
                                  sim::Engine::kEvent, 31, /*audit=*/true);
  EXPECT_DOUBLE_EQ(tick.end_time_s, event.end_time_s);
  EXPECT_DOUBLE_EQ(tick.energy_j, event.energy_j);
  EXPECT_DOUBLE_EQ(tick.charge_c, event.charge_c);
  EXPECT_DOUBLE_EQ(tick.busy_s, event.busy_s);
  EXPECT_DOUBLE_EQ(tick.battery_lifetime_s, event.battery_lifetime_s);
  EXPECT_EQ(tick.instances_completed, event.instances_completed);
  EXPECT_EQ(tick.deadline_misses, event.deadline_misses);
  EXPECT_EQ(tick.nodes_executed, event.nodes_executed);
  EXPECT_EQ(tick.preemptions, event.preemptions);
}

TEST(EngineEquivalence, ZeroWindowDisablesMergingExactly) {
  // battery_window_s <= 0 turns merging off even for plain runs: the
  // event engine then reproduces the tick engine's figures bit-exactly.
  const auto tick = run_scenario("paper-table2",
                                 core::SchemeKind::kLaEdfRandom,
                                 sim::Engine::kTick, 47, false, 0.0);
  const auto event = run_scenario("paper-table2",
                                  core::SchemeKind::kLaEdfRandom,
                                  sim::Engine::kEvent, 47, false, 0.0);
  EXPECT_DOUBLE_EQ(tick.battery_lifetime_s, event.battery_lifetime_s);
  EXPECT_DOUBLE_EQ(tick.battery_delivered_mah, event.battery_delivered_mah);
  EXPECT_DOUBLE_EQ(tick.end_time_s, event.end_time_s);
  EXPECT_DOUBLE_EQ(tick.energy_j, event.energy_j);
  EXPECT_EQ(tick.deadline_misses, event.deadline_misses);
}

TEST(EngineEquivalence, EventRunsAreDeterministicWithinEngine) {
  const auto a = run_scenario("paper-table2", core::SchemeKind::kBas2,
                              sim::Engine::kEvent, 91);
  const auto b = run_scenario("paper-table2", core::SchemeKind::kBas2,
                              sim::Engine::kEvent, 91);
  EXPECT_DOUBLE_EQ(a.battery_lifetime_s, b.battery_lifetime_s);
  EXPECT_DOUBLE_EQ(a.charge_c, b.charge_c);
  EXPECT_EQ(a.perf.events_popped, b.perf.events_popped);
  EXPECT_EQ(a.perf.battery_interval_advances, b.perf.battery_interval_advances);
}

TEST(EngineEquivalence, PerfCountersAttributeTheWin) {
  const auto tick = run_scenario("idle-heavy", core::SchemeKind::kLaEdfRandom,
                                 sim::Engine::kTick, 5, false, 5.0, 3600.0);
  const auto event = run_scenario("idle-heavy", core::SchemeKind::kLaEdfRandom,
                                  sim::Engine::kEvent, 5, false, 5.0, 3600.0);
  // Tick: one kernel draw per slice, no events, no interval advances.
  EXPECT_EQ(tick.perf.events_popped, 0u);
  EXPECT_EQ(tick.perf.ticks_skipped, 0u);
  EXPECT_EQ(tick.perf.battery_interval_advances, 0u);
  EXPECT_GT(tick.perf.battery_draws, 0u);
  // Event: every release/completion dispatches, per-slice draws are
  // merged into far fewer closed-form interval advances.
  EXPECT_GT(event.perf.events_popped, 0u);
  EXPECT_GT(event.perf.ticks_skipped, 0u);
  EXPECT_GT(event.perf.battery_interval_advances, 0u);
  EXPECT_LT(event.perf.battery_draws, tick.perf.battery_draws / 2);
}

TEST(EngineLabels, RoundTripAndEagerValidation) {
  EXPECT_EQ(sim::to_string(sim::Engine::kTick), "tick");
  EXPECT_EQ(sim::to_string(sim::Engine::kEvent), "event");
  EXPECT_EQ(sim::engine_from_string("tick"), sim::Engine::kTick);
  EXPECT_EQ(sim::engine_from_string("event"), sim::Engine::kEvent);
  try {
    sim::engine_from_string("quantum");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum"), std::string::npos);
    EXPECT_NE(what.find("tick"), std::string::npos);
    EXPECT_NE(what.find("event"), std::string::npos);
  }
}

}  // namespace
}  // namespace bas
