// Observability-layer tests: attaching a TraceLog or recording the
// phase profile must not perturb any simulation figure (the
// instrumentation-only contract, both engines), the Chrome-trace JSON
// must be well formed with per-track monotone timestamps, the phase
// taxonomy's names must stay fixed (they are a schema), and the
// metrics registry must keep names unique and in stable order.
//
// The ON-vs-OFF *build* identity (BAS_PROFILE=1 binaries reproduce the
// default build bit for bit) is pinned by running this suite and the
// golden smoke under both CMake configurations in CI; within one
// binary these tests pin the runtime half of the contract.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_log.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "store/async_writer.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

sim::SimResult run_scenario(const std::string& name, sim::Engine engine,
                            std::uint64_t seed, bool perf_counters,
                            obs::TraceLog* trace_log,
                            double horizon_s = 600.0,
                            bool phase_profile = false) {
  const auto& spec = scenario::scenario(name);
  util::Rng rng(seed);
  const auto set = spec.make_workload(rng);
  const auto proc = spec.make_processor();
  auto config = spec.sim_config(util::Rng::hash_combine(seed, 1000u));
  config.engine = engine;
  config.record_perf_counters = perf_counters;
  config.record_phase_profile = phase_profile;
  config.trace_log = trace_log;
  config.horizon_s = horizon_s;
  auto battery = scenario::make_battery(spec.battery);
  return sim::simulate_scheme(set, proc, core::SchemeKind::kBas2, config,
                              battery.get());
}

void expect_bitwise_equal(const sim::SimResult& a, const sim::SimResult& b,
                          const char* label) {
  EXPECT_EQ(a.end_time_s, b.end_time_s) << label;
  EXPECT_EQ(a.energy_j, b.energy_j) << label;
  EXPECT_EQ(a.charge_c, b.charge_c) << label;
  EXPECT_EQ(a.busy_s, b.busy_s) << label;
  EXPECT_EQ(a.battery_lifetime_s, b.battery_lifetime_s) << label;
  EXPECT_EQ(a.battery_delivered_mah, b.battery_delivered_mah) << label;
  EXPECT_EQ(a.instances_released, b.instances_released) << label;
  EXPECT_EQ(a.instances_completed, b.instances_completed) << label;
  EXPECT_EQ(a.nodes_executed, b.nodes_executed) << label;
  EXPECT_EQ(a.preemptions, b.preemptions) << label;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << label;
}

// ----------------------------------------------- instrumentation-only

TEST(Obs, AttachingATraceDoesNotPerturbEitherEngine) {
  for (const auto engine : {sim::Engine::kTick, sim::Engine::kEvent}) {
    const char* label =
        engine == sim::Engine::kTick ? "tick" : "event";
    const auto plain = run_scenario("paper-table2", engine, 3, false,
                                    nullptr);
    obs::TraceLog log;
    const auto traced = run_scenario("paper-table2", engine, 3, false, &log);
    expect_bitwise_equal(plain, traced, label);
    EXPECT_GT(log.size(), 0u) << label;
  }
}

TEST(Obs, RecordingThePhaseProfileDoesNotPerturbEitherEngine) {
  // record_phase_profile is what arms the PhaseClock in BAS_PROFILE
  // builds; either way the figures must be bit-equal to a bare run.
  for (const auto engine : {sim::Engine::kTick, sim::Engine::kEvent}) {
    const char* label =
        engine == sim::Engine::kTick ? "tick" : "event";
    const auto plain = run_scenario("paper-table2", engine, 5, false,
                                    nullptr);
    const auto profiled = run_scenario("paper-table2", engine, 5, true,
                                       nullptr, 600.0, /*phase_profile=*/true);
    expect_bitwise_equal(plain, profiled, label);
  }
}

TEST(Obs, PhaseProfileMatchesTheBuildConfiguration) {
  for (const auto engine : {sim::Engine::kTick, sim::Engine::kEvent}) {
    const auto r = run_scenario("paper-table2", engine, 7, true, nullptr,
                                600.0, /*phase_profile=*/true);
    const auto& phases = r.perf.phases;
    std::uint64_t laps = 0;
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      laps += phases.laps[p];
    }
    if (obs::PhaseProfile::compiled_in) {
      // Every phase boundary in the loop body fired at least once and
      // the lap count tracks the step count (several laps per step).
      EXPECT_GT(phases.total_ns(), 0u);
      EXPECT_GE(laps, r.perf.steps);
      // incremental-maint is the event engine's EDF/snapshot upkeep;
      // the tick engine rebuilds per step and never laps it.
      const auto maint =
          phases.laps[static_cast<int>(obs::Phase::kIncrementalMaint)];
      if (engine == sim::Engine::kEvent) {
        EXPECT_GT(maint, 0u);
      } else {
        EXPECT_EQ(maint, 0u);
      }
    } else {
      EXPECT_EQ(phases.total_ns(), 0u);
      EXPECT_EQ(laps, 0u);
    }
  }
}

TEST(Obs, PhasesCoverTheLoopBody) {
  // The taxonomy partitions the scheduling loop: on a dense cell the
  // phase sum must account for >= 85% of the sim's own wall time (the
  // remainder is the boundary clock reads plus setup outside the
  // loop). Guards against phase re-partitions that silently drop hot
  // work out of the table — the attribution is only trustworthy while
  // coverage stays high. BAS_PROFILE builds only.
  if (!obs::PhaseProfile::compiled_in) {
    GTEST_SKIP() << "profiler not compiled in";
  }
  const auto& spec = scenario::scenario("paper-table2");
  util::Rng rng(7);
  const auto set = spec.make_workload(rng);
  const auto proc = spec.make_processor();
  auto config = spec.sim_config(util::Rng::hash_combine(7u, 1000u));
  config.engine = sim::Engine::kEvent;
  config.record_perf_counters = true;
  config.record_phase_profile = true;
  auto battery = scenario::make_battery(spec.battery);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = sim::simulate_scheme(set, proc, core::SchemeKind::kBas2,
                                      config, battery.get());
  const auto wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_GT(wall_s, 0.0);
  const double covered_s = static_cast<double>(r.perf.phases.total_ns()) / 1e9;
  EXPECT_GE(covered_s / wall_s, 0.85);
}

TEST(Obs, PhaseProfileStaysZeroWithoutTheOptIn) {
  // The clock is armed by record_phase_profile only — in particular
  // record_perf_counters (which every timed bench rep sets) must NOT
  // arm it, or the perf gate would time the clock reads.
  const auto r =
      run_scenario("paper-table2", sim::Engine::kEvent, 9, true, nullptr);
  EXPECT_EQ(r.perf.phases.total_ns(), 0u);
}

// ------------------------------------------------------- trace format

TEST(Obs, TraceCountsReleasesAndCompletions) {
  obs::TraceLog log;
  const auto r =
      run_scenario("paper-table2", sim::Engine::kEvent, 11, false, &log);
  EXPECT_EQ(log.count("release"), r.instances_released);
  EXPECT_EQ(log.count("complete"), r.instances_completed);
}

TEST(Obs, SortedEventsAreMonotonePerTrack) {
  obs::TraceLog log;
  run_scenario("paper-table2", sim::Engine::kTick, 13, true, &log);
  log.name_process(obs::kSimPid, "sim");
  const auto events = log.sorted_events();
  ASSERT_GT(events.size(), 2u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto& a = events[i - 1];
    const auto& b = events[i];
    if (a.pid == b.pid && a.tid == b.tid) {
      EXPECT_LE(a.ts_us, b.ts_us) << "track (" << a.pid << ", " << a.tid
                                  << ") event " << i;
    }
  }
}

TEST(Obs, TraceJsonIsWellFormed) {
  obs::TraceLog log;
  log.name_process(obs::kSimPid, "sim \"quoted\" \\ name");
  log.span("a span", obs::kSimPid, 0, 1.5, 2.25, "{\"graph\": 1}");
  log.instant("marker\nwith newline", obs::kSimPid, 1, 3.0);
  log.counter("depth", obs::kCampaignPid, 4.0, 17.0);
  const std::string json = log.to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  // Balanced braces/brackets and no raw control characters — the
  // structural half of "python3 -m json.tool passes" (CI runs the
  // real parser over --trace-out output).
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control character in JSON";
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']': --depth; break;
      default: break;
    }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // The metadata record and all three events survived rendering.
  EXPECT_EQ(log.size(), 4u);
}

TEST(Obs, TraceCapturesExecutionSpansInSimTime) {
  obs::TraceLog log;
  const auto r =
      run_scenario("paper-table2", sim::Engine::kTick, 17, false, &log);
  std::size_t spans = 0;
  double last_end_us = 0.0;
  for (const auto& event : log.sorted_events()) {
    if (event.ph != 'X' || event.pid != obs::kSimPid) {
      continue;
    }
    ++spans;
    EXPECT_GE(event.dur_us, 0.0);
    last_end_us = std::max(last_end_us, event.ts_us + event.dur_us);
  }
  EXPECT_GT(spans, 0u);
  // Sim-time spans live inside the simulated horizon (us = s * 1e6).
  EXPECT_LE(last_end_us, r.end_time_s * 1e6 + 1.0);
}

// --------------------------------------------------- phase vocabulary

TEST(Obs, PhaseNamesAndFieldsAreASchema) {
  // These strings are load-bearing: trace span names, bas-perf/4 JSON
  // keys and the metrics registry all use them. Renaming one is a
  // schema change (bump kSchema in bench/perf_hotpath.cpp).
  using obs::Phase;
  EXPECT_STREQ(obs::phase_name(Phase::kQueueOps), "queue-ops");
  EXPECT_STREQ(obs::phase_name(Phase::kIncrementalMaint),
               "incremental-maint");
  EXPECT_STREQ(obs::phase_name(Phase::kBookkeeping), "bookkeeping");
  EXPECT_STREQ(obs::phase_name(Phase::kDvsSelect), "dvs-select");
  EXPECT_STREQ(obs::phase_name(Phase::kCandidateBuild), "candidate-build");
  EXPECT_STREQ(obs::phase_name(Phase::kEstimateScore), "estimate-score");
  EXPECT_STREQ(obs::phase_name(Phase::kSelect), "select");
  EXPECT_STREQ(obs::phase_name(Phase::kBatteryAdvance), "battery-advance");
  EXPECT_STREQ(obs::phase_field(Phase::kQueueOps), "ph_queue_ops_ns");
  EXPECT_STREQ(obs::phase_field(Phase::kIncrementalMaint),
               "ph_incremental_maint_ns");
  EXPECT_STREQ(obs::phase_field(Phase::kBatteryAdvance),
               "ph_battery_advance_ns");
  std::set<std::string> names;
  std::set<std::string> fields;
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    names.insert(obs::phase_name(static_cast<Phase>(p)));
    fields.insert(obs::phase_field(static_cast<Phase>(p)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(obs::kPhaseCount));
  EXPECT_EQ(fields.size(), static_cast<std::size_t>(obs::kPhaseCount));
}

TEST(Obs, PhaseProfileAccumulates) {
  obs::PhaseProfile a;
  a.ns[0] = 10;
  a.laps[0] = 1;
  obs::PhaseProfile b;
  b.ns[0] = 5;
  b.ns[6] = 7;
  b.laps[6] = 2;
  a += b;
  EXPECT_EQ(a.ns[0], 15u);
  EXPECT_EQ(a.ns[6], 7u);
  EXPECT_EQ(a.total_ns(), 22u);
  a.clear();
  EXPECT_EQ(a.total_ns(), 0u);
  EXPECT_EQ(a.laps[6], 0u);
}

// ---------------------------------------------------- metrics registry

TEST(Obs, MetricsRegistryKeepsOrderAndUniqueness) {
  obs::Metrics m;
  m.set("steps", 10);
  m.set("draws", 4);
  m.set("depth", 2, obs::MetricKind::kGauge);
  m.set("steps", 12);   // overwrite, not duplicate
  m.add("draws", 3);    // accumulate
  m.add("fresh", 1);    // add registers when absent
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m.entries()[0].name, "steps");
  EXPECT_EQ(m.entries()[1].name, "draws");
  EXPECT_EQ(m.entries()[2].name, "depth");
  EXPECT_EQ(m.entries()[3].name, "fresh");
  EXPECT_EQ(m.value("steps"), 12.0);
  EXPECT_EQ(m.value("draws"), 7.0);
  EXPECT_EQ(m.entries()[2].kind, obs::MetricKind::kGauge);
  EXPECT_TRUE(m.has("depth"));
  EXPECT_FALSE(m.has("missing"));
  EXPECT_THROW(m.value("missing"), std::out_of_range);
  EXPECT_EQ(m.render_compact(), "steps=12 draws=7 depth=2 fresh=1");
}

TEST(Obs, FormatValuePrintsCountersAsIntegers) {
  EXPECT_EQ(obs::format_value(0.0), "0");
  EXPECT_EQ(obs::format_value(42.0), "42");
  EXPECT_EQ(obs::format_value(1e15), "1000000000000000");
  EXPECT_EQ(obs::format_value(2.5), "2.5");
  EXPECT_EQ(obs::format_value(1.0 / 3.0), "0.333333");
}

TEST(Obs, PerfCounterFillerNamesAreUniqueAndStable) {
  const auto r =
      run_scenario("paper-table2", sim::Engine::kEvent, 19, true, nullptr);
  obs::Metrics m;
  obs::fill(m, r.perf);
  std::set<std::string> names;
  for (const auto& entry : m.entries()) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate metric " << entry.name;
  }
  // The registry carries all three legacy surfaces: hot-path lanes,
  // kernel k_* counters, phase ph_* fields.
  EXPECT_TRUE(m.has("steps"));
  EXPECT_TRUE(m.has("battery_draws"));
  EXPECT_TRUE(m.has("events_popped"));
  EXPECT_TRUE(m.has("edf_incremental_ops"));
  EXPECT_TRUE(m.has("k_exp_sweeps"));
  EXPECT_TRUE(m.has("ph_queue_ops_ns"));
  EXPECT_TRUE(m.has("ph_incremental_maint_ns"));
  EXPECT_TRUE(m.has("ph_battery_advance_ns"));
  EXPECT_TRUE(m.has("ph_laps"));
  EXPECT_EQ(m.value("steps"), static_cast<double>(r.perf.steps));
  // Filling twice overwrites in place — same names, same order.
  const auto before = m.size();
  obs::Metrics twice;
  obs::fill(twice, r.perf);
  obs::fill(twice, r.perf);
  EXPECT_EQ(twice.size(), before);
}

TEST(Obs, WriterStatsFillerRegistersQueueGauges) {
  store::WriterStats stats;
  stats.enqueued = 10;
  stats.written = 8;
  stats.batches = 2;
  stats.depth = 2;
  stats.high_water = 5;
  stats.capacity = 64;
  obs::Metrics m;
  obs::fill(m, stats);
  EXPECT_EQ(m.value("store_enqueued"), 10.0);
  EXPECT_EQ(m.value("store_written"), 8.0);
  EXPECT_EQ(m.value("store_queue_depth"), 2.0);
  EXPECT_EQ(m.value("store_queue_peak"), 5.0);
  EXPECT_EQ(m.value("store_queue_capacity"), 64.0);
  std::set<std::string> names;
  for (const auto& entry : m.entries()) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate metric " << entry.name;
  }
}

}  // namespace
}  // namespace bas
