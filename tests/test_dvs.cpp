// Tests for the processor model, frequency realizer, and the four DVS
// frequency-setting policies.

#include <gtest/gtest.h>

#include <cmath>

#include "dvs/policy.hpp"
#include "dvs/processor.hpp"
#include "dvs/realizer.hpp"

namespace bas {
namespace {

dvs::GraphStatus status(int graph, double period, double deadline,
                        double wc_total, double cc_wc, double remaining,
                        bool complete = false) {
  dvs::GraphStatus s;
  s.graph = graph;
  s.period_s = period;
  s.abs_deadline_s = deadline;
  s.wc_total_cycles = wc_total;
  s.cc_wc_cycles = cc_wc;
  s.remaining_wc_cycles = remaining;
  s.complete = complete;
  return s;
}

TEST(Processor, PaperDefaultShape) {
  const auto p = dvs::Processor::paper_default();
  ASSERT_EQ(p.points().size(), 3u);
  EXPECT_DOUBLE_EQ(p.fmin_hz(), 0.5e9);
  EXPECT_DOUBLE_EQ(p.fmax_hz(), 1.0e9);
  EXPECT_DOUBLE_EQ(p.points()[1].voltage_v, 4.0);
  EXPECT_FALSE(p.continuous());
}

TEST(Processor, FullSpeedCurrentCalibration) {
  const auto p = dvs::Processor::paper_default();
  // Ceff calibrated for ~1.8 A battery current at (1 GHz, 5 V).
  EXPECT_NEAR(p.battery_current_a(p.points().back()), 1.8, 1e-9);
}

TEST(Processor, CurrentScalesCubicallyWithS) {
  // With V proportional to f, Ibat ~ s^3 (paper §2).
  const auto p = dvs::Processor::continuous_ideal(1e9, 5.0);
  const dvs::OperatingPoint full{1e9, p.voltage_at(1e9)};
  const dvs::OperatingPoint half{0.5e9, p.voltage_at(0.5e9)};
  const double ratio = p.battery_current_a(full) / p.battery_current_a(half);
  EXPECT_NEAR(ratio, 8.0, 1e-9);
}

TEST(Processor, EnergyPerCycleGrowsWithVoltage) {
  const auto p = dvs::Processor::paper_default();
  double prev = 0.0;
  for (const auto& op : p.points()) {
    const double epc = p.energy_per_cycle_j(op);
    EXPECT_GT(epc, prev);
    prev = epc;
  }
}

TEST(Processor, VoltageLookup) {
  const auto p = dvs::Processor::paper_default();
  EXPECT_DOUBLE_EQ(p.voltage_at(0.75e9), 4.0);
  EXPECT_THROW(p.voltage_at(0.6e9), std::invalid_argument);
  const auto c = dvs::Processor::continuous_ideal(1e9, 5.0);
  EXPECT_DOUBLE_EQ(c.voltage_at(0.6e9), 3.0);
}

TEST(Processor, RejectsBadConstruction) {
  EXPECT_THROW(dvs::Processor({}, 1.2, 0.9, 1e-10, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dvs::Processor({{1e9, 5.0}, {1e9, 4.0}}, 1.2, 0.9, 1e-10, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dvs::Processor({{1e9, 5.0}}, 1.2, 1.5, 1e-10, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dvs::Processor({{1e9, 0.0}}, 1.2, 0.9, 1e-10, 0.0),
               std::invalid_argument);
  // Voltage decreasing in frequency is physically nonsensical here.
  EXPECT_THROW(
      dvs::Processor({{0.5e9, 5.0}, {1e9, 3.0}}, 1.2, 0.9, 1e-10, 0.0),
      std::invalid_argument);
}

TEST(Realizer, ExactPointPassesThrough) {
  const auto p = dvs::Processor::paper_default();
  const auto plan = dvs::realize(p, 0.75e9);
  EXPECT_DOUBLE_EQ(plan.effective_freq_hz, 0.75e9);
  EXPECT_TRUE(plan.single_level() ||
              std::abs(plan.hi_fraction - 1.0) < 1e-12);
}

TEST(Realizer, MixDeliversRequestedFrequency) {
  const auto p = dvs::Processor::paper_default();
  for (double fref : {0.55e9, 0.6e9, 0.7e9, 0.8e9, 0.9e9, 0.99e9}) {
    const auto plan = dvs::realize(p, fref);
    EXPECT_LE(plan.lo.freq_hz, fref);
    EXPECT_GE(plan.hi.freq_hz, fref);
    const double mixed = plan.hi_fraction * plan.hi.freq_hz +
                         (1.0 - plan.hi_fraction) * plan.lo.freq_hz;
    EXPECT_NEAR(mixed, fref, 1.0) << "fref=" << fref;
    EXPECT_NEAR(plan.effective_freq_hz, fref, 1.0);
  }
}

TEST(Realizer, MixUsesAdjacentPoints) {
  const auto p = dvs::Processor::paper_default();
  const auto plan = dvs::realize(p, 0.6e9);
  EXPECT_DOUBLE_EQ(plan.lo.freq_hz, 0.5e9);
  EXPECT_DOUBLE_EQ(plan.hi.freq_hz, 0.75e9);
}

TEST(Realizer, ClampsOutOfRange) {
  const auto p = dvs::Processor::paper_default();
  const auto low = dvs::realize(p, 0.1e9);
  EXPECT_DOUBLE_EQ(low.effective_freq_hz, 0.5e9);
  const auto high = dvs::realize(p, 2e9);
  EXPECT_DOUBLE_EQ(high.effective_freq_hz, 1e9);
}

TEST(Realizer, ContinuousIsExact) {
  const auto p = dvs::Processor::continuous_ideal(1e9, 5.0);
  const auto plan = dvs::realize(p, 0.6347e9);
  EXPECT_DOUBLE_EQ(plan.effective_freq_hz, 0.6347e9);
  EXPECT_TRUE(plan.single_level());
}

TEST(Realizer, MixCurrentBetweenEndpoints) {
  const auto p = dvs::Processor::paper_default();
  const auto plan = dvs::realize(p, 0.6e9);
  const double i = dvs::plan_battery_current_a(p, plan);
  EXPECT_GT(i, p.battery_current_a(plan.lo));
  EXPECT_LT(i, p.battery_current_a(plan.hi));
}

TEST(NoDvs, AlwaysFmax) {
  auto policy = dvs::make_no_dvs(1e9);
  const std::vector<dvs::GraphStatus> empty;
  EXPECT_DOUBLE_EQ(policy->select(empty, 0.0), 1e9);
}

TEST(StaticDvs, UsesStaticUtilization) {
  auto policy = dvs::make_static_dvs(1e9);
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 3e8, 3e8, 3e8),
      status(1, 2.0, 2.0, 8e8, 8e8, 8e8),
  };
  EXPECT_NEAR(policy->select(graphs, 0.0), 0.7e9, 1.0);
}

TEST(CcEdf, TracksWciUpdates) {
  auto policy = dvs::make_cc_edf(1e9);
  // Algorithm 1: U = sum(WCi/Di), fref = U * fmax (WCi in cycles, so
  // fref is directly cycles/s).
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 5e8, 5e8, 5e8),
      status(1, 2.0, 2.0, 4e8, 4e8, 4e8),
  };
  EXPECT_NEAR(policy->select(graphs, 0.0), 0.7e9, 1.0);
  // A node of graph 0 finished early: WCi drops from 5e8 to 3e8.
  graphs[0].cc_wc_cycles = 3e8;
  EXPECT_NEAR(policy->select(graphs, 0.1), 0.5e9, 1.0);
}

TEST(CcEdf, ClampsAtFmax) {
  auto policy = dvs::make_cc_edf(1e9);
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 2e9, 2e9, 2e9),
  };
  EXPECT_DOUBLE_EQ(policy->select(graphs, 0.0), 1e9);
}

TEST(LaEdf, SingleGraphRunsJustInTime) {
  auto policy = dvs::make_la_edf(1e9);
  // One graph, 5e8 cycles remaining, deadline in 1 s: everything must
  // run before dn, so fref = 5e8.
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 5e8, 5e8, 5e8),
  };
  EXPECT_NEAR(policy->select(graphs, 0.0), 5e8, 1.0);
}

TEST(LaEdf, DefersWorkPastEarliestDeadline) {
  auto policy = dvs::make_la_edf(1e9);
  // Graph 0: deadline 1 s, 2e8 cycles. Graph 1: deadline 10 s, 5e8
  // cycles, utilization 0.05. Almost all of graph 1 defers past t=1,
  // so laEDF should pick a frequency well below ccEDF's.
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 2e8, 2e8, 2e8),
      status(1, 10.0, 10.0, 5e8, 5e8, 5e8),
  };
  const double fref = policy->select(graphs, 0.0);
  EXPECT_GE(fref, 2e8 - 1.0);   // must at least finish graph 0
  EXPECT_LT(fref, 0.25e9);      // but nearly nothing of graph 1
}

TEST(LaEdf, NeverBelowImminentDemandAcrossLoads) {
  auto policy = dvs::make_la_edf(1e9);
  // Whatever the mix, fref * (dn - now) must cover the most imminent
  // graph's remaining work.
  for (double rem : {1e8, 3e8, 6e8, 9e8}) {
    std::vector<dvs::GraphStatus> graphs{
        status(0, 1.0, 1.0, rem, rem, rem),
        status(1, 5.0, 5.0, 1e9, 1e9, 1e9),
    };
    const double fref = policy->select(graphs, 0.0);
    EXPECT_GE(fref * 1.0, rem - 1.0) << "rem=" << rem;
    EXPECT_LE(fref, 1e9);
  }
}

TEST(LaEdf, CompleteInstancesContributeNothing) {
  auto policy = dvs::make_la_edf(1e9);
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 5e8, 4e8, 0.0, /*complete=*/true),
      status(1, 2.0, 2.0, 4e8, 4e8, 4e8),
  };
  const double fref = policy->select(graphs, 0.0);
  // Only graph 1's work remains; 4e8 cycles / 2 s = 2e8 minimum.
  EXPECT_GE(fref, 2e8 - 1.0);
  EXPECT_LT(fref, 4e8);
}

TEST(LaEdf, AllCompleteMeansZero) {
  auto policy = dvs::make_la_edf(1e9);
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 5e8, 4e8, 0.0, true),
  };
  EXPECT_DOUBLE_EQ(policy->select(graphs, 0.5), 0.0);
}

TEST(LaEdf, PastDeadlineRunsFlatOut) {
  auto policy = dvs::make_la_edf(1e9);
  std::vector<dvs::GraphStatus> graphs{
      status(0, 1.0, 1.0, 5e8, 5e8, 1e8),
  };
  EXPECT_DOUBLE_EQ(policy->select(graphs, 1.0), 1e9);
}

TEST(PolicyNames, AreStable) {
  EXPECT_EQ(dvs::make_no_dvs(1e9)->name(), "noDVS");
  EXPECT_EQ(dvs::make_static_dvs(1e9)->name(), "staticDVS");
  EXPECT_EQ(dvs::make_cc_edf(1e9)->name(), "ccEDF");
  EXPECT_EQ(dvs::make_la_edf(1e9)->name(), "laEDF");
}

}  // namespace
}  // namespace bas
