// Event-queue unit tests: the (time, kind, actor) strict total order,
// deterministic tie-breaking at equal times, and invariance of the pop
// sequence under insertion order — the property that keeps event-engine
// runs bit-reproducible regardless of how events happened to be pushed.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"

namespace bas::sim {
namespace {

std::vector<Event> drain(EventQueue& q) {
  std::vector<Event> out;
  while (!q.empty()) {
    out.push_back(q.pop());
  }
  return out;
}

bool same_event(const Event& a, const Event& b) {
  return a.time == b.time && a.kind == b.kind && a.actor == b.actor;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push({3.0, EventKind::kRelease, 0});
  q.push({1.0, EventKind::kRelease, 1});
  q.push({2.0, EventKind::kBatteryObs, -1});
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].time, 1.0);
  EXPECT_EQ(order[1].time, 2.0);
  EXPECT_EQ(order[2].time, 3.0);
}

TEST(EventQueue, EqualTimesBreakTiesByKindThenActor) {
  // At one instant: a completion dispatches before a release (the
  // finished node frees the processor before the new instance is
  // considered), releases order by graph id, and the horizon marker
  // comes last.
  EventQueue q;
  q.push({5.0, EventKind::kHorizon, -1});
  q.push({5.0, EventKind::kRelease, 2});
  q.push({5.0, EventKind::kRelease, 0});
  q.push({5.0, EventKind::kBatteryObs, -1});
  q.push({5.0, EventKind::kCompletion, 1});
  const auto order = drain(q);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0].kind, EventKind::kCompletion);
  EXPECT_EQ(order[1].kind, EventKind::kRelease);
  EXPECT_EQ(order[1].actor, 0);
  EXPECT_EQ(order[2].kind, EventKind::kRelease);
  EXPECT_EQ(order[2].actor, 2);
  EXPECT_EQ(order[3].kind, EventKind::kBatteryObs);
  EXPECT_EQ(order[4].kind, EventKind::kHorizon);
}

TEST(EventQueue, PopSequenceInvariantUnderInsertionOrder) {
  // Every permutation of the same pending set drains identically: the
  // order is a strict total order, so the heap's internal layout can
  // never leak into the dispatch sequence.
  std::vector<Event> events = {
      {2.0, EventKind::kRelease, 0},    {2.0, EventKind::kRelease, 1},
      {2.0, EventKind::kCompletion, 0}, {1.5, EventKind::kBatteryObs, -1},
      {3.0, EventKind::kHorizon, -1},   {2.0, EventKind::kBatteryObs, -1},
  };
  std::sort(events.begin(), events.end(), event_before);
  const std::vector<Event> reference = events;  // sorted == expected pops

  std::vector<std::size_t> perm(events.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = i;
  }
  int permutations = 0;
  do {
    EventQueue q;
    for (const std::size_t i : perm) {
      q.push(reference[i]);
    }
    const auto order = drain(q);
    ASSERT_EQ(order.size(), reference.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_TRUE(same_event(order[i], reference[i]))
          << "position " << i << " diverged";
    }
    ++permutations;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(permutations, 720);  // 6! orderings all checked
}

TEST(EventQueue, OrderIsStrictAndAntisymmetric) {
  const Event a{1.0, EventKind::kRelease, 0};
  const Event b{1.0, EventKind::kRelease, 1};
  EXPECT_FALSE(event_before(a, a));  // irreflexive
  EXPECT_TRUE(event_before(a, b) != event_before(b, a));
  const Event c{1.0, EventKind::kCompletion, 7};
  EXPECT_TRUE(event_before(c, a));  // kind outranks actor
}

TEST(EventQueue, ClearKeepsCapacityForReuse) {
  EventQueue q;
  for (int i = 0; i < 64; ++i) {
    q.push({static_cast<double>(i), EventKind::kRelease, i});
  }
  const std::size_t warm = q.capacity();
  EXPECT_GE(warm, 64u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), warm);  // the zero-alloc reuse property
  q.push({0.5, EventKind::kBatteryObs, -1});
  EXPECT_EQ(q.top().kind, EventKind::kBatteryObs);
}

TEST(EventQueue, KindToStringCoversTaxonomy) {
  EXPECT_EQ(to_string(EventKind::kCompletion), "completion");
  EXPECT_EQ(to_string(EventKind::kRelease), "release");
  EXPECT_EQ(to_string(EventKind::kBatteryObs), "battery-obs");
  EXPECT_EQ(to_string(EventKind::kHorizon), "horizon");
}

}  // namespace
}  // namespace bas::sim
