// Tests for the extension modules: TGFF file I/O round-trips and the
// profile-clamped DVS decorator (Guideline 1 enforced at the DVS
// level), including its deadline-safety when composed into a scheme.

#include <gtest/gtest.h>

#include <sstream>

#include "dvs/clamped.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tgff/io.hpp"
#include "tgff/workload.hpp"

namespace bas {
namespace {

// ------------------------------------------------------------ tgff I/O ---

TEST(TgffIo, RoundTripPreservesEverything) {
  util::Rng rng(91);
  const auto set = tgff::paper_workload(4, rng);
  const auto text = tgff::to_tgff_string(set);
  const auto parsed = tgff::parse_tgff_string(text);

  ASSERT_EQ(parsed.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& a = set.graph(i);
    const auto& b = parsed.graph(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_DOUBLE_EQ(a.period(), b.period());
    ASSERT_EQ(a.node_count(), b.node_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (tg::NodeId id = 0; id < a.node_count(); ++id) {
      EXPECT_DOUBLE_EQ(a.node(id).wcet_cycles, b.node(id).wcet_cycles);
      EXPECT_EQ(a.node(id).name, b.node(id).name);
      EXPECT_EQ(a.successors(id), b.successors(id));
    }
  }
}

TEST(TgffIo, DoubleRoundTripIsIdentity) {
  util::Rng rng(92);
  const auto set = tgff::paper_workload(2, rng);
  const auto once = tgff::to_tgff_string(set);
  const auto twice = tgff::to_tgff_string(tgff::parse_tgff_string(once));
  EXPECT_EQ(once, twice);
}

TEST(TgffIo, ParsesHandWrittenInput) {
  const std::string text = R"(
# comment
@TASKGRAPH video PERIOD 0.04
  TASK fetch WCET 4e6
  TASK decode WCET 1.4e7   # trailing comment
  ARC 0 1
@END
)";
  const auto set = tgff::parse_tgff_string(text);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.graph(0).name(), "video");
  EXPECT_DOUBLE_EQ(set.graph(0).period(), 0.04);
  EXPECT_DOUBLE_EQ(set.graph(0).node(1).wcet_cycles, 1.4e7);
  EXPECT_EQ(set.graph(0).successors(0), std::vector<tg::NodeId>{1});
}

TEST(TgffIo, RejectsMalformedInput) {
  EXPECT_THROW(tgff::parse_tgff_string("@TASKGRAPH g PERIOD 1\nTASK a\n"),
               std::runtime_error);
  EXPECT_THROW(tgff::parse_tgff_string("TASK a WCET 1\n"),
               std::runtime_error);
  EXPECT_THROW(tgff::parse_tgff_string("@TASKGRAPH g PERIOD 1\n"),
               std::runtime_error);  // unterminated
  EXPECT_THROW(
      tgff::parse_tgff_string("@TASKGRAPH g PERIOD 1\nARC 0 1\n@END\n"),
      std::runtime_error);  // arc to unknown tasks
  EXPECT_THROW(tgff::parse_tgff_string("@END\n"), std::runtime_error);
  EXPECT_THROW(tgff::parse_tgff_string("NONSENSE x\n"), std::runtime_error);
}

TEST(TgffIo, RejectsCyclicGraphAtValidation) {
  const std::string text =
      "@TASKGRAPH g PERIOD 1\nTASK a WCET 1e6\nTASK b WCET 1e6\n"
      "ARC 0 1\nARC 1 0\n@END\n";
  EXPECT_THROW(tgff::parse_tgff_string(text), std::logic_error);
}

TEST(TgffIo, FileRoundTrip) {
  util::Rng rng(93);
  const auto set = tgff::paper_workload(3, rng);
  const std::string path = "/tmp/bas_tgff_io_test.tgff";
  tgff::save_tgff_file(path, set);
  const auto loaded = tgff::load_tgff_file(path);
  EXPECT_EQ(loaded.size(), set.size());
  EXPECT_NEAR(loaded.utilization(1e9), set.utilization(1e9), 1e-12);
  EXPECT_THROW(tgff::load_tgff_file("/nonexistent/x.tgff"),
               std::runtime_error);
}

// ----------------------------------------------------- clamped DVS ---------

dvs::GraphStatus status(int graph, double period, double deadline,
                        double wc_total, double remaining) {
  dvs::GraphStatus s;
  s.graph = graph;
  s.period_s = period;
  s.abs_deadline_s = deadline;
  s.wc_total_cycles = wc_total;
  s.cc_wc_cycles = wc_total;
  s.remaining_wc_cycles = remaining;
  return s;
}

TEST(ClampedDvs, NeverRisesWithinABusyInterval) {
  auto clamped = dvs::make_profile_clamped(dvs::make_cc_edf(1e9));
  std::vector<dvs::GraphStatus> graphs{status(0, 1.0, 1.0, 6e8, 6e8)};
  const double f0 = clamped->select(graphs, 0.0);
  // Inner ccEDF would ask for more after a pessimistic update; the
  // clamp holds the level (the floor stays below it).
  graphs[0].cc_wc_cycles = 9e8;  // inner demand rises
  graphs[0].remaining_wc_cycles = 5e8;
  const double f1 = clamped->select(graphs, 0.1);
  EXPECT_LE(f1, f0 + 1e-6);
}

TEST(ClampedDvs, FollowsInnerDownward) {
  auto clamped = dvs::make_profile_clamped(dvs::make_cc_edf(1e9));
  std::vector<dvs::GraphStatus> graphs{status(0, 1.0, 1.0, 6e8, 6e8)};
  const double f0 = clamped->select(graphs, 0.0);
  graphs[0].cc_wc_cycles = 3e8;  // big slack discovered
  graphs[0].remaining_wc_cycles = 2e8;
  const double f1 = clamped->select(graphs, 0.2);
  EXPECT_LT(f1, f0);
}

TEST(ClampedDvs, DeadlineFloorForcesNecessaryRise) {
  auto clamped = dvs::make_profile_clamped(dvs::make_static_dvs(1e9));
  // Static inner asks 3e8; but with 4e8 cycles remaining and only
  // 0.5 s left, the EDF floor (8e8) must win.
  std::vector<dvs::GraphStatus> graphs{status(0, 1.0, 1.0, 3e8, 4e8)};
  const double f = clamped->select(graphs, 0.5);
  EXPECT_GE(f, 8e8 - 1.0);
}

TEST(ClampedDvs, ReArmsOnNewRelease) {
  auto clamped = dvs::make_profile_clamped(dvs::make_cc_edf(1e9));
  std::vector<dvs::GraphStatus> graphs{status(0, 1.0, 1.0, 6e8, 6e8)};
  clamped->select(graphs, 0.0);
  graphs[0].cc_wc_cycles = 2e8;  // slack: level drops to 2e8
  graphs[0].remaining_wc_cycles = 1e8;
  EXPECT_NEAR(clamped->select(graphs, 0.5), 2e8, 1.0);
  // New instance: deadline moves to 2.0 and full work returns.
  graphs[0] = status(0, 1.0, 2.0, 6e8, 6e8);
  EXPECT_NEAR(clamped->select(graphs, 1.0), 6e8, 1.0);
}

TEST(ClampedDvs, NameAndResetDelegate) {
  auto clamped = dvs::make_profile_clamped(dvs::make_la_edf(1e9));
  EXPECT_EQ(clamped->name(), "laEDF+clamp");
  clamped->reset();  // must not throw
}

TEST(ClampedDvs, SchemeCompositionStaysDeadlineClean) {
  // The decorator composes into the methodology like any DVS policy
  // (the paper's genericity claim): sweep a few random workloads.
  const auto proc = dvs::Processor::paper_default();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed * 31u);
    tgff::WorkloadParams wp;
    wp.graph_count = 3;
    wp.target_utilization = 0.9;
    wp.period_lo_s = 0.05;
    wp.period_hi_s = 0.5;
    const auto set = tgff::make_workload(wp, rng);
    core::Scheme scheme = core::make_custom_scheme(
        "clamped-BAS",
        dvs::make_profile_clamped(dvs::make_la_edf(proc.fmax_hz())),
        sched::make_pubs_priority(), sched::make_history_estimator(),
        core::ReadyScope::kAllReleased);
    sim::SimConfig config;
    config.horizon_s = 3.0;
    config.record_trace = true;
    config.seed = seed;
    sim::Simulator simulator(set, proc, scheme, config);
    const auto result = simulator.run();
    EXPECT_EQ(result.deadline_misses, 0u) << "seed " << seed;
    const auto audit = sim::audit_trace(result.trace, set, proc, true);
    EXPECT_TRUE(audit.ok) << audit.summary();
  }
}

// Note: at the *profile* level clamping is not automatically smoother —
// holding the frequency below the inner policy's ask defers work, and
// the deadline floor then ramps the tail of the busy interval up (a
// just-in-time ramp). The decorator's guarantee is per-decision (no
// unforced rise, tested above) plus deadline safety under composition,
// which this scheme-level run checks.
TEST(ClampedDvs, SchemeLevelRunStaysCleanAndComparable) {
  const auto proc = dvs::Processor::paper_default();
  util::Rng rng(55);
  tgff::WorkloadParams wp;
  wp.graph_count = 3;
  wp.target_utilization = 0.7 / 0.6;
  wp.period_lo_s = 0.5;
  wp.period_hi_s = 5.0;
  const auto set = tgff::make_workload(wp, rng);
  sim::SimConfig config;
  config.horizon_s = 60.0;
  config.seed = 5;
  config.ac_model = sim::AcModel::kPerNodeMean;

  auto run_with = [&](std::unique_ptr<dvs::DvsPolicy> policy) {
    core::Scheme scheme = core::make_custom_scheme(
        "x", std::move(policy), sched::make_pubs_priority(),
        sched::make_history_estimator(), core::ReadyScope::kAllReleased);
    sim::Simulator simulator(set, proc, scheme, config);
    return simulator.run();
  };
  const auto plain = run_with(dvs::make_la_edf(proc.fmax_hz()));
  const auto clamped = run_with(
      dvs::make_profile_clamped(dvs::make_la_edf(proc.fmax_hz())));
  EXPECT_EQ(clamped.deadline_misses, 0u);
  EXPECT_EQ(plain.deadline_misses, 0u);
  // Same work completed either way; energies stay in the same regime.
  EXPECT_EQ(clamped.instances_completed, plain.instances_completed);
  EXPECT_NEAR(clamped.energy_j / plain.energy_j, 1.0, 0.15);
}

}  // namespace
}  // namespace bas
