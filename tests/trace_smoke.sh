#!/usr/bin/env bash
# Chrome-trace smoke (ctest: trace_smoke).
#
# Pins the two end-to-end contracts of the --trace-out flag:
#
#   1. Instrumentation only: a campaign run with --trace-out produces
#      byte-identical CSV output to the same run without it (cmp), and
#      the flag stays out of the cache-keying config summary.
#   2. The emitted file is real trace-event JSON: `python3 -m json.tool`
#      parses both the campaign trace (runner-level: job spans, writer
#      queue depth) and the direct-mode sim trace (releases, exec
#      slices), and the documents carry the expected structure.
#
# The in-process format contracts (per-track monotone ts, escaping,
# release/completion counts) live in tests/test_obs.cpp; this script
# checks the CLI plumbing end to end.
#
# Usage: trace_smoke.sh /path/to/table2_battery_lifetime /path/to/perf_hotpath

set -euo pipefail

table2="$1"
perf="$2"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

flags="--sets 1 --jobs 2"

# 1. Byte-identity: tracing a campaign must not move a single byte of
#    its results.
"$table2" $flags --csv "$work/plain.csv" > /dev/null
"$table2" $flags --csv "$work/traced.csv" \
    --trace-out "$work/campaign.json" --progress-interval 0 > /dev/null
cmp "$work/plain.csv" "$work/traced.csv"
echo "trace smoke (campaign byte-identity): OK"

test -s "$work/campaign.json"
grep -q '"traceEvents"' "$work/campaign.json"
grep -q 'process_name' "$work/campaign.json"

# 2. Direct-mode sim trace from the perf harness (one untimed rep of a
#    single small cell).
"$perf" --smoke --sets 1 --scenarios idle-heavy --schemes BAS-2 \
    --batteries kibam --engine tick --json "$work/perf.json" \
    --trace-out "$work/direct.json" > /dev/null
test -s "$work/direct.json"
grep -q '"traceEvents"' "$work/direct.json"
grep -q '"release"' "$work/direct.json"

if ! command -v python3 > /dev/null; then
  echo "trace smoke (JSON validity): SKIPPED (python3 not found)"
  exit 0
fi
python3 -m json.tool "$work/campaign.json" > /dev/null
python3 -m json.tool "$work/direct.json" > /dev/null
python3 -m json.tool "$work/perf.json" > /dev/null
echo "trace smoke (JSON validity): OK"
