#!/usr/bin/env bash
# Differential bit-identity smoke (ctest: golden_bit_identity).
#
# The hot-path work (scratch-buffer reuse in Simulator::run, battery-
# kernel precomputation, cache write batching) is contracted to be an
# *exact* transformation: every CSV byte must match what the code
# produced before the refactor. The files under tests/golden/ were
# generated at the pre-refactor HEAD with the flags below; this script
# re-runs the same cells — table2 fresh, arrival_stress through the
# full shard + cache + merge campaign path — and cmp's the outputs.
#
# If a future change moves these bytes ON PURPOSE (a genuine semantic
# change, not a perf transformation), regenerate the goldens with the
# commands below and say so in the PR:
#
#   table2_battery_lifetime --sets 2 --jobs 2 --csv tests/golden/table2_smoke.csv
#   arrival_stress --sets 1 --scenario.horizon 600 --jobs 2 \
#       --csv tests/golden/arrival_stress_smoke.csv
#
# Usage: golden_outputs_smoke.sh /path/to/table2 /path/to/arrival_stress golden_dir

set -euo pipefail

table2="$1"
arrival="$2"
golden="$3"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# 1. Table 2 smoke cell, fresh run.
"$table2" --sets 2 --jobs 2 --csv "$work/table2.csv" > /dev/null
cmp "$golden/table2_smoke.csv" "$work/table2.csv"

# 2. arrival_stress smoke cell through the campaign path: two shards
#    into one cache dir, then a merge — the merged bytes must equal the
#    pre-refactor fresh run's.
flags="--sets 1 --scenario.horizon 600"
"$arrival" $flags --jobs 2 --shard 0/2 --cache "$work/cache" > /dev/null
"$arrival" $flags --jobs 2 --shard 1/2 --cache "$work/cache" > /dev/null
"$arrival" $flags --merge --cache "$work/cache" --csv "$work/arrival.csv" > /dev/null
cmp "$golden/arrival_stress_smoke.csv" "$work/arrival.csv"

echo "golden outputs: OK"
