#!/usr/bin/env bash
# Differential bit-identity smoke (ctest: golden_bit_identity).
#
# Two engines, two golden sets:
#
#   *_tick.csv   — generated at the pre-event-engine HEAD (PR 5) with
#                  the flags below. The tick engine is contracted to be
#                  bit-frozen: the refactor that split it into
#                  tick_engine.cpp must never move these bytes.
#   *.csv        — generated under the event engine (the default since
#                  the event-driven core landed). Event outputs differ
#                  from tick only through battery merge windows
#                  (SimConfig::battery_window_s); the numerical-
#                  equivalence argument lives in EXPERIMENTS.md,
#                  "Event-driven core". Within one engine the outputs
#                  are bit-deterministic, which is what this file pins.
#
# table2 runs fresh; arrival_stress goes through the full shard + cache
# + merge campaign path, so shard/merge byte-identity is covered per
# engine as well.
#
# If a future change moves the event bytes ON PURPOSE (a genuine
# semantic change, not a perf transformation), regenerate with the
# commands below and say so in the PR. The tick goldens should only
# ever be regenerated together with a written waiver — they are the
# anchor that proves engine refactors preserve the original simulator:
#
#   table2_battery_lifetime --sets 2 --jobs 2 --csv tests/golden/table2_smoke.csv
#   arrival_stress --sets 1 --scenario.horizon 600 --jobs 2 \
#       --csv tests/golden/arrival_stress_smoke.csv
#   (append --scenario.engine=tick for the *_tick.csv variants)
#
# Usage: golden_outputs_smoke.sh /path/to/table2 /path/to/arrival_stress golden_dir

set -euo pipefail

table2="$1"
arrival="$2"
golden="$3"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

for engine in event tick; do
  if [ "$engine" = tick ]; then
    eng_flag="--scenario.engine=tick"
    suffix="_tick"
  else
    eng_flag=""  # event is the default engine
    suffix=""
  fi

  # 1. Table 2 smoke cell, fresh run.
  "$table2" --sets 2 --jobs 2 $eng_flag --csv "$work/table2_$engine.csv" \
      > /dev/null
  cmp "$golden/table2_smoke$suffix.csv" "$work/table2_$engine.csv"

  # 2. arrival_stress smoke cell through the campaign path: two shards
  #    into one cache dir, then a merge — the merged bytes must equal a
  #    fresh run's (and, for tick, the pre-refactor run's).
  flags="--sets 1 --scenario.horizon 600 $eng_flag"
  "$arrival" $flags --jobs 2 --shard 0/2 --cache "$work/cache_$engine" \
      > /dev/null
  "$arrival" $flags --jobs 2 --shard 1/2 --cache "$work/cache_$engine" \
      > /dev/null
  "$arrival" $flags --merge --cache "$work/cache_$engine" \
      --csv "$work/arrival_$engine.csv" > /dev/null
  cmp "$golden/arrival_stress_smoke$suffix.csv" "$work/arrival_$engine.csv"

  echo "golden outputs ($engine): OK"
done
