// Tests for the TGFF-style generator and workload builder, including
// parameterized property sweeps over generation methods and sizes.

#include <gtest/gtest.h>

#include <tuple>

#include "taskgraph/algorithms.hpp"
#include "tgff/generator.hpp"
#include "tgff/workload.hpp"

namespace bas {
namespace {

using GenCase = std::tuple<tgff::Method, int, std::uint64_t>;

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, ProducesValidDagOfRequestedSize) {
  const auto [method, nodes, seed] = GetParam();
  tgff::GeneratorParams p;
  p.method = method;
  p.node_count = nodes;
  util::Rng rng(seed);
  const auto g = tgff::generate(p, rng);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(nodes));
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_NO_THROW(g.validate());
  for (tg::NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_GE(g.node(id).wcet_cycles, p.wcet_lo_cycles);
    EXPECT_LE(g.node(id).wcet_cycles, p.wcet_hi_cycles);
  }
}

TEST_P(GeneratorProperty, DeterministicGivenSeed) {
  const auto [method, nodes, seed] = GetParam();
  tgff::GeneratorParams p;
  p.method = method;
  p.node_count = nodes;
  util::Rng rng1(seed);
  util::Rng rng2(seed);
  const auto a = tgff::generate(p, rng1);
  const auto b = tgff::generate(p, rng2);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (tg::NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_DOUBLE_EQ(a.node(id).wcet_cycles, b.node(id).wcet_cycles);
    EXPECT_EQ(a.successors(id), b.successors(id));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSizes, GeneratorProperty,
    ::testing::Combine(::testing::Values(tgff::Method::kFanInFanOut,
                                         tgff::Method::kLayered,
                                         tgff::Method::kSeriesParallel),
                       ::testing::Values(1, 5, 10, 15, 30),
                       ::testing::Values(1u, 42u, 20260612u)));

TEST(Generator, DegreeBoundsHonoredByFanio) {
  tgff::GeneratorParams p;
  p.method = tgff::Method::kFanInFanOut;
  p.node_count = 40;
  p.max_out_degree = 2;
  p.max_in_degree = 2;
  util::Rng rng(11);
  const auto g = tgff::generate(p, rng);
  for (tg::NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_LE(g.successors(id).size(), 2u);
    EXPECT_LE(g.predecessors(id).size(), 2u);
  }
}

TEST(Generator, DegreeBoundsHonoredByLayered) {
  tgff::GeneratorParams p;
  p.method = tgff::Method::kLayered;
  p.node_count = 40;
  p.max_out_degree = 3;
  p.max_in_degree = 2;
  p.edge_density = 0.9;
  util::Rng rng(11);
  const auto g = tgff::generate(p, rng);
  for (tg::NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_LE(g.predecessors(id).size(), 2u);
  }
}

TEST(Generator, FanioIsConnectedFromRoot) {
  tgff::GeneratorParams p;
  p.method = tgff::Method::kFanInFanOut;
  p.node_count = 30;
  util::Rng rng(13);
  const auto g = tgff::generate(p, rng);
  // Every non-source node must have at least one predecessor, so the
  // graph has real structure, not a bag of isolated tasks.
  std::size_t with_preds = 0;
  for (tg::NodeId id = 0; id < g.node_count(); ++id) {
    if (!g.predecessors(id).empty()) {
      ++with_preds;
    }
  }
  EXPECT_GT(with_preds, g.node_count() / 2);
}

TEST(Generator, SeriesParallelHasSingleSourceAndSink) {
  tgff::GeneratorParams p;
  p.method = tgff::Method::kSeriesParallel;
  p.node_count = 25;
  util::Rng rng(17);
  const auto g = tgff::generate(p, rng);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Generator, RejectsBadParams) {
  util::Rng rng(1);
  tgff::GeneratorParams p;
  p.node_count = 0;
  EXPECT_THROW(tgff::generate(p, rng), std::invalid_argument);
  p.node_count = 5;
  p.max_in_degree = 0;
  EXPECT_THROW(tgff::generate(p, rng), std::invalid_argument);
  p.max_in_degree = 2;
  p.wcet_hi_cycles = p.wcet_lo_cycles / 2;
  EXPECT_THROW(tgff::generate(p, rng), std::invalid_argument);
}

class WorkloadUtilization
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(WorkloadUtilization, HitsTargetExactly) {
  const auto [graphs, target] = GetParam();
  tgff::WorkloadParams p;
  p.graph_count = graphs;
  p.target_utilization = target;
  util::Rng rng(7u + static_cast<std::uint64_t>(graphs));
  const auto set = tgff::make_workload(p, rng);
  EXPECT_EQ(set.size(), static_cast<std::size_t>(graphs));
  EXPECT_NEAR(set.utilization(p.fmax_hz), target, 1e-9);
  EXPECT_NO_THROW(set.validate());
}

INSTANTIATE_TEST_SUITE_P(
    CountsAndTargets, WorkloadUtilization,
    ::testing::Combine(::testing::Values(1, 3, 5, 10),
                       ::testing::Values(0.3, 0.5, 0.7, 0.95)));

TEST(Workload, PeriodsWithinRange) {
  tgff::WorkloadParams p;
  p.graph_count = 8;
  util::Rng rng(5);
  const auto set = tgff::make_workload(p, rng);
  for (const auto& g : set) {
    EXPECT_GE(g.period(), p.period_lo_s * (1 - 1e-12));
    EXPECT_LE(g.period(), p.period_hi_s * (1 + 1e-12));
  }
}

TEST(Workload, NodeCountsWithinRange) {
  tgff::WorkloadParams p;
  p.graph_count = 10;
  p.min_nodes = 5;
  p.max_nodes = 15;
  util::Rng rng(6);
  const auto set = tgff::make_workload(p, rng);
  for (const auto& g : set) {
    EXPECT_GE(g.node_count(), 5u);
    EXPECT_LE(g.node_count(), 15u);
  }
}

TEST(Workload, PaperWorkloadMatchesPaperSetup) {
  util::Rng rng(2006);
  const auto set = tgff::paper_workload(3, rng);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_NEAR(set.utilization(1e9), 0.7, 1e-9);
}

TEST(Workload, RejectsBadParams) {
  util::Rng rng(1);
  tgff::WorkloadParams p;
  p.graph_count = 0;
  EXPECT_THROW(tgff::make_workload(p, rng), std::invalid_argument);
  p.graph_count = 2;
  p.target_utilization = 2.5;  // worst-case utilization capped at 2
  EXPECT_THROW(tgff::make_workload(p, rng), std::invalid_argument);
  p.target_utilization = 0.7;
  p.period_hi_s = p.period_lo_s / 2;
  EXPECT_THROW(tgff::make_workload(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bas
