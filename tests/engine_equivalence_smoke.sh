#!/usr/bin/env bash
# Engine-equivalence smoke (ctest: engine_equivalence_smoke).
#
# Drives the table2 CLI under both simulator engines and checks the
# two contracts from EXPERIMENTS.md, "Event-driven core":
#
#   1. With battery merging off (--scenario.battery-window=0) the event
#      engine makes the tick engine's kernel calls in the tick engine's
#      order, so the CSVs must be BYTE-IDENTICAL (cmp).
#   2. At the default 5 s merge window the engines may differ only
#      through window-merged battery arithmetic: aggregate means stay
#      within 0.5% relative, stddevs within 10% (a stddev of
#      near-identical samples amplifies sub-0.1% shifts), and miss
#      counts within the documented one-window slop.
#
# The in-process equivalence suite (tests/test_engines.cpp) pins the
# same contracts on SimResult fields; this script pins them end-to-end
# through the CLI, CSV writer, and scenario-override plumbing.
#
# Usage: engine_equivalence_smoke.sh /path/to/table2_battery_lifetime

set -euo pipefail

table2="$1"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

flags="--sets 2 --jobs 2"

"$table2" $flags --scenario.engine=tick --csv "$work/tick.csv" > /dev/null
"$table2" $flags --scenario.engine=event --scenario.battery-window=0 \
    --csv "$work/event_w0.csv" > /dev/null
"$table2" $flags --scenario.engine=event --csv "$work/event.csv" > /dev/null

# 1. Merging disabled: bit-equal trajectories, bit-equal bytes.
cmp "$work/tick.csv" "$work/event_w0.csv"
echo "engine equivalence (window=0, byte-identical): OK"

# 2. Default window: tolerance compare, column-aware.
if ! command -v python3 > /dev/null; then
  echo "engine equivalence (default window): SKIPPED (python3 not found)"
  exit 0
fi
python3 - "$work/tick.csv" "$work/event.csv" <<'PY'
import csv, sys

def rel(a, b):
    d = max(abs(a), abs(b))
    return abs(a - b) / d if d > 0.0 else 0.0

with open(sys.argv[1]) as f:
    tick = list(csv.DictReader(f))
with open(sys.argv[2]) as f:
    event = list(csv.DictReader(f))
assert len(tick) == len(event) and tick, "row sets differ"

bad = []
for trow, erow in zip(tick, event):
    assert trow["scheme"] == erow["scheme"], "scheme order differs"
    for col in trow:
        if col == "scheme":
            continue
        t, e = float(trow[col]), float(erow[col])
        if col.startswith("misses"):
            ok = abs(t - e) <= 2.0
        elif "stddev" in col:
            ok = rel(t, e) <= 0.10 or abs(t - e) <= 1.0
        else:
            ok = rel(t, e) <= 5e-3
        if not ok:
            bad.append(f"{trow['scheme']}.{col}: tick={t} event={e}")

if bad:
    sys.exit("engine divergence beyond tolerance:\n" + "\n".join(bad))
print("engine equivalence (default window, tolerance): OK")
PY
