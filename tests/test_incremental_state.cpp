// Incremental scheduler-state contracts (see event_engine.cpp, "incremental
// maintenance").
//
// The event engine no longer rebuilds the EDF order and the status
// snapshot at every decision point — it maintains both persistently
// (insert at release, erase at completion, write-through of the running
// graph's dynamic fields, a sorted watch for deadline expiry). All of
// it is contracted to be
// *bitwise* invisible: the maintained structures must equal a
// from-scratch rebuild at every decision point, and a run with the
// machinery enabled must produce the same bytes as the seed's
// rebuild-everything loop (pinned end-to-end by golden_bit_identity).
// These tests fuzz that equivalence across scenarios x arrival
// processes x schemes x engines via SimConfig::check_incremental_state,
// which makes the engine rebuild through the ORIGINAL
// util::insertion_sort path at every decision point and throw
// std::logic_error on any divergence.
//
// The pUBS hoist (priorities.cpp: per-decision-point memo of time_left,
// s_o, s_o^2) is pinned separately against an unhoisted reference copy
// of the scoring arithmetic — EXPECT_EQ on doubles, no tolerance.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "scenario/scenario.hpp"
#include "sched/priority.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

sim::SimResult run_cell(const std::string& scenario_name,
                        const std::string& arrival_model,
                        core::SchemeKind kind, sim::Engine engine,
                        bool check, std::uint64_t seed) {
  const auto& spec = scenario::scenario(scenario_name);
  util::Rng rng(seed);
  const auto set = spec.make_workload(rng);
  const auto proc = spec.make_processor();
  auto config = spec.sim_config(util::Rng::hash_combine(seed, 1000u));
  config.engine = engine;
  config.arrival.model = arrival_model;
  config.horizon_s = 600.0;  // bounded fuzz cells, not lifetime runs
  config.record_perf_counters = true;
  config.check_incremental_state = check;
  auto battery = scenario::make_battery(spec.battery);
  return sim::simulate_scheme(set, proc, kind, config, battery.get());
}

/// Exact equality of every headline result field — the check flag is
/// instrumentation, so flag-on and flag-off runs must not differ by a
/// single bit.
void expect_bitwise_equal(const sim::SimResult& a, const sim::SimResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.end_time_s, b.end_time_s) << label;
  EXPECT_EQ(a.energy_j, b.energy_j) << label;
  EXPECT_EQ(a.charge_c, b.charge_c) << label;
  EXPECT_EQ(a.busy_s, b.busy_s) << label;
  EXPECT_EQ(a.instances_released, b.instances_released) << label;
  EXPECT_EQ(a.instances_completed, b.instances_completed) << label;
  EXPECT_EQ(a.nodes_executed, b.nodes_executed) << label;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << label;
  EXPECT_EQ(a.frequency_increases, b.frequency_increases) << label;
  EXPECT_EQ(a.battery_lifetime_s, b.battery_lifetime_s) << label;
  EXPECT_EQ(a.battery_delivered_mah, b.battery_delivered_mah) << label;
}

TEST(IncrementalState, MaintainedStateMatchesRebuildAcrossFuzzGrid) {
  // Every decision point of every cell re-verifies the maintained EDF
  // order and status snapshot against the original rebuild path; a
  // single diverging element throws out of simulate_scheme and fails
  // the cell. The grid crosses a dense and a sparse world with every
  // non-trace arrival model, every Table 2 scheme and both engines
  // (the tick engine has no incremental state and must ignore the
  // flag bit-exactly).
  const std::vector<std::string> scenarios{"paper-table2", "sporadic-sensor"};
  const std::vector<std::string> arrivals{"periodic", "sporadic", "poisson",
                                          "ippp"};
  const std::vector<sim::Engine> engines{sim::Engine::kEvent,
                                         sim::Engine::kTick};
  std::uint64_t seed = 20260808;
  for (const auto& scenario_name : scenarios) {
    for (const auto& arrival : arrivals) {
      for (const auto kind : core::table2_schemes()) {
        for (const auto engine : engines) {
          ++seed;  // distinct workloads per cell: more trajectories fuzzed
          const std::string label =
              scenario_name + "/" + arrival + "/" + core::to_string(kind) +
              (engine == sim::Engine::kEvent ? "/event" : "/tick");
          sim::SimResult checked;
          ASSERT_NO_THROW(checked = run_cell(scenario_name, arrival, kind,
                                             engine, true, seed))
              << label;
          const auto plain =
              run_cell(scenario_name, arrival, kind, engine, false, seed);
          expect_bitwise_equal(checked, plain, label);
        }
      }
    }
  }
}

TEST(IncrementalState, EventEngineWindowZeroMatchesTickBitwise) {
  // With battery merging off the engines are contracted draw-for-draw
  // identical; the maintained state must preserve that, not just the
  // merged-window tolerance band. BAS-2 exercises every piece at once
  // (statuses, feasibility prefix, pUBS memo).
  const auto& spec = scenario::scenario("paper-table2");
  for (const auto kind : {core::SchemeKind::kEdfNoDvs, core::SchemeKind::kBas2}) {
    sim::SimResult results[2];
    for (int e = 0; e < 2; ++e) {
      util::Rng rng(99);
      const auto set = spec.make_workload(rng);
      const auto proc = spec.make_processor();
      auto config = spec.sim_config(util::Rng::hash_combine(99u, 1000u));
      config.engine = e == 0 ? sim::Engine::kEvent : sim::Engine::kTick;
      config.battery_window_s = 0.0;  // merging off: exact contract
      config.horizon_s = 600.0;
      config.check_incremental_state = e == 0;
      auto battery = scenario::make_battery(spec.battery);
      results[e] = sim::simulate_scheme(set, proc, kind, config,
                                        battery.get());
    }
    expect_bitwise_equal(results[0], results[1], core::to_string(kind));
  }
}

TEST(IncrementalState, CountersAttributeTheIncrementalWork) {
  // BAS-2 on the dense cell: the event engine maintains the EDF order,
  // so edf_incremental_ops counts its inserts/erases. The tick engine
  // still rebuilds per step and must report zero.
  const auto event = run_cell("paper-table2", "periodic",
                              core::SchemeKind::kBas2, sim::Engine::kEvent,
                              false, 5);
  EXPECT_GT(event.perf.edf_incremental_ops, 0u);
  const auto tick = run_cell("paper-table2", "periodic",
                             core::SchemeKind::kBas2, sim::Engine::kTick,
                             false, 5);
  EXPECT_EQ(tick.perf.edf_incremental_ops, 0u);
}

// ---------------------------------------------------------------------
// pUBS hoist bit-identity.

/// The scoring arithmetic exactly as written before the hoist
/// (priorities.cpp history: every division inline, no memo). The hoisted
/// implementation must reproduce these doubles bit-for-bit.
double reference_pubs_score(const sched::Candidate& cand, double now) {
  constexpr double kEps = 1e-12;
  const double time_left = cand.graph_abs_deadline_s - now;
  if (time_left <= kEps) {
    return -std::numeric_limits<double>::infinity();
  }
  const double s_o = cand.graph_remaining_wc_cycles / time_left;
  if (s_o <= kEps) {
    return std::numeric_limits<double>::infinity();
  }
  const double x_k = cand.estimate_cycles;
  const double t_after = time_left - x_k / s_o;
  const double rem_after = cand.graph_remaining_wc_cycles - cand.wc_cycles;
  if (t_after <= kEps) {
    return std::numeric_limits<double>::max();
  }
  const double s_ok = rem_after / t_after;
  const double denom = s_o * s_o - s_ok * s_ok;
  if (denom <= kEps * s_o * s_o) {
    return 0.5 * std::numeric_limits<double>::max() *
           (x_k / (x_k + cand.wc_cycles + 1.0));
  }
  return x_k / denom;
}

TEST(PubsHoist, ScoreBitIdenticalToUnhoistedReference) {
  // Dense sweep over awkward operand values, including groups of
  // same-graph siblings (shared deadline + remaining wc — the memo-hit
  // path) interleaved with graph switches (the memo-miss path), plus
  // every early-return branch: past deadline, zero remaining work,
  // window-filling estimates and the degenerate denominator guard.
  const auto pubs = sched::make_pubs_priority();
  pubs->reset();
  const std::vector<double> deadlines{-1.0,  1e-13, 0.05, 1.0 / 3.0,
                                      1.7,   23.0,  1e4};
  const std::vector<double> rem_wcs{0.0, 1e-13, 7e5, 1.23456789e8, 4e9};
  const std::vector<double> wcs{1e5, 9.7e6, 3.33e8};
  const std::vector<double> est_fracs{0.2, 0.59999, 1.0};
  const double now = 10.0;
  int checked = 0;
  for (const double dl : deadlines) {
    for (const double rem : rem_wcs) {
      int graph = 0;
      for (const double wc : wcs) {
        // Each (deadline, rem) pair plays a sibling group: several
        // candidates of one graph scored back to back hit the memo,
        // then the next (dl, rem) changes the key.
        for (const double frac : est_fracs) {
          sched::Candidate cand;
          cand.graph = graph;
          cand.node = 0;
          cand.wc_cycles = wc;
          cand.estimate_cycles = frac * wc;
          cand.graph_abs_deadline_s = now + dl;
          cand.graph_remaining_wc_cycles = rem;
          const double expected = reference_pubs_score(cand, now);
          const double actual = pubs->score(cand, now);
          EXPECT_EQ(expected, actual)
              << "dl=" << dl << " rem=" << rem << " wc=" << wc
              << " frac=" << frac;
          ++checked;
        }
        ++graph;
      }
    }
  }
  // Re-score a stale key after other keys were cached in between: the
  // memo must recompute, not serve the wrong graph's hoists.
  sched::Candidate cand;
  cand.wc_cycles = 9.7e6;
  cand.estimate_cycles = 0.2 * 9.7e6;
  cand.graph_abs_deadline_s = now + 1.7;
  cand.graph_remaining_wc_cycles = 7e5;
  EXPECT_EQ(reference_pubs_score(cand, now), pubs->score(cand, now));
  EXPECT_GT(checked, 300);
}

TEST(PubsHoist, BatchMatchesScalarSequence) {
  // score_batch shares the memo across lanes; the outputs must equal
  // the scalar call sequence exactly (same contract the engines'
  // batched scoring relies on).
  const auto batch_pubs = sched::make_pubs_priority();
  const auto scalar_pubs = sched::make_pubs_priority();
  const double now = 2.5;
  std::vector<sched::Candidate> cands;
  util::Rng rng(7);
  for (int g = 0; g < 6; ++g) {
    const double dl = now + 0.1 + rng.uniform() * 5.0;
    const double rem = 1e6 + rng.uniform() * 1e8;
    for (int sibling = 0; sibling < 3; ++sibling) {
      sched::Candidate c;
      c.graph = g;
      c.node = sibling;
      c.wc_cycles = 1e5 + rng.uniform() * 1e7;
      c.estimate_cycles = (0.2 + 0.8 * rng.uniform()) * c.wc_cycles;
      c.graph_abs_deadline_s = dl;
      c.graph_remaining_wc_cycles = rem;
      cands.push_back(c);
    }
  }
  std::vector<double> batched(cands.size());
  batch_pubs->score_batch(cands.data(), cands.size(), now, batched.data());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(scalar_pubs->score(cands[i], now), batched[i]) << i;
  }
}

}  // namespace
}  // namespace bas
