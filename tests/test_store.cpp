// Tests for the streaming campaign store (src/store/): the %.17g
// round-trip contract on both backends, kill-mid-write recovery,
// compaction (dedupe, stale-fingerprint purge, live-writer refusal),
// the bounded async writer (backpressure, batching, failure
// propagation) and cross-backend byte identity of merged results.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "store/async_writer.hpp"
#include "store/jsonl.hpp"
#include "store/sqlite.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"

namespace bas {
namespace {

/// Fresh temp directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("bas-store-" + name + "-" + std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// Doubles that only survive a text round trip at full %.17g precision.
std::vector<double> awkward_metrics() {
  return {1.0 / 3.0,  -0.0, 5e-324, 1.7976931348623157e308, 0.1,
          123456789.123456789};
}

void append_one(store::CampaignStore& s, std::size_t job,
                std::vector<double> metrics) {
  s.append({{job, std::move(metrics), ""}});
}

std::size_t count_files(const std::string& dir) {
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir)) {
    ++files;
  }
  return files;
}

exp::ExperimentSpec awkward_spec() {
  exp::ExperimentSpec spec;
  spec.title = "awkward";
  spec.grid.add("a", {"a0", "a1", "a2"}).add("b", {"b0", "b1"});
  spec.metrics = {"x", "y"};
  spec.replicates = 3;
  spec.seed = 77;
  spec.run = [](const exp::Job& job) -> std::vector<double> {
    const double u =
        static_cast<double>(util::Rng::mix(job.seed)) / 1.8446744e19;
    return {std::sin(u) / 3.0, std::exp(-u) * 1e-7};
  };
  return spec;
}

// ------------------------------------------------------ shared helpers

TEST(StoreHelpers, MetricsFormatRoundTripsBitwise) {
  const auto metrics = awkward_metrics();
  std::vector<double> parsed;
  ASSERT_TRUE(store::parse_metrics(store::format_metrics(metrics).c_str(),
                                   &parsed));
  ASSERT_EQ(parsed.size(), metrics.size());
  EXPECT_EQ(0, std::memcmp(parsed.data(), metrics.data(),
                           metrics.size() * sizeof(double)));
  ASSERT_TRUE(store::parse_metrics("[]", &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(StoreHelpers, MalformedMetricsAreRejected) {
  std::vector<double> parsed;
  for (const char* bad : {"", "1,2", "[1 2]", "[x]", "{1}"}) {
    EXPECT_FALSE(store::parse_metrics(bad, &parsed)) << bad;
  }
}

TEST(StoreHelpers, BackendLabelsRoundTrip) {
  EXPECT_EQ(store::backend_from_label("jsonl"), store::Backend::kJsonl);
  EXPECT_EQ(store::backend_from_label("sqlite"), store::Backend::kSqlite);
  EXPECT_STREQ(store::backend_label(store::Backend::kJsonl), "jsonl");
  EXPECT_STREQ(store::backend_label(store::Backend::kSqlite), "sqlite");
  EXPECT_THROW(store::backend_from_label("parquet"), std::runtime_error);
}

// ------------------------------------------------------- jsonl backend

TEST(JsonlStore, RoundTripsDoublesBitwise) {
  TempDir dir("roundtrip");
  const auto metrics = awkward_metrics();
  {
    store::JsonlStore cache(dir.path, 0xabcdefULL, "");
    append_one(cache, 7, metrics);
  }
  store::JsonlStore cache(dir.path, 0xabcdefULL, "");
  const auto loaded = cache.load(metrics.size());
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded.count(7));
  ASSERT_EQ(loaded.at(7).size(), metrics.size());
  EXPECT_EQ(0, std::memcmp(loaded.at(7).data(), metrics.data(),
                           metrics.size() * sizeof(double)));
}

TEST(JsonlStore, IgnoresOtherFingerprintsTornLinesAndWrongArity) {
  TempDir dir("filter");
  store::JsonlStore mine(dir.path, 0x1111ULL, "");
  append_one(mine, 0, {1.0, 2.0});
  store::JsonlStore other(dir.path, 0x2222ULL, "");
  append_one(other, 1, {3.0, 4.0});
  append_one(mine, 2, {5.0});  // wrong arity for a 2-metric load
  {
    std::ofstream torn(dir.path + "/torn.jsonl", std::ios::app);
    torn << "{\"fp\":\"" << exp::fingerprint_hex(0x1111ULL)
         << "\",\"job\":9,\"metrics\":[1.0";  // no closing brace/newline
  }
  const auto loaded = mine.load(2);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.count(0));
}

TEST(JsonlStore, AppendHealsATornTailBeforeWriting) {
  TempDir dir("torn-tail");
  const std::string fp = exp::fingerprint_hex(0x4444ULL);
  store::JsonlStore probe(dir.path, 0x4444ULL, "");
  {
    // A killed writer's file: a complete record, then a torn line with
    // no trailing newline.
    std::ofstream file(probe.write_path());
    file << "{\"fp\":\"" << fp << "\",\"job\":0,\"metrics\":[1]}\n";
    file << "{\"fp\":\"" << fp << "\",\"job\":5,\"metrics\":";
  }
  store::JsonlStore cache(dir.path, 0x4444ULL, "");
  append_one(cache, 9, {7.0});
  const auto loaded = cache.load(1);
  // The torn job-5 line must stay torn (skipped), never absorb job 9's
  // metrics; jobs 0 and 9 survive.
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.count(0));
  ASSERT_TRUE(loaded.count(9));
  EXPECT_EQ(loaded.at(9), std::vector<double>{7.0});
  EXPECT_FALSE(loaded.count(5));
}

TEST(JsonlStore, SeparateWriterTagsSeparateFiles) {
  TempDir dir("tags");
  store::JsonlStore s0(dir.path, 0x3333ULL, "s0of2");
  store::JsonlStore s1(dir.path, 0x3333ULL, "s1of2");
  EXPECT_NE(s0.write_path(), s1.write_path());
  append_one(s0, 0, {1.0});
  append_one(s1, 1, {2.0});
  EXPECT_EQ(s0.load(1).size(), 2u);  // load pools every file in the dir
}

TEST(JsonlStore, ErrorRowsRoundTripAndAreServedSeparately) {
  TempDir dir("error-rows");
  const std::string nasty = "broke: \"quoted\", back\\slash,\nnewline\ttab";
  {
    store::JsonlStore cache(dir.path, 0x5555ULL, "");
    cache.append({{0, {1.0}, ""}, {1, {}, nasty}});
  }
  store::JsonlStore cache(dir.path, 0x5555ULL, "");
  const auto loaded = cache.load(1);
  ASSERT_EQ(loaded.size(), 1u);  // the error row is not a result
  EXPECT_TRUE(loaded.count(0));
  const auto errors = cache.load_errors();
  ASSERT_EQ(errors.size(), 1u);
  ASSERT_TRUE(errors.count(1));
  EXPECT_EQ(errors.at(1), nasty);
}

TEST(JsonlStore, LaterRecordOfTheOtherKindWins) {
  TempDir dir("last-wins");
  store::JsonlStore cache(dir.path, 0x6666ULL, "");
  // A failed attempt recorded, then a successful re-run of the same
  // job: the success must win for both load() and load_errors().
  cache.append({{3, {}, "flaky"}});
  cache.append({{3, {42.0}, ""}});
  EXPECT_EQ(cache.load(1).size(), 1u);
  EXPECT_TRUE(cache.load_errors().empty());
}

// ------------------------------------------------------ sqlite backend

#define SKIP_WITHOUT_SQLITE()                                       \
  if (!store::sqlite_available()) {                                 \
    GTEST_SKIP() << "built without sqlite3; backend is stubbed";    \
  }

TEST(SqliteStore, RoundTripsDoublesBitwise) {
  SKIP_WITHOUT_SQLITE();
  TempDir dir("sq-roundtrip");
  const auto metrics = awkward_metrics();
  {
    auto cache = store::make_store(store::Backend::kSqlite, dir.path,
                                   0xabcdefULL, "");
    append_one(*cache, 7, metrics);
  }
  // A fresh handle (fresh process stand-in) sees the committed batch.
  auto cache = store::make_store(store::Backend::kSqlite, dir.path,
                                 0xabcdefULL, "");
  const auto loaded = cache->load(metrics.size());
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_TRUE(loaded.count(7));
  EXPECT_EQ(0, std::memcmp(loaded.at(7).data(), metrics.data(),
                           metrics.size() * sizeof(double)));
}

TEST(SqliteStore, FiltersFingerprintsArityAndErrorRows) {
  SKIP_WITHOUT_SQLITE();
  TempDir dir("sq-filter");
  auto mine = store::make_store(store::Backend::kSqlite, dir.path,
                                0x1111ULL, "");
  auto other = store::make_store(store::Backend::kSqlite, dir.path,
                                 0x2222ULL, "");
  append_one(*mine, 0, {1.0, 2.0});
  append_one(*other, 1, {3.0, 4.0});
  append_one(*mine, 2, {5.0});       // wrong arity for a 2-metric load
  mine->append({{3, {}, "failed"}});  // error row
  const auto loaded = mine->load(2);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.count(0));
  const auto errors = mine->load_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.at(3), "failed");
  EXPECT_TRUE(other->load_errors().empty());
}

TEST(SqliteStore, UpsertDedupesReRunJobsInPlace) {
  SKIP_WITHOUT_SQLITE();
  TempDir dir("sq-upsert");
  auto cache = store::make_store(store::Backend::kSqlite, dir.path,
                                 0x7777ULL, "");
  cache->append({{3, {}, "flaky"}});
  append_one(*cache, 3, {42.0});
  const auto loaded = cache->load(1);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.at(3), std::vector<double>{42.0});
  EXPECT_TRUE(cache->load_errors().empty());
}

TEST(SqliteStore, ConcurrentWriterHandlesShareTheDatabase) {
  SKIP_WITHOUT_SQLITE();
  TempDir dir("sq-shards");
  auto s0 = store::make_store(store::Backend::kSqlite, dir.path,
                              0x3333ULL, "s0of2");
  auto s1 = store::make_store(store::Backend::kSqlite, dir.path,
                              0x3333ULL, "s1of2");
  append_one(*s0, 0, {1.0});
  append_one(*s1, 1, {2.0});
  EXPECT_EQ(s0->load(1).size(), 2u);
}

TEST(SqliteStore, CompactionPurgesStaleFingerprintsAndVacuums) {
  SKIP_WITHOUT_SQLITE();
  TempDir dir("sq-compact");
  {
    auto live = store::make_store(store::Backend::kSqlite, dir.path,
                                  0xAAAAULL, "");
    auto stale = store::make_store(store::Backend::kSqlite, dir.path,
                                   0xBBBBULL, "");
    append_one(*live, 0, {1.0, 2.0});
    append_one(*live, 1, {3.0, 4.0});
    append_one(*stale, 0, {9.0, 9.0});
    append_one(*stale, 7, {9.0, 9.0});
  }
  const auto before =
      store::make_store(store::Backend::kSqlite, dir.path, 0xAAAAULL, "")
          ->load(2);
  const auto stats =
      store::compact_store(store::Backend::kSqlite, dir.path, 0xAAAAULL, 2);
  EXPECT_EQ(stats.records_seen, 4u);
  EXPECT_EQ(stats.records_kept, 2u);
  auto probe = store::make_store(store::Backend::kSqlite, dir.path,
                                 0xAAAAULL, "");
  EXPECT_EQ(probe->load(2), before);
  auto dead = store::make_store(store::Backend::kSqlite, dir.path,
                                0xBBBBULL, "");
  EXPECT_TRUE(dead->load(2).empty());
}

TEST(SqliteStore, UnavailableBackendFailsLoudly) {
  if (store::sqlite_available()) {
    GTEST_SKIP() << "sqlite3 present; the stub path is not built";
  }
  TempDir dir("sq-stub");
  EXPECT_THROW(
      store::make_store(store::Backend::kSqlite, dir.path, 0x1ULL, ""),
      std::runtime_error);
}

// ----------------------------------------------------- jsonl compaction

TEST(Compaction, DedupesReRunJobsAndDropsStaleFingerprints) {
  TempDir dir("compact");
  // Two writers of the live fingerprint re-ran job 0 (dupes), a third
  // file holds a dead campaign's records, and one torn tail.
  {
    store::JsonlStore w0(dir.path, 0xAAAAULL, "s0of2");
    store::JsonlStore w1(dir.path, 0xAAAAULL, "s1of2");
    store::JsonlStore stale(dir.path, 0xBBBBULL, "");
    append_one(w0, 0, {1.0, 2.0});
    append_one(w0, 2, {3.0, 4.0});
    append_one(w1, 0, {1.5, 2.5});  // job 0 re-run by the other shard
    append_one(w1, 1, {5.0, 6.0});
    append_one(stale, 0, {9.0, 9.0});
    append_one(stale, 7, {9.0, 9.0});
    std::ofstream torn(w0.write_path(), std::ios::app);
    torn << "{\"fp\":\"" << exp::fingerprint_hex(0xAAAAULL)
         << "\",\"job\":3,\"metrics\":";
  }

  // The invariant: a load() after compaction serves exactly what a
  // load() before it would have (same last-wins winners).
  const auto before = store::JsonlStore(dir.path, 0xAAAAULL, "").load(2);
  const auto stats =
      store::compact_store(store::Backend::kJsonl, dir.path, 0xAAAAULL, 2);
  const auto after = store::JsonlStore(dir.path, 0xAAAAULL, "").load(2);
  EXPECT_EQ(before, after);
  ASSERT_EQ(after.size(), 3u);  // jobs 0, 1, 2 — no stale job 7, no torn 3

  EXPECT_EQ(stats.files_scanned, 3u);
  EXPECT_EQ(stats.files_removed, 3u);
  EXPECT_EQ(stats.records_seen, 7u);  // 5 live-fp-file lines + 2 stale
  EXPECT_EQ(stats.records_kept, 3u);

  // One canonical file remains; the dead campaign's records are gone.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    EXPECT_EQ(entry.path().filename().string(),
              exp::fingerprint_hex(0xAAAAULL) + ".jsonl");
  }
  EXPECT_EQ(count_files(dir.path), 1u);
  EXPECT_TRUE(store::JsonlStore(dir.path, 0xBBBBULL, "").load(2).empty());
}

TEST(Compaction, MissingOrEmptyDirectoryIsANoop) {
  const auto none = store::compact_store(
      store::Backend::kJsonl, "/nonexistent/bas-compact-test", 0x1ULL, 2);
  EXPECT_EQ(none.files_scanned, 0u);
  EXPECT_EQ(none.records_kept, 0u);

  TempDir dir("compact-empty");
  {
    store::JsonlStore stale(dir.path, 0xBBBBULL, "");
    append_one(stale, 0, {1.0});
  }
  // Nothing matches the live fingerprint: old files are removed and no
  // compacted file is written.
  const auto stats =
      store::compact_store(store::Backend::kJsonl, dir.path, 0xAAAAULL, 1);
  EXPECT_EQ(stats.records_kept, 0u);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

TEST(Compaction, CompactedStoreRoundTripsThroughMergeBitwise) {
  TempDir dir("compact-merge");
  const auto spec = awkward_spec();
  const auto fresh = exp::run_experiment(spec, 4);

  // Populate via two shards, plus a duplicate re-run of shard 0 under a
  // different writer tag so the directory really holds re-run jobs.
  for (int s = 0; s < 2; ++s) {
    exp::RunnerOptions options;
    options.jobs = 2;
    options.shard = exp::Shard{s, 2};
    options.cache_dir = dir.path;
    exp::run_experiment(spec, options);
  }
  {
    const exp::Plan plan(spec);
    store::JsonlStore dupes(dir.path, plan.fingerprint(), "rerun");
    append_one(dupes, 0, spec.run(plan.job(0)));
  }

  exp::RunnerOptions merge;
  merge.merge_only = true;
  merge.compact_cache = true;
  merge.cache_dir = dir.path;
  const auto merged = exp::run_experiment(spec, merge);
  EXPECT_EQ(exp::to_csv(fresh), exp::to_csv(merged));
  EXPECT_EQ(count_files(dir.path), 1u);

  // A second compact + resume run over the compacted dir still has
  // every job stored and folds to the same bytes.
  exp::RunnerOptions resume;
  resume.jobs = 4;
  resume.compact_cache = true;
  resume.cache_dir = dir.path;
  EXPECT_EQ(exp::to_csv(fresh),
            exp::to_csv(exp::run_experiment(spec, resume)));
}

TEST(Compaction, WithoutStoreDirIsRejected) {
  exp::RunnerOptions options;
  options.compact_cache = true;
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

TEST(Compaction, FromAShardIsRejected) {
  // A shard is one of several concurrent writers; compacting from it
  // would delete its siblings' in-flight files.
  TempDir dir("compact-shard");
  exp::RunnerOptions options;
  options.compact_cache = true;
  options.cache_dir = dir.path;
  options.shard = exp::Shard{0, 2};
  EXPECT_THROW(exp::run_experiment(awkward_spec(), options),
               std::invalid_argument);
}

// ------------------------------------------------- live-writer markers

TEST(Compaction, RefusesWhileAForeignWriterIsLive) {
  TempDir dir("live-writer");
  {
    store::JsonlStore writer(dir.path, 0xAAAAULL, "");
    append_one(writer, 0, {1.0});
  }
  // Pid 1 (init) always exists and is never ours: a guaranteed-live
  // foreign writer.
  const std::string marker = dir.path + "/dead.pid1.live";
  std::ofstream(marker) << "1\n";
  try {
    store::compact_store(store::Backend::kJsonl, dir.path, 0xAAAAULL, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("refusing to compact"), std::string::npos)
        << message;
    EXPECT_NE(message.find("pid 1"), std::string::npos) << message;
  }
  // The data survived the refusal; clearing the marker unblocks it.
  std::filesystem::remove(marker);
  const auto stats =
      store::compact_store(store::Backend::kJsonl, dir.path, 0xAAAAULL, 1);
  EXPECT_EQ(stats.records_kept, 1u);
}

TEST(Compaction, ClearsMarkersOfDeadWriters) {
  TempDir dir("dead-writer");
  {
    store::JsonlStore writer(dir.path, 0xAAAAULL, "");
    append_one(writer, 0, {1.0});
  }
  // A genuinely dead pid: fork a child that exits immediately and reap
  // it — a kill -9'd shard's leftover marker.
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  const std::string marker =
      dir.path + "/killed.pid" + std::to_string(child) + ".live";
  std::ofstream(marker) << child << "\n";

  const auto stats =
      store::compact_store(store::Backend::kJsonl, dir.path, 0xAAAAULL, 1);
  EXPECT_EQ(stats.records_kept, 1u);
  EXPECT_FALSE(std::filesystem::exists(marker));
}

TEST(Compaction, OwnProcessMarkersDoNotBlock) {
  TempDir dir("own-writer");
  store::JsonlStore writer(dir.path, 0xAAAAULL, "done");
  append_one(writer, 0, {1.0});
  // Same-process compaction is caller-controlled (the runner compacts
  // before opening its writer); only *other* processes block it.
  const auto stats =
      store::compact_store(store::Backend::kJsonl, dir.path, 0xAAAAULL, 1);
  EXPECT_EQ(stats.records_kept, 1u);
}

// --------------------------------------------------------- async writer

/// Test double: records appended batches, optionally slow or failing.
class FakeStore final : public store::CampaignStore {
 public:
  std::map<std::size_t, std::vector<double>> load(std::size_t) override {
    return {};
  }
  std::map<std::size_t, std::string> load_errors() override { return {}; }

  void append(const std::vector<store::StoreRecord>& batch) override {
    entered.store(true);
    if (append_delay.count() > 0) {
      std::this_thread::sleep_for(append_delay);
    }
    if (fail) {
      throw std::runtime_error("disk full");
    }
    batches.push_back(batch.size());
    for (const auto& record : batch) {
      records.push_back(record.job_index);
    }
  }
  void flush() override { ++flushes; }
  const std::string& describe() const noexcept override { return name; }

  std::string name = "fake";
  std::chrono::milliseconds append_delay{0};
  bool fail = false;
  std::atomic<bool> entered{false};
  std::vector<std::size_t> batches;  ///< per-append batch sizes
  std::vector<std::size_t> records;  ///< job indices in commit order
  int flushes = 0;
};

TEST(AsyncWriter, BackpressureBlocksProducersWithoutDropping) {
  FakeStore fake;
  fake.append_delay = std::chrono::milliseconds(20);
  store::AsyncWriter writer(fake, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    writer.enqueue({i, {static_cast<double>(i)}, ""});
  }
  writer.drain();
  const auto stats = writer.stats();
  EXPECT_EQ(stats.enqueued, 10u);
  EXPECT_EQ(stats.written, 10u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.stalls, 0u);  // the tiny ring had to block producers
  EXPECT_LE(stats.high_water, 2u);
  EXPECT_EQ(stats.depth, 0u);
  // FIFO order survives batching.
  ASSERT_EQ(fake.records.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fake.records[i], i);
  }
  EXPECT_GE(fake.flushes, 1);  // drain() flushed the backend
}

TEST(AsyncWriter, CoalescesQueuedRecordsIntoOneBatch) {
  FakeStore fake;
  fake.append_delay = std::chrono::milliseconds(50);
  store::AsyncWriter writer(fake, 8);
  writer.enqueue({0, {0.0}, ""});
  // Wait until the consumer is inside append() with record 0, then
  // queue five more: they must coalesce into one follow-up batch.
  while (!fake.entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::size_t i = 1; i <= 5; ++i) {
    writer.enqueue({i, {static_cast<double>(i)}, ""});
  }
  writer.drain();
  ASSERT_EQ(fake.batches.size(), 2u);
  EXPECT_EQ(fake.batches[0], 1u);
  EXPECT_EQ(fake.batches[1], 5u);
  EXPECT_EQ(writer.stats().batches, 2u);
}

TEST(AsyncWriter, BackendFailurePropagatesToProducers) {
  FakeStore fake;
  fake.fail = true;
  store::AsyncWriter writer(fake, 4);
  writer.enqueue({0, {1.0}, ""});
  try {
    writer.drain();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("disk full"), std::string::npos);
  }
  // Later enqueues rethrow instead of buffering into a dead store.
  EXPECT_THROW(writer.enqueue({1, {2.0}, ""}), std::runtime_error);
}

TEST(AsyncWriter, DestructorDrainsRemainingRecords) {
  FakeStore fake;
  {
    store::AsyncWriter writer(fake, 16);
    for (std::size_t i = 0; i < 5; ++i) {
      writer.enqueue({i, {static_cast<double>(i)}, ""});
    }
  }
  EXPECT_EQ(fake.records.size(), 5u);
}

// ----------------------------------------------- cross-backend contract

TEST(CrossBackend, ShardedMergesAreByteIdenticalAcrossBackends) {
  SKIP_WITHOUT_SQLITE();
  const auto spec = awkward_spec();
  const std::string fresh_csv = exp::to_csv(exp::run_experiment(spec, 4));

  for (const auto backend :
       {store::Backend::kJsonl, store::Backend::kSqlite}) {
    for (const int shards : {1, 3}) {
      TempDir dir(std::string("xb-") + store::backend_label(backend) + "-" +
                  std::to_string(shards));
      for (int s = 0; s < shards; ++s) {
        exp::RunnerOptions options;
        options.jobs = 2;
        options.shard = exp::Shard{s, shards};
        options.cache_dir = dir.path;
        options.store_backend = backend;
        exp::run_experiment(spec, options);
      }
      exp::RunnerOptions merge;
      merge.merge_only = true;
      merge.cache_dir = dir.path;
      merge.store_backend = backend;
      const auto merged = exp::run_experiment(spec, merge);
      EXPECT_EQ(fresh_csv, exp::to_csv(merged))
          << store::backend_label(backend) << " x" << shards;
    }
  }
}

TEST(CrossBackend, SqliteResumeSkipsStoredJobs) {
  SKIP_WITHOUT_SQLITE();
  TempDir dir("sq-resume");
  auto spec = awkward_spec();
  exp::RunnerOptions first;
  first.shard = exp::Shard{0, 2};
  first.cache_dir = dir.path;
  first.store_backend = store::Backend::kSqlite;
  exp::run_experiment(spec, first);

  std::atomic<std::size_t> executed{0};
  const auto inner = spec.run;
  spec.run = [&executed, inner](const exp::Job& job) {
    executed.fetch_add(1);
    return inner(job);
  };
  exp::RunnerOptions resume;
  resume.jobs = 4;
  resume.cache_dir = dir.path;
  resume.store_backend = store::Backend::kSqlite;
  const auto resumed = exp::run_experiment(spec, resume);
  EXPECT_EQ(executed.load(), spec.job_count() / 2);
  EXPECT_EQ(exp::to_csv(exp::run_experiment(awkward_spec(), 1)),
            exp::to_csv(resumed));
}

}  // namespace
}  // namespace bas
