// Scheduling Guideline 2 (paper §3): "Given a task t to be executed
// before a deadline d it is better to lower the frequency and execute
// the task than to leave an idle slot and execute at a higher
// frequency."
//
// A task of C cycles must finish within a window of length W. Strategy A
// stretches: run at f = C / W the whole window. Strategy B idles first
// for a fraction of the window, then sprints at the frequency that still
// meets the deadline. Energy grows ~quadratically with the sprint
// frequency while the idle slot saves only the (tiny) idle current, so
// stretching must win on charge consumed per job — and therefore on
// battery lifetime when the pattern repeats.

#include <cstdio>
#include <vector>

#include "battery/kibam.hpp"
#include "battery/lifetime.hpp"
#include "dvs/processor.hpp"
#include "dvs/realizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                {{"csv", ""}, {"window", "1.0"}, {"cycles", "5e8"}});
  const double window_s = cli.get_double("window");
  const double cycles = cli.get_double("cycles");

  const auto proc = dvs::Processor::paper_default();
  const bat::KibamBattery battery(bat::KibamParams::paper_aaa_nimh());

  util::print_banner("Guideline 2: stretch-to-deadline vs idle-then-sprint");
  std::printf("job: %.2e cycles every %.1f s on the paper's processor\n\n",
              cycles, window_s);

  util::Table table({"idle fraction", "sprint freq (GHz)", "charge/job (C)",
                     "energy/job (J)", "battery life (min)",
                     "jobs completed"});

  for (double idle_frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double exec_window = window_s * (1.0 - idle_frac);
    const double fref = cycles / exec_window;
    if (fref > proc.fmax_hz() * (1.0 + 1e-9)) {
      break;  // deadline no longer reachable
    }
    const auto plan = dvs::realize(proc, fref);

    bat::LoadProfile period;
    // Higher point first within the execution slot (Guideline 1), then
    // the idle tail.
    const double exec_s = cycles / plan.effective_freq_hz;
    period.add(plan.hi_fraction * exec_s, proc.battery_current_a(plan.hi));
    if (plan.hi_fraction < 1.0) {
      period.add((1.0 - plan.hi_fraction) * exec_s,
                 proc.battery_current_a(plan.lo));
    }
    const double idle_s = window_s - exec_s;
    if (idle_s > 0.0) {
      period.add(idle_s, proc.idle_current_a());
    }

    const double energy_per_job =
        exec_s * (plan.hi_fraction * proc.core_power_w(plan.hi) +
                  (1.0 - plan.hi_fraction) * proc.core_power_w(plan.lo));
    const auto life = bat::lifetime_under_profile(battery, period);
    table.add_row({util::Table::num(idle_frac, 1),
                   util::Table::num(plan.effective_freq_hz / 1e9, 3),
                   util::Table::num(period.total_charge_c(), 3),
                   util::Table::num(energy_per_job, 3),
                   util::Table::num(life.lifetime_min(), 1),
                   util::Table::num(static_cast<long long>(
                       life.lifetime_s / window_s))});
  }
  table.print();
  std::printf(
      "\nShape check: idle fraction 0 (pure stretching) minimizes charge "
      "per job and maximizes lifetime and jobs completed.\n");
  return 0;
}
