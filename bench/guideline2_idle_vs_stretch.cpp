// Scheduling Guideline 2 (paper §3): "Given a task t to be executed
// before a deadline d it is better to lower the frequency and execute
// the task than to leave an idle slot and execute at a higher
// frequency."
//
// A task of C cycles must finish within a window of length W. Strategy A
// stretches: run at f = C / W the whole window. Strategy B idles first
// for a fraction of the window, then sprints at the frequency that still
// meets the deadline. Energy grows ~quadratically with the sprint
// frequency while the idle slot saves only the (tiny) idle current, so
// stretching must win on charge consumed per job — and therefore on
// battery lifetime when the pattern repeats.
//
// The platform (processor + battery cell) comes from the scenario
// registry — by default the paper's `paper-table2` pairing; try
// `--scenario sensor-node` or `--scenario.battery=diffusion` to price
// the same trade on another world. The (idle fraction) sweep runs on
// the experiment engine: infeasible fractions (sprint above fmax) are
// filtered out of the axis up front, and each job prices one fraction
// on its own battery instance — so the bench speaks the shared campaign
// interface (--jobs/--csv/--shard).

#include <cstdio>
#include <string>
#include <vector>

#include "battery/lifetime.hpp"
#include "dvs/realizer.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"window", "1.0"}, {"cycles", "5e8"}}, "paper-table2")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const double window_s = cli.get_double("window");
  const double cycles = cli.get_double("cycles");

  const auto scn = scenario::from_cli(cli);
  const auto proc = scn.make_processor();

  util::print_banner("Guideline 2: stretch-to-deadline vs idle-then-sprint");
  std::printf(
      "job: %.2e cycles every %.1f s on the '%s' processor with a %s cell\n\n",
      cycles, window_s, scn.processor.c_str(), scn.battery.c_str());

  // Only the idle fractions whose sprint frequency is realizable make it
  // onto the axis — the hand-rolled loop used to `break` here.
  std::vector<double> idle_fracs;
  std::vector<std::string> idle_labels;
  for (double idle_frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double fref = cycles / (window_s * (1.0 - idle_frac));
    if (fref > proc.fmax_hz() * (1.0 + 1e-9)) {
      break;  // deadline no longer reachable
    }
    idle_fracs.push_back(idle_frac);
    idle_labels.push_back(util::Table::num(idle_frac, 1));
  }
  if (idle_fracs.empty()) {
    std::printf(
        "no feasible idle fraction: %.2e cycles in %.1f s needs %.3f GHz, "
        "above the processor's maximum\n",
        cycles, window_s, cycles / window_s / 1e9);
    return 0;
  }

  exp::ExperimentSpec spec;
  spec.title = "guideline2_idle_vs_stretch";
  spec.config = cli.config_summary() + " | " + scn.fingerprint();
  spec.grid.add("idle_frac", idle_labels);
  spec.metrics = {"sprint_freq_ghz", "charge_per_job_c", "energy_per_job_j",
                  "lifetime_min", "jobs_completed"};
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    const double idle_frac = idle_fracs[job.at(0)];
    const double exec_window = window_s * (1.0 - idle_frac);
    const double fref = cycles / exec_window;
    const auto plan = dvs::realize(proc, fref);

    bat::LoadProfile period;
    // Higher point first within the execution slot (Guideline 1), then
    // the idle tail.
    const double exec_s = cycles / plan.effective_freq_hz;
    period.add(plan.hi_fraction * exec_s, proc.battery_current_a(plan.hi));
    if (plan.hi_fraction < 1.0) {
      period.add((1.0 - plan.hi_fraction) * exec_s,
                 proc.battery_current_a(plan.lo));
    }
    const double idle_s = window_s - exec_s;
    if (idle_s > 0.0) {
      period.add(idle_s, proc.idle_current_a());
    }

    const double energy_per_job =
        exec_s * (plan.hi_fraction * proc.core_power_w(plan.hi) +
                  (1.0 - plan.hi_fraction) * proc.core_power_w(plan.lo));
    const auto battery = scn.make_battery();
    const auto life = bat::lifetime_under_profile(*battery, period);
    return {plan.effective_freq_hz / 1e9, period.total_charge_c(),
            energy_per_job, life.lifetime_min(),
            static_cast<double>(
                static_cast<long long>(life.lifetime_s / window_s))};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  util::Table table({"idle fraction", "sprint freq (GHz)", "charge/job (C)",
                     "energy/job (J)", "battery life (min)",
                     "jobs completed"});
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    table.add_row({result.grid().labels(c)[0],
                   util::Table::num(result.mean(c, 0), 3),
                   util::Table::num(result.mean(c, 1), 3),
                   util::Table::num(result.mean(c, 2), 3),
                   util::Table::num(result.mean(c, 3), 1),
                   util::Table::num(static_cast<long long>(
                       result.mean(c, 4)))});
  }
  table.print();
  std::printf(
      "\nShape check: idle fraction 0 (pure stretching) minimizes charge "
      "per job and maximizes lifetime and jobs completed.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
