// Reproduces Table 1: energy consumption of Random / LTF / pUBS
// schedules for single task graphs of 5..15 nodes, normalized to the
// exhaustive-optimal schedule.
//
// Paper values (normalized energy, averaged over random DAGs):
//   tasks:   5     6     7     8     9     10    11    12    13    14    15
//   Random   1.32  1.41  1.33  1.56  1.52  1.35  1.66  1.58  1.57  1.44  1.55
//   LTF      1.25  1.29  1.27  1.44  1.26  1.21  1.51  1.39  1.51  1.37  1.51
//   pUBS     1.05  1.14  1.17  1.25  1.21  1.09  1.28  1.31  1.22  1.29  1.32
//
// The shape to reproduce: pUBS close to optimal, LTF clearly worse,
// Random worst; the gap grows loosely with graph size. We additionally
// report pUBS with a clairvoyant estimate (Gruian's <1% claim applies to
// independent tasks with perfect estimates).
//
// The (size x DAG) sweep runs on the experiment engine (--jobs N); the
// exhaustive-optimal normalizer makes this the slowest table, so the
// parallel speedup matters most here.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sched/optimal.hpp"
#include "tgff/generator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::vector<double> draw_actuals(const bas::tg::TaskGraph& g,
                                 bas::util::Rng& rng) {
  std::vector<double> ac(g.node_count());
  for (bas::tg::NodeId id = 0; id < g.node_count(); ++id) {
    ac[id] = g.node(id).wcet_cycles * rng.uniform(0.2, 1.0);
  }
  return ac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults({{"dags", "40"},
                                                {"seed", "1"},
                                                {"min-tasks", "5"},
                                                {"max-tasks", "15"},
                                                {"full", "false"}}));
  const int dags = cli.get_flag("full") ? 200 : static_cast<int>(cli.get_int("dags"));
  const int min_tasks = static_cast<int>(cli.get_int("min-tasks"));
  const int max_tasks = static_cast<int>(cli.get_int("max-tasks"));

  // Energy comparisons run on the continuous-frequency idealization so
  // the optimal search has a smooth objective (see DESIGN.md).
  const auto proc = scenario::make_processor("continuous");

  util::print_banner(
      "Table 1: energy normalized w.r.t. optimal schedule (single DAGs)");
  std::printf("config: %s\n\n", cli.summary().c_str());

  std::vector<std::string> sizes;
  for (int n = min_tasks; n <= max_tasks; ++n) {
    sizes.push_back(std::to_string(n));
  }

  exp::ExperimentSpec spec;
  spec.title = "table1_single_dag";
  spec.config = cli.config_summary();
  spec.grid.add("tasks", sizes);
  spec.metrics = {"random", "ltf", "stf", "pubs", "pubs_oracle", "exact"};
  spec.replicates = dags;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    const int n = min_tasks + static_cast<int>(job.at(0));
    util::Rng rng(job.seed);
    tgff::GeneratorParams gp;
    gp.node_count = n;
    gp.method = tgff::Method::kFanInFanOut;
    auto graph = tgff::generate(gp, rng);
    // Deadline leaves 25% static slack so even all-worst-case fits.
    graph.set_period(graph.total_wcet_cycles() / (0.8 * proc.fmax_hz()));
    const auto actuals = draw_actuals(graph, rng);

    const auto opt = sched::optimal_schedule(graph, actuals, proc);

    auto run = [&](std::unique_ptr<sched::PriorityPolicy> prio,
                   std::unique_ptr<sched::Estimator> est) {
      return sched::greedy_schedule(graph, actuals, proc, *prio, *est)
                 .energy_j /
             opt.energy_j;
    };
    // Average the random baseline over several draws per DAG.
    util::Accumulator rnd;
    for (int r = 0; r < 5; ++r) {
      rnd.add(run(sched::make_random_priority(
                      util::Rng::hash_combine(job.seed, 999u + r)),
                  sched::make_history_estimator()));
    }
    // The paper's pUBS assumes per-task-informative estimates; we use
    // a noisy oracle (actual +/- 25%) as the "accurate estimate"
    // regime, with flat-mean pUBS degenerating to LTF as the paper
    // warns ("if the estimate is bad ... more like a random
    // schedule").
    return {rnd.mean(),
            run(sched::make_ltf_priority(), sched::make_history_estimator()),
            run(sched::make_stf_priority(), sched::make_history_estimator()),
            run(sched::make_pubs_priority(),
                sched::make_noisy_oracle_estimator(
                    0.25, util::Rng::hash_combine(job.seed, 77))),
            run(sched::make_pubs_priority(), sched::make_oracle_estimator()),
            opt.exact ? 1.0 : 0.0};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  util::Table table({"# of tasks", "Random", "LTF", "STF", "pUBS",
                     "pUBS(oracle)", "exact%"});
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    table.add_row({result.grid().labels(c)[0],
                   util::Table::num(result.mean(c, 0), 2),
                   util::Table::num(result.mean(c, 1), 2),
                   util::Table::num(result.mean(c, 2), 2),
                   util::Table::num(result.mean(c, 3), 2),
                   util::Table::num(result.mean(c, 4), 2),
                   util::Table::num(100.0 * result.mean(c, 5), 0)});
  }
  table.print();
  std::printf(
      "\nShape check vs paper: pUBS < LTF < Random at every size; pUBS with "
      "oracle estimates approaches 1.00.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
