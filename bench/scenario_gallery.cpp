// Scenario gallery: every scheduling scheme on every scenario preset —
// the first multi-scenario result the repo produces in one command.
//
// The paper evaluates one workload shape (random TGFF sets at 70%
// utilization on one processor/battery pairing). The scenario registry
// generalizes that into a catalogue of worlds — media pipelines, sensor
// duty cycles, bursty arrivals, overload, ... — and this driver sweeps
// the full (scenario x scheme) cross product on the campaign runner, so
// the sweep shards across threads/processes and resumes from a cache
// like any other bench (--jobs/--shard/--cache/--merge/--progress).
//
//   ./scenario_gallery --list-scenarios     # the catalogue
//   ./scenario_gallery --sets 5 --jobs auto # the table
//   ./scenario_gallery --scenario.battery=ideal   # ablate the gallery
//
// Output: one row per scenario with the mean battery lifetime under
// each scheme, the BAS-2-over-laEDF gain, and whether the paper's
// ordering EDF <= ccEDF <= laEDF <= BAS-1 <= BAS-2 held. Any
// --scenario.FIELD override is applied to *every* preset, which turns
// the gallery into a one-flag ablation across the whole catalogue.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  // The gallery always sweeps the whole catalogue, so a --scenario
  // selector would be a silent no-op — drop it from the option set
  // (passing one errors loudly); --list-scenarios and the
  // --scenario.FIELD overrides keep working.
  auto defaults = util::Cli::with_bench_defaults(
      scenario::with_scenario_defaults(
          {{"sets", "3"}, {"seed", "2026"}, {"full", "false"}}, ""));
  defaults.erase("scenario");
  util::Cli cli(argc, argv, std::move(defaults));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets =
      cli.get_flag("full") ? 25 : static_cast<int>(cli.get_int("sets"));

  // Materialize every preset with the CLI overrides applied, plus its
  // platform, up front; jobs index into these read-only vectors.
  std::vector<scenario::ScenarioSpec> worlds;
  std::vector<dvs::Processor> procs;
  std::string catalogue_fingerprint;
  for (const auto& name : scenario::scenario_names()) {
    scenario::ScenarioSpec spec = scenario::scenario(name);
    scenario::apply_cli_overrides(spec, cli);
    catalogue_fingerprint += (catalogue_fingerprint.empty() ? "" : "; ") +
                             spec.fingerprint();
    procs.push_back(spec.make_processor());
    worlds.push_back(std::move(spec));
  }

  util::print_banner(
      "Scenario gallery: battery lifetime (min) per scheme per scenario");
  std::printf("config: %s\n%d set(s) per cell; see --list-scenarios for the "
              "catalogue\n\n",
              cli.summary().c_str(), sets);

  exp::ExperimentSpec spec;
  spec.title = "scenario_gallery";
  spec.config = cli.config_summary() + " | " + catalogue_fingerprint;
  spec.grid =
      exp::Grid{std::vector<exp::Axis>{exp::scenario_axis(), exp::scheme_axis()}};
  spec.metrics = {"lifetime_min", "delivered_mah", "energy_j", "misses"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    const auto& world = worlds[job.at(0)];
    // The workload keys off (replicate, scenario) — schemes within a
    // scenario see the same random sets (CRN), scenarios draw their own.
    util::Rng rng(util::Rng::hash_combine(job.replicate_seed, job.at(0)));
    const auto set = world.make_workload(rng);
    const auto config =
        world.sim_config(util::Rng::hash_combine(job.replicate_seed, 1000u));
    const auto battery = world.make_battery();
    const auto r = sim::simulate_scheme(set, procs[job.at(0)],
                                        exp::scheme_kind_at(job.at(1)), config,
                                        battery.get());
    return {r.battery_lifetime_s / 60.0, r.battery_delivered_mah, r.energy_j,
            static_cast<double>(r.deadline_misses)};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));
  const std::size_t kLife = result.metric_index("lifetime_min");
  const std::size_t kMisses = result.metric_index("misses");

  std::vector<std::string> headers{"scenario"};
  for (const auto& scheme : exp::scheme_labels()) {
    headers.push_back(scheme);
  }
  headers.push_back("BAS-2/laEDF");
  headers.push_back("ordered?");
  headers.push_back("misses");
  util::Table table(headers);

  // Resolve the two schemes of the gain column by label so a reordered
  // scheme axis fails loudly instead of silently comparing wrong cells.
  const auto scheme_index = [](const std::string& label) {
    const auto& labels = exp::scheme_labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == label) {
        return i;
      }
    }
    throw std::logic_error("scheme label '" + label + "' not on the axis");
  };
  const std::size_t kLaEdf = scheme_index("laEDF");
  const std::size_t kBas2 = scheme_index("BAS-2");
  const std::size_t n_schemes = exp::scheme_labels().size();
  int ordered_scenarios = 0;
  for (std::size_t s = 0; s < worlds.size(); ++s) {
    std::vector<std::string> row{worlds[s].name};
    bool ordered = true;
    double misses = 0.0;
    for (std::size_t k = 0; k < n_schemes; ++k) {
      const double life = result.mean({s, k}, kLife);
      row.push_back(util::Table::num(life, 0));
      // A 0.1% slack keeps ties (saturated scenarios where ordering
      // cannot matter) from reading as violations.
      if (k > 0 && life < 0.999 * result.mean({s, k - 1}, kLife)) {
        ordered = false;
      }
      misses += result.sum({s, k}, kMisses);
    }
    const double laedf = result.mean({s, kLaEdf}, kLife);
    const double bas2 = result.mean({s, kBas2}, kLife);
    const double gain_pct = 100.0 * (bas2 / laedf - 1.0);
    row.push_back((gain_pct >= 0.0 ? "+" : "") +
                  util::Table::num(gain_pct, 1) + "%");
    row.push_back(ordered ? "yes" : "no");
    row.push_back(util::Table::num(static_cast<long long>(misses)));
    ordered_scenarios += ordered ? 1 : 0;
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\n%d/%zu scenarios keep the paper's full ordering "
      "EDF <= ccEDF <= laEDF <= BAS-1 <= BAS-2.\n"
      "Shape check: the BAS-2-over-laEDF gain is positive wherever the "
      "cell has nonlinear dynamics and the load leaves room to reorder "
      "(overload compresses it, idle-heavy shrinks every gap).\n",
      ordered_scenarios, worlds.size());

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
