// Reproduces the paper's load-vs-delivered-capacity battery curve (§5,
// "We can evaluate these values by plotting a load vs delivered capacity
// curve for the battery and extrapolating the ends").
//
// For each battery model, constant loads from tens of mA to several
// amperes are applied until cutoff. The low-current end extrapolates to
// the maximum capacity (2000 mAh for the paper's AAA NiMH cell); the
// high-current end approaches the available-well charge. The ideal
// battery is flat — it has no rate-capacity effect — which is exactly
// why battery-aware scheduling does not matter for it.
//
// The (model x load) grid runs on the experiment engine; each job
// discharges one fresh cell at one constant load.

#include <cstdio>
#include <string>
#include <vector>

#include "battery/lifetime.hpp"
#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults({{"probe", "0.02"}}));

  const std::vector<double> loads{0.02, 0.05, 0.1, 0.2, 0.4, 0.7,
                                  1.0,  1.4,  1.8, 2.5, 3.5, 5.0};
  std::vector<std::string> load_labels;
  for (const double load : loads) {
    load_labels.push_back(util::Table::num(load, 2));
  }

  util::print_banner(
      "Rate-capacity curves: delivered capacity (mAh) vs constant load (A)");

  exp::ExperimentSpec spec;
  spec.title = "rate_capacity_curve";
  spec.config = cli.config_summary();
  spec.grid = exp::Grid{}.add("battery", exp::battery_labels())
                  .add("load_a", load_labels);
  spec.metrics = {"delivered_mah", "lifetime_min"};
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    const auto model = exp::make_battery(exp::battery_labels()[job.at(0)]);
    const auto point =
        bat::rate_capacity_curve(*model, {loads[job.at(1)]}).front();
    return {point.delivered_mah, point.lifetime_min};
  };
  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  // Wide layout matching the paper's figure: one row per load, two
  // columns (capacity, lifetime) per model.
  std::vector<std::string> headers{"load_A"};
  for (const auto& model : exp::battery_labels()) {
    headers.push_back(model + "_mAh");
    headers.push_back(model + "_min");
  }
  util::Table table(headers);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{load_labels[i]};
    for (std::size_t m = 0; m < exp::battery_labels().size(); ++m) {
      row.push_back(util::Table::num(result.mean({m, i}, 0), 1));
      row.push_back(util::Table::num(result.mean({m, i}, 1), 1));
    }
    table.add_row(row);
  }
  table.print();

  const double probe = cli.get_double("probe");
  exp::ExperimentSpec extrapolate;
  extrapolate.title = "rate_capacity_extrapolation";
  extrapolate.config = cli.config_summary();
  extrapolate.grid.add("battery", exp::battery_labels());
  extrapolate.metrics = {"max_capacity_mah"};
  extrapolate.run = [&](const exp::Job& job) -> std::vector<double> {
    const auto model = exp::make_battery(exp::battery_labels()[job.at(0)]);
    return {bat::max_capacity_mah(*model, probe)};
  };
  const auto caps = exp::run_experiment(extrapolate, exp::options_from_cli(cli));

  std::printf("\nExtrapolated maximum capacity (probe %.0f mA):\n",
              probe * 1000);
  for (std::size_t m = 0; m < caps.cell_count(); ++m) {
    std::printf("  %-11s %7.1f mAh\n", caps.grid().labels(m)[0].c_str(),
                caps.mean(m, 0));
  }
  std::printf(
      "\nPaper anchors: 2000 mAh maximum capacity, ~1600 mAh nominal at "
      "full load (~1.8 A).\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
