// Reproduces the paper's load-vs-delivered-capacity battery curve (§5,
// "We can evaluate these values by plotting a load vs delivered capacity
// curve for the battery and extrapolating the ends").
//
// For each battery model, constant loads from tens of mA to several
// amperes are applied until cutoff. The low-current end extrapolates to
// the maximum capacity (2000 mAh for the paper's AAA NiMH cell); the
// high-current end approaches the available-well charge. The ideal
// battery is flat — it has no rate-capacity effect — which is exactly
// why battery-aware scheduling does not matter for it.

#include <cstdio>
#include <memory>
#include <vector>

#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/lifetime.hpp"
#include "battery/peukert.hpp"
#include "battery/stochastic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                {{"csv", ""}, {"probe", "0.02"}});

  const std::vector<double> loads{0.02, 0.05, 0.1, 0.2, 0.4, 0.7,
                                  1.0,  1.4,  1.8, 2.5, 3.5, 5.0};

  std::vector<std::unique_ptr<bat::Battery>> models;
  models.push_back(
      std::make_unique<bat::IdealBattery>(bat::to_coulombs(2000.0)));
  models.push_back(std::make_unique<bat::PeukertBattery>(bat::PeukertParams{
      bat::to_coulombs(2000.0), 1.2, 0.2}));
  models.push_back(
      std::make_unique<bat::KibamBattery>(bat::KibamParams::paper_aaa_nimh()));
  models.push_back(std::make_unique<bat::DiffusionBattery>(
      bat::DiffusionParams::paper_aaa_nimh()));
  models.push_back(
      std::make_unique<bat::StochasticBattery>(bat::StochasticParams{}));

  util::print_banner(
      "Rate-capacity curves: delivered capacity (mAh) vs constant load (A)");

  std::vector<std::string> headers{"load_A"};
  for (const auto& m : models) {
    headers.push_back(m->name() + "_mAh");
    headers.push_back(m->name() + "_min");
  }
  util::Table table(headers);

  std::vector<std::vector<bat::RateCapacityPoint>> curves;
  for (const auto& m : models) {
    curves.push_back(bat::rate_capacity_curve(*m, loads));
  }
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{util::Table::num(loads[i], 2)};
    for (const auto& curve : curves) {
      row.push_back(util::Table::num(curve[i].delivered_mah, 1));
      row.push_back(util::Table::num(curve[i].lifetime_min, 1));
    }
    table.add_row(row);
  }
  table.print();

  const double probe = cli.get_double("probe");
  std::printf("\nExtrapolated maximum capacity (probe %.0f mA):\n",
              probe * 1000);
  for (const auto& m : models) {
    std::printf("  %-11s %7.1f mAh\n", m->name().c_str(),
                bat::max_capacity_mah(*m, probe));
  }
  std::printf(
      "\nPaper anchors: 2000 mAh maximum capacity, ~1600 mAh nominal at "
      "full load (~1.8 A).\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
