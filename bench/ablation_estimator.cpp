// Ablation: how much of BAS's gain comes from estimate quality?
//
// The paper notes (§4.2) that pUBS degrades to a random-like schedule
// with bad estimates and is near-optimal with accurate ones. This bench
// runs BAS-2 with the full estimator ladder — worst-case (no
// information), static mean, history EMA (the paper's suggestion), and
// oracle (clairvoyant) — under both actual-computation models, reporting
// battery lifetime and energy.

#include <cstdio>
#include <functional>
#include <vector>

#include "battery/kibam.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, {{"sets", "8"}, {"seed", "17"}, {"csv", ""}});
  const int sets = static_cast<int>(cli.get_int("sets"));
  const auto seed = cli.get_u64("seed");

  const auto proc = dvs::Processor::paper_default();
  const bat::KibamBattery battery(bat::KibamParams::paper_aaa_nimh());

  struct Ladder {
    const char* label;
    std::function<std::unique_ptr<sched::Estimator>()> make;
  };
  const std::vector<Ladder> ladder{
      {"worst-case", [] { return sched::make_worst_case_estimator(); }},
      {"mean-0.6wc", [] { return sched::make_mean_fraction_estimator(); }},
      {"history-EMA", [] { return sched::make_history_estimator(); }},
      {"oracle", [] { return sched::make_oracle_estimator(); }},
  };

  util::print_banner("Ablation: estimator quality under BAS-2");
  std::printf("config: %s\n\n", cli.summary().c_str());

  for (const auto model :
       {sim::AcModel::kPerNodeMean, sim::AcModel::kIid}) {
    std::printf("actual-computation model: %s\n",
                model == sim::AcModel::kIid ? "iid U(0.2,1.0) per instance"
                                            : "persistent per-node means");
    util::Table table(
        {"estimator", "lifetime (min)", "delivered (mAh)", "energy (J)"});
    for (const auto& rung : ladder) {
      util::Accumulator life;
      util::Accumulator delivered;
      util::Accumulator energy;
      for (int s = 0; s < sets; ++s) {
        util::Rng rng(util::Rng::hash_combine(
            seed, static_cast<std::uint64_t>(s)));
        tgff::WorkloadParams wp;
        wp.graph_count = 3;
        wp.target_utilization = 0.7 / 0.6;
        wp.period_lo_s = 0.5;
        wp.period_hi_s = 5.0;
        const auto set = tgff::make_workload(wp, rng);

        core::Scheme scheme = core::make_custom_scheme(
            rung.label, dvs::make_la_edf(proc.fmax_hz()),
            sched::make_pubs_priority(), rung.make(),
            core::ReadyScope::kAllReleased);
        sim::SimConfig config;
        config.horizon_s = 24.0 * 3600.0;
        config.drain = false;
        config.record_profile = false;
        config.ac_model = model;
        config.seed = util::Rng::hash_combine(seed, 100u + static_cast<std::uint64_t>(s));
        const auto battery_clone = battery.fresh_clone();
        sim::Simulator sim(set, proc, scheme, config);
        const auto r = sim.run(battery_clone.get());
        life.add(r.battery_lifetime_s / 60.0);
        delivered.add(r.battery_delivered_mah);
        energy.add(r.energy_j);
      }
      table.add_row({rung.label, util::Table::num(life.mean(), 1),
                     util::Table::num(delivered.mean(), 0),
                     util::Table::num(energy.mean(), 0)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: lifetime rises monotonically up the ladder when the\n"
      "workload has learnable structure (per-node means); under iid\n"
      "actuals history can do no better than the static mean.\n");
  return 0;
}
