// Ablation: how much of BAS's gain comes from estimate quality?
//
// The paper notes (§4.2) that pUBS degrades to a random-like schedule
// with bad estimates and is near-optimal with accurate ones. This bench
// runs BAS-2 with the full estimator ladder — worst-case (no
// information), static mean, history EMA (the paper's suggestion), and
// oracle (clairvoyant) — under both actual-computation models, reporting
// battery lifetime and energy.
//
// The world comes from the scenario registry (`paper-table2` by
// default; --scenario / --scenario.FIELD reshape it); the AC-model axis
// overrides the scenario's own setting per cell. The engine shards the
// (AC model x estimator x set) grid; workloads key off the replicate
// seed so every rung sees the same sets (CRN).

#include <cstdio>
#include <functional>
#include <vector>

#include "core/scheme.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"sets", "8"}, {"seed", "17"}}, "paper-table2")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets = static_cast<int>(cli.get_int("sets"));

  // The ac_model axis owns the actual-computation regime; refuse the
  // override instead of silently ignoring it.
  if (!cli.get("scenario.ac-model").empty()) {
    std::fprintf(stderr,
                 "this ablation sweeps both AC models as its axis; "
                 "--scenario.ac-model has no effect here\n");
    return 2;
  }
  const auto scn = scenario::from_cli(cli);
  const auto proc = scn.make_processor();

  struct Ladder {
    const char* label;
    std::function<std::unique_ptr<sched::Estimator>()> make;
  };
  const std::vector<Ladder> ladder{
      {"worst-case", [] { return sched::make_worst_case_estimator(); }},
      {"mean-0.6wc", [] { return sched::make_mean_fraction_estimator(); }},
      {"history-EMA", [] { return sched::make_history_estimator(); }},
      {"oracle", [] { return sched::make_oracle_estimator(); }},
  };
  const std::vector<sim::AcModel> ac_models{sim::AcModel::kPerNodeMean,
                                            sim::AcModel::kIid};

  util::print_banner("Ablation: estimator quality under BAS-2");
  std::printf("config: %s\n\n", cli.summary().c_str());

  std::vector<std::string> rung_labels;
  for (const auto& rung : ladder) {
    rung_labels.push_back(rung.label);
  }

  exp::ExperimentSpec spec;
  spec.title = "ablation_estimator";
  spec.config = cli.config_summary() + " | " + scn.fingerprint();
  spec.grid.add("ac_model", {"per-node-mean", "iid"});
  spec.grid.add("estimator", rung_labels);
  spec.metrics = {"lifetime_min", "delivered_mah", "energy_j"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.replicate_seed);
    const auto set = scn.make_workload(rng);

    const auto& rung = ladder[job.at(1)];
    core::Scheme scheme = core::make_custom_scheme(
        rung.label, dvs::make_la_edf(proc.fmax_hz()),
        sched::make_pubs_priority(), rung.make(),
        core::ReadyScope::kAllReleased);

    auto config =
        scn.sim_config(util::Rng::hash_combine(job.replicate_seed, 100u));
    config.ac_model = ac_models[job.at(0)];

    const auto battery = scn.make_battery();
    sim::Simulator sim(set, proc, scheme, config);
    const auto r = sim.run(battery.get());
    return {r.battery_lifetime_s / 60.0, r.battery_delivered_mah, r.energy_j};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  for (std::size_t a = 0; a < ac_models.size(); ++a) {
    std::printf("actual-computation model: %s\n",
                ac_models[a] == sim::AcModel::kIid
                    ? "iid U(0.2,1.0) per instance"
                    : "persistent per-node means");
    util::Table table(
        {"estimator", "lifetime (min)", "delivered (mAh)", "energy (J)"});
    for (std::size_t r = 0; r < ladder.size(); ++r) {
      table.add_row({ladder[r].label,
                     util::Table::num(result.mean({a, r}, 0), 1),
                     util::Table::num(result.mean({a, r}, 1), 0),
                     util::Table::num(result.mean({a, r}, 2), 0)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: lifetime rises monotonically up the ladder when the\n"
      "workload has learnable structure (per-node means); under iid\n"
      "actuals history can do no better than the static mean.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
