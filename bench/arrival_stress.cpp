// Arrival stress: scheme x arrival model x burst intensity — how the
// scheduling schemes hold up when the release clock stops being the
// paper's rigid k * period grid.
//
// The paper (and every preset until now) evaluates purely periodic
// releases. This driver takes one scenario world (default:
// `ippp-diurnal`) and re-runs it under every arrival model in the
// registry at three burst intensities, reporting battery lifetime and
// deadline misses per scheme plus whether the paper's ordering
// EDF <= ccEDF <= laEDF <= BAS-1 <= BAS-2 survives the traffic shape.
//
// The burst-intensity axis turns each model's burstiness knob:
//
//   ippp             burst_factor = intensity (envelope period/duty
//                    from the preset, or 300 s / 0.2 if it has none)
//   periodic-jitter  jitter_frac = min(0.95, 0.25 * intensity)
//   sporadic         gap_frac = 0.5 * intensity (heavier-tailed gaps)
//   periodic, poisson, trace-replay
//                    unaffected — control columns; their three burst
//                    rows replicate the same cell (trace-replay falls
//                    back to the demo trace when the scenario has none)
//
// Workloads key off the replicate seed only, so every (scheme, arrival,
// burst) cell sees the same random task-graph sets (CRN), and the
// sweep runs on the campaign runner: --jobs/--shard/--cache/--merge/
// --progress, byte-identical for any thread count or shard split.
//
//   ./arrival_stress --sets 3 --jobs auto
//   ./arrival_stress --scenario poisson-mix --sets 5
//   ./arrival_stress --shard 0/2 --cache dir   # cluster fan-out

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "arrival/arrival.hpp"
#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// The burst-intensity axis applied to one arrival spec (see the header
/// comment for the per-model mapping).
bas::arrival::Spec with_intensity(bas::arrival::Spec spec,
                                  const std::string& model,
                                  double intensity) {
  spec.model = model;
  auto& p = spec.params;
  if (model == "ippp") {
    if (p.burst_period_s <= 0.0) {
      p.burst_period_s = 300.0;
      p.burst_duty = 0.2;
    }
    p.burst_factor = intensity;
  } else if (model == "periodic-jitter") {
    p.jitter_frac = std::min(0.95, 0.25 * intensity);
  } else if (model == "sporadic") {
    p.gap_frac = 0.5 * intensity;
  } else if (model == "trace-replay" && p.trace.empty()) {
    // Scenarios without a trace of their own replay the demo burst
    // pattern of the `trace-replay` preset.
    p.trace = "0;0.15;0.4;3.0;3.2;8.0";
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"sets", "3"}, {"seed", "2026"}, {"full", "false"}},
                    "ippp-diurnal")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets =
      cli.get_flag("full") ? 25 : static_cast<int>(cli.get_int("sets"));
  const auto scn = scenario::from_cli(cli);
  const auto proc = scn.make_processor();

  const std::vector<double> intensities{1.0, 2.0, 4.0};
  const std::vector<std::string> intensity_labels{"x1", "x2", "x4"};

  util::print_banner(
      "Arrival stress: lifetime (min) by scheme x arrival model x burst");
  std::printf("config: %s\nscenario: %s\n%d set(s) per cell\n\n",
              cli.summary().c_str(), scn.fingerprint().c_str(), sets);

  exp::ExperimentSpec spec;
  spec.title = "arrival_stress";
  spec.config = cli.config_summary() + " | " + scn.fingerprint();
  spec.grid = exp::Grid{std::vector<exp::Axis>{
      exp::arrival_axis(), exp::Axis{"burst", intensity_labels},
      exp::scheme_axis()}};
  spec.metrics = {"lifetime_min", "delivered_mah", "misses", "released"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    // CRN: workload and sim seed depend only on the replicate, so every
    // cell of one replicate faces the same task-graph sets and (where
    // the models coincide) the same arrival randomness.
    util::Rng rng(job.replicate_seed);
    const auto set = scn.make_workload(rng);
    auto config =
        scn.sim_config(util::Rng::hash_combine(job.replicate_seed, 1000u));
    config.arrival =
        with_intensity(scn.sim.arrival, arrival::labels()[job.at(0)],
                       intensities[job.at(1)]);
    const auto battery = scn.make_battery();
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(2)), config, battery.get());
    return {r.battery_lifetime_s / 60.0, r.battery_delivered_mah,
            static_cast<double>(r.deadline_misses),
            static_cast<double>(r.instances_released)};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));
  const std::size_t kLife = result.metric_index("lifetime_min");
  const std::size_t kMisses = result.metric_index("misses");
  const std::size_t kReleased = result.metric_index("released");

  const auto scheme_index = [](const std::string& label) {
    const auto& labels = exp::scheme_labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == label) {
        return i;
      }
    }
    throw std::logic_error("scheme label '" + label + "' not on the axis");
  };
  const std::size_t kLaEdf = scheme_index("laEDF");
  const std::size_t kBas2 = scheme_index("BAS-2");
  const std::size_t n_schemes = exp::scheme_labels().size();

  std::vector<std::string> headers{"arrival", "burst"};
  for (const auto& scheme : exp::scheme_labels()) {
    headers.push_back(scheme);
  }
  headers.push_back("BAS-2/laEDF");
  headers.push_back("ordered?");
  headers.push_back("misses");
  headers.push_back("released");
  util::Table table(headers);

  int ordered_cells = 0;
  int total_cells = 0;
  for (std::size_t a = 0; a < arrival::labels().size(); ++a) {
    for (std::size_t b = 0; b < intensities.size(); ++b) {
      std::vector<std::string> row{arrival::labels()[a], intensity_labels[b]};
      bool ordered = true;
      double misses = 0.0;
      double released = 0.0;
      for (std::size_t k = 0; k < n_schemes; ++k) {
        const double life = result.mean({a, b, k}, kLife);
        row.push_back(util::Table::num(life, 0));
        // 0.1% slack keeps saturated ties from reading as violations.
        if (k > 0 && life < 0.999 * result.mean({a, b, k - 1}, kLife)) {
          ordered = false;
        }
        misses += result.sum({a, b, k}, kMisses);
        released += result.sum({a, b, k}, kReleased);
      }
      const double laedf = result.mean({a, b, kLaEdf}, kLife);
      const double bas2 = result.mean({a, b, kBas2}, kLife);
      const double gain_pct = 100.0 * (bas2 / laedf - 1.0);
      row.push_back((gain_pct >= 0.0 ? "+" : "") +
                    util::Table::num(gain_pct, 1) + "%");
      row.push_back(ordered ? "yes" : "no");
      row.push_back(util::Table::num(static_cast<long long>(misses)));
      row.push_back(util::Table::num(static_cast<long long>(released)));
      ordered_cells += ordered ? 1 : 0;
      ++total_cells;
      table.add_row(row);
    }
  }
  table.print();
  std::printf(
      "\n%d/%d (arrival, burst) cells keep the paper's lifetime ordering "
      "EDF <= ccEDF <= laEDF <= BAS-1 <= BAS-2.\n"
      "Shape check: periodic rows match the scenario's baseline exactly; "
      "misses climb with burst intensity under ippp/jitter while the "
      "battery-aware gap persists wherever slack survives the bursts.\n",
      ordered_cells, total_cells);

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
