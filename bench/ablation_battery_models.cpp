// Ablation: does the Table-2 conclusion depend on the battery model?
//
// The paper evaluates on the stochastic model of [13]; our substitution
// note (DESIGN.md §5) claims scheme *rankings* are model-robust. This
// bench reruns the Table-2 comparison against every battery model in
// the library. The ideal battery is the control: without rate-capacity
// and recovery effects, lifetime differences reduce to pure energy
// differences.
//
// The workload world comes from the scenario registry (`paper-table2`
// by default; --scenario / --scenario.FIELD reshape it) — the battery
// axis replaces the scenario's own cell. The engine shards the
// (battery model x scheme x set) grid; workloads key off the replicate
// seed so every cell sees the same sets (CRN).

#include <cstdio>
#include <vector>

#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"sets", "6"}, {"seed", "29"}}, "paper-table2")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets = static_cast<int>(cli.get_int("sets"));

  // The battery axis owns the cell choice; refuse the override instead
  // of silently ignoring it.
  if (!cli.get("scenario.battery").empty()) {
    std::fprintf(stderr,
                 "this ablation sweeps every battery model as its axis; "
                 "--scenario.battery has no effect here\n");
    return 2;
  }
  const auto scn = scenario::from_cli(cli);
  const auto proc = scn.make_processor();

  util::print_banner("Ablation: Table-2 lifetimes (min) across battery models");
  std::printf("config: %s\n\n", cli.summary().c_str());

  exp::ExperimentSpec spec;
  spec.title = "ablation_battery_models";
  spec.config = cli.config_summary() + " | " + scn.fingerprint();
  spec.grid = exp::Grid{std::vector<exp::Axis>{exp::battery_axis(),
                                               exp::scheme_axis()}};
  spec.metrics = {"lifetime_min"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.replicate_seed);
    const auto set = scn.make_workload(rng);
    const auto config =
        scn.sim_config(util::Rng::hash_combine(job.replicate_seed, 100u));
    const auto battery = exp::make_battery(exp::battery_labels()[job.at(0)]);
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(1)), config, battery.get());
    return {r.battery_lifetime_s / 60.0};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  const auto kinds = core::table2_schemes();
  std::vector<std::string> headers{"model"};
  for (const auto kind : kinds) {
    headers.push_back(core::to_string(kind));
  }
  headers.push_back("BAS-2/laEDF");
  util::Table table(headers);
  for (std::size_t m = 0; m < exp::battery_labels().size(); ++m) {
    std::vector<std::string> row{exp::battery_labels()[m]};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      row.push_back(util::Table::num(result.mean({m, k}, 0), 0));
    }
    row.push_back(
        util::Table::num(result.mean({m, 4}, 0) / result.mean({m, 2}, 0), 3));
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nShape check: EDF < ccEDF < laEDF <= BAS-1 <= BAS-2 on every row "
      "with nonlinear dynamics; on the ideal battery the residual gap is "
      "pure energy.\n");
  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
