// Ablation: does the Table-2 conclusion depend on the battery model?
//
// The paper evaluates on the stochastic model of [13]; our substitution
// note (DESIGN.md §5) claims scheme *rankings* are model-robust. This
// bench reruns the Table-2 comparison against every battery model in
// the library. The ideal battery is the control: without rate-capacity
// and recovery effects, lifetime differences reduce to pure energy
// differences.

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/compare.hpp"
#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/peukert.hpp"
#include "battery/stochastic.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, {{"sets", "6"}, {"seed", "29"}, {"csv", ""}});
  const int sets = static_cast<int>(cli.get_int("sets"));
  const auto seed = cli.get_u64("seed");

  const auto proc = dvs::Processor::paper_default();
  std::vector<std::unique_ptr<bat::Battery>> models;
  models.push_back(
      std::make_unique<bat::IdealBattery>(bat::to_coulombs(2000.0)));
  models.push_back(std::make_unique<bat::PeukertBattery>(bat::PeukertParams{}));
  models.push_back(
      std::make_unique<bat::KibamBattery>(bat::KibamParams::paper_aaa_nimh()));
  models.push_back(std::make_unique<bat::DiffusionBattery>(
      bat::DiffusionParams::paper_aaa_nimh()));
  models.push_back(
      std::make_unique<bat::StochasticBattery>(bat::StochasticParams{}));

  util::print_banner("Ablation: Table-2 lifetimes (min) across battery models");
  std::printf("config: %s\n\n", cli.summary().c_str());

  const auto kinds = core::table2_schemes();
  std::vector<std::string> headers{"model"};
  for (const auto kind : kinds) {
    headers.push_back(core::to_string(kind));
  }
  headers.push_back("BAS-2/laEDF");
  util::Table table(headers);

  for (const auto& model : models) {
    std::vector<util::Accumulator> life(kinds.size());
    for (int s = 0; s < sets; ++s) {
      util::Rng rng(util::Rng::hash_combine(
          seed, static_cast<std::uint64_t>(s)));
      tgff::WorkloadParams wp;
      wp.graph_count = 3;
      wp.target_utilization = 0.7 / 0.6;
      wp.period_lo_s = 0.5;
      wp.period_hi_s = 5.0;
      const auto set = tgff::make_workload(wp, rng);

      sim::SimConfig config;
      config.horizon_s = 24.0 * 3600.0;
      config.drain = false;
      config.record_profile = false;
      config.ac_model = sim::AcModel::kPerNodeMean;
      config.seed = util::Rng::hash_combine(seed, 100u + static_cast<std::uint64_t>(s));
      const auto outcomes =
          analysis::compare_schemes(set, proc, kinds, config, model.get());
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        life[k].add(outcomes[k].result.battery_lifetime_s / 60.0);
      }
    }
    std::vector<std::string> row{model->name()};
    for (auto& acc : life) {
      row.push_back(util::Table::num(acc.mean(), 0));
    }
    row.push_back(util::Table::num(life[4].mean() / life[2].mean(), 3));
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nShape check: EDF < ccEDF < laEDF <= BAS-1 <= BAS-2 on every row "
      "with nonlinear dynamics; on the ideal battery the residual gap is "
      "pure energy.\n");
  if (const auto csv = cli.get("csv"); !csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
