// Ablation: does the Table-2 conclusion depend on the battery model?
//
// The paper evaluates on the stochastic model of [13]; our substitution
// note (DESIGN.md §5) claims scheme *rankings* are model-robust. This
// bench reruns the Table-2 comparison against every battery model in
// the library. The ideal battery is the control: without rate-capacity
// and recovery effects, lifetime differences reduce to pure energy
// differences.
//
// The engine shards the (battery model x scheme x set) grid; workloads
// key off the replicate seed so every cell sees the same sets (CRN).

#include <cstdio>
#include <vector>

#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "sim/simulator.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, util::Cli::with_bench_defaults(
                                {{"sets", "6"}, {"seed", "29"}}));
  const int sets = static_cast<int>(cli.get_int("sets"));

  const auto proc = dvs::Processor::paper_default();

  util::print_banner("Ablation: Table-2 lifetimes (min) across battery models");
  std::printf("config: %s\n\n", cli.summary().c_str());

  exp::ExperimentSpec spec;
  spec.title = "ablation_battery_models";
  spec.config = cli.config_summary();
  spec.grid = exp::Grid{std::vector<exp::Axis>{exp::battery_axis(),
                                               exp::scheme_axis()}};
  spec.metrics = {"lifetime_min"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.replicate_seed);
    tgff::WorkloadParams wp;
    wp.graph_count = 3;
    wp.target_utilization = 0.7 / 0.6;
    wp.period_lo_s = 0.5;
    wp.period_hi_s = 5.0;
    const auto set = tgff::make_workload(wp, rng);

    sim::SimConfig config;
    config.horizon_s = 24.0 * 3600.0;
    config.drain = false;
    config.record_profile = false;
    config.ac_model = sim::AcModel::kPerNodeMean;
    config.seed = util::Rng::hash_combine(job.replicate_seed, 100u);

    const auto battery = exp::make_battery(exp::battery_labels()[job.at(0)]);
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(1)), config, battery.get());
    return {r.battery_lifetime_s / 60.0};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  const auto kinds = core::table2_schemes();
  std::vector<std::string> headers{"model"};
  for (const auto kind : kinds) {
    headers.push_back(core::to_string(kind));
  }
  headers.push_back("BAS-2/laEDF");
  util::Table table(headers);
  for (std::size_t m = 0; m < exp::battery_labels().size(); ++m) {
    std::vector<std::string> row{exp::battery_labels()[m]};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      row.push_back(util::Table::num(result.mean({m, k}, 0), 0));
    }
    row.push_back(
        util::Table::num(result.mean({m, 4}, 0) / result.mean({m, 2}, 0), 3));
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nShape check: EDF < ccEDF < laEDF <= BAS-1 <= BAS-2 on every row "
      "with nonlinear dynamics; on the ideal battery the residual gap is "
      "pure energy.\n");
  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
