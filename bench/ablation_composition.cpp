// Ablation: full DVS-algorithm x priority-function x ready-scope matrix.
//
// The paper's closing claim is that the methodology composes "with
// little or no changes with any frequency setting algorithm and any
// priority function without deadline violation". This bench runs the
// whole cross product on one workload batch and reports lifetime — and
// that the miss count is zero everywhere.

#include <cstdio>
#include <functional>
#include <vector>

#include "battery/kibam.hpp"
#include "core/scheme.hpp"
#include "dvs/clamped.hpp"
#include "sim/simulator.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, {{"sets", "6"}, {"seed", "23"}, {"csv", ""}});
  const int sets = static_cast<int>(cli.get_int("sets"));
  const auto seed = cli.get_u64("seed");

  const auto proc = dvs::Processor::paper_default();
  const double fmax = proc.fmax_hz();
  const bat::KibamBattery battery(bat::KibamParams::paper_aaa_nimh());

  struct DvsRow {
    const char* label;
    std::function<std::unique_ptr<dvs::DvsPolicy>()> make;
  };
  const std::vector<DvsRow> dvs_rows{
      {"noDVS", [&] { return dvs::make_no_dvs(fmax); }},
      {"static", [&] { return dvs::make_static_dvs(fmax); }},
      {"ccEDF", [&] { return dvs::make_cc_edf(fmax); }},
      {"laEDF", [&] { return dvs::make_la_edf(fmax); }},
      {"laEDF+clamp",
       [&] { return dvs::make_profile_clamped(dvs::make_la_edf(fmax)); }},
  };
  struct PrioCol {
    const char* label;
    std::function<std::unique_ptr<sched::PriorityPolicy>()> make;
  };
  const std::vector<PrioCol> prio_cols{
      {"Random", [&] { return sched::make_random_priority(seed); }},
      {"LTF", [] { return sched::make_ltf_priority(); }},
      {"STF", [] { return sched::make_stf_priority(); }},
      {"pUBS", [] { return sched::make_pubs_priority(); }},
  };

  util::print_banner(
      "Ablation: lifetime (min) for DVS x priority x ready-scope");
  std::printf("config: %s\n\n", cli.summary().c_str());

  std::size_t total_misses = 0;
  for (const auto scope :
       {core::ReadyScope::kMostImminent, core::ReadyScope::kAllReleased}) {
    std::printf("ready list: %s\n",
                scope == core::ReadyScope::kMostImminent
                    ? "most imminent graph (BAS-1 style)"
                    : "all released graphs + feasibility check (BAS-2 "
                      "style)");
    std::vector<std::string> headers{"DVS \\ priority"};
    for (const auto& p : prio_cols) {
      headers.push_back(p.label);
    }
    util::Table table(headers);
    for (const auto& d : dvs_rows) {
      std::vector<std::string> row{d.label};
      for (const auto& p : prio_cols) {
        util::Accumulator life;
        for (int s = 0; s < sets; ++s) {
          util::Rng rng(util::Rng::hash_combine(
              seed, static_cast<std::uint64_t>(s)));
          tgff::WorkloadParams wp;
          wp.graph_count = 3;
          wp.target_utilization = 0.7 / 0.6;
          wp.period_lo_s = 0.5;
          wp.period_hi_s = 5.0;
          const auto set = tgff::make_workload(wp, rng);

          core::Scheme scheme = core::make_custom_scheme(
              std::string(d.label) + "+" + p.label, d.make(), p.make(),
              sched::make_history_estimator(), scope);
          sim::SimConfig config;
          config.horizon_s = 24.0 * 3600.0;
          config.drain = false;
          config.record_profile = false;
          config.ac_model = sim::AcModel::kPerNodeMean;
          config.seed = util::Rng::hash_combine(seed, 100u + static_cast<std::uint64_t>(s));
          const auto battery_clone = battery.fresh_clone();
          sim::Simulator sim(set, proc, scheme, config);
          const auto r = sim.run(battery_clone.get());
          life.add(r.battery_lifetime_s / 60.0);
          total_misses += r.deadline_misses;
        }
        row.push_back(util::Table::num(life.mean(), 1));
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }
  std::printf("deadline misses across the whole matrix: %zu\n",
              total_misses);
  std::printf(
      "Shape check: every cell is deadline-clean; pUBS columns dominate "
      "their Random counterparts, laEDF rows dominate ccEDF, and the "
      "all-released scope adds on top.\n");
  return 0;
}
