// Ablation: full DVS-algorithm x priority-function x ready-scope matrix.
//
// The paper's closing claim is that the methodology composes "with
// little or no changes with any frequency setting algorithm and any
// priority function without deadline violation". This bench runs the
// whole cross product on one workload batch and reports lifetime — and
// that the miss count is zero everywhere.
//
// The world comes from the scenario registry (`paper-table2` by
// default; --scenario / --scenario.FIELD reshape it). The engine shards
// the (scope x DVS x priority x set) grid; workloads key off the
// replicate seed so every cell sees the same sets (CRN).

#include <cstdio>
#include <functional>
#include <vector>

#include "core/scheme.hpp"
#include "dvs/clamped.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"sets", "6"}, {"seed", "23"}}, "paper-table2")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets = static_cast<int>(cli.get_int("sets"));
  const auto seed = cli.get_u64("seed");

  const auto scn = scenario::from_cli(cli);
  const auto proc = scn.make_processor();
  const double fmax = proc.fmax_hz();

  struct DvsRow {
    const char* label;
    std::function<std::unique_ptr<dvs::DvsPolicy>()> make;
  };
  const std::vector<DvsRow> dvs_rows{
      {"noDVS", [&] { return dvs::make_no_dvs(fmax); }},
      {"static", [&] { return dvs::make_static_dvs(fmax); }},
      {"ccEDF", [&] { return dvs::make_cc_edf(fmax); }},
      {"laEDF", [&] { return dvs::make_la_edf(fmax); }},
      {"laEDF+clamp",
       [&] { return dvs::make_profile_clamped(dvs::make_la_edf(fmax)); }},
  };
  struct PrioCol {
    const char* label;
    std::function<std::unique_ptr<sched::PriorityPolicy>()> make;
  };
  const std::vector<PrioCol> prio_cols{
      {"Random", [&] { return sched::make_random_priority(seed); }},
      {"LTF", [] { return sched::make_ltf_priority(); }},
      {"STF", [] { return sched::make_stf_priority(); }},
      {"pUBS", [] { return sched::make_pubs_priority(); }},
  };
  const std::vector<core::ReadyScope> scopes{core::ReadyScope::kMostImminent,
                                             core::ReadyScope::kAllReleased};

  util::print_banner(
      "Ablation: lifetime (min) for DVS x priority x ready-scope");
  std::printf("config: %s\n\n", cli.summary().c_str());

  exp::ExperimentSpec spec;
  spec.title = "ablation_composition";
  spec.config = cli.config_summary() + " | " + scn.fingerprint();
  spec.grid.add("scope", {"most-imminent", "all-released"});
  std::vector<std::string> dvs_labels;
  for (const auto& d : dvs_rows) {
    dvs_labels.push_back(d.label);
  }
  spec.grid.add("dvs", dvs_labels);
  std::vector<std::string> prio_labels;
  for (const auto& p : prio_cols) {
    prio_labels.push_back(p.label);
  }
  spec.grid.add("priority", prio_labels);
  spec.metrics = {"lifetime_min", "misses"};
  spec.replicates = sets;
  spec.seed = seed;
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.replicate_seed);
    const auto set = scn.make_workload(rng);

    const auto& d = dvs_rows[job.at(1)];
    const auto& p = prio_cols[job.at(2)];
    core::Scheme scheme = core::make_custom_scheme(
        std::string(d.label) + "+" + p.label, d.make(), p.make(),
        sched::make_history_estimator(), scopes[job.at(0)]);

    const auto config =
        scn.sim_config(util::Rng::hash_combine(job.replicate_seed, 100u));
    const auto battery = scn.make_battery();
    sim::Simulator sim(set, proc, scheme, config);
    const auto r = sim.run(battery.get());
    return {r.battery_lifetime_s / 60.0,
            static_cast<double>(r.deadline_misses)};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  double total_misses = 0.0;
  for (std::size_t scope = 0; scope < scopes.size(); ++scope) {
    std::printf("ready list: %s\n",
                scope == 0 ? "most imminent graph (BAS-1 style)"
                           : "all released graphs + feasibility check (BAS-2 "
                             "style)");
    std::vector<std::string> headers{"DVS \\ priority"};
    for (const auto& p : prio_cols) {
      headers.push_back(p.label);
    }
    util::Table table(headers);
    for (std::size_t d = 0; d < dvs_rows.size(); ++d) {
      std::vector<std::string> row{dvs_rows[d].label};
      for (std::size_t p = 0; p < prio_cols.size(); ++p) {
        row.push_back(util::Table::num(result.mean({scope, d, p}, 0), 1));
        total_misses += result.sum({scope, d, p}, 1);
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }
  std::printf("deadline misses across the whole matrix: %.0f\n",
              total_misses);
  std::printf(
      "Shape check: every cell is deadline-clean; pUBS columns dominate "
      "their Random counterparts, laEDF rows dominate ccEDF, and the "
      "all-released scope adds on top.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
