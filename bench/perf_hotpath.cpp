// Hot-path performance benchmark: steps/sec, battery draws/sec and
// end-to-end sims/sec per (scheme x scenario x battery) cell, plus the
// tracked-baseline regression gate the perf-smoke CI job runs.
//
// Timing wraps sim::simulate_scheme only — workload generation and
// result folding stay outside the clock — and every run flips
// SimConfig::record_perf_counters so the rates are normalized by the
// *work actually performed* (scheduling steps, Battery::draw calls),
// not by wall time alone. Workload seeds depend only on (--seed, rep),
// so every cell of one rep times the same task-graph sets (CRN for
// perf: a cell ratio is a code ratio, not a workload ratio).
//
// Outputs BENCH_perf.json (schema "bas-perf/4", documented in
// EXPERIMENTS.md, "Performance"): per-cell counters, rates, the flat
// k_* kernel counters and the flat ph_* phase-profile fields — all
// driven off one obs::Metrics registry so the schema cannot drift from
// the metric names. The numbers are machine-dependent wall-clock rates
// — they are NOT covered by the byte-identity contract and never feed
// a resume cache; the counters underneath them are deterministic.
//
// In BAS_PROFILE builds a per-phase table shows where the step time
// goes, measured on one dedicated profiled rep per cell — the timed
// reps never arm the phase clock, so the gated rates stay clean;
// --trace-out FILE additionally writes a Chrome-trace JSON (one
// untimed audit rep in direct mode, the runner's campaign trace in
// --campaign mode) for Perfetto / chrome://tracing.
//
//   ./perf_hotpath --smoke                  # CI-sized cells, ~seconds
//   ./perf_hotpath --full                   # all schemes x batteries
//   ./perf_hotpath --smoke --baseline ../bench/perf_baseline.json
//   ./perf_hotpath --smoke --write-baseline perf_baseline.json
//   ./perf_hotpath --smoke --campaign --cache DIR [--store sqlite]
//   ./perf_hotpath --smoke --trace-out trace.json
//
// With --baseline, the run fails (exit 1) when any matching cell's
// steps/sec falls more than --max-regress (default 0.30) below the
// baseline file's figure. Regenerate the checked-in baseline with
// --write-baseline on a quiet machine after an intentional perf change.
//
// With --campaign the same cells run through the exp::Runner pipeline —
// per-rep jobs, the async store writer when --cache is set — instead of
// the direct loop. The per-rep clock still wraps simulate_scheme only,
// so the rates measure the identical work and the campaign overhead
// (queue push per job, consumer-thread batching) shows up as the
// steps/sec delta against a direct run. That delta is the store's
// hot-path cost and is gated by the same --baseline machinery. Keep
// --jobs 1 when gating: the per-rep clock is wall time, so concurrent
// reps would time each other's CPU contention, not the store.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "exp/experiment.hpp"
#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_log.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "store/store.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace bas;

struct Cell {
  std::string scenario;
  std::string scheme;
  std::string battery;
  std::string engine;  // "tick" or "event"
};

struct CellResult {
  Cell cell;
  std::uint64_t sims = 0;
  std::uint64_t steps = 0;
  std::uint64_t battery_draws = 0;
  std::uint64_t battery_interval_advances = 0;
  std::uint64_t candidates_scored = 0;
  std::uint64_t scratch_grows = 0;
  std::uint64_t edf_incremental_ops = 0;
  double elapsed_s = 0.0;
  bas::bat::KernelCounters kernel;
  bas::obs::PhaseProfile phases;  ///< all zero unless BAS_PROFILE builds
  std::uint64_t ph_laps = 0;      ///< total phase boundaries clocked
  /// Wall time of the dedicated PROFILED rep the phases came from —
  /// the denominator of the sum/elapsed coverage column. Kept apart
  /// from elapsed_s (the timed, unprofiled reps): profiling reads a
  /// clock per phase boundary, which would distort the gated rates.
  double profile_elapsed_s = 0.0;

  double per_sec(double count) const {
    return elapsed_s > 0.0 ? count / elapsed_s : 0.0;
  }
  double steps_per_sec() const {
    return per_sec(static_cast<double>(steps));
  }
  double draws_per_sec() const {
    return per_sec(static_cast<double>(battery_draws));
  }
  double advances_per_sec() const {
    return per_sec(static_cast<double>(battery_interval_advances));
  }
  double sims_per_sec() const {
    return per_sec(static_cast<double>(sims));
  }
};

std::string fmt_rate(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", v);
  return buffer;
}

std::size_t scheme_index(const std::string& label) {
  const auto& labels = exp::scheme_labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      return i;
    }
  }
  throw std::runtime_error("unknown scheme label '" + label + "'");
}

/// Metric lane order shared by the direct loop and the campaign
/// pipeline: 7 hot-path lanes, the 12 per-kernel battery counters in
/// KernelCounters declaration order, then the phase profile — 8
/// per-phase ns lanes (obs::phase_field order) plus the total boundary
/// count. Counters are exact in doubles (far below 2^53); the ph_*
/// lanes are non-zero only on a profiled rep (BAS_PROFILE builds,
/// record_phase_profile set) — timed and campaign reps never profile,
/// so their ph_* lanes are zero by construction.
constexpr std::size_t kLaneElapsed = 6;     ///< index of elapsed_s
constexpr std::size_t kLaneKernel = 7;      ///< first k_* lane
constexpr std::size_t kLanePhase = 19;      ///< first ph_* lane
const std::vector<std::string> make_metric_names() {
  std::vector<std::string> names = {
      "steps",       "battery_draws", "battery_interval_advances",
      "candidates_scored", "scratch_grows", "edf_incremental_ops",
      "elapsed_s",
      "k_exp_sweeps", "k_exp_calls",  "k_decay_hits", "k_decay_misses",
      "k_gain_hits",  "k_gain_misses", "k_kibam_shared_exps", "k_pow_hits",
      "k_pow_misses", "k_batch_calls", "k_batch_lanes", "k_fast_advances"};
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    names.push_back(obs::phase_field(static_cast<obs::Phase>(p)));
  }
  names.push_back("ph_laps");
  return names;
}
const std::vector<std::string> kMetricNames = make_metric_names();
static_assert(kLaneKernel == kLaneElapsed + 1);

void fold_metrics(CellResult* out, const std::vector<double>& m) {
  auto u64 = [](double v) { return static_cast<std::uint64_t>(v); };
  ++out->sims;
  out->steps += u64(m[0]);
  out->battery_draws += u64(m[1]);
  out->battery_interval_advances += u64(m[2]);
  out->candidates_scored += u64(m[3]);
  out->scratch_grows += u64(m[4]);
  out->edf_incremental_ops += u64(m[5]);
  out->elapsed_s += m[kLaneElapsed];
  auto& k = out->kernel;
  k.exp_sweeps += u64(m[kLaneKernel + 0]);
  k.exp_calls += u64(m[kLaneKernel + 1]);
  k.decay_hits += u64(m[kLaneKernel + 2]);
  k.decay_misses += u64(m[kLaneKernel + 3]);
  k.gain_hits += u64(m[kLaneKernel + 4]);
  k.gain_misses += u64(m[kLaneKernel + 5]);
  k.kibam_shared_exps += u64(m[kLaneKernel + 6]);
  k.pow_hits += u64(m[kLaneKernel + 7]);
  k.pow_misses += u64(m[kLaneKernel + 8]);
  k.batch_calls += u64(m[kLaneKernel + 9]);
  k.batch_lanes += u64(m[kLaneKernel + 10]);
  k.fast_advances += u64(m[kLaneKernel + 11]);
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    out->phases.ns[p] += u64(m[kLanePhase + static_cast<std::size_t>(p)]);
  }
  out->ph_laps += u64(m[kLanePhase + obs::kPhaseCount]);
}

/// Times one replicate of one cell: the clock wraps simulate_scheme
/// only. Returns the kMetricNames lanes. `profile` arms the phase
/// clock (BAS_PROFILE builds) — never set it on a rep whose rates are
/// gated; the boundary clock reads cost tens of percent on dense
/// cells, so the profiled rep is a separate, un-gated run.
std::vector<double> time_rep(const Cell& cell, std::uint64_t seed, int rep,
                             bool profile = false) {
  const auto& scn = scenario::scenario(cell.scenario);
  const auto proc = scn.make_processor();
  const auto kind = exp::scheme_kind_at(scheme_index(cell.scheme));
  // Same seeding contract as the campaign drivers: the workload and
  // sim seeds depend only on the replicate, never on the cell.
  const std::uint64_t rep_seed =
      util::Rng::hash_combine(seed, static_cast<std::uint64_t>(rep));
  util::Rng rng(rep_seed);
  const auto set = scn.make_workload(rng);
  auto config = scn.sim_config(util::Rng::hash_combine(rep_seed, 1000u));
  config.record_perf_counters = true;
  config.record_phase_profile = profile;
  config.engine = sim::engine_from_string(cell.engine);
  const auto battery = exp::make_battery(cell.battery);

  const auto t0 = std::chrono::steady_clock::now();
  const auto r = sim::simulate_scheme(set, proc, kind, config,
                                      battery.get());
  const auto t1 = std::chrono::steady_clock::now();
  const auto& k = r.perf.kernel;
  auto d = [](std::uint64_t v) { return static_cast<double>(v); };
  std::vector<double> lanes = {d(r.perf.steps),
                               d(r.perf.battery_draws),
                               d(r.perf.battery_interval_advances),
                               d(r.perf.candidates_scored),
                               d(r.perf.scratch_grows),
                               d(r.perf.edf_incremental_ops),
                               std::chrono::duration<double>(t1 - t0).count(),
                               d(k.exp_sweeps),
                               d(k.exp_calls),
                               d(k.decay_hits),
                               d(k.decay_misses),
                               d(k.gain_hits),
                               d(k.gain_misses),
                               d(k.kibam_shared_exps),
                               d(k.pow_hits),
                               d(k.pow_misses),
                               d(k.batch_calls),
                               d(k.batch_lanes),
                               d(k.fast_advances)};
  std::uint64_t laps = 0;
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    lanes.push_back(d(r.perf.phases.ns[p]));
    laps += r.perf.phases.laps[p];
  }
  lanes.push_back(d(laps));
  return lanes;
}

CellResult time_cell(const Cell& cell, int sets, std::uint64_t seed) {
  CellResult out;
  out.cell = cell;
  for (int rep = 0; rep < sets; ++rep) {
    fold_metrics(&out, time_rep(cell, seed, rep));
  }
  if (obs::PhaseProfile::compiled_in) {
    // One dedicated profiled rep fills the ph_* lanes; its own wall
    // time is the coverage denominator. The timed reps above stay
    // unprofiled so the gated rates measure the loop, not the clock.
    const auto lanes = time_rep(cell, seed, 0, /*profile=*/true);
    auto u64 = [](double v) { return static_cast<std::uint64_t>(v); };
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      out.phases.ns[p] = u64(lanes[kLanePhase + static_cast<std::size_t>(p)]);
    }
    out.ph_laps = u64(lanes[kLanePhase + obs::kPhaseCount]);
    out.profile_elapsed_s = lanes[kLaneElapsed];
  }
  return out;
}

/// --trace-out in direct mode: one untimed rep 0 of `cell` with the
/// Chrome-trace sink attached — execution-slice spans and release /
/// completion instants on the sim-time tracks, plus per-step phase
/// spans under BAS_PROFILE. Load the file in Perfetto or
/// chrome://tracing.
void write_direct_trace(const Cell& cell, std::uint64_t seed,
                        const std::string& path) {
  const auto& scn = scenario::scenario(cell.scenario);
  const auto proc = scn.make_processor();
  const auto kind = exp::scheme_kind_at(scheme_index(cell.scheme));
  const std::uint64_t rep_seed = util::Rng::hash_combine(seed, 0u);
  util::Rng rng(rep_seed);
  const auto set = scn.make_workload(rng);
  auto config = scn.sim_config(util::Rng::hash_combine(rep_seed, 1000u));
  config.record_perf_counters = true;
  config.record_phase_profile = true;  // phase spans on the wall-clock track
  config.record_trace = true;  // per-slice accounting, no battery merging
  config.engine = sim::engine_from_string(cell.engine);
  const auto battery = exp::make_battery(cell.battery);

  obs::TraceLog log;
  log.name_process(obs::kSimPid, "sim: " + cell.scenario + "/" + cell.scheme +
                                     "/" + cell.battery + "/" + cell.engine);
  log.name_process(obs::kProfilerPid, "profiler phases (wall clock)");
  config.trace_log = &log;
  sim::simulate_scheme(set, proc, kind, config, battery.get());
  log.write(path);
  std::printf("\nwrote trace %s (%zu events)\n", path.c_str(), log.size());
}

/// Campaign mode: the identical cells as per-rep jobs through the full
/// exp::Runner pipeline (work-stealing pool + async store writer when
/// --cache is set), folded back into CellResults.
std::vector<CellResult> run_campaign(const std::vector<Cell>& cells,
                                     int sets, std::uint64_t seed,
                                     const exp::RunnerOptions& options) {
  exp::ExperimentSpec spec;
  spec.title = "perf-hotpath-campaign";
  std::vector<std::string> labels;
  for (const auto& cell : cells) {
    labels.push_back(cell.scenario + "/" + cell.scheme + "/" + cell.battery +
                     "/" + cell.engine);
  }
  spec.grid.add("cell", labels);
  spec.metrics = kMetricNames;
  spec.replicates = sets;
  spec.seed = seed;
  spec.run = [&cells, seed](const exp::Job& job) {
    return time_rep(cells[job.cell], seed, job.replicate);
  };
  const auto result = exp::Runner(options).run(spec);

  std::vector<CellResult> out;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult r;
    r.cell = cells[c];
    const std::uint64_t reps = result.at(c, 0).count();
    std::vector<double> sums;
    for (std::size_t m = 0; m < kMetricNames.size(); ++m) {
      sums.push_back(result.sum(c, m));
    }
    // fold_metrics counts one sim per call; feed it the summed lanes
    // once, then fix up the replicate count.
    fold_metrics(&r, sums);
    r.sims = reps;
    out.push_back(std::move(r));
  }
  return out;
}

constexpr const char* kSchema = "bas-perf/4";

/// The flat numeric fields of one bas-perf/4 cell, as a metrics
/// registry in schema order. One builder serves the JSON emitter and
/// any future consumer, so the cell schema and the registry names
/// cannot drift apart.
obs::Metrics cell_metrics(const CellResult& r) {
  obs::Metrics metrics;
  auto u = [](std::uint64_t v) { return static_cast<double>(v); };
  metrics.set("sims", u(r.sims));
  metrics.set("steps", u(r.steps));
  metrics.set("battery_draws", u(r.battery_draws));
  metrics.set("battery_interval_advances", u(r.battery_interval_advances));
  metrics.set("candidates_scored", u(r.candidates_scored));
  metrics.set("scratch_grows", u(r.scratch_grows));
  metrics.set("edf_incremental_ops", u(r.edf_incremental_ops));
  metrics.set("elapsed_s", r.elapsed_s, obs::MetricKind::kGauge);
  metrics.set("steps_per_sec", r.steps_per_sec(), obs::MetricKind::kGauge);
  metrics.set("draws_per_sec", r.draws_per_sec(), obs::MetricKind::kGauge);
  metrics.set("advances_per_sec", r.advances_per_sec(),
              obs::MetricKind::kGauge);
  metrics.set("sims_per_sec", r.sims_per_sec(), obs::MetricKind::kGauge);
  const auto& k = r.kernel;
  metrics.set("k_exp_sweeps", u(k.exp_sweeps));
  metrics.set("k_exp_calls", u(k.exp_calls));
  metrics.set("k_decay_hits", u(k.decay_hits));
  metrics.set("k_decay_misses", u(k.decay_misses));
  metrics.set("k_gain_hits", u(k.gain_hits));
  metrics.set("k_gain_misses", u(k.gain_misses));
  metrics.set("k_kibam_shared_exps", u(k.kibam_shared_exps));
  metrics.set("k_pow_hits", u(k.pow_hits));
  metrics.set("k_pow_misses", u(k.pow_misses));
  metrics.set("k_batch_calls", u(k.batch_calls));
  metrics.set("k_batch_lanes", u(k.batch_lanes));
  metrics.set("k_fast_advances", u(k.fast_advances));
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    metrics.set(obs::phase_field(static_cast<obs::Phase>(p)),
                u(r.phases.ns[p]));
  }
  metrics.set("ph_laps", u(r.ph_laps));
  metrics.set("ph_elapsed_s", r.profile_elapsed_s, obs::MetricKind::kGauge);
  return metrics;
}

std::string to_json(const std::vector<CellResult>& results,
                    const std::string& mode, int sets, std::uint64_t seed) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kSchema << "\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"sets\": " << sets << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"kernel_counters_compiled_in\": "
      << (bat::KernelCounters::compiled_in ? "true" : "false") << ",\n";
  out << "  \"profile_compiled_in\": "
      << (obs::PhaseProfile::compiled_in ? "true" : "false") << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // Every numeric field stays FLAT inside the cell object: the
    // baseline loader chunks the file on braces, so a nested object
    // would split a cell in two. The fields and their order come from
    // the cell_metrics registry.
    out << "    {\"scenario\": \"" << r.cell.scenario << "\", \"scheme\": \""
        << r.cell.scheme << "\", \"battery\": \"" << r.cell.battery
        << "\", \"engine\": \"" << r.cell.engine << "\"";
    const obs::Metrics metrics = cell_metrics(r);
    for (const auto& entry : metrics.entries()) {
      out << ", \"" << entry.name << "\": " << obs::format_value(entry.value);
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------
// Baseline file handling. The parser mirrors the defensive style of the
// campaign cache: anything it cannot read is simply not a cell, so a
// hand-edited or truncated baseline degrades to "no gate", not a crash.

struct BaselineCell {
  Cell cell;
  double steps_per_sec = 0.0;
  double steps = 0.0;  // deterministic work count; 0 when absent
};

bool extract_string(const std::string& chunk, const std::string& key,
                    std::string* value) {
  const std::string needle = "\"" + key + "\": \"";
  const auto at = chunk.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const auto start = at + needle.size();
  const auto end = chunk.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  *value = chunk.substr(start, end - start);
  return true;
}

bool extract_number(const std::string& chunk, const std::string& key,
                    double* value) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = chunk.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const char* cursor = chunk.c_str() + at + needle.size();
  const double parsed = std::strtod(cursor, &end);
  if (end == cursor) {
    return false;
  }
  *value = parsed;
  return true;
}

std::vector<BaselineCell> load_baseline(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open baseline file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  // Schema gate up front: an old-schema baseline would "match" on the
  // shared keys and gate against stale semantics, so mismatches fail
  // loudly instead of degrading to no-cells.
  std::string schema;
  if (!extract_string(text, "schema", &schema) || schema != kSchema) {
    throw std::runtime_error(
        "baseline file '" + path + "' has schema '" +
        (schema.empty() ? "<missing>" : schema) + "' but this binary reads '" +
        kSchema + "' — regenerate it with --write-baseline");
  }

  std::vector<BaselineCell> cells;
  std::size_t at = 0;
  while ((at = text.find('{', at + 1)) != std::string::npos) {
    const auto end = text.find('}', at);
    if (end == std::string::npos) {
      break;
    }
    const std::string chunk = text.substr(at, end - at);
    BaselineCell cell;
    if (extract_string(chunk, "scenario", &cell.cell.scenario) &&
        extract_string(chunk, "scheme", &cell.cell.scheme) &&
        extract_string(chunk, "battery", &cell.cell.battery) &&
        extract_number(chunk, "steps_per_sec", &cell.steps_per_sec)) {
      // The `": "`-anchored needle cannot match "steps_per_sec".
      extract_number(chunk, "steps", &cell.steps);  // optional
      if (!extract_string(chunk, "engine", &cell.cell.engine)) {
        // Baselines recorded before the engine axis timed the tick loop.
        cell.cell.engine = "tick";
      }
      cells.push_back(std::move(cell));
    }
    at = end;
  }
  return cells;
}

/// Returns the number of failed cells (0 = gate passed). Zero matched
/// cells counts as a failure: an explicitly requested gate that cannot
/// find its baseline (unreadable file, reformatted JSON, renamed
/// cells) must not silently pass.
int check_against_baseline(const std::vector<CellResult>& results,
                           const std::vector<BaselineCell>& baseline,
                           double max_regress) {
  int regressions = 0;
  int matched = 0;
  for (const auto& r : results) {
    for (const auto& b : baseline) {
      if (b.cell.scenario != r.cell.scenario ||
          b.cell.scheme != r.cell.scheme ||
          b.cell.battery != r.cell.battery ||
          b.cell.engine != r.cell.engine || !(b.steps_per_sec > 0.0)) {
        continue;
      }
      ++matched;
      const double ratio = r.steps_per_sec() / b.steps_per_sec;
      const bool regressed = ratio < 1.0 - max_regress;
      if (regressed) {
        ++regressions;
      }
      std::printf("baseline %-14s x %-6s x %-10s x %-5s %10s vs %10s "
                  "steps/s (%.2fx)%s\n",
                  r.cell.scenario.c_str(), r.cell.scheme.c_str(),
                  r.cell.battery.c_str(), r.cell.engine.c_str(),
                  fmt_rate(r.steps_per_sec()).c_str(),
                  fmt_rate(b.steps_per_sec).c_str(), ratio,
                  regressed ? "  <-- REGRESSION" : "");
      if (b.steps > 0.0 &&
          b.steps != static_cast<double>(r.steps)) {
        // The counters are bit-deterministic for a given (seed, sets):
        // a mismatch means behaviour changed since the baseline was
        // recorded, so the rate comparison is apples to oranges.
        std::printf("  note: step count %llu differs from baseline %.0f — "
                    "behaviour changed; regenerate the baseline\n",
                    static_cast<unsigned long long>(r.steps), b.steps);
      }
      break;
    }
  }
  if (matched == 0) {
    std::printf("baseline: no cells matched — failing (regenerate the "
                "baseline with --write-baseline, or fix the file)\n");
    return 1;
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bas;
  try {
    util::Cli cli(argc, argv,
                  {{"smoke", "false"},
                   {"full", "false"},
                   {"sets", "3"},
                   {"seed", "1234"},
                   {"json", "BENCH_perf.json"},
                   {"baseline", ""},
                   {"max-regress", "0.30"},
                   {"write-baseline", ""},
                   {"campaign", "false"},
                   {"jobs", "1"},
                   {"cache", ""},
                   {"store", "jsonl"},
                   {"trace-out", ""},
                   {"engine", "both"},
                   {"scenarios", ""},
                   {"schemes", ""},
                   {"batteries", ""}});

    // Dense cells (paper-table2, ippp-diurnal) gate "no regression";
    // the sparse cells (idle-heavy, sporadic-sensor) are the event
    // engine's headline win and are timed under both engines so the
    // speedup is visible in every report.
    std::vector<std::string> scenarios{"paper-table2", "ippp-diurnal",
                                       "idle-heavy", "sporadic-sensor"};
    std::vector<std::string> schemes{"EDF", "laEDF", "BAS-2"};
    std::vector<std::string> batteries{"kibam", "diffusion"};
    const std::string schemes_override = cli.get("schemes");
    int sets = static_cast<int>(cli.get_int("sets"));
    std::string mode = "default";
    if (cli.get_flag("smoke")) {
      mode = "smoke";
      scenarios = {"paper-table2", "idle-heavy"};
      sets = std::min(sets, 2);
    } else if (cli.get_flag("full")) {
      mode = "full";
      scenarios = {"paper-table2", "ippp-diurnal", "overload", "idle-heavy",
                   "sporadic-sensor"};
      schemes = exp::scheme_labels();
      batteries = exp::battery_labels();
    }
    if (!schemes_override.empty()) {
      // Comma-separated override of the scheme axis (profiling runs).
      schemes.clear();
      std::stringstream ss(schemes_override);
      for (std::string item; std::getline(ss, item, ',');) {
        scheme_index(item);  // eager validation
        schemes.push_back(item);
      }
    }
    if (const auto v = cli.get("scenarios"); !v.empty()) {
      // Comma-separated override of the scenario axis (profiling runs).
      scenarios.clear();
      std::stringstream ss(v);
      for (std::string item; std::getline(ss, item, ',');) {
        scenario::scenario(item);  // eager validation
        scenarios.push_back(item);
      }
    }
    if (const auto v = cli.get("batteries"); !v.empty()) {
      batteries.clear();
      std::stringstream ss(v);
      for (std::string item; std::getline(ss, item, ',');) {
        scenario::make_battery(item);  // eager validation
        batteries.push_back(item);
      }
    }
    std::vector<std::string> engines;
    if (const auto v = cli.get("engine"); v == "both") {
      engines = {"tick", "event"};
    } else {
      sim::engine_from_string(v);  // eager validation, lists known values
      engines = {v};
    }
    const std::uint64_t seed = cli.get_u64("seed");

    util::print_banner("Hot-path perf: steps/sec, draws/sec, sims/sec");
    std::printf("config: %s\nmode: %s, %d set(s) per cell\n\n",
                cli.summary().c_str(), mode.c_str(), sets);

    std::vector<Cell> cells;
    for (const auto& scenario : scenarios) {
      for (const auto& battery : batteries) {
        for (const auto& scheme : schemes) {
          for (const auto& engine : engines) {
            cells.push_back({scenario, scheme, battery, engine});
          }
        }
      }
    }

    std::vector<CellResult> results;
    if (cli.get_flag("campaign")) {
      mode += "+campaign";
      exp::RunnerOptions options;
      options.jobs = cli.jobs();
      options.cache_dir = cli.get("cache");
      options.store_backend = store::backend_from_label(cli.get("store"));
      // Campaign mode: --trace-out records the runner-level trace (job
      // spans per worker, writer queue depth), not a sim-level one.
      options.trace_out = cli.get("trace-out");
      results = run_campaign(cells, sets, seed, options);
    } else {
      for (const auto& cell : cells) {
        results.push_back(time_cell(cell, sets, seed));
      }
      // Direct mode: --trace-out records one extra UNTIMED rep of the
      // first cell with the trace sink attached — the timed loop above
      // stays instrumentation-free.
      if (const auto path = cli.get("trace-out"); !path.empty()) {
        write_direct_trace(cells.front(), seed, path);
      }
    }

    util::Table table({"scenario", "scheme", "battery", "engine", "sims",
                       "steps", "steps/s", "draws/s", "adv/s", "sims/s",
                       "scored/step", "grows"});
    for (const auto& r : results) {
      table.add_row(
          {r.cell.scenario, r.cell.scheme, r.cell.battery, r.cell.engine,
           util::Table::num(static_cast<long long>(r.sims)),
           util::Table::num(static_cast<long long>(r.steps)),
           fmt_rate(r.steps_per_sec()), fmt_rate(r.draws_per_sec()),
           fmt_rate(r.advances_per_sec()), fmt_rate(r.sims_per_sec()),
           util::Table::num(r.steps > 0
                                ? static_cast<double>(r.candidates_scored) /
                                      static_cast<double>(r.steps)
                                : 0.0,
                            2),
           util::Table::num(static_cast<long long>(r.scratch_grows))});
    }
    table.print();

    // Per-kernel counter table (BAS_KERNEL_COUNTERS builds). exp/probe
    // is the attribution figure for the batched/fast-series work: full
    // exp sweeps cost one exp per series term, fast advances one total.
    if (bat::KernelCounters::compiled_in) {
      std::printf("\nper-kernel battery counters:\n");
      util::Table ktable({"scenario", "scheme", "battery", "engine",
                          "exp_sweeps", "exp_calls", "decay h/m", "gain h/m",
                          "kibam_shx", "pow h/m", "batch c/l", "fast_adv"});
      auto hm = [](std::uint64_t h, std::uint64_t m) {
        return std::to_string(h) + "/" + std::to_string(m);
      };
      for (const auto& r : results) {
        const auto& k = r.kernel;
        ktable.add_row(
            {r.cell.scenario, r.cell.scheme, r.cell.battery, r.cell.engine,
             util::Table::num(static_cast<long long>(k.exp_sweeps)),
             util::Table::num(static_cast<long long>(k.exp_calls)),
             hm(k.decay_hits, k.decay_misses), hm(k.gain_hits, k.gain_misses),
             util::Table::num(static_cast<long long>(k.kibam_shared_exps)),
             hm(k.pow_hits, k.pow_misses), hm(k.batch_calls, k.batch_lanes),
             util::Table::num(static_cast<long long>(k.fast_advances))});
      }
      ktable.print();
    }

    // Per-phase profile table (BAS_PROFILE builds): where the measured
    // step time goes, from each cell's dedicated profiled rep.
    // `sum/elapsed` is the coverage ratio against that rep's own wall
    // time — the phases partition the loop body, so on dense cells the
    // phase sum should account for most of it (the remainder is the
    // clock reads themselves plus setup/teardown outside the loop).
    // Campaign-mode cells carry no profiled rep and are skipped.
    if (obs::PhaseProfile::compiled_in) {
      std::printf("\nper-phase profile (%% of phase total):\n");
      std::vector<std::string> header{"scenario", "scheme", "battery",
                                      "engine"};
      for (int p = 0; p < obs::kPhaseCount; ++p) {
        header.push_back(obs::phase_name(static_cast<obs::Phase>(p)));
      }
      header.push_back("sum_ms");
      header.push_back("sum/elapsed");
      util::Table ptable(header);
      bool any = false;
      for (const auto& r : results) {
        const double total = static_cast<double>(r.phases.total_ns());
        if (!(total > 0.0)) {
          continue;
        }
        any = true;
        std::vector<std::string> row{r.cell.scenario, r.cell.scheme,
                                     r.cell.battery, r.cell.engine};
        for (int p = 0; p < obs::kPhaseCount; ++p) {
          const double share =
              100.0 * static_cast<double>(r.phases.ns[p]) / total;
          char buffer[16];
          std::snprintf(buffer, sizeof(buffer), "%.1f%%", share);
          row.push_back(buffer);
        }
        row.push_back(util::Table::num(total / 1e6, 1));
        row.push_back(util::Table::num(
            r.profile_elapsed_s > 0.0 ? total / 1e9 / r.profile_elapsed_s
                                      : 0.0,
            2));
        ptable.add_row(row);
      }
      if (any) {
        ptable.print();
      } else {
        std::printf("  (campaign mode: no profiled rep per cell)\n");
      }
    }

    // Event-vs-tick speedup per cell, measured on end-to-end sims/sec —
    // the two engines do different amounts of per-"step" work, so
    // steps/sec is not comparable across them; whole simulations are.
    if (engines.size() == 2) {
      std::printf("\nevent/tick speedup (sims/sec):\n");
      for (const auto& r : results) {
        if (r.cell.engine != "event") {
          continue;
        }
        for (const auto& t : results) {
          if (t.cell.engine == "tick" && t.cell.scenario == r.cell.scenario &&
              t.cell.scheme == r.cell.scheme &&
              t.cell.battery == r.cell.battery && t.sims_per_sec() > 0.0) {
            std::printf("  %-15s x %-6s x %-10s %.2fx\n",
                        r.cell.scenario.c_str(), r.cell.scheme.c_str(),
                        r.cell.battery.c_str(),
                        r.sims_per_sec() / t.sims_per_sec());
            break;
          }
        }
      }
    }

    const std::string json =
        to_json(results, mode, sets, seed);
    if (const auto path = cli.get("json"); !path.empty()) {
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("cannot open '" + path + "' for writing");
      }
      out << json;
      std::printf("\nwrote %s\n", path.c_str());
    }
    if (const auto path = cli.get("write-baseline"); !path.empty()) {
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("cannot open '" + path + "' for writing");
      }
      out << json;
      std::printf("wrote baseline %s\n", path.c_str());
    }

    if (const auto path = cli.get("baseline"); !path.empty()) {
      const double max_regress = cli.get_double("max-regress");
      std::printf("\n");
      const int failures =
          check_against_baseline(results, load_baseline(path), max_regress);
      if (failures > 0) {
        std::printf("baseline gate failed (%d failing check(s), threshold "
                    "%.0f%%)\n",
                    failures, 100.0 * max_regress);
        return 1;
      }
      std::printf("baseline gate passed (max regression %.0f%%)\n",
                  100.0 * max_regress);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_hotpath: %s\n", e.what());
    return 2;
  }
}
