// Reproduces Figure 6: energy consumption of the ordering schemes as the
// number of task graphs grows, normalized with respect to the
// near-optimal schedule obtained by removing precedence constraints
// within the task graphs. All schemes employ laEDF for frequency
// setting (paper §5, second simulation set).
//
// Shape to reproduce: all schemes diverge from near-optimal (ratio 1.0)
// as graphs are added, but pUBS over all released tasks stays closest,
// then pUBS on the most imminent graph, then LTF, then Random.

#include <cstdio>
#include <vector>

#include "analysis/compare.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

bas::core::Scheme make_ordering_scheme(const std::string& which,
                                       double fmax_hz, std::uint64_t seed) {
  using namespace bas;
  if (which == "random") {
    return core::make_custom_scheme(
        "Random", dvs::make_la_edf(fmax_hz), sched::make_random_priority(seed),
        sched::make_history_estimator(), core::ReadyScope::kMostImminent);
  }
  if (which == "ltf") {
    return core::make_custom_scheme(
        "LTF", dvs::make_la_edf(fmax_hz), sched::make_ltf_priority(),
        sched::make_history_estimator(), core::ReadyScope::kMostImminent);
  }
  if (which == "pubs-imminent") {
    return core::make_custom_scheme(
        "pUBS/imminent", dvs::make_la_edf(fmax_hz), sched::make_pubs_priority(),
        sched::make_history_estimator(), core::ReadyScope::kMostImminent);
  }
  return core::make_custom_scheme(
      "pUBS/all", dvs::make_la_edf(fmax_hz), sched::make_pubs_priority(),
      sched::make_history_estimator(), core::ReadyScope::kAllReleased);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, {{"sets", "10"},
                             {"seed", "6"},
                             {"max-graphs", "10"},
                             {"horizon", "60"},
                             {"full", "0"},
                             {"csv", ""}});
  const int sets = cli.get_flag("full") ? 40 : static_cast<int>(cli.get_int("sets"));
  const auto seed = cli.get_u64("seed");
  const int max_graphs = static_cast<int>(cli.get_int("max-graphs"));

  const auto proc = dvs::Processor::paper_default();
  const std::vector<std::string> schemes{"random", "ltf", "pubs-imminent",
                                         "pubs-all"};

  util::print_banner(
      "Figure 6: energy of ordering schemes normalized w.r.t. near-optimal");
  std::printf("config: %s\n\n", cli.summary().c_str());

  util::Table table({"# taskgraphs", "Random", "LTF", "pUBS(imminent)",
                     "pUBS(all released)"});

  for (int graphs = 2; graphs <= max_graphs; graphs += 2) {
    std::vector<util::Accumulator> ratios(schemes.size());
    for (int s = 0; s < sets; ++s) {
      util::Rng rng(util::Rng::hash_combine(
          seed, static_cast<std::uint64_t>(graphs * 1000 + s)));
      tgff::WorkloadParams wp;
      wp.graph_count = graphs;
      wp.target_utilization = 0.7 / 0.6;  // 70% actual utilization
      wp.period_lo_s = 0.5;
      wp.period_hi_s = 5.0;
      const auto set = tgff::make_workload(wp, rng);

      sim::SimConfig config;
      config.horizon_s = cli.get_double("horizon");
      config.drain = true;
      config.seed = util::Rng::hash_combine(seed, 555u + static_cast<std::uint64_t>(s));
      config.record_profile = false;
      config.ac_model = sim::AcModel::kPerNodeMean;

      const double near_opt =
          analysis::near_optimal_energy_j(set, proc, config);

      for (std::size_t k = 0; k < schemes.size(); ++k) {
        core::Scheme scheme =
            make_ordering_scheme(schemes[k], proc.fmax_hz(), config.seed);
        sim::Simulator sim(set, proc, scheme, config);
        const auto result = sim.run();
        ratios[k].add(result.energy_j / near_opt);
      }
    }
    table.add_row({util::Table::num(static_cast<long long>(graphs)),
                   util::Table::num(ratios[0].mean(), 3),
                   util::Table::num(ratios[1].mean(), 3),
                   util::Table::num(ratios[2].mean(), 3),
                   util::Table::num(ratios[3].mean(), 3)});
  }
  table.print();
  std::printf(
      "\nShape check vs paper: ratios grow with the number of graphs; "
      "pUBS(all released) stays closest to 1.0.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
