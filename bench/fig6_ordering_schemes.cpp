// Reproduces Figure 6: energy consumption of the ordering schemes as the
// number of task graphs grows, normalized with respect to the
// near-optimal schedule obtained by removing precedence constraints
// within the task graphs. All schemes employ laEDF for frequency
// setting (paper §5, second simulation set).
//
// Shape to reproduce: all schemes diverge from near-optimal (ratio 1.0)
// as graphs are added, but pUBS over all released tasks stays closest,
// then pUBS on the most imminent graph, then LTF, then Random.
//
// The world comes from the scenario registry (`paper-fig6` by default;
// --scenario / --scenario.FIELD pick or reshape it). The graph-count
// axis overrides the scenario's graph count per cell; --horizon and the
// figure's drain-to-completion behaviour override its lifetime-style
// simulation window. One engine job = one (graph count, set) pair; it
// prices the near-optimal reference once and then all four ordering
// schemes on the same workload, so the normalization shares random
// numbers by construction.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/compare.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

bas::core::Scheme make_ordering_scheme(const std::string& which,
                                       double fmax_hz, std::uint64_t seed) {
  using namespace bas;
  if (which == "random") {
    return core::make_custom_scheme(
        "Random", dvs::make_la_edf(fmax_hz), sched::make_random_priority(seed),
        sched::make_history_estimator(), core::ReadyScope::kMostImminent);
  }
  if (which == "ltf") {
    return core::make_custom_scheme(
        "LTF", dvs::make_la_edf(fmax_hz), sched::make_ltf_priority(),
        sched::make_history_estimator(), core::ReadyScope::kMostImminent);
  }
  if (which == "pubs-imminent") {
    return core::make_custom_scheme(
        "pUBS/imminent", dvs::make_la_edf(fmax_hz), sched::make_pubs_priority(),
        sched::make_history_estimator(), core::ReadyScope::kMostImminent);
  }
  return core::make_custom_scheme(
      "pUBS/all", dvs::make_la_edf(fmax_hz), sched::make_pubs_priority(),
      sched::make_history_estimator(), core::ReadyScope::kAllReleased);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"sets", "10"},
                     {"seed", "6"},
                     {"max-graphs", "10"},
                     {"horizon", "60"},
                     {"full", "false"}},
                    "paper-fig6")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets =
      cli.get_flag("full") ? 40 : static_cast<int>(cli.get_int("sets"));
  const int max_graphs = static_cast<int>(cli.get_int("max-graphs"));

  // The taskgraphs axis owns the graph count; refuse the override
  // instead of silently ignoring it (use --max-graphs to size the axis).
  if (!cli.get("scenario.graphs").empty()) {
    std::fprintf(stderr,
                 "fig6 sweeps the graph count as its axis; use "
                 "--max-graphs instead of --scenario.graphs\n");
    return 2;
  }
  auto base = scenario::from_cli(cli);
  // The figure is an energy comparison over a fixed window, not a
  // run-to-battery-death: short horizon (the --horizon flag, unless a
  // --scenario.horizon override asked otherwise), drain in-flight work.
  if (cli.get("scenario.horizon").empty()) {
    base.sim.horizon_s = cli.get_double("horizon");
  }
  base.sim.drain = true;
  const auto proc = base.make_processor();
  const std::vector<std::string> schemes{"random", "ltf", "pubs-imminent",
                                         "pubs-all"};

  util::print_banner(
      "Figure 6: energy of ordering schemes normalized w.r.t. near-optimal");
  std::printf("config: %s\n\n", cli.summary().c_str());

  std::vector<int> graph_counts;
  std::vector<std::string> graph_labels;
  for (int graphs = 2; graphs <= max_graphs; graphs += 2) {
    graph_counts.push_back(graphs);
    graph_labels.push_back(std::to_string(graphs));
  }

  exp::ExperimentSpec spec;
  spec.title = "fig6_ordering_schemes";
  spec.config = cli.config_summary() + " | " + base.fingerprint();
  spec.grid.add("taskgraphs", graph_labels);
  spec.metrics = {"random", "ltf", "pubs_imminent", "pubs_all"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    util::Rng rng(job.seed);
    auto scn = base;
    scn.workload.graph_count = graph_counts[job.at(0)];
    const auto set = scn.make_workload(rng);
    const auto config = scn.sim_config(util::Rng::hash_combine(job.seed, 555u));

    const double near_opt = analysis::near_optimal_energy_j(set, proc, config);

    std::vector<double> ratios;
    ratios.reserve(schemes.size());
    for (const auto& which : schemes) {
      core::Scheme scheme =
          make_ordering_scheme(which, proc.fmax_hz(), config.seed);
      sim::Simulator sim(set, proc, scheme, config);
      ratios.push_back(sim.run().energy_j / near_opt);
    }
    return ratios;
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  util::Table table({"# taskgraphs", "Random", "LTF", "pUBS(imminent)",
                     "pUBS(all released)"});
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    table.add_row({result.grid().labels(c)[0],
                   util::Table::num(result.mean(c, 0), 3),
                   util::Table::num(result.mean(c, 1), 3),
                   util::Table::num(result.mean(c, 2), 3),
                   util::Table::num(result.mean(c, 3), 3)});
  }
  table.print();
  std::printf(
      "\nShape check vs paper: ratios grow with the number of graphs; "
      "pUBS(all released) stays closest to 1.0.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
