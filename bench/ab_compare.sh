#!/usr/bin/env bash
# Interleaved A/B comparison of two perf_hotpath binaries.
#
# Dev boxes swing tens of percent run-to-run (ROADMAP, "measurement
# noise"), so back-to-back whole-suite runs of base-then-candidate
# confound the code delta with machine drift. This driver interleaves
# instead: rep 1 of BASE, rep 1 of CAND, rep 2 of BASE, ... so both
# sides sample the same noise environment, then scores each cell
# best-of-N (the min-time / max-rate rep is the least-perturbed
# measurement of the code) and reports the median alongside it as the
# spread check — a best far above the median means the box was noisy
# and the run should be repeated.
#
#   bench/ab_compare.sh BASE_BIN CAND_BIN [--reps N] [-- perf args...]
#
#   BASE_BIN / CAND_BIN  two perf_hotpath binaries (may be the same
#                        file: self-compare, speedups should be ~1.0x)
#   --reps N             interleaved repetitions per side (default 5)
#   -- perf args...      forwarded to BOTH binaries verbatim, e.g.
#                        -- --sets 1 --scenarios paper-table2 \
#                           --schemes EDF,laEDF,BAS-2 --engine event
#
# Every invocation runs with --sets as given (default 1 rep inside the
# binary) and a fixed --seed, so each (side, rep) times the identical
# workload; the per-cell key is (scenario, scheme, battery, engine).
# Exit 1 if no cell could be parsed from both sides.
set -u

usage() { sed -n '2,30p' "$0"; exit 2; }

[ $# -ge 2 ] || usage
BASE_BIN=$1
CAND_BIN=$2
shift 2

REPS=5
EXTRA=()
while [ $# -gt 0 ]; do
  case "$1" in
    --reps) REPS=$2; shift 2 ;;
    --) shift; EXTRA=("$@"); break ;;
    *) echo "ab_compare: unknown option '$1'" >&2; usage ;;
  esac
done

for bin in "$BASE_BIN" "$CAND_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "ab_compare: '$bin' is not an executable" >&2
    exit 2
  fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ab_compare.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Interleave: rep r of base, then rep r of cand. Each run writes its
# bas-perf JSON into the scratch dir; stdout is kept for diagnosis.
for r in $(seq 1 "$REPS"); do
  for side in base cand; do
    bin=$BASE_BIN
    [ "$side" = cand ] && bin=$CAND_BIN
    json="$WORK/${side}_${r}.json"
    if ! "$bin" --json "$json" "${EXTRA[@]}" \
        >"$WORK/${side}_${r}.log" 2>&1; then
      echo "ab_compare: $side rep $r failed (log: see below)" >&2
      cat "$WORK/${side}_${r}.log" >&2
      exit 2
    fi
    echo "  ran $side rep $r/$REPS" >&2
  done
done

# Flat bas-perf cells, one per line: pull (scenario, scheme, battery,
# engine, steps_per_sec) into "side|key value" rows for awk.
extract() { # $1=side $2=json
  sed -n 's/.*"scenario": *"\([^"]*\)".*"scheme": *"\([^"]*\)".*"battery": *"\([^"]*\)".*"engine": *"\([^"]*\)".*"steps_per_sec": *\([0-9.eE+-]*\).*/'"$1"'|\1\/\2\/\3\/\4 \5/p' "$2"
}

ROWS="$WORK/rows.txt"
: >"$ROWS"
for r in $(seq 1 "$REPS"); do
  extract base "$WORK/base_${r}.json" >>"$ROWS"
  extract cand "$WORK/cand_${r}.json" >>"$ROWS"
done

# Per (side, cell): best = max steps/sec, median over the reps. Then
# per cell: speedup = cand_best / base_best.
awk -F'[| ]' '
  { vals[$1 "|" $2] = vals[$1 "|" $2] " " $3; cells[$2] = 1 }
  function best(list,   n, a, i, m) {
    n = split(list, a, " "); m = 0
    for (i = 1; i <= n; ++i) if (a[i] + 0 > m) m = a[i] + 0
    return m
  }
  function median(list,   n, a, i, j, t) {
    n = split(list, a, " ")
    for (i = 1; i <= n; ++i)            # insertion sort, tiny n
      for (j = i; j > 1 && a[j] + 0 < a[j-1] + 0; --j) {
        t = a[j]; a[j] = a[j-1]; a[j-1] = t
      }
    if (n % 2) return a[(n + 1) / 2] + 0
    return (a[n / 2] + a[n / 2 + 1]) / 2.0
  }
  END {
    printf "%-44s %12s %12s %8s %14s\n", "cell", "base_best", "cand_best", "speedup", "median_spread"
    n_cells = 0
    for (c in cells) {
      bb = best(vals["base|" c]); cb = best(vals["cand|" c])
      if (bb <= 0 || cb <= 0) continue
      bm = median(vals["base|" c]); cm = median(vals["cand|" c])
      ++n_cells; sum += cb / bb
      # median_spread: how far best sits above median on each side —
      # large values mean a noisy box, distrust the speedup.
      printf "%-44s %12.4g %12.4g %7.3fx  %5.1f%%/%5.1f%%\n", c, bb, cb, \
             (cb / bb), (bm > 0 ? 100 * (bb - bm) / bm : 0), \
             (cm > 0 ? 100 * (cb - cm) / cm : 0)
    }
    if (n_cells == 0) {
      print "ab_compare: no cells parsed from both sides" > "/dev/stderr"
      exit 1
    }
    printf "%-44s %12s %12s %7.3fx\n", "geomean-ish (arith mean of ratios)", "", "", sum / n_cells
  }
' "$ROWS"
