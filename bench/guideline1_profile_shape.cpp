// Scheduling Guideline 1 (paper §3): "A non-increasing discharge current
// profile is optimal for maximizing battery lifetime."
//
// The guideline is a statement about serving a fixed demand: among all
// orders of the same current segments, the non-increasing one leaves the
// battery in the best state (equivalently: if any order avoids cutoff,
// the non-increasing order does). This bench serves one identical-demand
// staircase pass in three arrangements — non-increasing, zig-zag,
// non-decreasing — then drains whatever is left at a high rate (no recovery window), and
// reports the total extractable charge per arrangement. Models with
// recovery dynamics (KiBaM, diffusion, stochastic) reward the guideline;
// the ideal bucket cannot distinguish the orders, and Peukert (no
// recovery, only rate penalty) is nearly indifferent too.
//
// The battery ladder comes from the scenario registry's battery axis
// (exp::battery_labels), so the bench can never drift from the models
// the lifetime scenarios use. The (model) sweep runs on the experiment
// engine: one job per battery model evaluates all three arrangements on
// private instances, so the bench speaks the shared campaign interface
// (--jobs/--csv/--shard/--cache). For the matching *workload* stress —
// schemes compared where profile shape decides the gap — see the
// `paper-guideline1` scenario in the gallery.

#include <cstdio>
#include <vector>

#include "battery/lifetime.hpp"
#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

double pass_and_drain_mah(bas::bat::Battery& battery,
                          const bas::bat::LoadProfile& pass,
                          double drain_current_a) {
  pass.discharge_into(battery);
  if (!battery.empty()) {
    bas::bat::LoadProfile::constant(drain_current_a, 100.0)
        .discharge_repeating(battery, 1e7);
  }
  return battery.charge_delivered_mah();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(
                    {{"step-min", "12"}, {"drain", "2.5"}}));
  const double step_s = cli.get_double("step-min") * 60.0;
  const double drain_a = cli.get_double("drain");

  // One staircase: 1.8 A down to 0.3 A in 6 steps of `step_s` each —
  // 6.3 A-steps of demand, ~4500 C at the default step, inside the
  // 7200 C capacity so every arrangement completes the pass.
  const std::vector<double> levels{1.8, 1.5, 1.2, 0.9, 0.6, 0.3};

  bat::LoadProfile decreasing;
  for (double i : levels) {
    decreasing.add(step_s, i);
  }
  const bat::LoadProfile increasing = decreasing.reversed();
  bat::LoadProfile zigzag;
  for (std::size_t k = 0; k < levels.size(); ++k) {
    // 1.8, 0.3, 1.5, 0.6, 1.2, 0.9 — same multiset of levels.
    zigzag.add(step_s, k % 2 == 0 ? levels[k / 2]
                                  : levels[levels.size() - 1 - k / 2]);
  }

  util::print_banner(
      "Guideline 1: equal-demand staircase order vs total extractable charge");
  std::printf(
      "staircase of %zu levels x %.0f min (%.0f C demand), then drained at "
      "%.1f A\n\n",
      levels.size(), step_s / 60.0,
      decreasing.total_charge_c(), drain_a);

  exp::ExperimentSpec spec;
  spec.title = "guideline1_profile_shape";
  spec.config = cli.config_summary();
  spec.grid = exp::Grid{std::vector<exp::Axis>{exp::battery_axis()}};
  spec.metrics = {"non_increasing_mah", "zigzag_mah", "non_decreasing_mah",
                  "gain_pct"};
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    const auto& label = exp::battery_labels()[job.at(0)];
    const double down =
        pass_and_drain_mah(*exp::make_battery(label), decreasing, drain_a);
    const double mix =
        pass_and_drain_mah(*exp::make_battery(label), zigzag, drain_a);
    const double up =
        pass_and_drain_mah(*exp::make_battery(label), increasing, drain_a);
    return {down, mix, up, 100.0 * (down / up - 1.0)};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));

  util::Table table({"model", "non-increasing mAh", "zig-zag mAh",
                     "non-decreasing mAh", "guideline gain"});
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    table.add_row({result.grid().labels(c)[0],
                   util::Table::num(result.mean(c, 0), 1),
                   util::Table::num(result.mean(c, 1), 1),
                   util::Table::num(result.mean(c, 2), 1),
                   util::Table::num(result.mean(c, 3), 2) + "%"});
  }
  table.print();
  std::printf(
      "\nShape check: the kinetic family (kibam/diffusion/stochastic) "
      "extracts the most charge under the non-increasing order; ideal and "
      "Peukert are (near-)indifferent.\n");

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
