// Scheduler overhead microbenchmarks (google-benchmark).
//
// The paper argues its two-step methodology is cheap enough for dynamic
// (online) use, unlike cost-function optimization over battery models.
// These benchmarks measure the per-decision costs: frequency selection
// (ccEDF / laEDF), pUBS scoring, the feasibility check, and a whole
// simulated second of BAS-2 scheduling.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/scheme.hpp"
#include "dvs/policy.hpp"
#include "dvs/realizer.hpp"
#include "sched/feasibility.hpp"
#include "sched/priority.hpp"
#include "sim/simulator.hpp"
#include "tgff/workload.hpp"
#include "util/rng.hpp"

namespace {

using namespace bas;

std::vector<dvs::GraphStatus> make_statuses(int n) {
  std::vector<dvs::GraphStatus> statuses;
  util::Rng rng(5);
  for (int g = 0; g < n; ++g) {
    dvs::GraphStatus s;
    s.graph = g;
    s.period_s = rng.uniform(0.1, 1.0);
    s.abs_deadline_s = s.period_s;
    s.wc_total_cycles = rng.uniform(1e7, 1e8);
    s.cc_wc_cycles = s.wc_total_cycles * rng.uniform(0.5, 1.0);
    s.remaining_wc_cycles = s.cc_wc_cycles * rng.uniform(0.2, 1.0);
    statuses.push_back(s);
  }
  return statuses;
}

void BM_CcEdfSelect(benchmark::State& state) {
  auto policy = dvs::make_cc_edf(1e9);
  const auto statuses = make_statuses(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(statuses, 0.01));
  }
}
BENCHMARK(BM_CcEdfSelect)->Arg(3)->Arg(10)->Arg(30);

void BM_LaEdfSelect(benchmark::State& state) {
  auto policy = dvs::make_la_edf(1e9);
  const auto statuses = make_statuses(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(statuses, 0.01));
  }
}
BENCHMARK(BM_LaEdfSelect)->Arg(3)->Arg(10)->Arg(30);

void BM_PubsScore(benchmark::State& state) {
  auto pubs = sched::make_pubs_priority();
  sched::Candidate c;
  c.wc_cycles = 1e7;
  c.estimate_cycles = 6e6;
  c.actual_cycles = 5e6;
  c.graph_abs_deadline_s = 1.0;
  c.graph_remaining_wc_cycles = 5e7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pubs->score(c, 0.1));
  }
}
BENCHMARK(BM_PubsScore);

void BM_FeasibilityCheck(benchmark::State& state) {
  auto statuses = make_statuses(static_cast<int>(state.range(0)));
  std::sort(statuses.begin(), statuses.end(),
            [](const dvs::GraphStatus& a, const dvs::GraphStatus& b) {
              return a.abs_deadline_s < b.abs_deadline_s;
            });
  const int pos = static_cast<int>(statuses.size()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::feasibility_check(statuses, pos, 1e6, 8e8, 0.01));
  }
}
BENCHMARK(BM_FeasibilityCheck)->Arg(3)->Arg(10)->Arg(30);

void BM_Realize(benchmark::State& state) {
  const auto proc = dvs::Processor::paper_default();
  double f = 0.51e9;
  for (auto _ : state) {
    f = f > 0.99e9 ? 0.51e9 : f + 1e6;
    benchmark::DoNotOptimize(dvs::realize(proc, f));
  }
}
BENCHMARK(BM_Realize);

void BM_SimulatedSecondBas2(benchmark::State& state) {
  util::Rng rng(9);
  tgff::WorkloadParams wp;
  wp.graph_count = static_cast<int>(state.range(0));
  wp.target_utilization = 0.9;
  wp.period_lo_s = 0.05;
  wp.period_hi_s = 0.2;
  const auto set = tgff::make_workload(wp, rng);
  const auto proc = dvs::Processor::paper_default();
  for (auto _ : state) {
    sim::SimConfig config;
    config.horizon_s = 1.0;
    config.record_profile = false;
    core::Scheme scheme =
        core::make_scheme(core::SchemeKind::kBas2, proc.fmax_hz(), 1);
    sim::Simulator sim(set, proc, scheme, config);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatedSecondBas2)->Arg(3)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
