// Scheduler overhead microbenchmarks.
//
// The paper argues its two-step methodology is cheap enough for dynamic
// (online) use, unlike cost-function optimization over battery models.
// These benchmarks measure the per-decision costs: frequency selection
// (ccEDF / laEDF), pUBS scoring, the feasibility check, and a whole
// simulated second of BAS-2 scheduling.
//
// Built against google-benchmark when CMake finds it
// (BAS_HAVE_GOOGLE_BENCHMARK); otherwise a hand-rolled steady_clock
// harness below implements the small slice of the benchmark API these
// functions use (State iteration, range(0), DoNotOptimize, the
// BENCHMARK registration macros), so the binary always builds and runs.

#ifdef BAS_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#else
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#endif

#include <algorithm>
#include <vector>

#ifndef BAS_HAVE_GOOGLE_BENCHMARK
namespace benchmark {

/// Range-for drives the measured loop exactly like google-benchmark's
/// State: `for (auto _ : state)` runs a preset number of iterations.
class State {
 public:
  State(std::int64_t iterations, std::vector<std::int64_t> ranges)
      : iterations_(iterations), ranges_(std::move(ranges)) {}

  /// The `unused` attribute keeps `for (auto _ : state)` free of
  /// -Wunused warnings (google-benchmark does the same).
  struct __attribute__((unused)) Value {};
  struct Iterator {
    std::int64_t left;
    bool operator!=(const Iterator& other) const { return left != other.left; }
    void operator++() { --left; }
    Value operator*() const { return Value{}; }
  };
  Iterator begin() const { return {iterations_}; }
  Iterator end() const { return {0}; }

  std::int64_t range(std::size_t i = 0) const { return ranges_.at(i); }

 private:
  std::int64_t iterations_;
  std::vector<std::int64_t> ranges_;
};

template <class T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

struct Registration {
  std::string name;
  void (*fn)(State&);
  std::vector<std::int64_t> args;  // one timed instance per arg; empty = one

  Registration* Arg(std::int64_t arg) {
    args.push_back(arg);
    return this;
  }
};

inline std::vector<Registration*>& registry() {
  static std::vector<Registration*> benchmarks;
  return benchmarks;
}

inline Registration* register_benchmark(const char* name, void (*fn)(State&)) {
  auto* registration = new Registration{name, fn, {}};
  registry().push_back(registration);
  return registration;
}

inline double time_once(void (*fn)(State&),
                        const std::vector<std::int64_t>& ranges,
                        std::int64_t iterations) {
  State state(iterations, ranges);
  const auto start = std::chrono::steady_clock::now();
  fn(state);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline void run_instance(const Registration& registration,
                         const std::vector<std::int64_t>& ranges,
                         const std::string& label) {
  // Calibrate: grow the iteration count until the timed region is long
  // enough (>= 50 ms) to swamp clock granularity.
  std::int64_t iterations = 1;
  double elapsed = time_once(registration.fn, ranges, iterations);
  while (elapsed < 0.05 && iterations < (std::int64_t{1} << 40)) {
    const double target = 0.1;
    std::int64_t next =
        elapsed > 0.0
            ? static_cast<std::int64_t>(iterations * (target / elapsed) + 1)
            : iterations * 10;
    next = std::min(next, iterations * 10);
    iterations = std::max(next, iterations + 1);
    elapsed = time_once(registration.fn, ranges, iterations);
  }
  std::printf("%-32s %14.1f ns/op %12lld iters\n", label.c_str(),
              1e9 * elapsed / static_cast<double>(iterations),
              static_cast<long long>(iterations));
}

inline void run_all() {
  std::printf("%-32s %20s %18s\n", "benchmark", "time", "iterations");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (const auto* registration : registry()) {
    if (registration->args.empty()) {
      run_instance(*registration, {}, registration->name);
    } else {
      for (const auto arg : registration->args) {
        run_instance(*registration, {arg},
                     registration->name + "/" + std::to_string(arg));
      }
    }
  }
}

}  // namespace benchmark

#define BENCHMARK(fn)                                \
  static ::benchmark::Registration* fn##_registration \
      [[maybe_unused]] = ::benchmark::register_benchmark(#fn, fn)
#define BENCHMARK_MAIN() \
  int main() {           \
    ::benchmark::run_all(); \
    return 0;            \
  }
#endif  // !BAS_HAVE_GOOGLE_BENCHMARK

#include "core/scheme.hpp"
#include "dvs/policy.hpp"
#include "dvs/realizer.hpp"
#include "scenario/scenario.hpp"
#include "sched/feasibility.hpp"
#include "sched/priority.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sort.hpp"

namespace {

using namespace bas;

std::vector<dvs::GraphStatus> make_statuses(int n) {
  std::vector<dvs::GraphStatus> statuses;
  util::Rng rng(5);
  for (int g = 0; g < n; ++g) {
    dvs::GraphStatus s;
    s.graph = g;
    s.period_s = rng.uniform(0.1, 1.0);
    s.abs_deadline_s = s.period_s;
    s.wc_total_cycles = rng.uniform(1e7, 1e8);
    s.cc_wc_cycles = s.wc_total_cycles * rng.uniform(0.5, 1.0);
    s.remaining_wc_cycles = s.cc_wc_cycles * rng.uniform(0.2, 1.0);
    statuses.push_back(s);
  }
  return statuses;
}

void BM_CcEdfSelect(benchmark::State& state) {
  auto policy = dvs::make_cc_edf(1e9);
  const auto statuses = make_statuses(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(statuses, 0.01));
  }
}
BENCHMARK(BM_CcEdfSelect)->Arg(3)->Arg(10)->Arg(30);

void BM_LaEdfSelect(benchmark::State& state) {
  auto policy = dvs::make_la_edf(1e9);
  const auto statuses = make_statuses(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(statuses, 0.01));
  }
}
BENCHMARK(BM_LaEdfSelect)->Arg(3)->Arg(10)->Arg(30);

void BM_PubsScore(benchmark::State& state) {
  auto pubs = sched::make_pubs_priority();
  sched::Candidate c;
  c.wc_cycles = 1e7;
  c.estimate_cycles = 6e6;
  c.actual_cycles = 5e6;
  c.graph_abs_deadline_s = 1.0;
  c.graph_remaining_wc_cycles = 5e7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pubs->score(c, 0.1));
  }
}
BENCHMARK(BM_PubsScore);

void BM_FeasibilityCheck(benchmark::State& state) {
  auto statuses = make_statuses(static_cast<int>(state.range(0)));
  std::sort(statuses.begin(), statuses.end(),
            [](const dvs::GraphStatus& a, const dvs::GraphStatus& b) {
              return a.abs_deadline_s < b.abs_deadline_s;
            });
  const int pos = static_cast<int>(statuses.size()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::feasibility_check(statuses, pos, 1e6, 8e8, 0.01));
  }
}
BENCHMARK(BM_FeasibilityCheck)->Arg(3)->Arg(10)->Arg(30);

void BM_Realize(benchmark::State& state) {
  const auto proc = scenario::make_processor("paper");
  double f = 0.51e9;
  for (auto _ : state) {
    f = f > 0.99e9 ? 0.51e9 : f + 1e6;
    benchmark::DoNotOptimize(dvs::realize(proc, f));
  }
}
BENCHMARK(BM_Realize);

void BM_EdfMaintainIncremental(benchmark::State& state) {
  // The event engine's maintained EDF order: one lower_bound insert at
  // release, one erase at completion, against a list of `n` incomplete
  // graphs. Deterministic churn (LCG) so every build times identical
  // work. Compare with BM_EdfRebuildFull at the same n — the per-step
  // cost the incremental path replaces.
  const int n = static_cast<int>(state.range(0));
  std::vector<double> deadlines(static_cast<std::size_t>(n));
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(lcg >> 11) / 9.0e18;
  };
  for (auto& d : deadlines) {
    d = next();
  }
  const auto less = [&deadlines](int a, int b) {
    const double da = deadlines[static_cast<std::size_t>(a)];
    const double db = deadlines[static_cast<std::size_t>(b)];
    return da != db ? da < db : a < b;
  };
  std::vector<int> edf;
  edf.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    util::insert_sorted(edf, g, less);
  }
  int g = 0;
  for (auto _ : state) {
    // One release + one completion of a random graph: erase, re-key,
    // re-insert — the steady-state churn of a saturated decision loop.
    edf.erase(std::find(edf.begin(), edf.end(), g));
    deadlines[static_cast<std::size_t>(g)] = next();
    util::insert_sorted(edf, g, less);
    benchmark::DoNotOptimize(edf.data());
    g = (g + 1) % n;
  }
}
BENCHMARK(BM_EdfMaintainIncremental)->Arg(8)->Arg(64)->Arg(256);

void BM_EdfRebuildFull(benchmark::State& state) {
  // What the decision point used to do before the incremental order:
  // rebuild the candidate list and insertion_sort it from scratch,
  // every step, on the same churn as BM_EdfMaintainIncremental.
  const int n = static_cast<int>(state.range(0));
  std::vector<double> deadlines(static_cast<std::size_t>(n));
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(lcg >> 11) / 9.0e18;
  };
  for (auto& d : deadlines) {
    d = next();
  }
  const auto less = [&deadlines](int a, int b) {
    const double da = deadlines[static_cast<std::size_t>(a)];
    const double db = deadlines[static_cast<std::size_t>(b)];
    return da != db ? da < db : a < b;
  };
  std::vector<int> edf;
  int g = 0;
  for (auto _ : state) {
    deadlines[static_cast<std::size_t>(g)] = next();
    edf.clear();
    for (int i = 0; i < n; ++i) {
      edf.push_back(i);
    }
    util::insertion_sort(edf, less);
    benchmark::DoNotOptimize(edf.data());
    g = (g + 1) % n;
  }
}
BENCHMARK(BM_EdfRebuildFull)->Arg(8)->Arg(64)->Arg(256);

void BM_SimulatedSecondBas2(benchmark::State& state) {
  // The multimedia scenario's short frame periods pack the densest
  // decision stream per simulated second of any preset.
  util::Rng rng(9);
  auto scn = scenario::scenario("multimedia-pipeline");
  scn.workload.graph_count = static_cast<int>(state.range(0));
  const auto set = scn.make_workload(rng);
  const auto proc = scn.make_processor();
  for (auto _ : state) {
    sim::SimConfig config = scn.sim_config(1);
    config.horizon_s = 1.0;
    config.drain = true;
    core::Scheme scheme =
        core::make_scheme(core::SchemeKind::kBas2, proc.fmax_hz(), 1);
    sim::Simulator sim(set, proc, scheme, config);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatedSecondBas2)->Arg(3)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
