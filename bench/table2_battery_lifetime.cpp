// Reproduces Table 2: charge delivered (mAh) and battery lifetime (min)
// for the five scheduling schemes at 70% utilization.
//
//   Scheme   DVS     Priority  Ready list       (paper, 2000 mAh cell)
//   EDF      none    Random    most imminent    1567 mAh    74 min
//   ccEDF    ccEDF   Random    most imminent    1608 mAh   101 min
//   laEDF    laEDF   Random    most imminent    1607 mAh   120 min
//   BAS-1    laEDF   pUBS      most imminent    1723 mAh   137 min
//   BAS-2    laEDF   pUBS      all released     1757 mAh   148 min
//
// Our substrate is a reimplementation (simulator + calibrated battery
// models), so absolute numbers differ; the shape to reproduce is the
// ordering EDF < ccEDF < laEDF < BAS-1 < BAS-2 in lifetime, with BAS-2
// up to ~25% over laEDF and ~2x over EDF-without-DVS.
//
// The world comes from the scenario registry (default: the paper's
// `paper-table2` preset; see EXPERIMENTS.md for the utilization-basis
// calibration). Any preset or per-field override runs the same table:
//
//   ./table2_battery_lifetime --scenario bursty
//   ./table2_battery_lifetime --scenario.utilization=0.9
//
// Results are averaged over `--sets` random task-graph sets (the paper
// uses 100; default here is smaller for a quick run — pass --full). The
// (scheme x set) sweep runs on the experiment engine: --jobs N shards it
// across threads with bit-identical results for any N.

#include <cstdio>
#include <vector>

#include "exp/factories.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv,
                util::Cli::with_bench_defaults(scenario::with_scenario_defaults(
                    {{"sets", "12"}, {"seed", "2006"}, {"full", "false"}},
                    "paper-table2")));
  if (scenario::handle_list_request(cli)) {
    return 0;
  }
  const int sets =
      cli.get_flag("full") ? 100 : static_cast<int>(cli.get_int("sets"));
  const auto scn = scenario::from_cli(cli);
  const auto proc = scn.make_processor();

  util::print_banner("Table 2: battery lifetime by scheduling scheme");
  std::printf("config: %s\nscenario: %s\n\n", cli.summary().c_str(),
              scn.fingerprint().c_str());

  exp::ExperimentSpec spec;
  spec.title = "table2_battery_lifetime";
  spec.config = cli.config_summary() + " | " + scn.fingerprint();
  spec.grid.add("scheme", exp::scheme_labels());
  spec.metrics = {"delivered_mah", "lifetime_min", "energy_j", "misses"};
  spec.replicates = sets;
  spec.seed = cli.get_u64("seed");
  spec.run = [&](const exp::Job& job) -> std::vector<double> {
    // Workload and actual-computation draws key off the replicate seed
    // only, so every scheme sees the same random task-graph sets (CRN).
    util::Rng rng(job.replicate_seed);
    const auto set = scn.make_workload(rng);
    const auto config =
        scn.sim_config(util::Rng::hash_combine(job.replicate_seed, 1000u));
    const auto cell = scn.make_battery();
    const auto r = sim::simulate_scheme(
        set, proc, exp::scheme_kind_at(job.at(0)), config, cell.get());
    return {r.battery_delivered_mah, r.battery_lifetime_s / 60.0, r.energy_j,
            static_cast<double>(r.deadline_misses)};
  };

  const auto result = exp::run_experiment(spec, exp::options_from_cli(cli));
  const std::size_t kLife = result.metric_index("lifetime_min");
  const std::size_t kDelivered = result.metric_index("delivered_mah");
  const std::size_t kMisses = result.metric_index("misses");

  util::Table table({"Scheme", "DVS Algo.", "Priority fct", "Ready list",
                     "Charge Delivered (mAh)", "Battery Life (min)",
                     "vs EDF", "misses"});
  const char* dvs_names[] = {"None", "ccEDF", "laEDF", "laEDF", "laEDF"};
  const char* prio_names[] = {"Random", "Random", "Random", "pUBS", "pUBS"};
  const char* ready_names[] = {"most imminent", "most imminent",
                               "most imminent", "most imminent",
                               "all released"};
  const double edf_life = result.mean(0, kLife);
  for (std::size_t k = 0; k < result.cell_count(); ++k) {
    table.add_row(
        {result.grid().labels(k)[0], dvs_names[k], prio_names[k],
         ready_names[k], util::Table::num(result.mean(k, kDelivered), 0),
         util::Table::num(result.mean(k, kLife), 0),
         util::Table::num(result.mean(k, kLife) / edf_life, 2) + "x",
         util::Table::num(
             static_cast<long long>(result.sum(k, kMisses)))});
  }
  table.print();

  const double laedf_life = result.mean(2, kLife);
  const double bas2_life = result.mean(4, kLife);
  std::printf(
      "\nBAS-2 vs laEDF: +%.1f%% lifetime (paper: up to +23.3%%)\n"
      "BAS-2 vs ccEDF: +%.1f%% lifetime (paper: up to +47%%)\n"
      "BAS-2 vs EDF-noDVS: +%.1f%% lifetime (paper: up to +100%%)\n",
      100.0 * (bas2_life / laedf_life - 1.0),
      100.0 * (bas2_life / result.mean(1, kLife) - 1.0),
      100.0 * (bas2_life / edf_life - 1.0));

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    exp::write(result, csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
