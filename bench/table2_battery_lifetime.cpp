// Reproduces Table 2: charge delivered (mAh) and battery lifetime (min)
// for the five scheduling schemes at 70% utilization.
//
//   Scheme   DVS     Priority  Ready list       (paper, 2000 mAh cell)
//   EDF      none    Random    most imminent    1567 mAh    74 min
//   ccEDF    ccEDF   Random    most imminent    1608 mAh   101 min
//   laEDF    laEDF   Random    most imminent    1607 mAh   120 min
//   BAS-1    laEDF   pUBS      most imminent    1723 mAh   137 min
//   BAS-2    laEDF   pUBS      all released     1757 mAh   148 min
//
// Our substrate is a reimplementation (simulator + calibrated battery
// models), so absolute numbers differ; the shape to reproduce is the
// ordering EDF < ccEDF < laEDF < BAS-1 < BAS-2 in lifetime, with BAS-2
// up to ~25% over laEDF and ~2x over EDF-without-DVS.
//
// Results are averaged over `--sets` random task-graph sets (the paper
// uses 100; default here is smaller for a quick run — pass --full).

#include <cstdio>
#include <vector>

#include "analysis/compare.hpp"
#include "battery/kibam.hpp"
#include "battery/stochastic.hpp"
#include "tgff/workload.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bas;
  util::Cli cli(argc, argv, {{"sets", "12"},
                             {"graphs", "3"},
                             {"seed", "2006"},
                             {"utilization", "0.7"},
                             {"util-basis", "actual"},
                             {"battery", "kibam"},
                             {"full", "0"},
                             {"csv", ""}});
  const int sets = cli.get_flag("full") ? 100 : static_cast<int>(cli.get_int("sets"));
  const int graphs = static_cast<int>(cli.get_int("graphs"));
  const auto seed = cli.get_u64("seed");

  // The paper's anchors (EDF: 74 min / 1567 mAh at "70% utilization")
  // are only reproducible when 70% is the *actual* utilization; with
  // actuals averaging 0.6*wc that corresponds to a worst-case
  // utilization of ~1.17. Pass --util-basis worst-case for the strict
  // EDF-guaranteed regime instead. See EXPERIMENTS.md.
  const double mean_frac = 0.6;  // mean of U(0.2, 1.0)
  double utilization = cli.get_double("utilization");
  if (cli.get("util-basis") == "actual") {
    utilization /= mean_frac;
  }

  const auto proc = dvs::Processor::paper_default();
  std::unique_ptr<bat::Battery> battery;
  if (cli.get("battery") == "stochastic") {
    battery = std::make_unique<bat::StochasticBattery>(bat::StochasticParams{});
  } else {
    battery =
        std::make_unique<bat::KibamBattery>(bat::KibamParams::paper_aaa_nimh());
  }

  util::print_banner("Table 2: battery lifetime by scheduling scheme");
  std::printf("config: %s\n\n", cli.summary().c_str());

  const auto kinds = core::table2_schemes();
  std::vector<util::Accumulator> delivered(kinds.size());
  std::vector<util::Accumulator> lifetime(kinds.size());
  std::vector<util::Accumulator> energy(kinds.size());
  std::vector<std::size_t> misses(kinds.size(), 0);

  for (int s = 0; s < sets; ++s) {
    util::Rng rng(util::Rng::hash_combine(seed, static_cast<std::uint64_t>(s)));
    tgff::WorkloadParams wp;
    wp.graph_count = graphs;
    wp.target_utilization = utilization;
    wp.period_lo_s = 0.5;
    wp.period_hi_s = 5.0;
    const auto set = tgff::make_workload(wp, rng);

    sim::SimConfig config;
    config.horizon_s = 24.0 * 3600.0;  // the battery dies long before
    config.drain = false;
    config.seed = util::Rng::hash_combine(seed, 1000u + static_cast<std::uint64_t>(s));
    config.record_profile = false;
    config.record_trace = false;
    config.ac_model = sim::AcModel::kPerNodeMean;

    const auto outcomes =
        analysis::compare_schemes(set, proc, kinds, config, battery.get());
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      delivered[k].add(outcomes[k].result.battery_delivered_mah);
      lifetime[k].add(outcomes[k].result.battery_lifetime_s / 60.0);
      energy[k].add(outcomes[k].result.energy_j);
      misses[k] += outcomes[k].result.deadline_misses;
    }
  }

  util::Table table({"Scheme", "DVS Algo.", "Priority fct", "Ready list",
                     "Charge Delivered (mAh)", "Battery Life (min)",
                     "vs EDF", "misses"});
  const char* dvs_names[] = {"None", "ccEDF", "laEDF", "laEDF", "laEDF"};
  const char* prio_names[] = {"Random", "Random", "Random", "pUBS", "pUBS"};
  const char* ready_names[] = {"most imminent", "most imminent",
                               "most imminent", "most imminent",
                               "all released"};
  const double edf_life = lifetime[0].mean();
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    table.add_row({core::to_string(kinds[k]), dvs_names[k], prio_names[k],
                   ready_names[k], util::Table::num(delivered[k].mean(), 0),
                   util::Table::num(lifetime[k].mean(), 0),
                   util::Table::num(lifetime[k].mean() / edf_life, 2) + "x",
                   util::Table::num(static_cast<long long>(misses[k]))});
  }
  table.print();

  const double laedf_life = lifetime[2].mean();
  const double bas2_life = lifetime[4].mean();
  std::printf(
      "\nBAS-2 vs laEDF: +%.1f%% lifetime (paper: up to +23.3%%)\n"
      "BAS-2 vs ccEDF: +%.1f%% lifetime (paper: up to +47%%)\n"
      "BAS-2 vs EDF-noDVS: +%.1f%% lifetime (paper: up to +100%%)\n",
      100.0 * (bas2_life / laedf_life - 1.0),
      100.0 * (bas2_life / lifetime[1].mean() - 1.0),
      100.0 * (bas2_life / edf_life - 1.0));

  if (const auto csv = cli.get("csv"); !csv.empty()) {
    table.write_csv(csv);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
