#include "arrival/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/text.hpp"

namespace bas::arrival {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTwoPi = 6.283185307179586476925286766559;



void require(bool ok, const std::string& what) {
  if (!ok) {
    throw std::invalid_argument("arrival: " + what);
  }
}

// ---- trace parsing ---------------------------------------------------

/// Splits `text` on newlines, then on ','/';' within a line; '#' starts
/// a comment. Every non-empty token must parse as a finite, non-negative
/// number. Returned times are sorted ascending.
std::vector<double> parse_trace_text(const std::string& text,
                                     const std::string& origin) {
  std::vector<double> times;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    for (char& c : line) {
      if (c == ',' || c == ';') {
        c = ' ';
      }
    }
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      char* end = nullptr;
      const double value = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || !std::isfinite(value) ||
          value < 0.0) {
        throw std::invalid_argument(
            "arrival: trace " + origin + " has a bad release time '" + token +
            "' (need finite, non-negative numbers)");
      }
      times.push_back(value);
    }
  }
  if (times.empty()) {
    throw std::invalid_argument("arrival: trace " + origin +
                                " contains no release times");
  }
  std::sort(times.begin(), times.end());
  // Collapse tied timestamps (routine in measured logs): the simulator
  // keeps one instance per graph in flight, so a duplicate release
  // would only supersede its twin instantly and log a spurious
  // deadline miss — and ArrivalProcess promises strictly increasing
  // releases.
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

/// Resolves the `trace` param: "@path" loads the file (memoized per
/// path within the process — campaign jobs re-make processes per run),
/// anything else is parsed inline.
std::vector<double> load_trace(const std::string& trace) {
  require(!trace.empty(),
          "trace-replay needs --scenario.arrival.trace (inline "
          "\"t0;t1;...\" or \"@file.csv\")");
  if (trace.front() != '@') {
    return parse_trace_text(trace, "(inline)");
  }
  const std::string path = trace.substr(1);
  static std::mutex mutex;
  static std::map<std::string, std::vector<double>> memo;
  std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = memo.find(path); it != memo.end()) {
    return it->second;
  }
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument("arrival: cannot open trace file '" + path +
                                "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  auto times = parse_trace_text(content.str(), "'" + path + "'");
  memo.emplace(path, times);
  return times;
}

// ---- models ----------------------------------------------------------

class Periodic final : public ArrivalProcess {
 public:
  explicit Periodic(double period_s) : period_s_(period_s) {}
  double next_release(double, util::Rng&) override {
    // Multiply, never accumulate: release k is the same double the
    // pre-subsystem simulator computed as released_count * period.
    return static_cast<double>(count_++) * period_s_;
  }
  std::string label() const override { return "periodic"; }

 private:
  double period_s_;
  std::uint64_t count_ = 0;
};

class PeriodicJitter final : public ArrivalProcess {
 public:
  PeriodicJitter(double period_s, double jitter_frac)
      : period_s_(period_s), jitter_s_(jitter_frac * period_s) {}
  double next_release(double, util::Rng& rng) override {
    const double nominal = static_cast<double>(count_++) * period_s_;
    return nominal + rng.uniform(0.0, jitter_s_);
  }
  std::string label() const override { return "periodic-jitter"; }

 private:
  double period_s_;
  double jitter_s_;
  std::uint64_t count_ = 0;
};

class Sporadic final : public ArrivalProcess {
 public:
  Sporadic(double period_s, double gap_frac)
      : period_s_(period_s), mean_gap_s_(gap_frac * period_s) {}
  double next_release(double prev_release, util::Rng& rng) override {
    if (prev_release < 0.0) {
      return 0.0;
    }
    const double gap =
        mean_gap_s_ > 0.0 ? rng.exponential(mean_gap_s_) : 0.0;
    return prev_release + period_s_ + gap;
  }
  std::string label() const override { return "sporadic"; }

 private:
  double period_s_;
  double mean_gap_s_;
};

class Poisson final : public ArrivalProcess {
 public:
  Poisson(double period_s, double rate_scale)
      : mean_gap_s_(period_s / rate_scale) {}
  double next_release(double prev_release, util::Rng& rng) override {
    const double start = prev_release < 0.0 ? 0.0 : prev_release;
    return start + rng.exponential(mean_gap_s_);
  }
  std::string label() const override { return "poisson"; }

 private:
  double mean_gap_s_;
};

/// Inhomogeneous Poisson by thinning (Lewis & Shedler): candidate gaps
/// are drawn from the homogeneous process at the rate ceiling and each
/// candidate survives with probability rate(t) / rate_max.
class Ippp final : public ArrivalProcess {
 public:
  Ippp(double period_s, const Params& p)
      : base_rate_(p.rate_scale / period_s),
        diurnal_amp_(p.diurnal_amp),
        diurnal_period_s_(p.diurnal_period_s),
        burst_factor_(p.burst_period_s > 0.0 ? p.burst_factor : 1.0),
        burst_period_s_(p.burst_period_s),
        burst_on_s_(p.burst_period_s * p.burst_duty) {
    rate_max_ = base_rate_ * (1.0 + diurnal_amp_) * burst_factor_;
  }

  double rate_at(double t) const {
    double rate = base_rate_ *
                  (1.0 + diurnal_amp_ * std::sin(kTwoPi * t /
                                                 diurnal_period_s_));
    if (burst_period_s_ > 0.0 &&
        std::fmod(t, burst_period_s_) < burst_on_s_) {
      rate *= burst_factor_;
    }
    return rate;
  }

  double next_release(double prev_release, util::Rng& rng) override {
    double t = prev_release < 0.0 ? 0.0 : prev_release;
    // Acceptance probability is bounded below by rate_min / rate_max
    // over any burst window, so this terminates fast for the validated
    // parameter ranges; the cap turns a degenerate rate function into a
    // loud error instead of a hang.
    for (int draws = 0; draws < 1000000; ++draws) {
      t += rng.exponential(1.0 / rate_max_);
      if (rng.uniform() * rate_max_ <= rate_at(t)) {
        return t;
      }
    }
    throw std::logic_error("arrival: ippp thinning failed to accept (rate "
                           "function degenerate?)");
  }
  std::string label() const override { return "ippp"; }

 private:
  double base_rate_;
  double diurnal_amp_;
  double diurnal_period_s_;
  double burst_factor_;
  double burst_period_s_;
  double burst_on_s_;
  double rate_max_;
};

class TraceReplay final : public ArrivalProcess {
 public:
  TraceReplay(double period_s, std::vector<double> times, bool repeat)
      : times_(std::move(times)),
        repeat_(repeat),
        cycle_s_(times_.back() + period_s) {}
  double next_release(double, util::Rng&) override {
    if (cursor_ == times_.size()) {
      if (!repeat_) {
        return kInf;
      }
      cursor_ = 0;
      offset_s_ += cycle_s_;
    }
    return offset_s_ + times_[cursor_++];
  }
  std::string label() const override { return "trace-replay"; }

 private:
  std::vector<double> times_;
  bool repeat_;
  double cycle_s_;
  std::size_t cursor_ = 0;
  double offset_s_ = 0.0;
};

// ---- shared validation ----------------------------------------------

void validate_params(const Spec& spec) {
  const Params& p = spec.params;
  if (spec.model == "periodic-jitter") {
    require(p.jitter_frac >= 0.0 && p.jitter_frac < 1.0,
            "jitter_frac must lie in [0, 1), got " + util::format_g17(p.jitter_frac));
  } else if (spec.model == "sporadic") {
    require(p.gap_frac >= 0.0,
            "gap_frac must be >= 0, got " + util::format_g17(p.gap_frac));
  } else if (spec.model == "poisson") {
    require(p.rate_scale > 0.0,
            "rate_scale must be > 0, got " + util::format_g17(p.rate_scale));
  } else if (spec.model == "ippp") {
    require(p.rate_scale > 0.0,
            "rate_scale must be > 0, got " + util::format_g17(p.rate_scale));
    require(p.diurnal_amp >= 0.0 && p.diurnal_amp <= 1.0,
            "diurnal_amp must lie in [0, 1], got " + util::format_g17(p.diurnal_amp));
    require(p.diurnal_period_s > 0.0, "diurnal_period_s must be > 0, got " +
                                          util::format_g17(p.diurnal_period_s));
    require(p.burst_period_s >= 0.0, "burst_period_s must be >= 0, got " +
                                         util::format_g17(p.burst_period_s));
    if (p.burst_period_s > 0.0) {
      require(p.burst_factor >= 1.0, "burst_factor must be >= 1, got " +
                                         util::format_g17(p.burst_factor));
      require(p.burst_duty > 0.0 && p.burst_duty <= 1.0,
              "burst_duty must lie in (0, 1], got " + util::format_g17(p.burst_duty));
    }
  }
  // trace-replay validates by loading the trace in make()/fingerprint().
}

}  // namespace

const std::vector<std::string>& labels() {
  static const std::vector<std::string> names{
      "periodic", "periodic-jitter", "sporadic",
      "poisson",  "ippp",            "trace-replay"};
  return names;
}

std::unique_ptr<ArrivalProcess> make(const Spec& spec, double period_s) {
  require(period_s > 0.0, "period must be > 0, got " + util::format_g17(period_s));
  validate_params(spec);
  const Params& p = spec.params;
  if (spec.model == "periodic") {
    return std::make_unique<Periodic>(period_s);
  }
  if (spec.model == "periodic-jitter") {
    return std::make_unique<PeriodicJitter>(period_s, p.jitter_frac);
  }
  if (spec.model == "sporadic") {
    return std::make_unique<Sporadic>(period_s, p.gap_frac);
  }
  if (spec.model == "poisson") {
    return std::make_unique<Poisson>(period_s, p.rate_scale);
  }
  if (spec.model == "ippp") {
    return std::make_unique<Ippp>(period_s, p);
  }
  if (spec.model == "trace-replay") {
    return std::make_unique<TraceReplay>(period_s, load_trace(p.trace),
                                         p.trace_repeat);
  }
  throw std::invalid_argument("unknown arrival model '" + spec.model +
                              "' (known: " + util::join(labels()) + ")");
}

void validate(const Spec& spec) { make(spec, 1.0); }

std::string fingerprint(const Spec& spec) {
  validate_params(spec);
  const Params& p = spec.params;
  std::string out = "arrival=" + spec.model;
  if (spec.model == "periodic") {
    return out;
  }
  if (spec.model == "periodic-jitter") {
    return out + " jitter=" + util::format_g17(p.jitter_frac);
  }
  if (spec.model == "sporadic") {
    return out + " gap=" + util::format_g17(p.gap_frac);
  }
  if (spec.model == "poisson") {
    return out + " rate-scale=" + util::format_g17(p.rate_scale);
  }
  if (spec.model == "ippp") {
    // The gated knobs enter only while their gate is live: with
    // diurnal_amp == 0 (or burst_period_s == 0) the rate function never
    // reads diurnal_period_s (burst_factor/burst_duty), so changing
    // them must not invalidate campaign caches.
    out += " rate-scale=" + util::format_g17(p.rate_scale) +
           " diurnal-amp=" + util::format_g17(p.diurnal_amp);
    if (p.diurnal_amp > 0.0) {
      out += " diurnal-period=" + util::format_g17(p.diurnal_period_s);
    }
    out += " burst-period=" + util::format_g17(p.burst_period_s);
    if (p.burst_period_s > 0.0) {
      out += " burst-factor=" + util::format_g17(p.burst_factor) +
             " burst-duty=" + util::format_g17(p.burst_duty);
    }
    return out;
  }
  if (spec.model == "trace-replay") {
    // Hash the parsed times, not the param string: "@file" traces then
    // invalidate campaign caches when the file's contents change.
    const auto times = load_trace(p.trace);
    std::uint64_t hash = util::Rng::mix(times.size());
    for (const double t : times) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &t, sizeof bits);
      hash = util::Rng::hash_combine(hash, bits);
    }
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(hash));
    return out + " trace-points=" + std::to_string(times.size()) +
           " trace-hash=" + hex + " repeat=" + (p.trace_repeat ? "1" : "0");
  }
  throw std::invalid_argument("unknown arrival model '" + spec.model +
                              "' (known: " + util::join(labels()) + ")");
}

}  // namespace bas::arrival
