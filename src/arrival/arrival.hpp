#pragma once
// Arrival processes: pluggable release models for the simulator.
//
// Every scenario used to release task-graph instances on a rigid
// `k * period` clock. Real sensor and multimedia deployments see
// jittered, sporadic and time-varying traffic; an inhomogeneous Poisson
// point process (IPPP) is the standard model for the latter, simulated
// here by thinning against an explicit rate function (Lewis & Shedler).
// This module turns the release clock into a first-class, swept-able
// axis: a registry of named models — like the battery registry — each
// parameterized by the graph's nominal period, so one label reshapes
// the traffic of every preset.
//
//   periodic         release k at exactly k * period (the paper's model;
//                    bit-identical to the pre-subsystem simulator)
//   periodic-jitter  k * period + U(0, jitter_frac * period) — bounded
//                    release jitter on the periodic skeleton
//   sporadic         minimum separation of one period plus an
//                    Exp(gap_frac * period) gap — the classic sporadic
//                    task model
//   poisson          homogeneous Poisson with rate rate_scale / period
//   ippp             inhomogeneous Poisson via thinning against
//                    rate(t) = base * diurnal(t) * burst(t): a
//                    sinusoidal diurnal swell times an on/off burst
//                    envelope
//   trace-replay     releases read from a CSV trace (inline or @file),
//                    optionally repeated cyclically
//
// Processes are cheap, stateful, single-run objects: the simulator
// builds one per graph per run from the (label, params) Spec, drawing
// randomness from an Rng it derives per graph via util::derive_seed —
// so results stay bit-reproducible for any thread count under the
// campaign runner, and every scheme of a comparison faces the same
// release times (common random numbers).

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace bas::arrival {

/// Knobs of every model in one plain value (a model reads only its own
/// fields; fingerprint() serializes only those, so unrelated knobs do
/// not invalidate campaign caches). All "*_frac" values are fractions
/// of the graph's nominal period.
struct Params {
  /// periodic-jitter: release k is k*period + U(0, jitter_frac*period).
  /// Must lie in [0, 1) so releases stay monotone.
  double jitter_frac = 0.25;
  /// sporadic: the exponential gap beyond the one-period minimum
  /// separation has mean gap_frac * period (>= 0).
  double gap_frac = 0.5;
  /// poisson/ippp: base rate is rate_scale / period (> 0); 1.0 matches
  /// the periodic model's long-run rate.
  double rate_scale = 1.0;
  /// ippp diurnal term: rate multiplier 1 + diurnal_amp *
  /// sin(2*pi*t / diurnal_period_s); amp in [0, 1].
  double diurnal_amp = 0.0;
  double diurnal_period_s = 3600.0;
  /// ippp on/off burst envelope: within the first burst_duty fraction
  /// of every burst_period_s window the rate is multiplied by
  /// burst_factor (>= 1); burst_period_s == 0 disables the envelope.
  double burst_factor = 1.0;
  double burst_period_s = 0.0;
  double burst_duty = 0.25;
  /// trace-replay: either an inline semicolon-separated list of release
  /// seconds ("0;0.2;1.5") or "@path" naming a CSV file (one time per
  /// line, or comma/semicolon-separated; '#' starts a comment).
  std::string trace;
  /// trace-replay: repeat the trace cyclically with a wrap length of
  /// (last release + one period); false stops after the last release.
  bool trace_repeat = true;
};

/// A (label, params) pair — what SimConfig and ScenarioSpec carry. The
/// registry below is the single label -> object source.
struct Spec {
  std::string model = "periodic";
  Params params;
};

/// One graph's release clock for one simulation run. Implementations
/// may keep internal state (release counters, trace cursors); build a
/// fresh instance per run.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next absolute release time strictly after `prev_release`
  /// (pass a negative value for the first release), or +infinity when
  /// the process emits no further releases. Successive calls must be
  /// non-decreasing in their results; `rng` is the process's private
  /// stream.
  virtual double next_release(double prev_release, util::Rng& rng) = 0;

  /// The registry label this process was built from.
  virtual std::string label() const = 0;
};

/// Registry labels, in catalogue order: {"periodic", "periodic-jitter",
/// "sporadic", "poisson", "ippp", "trace-replay"}.
const std::vector<std::string>& labels();

/// Builds the process for one graph with nominal period `period_s`.
/// Validates the label and every parameter the model reads (and loads +
/// parses the trace for trace-replay), throwing std::invalid_argument
/// with the valid labels / the offending value on violation.
std::unique_ptr<ArrivalProcess> make(const Spec& spec, double period_s);

/// Eager validation without building: make(spec, 1.0), result dropped.
/// Call from CLI override paths so a bad label or parameter fails at
/// parse time, not inside a worker thread mid-campaign.
void validate(const Spec& spec);

/// Canonical "arrival=<label> key=value..." serialization of the label
/// plus exactly the parameters that model reads (17 significant digits;
/// trace-replay hashes the parsed release times, so an edited trace
/// file invalidates campaign caches too). Folded into
/// ScenarioSpec::fingerprint().
std::string fingerprint(const Spec& spec);

}  // namespace bas::arrival
