#pragma once
// Scheduling schemes — the paper's contribution as a composable object.
//
// A Scheme is the full scheduling behaviour of Table 2's rows: a DVS
// frequency-setting algorithm, a priority function over ready tasks, the
// estimator feeding that priority, the ready-list scope, and whether the
// out-of-EDF-order feasibility guard is engaged. The methodology's
// promise (§4): any DVS algorithm and any priority function compose
// without deadline violations.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dvs/policy.hpp"
#include "sched/estimator.hpp"
#include "sched/priority.hpp"

namespace bas::core {

/// Which tasks populate the ready list (§4.2).
enum class ReadyScope {
  /// Ready nodes of the released graph with the most imminent deadline
  /// only — always EDF-safe, no checks needed (BAS-1).
  kMostImminent,
  /// Ready nodes of all released graphs, guarded per-candidate by the
  /// Algorithm 2 feasibility check (BAS-2).
  kAllReleased,
};

struct Scheme {
  std::string name;
  std::unique_ptr<dvs::DvsPolicy> dvs;
  std::unique_ptr<sched::PriorityPolicy> priority;
  std::unique_ptr<sched::Estimator> estimator;
  ReadyScope scope = ReadyScope::kMostImminent;

  /// Resets all stateful components for a fresh run.
  void reset();
};

/// The named schemes of Table 2.
enum class SchemeKind {
  kEdfNoDvs,     // "EDF":  no DVS, random order, most imminent
  kCcEdfRandom,  // "Cycle Conserving": ccEDF, random order
  kLaEdfRandom,  // "Look Ahead": laEDF, random order
  kBas1,         // laEDF + pUBS on the most imminent graph
  kBas2,         // laEDF + pUBS on all released graphs + feasibility
};

std::string to_string(SchemeKind kind);

/// All five Table 2 rows in the paper's order.
std::vector<SchemeKind> table2_schemes();

/// Builds a named scheme. `seed` feeds the random priority (where used);
/// estimators default to the history EMA the paper suggests.
Scheme make_scheme(SchemeKind kind, double fmax_hz, std::uint64_t seed = 1);

/// Fully custom composition — the "can be used with little or no changes
/// with any frequency setting algorithm and any priority function" API.
Scheme make_custom_scheme(std::string name,
                          std::unique_ptr<dvs::DvsPolicy> dvs,
                          std::unique_ptr<sched::PriorityPolicy> priority,
                          std::unique_ptr<sched::Estimator> estimator,
                          ReadyScope scope);

}  // namespace bas::core
