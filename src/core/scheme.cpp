#include "core/scheme.hpp"

#include <stdexcept>

namespace bas::core {

void Scheme::reset() {
  if (dvs) {
    dvs->reset();
  }
  if (priority) {
    priority->reset();
  }
  if (estimator) {
    estimator->reset();
  }
}

std::string to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kEdfNoDvs:
      return "EDF";
    case SchemeKind::kCcEdfRandom:
      return "ccEDF";
    case SchemeKind::kLaEdfRandom:
      return "laEDF";
    case SchemeKind::kBas1:
      return "BAS-1";
    case SchemeKind::kBas2:
      return "BAS-2";
  }
  throw std::logic_error("to_string: unknown SchemeKind");
}

std::vector<SchemeKind> table2_schemes() {
  return {SchemeKind::kEdfNoDvs, SchemeKind::kCcEdfRandom,
          SchemeKind::kLaEdfRandom, SchemeKind::kBas1, SchemeKind::kBas2};
}

Scheme make_scheme(SchemeKind kind, double fmax_hz, std::uint64_t seed) {
  Scheme s;
  s.name = to_string(kind);
  switch (kind) {
    case SchemeKind::kEdfNoDvs:
      s.dvs = dvs::make_no_dvs(fmax_hz);
      s.priority = sched::make_random_priority(seed);
      s.estimator = sched::make_history_estimator();
      s.scope = ReadyScope::kMostImminent;
      break;
    case SchemeKind::kCcEdfRandom:
      s.dvs = dvs::make_cc_edf(fmax_hz);
      s.priority = sched::make_random_priority(seed);
      s.estimator = sched::make_history_estimator();
      s.scope = ReadyScope::kMostImminent;
      break;
    case SchemeKind::kLaEdfRandom:
      s.dvs = dvs::make_la_edf(fmax_hz);
      s.priority = sched::make_random_priority(seed);
      s.estimator = sched::make_history_estimator();
      s.scope = ReadyScope::kMostImminent;
      break;
    case SchemeKind::kBas1:
      s.dvs = dvs::make_la_edf(fmax_hz);
      s.priority = sched::make_pubs_priority();
      s.estimator = sched::make_history_estimator();
      s.scope = ReadyScope::kMostImminent;
      break;
    case SchemeKind::kBas2:
      s.dvs = dvs::make_la_edf(fmax_hz);
      s.priority = sched::make_pubs_priority();
      s.estimator = sched::make_history_estimator();
      s.scope = ReadyScope::kAllReleased;
      break;
  }
  return s;
}

Scheme make_custom_scheme(std::string name,
                          std::unique_ptr<dvs::DvsPolicy> dvs,
                          std::unique_ptr<sched::PriorityPolicy> priority,
                          std::unique_ptr<sched::Estimator> estimator,
                          ReadyScope scope) {
  if (!dvs || !priority || !estimator) {
    throw std::invalid_argument("make_custom_scheme: null component");
  }
  Scheme s;
  s.name = std::move(name);
  s.dvs = std::move(dvs);
  s.priority = std::move(priority);
  s.estimator = std::move(estimator);
  s.scope = scope;
  return s;
}

}  // namespace bas::core
