#pragma once
// Ideal battery: a fixed bucket of charge, insensitive to the load
// profile. This is the (wrong) assumption early DVS work made; it serves
// as the control model — every scheme extracts identical charge from it.

#include "battery/model.hpp"

namespace bas::bat {

class IdealBattery final : public Battery {
 public:
  /// `capacity_c` total extractable charge in coulombs.
  explicit IdealBattery(double capacity_c);

  std::string name() const override { return "ideal"; }
  bool empty() const override;
  double state_of_charge() const override;
  std::unique_ptr<Battery> fresh_clone() const override;

  double capacity_c() const noexcept { return capacity_c_; }

 protected:
  double do_draw(double current_a, double dt_s) override;
  double do_sigma_after(double current_a, double t_s) const override;
  void do_reset() override;

 private:
  double capacity_c_;
  double remaining_c_;
};

}  // namespace bas::bat
