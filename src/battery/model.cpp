#include "battery/model.hpp"

#include <stdexcept>

namespace bas::bat {

double Battery::draw(double current_a, double dt_s) {
  if (current_a < 0.0 || dt_s < 0.0) {
    throw std::invalid_argument("Battery::draw: negative current or time");
  }
  if (dt_s == 0.0 || empty()) {
    return 0.0;
  }
  const double sustained = do_draw(current_a, dt_s);
  delivered_c_ += current_a * sustained;
  alive_s_ += sustained;
  return sustained;
}

double Battery::advance_interval(double charge_c, double dt_s) {
  if (charge_c < 0.0 || dt_s < 0.0) {
    throw std::invalid_argument(
        "Battery::advance_interval: negative charge or time");
  }
  if (dt_s == 0.0 || empty()) {
    return 0.0;
  }
  // Same accounting as draw(), dispatched through the interval-advance
  // hook so a kernel can substitute its merged-window fast path.
  const double current_a = charge_c / dt_s;
  const double sustained = do_advance_interval(current_a, dt_s);
  delivered_c_ += current_a * sustained;
  alive_s_ += sustained;
  return sustained;
}

double Battery::sigma_after(double current_a, double t_s) const {
  if (current_a < 0.0 || t_s < 0.0) {
    throw std::invalid_argument(
        "Battery::sigma_after: negative current or time");
  }
  return do_sigma_after(current_a, t_s);
}

void Battery::sigma_after_batch(std::span<const double> currents, double t_s,
                                std::span<double> out) const {
  if (t_s < 0.0) {
    throw std::invalid_argument("Battery::sigma_after_batch: negative time");
  }
  if (out.size() < currents.size()) {
    throw std::invalid_argument(
        "Battery::sigma_after_batch: output span too short");
  }
  if (currents.empty()) {
    return;
  }
  BAS_KC(++kc_.batch_calls; kc_.batch_lanes += currents.size());
  do_sigma_after_batch(currents.data(), currents.size(), t_s, out.data());
}

void Battery::reset() {
  do_reset();
  kc_.clear();
  delivered_c_ = 0.0;
  alive_s_ = 0.0;
}

}  // namespace bas::bat
