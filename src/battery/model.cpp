#include "battery/model.hpp"

#include <stdexcept>

namespace bas::bat {

double Battery::draw(double current_a, double dt_s) {
  if (current_a < 0.0 || dt_s < 0.0) {
    throw std::invalid_argument("Battery::draw: negative current or time");
  }
  if (dt_s == 0.0 || empty()) {
    return 0.0;
  }
  const double sustained = do_draw(current_a, dt_s);
  delivered_c_ += current_a * sustained;
  alive_s_ += sustained;
  return sustained;
}

double Battery::advance_interval(double charge_c, double dt_s) {
  if (charge_c < 0.0 || dt_s < 0.0) {
    throw std::invalid_argument(
        "Battery::advance_interval: negative charge or time");
  }
  if (dt_s == 0.0) {
    return 0.0;
  }
  return draw(charge_c / dt_s, dt_s);
}

void Battery::reset() {
  do_reset();
  delivered_c_ = 0.0;
  alive_s_ = 0.0;
}

}  // namespace bas::bat
