#pragma once
// Battery lifetime estimation utilities: running profiles to cutoff,
// rate-capacity curves ("load vs delivered capacity", paper §5), and the
// maximum-capacity extrapolation the paper describes.

#include <vector>

#include "battery/model.hpp"
#include "battery/profile.hpp"

namespace bas::bat {

struct LifetimeResult {
  /// Time until cutoff (s); equals the cap when the cell outlived it.
  double lifetime_s = 0.0;
  /// Charge delivered until cutoff (C).
  double delivered_c = 0.0;
  /// True when the battery actually hit cutoff (vs. cap reached).
  bool died = false;

  double lifetime_min() const { return lifetime_s / 60.0; }
  double delivered_mah() const { return to_mah(delivered_c); }
};

/// Repeats `profile` into a fresh clone of `prototype` until cutoff or
/// `max_time_s`. The prototype itself is not modified.
LifetimeResult lifetime_under_profile(const Battery& prototype,
                                      const LoadProfile& profile,
                                      double max_time_s = 1.0e7);

/// One (load, delivered-capacity) point of the rate-capacity curve.
struct RateCapacityPoint {
  double load_a = 0.0;
  double delivered_mah = 0.0;
  double lifetime_min = 0.0;
};

/// Discharges a fresh clone at each constant load and records delivered
/// capacity — the curve whose two extrapolated ends define the paper's
/// "maximum capacity" (I -> 0) and the available-well charge (I -> inf).
std::vector<RateCapacityPoint> rate_capacity_curve(
    const Battery& prototype, const std::vector<double>& loads_a,
    double max_time_s = 1.0e7);

/// Delivered capacity (mAh) under a near-infinitesimal load — the
/// empirical "maximum capacity" anchor (defaults to a C/100-like 20 mA).
double max_capacity_mah(const Battery& prototype, double probe_current_a = 0.02,
                        double max_time_s = 1.0e7);

}  // namespace bas::bat
