#include "battery/kibam.hpp"

#include <cmath>
#include <stdexcept>

namespace bas::bat {

KibamParams KibamParams::paper_aaa_nimh() {
  KibamParams p;
  p.capacity_c = to_coulombs(2000.0);  // 2000 mAh maximum capacity
  p.c_fraction = 0.625;
  p.k_rate = 4.5e-4;
  return p;
}

KibamBattery::KibamBattery(KibamParams params) : params_(params) {
  if (!(params_.capacity_c > 0.0) || !(params_.c_fraction > 0.0) ||
      params_.c_fraction >= 1.0 || !(params_.k_rate > 0.0)) {
    throw std::invalid_argument("KibamBattery: bad parameters");
  }
  do_reset();
}

bool KibamBattery::empty() const { return dead_; }

double KibamBattery::state_of_charge() const {
  return (y1_ + y2_) / params_.capacity_c;
}

std::unique_ptr<Battery> KibamBattery::fresh_clone() const {
  return std::make_unique<KibamBattery>(params_);
}

double KibamBattery::y1_after(double current_a, double t) const {
  const double k = params_.k_rate;
  const double c = params_.c_fraction;
  const double y0 = y1_ + y2_;
  BAS_KC(++kc_.exp_calls);
  const double e = std::exp(-k * t);
  // Manwell-McGowan closed form for constant current I over [0, t].
  return y1_ * e + (y0 * k * c - current_a) * (1.0 - e) / k -
         current_a * c * (k * t - 1.0 + e) / k;
}

double KibamBattery::y2_after(double current_a, double t) const {
  const double k = params_.k_rate;
  const double c = params_.c_fraction;
  const double y0 = y1_ + y2_;
  BAS_KC(++kc_.exp_calls);
  const double e = std::exp(-k * t);
  return y2_ * e + y0 * (1.0 - c) * (1.0 - e) -
         current_a * (1.0 - c) * (k * t - 1.0 + e) / k;
}

void KibamBattery::wells_after(double current_a, double t, double* y1_out,
                               double* y2_out) const {
  const double k = params_.k_rate;
  const double c = params_.c_fraction;
  const double y0 = y1_ + y2_;
  BAS_KC(++kc_.kibam_shared_exps; ++kc_.exp_calls);
  const double e = std::exp(-k * t);
  *y1_out = y1_ * e + (y0 * k * c - current_a) * (1.0 - e) / k -
            current_a * c * (k * t - 1.0 + e) / k;
  *y2_out = y2_ * e + y0 * (1.0 - c) * (1.0 - e) -
            current_a * (1.0 - c) * (k * t - 1.0 + e) / k;
}

double KibamBattery::lane_depletion(double current_a, double e,
                                    double one_minus_e,
                                    double kt_term) const {
  const double k = params_.k_rate;
  const double c = params_.c_fraction;
  const double y0 = y1_ + y2_;
  const double y1_end = y1_ * e + (y0 * k * c - current_a) * one_minus_e / k -
                        current_a * c * kt_term / k;
  // Empty when the available well drains: depletion 1 at y1_end == 0.
  return 1.0 - y1_end / (c * params_.capacity_c);
}

double KibamBattery::do_sigma_after(double current_a, double t_s) const {
  BAS_KC(++kc_.exp_calls);
  const double e = std::exp(-params_.k_rate * t_s);
  return lane_depletion(current_a, e, 1.0 - e,
                        params_.k_rate * t_s - 1.0 + e);
}

void KibamBattery::do_sigma_after_batch(const double* currents,
                                        std::size_t n, double t_s,
                                        double* out) const {
  // The t-only subexpressions of the closed form, evaluated once for
  // the whole batch; lane_depletion reuses them verbatim, so each lane
  // is bitwise the scalar probe at the same current.
  BAS_KC(++kc_.kibam_shared_exps; ++kc_.exp_calls);
  const double e = std::exp(-params_.k_rate * t_s);
  const double one_minus_e = 1.0 - e;
  const double kt_term = params_.k_rate * t_s - 1.0 + e;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lane_depletion(currents[i], e, one_minus_e, kt_term);
  }
}

double KibamBattery::do_draw(double current_a, double dt_s) {
  double y1_end = 0.0;
  double y2_end = 0.0;
  wells_after(current_a, dt_s, &y1_end, &y2_end);
  if (y1_end > 0.0) {
    y1_ = y1_end;
    y2_ = std::max(0.0, y2_end);
    return dt_s;
  }
  // The available well empties inside this segment: bisect for the
  // cutoff instant. y1_after is continuous with y1_after(0) = y1_ > 0.
  double lo = 0.0;
  double hi = dt_s;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (y1_after(current_a, mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double sustained = lo;
  y2_ = std::max(0.0, y2_after(current_a, sustained));
  y1_ = 0.0;
  dead_ = true;
  return sustained;
}

void KibamBattery::do_reset() {
  y1_ = params_.c_fraction * params_.capacity_c;
  y2_ = (1.0 - params_.c_fraction) * params_.capacity_c;
  dead_ = false;
}

}  // namespace bas::bat
