#pragma once
// Rakhmatov–Vrudhula diffusion battery model [14] — the analytical
// model from which the paper's scheduling guidelines were derived.
//
// The cell is a one-dimensional electrolyte-diffusion problem; solving
// it gives the "apparent charge" consumed by time T under load i(t):
//
//   sigma(T) = ∫0..T i dτ                       (charge actually drawn)
//            + 2 Σ_{m=1..∞} ∫0..T i(τ) e^{-β² m² (T-τ)} dτ   (unavailable)
//
// The battery is discharged when sigma(T) reaches the capacity alpha.
// The second term decays during idle/low-current periods — that is the
// recovery effect; its weighting of *recent* current explains why a
// non-increasing profile is optimal (Guideline 1).
//
// For piecewise-constant loads each series term has an exact recurrence,
// so stepping is O(M) per segment with no integration error. The series
// is truncated at `series_terms` (error falls off as e^{-β² M²}).

#include "battery/model.hpp"

#include <vector>

namespace bas::bat {

struct DiffusionParams {
  /// Capacity alpha: apparent charge the cell can supply (C).
  double alpha_c = 7200.0;
  /// Diffusion rate beta^2 (1/s). Smaller = slower recovery, stronger
  /// rate-capacity effect.
  double beta_squared = 4.0e-3;
  /// Series truncation; 10 terms is standard in the literature.
  int series_terms = 10;

  /// Calibrated against the same anchors as KibamParams::paper_aaa_nimh
  /// (2000 mAh max, ~1600 mAh at ~1.8 A). See EXPERIMENTS.md.
  static DiffusionParams paper_aaa_nimh();
};

class DiffusionBattery final : public Battery {
 public:
  explicit DiffusionBattery(DiffusionParams params);

  std::string name() const override { return "diffusion"; }
  bool empty() const override;
  double state_of_charge() const override;
  std::unique_ptr<Battery> fresh_clone() const override;

  const DiffusionParams& params() const noexcept { return params_; }
  /// The transient (recoverable) part 2 Σ s_m of the apparent charge (C).
  double unavailable_c() const;
  /// Apparent charge consumed so far, sigma(T) (C).
  double apparent_charge_c() const;

 protected:
  double do_draw(double current_a, double dt_s) override;
  /// Merged-window fast path (event engine window flushes only): the
  /// same exact recurrence, but with the per-term decays produced by
  /// strength reduction — x = e^{-β²t}, decay_m = x^{m²} via
  /// x^{m²} = x^{(m-1)²} · x^{2m-1} — so each probe costs 1 exp and
  /// ~2 multiplies per term instead of one exp per term. Not bitwise
  /// equal to the std::exp sweep (~1e-13 relative on the decays), which
  /// is why it lives behind the interval-advance hook the per-slice
  /// draw path never takes; covered by the PR 8 written waiver in
  /// EXPERIMENTS.md ("Kernel instrumentation & batching").
  double do_advance_interval(double current_a, double dt_s) override;
  double do_sigma_after(double current_a, double t_s) const override;
  /// One shared decay sweep at t serves every current lane; each lane's
  /// arithmetic is the scalar probe's exactly (bit-identical outputs).
  void do_sigma_after_batch(const double* currents, std::size_t n,
                            double t_s, double* out) const override;
  void do_reset() override;

 private:
  /// sigma after continuing the present current for `t` more seconds.
  double sigma_after_c(double current_a, double t) const;
  void advance(double current_a, double t);
  /// Fast-series probe: fills the fast-decay lane for t and returns
  /// sigma; advance_with_fast_decays commits the lane last filled.
  double sigma_after_c_fast(double current_a, double t) const;
  void advance_with_fast_decays(double current_a, double t);

  /// Fills decay_[m-1] = e^{-β²m²t} for the given t, reusing the buffer
  /// when t matches the previous call. The factors depend on t alone —
  /// not on the cell state or current — so the cache stays valid across
  /// advance() and reset(). This is what lets the common draw path
  /// (sigma_after + advance at the same t) and the repeated-t probes of
  /// the cutoff bisection evaluate the series with one exp sweep
  /// instead of two.
  void fill_decay(double t) const;

  /// fill_decay(t) plus gain_[m-1] = I·(1−e^{-rate·t})/rate — the
  /// forcing term both sigma_after and advance evaluate. Keyed on
  /// (t, current): the common draw path computes it once and the
  /// advance() that commits the same interval reads it back.
  void fill_terms(double current_a, double t) const;

  DiffusionParams params_;
  /// Structure-of-arrays term table: one contiguous block holding the
  /// five per-term lanes the kernels sweep, in sweep order —
  ///
  ///   [ rates | decay | gain | s | fast_decay ],  each `terms_` wide
  ///
  /// so a probe's term loop walks one cache-line run instead of four
  /// scattered heap vectors, and the element-wise lanes sit where the
  /// autovectorizer likes them (see the BAS_SIMD loops in the .cpp).
  /// Lane semantics are unchanged from the former separate vectors:
  ///
  ///  - rates: β²m², m = 1..series_terms, precomputed in the
  ///    constructor with the same expression the per-call formula used
  ///    (bit-identical values; see tests/test_battery.cpp). A 1/rate
  ///    table was considered and rejected: multiplying by a precomputed
  ///    reciprocal is not an exact transformation of the `/ rate` the
  ///    formulas specify, and the byte-identity contract forbids it.
  ///  - decay: e^{-rate·t} for decay_t_ (t-keyed memo).
  ///  - gain: I·(1−decay)/rate for (gain_t_, gain_current_a_).
  ///  - s: per-term transient state.
  ///  - fast_decay: scratch for the strength-reduced series — kept
  ///    separate from the exact decay memo so fast probes can never
  ///    pollute the bit-frozen scalar path.
  ///
  /// The whole block is mutable because the decay/gain/fast lanes are
  /// const-path memo caches; the s lane is only written by the
  /// non-const advance paths.
  mutable std::vector<double> soa_;
  std::size_t terms_ = 0;
  const double* rates() const noexcept { return soa_.data(); }
  double* decay() const noexcept { return soa_.data() + terms_; }
  double* gain() const noexcept { return soa_.data() + 2 * terms_; }
  double* s_lane() const noexcept { return soa_.data() + 3 * terms_; }
  double* fast_decay() const noexcept { return soa_.data() + 4 * terms_; }
  mutable double decay_t_ = -1.0;  // t the decay lane is valid for
  mutable double gain_t_ = -1.0;   // (t, I) the gain lane is valid for
  mutable double gain_current_a_ = 0.0;
  double drawn_c_ = 0.0;  // ∫ i dτ
  bool dead_ = false;
};

}  // namespace bas::bat
