#pragma once
// Rakhmatov–Vrudhula diffusion battery model [14] — the analytical
// model from which the paper's scheduling guidelines were derived.
//
// The cell is a one-dimensional electrolyte-diffusion problem; solving
// it gives the "apparent charge" consumed by time T under load i(t):
//
//   sigma(T) = ∫0..T i dτ                       (charge actually drawn)
//            + 2 Σ_{m=1..∞} ∫0..T i(τ) e^{-β² m² (T-τ)} dτ   (unavailable)
//
// The battery is discharged when sigma(T) reaches the capacity alpha.
// The second term decays during idle/low-current periods — that is the
// recovery effect; its weighting of *recent* current explains why a
// non-increasing profile is optimal (Guideline 1).
//
// For piecewise-constant loads each series term has an exact recurrence,
// so stepping is O(M) per segment with no integration error. The series
// is truncated at `series_terms` (error falls off as e^{-β² M²}).

#include "battery/model.hpp"

#include <vector>

namespace bas::bat {

struct DiffusionParams {
  /// Capacity alpha: apparent charge the cell can supply (C).
  double alpha_c = 7200.0;
  /// Diffusion rate beta^2 (1/s). Smaller = slower recovery, stronger
  /// rate-capacity effect.
  double beta_squared = 4.0e-3;
  /// Series truncation; 10 terms is standard in the literature.
  int series_terms = 10;

  /// Calibrated against the same anchors as KibamParams::paper_aaa_nimh
  /// (2000 mAh max, ~1600 mAh at ~1.8 A). See EXPERIMENTS.md.
  static DiffusionParams paper_aaa_nimh();
};

class DiffusionBattery final : public Battery {
 public:
  explicit DiffusionBattery(DiffusionParams params);

  std::string name() const override { return "diffusion"; }
  bool empty() const override;
  double state_of_charge() const override;
  std::unique_ptr<Battery> fresh_clone() const override;

  const DiffusionParams& params() const noexcept { return params_; }
  /// The transient (recoverable) part 2 Σ s_m of the apparent charge (C).
  double unavailable_c() const;
  /// Apparent charge consumed so far, sigma(T) (C).
  double apparent_charge_c() const;

 protected:
  double do_draw(double current_a, double dt_s) override;
  void do_reset() override;

 private:
  /// sigma after continuing the present current for `t` more seconds.
  double sigma_after(double current_a, double t) const;
  void advance(double current_a, double t);

  DiffusionParams params_;
  std::vector<double> s_m_;   // per-term transient state
  double drawn_c_ = 0.0;      // ∫ i dτ
  bool dead_ = false;
};

}  // namespace bas::bat
