#pragma once
// Battery model interface (paper §3).
//
// All models consume a piecewise-constant current profile through
// draw(current, dt) and report when the cell can no longer sustain the
// load ("discharged" — which, for the non-ideal models, can happen while
// charge is still trapped inside the cell; that unextracted charge is
// exactly what battery-aware scheduling recovers).
//
// Accounting (delivered charge, alive time) is centralized here so every
// model reports the two quantities Table 2 compares: charge delivered
// (mAh) and battery lifetime.

#include <memory>
#include <span>
#include <string>

#include "battery/kernel_counters.hpp"

namespace bas::bat {

/// Coulombs per mAh.
inline constexpr double kCoulombsPerMah = 3.6;

inline constexpr double to_mah(double coulombs) {
  return coulombs / kCoulombsPerMah;
}
inline constexpr double to_coulombs(double mah) {
  return mah * kCoulombsPerMah;
}

class Battery {
 public:
  virtual ~Battery() = default;

  virtual std::string name() const = 0;

  /// Draws `current_a` for `dt_s` seconds (current_a >= 0, dt_s >= 0).
  /// Returns the duration actually sustained: dt_s if the cell survived
  /// the whole interval, else the time at which it hit cutoff. Calling
  /// draw on an empty battery returns 0.
  double draw(double current_a, double dt_s);

  /// Interval advance for the event-driven simulator: consumes
  /// `charge_c` coulombs spread over `dt_s` seconds as one
  /// charge-equivalent constant-current draw (charge_c / dt_s for
  /// dt_s). Every kernel's do_draw already advances state in closed
  /// form over an arbitrary dt — diffusion sweeps its rate table once,
  /// KiBaM applies its single-exponential step, Peukert and the ideal
  /// cell are O(1) — so one merged call replaces what the tick engine
  /// issues as a draw per executed slice. (The stochastic model is the
  /// exception: its do_draw steps internal slots of fixed width, so an
  /// interval advance still pays per-slot cost and only saves the call
  /// overhead.) Returns the sustained duration, exactly like draw().
  double advance_interval(double charge_c, double dt_s);

  /// Non-mutating depletion probe: the fraction of the cell's depletion
  /// budget that would be consumed by continuing `current_a` for `t_s`
  /// more seconds from the present state. A value >= 1.0 means the cell
  /// would hit cutoff within the interval. The normalization makes one
  /// contract fit every model: ideal and Peukert report consumed/rated
  /// capacity, diffusion reports sigma(T)/alpha, the kinetic models
  /// report 1 - y1_after/(c * capacity) (available-well depletion). The
  /// probe never changes observable cell state — at most it warms the
  /// same memo buffers the draw path keys on t.
  double sigma_after(double current_a, double t_s) const;

  /// Batch depletion probe: out[i] = sigma_after(currents[i], t_s),
  /// bit-identical lane for lane to the scalar calls in sequence. The
  /// default loops the scalar probe; diffusion/KiBaM/Peukert override it
  /// so one rate-table/exp sweep at the shared t serves every lane.
  /// Throws std::invalid_argument when out is shorter than currents.
  void sigma_after_batch(std::span<const double> currents, double t_s,
                         std::span<double> out) const;

  /// Per-kernel cache/work counters (cleared by reset(); increments
  /// compile out under BAS_KERNEL_COUNTERS=0).
  const KernelCounters& kernel_counters() const noexcept { return kc_; }

  virtual bool empty() const = 0;

  /// Fraction of *total* stored charge remaining, in [0, 1]. Note that a
  /// battery may be empty() with state_of_charge() > 0 — the trapped
  /// charge phenomenon.
  virtual double state_of_charge() const = 0;

  /// Deep copy preserving parameters but with reset state.
  virtual std::unique_ptr<Battery> fresh_clone() const = 0;

  /// Restores the fully-charged initial state and clears accounting.
  void reset();

  /// Total charge delivered to the load so far (C).
  double charge_delivered_c() const noexcept { return delivered_c_; }
  double charge_delivered_mah() const noexcept { return to_mah(delivered_c_); }

  /// Wall-clock time survived under all draws so far (s). Idle time
  /// (zero current) counts: recovery happens while alive.
  double time_alive_s() const noexcept { return alive_s_; }

 protected:
  /// Model-specific state update; returns the sustained duration.
  virtual double do_draw(double current_a, double dt_s) = 0;
  /// Model-specific interval advance behind advance_interval(). The
  /// default is exactly do_draw; a kernel may override it with a faster
  /// evaluation of the same closed form when the merged-window caller
  /// tolerates documented non-bitwise arithmetic (diffusion's
  /// strength-reduced series — see EXPERIMENTS.md, "Kernel
  /// instrumentation & batching"). The per-slice draw() path never
  /// routes through here, so window-0 and tick-engine runs stay
  /// bit-frozen regardless of overrides.
  virtual double do_advance_interval(double current_a, double dt_s) {
    return do_draw(current_a, dt_s);
  }
  /// Scalar depletion probe behind sigma_after().
  virtual double do_sigma_after(double current_a, double t_s) const = 0;
  /// Batch probe behind sigma_after_batch(); default is the scalar loop.
  virtual void do_sigma_after_batch(const double* currents, std::size_t n,
                                    double t_s, double* out) const {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = do_sigma_after(currents[i], t_s);
    }
  }
  virtual void do_reset() = 0;

  /// Incremented by the kernels via BAS_KC(...); mutable so const probe
  /// paths (sigma_after, memo fills) can count their hits.
  mutable KernelCounters kc_;

 private:
  double delivered_c_ = 0.0;
  double alive_s_ = 0.0;
};

}  // namespace bas::bat
