#pragma once
// Battery model interface (paper §3).
//
// All models consume a piecewise-constant current profile through
// draw(current, dt) and report when the cell can no longer sustain the
// load ("discharged" — which, for the non-ideal models, can happen while
// charge is still trapped inside the cell; that unextracted charge is
// exactly what battery-aware scheduling recovers).
//
// Accounting (delivered charge, alive time) is centralized here so every
// model reports the two quantities Table 2 compares: charge delivered
// (mAh) and battery lifetime.

#include <memory>
#include <string>

namespace bas::bat {

/// Coulombs per mAh.
inline constexpr double kCoulombsPerMah = 3.6;

inline constexpr double to_mah(double coulombs) {
  return coulombs / kCoulombsPerMah;
}
inline constexpr double to_coulombs(double mah) {
  return mah * kCoulombsPerMah;
}

class Battery {
 public:
  virtual ~Battery() = default;

  virtual std::string name() const = 0;

  /// Draws `current_a` for `dt_s` seconds (current_a >= 0, dt_s >= 0).
  /// Returns the duration actually sustained: dt_s if the cell survived
  /// the whole interval, else the time at which it hit cutoff. Calling
  /// draw on an empty battery returns 0.
  double draw(double current_a, double dt_s);

  /// Interval advance for the event-driven simulator: consumes
  /// `charge_c` coulombs spread over `dt_s` seconds as one
  /// charge-equivalent constant-current draw (charge_c / dt_s for
  /// dt_s). Every kernel's do_draw already advances state in closed
  /// form over an arbitrary dt — diffusion sweeps its rate table once,
  /// KiBaM applies its single-exponential step, Peukert and the ideal
  /// cell are O(1) — so one merged call replaces what the tick engine
  /// issues as a draw per executed slice. (The stochastic model is the
  /// exception: its do_draw steps internal slots of fixed width, so an
  /// interval advance still pays per-slot cost and only saves the call
  /// overhead.) Returns the sustained duration, exactly like draw().
  double advance_interval(double charge_c, double dt_s);

  virtual bool empty() const = 0;

  /// Fraction of *total* stored charge remaining, in [0, 1]. Note that a
  /// battery may be empty() with state_of_charge() > 0 — the trapped
  /// charge phenomenon.
  virtual double state_of_charge() const = 0;

  /// Deep copy preserving parameters but with reset state.
  virtual std::unique_ptr<Battery> fresh_clone() const = 0;

  /// Restores the fully-charged initial state and clears accounting.
  void reset();

  /// Total charge delivered to the load so far (C).
  double charge_delivered_c() const noexcept { return delivered_c_; }
  double charge_delivered_mah() const noexcept { return to_mah(delivered_c_); }

  /// Wall-clock time survived under all draws so far (s). Idle time
  /// (zero current) counts: recovery happens while alive.
  double time_alive_s() const noexcept { return alive_s_; }

 protected:
  /// Model-specific state update; returns the sustained duration.
  virtual double do_draw(double current_a, double dt_s) = 0;
  virtual void do_reset() = 0;

 private:
  double delivered_c_ = 0.0;
  double alive_s_ = 0.0;
};

}  // namespace bas::bat
