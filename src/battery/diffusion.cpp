#include "battery/diffusion.hpp"

#include <cmath>
#include <stdexcept>

namespace bas::bat {

DiffusionParams DiffusionParams::paper_aaa_nimh() {
  DiffusionParams p;
  p.alpha_c = to_coulombs(2000.0);
  p.beta_squared = 4.0e-3;
  p.series_terms = 10;
  return p;
}

DiffusionBattery::DiffusionBattery(DiffusionParams params) : params_(params) {
  if (!(params_.alpha_c > 0.0) || !(params_.beta_squared > 0.0) ||
      params_.series_terms < 1) {
    throw std::invalid_argument("DiffusionBattery: bad parameters");
  }
  s_m_.assign(static_cast<std::size_t>(params_.series_terms), 0.0);
}

bool DiffusionBattery::empty() const { return dead_; }

double DiffusionBattery::unavailable_c() const {
  double total = 0.0;
  for (double s : s_m_) {
    total += s;
  }
  return 2.0 * total;
}

double DiffusionBattery::apparent_charge_c() const {
  return drawn_c_ + unavailable_c();
}

double DiffusionBattery::state_of_charge() const {
  // Charge physically left in the cell, ignoring the transient term.
  return std::max(0.0, 1.0 - drawn_c_ / params_.alpha_c);
}

std::unique_ptr<Battery> DiffusionBattery::fresh_clone() const {
  return std::make_unique<DiffusionBattery>(params_);
}

double DiffusionBattery::sigma_after(double current_a, double t) const {
  double sigma = drawn_c_ + current_a * t;
  for (int m = 1; m <= params_.series_terms; ++m) {
    const double rate = params_.beta_squared * m * m;
    const double decay = std::exp(-rate * t);
    const double s_prev = s_m_[static_cast<std::size_t>(m - 1)];
    sigma += 2.0 * (s_prev * decay + current_a * (1.0 - decay) / rate);
  }
  return sigma;
}

void DiffusionBattery::advance(double current_a, double t) {
  drawn_c_ += current_a * t;
  for (int m = 1; m <= params_.series_terms; ++m) {
    const double rate = params_.beta_squared * m * m;
    const double decay = std::exp(-rate * t);
    auto& s = s_m_[static_cast<std::size_t>(m - 1)];
    s = s * decay + current_a * (1.0 - decay) / rate;
  }
}

double DiffusionBattery::do_draw(double current_a, double dt_s) {
  if (sigma_after(current_a, dt_s) < params_.alpha_c) {
    advance(current_a, dt_s);
    return dt_s;
  }
  // Cutoff inside the segment. While current flows, sigma is strictly
  // increasing in t, so bisection finds the crossing.
  double lo = 0.0;
  double hi = dt_s;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sigma_after(current_a, mid) < params_.alpha_c) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  advance(current_a, lo);
  dead_ = true;
  return lo;
}

void DiffusionBattery::do_reset() {
  s_m_.assign(static_cast<std::size_t>(params_.series_terms), 0.0);
  drawn_c_ = 0.0;
  dead_ = false;
}

}  // namespace bas::bat
