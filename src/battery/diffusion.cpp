#include "battery/diffusion.hpp"

#include <cmath>
#include <stdexcept>

namespace bas::bat {

DiffusionParams DiffusionParams::paper_aaa_nimh() {
  DiffusionParams p;
  p.alpha_c = to_coulombs(2000.0);
  p.beta_squared = 4.0e-3;
  p.series_terms = 10;
  return p;
}

DiffusionBattery::DiffusionBattery(DiffusionParams params) : params_(params) {
  if (!(params_.alpha_c > 0.0) || !(params_.beta_squared > 0.0) ||
      params_.series_terms < 1) {
    throw std::invalid_argument("DiffusionBattery: bad parameters");
  }
  const auto terms = static_cast<std::size_t>(params_.series_terms);
  rates_.resize(terms);
  for (int m = 1; m <= params_.series_terms; ++m) {
    // Same expression the per-call formulas evaluated, so the table
    // holds bit-identical values.
    rates_[static_cast<std::size_t>(m - 1)] = params_.beta_squared * m * m;
  }
  decay_.assign(terms, 0.0);
  gain_.assign(terms, 0.0);
  s_m_.assign(terms, 0.0);
}

bool DiffusionBattery::empty() const { return dead_; }

double DiffusionBattery::unavailable_c() const {
  double total = 0.0;
  for (double s : s_m_) {
    total += s;
  }
  return 2.0 * total;
}

double DiffusionBattery::apparent_charge_c() const {
  return drawn_c_ + unavailable_c();
}

double DiffusionBattery::state_of_charge() const {
  // Charge physically left in the cell, ignoring the transient term.
  return std::max(0.0, 1.0 - drawn_c_ / params_.alpha_c);
}

std::unique_ptr<Battery> DiffusionBattery::fresh_clone() const {
  return std::make_unique<DiffusionBattery>(params_);
}

void DiffusionBattery::fill_decay(double t) const {
  if (t == decay_t_) {
    return;
  }
  const std::size_t terms = rates_.size();
  for (std::size_t i = 0; i < terms; ++i) {
    decay_[i] = std::exp(-rates_[i] * t);
  }
  decay_t_ = t;
}

void DiffusionBattery::fill_terms(double current_a, double t) const {
  fill_decay(t);
  if (t == gain_t_ && current_a == gain_current_a_) {
    return;
  }
  const std::size_t terms = rates_.size();
  for (std::size_t i = 0; i < terms; ++i) {
    // The exact forcing subexpression of the original formulas:
    // (current · (1 − decay)) / rate, association preserved.
    gain_[i] = current_a * (1.0 - decay_[i]) / rates_[i];
  }
  gain_t_ = t;
  gain_current_a_ = current_a;
}

double DiffusionBattery::sigma_after(double current_a, double t) const {
  fill_terms(current_a, t);
  double sigma = drawn_c_ + current_a * t;
  const std::size_t terms = rates_.size();
  for (std::size_t i = 0; i < terms; ++i) {
    const double decay = decay_[i];
    const double s_prev = s_m_[i];
    sigma += 2.0 * (s_prev * decay + gain_[i]);
  }
  return sigma;
}

void DiffusionBattery::advance(double current_a, double t) {
  fill_terms(current_a, t);
  drawn_c_ += current_a * t;
  const std::size_t terms = rates_.size();
  for (std::size_t i = 0; i < terms; ++i) {
    auto& s = s_m_[i];
    s = s * decay_[i] + gain_[i];
  }
}

double DiffusionBattery::do_draw(double current_a, double dt_s) {
  if (sigma_after(current_a, dt_s) < params_.alpha_c) {
    advance(current_a, dt_s);
    return dt_s;
  }
  // Cutoff inside the segment. While current flows, sigma is strictly
  // increasing in t, so bisection finds the crossing.
  double lo = 0.0;
  double hi = dt_s;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sigma_after(current_a, mid) < params_.alpha_c) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  advance(current_a, lo);
  dead_ = true;
  return lo;
}

void DiffusionBattery::do_reset() {
  s_m_.assign(static_cast<std::size_t>(params_.series_terms), 0.0);
  drawn_c_ = 0.0;
  dead_ = false;
}

}  // namespace bas::bat
