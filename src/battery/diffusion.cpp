#include "battery/diffusion.hpp"

#include <cmath>
#include <stdexcept>

// Element-wise per-term loops (no reductions, no libm calls) are safe to
// hand to the vectorizer: SIMD add/mul/div are IEEE-identical lane for
// lane, so the pragma cannot move a bit. Reduction loops (the sigma
// accumulations) and the exp/strength-reduction fills stay scalar — a
// simd reduction would reassociate the sum, and an omp-simd'd std::exp
// loop could bind to a vector libm with different rounding; both would
// break the byte-identity contract.
#if defined(BAS_OPENMP_SIMD)
#define BAS_SIMD _Pragma("omp simd")
#else
#define BAS_SIMD
#endif

namespace bas::bat {

DiffusionParams DiffusionParams::paper_aaa_nimh() {
  DiffusionParams p;
  p.alpha_c = to_coulombs(2000.0);
  p.beta_squared = 4.0e-3;
  p.series_terms = 10;
  return p;
}

DiffusionBattery::DiffusionBattery(DiffusionParams params) : params_(params) {
  if (!(params_.alpha_c > 0.0) || !(params_.beta_squared > 0.0) ||
      params_.series_terms < 1) {
    throw std::invalid_argument("DiffusionBattery: bad parameters");
  }
  terms_ = static_cast<std::size_t>(params_.series_terms);
  soa_.assign(5 * terms_, 0.0);
  double* r = soa_.data();
  for (int m = 1; m <= params_.series_terms; ++m) {
    // Same expression the per-call formulas evaluated, so the table
    // holds bit-identical values.
    r[static_cast<std::size_t>(m - 1)] = params_.beta_squared * m * m;
  }
}

bool DiffusionBattery::empty() const { return dead_; }

double DiffusionBattery::unavailable_c() const {
  const double* s = s_lane();
  double total = 0.0;
  for (std::size_t i = 0; i < terms_; ++i) {
    total += s[i];
  }
  return 2.0 * total;
}

double DiffusionBattery::apparent_charge_c() const {
  return drawn_c_ + unavailable_c();
}

double DiffusionBattery::state_of_charge() const {
  // Charge physically left in the cell, ignoring the transient term.
  return std::max(0.0, 1.0 - drawn_c_ / params_.alpha_c);
}

std::unique_ptr<Battery> DiffusionBattery::fresh_clone() const {
  return std::make_unique<DiffusionBattery>(params_);
}

void DiffusionBattery::fill_decay(double t) const {
  if (t == decay_t_) {
    BAS_KC(++kc_.decay_hits);
    return;
  }
  BAS_KC(++kc_.decay_misses; ++kc_.exp_sweeps;
         kc_.exp_calls += static_cast<std::uint64_t>(terms_));
  const double* r = rates();
  double* d = decay();
  for (std::size_t i = 0; i < terms_; ++i) {
    d[i] = std::exp(-r[i] * t);
  }
  decay_t_ = t;
}

void DiffusionBattery::fill_terms(double current_a, double t) const {
  fill_decay(t);
  if (t == gain_t_ && current_a == gain_current_a_) {
    BAS_KC(++kc_.gain_hits);
    return;
  }
  BAS_KC(++kc_.gain_misses);
  const double* r = rates();
  const double* d = decay();
  double* g = gain();
  BAS_SIMD
  for (std::size_t i = 0; i < terms_; ++i) {
    // The exact forcing subexpression of the original formulas:
    // (current · (1 − decay)) / rate, association preserved.
    g[i] = current_a * (1.0 - d[i]) / r[i];
  }
  gain_t_ = t;
  gain_current_a_ = current_a;
}

double DiffusionBattery::sigma_after_c(double current_a, double t) const {
  fill_terms(current_a, t);
  const double* d = decay();
  const double* g = gain();
  const double* s = s_lane();
  double sigma = drawn_c_ + current_a * t;
  for (std::size_t i = 0; i < terms_; ++i) {
    sigma += 2.0 * (s[i] * d[i] + g[i]);
  }
  return sigma;
}

void DiffusionBattery::advance(double current_a, double t) {
  fill_terms(current_a, t);
  drawn_c_ += current_a * t;
  const double* d = decay();
  const double* g = gain();
  double* s = s_lane();
  BAS_SIMD
  for (std::size_t i = 0; i < terms_; ++i) {
    s[i] = s[i] * d[i] + g[i];
  }
}

double DiffusionBattery::do_draw(double current_a, double dt_s) {
  if (sigma_after_c(current_a, dt_s) < params_.alpha_c) {
    advance(current_a, dt_s);
    return dt_s;
  }
  // Cutoff inside the segment. While current flows, sigma is strictly
  // increasing in t, so bisection finds the crossing. Every probe at a
  // repeated t rides the t-keyed decay memo (fill_decay).
  double lo = 0.0;
  double hi = dt_s;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sigma_after_c(current_a, mid) < params_.alpha_c) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  advance(current_a, lo);
  dead_ = true;
  return lo;
}

double DiffusionBattery::sigma_after_c_fast(double current_a,
                                            double t) const {
  // Strength-reduced decays: x = e^{-β²t}; x^{m²} = x^{(m-1)²}·x^{2m-1}
  // — one exp for the whole series. The recurrence itself is a serial
  // dependence chain, so it stays scalar by construction.
  BAS_KC(++kc_.exp_calls);
  const double x = std::exp(-params_.beta_squared * t);
  const double x_sq = x * x;
  double* fd = fast_decay();
  double odd = x;  // x^{2m-1}
  double dm = x;   // x^{m²}
  for (std::size_t i = 0; i < terms_; ++i) {
    fd[i] = dm;
    odd *= x_sq;
    dm *= odd;
  }
  const double* r = rates();
  const double* s = s_lane();
  double sigma = drawn_c_ + current_a * t;
  for (std::size_t i = 0; i < terms_; ++i) {
    sigma += 2.0 * (s[i] * fd[i] + current_a * (1.0 - fd[i]) / r[i]);
  }
  return sigma;
}

void DiffusionBattery::advance_with_fast_decays(double current_a, double t) {
  drawn_c_ += current_a * t;
  const double* r = rates();
  const double* fd = fast_decay();
  double* s = s_lane();
  BAS_SIMD
  for (std::size_t i = 0; i < terms_; ++i) {
    s[i] = s[i] * fd[i] + current_a * (1.0 - fd[i]) / r[i];
  }
}

double DiffusionBattery::do_advance_interval(double current_a, double dt_s) {
  BAS_KC(++kc_.fast_advances);
  if (sigma_after_c_fast(current_a, dt_s) < params_.alpha_c) {
    advance_with_fast_decays(current_a, dt_s);
    return dt_s;
  }
  double lo = 0.0;
  double hi = dt_s;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sigma_after_c_fast(current_a, mid) < params_.alpha_c) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Refill the fast lane at the committed crossing (the last probe may
  // have evaluated hi) before advancing the state to it.
  sigma_after_c_fast(current_a, lo);
  advance_with_fast_decays(current_a, lo);
  dead_ = true;
  return lo;
}

double DiffusionBattery::do_sigma_after(double current_a, double t_s) const {
  return sigma_after_c(current_a, t_s) / params_.alpha_c;
}

void DiffusionBattery::do_sigma_after_batch(const double* currents,
                                            std::size_t n, double t_s,
                                            double* out) const {
  // One decay sweep at the shared t (memo-keyed, so a repeated-t batch
  // costs zero exps); each lane then evaluates the scalar probe's exact
  // expression — storing the gain subexpression in a register instead
  // of the gain lane is an identity, so out[i] is bitwise the scalar
  // sigma_after(currents[i], t). The gain memo is left untouched.
  fill_decay(t_s);
  const double* r = rates();
  const double* d = decay();
  const double* s = s_lane();
  for (std::size_t lane = 0; lane < n; ++lane) {
    const double current_a = currents[lane];
    double sigma = drawn_c_ + current_a * t_s;
    for (std::size_t i = 0; i < terms_; ++i) {
      sigma += 2.0 * (s[i] * d[i] + current_a * (1.0 - d[i]) / r[i]);
    }
    out[lane] = sigma / params_.alpha_c;
  }
}

void DiffusionBattery::do_reset() {
  double* s = s_lane();
  for (std::size_t i = 0; i < terms_; ++i) {
    s[i] = 0.0;
  }
  drawn_c_ = 0.0;
  dead_ = false;
}

}  // namespace bas::bat
