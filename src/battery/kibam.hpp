#pragma once
// Kinetic Battery Model (KiBaM), Manwell & McGowan [8] — the two-well
// model the paper uses to explain both scheduling guidelines (§3).
//
//   available well y1 (fraction c of capacity)  -> feeds the load
//   bound well     y2 (fraction 1-c)            -> refills y1 at rate
//                                                  k * (h2 - h1)
// with well heights h1 = y1/c, h2 = y2/(1-c). The battery is discharged
// when the available well empties — possibly with charge still bound
// (the trapped charge battery-aware scheduling rescues).
//
// Stepping uses the exact closed-form solution of the two coupled ODEs
// for a constant current over the interval, so accuracy is independent
// of segment length; cutoff inside a segment is located by bisection on
// the closed form.

#include "battery/model.hpp"

namespace bas::bat {

struct KibamParams {
  /// Total charge capacity y1+y2 at full charge (C).
  double capacity_c = 7200.0;  // 2000 mAh
  /// Fraction of capacity in the available well.
  double c_fraction = 0.625;
  /// Well-equalization rate constant k' (1/s).
  double k_rate = 4.5e-4;

  /// Parameters calibrated for the paper's cell: 1.2 V AAA NiMH,
  /// 2000 mAh maximum (infinitesimal-load) capacity, ~1600 mAh delivered
  /// at the simulated full-speed load of ~1.8 A. See EXPERIMENTS.md.
  static KibamParams paper_aaa_nimh();
};

class KibamBattery final : public Battery {
 public:
  explicit KibamBattery(KibamParams params);

  std::string name() const override { return "kibam"; }
  bool empty() const override;
  double state_of_charge() const override;
  std::unique_ptr<Battery> fresh_clone() const override;

  const KibamParams& params() const noexcept { return params_; }
  /// Charge in the available well (C).
  double available_c() const noexcept { return y1_; }
  /// Charge in the bound well (C).
  double bound_c() const noexcept { return y2_; }

 protected:
  double do_draw(double current_a, double dt_s) override;
  double do_sigma_after(double current_a, double t_s) const override;
  /// One shared e^{-kt} (and its two derived t-terms) serves every
  /// current lane; per-lane arithmetic is the scalar probe's exactly.
  void do_sigma_after_batch(const double* currents, std::size_t n,
                            double t_s, double* out) const override;
  void do_reset() override;

 private:
  /// y1 after drawing `current_a` for `t` seconds from state (y1_, y2_).
  double y1_after(double current_a, double t) const;
  double y2_after(double current_a, double t) const;
  /// Available-well depletion for one lane given the three hoisted
  /// t-subexpressions of the closed form (e = e^{-kt},
  /// one_minus_e = 1 − e, kt_term = k·t − 1 + e). Hoisting whole
  /// subexpressions preserves every association, so the result is
  /// bitwise the inline formula's.
  double lane_depletion(double current_a, double e, double one_minus_e,
                        double kt_term) const;
  /// Both wells after the same interval, evaluating the shared
  /// e^{-kt} once. The per-well expressions are identical to
  /// y1_after/y2_after — this is the main-path fast lane that halves
  /// the exp count without changing a bit.
  void wells_after(double current_a, double t, double* y1_out,
                   double* y2_out) const;

  KibamParams params_;
  double y1_ = 0.0;
  double y2_ = 0.0;
  bool dead_ = false;
};

}  // namespace bas::bat
