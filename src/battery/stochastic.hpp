#pragma once
// Stochastic battery model — stand-in for the model of Rao, Singhal,
// Kumar & Navet, "Battery model for embedded systems" (VLSI Design 2005)
// [13], which the paper uses to estimate battery life in §5 and whose
// exact parameters are not recoverable from the paper.
//
// Following that line of work (Chiasserini–Rao and [13]), the cell is a
// discrete-time stochastic process over charge quanta in two wells with
// KiBaM drift: each slot consumes I*dt from the available well, and
// recovery moves whole charge quanta from the bound well with a
// Bernoulli probability chosen so the *expected* transfer equals the
// kinetic-model rate k*(h2-h1)*dt. The expectation therefore tracks
// KibamBattery exactly (a property the tests check), while individual
// runs show the variance a stochastic model contributes.
//
// See DESIGN.md §5 (substitutions).

#include "battery/kibam.hpp"
#include "battery/model.hpp"
#include "util/rng.hpp"

namespace bas::bat {

struct StochasticParams {
  /// Underlying kinetic parameters (wells, rate constant).
  KibamParams kinetics = KibamParams::paper_aaa_nimh();
  /// Time slot of the discrete process (s).
  double slot_s = 0.01;
  /// Charge quantum moved per successful recovery event (C). The
  /// default splits the paper's 2000 mAh cell into 2e5 quanta.
  double quantum_c = 0.036;
  /// Seed for the recovery process.
  std::uint64_t seed = 0x5eedba77ULL;
};

class StochasticBattery final : public Battery {
 public:
  explicit StochasticBattery(StochasticParams params);

  std::string name() const override { return "stochastic"; }
  bool empty() const override;
  double state_of_charge() const override;
  std::unique_ptr<Battery> fresh_clone() const override;

  const StochasticParams& params() const noexcept { return params_; }
  double available_c() const noexcept { return y1_; }
  double bound_c() const noexcept { return y2_; }

 protected:
  double do_draw(double current_a, double dt_s) override;
  /// Deterministic expectation probe: the stochastic slot process has
  /// no closed form, so the probe evaluates the underlying kinetic
  /// (KiBaM) solution from the current wells — E[depletion] of the
  /// quantized process, consuming no randomness.
  double do_sigma_after(double current_a, double t_s) const override;
  void do_reset() override;

 private:
  /// Advances one slot of length `dt` at the given current; returns the
  /// sustained time within the slot (< dt only when the cell dies).
  double step_slot(double current_a, double dt);

  StochasticParams params_;
  util::Rng rng_;
  /// k·c·(1−c), hoisted from the per-slot transfer expression with the
  /// same association the formula used (bit-identical values).
  double flow_coeff_ = 0.0;
  double one_minus_c_ = 0.0;  // 1 − c, for the bound-well height
  double y1_ = 0.0;
  double y2_ = 0.0;
  bool dead_ = false;
};

}  // namespace bas::bat
