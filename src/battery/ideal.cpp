#include "battery/ideal.hpp"

#include <stdexcept>

namespace bas::bat {

IdealBattery::IdealBattery(double capacity_c)
    : capacity_c_(capacity_c), remaining_c_(capacity_c) {
  if (!(capacity_c > 0.0)) {
    throw std::invalid_argument("IdealBattery: capacity must be positive");
  }
}

bool IdealBattery::empty() const { return remaining_c_ <= 0.0; }

double IdealBattery::state_of_charge() const {
  return remaining_c_ / capacity_c_;
}

std::unique_ptr<Battery> IdealBattery::fresh_clone() const {
  return std::make_unique<IdealBattery>(capacity_c_);
}

double IdealBattery::do_sigma_after(double current_a, double t_s) const {
  // Pure bucket: depletion is charge out over capacity; idle is free.
  const double demand_c = current_a > 0.0 ? current_a * t_s : 0.0;
  return (capacity_c_ - remaining_c_ + demand_c) / capacity_c_;
}

double IdealBattery::do_draw(double current_a, double dt_s) {
  if (current_a <= 0.0) {
    return dt_s;  // idle costs nothing and recovers nothing
  }
  const double needed_c = current_a * dt_s;
  if (needed_c <= remaining_c_) {
    remaining_c_ -= needed_c;
    return dt_s;
  }
  const double sustained = remaining_c_ / current_a;
  remaining_c_ = 0.0;
  return sustained;
}

void IdealBattery::do_reset() { remaining_c_ = capacity_c_; }

}  // namespace bas::bat
