#include "battery/lifetime.hpp"

namespace bas::bat {

LifetimeResult lifetime_under_profile(const Battery& prototype,
                                      const LoadProfile& profile,
                                      double max_time_s) {
  const auto battery = prototype.fresh_clone();
  const double survived = profile.discharge_repeating(*battery, max_time_s);
  LifetimeResult result;
  result.lifetime_s = survived;
  result.delivered_c = battery->charge_delivered_c();
  result.died = battery->empty();
  return result;
}

std::vector<RateCapacityPoint> rate_capacity_curve(
    const Battery& prototype, const std::vector<double>& loads_a,
    double max_time_s) {
  std::vector<RateCapacityPoint> curve;
  curve.reserve(loads_a.size());
  for (double load : loads_a) {
    const auto result = lifetime_under_profile(
        prototype, LoadProfile::constant(load, 1.0), max_time_s);
    curve.push_back(RateCapacityPoint{load, result.delivered_mah(),
                                      result.lifetime_min()});
  }
  return curve;
}

double max_capacity_mah(const Battery& prototype, double probe_current_a,
                        double max_time_s) {
  const auto result = lifetime_under_profile(
      prototype, LoadProfile::constant(probe_current_a, 1.0), max_time_s);
  return result.delivered_mah();
}

}  // namespace bas::bat
