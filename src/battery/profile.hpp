#pragma once
// Load profiles: piecewise-constant current-vs-time traces.
//
// The simulator emits one of these per run; battery models consume them.
// The shape of this profile — not just its integral — determines how
// much charge a real battery delivers, which is the paper's core point.

#include <cmath>
#include <stdexcept>
#include <vector>

#include "battery/model.hpp"

namespace bas::bat {

struct Segment {
  double duration_s = 0.0;
  double current_a = 0.0;
};

class LoadProfile {
 public:
  LoadProfile() = default;

  /// Appends a segment; zero-duration segments are dropped, and a
  /// segment equal in current to the previous one (within 1e-12 A) is
  /// merged into it. Defined inline: the simulator calls this on every
  /// battery draw, and the merge path is a two-branch append.
  void add(double duration_s, double current_a) {
    if (duration_s < 0.0 || current_a < 0.0) {
      throw std::invalid_argument("LoadProfile::add: negative value");
    }
    if (duration_s == 0.0) {
      return;
    }
    if (!segments_.empty() &&
        std::abs(segments_.back().current_a - current_a) <= 1e-12) {
      segments_.back().duration_s += duration_s;
      return;
    }
    segments_.push_back(Segment{duration_s, current_a});
  }

  /// Pre-allocates room for `segments` entries (the simulator reserves
  /// ahead of a run so steady-state add() calls never reallocate).
  void reserve(std::size_t segments) { segments_.reserve(segments); }

  const std::vector<Segment>& segments() const noexcept { return segments_; }
  bool empty() const noexcept { return segments_.empty(); }
  std::size_t size() const noexcept { return segments_.size(); }

  double duration_s() const noexcept;
  /// Integral of current over time (C).
  double total_charge_c() const noexcept;
  double average_current_a() const noexcept;
  double peak_current_a() const noexcept;

  /// True when currents never increase from one segment to the next
  /// (within `tol` amperes) — Scheduling Guideline 1's global property.
  bool is_non_increasing(double tol = 1e-9) const noexcept;

  /// Counts current increases above `tol` between consecutive segments;
  /// a cheap proxy for how far a profile is from Guideline 1.
  std::size_t increase_count(double tol = 1e-9) const noexcept;

  /// The same segments in reverse order (turns a non-increasing profile
  /// into a non-decreasing one; used by the guideline benches).
  LoadProfile reversed() const;

  /// Constant-current profile.
  static LoadProfile constant(double current_a, double duration_s);

  /// Feeds the profile into `battery` once, stopping early if the cell
  /// dies. Returns the time survived within this profile.
  double discharge_into(Battery& battery) const;

  /// Feeds the profile into `battery` repeatedly (periodic workload)
  /// until the cell dies or `max_time_s` elapses. Returns survival time.
  double discharge_repeating(Battery& battery, double max_time_s) const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace bas::bat
