#include "battery/peukert.hpp"

#include <cmath>
#include <stdexcept>

namespace bas::bat {

PeukertBattery::PeukertBattery(PeukertParams params) : params_(params) {
  if (!(params_.capacity_c > 0.0) || params_.exponent < 1.0 ||
      !(params_.reference_current_a > 0.0)) {
    throw std::invalid_argument("PeukertBattery: bad parameters");
  }
  exponent_minus_one_ = params_.exponent - 1.0;
}

bool PeukertBattery::empty() const {
  return consumed_c_ >= params_.capacity_c;
}

double PeukertBattery::state_of_charge() const {
  return 1.0 - consumed_c_ / params_.capacity_c;
}

std::unique_ptr<Battery> PeukertBattery::fresh_clone() const {
  return std::make_unique<PeukertBattery>(params_);
}

double PeukertBattery::effective_rate(double current_a) const {
  if (current_a == last_current_a_) {
    BAS_KC(++kc_.pow_hits);
    return last_rate_;
  }
  BAS_KC(++kc_.pow_misses);
  const double ratio = std::max(1.0, current_a / params_.reference_current_a);
  // pow(1, y) is exactly 1 (IEC 60559), so sub-reference currents can
  // skip the call without perturbing a bit.
  const double rate = ratio == 1.0
                          ? current_a
                          : current_a * std::pow(ratio, exponent_minus_one_);
  last_current_a_ = current_a;
  last_rate_ = rate;
  return rate;
}

double PeukertBattery::do_sigma_after(double current_a, double t_s) const {
  if (current_a <= 0.0) {
    // No recovery and idling is free: depletion is simply the present
    // consumed fraction, whatever t.
    return consumed_c_ / params_.capacity_c;
  }
  return (consumed_c_ + effective_rate(current_a) * t_s) /
         params_.capacity_c;
}

void PeukertBattery::do_sigma_after_batch(const double* currents,
                                          std::size_t n, double t_s,
                                          double* out) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = do_sigma_after(currents[i], t_s);
  }
}

double PeukertBattery::do_draw(double current_a, double dt_s) {
  if (current_a <= 0.0) {
    return dt_s;  // Peukert has no recovery; idling is simply free
  }
  const double rate = effective_rate(current_a);
  const double head_room = params_.capacity_c - consumed_c_;
  if (rate * dt_s <= head_room) {
    consumed_c_ += rate * dt_s;
    return dt_s;
  }
  const double sustained = head_room / rate;
  consumed_c_ = params_.capacity_c;
  return sustained;
}

void PeukertBattery::do_reset() { consumed_c_ = 0.0; }

}  // namespace bas::bat
