#include "battery/peukert.hpp"

#include <cmath>
#include <stdexcept>

namespace bas::bat {

PeukertBattery::PeukertBattery(PeukertParams params) : params_(params) {
  if (!(params_.capacity_c > 0.0) || params_.exponent < 1.0 ||
      !(params_.reference_current_a > 0.0)) {
    throw std::invalid_argument("PeukertBattery: bad parameters");
  }
  exponent_minus_one_ = params_.exponent - 1.0;
}

bool PeukertBattery::empty() const {
  return consumed_c_ >= params_.capacity_c;
}

double PeukertBattery::state_of_charge() const {
  return 1.0 - consumed_c_ / params_.capacity_c;
}

std::unique_ptr<Battery> PeukertBattery::fresh_clone() const {
  return std::make_unique<PeukertBattery>(params_);
}

double PeukertBattery::do_draw(double current_a, double dt_s) {
  if (current_a <= 0.0) {
    return dt_s;  // Peukert has no recovery; idling is simply free
  }
  // Effective drain rate (C/s), >= the physical current for I > Iref.
  double rate;
  if (current_a == last_current_a_) {
    rate = last_rate_;
  } else {
    const double ratio =
        std::max(1.0, current_a / params_.reference_current_a);
    // pow(1, y) is exactly 1 (IEC 60559), so sub-reference currents can
    // skip the call without perturbing a bit.
    rate = ratio == 1.0 ? current_a
                        : current_a * std::pow(ratio, exponent_minus_one_);
    last_current_a_ = current_a;
    last_rate_ = rate;
  }
  const double head_room = params_.capacity_c - consumed_c_;
  if (rate * dt_s <= head_room) {
    consumed_c_ += rate * dt_s;
    return dt_s;
  }
  const double sustained = head_room / rate;
  consumed_c_ = params_.capacity_c;
  return sustained;
}

void PeukertBattery::do_reset() { consumed_c_ = 0.0; }

}  // namespace bas::bat
