#pragma once
// Peukert's-law battery: captures the rate-capacity effect (higher load
// -> less usable capacity) but not the recovery effect. Used by early
// battery-aware work such as Luo & Jha [7].

#include "battery/model.hpp"

namespace bas::bat {

struct PeukertParams {
  /// Charge delivered at the reference rate (C).
  double capacity_c = 7200.0;
  /// Peukert exponent (>= 1; 1 degenerates to the ideal battery).
  double exponent = 1.2;
  /// Reference current at which the rated capacity holds (A).
  double reference_current_a = 0.2;
};

/// Generalized-Peukert model for time-varying loads: the cell is empty
/// when  ∫ I(t) * (I(t)/Iref)^(p-1) dt  >=  capacity. For constant I
/// this reduces to lifetime = C / (I * (I/Iref)^(p-1)) — Peukert's law.
/// Currents below Iref are treated as Iref-equivalent per unit charge
/// (no "super-capacity" extrapolation), keeping delivered charge bounded
/// by the rated capacity.
class PeukertBattery final : public Battery {
 public:
  explicit PeukertBattery(PeukertParams params);

  std::string name() const override { return "peukert"; }
  bool empty() const override;
  double state_of_charge() const override;
  std::unique_ptr<Battery> fresh_clone() const override;

  const PeukertParams& params() const noexcept { return params_; }

 protected:
  double do_draw(double current_a, double dt_s) override;
  double do_sigma_after(double current_a, double t_s) const override;
  /// Loops the scalar probe body directly (one virtual dispatch per
  /// batch); lanes share the rate memo exactly as scalar calls in
  /// sequence would.
  void do_sigma_after_batch(const double* currents, std::size_t n,
                            double t_s, double* out) const override;
  void do_reset() override;

 private:
  /// Effective drain rate (C/s) for a current, >= the physical current
  /// for I > Iref — the memoized pow shared by draw and the probes.
  double effective_rate(double current_a) const;

  PeukertParams params_;
  double exponent_minus_one_ = 0.0;  // hoisted from the per-draw pow
  /// Memo of the last (current -> effective drain rate) pair: the
  /// simulator's piecewise-constant profiles repeat the same few
  /// operating-point currents, so most draws skip the pow entirely.
  /// The rate is a pure function of the current and the (fixed)
  /// params, so the memo stays exact across draws, probes and resets
  /// (mutable: the const probe paths may warm it).
  mutable double last_current_a_ = -1.0;
  mutable double last_rate_ = 0.0;
  double consumed_c_ = 0.0;  // Peukert-weighted charge
};

}  // namespace bas::bat
