#include "battery/profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bas::bat {

double LoadProfile::duration_s() const noexcept {
  double t = 0.0;
  for (const auto& s : segments_) {
    t += s.duration_s;
  }
  return t;
}

double LoadProfile::total_charge_c() const noexcept {
  double q = 0.0;
  for (const auto& s : segments_) {
    q += s.duration_s * s.current_a;
  }
  return q;
}

double LoadProfile::average_current_a() const noexcept {
  const double t = duration_s();
  return t > 0.0 ? total_charge_c() / t : 0.0;
}

double LoadProfile::peak_current_a() const noexcept {
  double peak = 0.0;
  for (const auto& s : segments_) {
    peak = std::max(peak, s.current_a);
  }
  return peak;
}

bool LoadProfile::is_non_increasing(double tol) const noexcept {
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].current_a > segments_[i - 1].current_a + tol) {
      return false;
    }
  }
  return true;
}

std::size_t LoadProfile::increase_count(double tol) const noexcept {
  std::size_t count = 0;
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].current_a > segments_[i - 1].current_a + tol) {
      ++count;
    }
  }
  return count;
}

LoadProfile LoadProfile::reversed() const {
  LoadProfile out;
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    out.add(it->duration_s, it->current_a);
  }
  return out;
}

LoadProfile LoadProfile::constant(double current_a, double duration_s) {
  LoadProfile p;
  p.add(duration_s, current_a);
  return p;
}

double LoadProfile::discharge_into(Battery& battery) const {
  double survived = 0.0;
  for (const auto& s : segments_) {
    const double sustained = battery.draw(s.current_a, s.duration_s);
    survived += sustained;
    if (battery.empty()) {
      break;
    }
  }
  return survived;
}

double LoadProfile::discharge_repeating(Battery& battery,
                                        double max_time_s) const {
  if (empty()) {
    throw std::invalid_argument(
        "LoadProfile::discharge_repeating: empty profile");
  }
  double survived = 0.0;
  while (!battery.empty() && survived < max_time_s) {
    for (const auto& s : segments_) {
      const double slice =
          std::min(s.duration_s, std::max(0.0, max_time_s - survived));
      survived += battery.draw(s.current_a, slice);
      if (battery.empty() || survived >= max_time_s) {
        break;
      }
    }
  }
  return survived;
}

}  // namespace bas::bat
