#pragma once
// Per-kernel battery cache/work counters (the MAGPIE BENCH_NOTES
// recipe: land cheap hit/miss counters behind a compile flag *before*
// optimizing, so every batching/vectorization win is attributable).
//
// Counting is always-on at runtime when compiled in — a handful of
// integer increments on paths that already touch the same cache lines —
// and compiles out entirely under -DBAS_KERNEL_COUNTERS=0 (the CMake
// option of the same name). The counters live on the Battery and are
// cleared by Battery::reset(); the simulator engines copy them into
// SimResult::perf.kernel when SimConfig::record_perf_counters is set,
// which is how bench/perf_hotpath surfaces them per cell.
//
// The counters are instrumentation only: they never enter a sink or a
// cache record, so they cannot perturb the byte-identity contract.

#include <cstdint>

#ifndef BAS_KERNEL_COUNTERS
#define BAS_KERNEL_COUNTERS 1
#endif

#if BAS_KERNEL_COUNTERS
#define BAS_KC(...)  \
  do {               \
    __VA_ARGS__;     \
  } while (0)
#else
#define BAS_KC(...) \
  do {              \
  } while (0)
#endif

namespace bas::bat {

/// Per-kernel work and memo-hit counters. Semantics per field are tied
/// to the kernel that owns them (see EXPERIMENTS.md, "Kernel
/// instrumentation & batching" for the full table).
struct KernelCounters {
  /// True when the build compiled the increments in (BAS_KERNEL_COUNTERS).
  static constexpr bool compiled_in = BAS_KERNEL_COUNTERS != 0;

  /// Full per-term exponential sweeps (diffusion: one e^{-rate·t} per
  /// series term). The denominator of the batching win.
  std::uint64_t exp_sweeps = 0;
  /// Scalar std::exp evaluations across all kernels (a sweep of M terms
  /// counts M; the strength-reduced fast series counts 1 per probe).
  std::uint64_t exp_calls = 0;
  /// Diffusion t-keyed decay buffer: reuse vs refill (a miss is one
  /// exp_sweep).
  std::uint64_t decay_hits = 0;
  std::uint64_t decay_misses = 0;
  /// Diffusion (t, I)-keyed gain buffer: reuse vs refill.
  std::uint64_t gain_hits = 0;
  std::uint64_t gain_misses = 0;
  /// KiBaM wells_after steps: one shared e^{-kt} serving both wells
  /// (each saves one exp vs the two-call formula).
  std::uint64_t kibam_shared_exps = 0;
  /// Peukert (current -> effective rate) memo: a hit skips the pow.
  std::uint64_t pow_hits = 0;
  std::uint64_t pow_misses = 0;
  /// sigma_after_batch invocations and total lanes they served. One
  /// rate-table/exp sweep per call covers batch_lanes/batch_calls
  /// probes on average.
  std::uint64_t batch_calls = 0;
  std::uint64_t batch_lanes = 0;
  /// Diffusion strength-reduced interval advances (the merged-window
  /// fast series: 1 exp per probe instead of one per term).
  std::uint64_t fast_advances = 0;

  void clear() { *this = KernelCounters{}; }

  KernelCounters& operator+=(const KernelCounters& o) {
    exp_sweeps += o.exp_sweeps;
    exp_calls += o.exp_calls;
    decay_hits += o.decay_hits;
    decay_misses += o.decay_misses;
    gain_hits += o.gain_hits;
    gain_misses += o.gain_misses;
    kibam_shared_exps += o.kibam_shared_exps;
    pow_hits += o.pow_hits;
    pow_misses += o.pow_misses;
    batch_calls += o.batch_calls;
    batch_lanes += o.batch_lanes;
    fast_advances += o.fast_advances;
    return *this;
  }
};

}  // namespace bas::bat
