#include "battery/stochastic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bas::bat {

StochasticBattery::StochasticBattery(StochasticParams params)
    : params_(params), rng_(params.seed) {
  if (!(params_.slot_s > 0.0) || !(params_.quantum_c > 0.0)) {
    throw std::invalid_argument("StochasticBattery: bad parameters");
  }
  if (!(params_.kinetics.capacity_c > 0.0) ||
      !(params_.kinetics.c_fraction > 0.0) ||
      params_.kinetics.c_fraction >= 1.0 || !(params_.kinetics.k_rate > 0.0)) {
    throw std::invalid_argument("StochasticBattery: bad kinetic parameters");
  }
  const double c = params_.kinetics.c_fraction;
  one_minus_c_ = 1.0 - c;
  flow_coeff_ = params_.kinetics.k_rate * c * (1.0 - c);
  do_reset();
}

bool StochasticBattery::empty() const { return dead_; }

double StochasticBattery::state_of_charge() const {
  return (y1_ + y2_) / params_.kinetics.capacity_c;
}

std::unique_ptr<Battery> StochasticBattery::fresh_clone() const {
  return std::make_unique<StochasticBattery>(params_);
}

double StochasticBattery::step_slot(double current_a, double dt) {
  const double c = params_.kinetics.c_fraction;

  // Kinetic drift between the wells for this slot, realized as an
  // integral number of quanta plus a Bernoulli fractional quantum so
  // that E[moved] matches KibamBattery's flow. The closed form's rate
  // constant k' relates to the height-difference flow by a c(1-c)
  // factor: dy1/dt = -I + k' * c * (1-c) * (h2 - h1), with the
  // k'·c·(1-c) product hoisted to the constructor.
  const double h1 = y1_ / c;
  const double h2 = y2_ / one_minus_c_;
  const double expected_transfer_c = flow_coeff_ * (h2 - h1) * dt;
  double transfer_c = 0.0;
  if (expected_transfer_c > 0.0) {
    const double quanta = expected_transfer_c / params_.quantum_c;
    double whole = std::floor(quanta);
    if (rng_.bernoulli(quanta - whole)) {
      whole += 1.0;
    }
    transfer_c = std::min(whole * params_.quantum_c, y2_);
  } else if (expected_transfer_c < 0.0) {
    // Available well above the bound well (cannot happen from a full
    // start under discharge, but keep the dynamics symmetric).
    const double quanta = -expected_transfer_c / params_.quantum_c;
    double whole = std::floor(quanta);
    if (rng_.bernoulli(quanta - whole)) {
      whole += 1.0;
    }
    transfer_c = -std::min(whole * params_.quantum_c, y1_);
  }

  const double demand_c = current_a * dt;
  if (y1_ + transfer_c <= demand_c) {
    // Dies within the slot; grant the time the available charge funds.
    const double sustained =
        current_a > 0.0 ? (y1_ + transfer_c) / current_a : dt;
    y2_ -= std::max(0.0, transfer_c);
    y1_ = 0.0;
    dead_ = true;
    return std::min(sustained, dt);
  }
  y1_ += transfer_c - demand_c;
  y2_ -= transfer_c;
  y2_ = std::max(0.0, y2_);
  return dt;
}

double StochasticBattery::do_sigma_after(double current_a, double t_s) const {
  const double k = params_.kinetics.k_rate;
  const double c = params_.kinetics.c_fraction;
  const double y0 = y1_ + y2_;
  BAS_KC(++kc_.exp_calls);
  const double e = std::exp(-k * t_s);
  // Manwell-McGowan closed form from (y1_, y2_) — the expectation of
  // the Bernoulli-quantized drift the slots realize.
  const double y1_end = y1_ * e + (y0 * k * c - current_a) * (1.0 - e) / k -
                        current_a * c * (k * t_s - 1.0 + e) / k;
  return 1.0 - y1_end / (c * params_.kinetics.capacity_c);
}

double StochasticBattery::do_draw(double current_a, double dt_s) {
  double sustained = 0.0;
  double remaining = dt_s;
  while (remaining > 0.0 && !dead_) {
    const double dt = std::min(params_.slot_s, remaining);
    sustained += step_slot(current_a, dt);
    remaining -= dt;
  }
  return sustained;
}

void StochasticBattery::do_reset() {
  y1_ = params_.kinetics.c_fraction * params_.kinetics.capacity_c;
  y2_ = (1.0 - params_.kinetics.c_fraction) * params_.kinetics.capacity_c;
  dead_ = false;
  rng_ = util::Rng(params_.seed);
}

}  // namespace bas::bat
