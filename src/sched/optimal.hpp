#pragma once
// Single-graph scheduling with known actual computations: order
// evaluation, greedy scheduling with a priority policy, and the
// exhaustive-optimal search (branch & bound) used as the normalizer of
// the paper's Table 1.
//
// Setting: one task graph, all nodes share the graph's deadline D; at
// every task start the frequency is set to remaining-worst-case / time-
// to-deadline (ccEDF restricted to a single graph) and realized on the
// processor. Slack from tasks finishing under their wc is thus recovered
// by all later tasks — how much depends on the order, which is the
// quantity being optimized. Scheduling even one graph optimally is
// NP-hard (Lawler [6]), hence the branch & bound with a node budget.

#include <cstdint>
#include <vector>

#include "dvs/processor.hpp"
#include "sched/estimator.hpp"
#include "sched/priority.hpp"
#include "taskgraph/graph.hpp"

namespace bas::sched {

struct SingleGraphResult {
  std::vector<tg::NodeId> order;
  double energy_j = 0.0;
  double finish_time_s = 0.0;
  /// Optimal search only: true when the search completed within budget
  /// (the result is provably optimal), false when the incumbent is only
  /// the best found.
  bool exact = true;
  /// Search nodes explored (optimal search only).
  std::uint64_t explored = 0;
};

/// Executes `order` (validated topological) with the given per-node
/// actual cycles. Throws std::invalid_argument on a non-topological
/// order or mismatched actuals size.
SingleGraphResult evaluate_order(const tg::TaskGraph& graph,
                                 const std::vector<double>& actual_cycles,
                                 const dvs::Processor& proc,
                                 const std::vector<tg::NodeId>& order);

/// Greedy run: at each step score all ready nodes with `priority`
/// (estimates from `estimator`) and run the best. This is the paper's
/// single-graph scheduling procedure for pUBS/LTF/STF/Random.
SingleGraphResult greedy_schedule(const tg::TaskGraph& graph,
                                  const std::vector<double>& actual_cycles,
                                  const dvs::Processor& proc,
                                  PriorityPolicy& priority,
                                  Estimator& estimator);

/// Exhaustive-optimal energy schedule by depth-first branch & bound over
/// topological orders with an admissible clairvoyant lower bound and a
/// per-completed-set Pareto memo. Graphs are limited to 64 nodes.
/// `node_budget` caps explored search nodes; on exhaustion the best
/// incumbent is returned with exact == false.
SingleGraphResult optimal_schedule(const tg::TaskGraph& graph,
                                   const std::vector<double>& actual_cycles,
                                   const dvs::Processor& proc,
                                   std::uint64_t node_budget = 20'000'000);

}  // namespace bas::sched
