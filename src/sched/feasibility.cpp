#include "sched/feasibility.hpp"

namespace bas::sched {

namespace {

// The one prefix fold both public overloads share. `status_at(j)` must
// return the j-th graph of the EDF order; keeping the fold in a single
// template (rather than two hand-kept copies) is what guarantees the
// span and indexed paths stay bitwise-identical: same accumulation
// order, same comparisons, same early exits.
template <typename StatusAt>
bool check_prefix(StatusAt status_at, int candidate_pos,
                  double candidate_wc_cycles, double fref_hz,
                  double now) noexcept {
  // Position 0 (most imminent graph) is plain EDF: nothing to check.
  double prefix_wc_cycles = 0.0;
  for (int j = 0; j < candidate_pos; ++j) {
    const dvs::GraphStatus& g = status_at(j);
    prefix_wc_cycles += g.remaining_wc_cycles;
    const double window_s = g.abs_deadline_s - now;
    if (window_s < 0.0) {
      return false;
    }
    if (prefix_wc_cycles + candidate_wc_cycles > fref_hz * window_s) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool feasibility_check(std::span<const dvs::GraphStatus> edf_sorted,
                       int candidate_pos, double candidate_wc_cycles,
                       double fref_hz, double now) noexcept {
  return check_prefix(
      [edf_sorted](int j) -> const dvs::GraphStatus& {
        return edf_sorted[static_cast<std::size_t>(j)];
      },
      candidate_pos, candidate_wc_cycles, fref_hz, now);
}

bool feasibility_check(std::span<const dvs::GraphStatus> statuses,
                       std::span<const int> edf_order, int candidate_pos,
                       double candidate_wc_cycles, double fref_hz,
                       double now) noexcept {
  return check_prefix(
      [statuses, edf_order](int j) -> const dvs::GraphStatus& {
        return statuses[static_cast<std::size_t>(
            edf_order[static_cast<std::size_t>(j)])];
      },
      candidate_pos, candidate_wc_cycles, fref_hz, now);
}

}  // namespace bas::sched
