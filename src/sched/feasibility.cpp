#include "sched/feasibility.hpp"

namespace bas::sched {

bool feasibility_check(std::span<const dvs::GraphStatus> edf_sorted,
                       int candidate_pos, double candidate_wc_cycles,
                       double fref_hz, double now) {
  // Position 0 (most imminent graph) is plain EDF: nothing to check.
  double prefix_wc_cycles = 0.0;
  for (int j = 0; j < candidate_pos; ++j) {
    const auto& g = edf_sorted[static_cast<std::size_t>(j)];
    prefix_wc_cycles += g.remaining_wc_cycles;
    const double window_s = g.abs_deadline_s - now;
    if (window_s < 0.0) {
      return false;
    }
    if (prefix_wc_cycles + candidate_wc_cycles > fref_hz * window_s) {
      return false;
    }
  }
  return true;
}

bool feasibility_check(std::span<const dvs::GraphStatus> statuses,
                       std::span<const int> edf_order, int candidate_pos,
                       double candidate_wc_cycles, double fref_hz,
                       double now) {
  double prefix_wc_cycles = 0.0;
  for (int j = 0; j < candidate_pos; ++j) {
    const auto& g =
        statuses[static_cast<std::size_t>(edf_order[static_cast<std::size_t>(j)])];
    prefix_wc_cycles += g.remaining_wc_cycles;
    const double window_s = g.abs_deadline_s - now;
    if (window_s < 0.0) {
      return false;
    }
    if (prefix_wc_cycles + candidate_wc_cycles > fref_hz * window_s) {
      return false;
    }
  }
  return true;
}

}  // namespace bas::sched
