#include <limits>

#include "sched/priority.hpp"

namespace bas::sched {

namespace {

class PubsPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "pUBS"; }
  bool uses_estimate() const override { return true; }

  double score(const Candidate& cand, double now) override {
    constexpr double kEps = 1e-12;
    const double time_left = cand.graph_abs_deadline_s - now;
    if (time_left <= kEps) {
      return -std::numeric_limits<double>::infinity();  // run immediately
    }
    // Speed after the current partial order: all remaining worst case
    // by the deadline.
    const double s_o = cand.graph_remaining_wc_cycles / time_left;
    if (s_o <= kEps) {
      return std::numeric_limits<double>::infinity();
    }
    // Run τk next at s_o for its estimated Xk cycles...
    const double x_k = cand.estimate_cycles;
    const double t_after = time_left - x_k / s_o;
    const double rem_after = cand.graph_remaining_wc_cycles - cand.wc_cycles;
    if (t_after <= kEps) {
      // Estimate fills (or overfills) the window; no recovery possible.
      return std::numeric_limits<double>::max();
    }
    // ...then the speed needed for what is left.
    const double s_ok = rem_after / t_after;
    const double denom = s_o * s_o - s_ok * s_ok;
    if (denom <= kEps * s_o * s_o) {
      // Xk == wc_k (or worse estimate): zero expected recovery. Order
      // these after every task with genuine recovery, larger Xk last.
      return 0.5 * std::numeric_limits<double>::max() *
             (x_k / (x_k + cand.wc_cycles + 1.0));
    }
    return x_k / denom;
  }

  // One virtual dispatch per decision point; the inner calls
  // devirtualize (final class), so each lane is the scalar score body.
  void score_batch(const Candidate* candidates, std::size_t n, double now,
                   double* out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = score(candidates[i], now);
    }
  }
};

class LtfPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "LTF"; }
  double score(const Candidate& cand, double) override {
    return -cand.wc_cycles;
  }
};

class StfPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "STF"; }
  double score(const Candidate& cand, double) override {
    return cand.wc_cycles;
  }
};

class RandomPriority final : public PriorityPolicy {
 public:
  explicit RandomPriority(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::string name() const override { return "Random"; }
  double score(const Candidate&, double) override { return rng_.uniform(); }
  // Lane i draws i-th — the same stream order as scalar calls in
  // sequence, which the tick-vs-event CRN contract depends on.
  void score_batch(const Candidate*, std::size_t n, double,
                   double* out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rng_.uniform();
    }
  }
  bool stochastic() const override { return true; }
  void reset() override { rng_ = util::Rng(seed_); }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

class FifoPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "FIFO"; }
  double score(const Candidate& cand, double) override {
    return static_cast<double>(cand.graph) * 1.0e6 +
           static_cast<double>(cand.node);
  }
};

}  // namespace

std::unique_ptr<PriorityPolicy> make_pubs_priority() {
  return std::make_unique<PubsPriority>();
}

std::unique_ptr<PriorityPolicy> make_ltf_priority() {
  return std::make_unique<LtfPriority>();
}

std::unique_ptr<PriorityPolicy> make_stf_priority() {
  return std::make_unique<StfPriority>();
}

std::unique_ptr<PriorityPolicy> make_random_priority(std::uint64_t seed) {
  return std::make_unique<RandomPriority>(seed);
}

std::unique_ptr<PriorityPolicy> make_fifo_priority() {
  return std::make_unique<FifoPriority>();
}

}  // namespace bas::sched
