#include <cmath>
#include <limits>

#include "sched/priority.hpp"

namespace bas::sched {

namespace {

class PubsPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "pUBS"; }
  bool uses_estimate() const override { return true; }

  double score(const Candidate& cand, double now) override {
    constexpr double kEps = 1e-12;
    // Per-(graph, decision point) hoist: sibling candidates of one
    // graph share (now, deadline, remaining wc), so time_left, the s_o
    // division and s_o^2 are computed once and the identical doubles
    // reused — exact operand-keyed memoization, no reassociation, so
    // every score is bit-identical to the unhoisted arithmetic
    // (pinned by tests/test_incremental_state.cpp). A coincidental key
    // match across graphs reuses equally identical values.
    if (now != memo_now_ || cand.graph_abs_deadline_s != memo_deadline_ ||
        cand.graph_remaining_wc_cycles != memo_rem_wc_) {
      memo_now_ = now;
      memo_deadline_ = cand.graph_abs_deadline_s;
      memo_rem_wc_ = cand.graph_remaining_wc_cycles;
      memo_time_left_ = memo_deadline_ - now;
      // Guarded: the unhoisted path never divides when time_left is
      // at/below epsilon (early return) — the 0.0 is never read.
      memo_s_o_ = memo_time_left_ > kEps ? memo_rem_wc_ / memo_time_left_
                                         : 0.0;
      memo_s_o_sq_ = memo_s_o_ * memo_s_o_;
    }
    const double time_left = memo_time_left_;
    if (time_left <= kEps) {
      return -std::numeric_limits<double>::infinity();  // run immediately
    }
    // Speed after the current partial order: all remaining worst case
    // by the deadline.
    const double s_o = memo_s_o_;
    if (s_o <= kEps) {
      return std::numeric_limits<double>::infinity();
    }
    // Run τk next at s_o for its estimated Xk cycles...
    const double x_k = cand.estimate_cycles;
    const double t_after = time_left - x_k / s_o;
    const double rem_after = cand.graph_remaining_wc_cycles - cand.wc_cycles;
    if (t_after <= kEps) {
      // Estimate fills (or overfills) the window; no recovery possible.
      return std::numeric_limits<double>::max();
    }
    // ...then the speed needed for what is left.
    const double s_ok = rem_after / t_after;
    const double denom = memo_s_o_sq_ - s_ok * s_ok;
    if (denom <= kEps * s_o * s_o) {
      // Xk == wc_k (or worse estimate): zero expected recovery. Order
      // these after every task with genuine recovery, larger Xk last.
      return 0.5 * std::numeric_limits<double>::max() *
             (x_k / (x_k + cand.wc_cycles + 1.0));
    }
    return x_k / denom;
  }

  // One virtual dispatch per decision point; the inner calls
  // devirtualize (final class), so each lane is the scalar score body
  // (and shares the per-graph memo across lanes).
  void score_batch(const Candidate* candidates, std::size_t n, double now,
                   double* out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = score(candidates[i], now);
    }
  }

  void reset() override {
    // NaN keys can never match, so the first score() recomputes. (A
    // stale hit would still be exact — the cached values are pure
    // functions of the key — but a fresh run starts clean.)
    memo_now_ = std::numeric_limits<double>::quiet_NaN();
    memo_deadline_ = std::numeric_limits<double>::quiet_NaN();
    memo_rem_wc_ = std::numeric_limits<double>::quiet_NaN();
  }

 private:
  double memo_now_ = std::numeric_limits<double>::quiet_NaN();
  double memo_deadline_ = std::numeric_limits<double>::quiet_NaN();
  double memo_rem_wc_ = std::numeric_limits<double>::quiet_NaN();
  double memo_time_left_ = 0.0;
  double memo_s_o_ = 0.0;
  double memo_s_o_sq_ = 0.0;
};

class LtfPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "LTF"; }
  double score(const Candidate& cand, double) override {
    return -cand.wc_cycles;
  }
};

class StfPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "STF"; }
  double score(const Candidate& cand, double) override {
    return cand.wc_cycles;
  }
};

class RandomPriority final : public PriorityPolicy {
 public:
  explicit RandomPriority(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::string name() const override { return "Random"; }
  double score(const Candidate&, double) override { return rng_.uniform(); }
  // Lane i draws i-th — the same stream order as scalar calls in
  // sequence, which the tick-vs-event CRN contract depends on.
  void score_batch(const Candidate*, std::size_t n, double,
                   double* out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rng_.uniform();
    }
  }
  bool stochastic() const override { return true; }
  void reset() override { rng_ = util::Rng(seed_); }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

class FifoPriority final : public PriorityPolicy {
 public:
  std::string name() const override { return "FIFO"; }
  double score(const Candidate& cand, double) override {
    return static_cast<double>(cand.graph) * 1.0e6 +
           static_cast<double>(cand.node);
  }
};

}  // namespace

std::unique_ptr<PriorityPolicy> make_pubs_priority() {
  return std::make_unique<PubsPriority>();
}

std::unique_ptr<PriorityPolicy> make_ltf_priority() {
  return std::make_unique<LtfPriority>();
}

std::unique_ptr<PriorityPolicy> make_stf_priority() {
  return std::make_unique<StfPriority>();
}

std::unique_ptr<PriorityPolicy> make_random_priority(std::uint64_t seed) {
  return std::make_unique<RandomPriority>(seed);
}

std::unique_ptr<PriorityPolicy> make_fifo_priority() {
  return std::make_unique<FifoPriority>();
}

}  // namespace bas::sched
