#include "sched/optimal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "dvs/realizer.hpp"
#include "taskgraph/algorithms.hpp"

namespace bas::sched {

namespace {

constexpr double kEps = 1e-12;

struct StepOutcome {
  double duration_s = 0.0;
  double energy_j = 0.0;
};

/// Runs `cycles` of work when `remaining_wc` cycles must fit into
/// `window_s` seconds: frequency = remaining_wc / window realized on the
/// processor (possibly faster if below fmin — the task then simply
/// finishes early).
StepOutcome run_step(const dvs::Processor& proc, double remaining_wc_cycles,
                     double window_s, double cycles) {
  if (window_s <= kEps) {
    // Degenerate window: run flat out (only reachable when wc fills the
    // deadline exactly and actuals equal wc).
    window_s = cycles / proc.fmax_hz();
  }
  const double fref = remaining_wc_cycles / window_s;
  const auto plan = dvs::realize(proc, fref);
  StepOutcome out;
  out.duration_s = cycles / plan.effective_freq_hz;
  out.energy_j = out.duration_s * dvs::plan_core_power_w(proc, plan);
  return out;
}

void check_inputs(const tg::TaskGraph& graph,
                  const std::vector<double>& actual_cycles) {
  if (actual_cycles.size() != graph.node_count()) {
    throw std::invalid_argument("single-graph run: actuals size mismatch");
  }
  for (std::size_t i = 0; i < actual_cycles.size(); ++i) {
    if (!(actual_cycles[i] > 0.0) ||
        actual_cycles[i] > graph.node(static_cast<tg::NodeId>(i)).wcet_cycles +
                               kEps) {
      throw std::invalid_argument(
          "single-graph run: actual cycles must be in (0, wc]");
    }
  }
}

std::vector<std::uint64_t> predecessor_masks(const tg::TaskGraph& graph) {
  if (graph.node_count() > 64) {
    throw std::invalid_argument("single-graph run: more than 64 nodes");
  }
  std::vector<std::uint64_t> masks(graph.node_count(), 0);
  for (tg::NodeId id = 0; id < graph.node_count(); ++id) {
    for (tg::NodeId p : graph.predecessors(id)) {
      masks[id] |= (1ULL << p);
    }
  }
  return masks;
}

}  // namespace

SingleGraphResult evaluate_order(const tg::TaskGraph& graph,
                                 const std::vector<double>& actual_cycles,
                                 const dvs::Processor& proc,
                                 const std::vector<tg::NodeId>& order) {
  check_inputs(graph, actual_cycles);
  if (!tg::is_topological_order(graph, order)) {
    throw std::invalid_argument("evaluate_order: not a topological order");
  }
  SingleGraphResult result;
  result.order = order;
  double remaining_wc = graph.total_wcet_cycles();
  double t = 0.0;
  double energy = 0.0;
  for (tg::NodeId id : order) {
    const auto step = run_step(proc, remaining_wc, graph.deadline() - t,
                               actual_cycles[id]);
    t += step.duration_s;
    energy += step.energy_j;
    remaining_wc -= graph.node(id).wcet_cycles;
  }
  result.finish_time_s = t;
  result.energy_j = energy;
  return result;
}

SingleGraphResult greedy_schedule(const tg::TaskGraph& graph,
                                  const std::vector<double>& actual_cycles,
                                  const dvs::Processor& proc,
                                  PriorityPolicy& priority,
                                  Estimator& estimator) {
  check_inputs(graph, actual_cycles);
  const auto pred_masks = predecessor_masks(graph);
  const std::size_t n = graph.node_count();

  SingleGraphResult result;
  result.order.reserve(n);
  std::uint64_t done = 0;
  double remaining_wc = graph.total_wcet_cycles();
  double t = 0.0;
  double energy = 0.0;
  const std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);

  while (done != all) {
    tg::NodeId best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    bool found = false;
    for (tg::NodeId id = 0; id < n; ++id) {
      if ((done & (1ULL << id)) || (pred_masks[id] & ~done)) {
        continue;  // finished or not yet ready
      }
      Candidate cand;
      cand.graph = 0;
      cand.node = id;
      cand.wc_cycles = graph.node(id).wcet_cycles;
      cand.actual_cycles = actual_cycles[id];
      cand.estimate_cycles =
          estimator.estimate(0, id, cand.wc_cycles, cand.actual_cycles);
      cand.graph_abs_deadline_s = graph.deadline();
      cand.graph_remaining_wc_cycles = remaining_wc;
      cand.edf_position = 0;
      const double s = priority.score(cand, t);
      if (!found || s < best_score ||
          (s == best_score && id < best)) {
        best = id;
        best_score = s;
        found = true;
      }
    }
    const auto step =
        run_step(proc, remaining_wc, graph.deadline() - t, actual_cycles[best]);
    t += step.duration_s;
    energy += step.energy_j;
    remaining_wc -= graph.node(best).wcet_cycles;
    done |= (1ULL << best);
    result.order.push_back(best);
    estimator.observe(0, best, actual_cycles[best]);
  }
  result.finish_time_s = t;
  result.energy_j = energy;
  return result;
}

namespace {

/// Branch & bound machinery shared across the recursion.
struct Search {
  const tg::TaskGraph& graph;
  const std::vector<double>& actuals;
  const dvs::Processor& proc;
  std::vector<std::uint64_t> pred_masks;
  std::uint64_t all_mask = 0;
  double deadline = 0.0;
  double min_energy_per_cycle = 0.0;  // admissible floor, J/cycle

  std::uint64_t budget = 0;
  std::uint64_t explored = 0;
  bool exact = true;

  double best_energy = std::numeric_limits<double>::infinity();
  double best_finish = 0.0;
  std::vector<tg::NodeId> best_order;
  std::vector<tg::NodeId> current;

  // Pareto memo: per completed-set, (time, energy) pairs already seen;
  // a new state dominated in both coordinates cannot improve.
  std::unordered_map<std::uint64_t, std::vector<std::pair<double, double>>>
      memo;

  double lower_bound(double t, double remaining_ac) const {
    if (remaining_ac <= 0.0) {
      return 0.0;
    }
    const double window = deadline - t;
    if (window <= kEps) {
      // Past the deadline: only fmax energy is possible.
      const auto& top = proc.points().back();
      return remaining_ac * proc.energy_per_cycle_j(top);
    }
    if (proc.continuous()) {
      // Clairvoyant constant speed sc = AC/(D-t) is a floor on every
      // later task's speed (monotone under the ccEDF speed rule), and
      // energy/cycle grows with speed -> admissible bound.
      const double sc =
          std::min(remaining_ac / window, proc.fmax_hz());
      const double v = proc.voltage_at(std::max(sc, kEps));
      return remaining_ac * proc.ceff_farad() * v * v;
    }
    return remaining_ac * min_energy_per_cycle;
  }

  bool dominated(std::uint64_t mask, double t, double energy) {
    auto& entries = memo[mask];
    for (const auto& [pt, pe] : entries) {
      if (pt <= t + 1e-12 && pe <= energy + 1e-12) {
        return true;
      }
    }
    // Keep the frontier small: drop entries this state dominates.
    std::erase_if(entries, [&](const std::pair<double, double>& e) {
      return t <= e.first + 1e-12 && energy <= e.second + 1e-12;
    });
    entries.emplace_back(t, energy);
    return false;
  }

  void dfs(std::uint64_t done, double t, double energy, double remaining_wc,
           double remaining_ac) {
    if (done == all_mask) {
      if (energy < best_energy) {
        best_energy = energy;
        best_finish = t;
        best_order = current;
      }
      return;
    }
    if (explored >= budget) {
      exact = false;
      return;
    }
    ++explored;
    if (energy + lower_bound(t, remaining_ac) >= best_energy) {
      return;
    }
    if (dominated(done, t, energy)) {
      return;
    }
    for (tg::NodeId id = 0; id < graph.node_count(); ++id) {
      if ((done & (1ULL << id)) || (pred_masks[id] & ~done)) {
        continue;
      }
      const auto step =
          run_step(proc, remaining_wc, deadline - t, actuals[id]);
      current.push_back(id);
      dfs(done | (1ULL << id), t + step.duration_s, energy + step.energy_j,
          remaining_wc - graph.node(id).wcet_cycles,
          remaining_ac - actuals[id]);
      current.pop_back();
      if (explored >= budget) {
        exact = false;
        return;
      }
    }
  }
};

}  // namespace

SingleGraphResult optimal_schedule(const tg::TaskGraph& graph,
                                   const std::vector<double>& actual_cycles,
                                   const dvs::Processor& proc,
                                   std::uint64_t node_budget) {
  check_inputs(graph, actual_cycles);

  // Seed the incumbent with the strongest greedy: pUBS + oracle.
  const auto pubs = make_pubs_priority();
  const auto oracle = make_oracle_estimator();
  const auto seed = greedy_schedule(graph, actual_cycles, proc, *pubs, *oracle);

  Search search{graph, actual_cycles, proc, predecessor_masks(graph), 0,
                graph.deadline(), 0.0};
  const std::size_t n = graph.node_count();
  search.all_mask = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  search.budget = node_budget;
  search.best_energy = seed.energy_j;
  search.best_finish = seed.finish_time_s;
  search.best_order = seed.order;
  double min_epc = std::numeric_limits<double>::infinity();
  for (const auto& op : proc.points()) {
    min_epc = std::min(min_epc, proc.energy_per_cycle_j(op));
  }
  search.min_energy_per_cycle = min_epc;

  double total_ac = 0.0;
  for (double ac : actual_cycles) {
    total_ac += ac;
  }
  search.dfs(0, 0.0, 0.0, graph.total_wcet_cycles(), total_ac);

  SingleGraphResult result;
  result.order = search.best_order;
  result.energy_j = search.best_energy;
  result.finish_time_s = search.best_finish;
  result.exact = search.exact;
  result.explored = search.explored;
  return result;
}

}  // namespace bas::sched
