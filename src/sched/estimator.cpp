#include "sched/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace bas::sched {

namespace {

class WorstCaseEstimator final : public Estimator {
 public:
  std::string name() const override { return "worst-case"; }
  double estimate(int, tg::NodeId, double wc_cycles, double) override {
    return wc_cycles;
  }
};

class MeanFractionEstimator final : public Estimator {
 public:
  explicit MeanFractionEstimator(double fraction) : fraction_(fraction) {
    if (!(fraction > 0.0) || fraction > 1.0) {
      throw std::invalid_argument(
          "MeanFractionEstimator: fraction must be in (0, 1]");
    }
  }
  std::string name() const override { return "mean-fraction"; }
  double estimate(int, tg::NodeId, double wc_cycles, double) override {
    return fraction_ * wc_cycles;
  }

 private:
  double fraction_;
};

class HistoryEstimator final : public Estimator {
 public:
  explicit HistoryEstimator(double alpha) : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
      throw std::invalid_argument(
          "HistoryEstimator: alpha must be in (0, 1]");
    }
  }
  std::string name() const override { return "history-ema"; }

  double estimate(int graph, tg::NodeId node, double wc_cycles,
                  double) override {
    const auto it = ema_.find({graph, node});
    if (it == ema_.end()) {
      return 0.6 * wc_cycles;  // prior: mean of U(0.2, 1.0)
    }
    return it->second;
  }

  void observe(int graph, tg::NodeId node, double actual_cycles) override {
    auto [it, inserted] = ema_.try_emplace({graph, node}, actual_cycles);
    if (!inserted) {
      it->second = alpha_ * actual_cycles + (1.0 - alpha_) * it->second;
    }
  }

  void reset() override { ema_.clear(); }

 private:
  double alpha_;
  std::map<std::pair<int, tg::NodeId>, double> ema_;
};

class OracleEstimator final : public Estimator {
 public:
  std::string name() const override { return "oracle"; }
  double estimate(int, tg::NodeId, double, double actual_cycles) override {
    return actual_cycles;
  }
};

class NoisyOracleEstimator final : public Estimator {
 public:
  NoisyOracleEstimator(double rel_noise, std::uint64_t seed)
      : rel_noise_(rel_noise), seed_(seed), rng_(seed) {
    if (rel_noise < 0.0 || rel_noise >= 1.0) {
      throw std::invalid_argument(
          "NoisyOracleEstimator: rel_noise must be in [0, 1)");
    }
  }
  std::string name() const override { return "noisy-oracle"; }
  double estimate(int, tg::NodeId, double wc_cycles,
                  double actual_cycles) override {
    const double noisy =
        actual_cycles * (1.0 + rng_.uniform(-rel_noise_, rel_noise_));
    return std::clamp(noisy, 1.0, wc_cycles);
  }
  void reset() override { rng_ = util::Rng(seed_); }

 private:
  double rel_noise_;
  std::uint64_t seed_;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<Estimator> make_worst_case_estimator() {
  return std::make_unique<WorstCaseEstimator>();
}

std::unique_ptr<Estimator> make_mean_fraction_estimator(double fraction) {
  return std::make_unique<MeanFractionEstimator>(fraction);
}

std::unique_ptr<Estimator> make_history_estimator(double alpha) {
  return std::make_unique<HistoryEstimator>(alpha);
}

std::unique_ptr<Estimator> make_oracle_estimator() {
  return std::make_unique<OracleEstimator>();
}

std::unique_ptr<Estimator> make_noisy_oracle_estimator(double rel_noise,
                                                       std::uint64_t seed) {
  return std::make_unique<NoisyOracleEstimator>(rel_noise, seed);
}

}  // namespace bas::sched
