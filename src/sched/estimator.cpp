#include "sched/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace bas::sched {

namespace {

class WorstCaseEstimator final : public Estimator {
 public:
  std::string name() const override { return "worst-case"; }
  double estimate(int, tg::NodeId, double wc_cycles, double) override {
    return wc_cycles;
  }
};

class MeanFractionEstimator final : public Estimator {
 public:
  explicit MeanFractionEstimator(double fraction) : fraction_(fraction) {
    if (!(fraction > 0.0) || fraction > 1.0) {
      throw std::invalid_argument(
          "MeanFractionEstimator: fraction must be in (0, 1]");
    }
  }
  std::string name() const override { return "mean-fraction"; }
  double estimate(int, tg::NodeId, double wc_cycles, double) override {
    return fraction_ * wc_cycles;
  }

 private:
  double fraction_;
};

class HistoryEstimator final : public Estimator {
 public:
  explicit HistoryEstimator(double alpha) : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
      throw std::invalid_argument(
          "HistoryEstimator: alpha must be in (0, 1]");
    }
  }
  std::string name() const override { return "history-ema"; }

  // Storage is dense per (graph, node): estimate() runs once per ready
  // candidate at every scheduling step, so an O(log n) tree walk here
  // was a measurable slice of the simulator's hot path. The dense
  // lookup returns the very same stored doubles a map would.

  double estimate(int graph, tg::NodeId node, double wc_cycles,
                  double) override {
    const auto g = static_cast<std::size_t>(graph);
    if (g < ema_.size()) {
      const auto& per_node = ema_[g];
      if (node < per_node.size() && per_node[node].seen) {
        return per_node[node].value;
      }
    }
    return 0.6 * wc_cycles;  // prior: mean of U(0.2, 1.0)
  }

  // One virtual dispatch per decision point; each lane devirtualizes to
  // the dense lookup above (final class).
  void estimate_batch(const EstimateQuery* queries, std::size_t n,
                      double* out) override {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = estimate(queries[i].graph, queries[i].node,
                        queries[i].wc_cycles, queries[i].actual_cycles);
    }
  }

  void observe(int graph, tg::NodeId node, double actual_cycles) override {
    const auto g = static_cast<std::size_t>(graph);
    if (g >= ema_.size()) {
      ema_.resize(g + 1);
    }
    auto& per_node = ema_[g];
    if (node >= per_node.size()) {
      per_node.resize(node + 1);
    }
    auto& e = per_node[node];
    if (!e.seen) {
      e.seen = true;
      e.value = actual_cycles;
    } else {
      e.value = alpha_ * actual_cycles + (1.0 - alpha_) * e.value;
    }
  }

  void reset() override {
    // Un-see every entry but keep the allocations — a reset estimator
    // behaves like a fresh one while the next run reuses the arrays.
    for (auto& per_node : ema_) {
      for (auto& e : per_node) {
        e.seen = false;
      }
    }
  }

 private:
  struct Ema {
    double value = 0.0;
    bool seen = false;
  };
  double alpha_;
  std::vector<std::vector<Ema>> ema_;
};

class OracleEstimator final : public Estimator {
 public:
  std::string name() const override { return "oracle"; }
  double estimate(int, tg::NodeId, double, double actual_cycles) override {
    return actual_cycles;
  }
};

class NoisyOracleEstimator final : public Estimator {
 public:
  NoisyOracleEstimator(double rel_noise, std::uint64_t seed)
      : rel_noise_(rel_noise), seed_(seed), rng_(seed) {
    if (rel_noise < 0.0 || rel_noise >= 1.0) {
      throw std::invalid_argument(
          "NoisyOracleEstimator: rel_noise must be in [0, 1)");
    }
  }
  std::string name() const override { return "noisy-oracle"; }
  double estimate(int, tg::NodeId, double wc_cycles,
                  double actual_cycles) override {
    const double noisy =
        actual_cycles * (1.0 + rng_.uniform(-rel_noise_, rel_noise_));
    return std::clamp(noisy, 1.0, wc_cycles);
  }
  void reset() override { rng_ = util::Rng(seed_); }

 private:
  double rel_noise_;
  std::uint64_t seed_;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<Estimator> make_worst_case_estimator() {
  return std::make_unique<WorstCaseEstimator>();
}

std::unique_ptr<Estimator> make_mean_fraction_estimator(double fraction) {
  return std::make_unique<MeanFractionEstimator>(fraction);
}

std::unique_ptr<Estimator> make_history_estimator(double alpha) {
  return std::make_unique<HistoryEstimator>(alpha);
}

std::unique_ptr<Estimator> make_oracle_estimator() {
  return std::make_unique<OracleEstimator>();
}

std::unique_ptr<Estimator> make_noisy_oracle_estimator(double rel_noise,
                                                       std::uint64_t seed) {
  return std::make_unique<NoisyOracleEstimator>(rel_noise, seed);
}

}  // namespace bas::sched
