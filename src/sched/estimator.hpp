#pragma once
// Estimators of a task's actual computation demand (the paper's Xk).
//
// "Xk is the estimate of the amount of CPU cycles that task τk is
// actually going to require ... even if the estimate is wrong no
// deadlines are violated. However, the accuracy of the estimate
// determines the optimality of the schedule. ... One [technique] is to
// keep history of previous instances of each task." (§4.2)

#include <cstddef>
#include <cstdint>
#include <vector>
#include <memory>
#include <string>
#include <utility>

#include "taskgraph/graph.hpp"

namespace bas::sched {

/// One estimate() call's inputs, for the batched entry point.
struct EstimateQuery {
  int graph = 0;
  tg::NodeId node = 0;
  double wc_cycles = 0.0;
  double actual_cycles = 0.0;
};

class Estimator {
 public:
  virtual ~Estimator() = default;

  virtual std::string name() const = 0;

  /// Estimate of the actual cycles task (graph, node) will take this
  /// instance. `actual_cycles` is the ground truth — only the oracle may
  /// look at it; it exists so all estimators share one call signature.
  virtual double estimate(int graph, tg::NodeId node, double wc_cycles,
                          double actual_cycles) = 0;

  /// Estimates `n` queries into `out` — out[i] must equal the scalar
  /// estimate() call sequence bitwise, including any internal
  /// random-stream consumption (same contract as
  /// PriorityPolicy::score_batch). The default loops the virtual scalar
  /// call; the history estimator overrides it so the scheduler pays one
  /// virtual dispatch per decision point instead of one per candidate.
  virtual void estimate_batch(const EstimateQuery* queries, std::size_t n,
                              double* out) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = estimate(queries[i].graph, queries[i].node,
                        queries[i].wc_cycles, queries[i].actual_cycles);
    }
  }

  /// Feedback after the task completes, for history-based estimators.
  virtual void observe(int /*graph*/, tg::NodeId /*node*/,
                       double /*actual_cycles*/) {}

  virtual void reset() {}
};

/// Pessimistic: Xk = wc. Turns pUBS into a no-information heuristic
/// (every denominator degenerates); the lower bound of estimator quality.
std::unique_ptr<Estimator> make_worst_case_estimator();

/// Static expectation: Xk = fraction * wc. The simulator draws actuals
/// from U(0.2, 1.0) * wc, so fraction defaults to the mean 0.6.
std::unique_ptr<Estimator> make_mean_fraction_estimator(double fraction = 0.6);

/// Exponential moving average over observed actuals of the same
/// (graph, node), seeded at 0.6 * wc — the paper's "keep history of
/// previous instances" suggestion.
std::unique_ptr<Estimator> make_history_estimator(double alpha = 0.3);

/// Clairvoyant: Xk = actual. Upper bound of estimator quality; with it
/// pUBS is near-optimal (within ~1% for independent tasks, per Gruian).
std::unique_ptr<Estimator> make_oracle_estimator();

/// "Accurate but imperfect": Xk = actual * (1 + U(-rel_noise, rel_noise)),
/// clamped into (0, wc]. Models a well-profiled task whose demand is
/// predicted from its inputs — the regime the paper's Table 1 assumes
/// for pUBS ("if the estimate is very accurate then the schedule
/// obtained will be near optimal").
std::unique_ptr<Estimator> make_noisy_oracle_estimator(
    double rel_noise = 0.25, std::uint64_t seed = 1);

}  // namespace bas::sched
