#pragma once
// Priority functions for choosing the next ready task — the "local
// ordering" half of the methodology (§4.2).
//
// A PriorityPolicy assigns every ready candidate a score; the scheduler
// runs the lowest-scoring candidate that passes the feasibility check.
// Scores need only be comparable within one decision instant.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "taskgraph/graph.hpp"
#include "util/rng.hpp"

namespace bas::sched {

/// A ready (precedence-satisfied) task instance offered to the policy.
struct Candidate {
  /// Graph index within the TaskGraphSet.
  int graph = 0;
  tg::NodeId node = 0;
  /// Worst-case cycles of this node.
  double wc_cycles = 0.0;
  /// Ground-truth actual cycles (oracle estimators only).
  double actual_cycles = 0.0;
  /// Estimate Xk filled in from the scheme's Estimator.
  double estimate_cycles = 0.0;
  /// Absolute deadline of the candidate's graph instance (s).
  double graph_abs_deadline_s = 0.0;
  /// Worst-case cycles still pending in that instance, including this
  /// node (the paper's remaining work behind speed s_o).
  double graph_remaining_wc_cycles = 0.0;
  /// Rank of the candidate's graph in the current EDF order
  /// (0 = most imminent deadline). Drives the feasibility check depth.
  int edf_position = 0;
};

class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;

  virtual std::string name() const = 0;

  /// Score for one candidate at time `now`; lower runs first. Ties are
  /// broken deterministically by (graph, node) in the scheduler.
  virtual double score(const Candidate& candidate, double now) = 0;

  /// Scores `n` candidates into `out` — out[i] must equal the scalar
  /// score(candidates[i], now) call sequence bitwise, including any
  /// internal random-stream consumption (the CRN contract). The default
  /// loops the virtual scalar call; hot policies (pUBS, Random)
  /// override it so the scheduler pays one virtual dispatch per
  /// decision point instead of one per candidate.
  virtual void score_batch(const Candidate* candidates, std::size_t n,
                           double now, double* out) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = score(candidates[i], now);
    }
  }

  /// True when score() consumes randomness from an internal stream.
  /// The event engine must then score every candidate in exactly the
  /// tick engine's sequence — even lone candidates whose order cannot
  /// matter — so the stream stays aligned across engines (the CRN
  /// contract the tick-vs-event equivalence tests rely on).
  virtual bool stochastic() const { return false; }

  /// True when score() reads Candidate::estimate_cycles. When false the
  /// scheduler may skip the estimator lookup for this policy's
  /// candidates (the estimator still observes every completion, so
  /// skipping the read changes nothing observable).
  virtual bool uses_estimate() const { return false; }

  virtual void reset() {}
};

/// Gruian's near-optimal uncertainty-based priority:
///
///   pUBS(o, τk) = Xk / (s_o^2 − s_{o,k}^2)
///
/// with s_o the speed required after the executed partial order o
/// (remaining worst case / time to deadline) and s_{o,k} the speed after
/// additionally running τk for its estimated Xk cycles. Small Xk relative
/// to wc_k means a large expected slack recovery, hence a small score.
/// When Xk == wc_k the denominator vanishes — no recovery is expected —
/// and the candidate scores "+infinity"-like, ordered by Xk.
std::unique_ptr<PriorityPolicy> make_pubs_priority();

/// Largest Task First on worst-case cycles (the heuristic of Zhu,
/// Melhem & Childers [16] that Table 1 compares against).
std::unique_ptr<PriorityPolicy> make_ltf_priority();

/// Shortest Task First on worst-case cycles (Figure 4's counterpart).
std::unique_ptr<PriorityPolicy> make_stf_priority();

/// Uniform random order — the paper's "Random" row.
std::unique_ptr<PriorityPolicy> make_random_priority(std::uint64_t seed);

/// Deterministic first-in-first-out on (graph, node) — canonical order.
std::unique_ptr<PriorityPolicy> make_fifo_priority();

}  // namespace bas::sched
