#pragma once
// Feasibility check for out-of-EDF-order execution (paper Algorithm 2).
//
// BAS-2 may run a ready task from any released graph, not only the one
// with the most imminent deadline. Running a task whose graph sits at
// position p of the EDF order can only jeopardize the p earlier
// deadlines, so p prefix conditions are checked: for every graph j ahead
// of the candidate's graph, the worst-case work of graphs 1..j plus the
// candidate's own wc must fit before Dj at the current fref. Using fref
// (not fmax) in the check guarantees we are never forced to raise the
// frequency later even if everything takes its worst case — preserving
// the locally non-increasing profile.
//
// Note on the paper's pseudocode: as printed it resets sumWC inside the
// loop, making the accumulator dead; we implement the evidently intended
// prefix sum (see DESIGN.md §5).

#include <span>

#include "dvs/policy.hpp"

namespace bas::sched {

/// `edf_sorted` must hold the released, incomplete graph instances in
/// EDF order (ascending absolute deadline). `candidate_pos` is the index
/// of the candidate's own graph in that array. Returns true when running
/// the candidate next (for up to `candidate_wc_cycles`) cannot violate
/// any earlier deadline at frequency `fref_hz`.
bool feasibility_check(std::span<const dvs::GraphStatus> edf_sorted,
                       int candidate_pos, double candidate_wc_cycles,
                       double fref_hz, double now) noexcept;

/// The same check reading the EDF order through an index list:
/// `statuses` is addressed by graph id and `edf_order` holds the ids in
/// ascending-deadline order. Lets the simulator's hot loop skip
/// materializing an EDF-sorted copy of the statuses each step; both
/// overloads run the same internal prefix fold (one template, two
/// accessors), so the folds cannot drift apart.
bool feasibility_check(std::span<const dvs::GraphStatus> statuses,
                       std::span<const int> edf_order, int candidate_pos,
                       double candidate_wc_cycles, double fref_hz,
                       double now) noexcept;

}  // namespace bas::sched
