#include "scenario/scenario.hpp"

#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "arrival/arrival.hpp"
#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/peukert.hpp"
#include "battery/stochastic.hpp"
#include "util/cli.hpp"
#include "util/text.hpp"
#include "util/table.hpp"

namespace bas::scenario {

namespace {

std::string ac_model_to_string(sim::AcModel model) {
  return model == sim::AcModel::kIid ? "iid" : "per-node-mean";
}

sim::AcModel ac_model_from_string(const std::string& text) {
  if (text == "iid") {
    return sim::AcModel::kIid;
  }
  if (text == "per-node-mean") {
    return sim::AcModel::kPerNodeMean;
  }
  throw std::invalid_argument("unknown AC model '" + text +
                              "' (known: iid, per-node-mean)");
}

std::string method_to_string(tgff::Method method) {
  switch (method) {
    case tgff::Method::kFanInFanOut:
      return "fan-in-fan-out";
    case tgff::Method::kLayered:
      return "layered";
    case tgff::Method::kSeriesParallel:
      return "series-parallel";
  }
  return "?";
}

double parse_double(const std::string& key, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed == text.size()) {
      return value;
    }
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("--scenario." + key + " expects a number, got '" +
                              text + "'");
}

int parse_int(const std::string& key, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(text, &consumed);
    if (consumed == text.size() &&
        value >= std::numeric_limits<int>::min() &&
        value <= std::numeric_limits<int>::max()) {
      return static_cast<int>(value);
    }
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("--scenario." + key +
                              " expects an integer, got '" + text + "'");
}

/// Shared baseline every preset tweaks: the paper's lifetime-evaluation
/// defaults (24 h horizon, no drain, per-node-mean actuals, no
/// profile/trace recording — battery death ends the run).
ScenarioSpec lifetime_base() {
  ScenarioSpec spec;
  spec.workload.graph_count = 3;
  spec.workload.min_nodes = 5;
  spec.workload.max_nodes = 15;
  spec.workload.period_lo_s = 0.5;
  spec.workload.period_hi_s = 5.0;
  spec.utilization = 0.7;
  spec.basis = UtilBasis::kActual;
  spec.battery = "kibam";
  spec.processor = "paper";
  spec.sim.horizon_s = 24.0 * 3600.0;
  spec.sim.drain = false;
  spec.sim.record_profile = false;
  spec.sim.record_trace = false;
  spec.sim.ac_model = sim::AcModel::kPerNodeMean;
  return spec;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> presets;

  {
    // The paper's §5 evaluation world, exactly as table2 ran it.
    ScenarioSpec s = lifetime_base();
    s.name = "paper-table2";
    s.summary =
        "the paper's evaluation: 3 TGFF graphs, 70% actual utilization, "
        "KiBaM cell";
    presets.push_back(s);
  }
  {
    // High sustained load: the frequency staircase spans the whole DVS
    // range, so the *order* of the discharge currents (Guideline 1) is
    // what separates the schemes.
    ScenarioSpec s = lifetime_base();
    s.name = "paper-guideline1";
    s.summary =
        "high-load Guideline-1 regime: 85% actual utilization, profile "
        "shape decides the gap";
    s.utilization = 0.85;
    presets.push_back(s);
  }
  {
    // The Figure-6 world: ordering-scheme comparisons over a growing
    // graph count. Drivers that want the figure's energy-only short run
    // override horizon/drain; as a lifetime scenario it behaves like
    // paper-table2 with one more graph.
    ScenarioSpec s = lifetime_base();
    s.name = "paper-fig6";
    s.summary =
        "Figure-6 ordering world: 4 graphs at 70% actual utilization";
    s.workload.graph_count = 4;
    presets.push_back(s);
  }
  {
    // A handheld media player: series-parallel pipelines at frame
    // periods. Short periods mean thousands of scheduling decisions per
    // battery percent — the throughput stress.
    ScenarioSpec s = lifetime_base();
    s.name = "multimedia-pipeline";
    s.summary =
        "media-player pipelines: series-parallel graphs at 20-200 ms "
        "frame periods";
    s.workload.graph_count = 3;
    s.workload.min_nodes = 4;
    s.workload.max_nodes = 8;
    s.workload.period_lo_s = 0.02;
    s.workload.period_hi_s = 0.2;
    s.workload.shape.method = tgff::Method::kSeriesParallel;
    s.utilization = 0.65;
    s.sim.horizon_s = 6.0 * 3600.0;
    presets.push_back(s);
  }
  {
    // A duty-cycled sensor node: tiny graphs, long periods, deep idle.
    // The diffusion cell's recovery effect dominates; schemes differ in
    // how well their idle windows let trapped charge equalize.
    ScenarioSpec s = lifetime_base();
    s.name = "sensor-node";
    s.summary =
        "duty-cycled sensing: 25% utilization, 2-10 s periods, "
        "recovery-dominated diffusion cell";
    s.workload.graph_count = 2;
    s.workload.min_nodes = 3;
    s.workload.max_nodes = 6;
    s.workload.period_lo_s = 2.0;
    s.workload.period_hi_s = 10.0;
    s.utilization = 0.25;
    s.battery = "diffusion";
    s.sim.ac_model = sim::AcModel::kIid;
    s.sim.horizon_s = 48.0 * 3600.0;
    presets.push_back(s);
  }
  {
    // Inhomogeneous arrivals (Hohmann-style burstiness by composition):
    // periods spanning two decades and a strongly skewed utilization
    // split make releases cluster, so the instantaneous demand swings
    // far around its mean.
    ScenarioSpec s = lifetime_base();
    s.name = "bursty";
    s.summary =
        "bursty arrivals: 5 graphs, periods over two decades, skewed "
        "utilization split";
    s.workload.graph_count = 5;
    s.workload.period_lo_s = 0.05;
    s.workload.period_hi_s = 5.0;
    s.workload.utilization_spread = 1.5;
    s.utilization = 0.6;
    s.sim.ac_model = sim::AcModel::kIid;
    presets.push_back(s);
  }
  {
    // Near saturation: worst-case utilization ~1.53, so deadlines only
    // hold when schemes exploit early completions — the feasibility
    // guard and the estimator earn their keep here.
    ScenarioSpec s = lifetime_base();
    s.name = "overload";
    s.summary =
        "near-saturation: 92% actual utilization, survival depends on "
        "exploiting early completions";
    s.workload.graph_count = 4;
    s.utilization = 0.92;
    presets.push_back(s);
  }
  {
    // Periods two orders of magnitude apart: laEDF's lookahead window
    // is dominated by the short-period graphs while the long-period
    // ones carry most of the work.
    ScenarioSpec s = lifetime_base();
    s.name = "mixed-periods";
    s.summary =
        "timescale mix: 6 graphs with 0.1-10 s periods, lookahead vs "
        "long-horizon work";
    s.workload.graph_count = 6;
    s.workload.period_lo_s = 0.1;
    s.workload.period_hi_s = 10.0;
    s.utilization = 0.6;
    presets.push_back(s);
  }
  {
    // Mostly idle on the stochastic cell: lifetime is bounded by idle
    // draw and recovery luck, not by execution energy — the regime
    // where DVS gains saturate and profile shaping is all that's left.
    ScenarioSpec s = lifetime_base();
    s.name = "idle-heavy";
    s.summary =
        "mostly idle: 30% utilization on the stochastic cell, lifetime "
        "bounded by idle draw and recovery";
    s.workload.graph_count = 2;
    s.workload.period_lo_s = 1.0;
    s.workload.period_hi_s = 5.0;
    s.utilization = 0.3;
    s.battery = "stochastic";
    s.sim.ac_model = sim::AcModel::kIid;
    s.sim.horizon_s = 48.0 * 3600.0;
    presets.push_back(s);
  }
  {
    // True time-varying traffic: an inhomogeneous Poisson release
    // process whose rate swells sinusoidally ("diurnal" compressed to
    // 30 min so several cycles fit one battery life) and triples inside
    // periodic on/off burst windows. Instantaneous demand far exceeds
    // its mean — the regime the old `bursty` preset only approximated
    // by composing mismatched periods.
    ScenarioSpec s = lifetime_base();
    s.name = "ippp-diurnal";
    s.summary =
        "IPPP arrivals: sinusoidal diurnal swell x 3x on/off bursts over "
        "a 55% mean load";
    s.workload.graph_count = 4;
    s.workload.period_lo_s = 0.5;
    s.workload.period_hi_s = 5.0;
    s.utilization = 0.55;
    s.sim.ac_model = sim::AcModel::kIid;
    s.sim.arrival.model = "ippp";
    s.sim.arrival.params.rate_scale = 1.0;
    s.sim.arrival.params.diurnal_amp = 0.5;
    s.sim.arrival.params.diurnal_period_s = 1800.0;
    s.sim.arrival.params.burst_factor = 3.0;
    s.sim.arrival.params.burst_period_s = 300.0;
    s.sim.arrival.params.burst_duty = 0.2;
    presets.push_back(s);
  }
  {
    // Event-driven sensing: the sporadic task model (minimum separation
    // plus an exponential gap) halves the mean arrival rate, so the
    // diffusion cell's recovery windows are long but irregular.
    ScenarioSpec s = lifetime_base();
    s.name = "sporadic-sensor";
    s.summary =
        "sporadic sensing: min-separation + exponential gaps on a "
        "recovery-dominated diffusion cell";
    s.workload.graph_count = 2;
    s.workload.min_nodes = 3;
    s.workload.max_nodes = 6;
    s.workload.period_lo_s = 2.0;
    s.workload.period_hi_s = 10.0;
    s.utilization = 0.3;
    s.battery = "diffusion";
    s.sim.ac_model = sim::AcModel::kIid;
    s.sim.horizon_s = 48.0 * 3600.0;
    s.sim.arrival.model = "sporadic";
    s.sim.arrival.params.gap_frac = 1.0;
    presets.push_back(s);
  }
  {
    // Memoryless traffic across two decades of periods: homogeneous
    // Poisson releases make back-to-back arrivals routine, so the
    // feasibility guard and estimator face genuinely random demand.
    ScenarioSpec s = lifetime_base();
    s.name = "poisson-mix";
    s.summary =
        "Poisson releases: memoryless arrivals across 0.1-10 s nominal "
        "periods";
    s.workload.graph_count = 6;
    s.workload.period_lo_s = 0.1;
    s.workload.period_hi_s = 10.0;
    s.utilization = 0.55;
    s.sim.ac_model = sim::AcModel::kIid;
    s.sim.arrival.model = "poisson";
    presets.push_back(s);
  }
  {
    // Trace-driven releases: a hand-written burst pattern (two quick
    // volleys, then silence) replayed cyclically — the demo for feeding
    // measured release logs in via --scenario.arrival.trace=@file.csv.
    ScenarioSpec s = lifetime_base();
    s.name = "trace-replay";
    s.summary =
        "trace-driven bursts: releases replayed from a CSV trace "
        "(inline demo; @file works too)";
    s.workload.graph_count = 2;
    s.workload.period_lo_s = 1.0;
    s.workload.period_hi_s = 2.0;
    s.utilization = 0.5;
    s.sim.ac_model = sim::AcModel::kIid;
    s.sim.arrival.model = "trace-replay";
    s.sim.arrival.params.trace = "0;0.15;0.4;3.0;3.2;8.0";
    s.sim.arrival.params.trace_repeat = true;
    presets.push_back(s);
  }
  return presets;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> presets = build_registry();
  return presets;
}

}  // namespace

std::string to_string(UtilBasis basis) {
  return basis == UtilBasis::kActual ? "actual" : "worst-case";
}

UtilBasis util_basis_from_string(const std::string& text) {
  if (text == "actual") {
    return UtilBasis::kActual;
  }
  if (text == "worst-case") {
    return UtilBasis::kWorstCase;
  }
  throw std::invalid_argument("unknown utilization basis '" + text +
                              "' (known: actual, worst-case)");
}

double ScenarioSpec::worst_case_utilization() const {
  if (basis == UtilBasis::kWorstCase) {
    return utilization;
  }
  const double mean_frac = 0.5 * (sim.ac_lo_frac + sim.ac_hi_frac);
  return utilization / mean_frac;
}

tg::TaskGraphSet ScenarioSpec::make_workload(util::Rng& rng) const {
  tgff::WorkloadParams params = workload;
  params.target_utilization = worst_case_utilization();
  return tgff::make_workload(params, rng);
}

dvs::Processor ScenarioSpec::make_processor() const {
  return scenario::make_processor(processor);
}

std::unique_ptr<bat::Battery> ScenarioSpec::make_battery() const {
  return scenario::make_battery(battery);
}

sim::SimConfig ScenarioSpec::sim_config(std::uint64_t seed) const {
  sim::SimConfig config = sim;
  config.seed = seed;
  return config;
}

std::string ScenarioSpec::fingerprint() const {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "scenario=" << name << " graphs=" << workload.graph_count
      << " nodes=" << workload.min_nodes << ".." << workload.max_nodes
      << " method=" << method_to_string(workload.shape.method)
      << " degree=" << workload.shape.max_in_degree << "/"
      << workload.shape.max_out_degree
      << " wcet=" << workload.shape.wcet_lo_cycles << ".."
      << workload.shape.wcet_hi_cycles
      << " edge-density=" << workload.shape.edge_density
      << " layers=" << workload.shape.layer_count
      << " periods=" << workload.period_lo_s << ".." << workload.period_hi_s
      << " spread=" << workload.utilization_spread
      << " fmax=" << workload.fmax_hz << " utilization=" << utilization
      << " basis=" << to_string(basis) << " battery=" << battery
      << " processor=" << processor << " horizon=" << sim.horizon_s
      << " drain=" << (sim.drain ? 1 : 0)
      << " ac-model=" << ac_model_to_string(sim.ac_model)
      << " ac=" << sim.ac_lo_frac << ".." << sim.ac_hi_frac
      << " ac-jitter=" << sim.ac_jitter
      << " stop-on-empty=" << (sim.stop_when_battery_empty ? 1 : 0)
      << " engine=" << sim::to_string(sim.engine)
      << " battery-window=" << sim.battery_window_s
      << " " << arrival::fingerprint(sim.arrival);
  return out.str();
}

const std::vector<std::string>& battery_labels() {
  static const std::vector<std::string> labels{
      "ideal", "peukert", "kibam", "diffusion", "stochastic"};
  return labels;
}

std::unique_ptr<bat::Battery> make_battery(const std::string& label) {
  if (label == "ideal") {
    return std::make_unique<bat::IdealBattery>(bat::to_coulombs(2000.0));
  }
  if (label == "peukert") {
    return std::make_unique<bat::PeukertBattery>(
        bat::PeukertParams{bat::to_coulombs(2000.0), 1.2, 0.2});
  }
  if (label == "kibam") {
    return std::make_unique<bat::KibamBattery>(
        bat::KibamParams::paper_aaa_nimh());
  }
  if (label == "diffusion") {
    return std::make_unique<bat::DiffusionBattery>(
        bat::DiffusionParams::paper_aaa_nimh());
  }
  if (label == "stochastic") {
    return std::make_unique<bat::StochasticBattery>(bat::StochasticParams{});
  }
  throw std::invalid_argument("unknown battery model '" + label +
                              "' (known: " + util::join(battery_labels()) + ")");
}

const std::vector<std::string>& processor_labels() {
  static const std::vector<std::string> labels{"paper", "continuous"};
  return labels;
}

dvs::Processor make_processor(const std::string& label) {
  if (label == "paper") {
    return dvs::Processor::paper_default();
  }
  if (label == "continuous") {
    return dvs::Processor::continuous_ideal(1e9, 5.0);
  }
  throw std::invalid_argument("unknown processor '" + label +
                              "' (known: " + util::join(processor_labels()) + ")");
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& preset : registry()) {
      out.push_back(preset.name);
    }
    return out;
  }();
  return names;
}

const ScenarioSpec& scenario(const std::string& name) {
  for (const auto& preset : registry()) {
    if (preset.name == name) {
      return preset;
    }
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (known: " + util::join(scenario_names()) + ")");
}

std::map<std::string, std::string> with_scenario_defaults(
    std::map<std::string, std::string> defaults,
    const std::string& default_scenario) {
  defaults.emplace("scenario", default_scenario);
  defaults.emplace("list-scenarios", "false");
  static const char* const kOverrideFields[] = {
      "utilization",           "util-basis",
      "graphs",                "min-nodes",
      "max-nodes",             "period-lo",
      "period-hi",             "spread",
      "battery",               "processor",
      "horizon",               "ac-model",
      "engine",                "battery-window",
      "arrival",               "arrival.jitter",
      "arrival.gap",           "arrival.rate-scale",
      "arrival.diurnal-amp",   "arrival.diurnal-period",
      "arrival.burst-factor",  "arrival.burst-period",
      "arrival.burst-duty",    "arrival.trace",
      "arrival.trace-repeat"};
  for (const char* field : kOverrideFields) {
    defaults.emplace(std::string("scenario.") + field, "");
  }
  return defaults;
}

void apply_cli_overrides(ScenarioSpec& spec, const util::Cli& cli) {
  const auto value = [&cli](const char* field) -> std::string {
    const std::string key = std::string("scenario.") + field;
    return cli.has(key) ? cli.get(key) : std::string();
  };
  if (const auto v = value("utilization"); !v.empty()) {
    spec.utilization = parse_double("utilization", v);
  }
  if (const auto v = value("util-basis"); !v.empty()) {
    spec.basis = util_basis_from_string(v);
  }
  if (const auto v = value("graphs"); !v.empty()) {
    spec.workload.graph_count = parse_int("graphs", v);
  }
  if (const auto v = value("min-nodes"); !v.empty()) {
    spec.workload.min_nodes = parse_int("min-nodes", v);
  }
  if (const auto v = value("max-nodes"); !v.empty()) {
    spec.workload.max_nodes = parse_int("max-nodes", v);
  }
  if (const auto v = value("period-lo"); !v.empty()) {
    spec.workload.period_lo_s = parse_double("period-lo", v);
  }
  if (const auto v = value("period-hi"); !v.empty()) {
    spec.workload.period_hi_s = parse_double("period-hi", v);
  }
  if (const auto v = value("spread"); !v.empty()) {
    spec.workload.utilization_spread = parse_double("spread", v);
  }
  if (const auto v = value("battery"); !v.empty()) {
    make_battery(v);  // validate the label before adopting it
    spec.battery = v;
  }
  if (const auto v = value("processor"); !v.empty()) {
    make_processor(v);
    spec.processor = v;
  }
  if (const auto v = value("horizon"); !v.empty()) {
    spec.sim.horizon_s = parse_double("horizon", v);
  }
  if (const auto v = value("ac-model"); !v.empty()) {
    spec.sim.ac_model = ac_model_from_string(v);
  }
  if (const auto v = value("engine"); !v.empty()) {
    // Eager validation: an unknown engine label fails here, at parse
    // time, with the known-values list — not inside a campaign worker.
    spec.sim.engine = sim::engine_from_string(v);
  }
  if (const auto v = value("battery-window"); !v.empty()) {
    spec.sim.battery_window_s = parse_double("battery-window", v);
  }
  bool arrival_touched = false;
  auto& arr = spec.sim.arrival;
  if (const auto v = value("arrival"); !v.empty()) {
    arr.model = v;
    arrival_touched = true;
  }
  if (const auto v = value("arrival.jitter"); !v.empty()) {
    arr.params.jitter_frac = parse_double("arrival.jitter", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.gap"); !v.empty()) {
    arr.params.gap_frac = parse_double("arrival.gap", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.rate-scale"); !v.empty()) {
    arr.params.rate_scale = parse_double("arrival.rate-scale", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.diurnal-amp"); !v.empty()) {
    arr.params.diurnal_amp = parse_double("arrival.diurnal-amp", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.diurnal-period"); !v.empty()) {
    arr.params.diurnal_period_s = parse_double("arrival.diurnal-period", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.burst-factor"); !v.empty()) {
    arr.params.burst_factor = parse_double("arrival.burst-factor", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.burst-period"); !v.empty()) {
    arr.params.burst_period_s = parse_double("arrival.burst-period", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.burst-duty"); !v.empty()) {
    arr.params.burst_duty = parse_double("arrival.burst-duty", v);
    arrival_touched = true;
  }
  if (const auto v = value("arrival.trace"); !v.empty()) {
    arr.params.trace = v;
    arrival_touched = true;
  }
  if (const auto v = value("arrival.trace-repeat"); !v.empty()) {
    if (v != "0" && v != "1" && v != "true" && v != "false") {
      throw std::invalid_argument(
          "--scenario.arrival.trace-repeat expects 0/1/true/false, got '" + v +
          "'");
    }
    arr.params.trace_repeat = v == "1" || v == "true";
    arrival_touched = true;
  }
  if (arrival_touched) {
    // Reject bad labels/params (and unreadable trace files) at parse
    // time instead of inside a campaign worker thread.
    arrival::validate(arr);
  }
}

ScenarioSpec from_cli(const util::Cli& cli) {
  ScenarioSpec spec = scenario(cli.get("scenario"));
  apply_cli_overrides(spec, cli);
  return spec;
}

bool handle_list_request(const util::Cli& cli) {
  if (!cli.has("list-scenarios") || !cli.get_flag("list-scenarios")) {
    return false;
  }
  util::Table table({"scenario", "graphs", "periods (s)", "util", "basis",
                     "battery", "arrival", "ac model", "summary"});
  for (const auto& name : scenario_names()) {
    const auto& s = scenario(name);
    table.add_row({s.name, std::to_string(s.workload.graph_count),
                   util::Table::num(s.workload.period_lo_s, 2) + ".." +
                       util::Table::num(s.workload.period_hi_s, 2),
                   util::Table::num(s.utilization, 2), to_string(s.basis),
                   s.battery, s.sim.arrival.model,
                   ac_model_to_string(s.sim.ac_model), s.summary});
  }
  table.print();
  std::printf(
      "\nOverride any field of the chosen preset with "
      "--scenario.FIELD=VALUE (fields: utilization, util-basis, graphs, "
      "min-nodes, max-nodes, period-lo, period-hi, spread, battery, "
      "processor, horizon, ac-model, engine, battery-window, arrival, "
      "arrival.jitter, arrival.gap, "
      "arrival.rate-scale, arrival.diurnal-amp, arrival.diurnal-period, "
      "arrival.burst-factor, arrival.burst-period, arrival.burst-duty, "
      "arrival.trace, arrival.trace-repeat).\n");
  return true;
}

}  // namespace bas::scenario
