#pragma once
// Declarative scenarios: one named, fingerprintable description of a
// complete experimental world — workload generation (tgff parameters),
// platform (DVS processor + battery) and simulation knobs — so every
// bench driver and example assembles its world through one registry
// instead of hand-rolling WorkloadParams + Processor + battery wiring.
//
// The registry ships presets that stress the BAS-2-vs-laEDF gap in
// deliberately different ways (the paper evaluates only one shape:
// random TGFF sets at 70% utilization). Presets are plain values:
// copy one, tweak a field, and the experiment engine will sweep it like
// any other axis (exp::scenario_axis()). Every field that can change a
// simulation output is serialized by fingerprint(), which drivers fold
// into ExperimentSpec::config so the campaign resume cache invalidates
// when a preset's *definition* changes, not only its name.
//
// CLI surface (see with_scenario_defaults / from_cli):
//   --scenario NAME              pick a preset
//   --list-scenarios             print the catalogue and exit
//   --scenario.FIELD=VALUE       override one field of the chosen preset
//                                (utilization, graphs, battery, ...)

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "battery/model.hpp"
#include "dvs/processor.hpp"
#include "sim/simulator.hpp"
#include "taskgraph/set.hpp"
#include "tgff/workload.hpp"
#include "util/rng.hpp"

namespace bas::util {
class Cli;
}

namespace bas::scenario {

/// How ScenarioSpec::utilization is interpreted when building workloads.
enum class UtilBasis {
  /// The target is the *actual* utilization: the worst-case target
  /// passed to the workload builder is u / mean(ac fraction). The
  /// paper's anchors ("utilization of the system was kept to 70%") are
  /// only reproducible on this basis — see EXPERIMENTS.md, calibration.
  kActual,
  /// The target is the worst-case utilization at fmax (the strict
  /// EDF-guaranteed regime).
  kWorstCase,
};

std::string to_string(UtilBasis basis);
UtilBasis util_basis_from_string(const std::string& text);

struct ScenarioSpec {
  /// Registry key; also the label the scenario axis shows.
  std::string name;
  /// One-line catalogue text: what this scenario stresses.
  std::string summary;

  /// Workload generation. `workload.target_utilization` is ignored —
  /// the effective target is derived from `utilization` and `basis`
  /// (worst_case_utilization()).
  tgff::WorkloadParams workload;
  double utilization = 0.7;
  UtilBasis basis = UtilBasis::kActual;

  /// Platform, by registry label (battery_labels(), processor_labels()).
  std::string battery = "kibam";
  std::string processor = "paper";

  /// Simulation knobs (horizon, drain, AC model, ...). The seed field is
  /// a placeholder — take per-job configs from sim_config(seed).
  sim::SimConfig sim;

  /// The worst-case utilization handed to the workload builder:
  /// `utilization` itself on the worst-case basis, or scaled by the mean
  /// actual-computation fraction ((ac_lo + ac_hi) / 2) on the actual
  /// basis.
  double worst_case_utilization() const;

  /// Builds one random task-graph set of this scenario.
  tg::TaskGraphSet make_workload(util::Rng& rng) const;

  /// Fresh platform objects.
  dvs::Processor make_processor() const;
  std::unique_ptr<bat::Battery> make_battery() const;

  /// The scenario's SimConfig with the given per-job seed.
  sim::SimConfig sim_config(std::uint64_t seed) const;

  /// Canonical "key=value" serialization of every output-affecting
  /// field (17 significant digits, so distinct doubles never collide).
  /// Fold it into ExperimentSpec::config: the resume cache then treats
  /// an edited preset as a different sweep.
  std::string fingerprint() const;
};

// ---------------------------------------------------------------------
// Platform registries — the single source of truth for label -> object.
// exp::make_battery forwards here, so the experiment factories and the
// scenario layer cannot drift apart.

/// {"ideal", "peukert", "kibam", "diffusion", "stochastic"}.
const std::vector<std::string>& battery_labels();

/// Fresh cell by label, calibrated to the paper's 2000 mAh AAA NiMH
/// where the model has parameters to calibrate. Throws
/// std::invalid_argument on an unknown label (the message lists the
/// valid ones).
std::unique_ptr<bat::Battery> make_battery(const std::string& label);

/// {"paper", "continuous"}.
const std::vector<std::string>& processor_labels();

/// "paper": the 3-point evaluation processor (Processor::paper_default).
/// "continuous": the continuous-frequency idealization used by the
/// energy-only experiments. Throws std::invalid_argument on an unknown
/// label (the message lists the valid ones).
dvs::Processor make_processor(const std::string& label);

// ---------------------------------------------------------------------
// Scenario registry.

/// Preset names in catalogue order (>= 8 presets).
const std::vector<std::string>& scenario_names();

/// Preset by name; throws std::invalid_argument on an unknown name (the
/// message lists every valid one).
const ScenarioSpec& scenario(const std::string& name);

// ---------------------------------------------------------------------
// CLI integration.

/// Merges the scenario options into `defaults` (without overriding
/// caller-provided entries): `--scenario` (preset name, defaulting to
/// `default_scenario`), the `--list-scenarios` flag, and one
/// `--scenario.FIELD` override per overridable field (empty = keep the
/// preset's value). Compose with Cli::with_bench_defaults.
std::map<std::string, std::string> with_scenario_defaults(
    std::map<std::string, std::string> defaults,
    const std::string& default_scenario);

/// Applies the non-empty `--scenario.FIELD` overrides to `spec`:
///   utilization, util-basis, graphs, min-nodes, max-nodes, period-lo,
///   period-hi, spread, battery, processor, horizon, ac-model, and the
///   arrival-process family: arrival (model label), arrival.jitter,
///   arrival.gap, arrival.rate-scale, arrival.diurnal-amp,
///   arrival.diurnal-period, arrival.burst-factor, arrival.burst-period,
///   arrival.burst-duty, arrival.trace, arrival.trace-repeat
/// Throws std::invalid_argument on an unparsable value or an unknown
/// battery/processor/basis/AC-model/arrival label.
void apply_cli_overrides(ScenarioSpec& spec, const util::Cli& cli);

/// scenario(--scenario) with the --scenario.FIELD overrides applied.
ScenarioSpec from_cli(const util::Cli& cli);

/// When --list-scenarios was passed: prints the catalogue (name,
/// summary, headline parameters per preset) to stdout and returns true;
/// the driver should exit 0. Returns false otherwise.
bool handle_list_request(const util::Cli& cli);

}  // namespace bas::scenario
