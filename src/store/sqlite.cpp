#include "store/sqlite.hpp"

#include <filesystem>
#include <optional>
#include <stdexcept>

#include "exp/plan.hpp"

#ifdef BAS_HAVE_SQLITE
#include <sqlite3.h>
#endif

namespace bas::store {

#ifdef BAS_HAVE_SQLITE

bool sqlite_available() noexcept { return true; }

namespace {

[[noreturn]] void raise(sqlite3* db, const std::string& what) {
  throw std::runtime_error("sqlite store: " + what + ": " +
                           (db ? sqlite3_errmsg(db) : "out of memory"));
}

void exec(sqlite3* db, const char* sql) {
  char* error = nullptr;
  if (sqlite3_exec(db, sql, nullptr, nullptr, &error) != SQLITE_OK) {
    const std::string message = error ? error : "unknown error";
    sqlite3_free(error);
    throw std::runtime_error("sqlite store: '" + std::string(sql) +
                             "' failed: " + message);
  }
}

/// RAII prepared statement.
class Stmt {
 public:
  Stmt(sqlite3* db, const char* sql) : db_(db) {
    if (sqlite3_prepare_v2(db, sql, -1, &stmt_, nullptr) != SQLITE_OK) {
      raise(db, std::string("preparing '") + sql + "'");
    }
  }
  ~Stmt() { sqlite3_finalize(stmt_); }
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  sqlite3_stmt* get() noexcept { return stmt_; }
  sqlite3* db() noexcept { return db_; }

 private:
  sqlite3* db_ = nullptr;
  sqlite3_stmt* stmt_ = nullptr;
};

sqlite3* open_database(const std::string& path) {
  sqlite3* db = nullptr;
  if (sqlite3_open_v2(path.c_str(), &db,
                      SQLITE_OPEN_READWRITE | SQLITE_OPEN_CREATE,
                      nullptr) != SQLITE_OK) {
    const std::string message = db ? sqlite3_errmsg(db) : "out of memory";
    sqlite3_close(db);
    throw std::runtime_error("cannot open sqlite store '" + path +
                             "': " + message);
  }
  // Shard processes share the database; serialize writers on the lock
  // rather than failing fast.
  sqlite3_busy_timeout(db, 30000);
  return db;
}

void ensure_schema(sqlite3* db) {
  // WAL keeps readers unblocked while a shard commits, and recovers
  // every committed batch after a kill -9. synchronous=NORMAL fsyncs
  // on checkpoint, not per commit — the same durability class as the
  // jsonl backend's per-batch flush.
  exec(db, "PRAGMA journal_mode=WAL");
  exec(db, "PRAGMA synchronous=NORMAL");
  exec(db,
       "CREATE TABLE IF NOT EXISTS results("
       "fp TEXT NOT NULL, job INTEGER NOT NULL, "
       "metrics TEXT, error TEXT, PRIMARY KEY(fp, job))");
  exec(db,
       "CREATE TABLE IF NOT EXISTS campaigns("
       "fp TEXT PRIMARY KEY, title TEXT, metrics TEXT)");
}

}  // namespace

struct SqliteStore::Impl {
  sqlite3* db = nullptr;
  std::optional<WriterMarker> marker;

  ~Impl() { sqlite3_close(db); }
};

SqliteStore::SqliteStore(std::string dir, std::uint64_t fingerprint)
    : dir_(std::move(dir)), fingerprint_(fingerprint) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create store directory '" + dir_ +
                             "': " + ec.message());
  }
  db_path_ = dir_ + "/campaign.sqlite";
  impl_ = new Impl;
  try {
    impl_->db = open_database(db_path_);
    ensure_schema(impl_->db);
    impl_->marker.emplace(dir_, exp::fingerprint_hex(fingerprint_) +
                                    "-sqlite");
  } catch (...) {
    delete impl_;
    impl_ = nullptr;
    throw;
  }
}

SqliteStore::~SqliteStore() { delete impl_; }

std::map<std::size_t, std::vector<double>> SqliteStore::load(
    std::size_t metric_count) {
  std::map<std::size_t, std::vector<double>> cached;
  const std::string fp_hex = exp::fingerprint_hex(fingerprint_);
  Stmt select(impl_->db,
              "SELECT job, metrics FROM results "
              "WHERE fp=?1 AND error IS NULL");
  sqlite3_bind_text(select.get(), 1, fp_hex.c_str(), -1, SQLITE_TRANSIENT);
  int rc;
  while ((rc = sqlite3_step(select.get())) == SQLITE_ROW) {
    const sqlite3_int64 job = sqlite3_column_int64(select.get(), 0);
    const unsigned char* text = sqlite3_column_text(select.get(), 1);
    std::vector<double> metrics;
    if (job >= 0 &&
        parse_metrics(reinterpret_cast<const char*>(text), &metrics) &&
        metrics.size() == metric_count) {
      cached[static_cast<std::size_t>(job)] = std::move(metrics);
    }
  }
  if (rc != SQLITE_DONE) {
    raise(impl_->db, "loading results");
  }
  return cached;
}

std::map<std::size_t, std::string> SqliteStore::load_errors() {
  std::map<std::size_t, std::string> errors;
  const std::string fp_hex = exp::fingerprint_hex(fingerprint_);
  Stmt select(impl_->db,
              "SELECT job, error FROM results "
              "WHERE fp=?1 AND error IS NOT NULL");
  sqlite3_bind_text(select.get(), 1, fp_hex.c_str(), -1, SQLITE_TRANSIENT);
  int rc;
  while ((rc = sqlite3_step(select.get())) == SQLITE_ROW) {
    const sqlite3_int64 job = sqlite3_column_int64(select.get(), 0);
    const unsigned char* text = sqlite3_column_text(select.get(), 1);
    if (job >= 0 && text != nullptr) {
      errors[static_cast<std::size_t>(job)] =
          reinterpret_cast<const char*>(text);
    }
  }
  if (rc != SQLITE_DONE) {
    raise(impl_->db, "loading error rows");
  }
  return errors;
}

void SqliteStore::append(const std::vector<StoreRecord>& batch) {
  if (batch.empty()) {
    return;
  }
  const std::string fp_hex = exp::fingerprint_hex(fingerprint_);
  // One transaction per batch: the whole batch commits atomically (a
  // kill -9 between batches loses nothing committed) and the upsert
  // primary key dedupes re-run jobs in place.
  exec(impl_->db, "BEGIN IMMEDIATE");
  try {
    Stmt insert(impl_->db,
                "INSERT OR REPLACE INTO results(fp, job, metrics, error) "
                "VALUES(?1, ?2, ?3, ?4)");
    for (const auto& record : batch) {
      sqlite3_reset(insert.get());
      sqlite3_clear_bindings(insert.get());
      sqlite3_bind_text(insert.get(), 1, fp_hex.c_str(), -1,
                        SQLITE_TRANSIENT);
      sqlite3_bind_int64(insert.get(), 2,
                         static_cast<sqlite3_int64>(record.job_index));
      if (record.is_error()) {
        sqlite3_bind_null(insert.get(), 3);
        sqlite3_bind_text(insert.get(), 4, record.error.c_str(), -1,
                          SQLITE_TRANSIENT);
      } else {
        const std::string metrics = format_metrics(record.metrics);
        sqlite3_bind_text(insert.get(), 3, metrics.c_str(), -1,
                          SQLITE_TRANSIENT);
        sqlite3_bind_null(insert.get(), 4);
      }
      if (sqlite3_step(insert.get()) != SQLITE_DONE) {
        raise(impl_->db, "inserting result row");
      }
    }
  } catch (...) {
    exec(impl_->db, "ROLLBACK");
    throw;
  }
  exec(impl_->db, "COMMIT");
}

void SqliteStore::flush() {
  // Batches commit in append(); nothing is buffered in this layer.
}

void SqliteStore::annotate(const std::string& title,
                           const std::vector<std::string>& metric_names) {
  const std::string fp_hex = exp::fingerprint_hex(fingerprint_);
  std::string names;
  for (std::size_t m = 0; m < metric_names.size(); ++m) {
    if (m) {
      names += ',';
    }
    names += metric_names[m];
  }
  Stmt upsert(impl_->db,
              "INSERT OR REPLACE INTO campaigns(fp, title, metrics) "
              "VALUES(?1, ?2, ?3)");
  sqlite3_bind_text(upsert.get(), 1, fp_hex.c_str(), -1, SQLITE_TRANSIENT);
  sqlite3_bind_text(upsert.get(), 2, title.c_str(), -1, SQLITE_TRANSIENT);
  sqlite3_bind_text(upsert.get(), 3, names.c_str(), -1, SQLITE_TRANSIENT);
  if (sqlite3_step(upsert.get()) != SQLITE_DONE) {
    raise(impl_->db, "annotating campaign");
  }
}

CompactionStats compact_sqlite(const std::string& dir,
                               std::uint64_t fingerprint) {
  CompactionStats stats;
  const std::string path = dir + "/campaign.sqlite";
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return stats;  // nothing to compact
  }
  stats.files_scanned = 1;

  sqlite3* db = open_database(path);
  try {
    ensure_schema(db);
    const std::string fp_hex = exp::fingerprint_hex(fingerprint);
    {
      Stmt count(db, "SELECT COUNT(*) FROM results");
      if (sqlite3_step(count.get()) == SQLITE_ROW) {
        stats.records_seen =
            static_cast<std::size_t>(sqlite3_column_int64(count.get(), 0));
      }
    }
    {
      Stmt purge(db, "DELETE FROM results WHERE fp<>?1");
      sqlite3_bind_text(purge.get(), 1, fp_hex.c_str(), -1,
                        SQLITE_TRANSIENT);
      if (sqlite3_step(purge.get()) != SQLITE_DONE) {
        raise(db, "purging stale fingerprints");
      }
    }
    exec(db, "DELETE FROM campaigns WHERE fp NOT IN "
             "(SELECT DISTINCT fp FROM results)");
    {
      Stmt count(db, "SELECT COUNT(*) FROM results");
      if (sqlite3_step(count.get()) == SQLITE_ROW) {
        stats.records_kept =
            static_cast<std::size_t>(sqlite3_column_int64(count.get(), 0));
      }
    }
    // Fold the WAL back into the main file and reclaim the purged
    // pages — the sqlite analogue of the jsonl rewrite-in-place.
    exec(db, "PRAGMA wal_checkpoint(TRUNCATE)");
    exec(db, "VACUUM");
  } catch (...) {
    sqlite3_close(db);
    throw;
  }
  sqlite3_close(db);
  return stats;
}

#else  // !BAS_HAVE_SQLITE

bool sqlite_available() noexcept { return false; }

namespace {

[[noreturn]] void unavailable() {
  throw std::runtime_error(
      "SQLite backend unavailable: this binary was built without the "
      "sqlite3 library (install libsqlite3-dev and reconfigure), "
      "use --store jsonl instead");
}

}  // namespace

struct SqliteStore::Impl {};

SqliteStore::SqliteStore(std::string dir, std::uint64_t fingerprint)
    : dir_(std::move(dir)), fingerprint_(fingerprint) {
  unavailable();
}

SqliteStore::~SqliteStore() = default;

std::map<std::size_t, std::vector<double>> SqliteStore::load(std::size_t) {
  unavailable();
}

std::map<std::size_t, std::string> SqliteStore::load_errors() {
  unavailable();
}

void SqliteStore::append(const std::vector<StoreRecord>&) { unavailable(); }

void SqliteStore::flush() { unavailable(); }

void SqliteStore::annotate(const std::string&,
                           const std::vector<std::string>&) {
  unavailable();
}

CompactionStats compact_sqlite(const std::string&, std::uint64_t) {
  unavailable();
}

#endif  // BAS_HAVE_SQLITE

}  // namespace bas::store
