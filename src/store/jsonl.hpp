#pragma once
// The JSONL campaign-store backend (the default), refactored from the
// original src/exp/cache implementation with the on-disk format
// preserved byte for byte. Every record is one line:
//
//   {"fp":"<16-hex fingerprint>","job":<index>,"metrics":[<%.17g>...]}
//   {"fp":"<16-hex fingerprint>","job":<index>,"error":"<escaped>"}
//
// Records are flushed batch by batch: a killed campaign loses at most
// the batches still queued in the async writer, and load() simply
// skips a torn final line. Writers never share a file — each
// (fingerprint, writer tag) pair appends to its own
// `<fingerprint>[-<tag>].jsonl` — so concurrent shard processes can
// point at the same store directory. load() scans every *.jsonl file
// in the directory and filters records by fingerprint, which is also
// what makes `--merge` work: shard outputs and resumed runs are just
// more files in the pool.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>

#include "store/store.hpp"

namespace bas::store {

class JsonlStore final : public CampaignStore {
 public:
  /// Opens the store in `dir` (created if missing) for one spec
  /// fingerprint; registers this writer's live marker. Throws
  /// std::runtime_error when the directory cannot be created.
  JsonlStore(std::string dir, std::uint64_t fingerprint, std::string tag);

  std::map<std::size_t, std::vector<double>> load(
      std::size_t metric_count) override;
  std::map<std::size_t, std::string> load_errors() override;
  void append(const std::vector<StoreRecord>& batch) override;
  void flush() override;
  const std::string& describe() const noexcept override {
    return write_path_;
  }

  /// The file this writer appends to (inside the store directory).
  const std::string& write_path() const noexcept { return write_path_; }

 private:
  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::string write_path_;
  std::mutex mutex_;
  std::ofstream out_;
  std::optional<WriterMarker> marker_;
};

/// The jsonl half of store::compact_store() — see that function for the
/// contract. Exposed for tests.
CompactionStats compact_jsonl(const std::string& dir,
                              std::uint64_t fingerprint,
                              std::size_t metric_count);

}  // namespace bas::store
