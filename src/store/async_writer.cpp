#include "store/async_writer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace_log.hpp"

namespace bas::store {

std::string WriterStats::summary() const {
  return "queue " + std::to_string(depth) + "/" + std::to_string(capacity) +
         " (peak " + std::to_string(high_water) + "), stalls " +
         std::to_string(stalls) + ", drops " + std::to_string(dropped);
}

AsyncWriter::AsyncWriter(CampaignStore& store, std::size_t capacity,
                         obs::TraceLog* trace)
    : store_(store),
      capacity_(std::max<std::size_t>(1, capacity)),
      trace_(trace) {
  ring_.resize(capacity_);
  counters_.capacity = capacity_;
  consumer_ = std::thread([this] { consume(); });
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  consumer_.join();
}

void AsyncWriter::enqueue(StoreRecord record) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (size_ == capacity_ && !failed_) {
    // Backpressure: block the producer rather than drop the record or
    // grow without bound — a slow disk slows the campaign, it never
    // loses results. Counted so the heartbeat can show it.
    ++counters_.stalls;
    not_full_.wait(lock, [this] { return size_ < capacity_ || failed_; });
  }
  if (failed_) {
    throw std::runtime_error("campaign store writer failed: " + error_);
  }
  ring_[(head_ + size_) % capacity_] = std::move(record);
  ++size_;
  ++counters_.enqueued;
  counters_.high_water = std::max(counters_.high_water, size_);
  lock.unlock();
  not_empty_.notify_one();
}

void AsyncWriter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock,
                [this] { return (size_ == 0 && !in_flight_) || failed_; });
  if (failed_) {
    throw std::runtime_error("campaign store writer failed: " + error_);
  }
  lock.unlock();
  store_.flush();
}

WriterStats AsyncWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WriterStats snapshot = counters_;
  snapshot.depth = size_;
  return snapshot;
}

void AsyncWriter::consume() {
  std::vector<StoreRecord> batch;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    not_empty_.wait(lock, [this] { return size_ > 0 || stop_; });
    if (size_ == 0 && stop_) {
      return;
    }
    // Drain everything queued into one batch: the backend pays one
    // write+flush (or one transaction) however many jobs finished
    // since the last commit.
    batch.clear();
    while (size_ > 0) {
      batch.push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % capacity_;
      --size_;
    }
    in_flight_ = true;
    lock.unlock();
    not_full_.notify_all();

    if (trace_ != nullptr) {
      // One sample per batch: the depth the consumer woke to. Together
      // with the post-commit sample below this draws the sawtooth of
      // the ring filling and draining on the campaign trace.
      trace_->counter("writer queue depth", obs::kCampaignPid,
                      trace_->now_us(), static_cast<double>(batch.size()));
    }

    bool ok = true;
    std::string error;
    try {
      store_.append(batch);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    } catch (...) {
      ok = false;
      error = "non-standard exception";
    }

    lock.lock();
    in_flight_ = false;
    if (trace_ != nullptr) {
      // Post-commit sample: whatever producers queued while the batch
      // was committing. (TraceLog's own mutex nests harmlessly here —
      // it never calls back into the writer.)
      trace_->counter("writer queue depth", obs::kCampaignPid,
                      trace_->now_us(), static_cast<double>(size_));
    }
    if (ok) {
      counters_.written += batch.size();
      ++counters_.batches;
    } else {
      failed_ = true;
      error_ = std::move(error);
      // Wake every blocked producer and drainer; they rethrow.
      lock.unlock();
      not_full_.notify_all();
      drained_.notify_all();
      return;
    }
    if (size_ == 0) {
      drained_.notify_all();
    }
  }
}

}  // namespace bas::store
