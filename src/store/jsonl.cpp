#include "store/jsonl.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <vector>

#include "exp/plan.hpp"

namespace bas::store {

namespace {

/// Minimal JSON string escaping for error messages: enough that any
/// message round-trips one line and never breaks the record framing.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Other control characters would need \u escapes to be strict
        // JSON; a space keeps the line parseable without the machinery.
        out += (static_cast<unsigned char>(c) < 0x20) ? ' ' : c;
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    switch (text[++i]) {
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

/// Parsed form of one line; exactly one of metrics/error is meaningful.
struct ParsedRecord {
  std::size_t job_index = 0;
  std::vector<double> metrics;
  std::string error;
  bool is_error = false;
};

/// Parses one JSONL record. Returns false (leaving the output
/// untouched) on anything malformed — the caller treats that as "not
/// stored".
bool parse_record(const std::string& line, const std::string& fp_hex,
                  ParsedRecord* record) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return false;
  }
  const auto fp_at = line.find("\"fp\":\"");
  if (fp_at == std::string::npos ||
      line.compare(fp_at + 6, fp_hex.size(), fp_hex) != 0 ||
      fp_at + 6 + fp_hex.size() >= line.size() ||
      line[fp_at + 6 + fp_hex.size()] != '"') {
    return false;
  }
  const auto job_at = line.find("\"job\":");
  if (job_at == std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const char* cursor = line.c_str() + job_at + 6;
  const unsigned long long index = std::strtoull(cursor, &end, 10);
  if (end == cursor) {
    return false;
  }
  if (const auto error_at = line.find("\"error\":\"", job_at);
      error_at != std::string::npos) {
    const auto start = error_at + 9;
    const auto close = line.rfind('"');
    if (close == std::string::npos || close <= start) {
      return false;
    }
    record->job_index = static_cast<std::size_t>(index);
    record->error = unescape(line.substr(start, close - start));
    record->is_error = true;
    return true;
  }
  const auto metrics_at = line.find("\"metrics\":", job_at);
  if (metrics_at == std::string::npos) {
    return false;
  }
  std::vector<double> values;
  if (!parse_metrics(line.c_str() + metrics_at + 10, &values)) {
    return false;
  }
  record->job_index = static_cast<std::size_t>(index);
  record->metrics = std::move(values);
  record->is_error = false;
  return true;
}

std::string format_record(const std::string& fp_hex,
                          const StoreRecord& record) {
  std::string line =
      "{\"fp\":\"" + fp_hex +
      "\",\"job\":" + std::to_string(record.job_index);
  if (record.is_error()) {
    line += ",\"error\":\"" + escape(record.error) + "\"}\n";
  } else {
    line += ",\"metrics\":" + format_metrics(record.metrics) + "}\n";
  }
  return line;
}

/// Accept success records of any arity (load_errors() must let a
/// later success of whatever shape supersede an error row).
constexpr std::size_t kAnyArity = static_cast<std::size_t>(-1);

/// load()/load_errors()/compaction share one scan so duplicates
/// resolve identically everywhere: directory-iteration order, last
/// record per job index wins, and a later success/error record
/// replaces an earlier record of the other kind.
void scan_directory(const std::string& dir, const std::string& fp_hex,
                    std::size_t metric_count,
                    std::map<std::size_t, ParsedRecord>* records,
                    CompactionStats* stats,
                    std::vector<std::filesystem::path>* files) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl") {
      continue;
    }
    if (stats) {
      ++stats->files_scanned;
    }
    if (files) {
      files->push_back(entry.path());
    }
    std::ifstream file(entry.path());
    std::string line;
    while (std::getline(file, line)) {
      if (line.empty()) {
        continue;
      }
      if (stats) {
        ++stats->records_seen;
      }
      ParsedRecord record;
      if (parse_record(line, fp_hex, &record) &&
          (record.is_error || metric_count == kAnyArity ||
           record.metrics.size() == metric_count)) {
        (*records)[record.job_index] = std::move(record);
      }
    }
  }
}

}  // namespace

JsonlStore::JsonlStore(std::string dir, std::uint64_t fingerprint,
                       std::string tag)
    : dir_(std::move(dir)), fingerprint_(fingerprint) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create store directory '" + dir_ +
                             "': " + ec.message());
  }
  const std::string stem = exp::fingerprint_hex(fingerprint_) +
                           (tag.empty() ? "" : "-" + tag);
  write_path_ = dir_ + "/" + stem + ".jsonl";
  marker_.emplace(dir_, stem);
}

std::map<std::size_t, std::vector<double>> JsonlStore::load(
    std::size_t metric_count) {
  std::map<std::size_t, ParsedRecord> records;
  scan_directory(dir_, exp::fingerprint_hex(fingerprint_), metric_count,
                 &records, nullptr, nullptr);
  std::map<std::size_t, std::vector<double>> metrics;
  for (auto& [job_index, record] : records) {
    if (!record.is_error) {
      metrics[job_index] = std::move(record.metrics);
    }
  }
  return metrics;
}

std::map<std::size_t, std::string> JsonlStore::load_errors() {
  std::map<std::size_t, ParsedRecord> records;
  scan_directory(dir_, exp::fingerprint_hex(fingerprint_), kAnyArity,
                 &records, nullptr, nullptr);
  std::map<std::size_t, std::string> errors;
  for (auto& [job_index, record] : records) {
    if (record.is_error) {
      errors[job_index] = std::move(record.error);
    }
  }
  return errors;
}

void JsonlStore::append(const std::vector<StoreRecord>& batch) {
  if (batch.empty()) {
    return;
  }
  const std::string fp_hex = exp::fingerprint_hex(fingerprint_);
  std::string lines;
  for (const auto& record : batch) {
    lines += format_record(fp_hex, record);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    // A killed writer can leave the file without a trailing newline;
    // appending straight onto that torn line would merge two records
    // (and the torn prefix could steal the new record's metrics). Heal
    // with a newline so the torn line stays torn and load() skips it.
    bool needs_newline = false;
    {
      std::ifstream existing(write_path_, std::ios::binary | std::ios::ate);
      if (existing && existing.tellg() > 0) {
        existing.seekg(-1, std::ios::end);
        needs_newline = existing.get() != '\n';
      }
    }
    out_.open(write_path_, std::ios::app);
    if (!out_) {
      throw std::runtime_error("cannot open store file '" + write_path_ +
                               "' for appending");
    }
    if (needs_newline) {
      out_.put('\n');
    }
  }
  // One buffered write + one flush per batch: every record was
  // formatted off the stream, and the durability contract (an appended
  // batch survives a kill) costs exactly one flush.
  out_.write(lines.data(), static_cast<std::streamsize>(lines.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("failed appending to store file '" +
                             write_path_ + "'");
  }
}

void JsonlStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.flush();
  }
}

CompactionStats compact_jsonl(const std::string& dir,
                              std::uint64_t fingerprint,
                              std::size_t metric_count) {
  CompactionStats stats;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return stats;  // nothing to compact
  }

  // Scan exactly the way load() does — same iteration order, last
  // record per job index wins — so the survivors are the records a
  // load() of the uncompacted directory would have served.
  const std::string fp_hex = exp::fingerprint_hex(fingerprint);
  std::map<std::size_t, ParsedRecord> kept;
  std::vector<std::filesystem::path> old_files;
  scan_directory(dir, fp_hex, metric_count, &kept, &stats, &old_files);
  stats.records_kept = kept.size();

  // Write the survivors (in job order — compacted files are canonical,
  // so two compactions of equivalent directories are byte-identical)
  // to a temp name, rename it into place, and only then remove the old
  // files. A crash before the rename leaves the originals untouched
  // (load() ignores the ".tmp" extension); a crash after it leaves the
  // compacted file plus some originals, which load() merges to the
  // same records. At no instant does the directory lack the data.
  const std::string target = dir + "/" + fp_hex + ".jsonl";
  const std::string target_name = fp_hex + ".jsonl";
  if (!kept.empty()) {
    const std::string tmp = target + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write compacted store file '" + tmp +
                               "'");
    }
    std::string records;
    for (const auto& [job_index, record] : kept) {
      StoreRecord row;
      row.job_index = job_index;
      row.metrics = record.metrics;
      row.error = record.error;
      records += format_record(fp_hex, row);
    }
    out.write(records.data(), static_cast<std::streamsize>(records.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("failed writing compacted store file '" + tmp +
                               "'");
    }
    out.close();
    std::filesystem::rename(tmp, target);
  }
  for (const auto& path : old_files) {
    if (!kept.empty() && path.filename().string() == target_name) {
      continue;  // now holds the compacted records
    }
    if (std::filesystem::remove(path, ec)) {
      ++stats.files_removed;
    }
  }
  return stats;
}

}  // namespace bas::store
