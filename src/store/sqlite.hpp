#pragma once
// The SQLite campaign-store backend: one `campaign.sqlite` database per
// store directory, shared by every fingerprint that ever ran there, so
// cross-campaign analysis (perf history, paper-gap trends across
// sweeps) is a query instead of a script. Schema:
//
//   results(fp TEXT, job INTEGER, metrics TEXT, error TEXT,
//           PRIMARY KEY(fp, job))
//   campaigns(fp TEXT PRIMARY KEY, title TEXT, metrics TEXT)
//
// `metrics` carries the engine's canonical "[%.17g,...]" rendering —
// the same bytes the jsonl backend stores — so doubles round-trip
// bit-exactly and merge output is byte-identical across backends.
// Rows are upserted (INSERT OR REPLACE) inside one transaction per
// batch: re-run jobs dedupe themselves, concurrent shard writers
// serialize on the database lock (busy_timeout), and a kill -9 loses
// at most the uncommitted batch — WAL journaling recovers everything
// committed on the next open.
//
// Built only when the sqlite3 library is present (BAS_HAVE_SQLITE);
// otherwise construction throws and store::sqlite_available() is
// false.

#include <cstdint>
#include <string>

#include "store/store.hpp"

namespace bas::store {

class SqliteStore final : public CampaignStore {
 public:
  /// Opens (creating if missing) `dir`/campaign.sqlite for one spec
  /// fingerprint; registers this writer's live marker. Throws
  /// std::runtime_error when sqlite is unavailable or the database
  /// cannot be opened.
  SqliteStore(std::string dir, std::uint64_t fingerprint);
  ~SqliteStore() override;

  std::map<std::size_t, std::vector<double>> load(
      std::size_t metric_count) override;
  std::map<std::size_t, std::string> load_errors() override;
  void append(const std::vector<StoreRecord>& batch) override;
  void flush() override;
  const std::string& describe() const noexcept override { return db_path_; }
  void annotate(const std::string& title,
                const std::vector<std::string>& metric_names) override;

 private:
  struct Impl;
  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::string db_path_;
  Impl* impl_ = nullptr;
};

/// The sqlite half of store::compact_store(): deletes every row whose
/// fingerprint differs (dedupe needs no work — the primary key upserts
/// it away) and VACUUMs the database. Exposed for tests.
CompactionStats compact_sqlite(const std::string& dir,
                               std::uint64_t fingerprint);

}  // namespace bas::store
