#include "store/store.hpp"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "exp/sink.hpp"
#include "store/jsonl.hpp"
#include "store/sqlite.hpp"

namespace bas::store {

CampaignStore::~CampaignStore() = default;

void CampaignStore::annotate(const std::string&,
                             const std::vector<std::string>&) {}

Backend backend_from_label(const std::string& label) {
  if (label == "jsonl") {
    return Backend::kJsonl;
  }
  if (label == "sqlite") {
    return Backend::kSqlite;
  }
  throw std::runtime_error("unknown store backend '" + label +
                           "' (valid: jsonl, sqlite)");
}

const char* backend_label(Backend backend) {
  return backend == Backend::kSqlite ? "sqlite" : "jsonl";
}

std::unique_ptr<CampaignStore> make_store(Backend backend, std::string dir,
                                          std::uint64_t fingerprint,
                                          std::string tag) {
  if (backend == Backend::kSqlite) {
    return std::make_unique<SqliteStore>(std::move(dir), fingerprint);
  }
  return std::make_unique<JsonlStore>(std::move(dir), fingerprint,
                                      std::move(tag));
}

CompactionStats compact_store(Backend backend, const std::string& dir,
                              std::uint64_t fingerprint,
                              std::size_t metric_count) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return {};  // nothing to compact
  }
  require_no_live_writers(dir);
  if (backend == Backend::kSqlite) {
    return compact_sqlite(dir, fingerprint);
  }
  return compact_jsonl(dir, fingerprint, metric_count);
}

std::string format_metrics(const std::vector<double>& metrics) {
  std::string text = "[";
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    if (m) {
      text += ',';
    }
    text += exp::format_double(metrics[m]);
  }
  text += ']';
  return text;
}

bool parse_metrics(const char* text, std::vector<double>* metrics) {
  if (text == nullptr || *text != '[') {
    return false;
  }
  std::vector<double> values;
  const char* cursor = text + 1;
  while (*cursor != ']') {
    char* end = nullptr;
    const double value = std::strtod(cursor, &end);
    if (end == cursor) {
      return false;
    }
    values.push_back(value);
    cursor = end;
    if (*cursor == ',') {
      ++cursor;
    } else if (*cursor != ']') {
      return false;
    }
  }
  *metrics = std::move(values);
  return true;
}

// ------------------------------------------------------- live markers

WriterMarker::WriterMarker(const std::string& dir, const std::string& stem) {
  path_ = dir + "/" + stem + ".pid" + std::to_string(::getpid()) + ".live";
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot create writer marker '" + path_ + "'");
  }
  out << ::getpid() << "\n";
}

WriterMarker::~WriterMarker() {
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

namespace {

/// Pid parsed from "<stem>.pid<PID>.live", or -1 when the name does not
/// follow the marker convention.
long marker_pid(const std::string& filename) {
  const auto live_at = filename.rfind(".live");
  if (live_at == std::string::npos || live_at + 5 != filename.size()) {
    return -1;
  }
  const auto pid_at = filename.rfind(".pid", live_at);
  if (pid_at == std::string::npos) {
    return -1;
  }
  char* end = nullptr;
  const char* cursor = filename.c_str() + pid_at + 4;
  const long pid = std::strtol(cursor, &end, 10);
  if (end == cursor || end != filename.c_str() + live_at || pid <= 0) {
    return -1;
  }
  return pid;
}

bool process_alive(long pid) {
  // Signal 0 probes existence without delivering anything. EPERM means
  // "exists but not ours" — still alive.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

void require_no_live_writers(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    const long pid = marker_pid(name);
    if (pid < 0) {
      continue;
    }
    if (pid != static_cast<long>(::getpid()) && process_alive(pid)) {
      throw std::runtime_error(
          "store directory '" + dir + "' has a live writer (marker '" + name +
          "', pid " + std::to_string(pid) +
          "): refusing to compact while another process may be appending; "
          "compact after the shards finish");
    }
    // A marker whose process died (kill -9) is stale; clear it so the
    // directory is not bricked.
    std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace bas::store
