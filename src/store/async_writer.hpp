#pragma once
// The async writer stage: takes store writes off the worker threads.
//
// Workers enqueue StoreRecords onto a bounded ring; one dedicated
// consumer thread drains whatever has accumulated into a batch and
// commits it with a single CampaignStore::append — so the per-job cost
// on a worker is a queue push instead of a write+flush (jsonl) or a
// transaction (sqlite). Modeled on gacspp's COutput producer/consumer
// output stage (bounded buffer + consumer thread feeding SQLite).
//
// Contracts:
//   backpressure   a full ring blocks the producer (counted in
//                  stats().stalls) — records are never dropped, which
//                  is why stats().dropped is always zero; it exists so
//                  the heartbeat can prove it.
//   shutdown       drain() blocks until every enqueued record is
//                  committed; the destructor drains too, so a writer
//                  going out of scope never abandons records.
//   failure        when the backend throws, the consumer parks the
//                  error and every later enqueue()/drain() rethrows it
//                  on the caller's thread — a dead store fails the
//                  campaign loudly instead of buffering forever.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/store.hpp"

namespace bas::obs {
class TraceLog;
}

namespace bas::store {

/// A snapshot of the writer-queue counters, for the progress heartbeat
/// and tests.
struct WriterStats {
  std::uint64_t enqueued = 0;  ///< records accepted from producers
  std::uint64_t written = 0;   ///< records committed to the backend
  std::uint64_t batches = 0;   ///< append() calls issued
  std::uint64_t stalls = 0;    ///< producer waits on a full ring
  std::uint64_t dropped = 0;   ///< records lost — always 0 (see above)
  std::size_t depth = 0;       ///< records queued right now
  std::size_t high_water = 0;  ///< max depth observed
  std::size_t capacity = 0;

  /// "queue 3/1024 (peak 17), stalls 0, drops 0" — the heartbeat form.
  std::string summary() const;
};

class AsyncWriter {
 public:
  /// Spawns the consumer thread. `capacity` bounds the ring (>= 1);
  /// the store must outlive the writer. With a TraceLog attached (not
  /// owned, must outlive the writer) the consumer samples the ring
  /// depth around every batch commit onto the campaign trace's
  /// "writer queue depth" counter track.
  AsyncWriter(CampaignStore& store, std::size_t capacity,
              obs::TraceLog* trace = nullptr);

  /// Drains the ring, then joins the consumer. Backend errors during
  /// the final drain are swallowed (call drain() first to observe
  /// them).
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Hands one record to the consumer. Blocks while the ring is full;
  /// throws std::runtime_error when the consumer already failed.
  /// Thread-safe (MPSC: any number of producers).
  void enqueue(StoreRecord record);

  /// Blocks until every enqueued record is committed to the backend
  /// and flush()ed; rethrows a parked consumer error.
  void drain();

  WriterStats stats() const;

 private:
  void consume();

  CampaignStore& store_;
  const std::size_t capacity_;
  obs::TraceLog* const trace_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable drained_;
  std::vector<StoreRecord> ring_;
  std::size_t head_ = 0;  ///< index of the oldest queued record
  std::size_t size_ = 0;  ///< records queued
  bool in_flight_ = false;  ///< consumer is committing a batch
  bool stop_ = false;
  bool failed_ = false;
  std::string error_;
  WriterStats counters_;

  std::thread consumer_;
};

}  // namespace bas::store
