#pragma once
// The streaming campaign store: where per-job metric rows live between
// (and across) campaign runs.
//
// A CampaignStore persists records keyed on (spec fingerprint, job
// index). Two backends implement the interface:
//
//   jsonl   (default) the append-only JSONL cache — one record per
//           line, per-writer files so concurrent shard processes can
//           share a directory. Format unchanged from the original
//           src/exp/cache implementation, byte for byte.
//   sqlite  a single `campaign.sqlite` database per store directory
//           (WAL mode, one upsert-keyed `results` table shared by every
//           fingerprint), so `--merge` is a query and cross-campaign
//           analysis is SQL. Built only when the sqlite3 library is
//           available — see sqlite_available().
//
// Both share the engine's %.17g double rendering (exp/sink.hpp), so a
// result folded from either backend is byte-identical to a fresh run —
// the shard/merge/resume contract the campaign layer is verified
// against. Records are either metric rows (a successful job's values)
// or error rows (a job that failed permanently under --keep-going);
// load() serves only metric rows, so resumed runs re-execute failed
// jobs rather than trusting a stale failure.
//
// Writer liveness: every store construction registers a `*.live` marker
// (holding its pid) in the directory and removes it on destruction.
// compact_store() refuses to run while another live writer's marker is
// present — compaction rewrites/removes other writers' data — and
// silently clears markers whose process died (a kill -9 must not brick
// the directory).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bas::store {

/// Which backend a store directory uses.
enum class Backend {
  kJsonl,
  kSqlite,
};

/// Parses "jsonl" / "sqlite"; throws std::runtime_error on anything
/// else (the message lists the valid labels).
Backend backend_from_label(const std::string& label);

/// "jsonl" / "sqlite".
const char* backend_label(Backend backend);

/// True when the binary was built against the sqlite3 library; when
/// false, constructing a sqlite store throws std::runtime_error.
bool sqlite_available() noexcept;

/// One persisted row: either a successful job's metrics (error empty)
/// or a permanent failure (metrics empty, error holds the message).
struct StoreRecord {
  std::size_t job_index = 0;
  std::vector<double> metrics;
  std::string error;

  bool is_error() const noexcept { return !error.empty(); }
};

/// What compact_store() did, for progress notes and tests.
struct CompactionStats {
  std::size_t files_scanned = 0;
  std::size_t files_removed = 0;
  std::size_t records_seen = 0;
  std::size_t records_kept = 0;
};

/// The backend interface. One instance is one writer into a store
/// directory for one spec fingerprint; load() pools every record of
/// that fingerprint regardless of which writer appended it.
///
/// Thread model: append() is called from one thread at a time (the
/// async writer's consumer drains batches serially; Runner also calls
/// it inline); load()/load_errors() are called before the writer
/// starts. Implementations need not synchronize between the two.
class CampaignStore {
 public:
  virtual ~CampaignStore();

  /// Metrics of every stored success record whose fingerprint matches
  /// and whose arity is `metric_count`. Malformed, stale-fingerprint
  /// and error records are skipped; duplicate job indices keep the
  /// record written last.
  virtual std::map<std::size_t, std::vector<double>> load(
      std::size_t metric_count) = 0;

  /// Error messages of every stored error record of this fingerprint.
  virtual std::map<std::size_t, std::string> load_errors() = 0;

  /// Persists a batch of records durably (one write + flush for jsonl,
  /// one transaction for sqlite): after append returns, a kill -9
  /// loses none of the batch. Throws std::runtime_error on I/O errors.
  virtual void append(const std::vector<StoreRecord>& batch) = 0;

  /// Flushes anything buffered. append() is already durable per batch,
  /// so this is a no-op for both shipped backends, but the interface
  /// keeps the contract explicit for future buffering backends.
  virtual void flush() = 0;

  /// Human-readable location ("DIR/<fp>.jsonl", "DIR/campaign.sqlite")
  /// for notes and error messages.
  virtual const std::string& describe() const noexcept = 0;

  /// Optional campaign annotation (title, metric names) so the sqlite
  /// `campaigns` table makes cross-campaign SQL self-describing. The
  /// jsonl backend ignores it.
  virtual void annotate(const std::string& title,
                        const std::vector<std::string>& metric_names);
};

/// Opens store directory `dir` (created if missing) for `fingerprint`.
/// `tag` distinguishes this writer's jsonl file from other processes
/// appending to the same directory (e.g. "s0of2"); the sqlite backend
/// ignores it (the database serializes concurrent writers itself).
/// Throws std::runtime_error when the directory cannot be created or
/// the backend is unavailable.
std::unique_ptr<CampaignStore> make_store(Backend backend, std::string dir,
                                          std::uint64_t fingerprint,
                                          std::string tag);

/// Rewrites store directory `dir` so it holds exactly one canonical
/// success/error record per job of `fingerprint` and nothing else:
/// re-run duplicates are deduped (the survivor is what load() would
/// have served), stale-fingerprint records and torn tails are dropped,
/// and for sqlite the database is VACUUMed. A missing directory is a
/// no-op. Throws std::runtime_error when another live writer holds the
/// directory (see the header comment) or the rewrite fails.
CompactionStats compact_store(Backend backend, const std::string& dir,
                              std::uint64_t fingerprint,
                              std::size_t metric_count);

// --------------------------------------------------------------------
// Shared helpers for backends and tests.

/// Renders metrics as "[v1,v2,...]" with the engine's %.17g doubles.
std::string format_metrics(const std::vector<double>& metrics);

/// Parses a format_metrics() string back; returns false on anything
/// malformed (outputs untouched).
bool parse_metrics(const char* text, std::vector<double>* metrics);

/// Registers a `<dir>/<stem>.pid<PID>.live` marker on construction and
/// removes it on destruction. Used by both backends; exposed so tests
/// can fabricate live/dead writers.
class WriterMarker {
 public:
  /// Throws std::runtime_error when the marker cannot be created.
  WriterMarker(const std::string& dir, const std::string& stem);
  ~WriterMarker();

  WriterMarker(const WriterMarker&) = delete;
  WriterMarker& operator=(const WriterMarker&) = delete;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Scans `dir` for `*.live` markers. Markers of dead processes are
/// removed; a marker of a live process other than the caller throws
/// std::runtime_error naming the marker and pid. Used by
/// compact_store(); a missing directory is a no-op.
void require_no_live_writers(const std::string& dir);

}  // namespace bas::store
