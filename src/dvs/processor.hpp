#pragma once
// DVS-capable processor model (paper §2, Figure 1).
//
// The processor runs at one of a set of (frequency, voltage) operating
// points behind a DC-DC converter of efficiency eta fed from a battery
// at voltage Vbat:
//
//     eta * Vbat * Ibat = Vproc * Iproc,      Iproc = Ceff * Vproc * f
//
// so the battery-side current is Ibat = Ceff * Vproc^2 * f / (eta * Vbat).
// With voltage scaling proportional to frequency (Vproc = s * Vmax,
// f = s * fmax) the battery current scales as s^3 — the property the
// paper builds on. Core power is P = Vproc * Iproc = Ceff * Vproc^2 * f.

#include <string>
#include <vector>

namespace bas::dvs {

/// One frequency/voltage tuple the hardware supports.
struct OperatingPoint {
  double freq_hz = 0.0;
  double voltage_v = 0.0;
};

class Processor {
 public:
  /// Discrete processor with the given operating points (any order;
  /// stored sorted by frequency). Throws std::invalid_argument on empty
  /// points, non-positive values, or duplicate frequencies.
  Processor(std::vector<OperatingPoint> points, double vbat_v,
            double converter_eta, double ceff_farad, double idle_current_a);

  /// Continuous-frequency idealization: any f in (0, fmax] is available
  /// with voltage scaling linearly, V(f) = vmax * f / fmax. Used by the
  /// energy-only experiments (Table 1, Figure 6).
  static Processor continuous_ideal(double fmax_hz, double vmax_v,
                                    double vbat_v = 1.2,
                                    double converter_eta = 0.9,
                                    double ceff_farad = 7.776e-11,
                                    double idle_current_a = 0.0);

  /// The paper's evaluation processor: operating points
  /// [(0.5 GHz, 3 V), (0.75 GHz, 4 V), (1.0 GHz, 5 V)], 1.2 V battery
  /// rail, eta = 0.9, and Ceff calibrated so the full-speed battery
  /// current is ~1.8 A (see EXPERIMENTS.md, calibration).
  static Processor paper_default();

  bool continuous() const noexcept { return continuous_; }
  double fmax_hz() const noexcept { return points_.back().freq_hz; }
  double fmin_hz() const noexcept { return points_.front().freq_hz; }
  double vbat_v() const noexcept { return vbat_v_; }
  double converter_eta() const noexcept { return eta_; }
  double ceff_farad() const noexcept { return ceff_; }
  double idle_current_a() const noexcept { return idle_current_a_; }

  /// Operating points sorted by ascending frequency. For a continuous
  /// processor this holds the single (fmax, vmax) anchor.
  const std::vector<OperatingPoint>& points() const noexcept {
    return points_;
  }

  /// Voltage at frequency f. Continuous: vmax * f / fmax. Discrete:
  /// exact lookup; throws std::invalid_argument when f is not a point.
  double voltage_at(double freq_hz) const;

  /// Core power (W) at an operating point: Ceff * V^2 * f.
  double core_power_w(const OperatingPoint& op) const noexcept;

  /// Battery-side current (A) at an operating point:
  /// Ceff * V^2 * f / (eta * Vbat).
  double battery_current_a(const OperatingPoint& op) const noexcept;

  /// Energy per cycle (J) at an operating point: Ceff * V^2.
  double energy_per_cycle_j(const OperatingPoint& op) const noexcept;

 private:
  std::vector<OperatingPoint> points_;
  double vbat_v_ = 1.2;
  double eta_ = 0.9;
  double ceff_ = 7.776e-11;
  double idle_current_a_ = 0.0;
  bool continuous_ = false;
};

}  // namespace bas::dvs
