#include "dvs/clamped.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace bas::dvs {

namespace {

class ClampedDvs final : public DvsPolicy {
 public:
  explicit ClampedDvs(std::unique_ptr<DvsPolicy> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name() + "+clamp"; }

  double select(std::span<const GraphStatus> graphs, double now) override {
    // Re-arm on any new release: a graph's absolute deadline moving
    // forward means a fresh instance arrived.
    if (deadlines_.size() != graphs.size()) {
      deadlines_.assign(graphs.size(), -1.0);
    }
    bool new_release = false;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      if (graphs[i].abs_deadline_s > deadlines_[i]) {
        deadlines_[i] = graphs[i].abs_deadline_s;
        new_release = true;
      }
    }
    if (new_release) {
      level_ = std::numeric_limits<double>::infinity();
    }

    // EDF demand floor: the minimal frequency that keeps every deadline
    // worst-case safe, max over prefix demand of the EDF order.
    std::vector<const GraphStatus*> active;
    for (const auto& g : graphs) {
      if (g.remaining_wc_cycles > 0.0) {
        active.push_back(&g);
      }
    }
    std::sort(active.begin(), active.end(),
              [](const GraphStatus* a, const GraphStatus* b) {
                return a->abs_deadline_s < b->abs_deadline_s;
              });
    double floor = 0.0;
    double prefix_cycles = 0.0;
    for (const GraphStatus* g : active) {
      prefix_cycles += g->remaining_wc_cycles;
      const double window = g->abs_deadline_s - now;
      if (window <= 0.0) {
        floor = std::numeric_limits<double>::infinity();
        break;
      }
      floor = std::max(floor, prefix_cycles / window);
    }

    const double wanted = inner_->select(graphs, now);
    // Never rise above the committed level except when the deadline
    // floor forces it; never fall below the floor.
    level_ = std::max(std::min(level_, wanted), floor);
    return level_;
  }

  void reset() override {
    inner_->reset();
    level_ = std::numeric_limits<double>::infinity();
    deadlines_.clear();
  }

 private:
  std::unique_ptr<DvsPolicy> inner_;
  double level_ = std::numeric_limits<double>::infinity();
  std::vector<double> deadlines_;
};

}  // namespace

std::unique_ptr<DvsPolicy> make_profile_clamped(
    std::unique_ptr<DvsPolicy> inner) {
  return std::make_unique<ClampedDvs>(std::move(inner));
}

}  // namespace bas::dvs
