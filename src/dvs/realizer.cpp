#include "dvs/realizer.hpp"

#include <algorithm>

namespace bas::dvs {

FreqPlan realize(const Processor& proc, double fref_hz) {
  FreqPlan plan;
  if (proc.continuous()) {
    const double f =
        std::clamp(fref_hz, 1e-9 * proc.fmax_hz(), proc.fmax_hz());
    const OperatingPoint op{f, proc.voltage_at(f)};
    plan.lo = op;
    plan.hi = op;
    plan.hi_fraction = 1.0;
    plan.effective_freq_hz = f;
    return plan;
  }

  const auto& pts = proc.points();
  if (fref_hz <= pts.front().freq_hz) {
    plan.lo = pts.front();
    plan.hi = pts.front();
    plan.hi_fraction = 1.0;
    plan.effective_freq_hz = pts.front().freq_hz;
    return plan;
  }
  if (fref_hz >= pts.back().freq_hz) {
    plan.lo = pts.back();
    plan.hi = pts.back();
    plan.hi_fraction = 1.0;
    plan.effective_freq_hz = pts.back().freq_hz;
    return plan;
  }
  // Find adjacent pair lo < fref <= hi.
  std::size_t hi_idx = 1;
  while (pts[hi_idx].freq_hz < fref_hz) {
    ++hi_idx;
  }
  plan.lo = pts[hi_idx - 1];
  plan.hi = pts[hi_idx];
  // alpha * f_hi + (1 - alpha) * f_lo = fref
  plan.hi_fraction =
      (fref_hz - plan.lo.freq_hz) / (plan.hi.freq_hz - plan.lo.freq_hz);
  plan.effective_freq_hz = fref_hz;
  return plan;
}

double plan_battery_current_a(const Processor& proc, const FreqPlan& plan) {
  return plan.hi_fraction * proc.battery_current_a(plan.hi) +
         (1.0 - plan.hi_fraction) * proc.battery_current_a(plan.lo);
}

double plan_core_power_w(const Processor& proc, const FreqPlan& plan) {
  return plan.hi_fraction * proc.core_power_w(plan.hi) +
         (1.0 - plan.hi_fraction) * proc.core_power_w(plan.lo);
}

}  // namespace bas::dvs
