#pragma once
// Realization of an arbitrary reference frequency on a processor with a
// discrete set of operating points.
//
// DVS algorithms return a continuous fref, but "generally voltage
// scalable processors can run on a selected set of frequencies. It has
// been shown that using a linear combination of two adjacent available
// frequencies (fi < fref < fi+1) is optimal for realizing the running of
// the processor at fref" (paper §2, citing Gaujal-Navet-Walsh). This
// module computes that combination. The higher frequency is scheduled
// first within each slot so the instantaneous current profile stays
// non-increasing inside the slot (Guideline 1) and deadline safety never
// depends on the tail of the slot.

#include "dvs/processor.hpp"

namespace bas::dvs {

/// A realized frequency plan: run at `hi` for a `hi_fraction` share of
/// the slot's wall-clock time, then at `lo` for the remainder.
struct FreqPlan {
  OperatingPoint lo;
  OperatingPoint hi;
  /// Fraction of wall-clock time at `hi`, in [0, 1].
  double hi_fraction = 1.0;
  /// The effective (average) frequency delivered by the plan:
  /// hi_fraction * hi.f + (1 - hi_fraction) * lo.f.
  double effective_freq_hz = 0.0;

  bool single_level() const noexcept {
    return hi_fraction >= 1.0 || hi_fraction <= 0.0 ||
           lo.freq_hz == hi.freq_hz;
  }
};

/// Computes the optimal two-point mix delivering fref.
///  * fref <= fmin  -> constant fmin (cannot run slower; remaining slack
///    becomes idle time, which only EDF-without-DVS produces in practice);
///  * fref >= fmax  -> constant fmax;
///  * continuous processors -> exact single level at fref.
FreqPlan realize(const Processor& proc, double fref_hz);

/// Average battery current (A) drawn while executing under `plan`.
double plan_battery_current_a(const Processor& proc, const FreqPlan& plan);

/// Average core power (W) while executing under `plan`.
double plan_core_power_w(const Processor& proc, const FreqPlan& plan);

}  // namespace bas::dvs
