#include <algorithm>
#include <cmath>
#include <vector>

#include "dvs/policy.hpp"
#include "util/sort.hpp"

namespace bas::dvs {

namespace {

/// Always-fmax baseline (Table 2's "EDF" row: no DVS at all).
class NoDvs final : public DvsPolicy {
 public:
  explicit NoDvs(double fmax_hz) : fmax_hz_(fmax_hz) {}
  std::string name() const override { return "noDVS"; }
  double select(std::span<const GraphStatus> /*graphs*/,
                double /*now*/) override {
    return fmax_hz_;
  }
  bool run_constant() const override { return true; }

 private:
  double fmax_hz_;
};

/// fref = U * fmax with U the static worst-case utilization. Never
/// benefits from early completions; serves as an ablation baseline.
class StaticDvs final : public DvsPolicy {
 public:
  explicit StaticDvs(double fmax_hz) : fmax_hz_(fmax_hz) {}
  std::string name() const override { return "staticDVS"; }
  double select(std::span<const GraphStatus> graphs,
                double /*now*/) override {
    double cycles_per_second = 0.0;
    for (const auto& g : graphs) {
      cycles_per_second += g.wc_total_cycles / g.period_s;
    }
    return std::min(cycles_per_second, fmax_hz_);
  }
  // Reads only wc_total_cycles and period_s — per-run constants.
  bool run_constant() const override { return true; }

 private:
  double fmax_hz_;
};

/// Cycle-conserving EDF for task graphs — the paper's Algorithm 1.
///
///   upon release(Ti):       WCi = sum(wc_ij);        select_frequency()
///   upon endofnode(Ti,j):   WCi = WCi + ac_ij - wc_ij; select_frequency()
///   select_frequency():     U = sum(WCi / Di); fref = U * fmax
///
/// The WCi bookkeeping lives in the simulator (GraphStatus::cc_wc_cycles);
/// this class is purely the select_frequency() step, so the same status
/// snapshot can also feed laEDF and the feasibility check.
class CcEdf final : public DvsPolicy {
 public:
  explicit CcEdf(double fmax_hz) : fmax_hz_(fmax_hz) {}
  std::string name() const override { return "ccEDF"; }
  double select(std::span<const GraphStatus> graphs,
                double /*now*/) override {
    double cycles_per_second = 0.0;
    for (const auto& g : graphs) {
      cycles_per_second += g.cc_wc_cycles / g.period_s;
    }
    return std::min(cycles_per_second, fmax_hz_);
  }

 private:
  double fmax_hz_;
};

/// Look-ahead EDF (Pillai & Shin) lifted to graph instances: each graph's
/// current instance acts as one EDF task with remaining worst-case work
/// c_left = GraphStatus::remaining_wc_cycles and deadline abs_deadline_s.
///
/// defer() walks instances from the latest deadline to the earliest,
/// pushing as much of each instance's work as possible past the earliest
/// deadline dn (bounded by the spare utilization (1 - U) available in
/// [dn, di]), and accumulates in `s` the cycles that *must* run before
/// dn. The frequency is then s / (dn - now).
class LaEdf final : public DvsPolicy {
 public:
  explicit LaEdf(double fmax_hz) : fmax_hz_(fmax_hz) {}
  std::string name() const override { return "laEDF"; }

  double select(std::span<const GraphStatus> graphs, double now) override {
    constexpr double kEps = 1e-12;
    // Reused across calls: select() runs at every decision point, so a
    // per-call vector would be the policy's only steady-state
    // allocation (the order is rebuilt from scratch each call).
    std::vector<const GraphStatus*>& active = active_;
    active.clear();
    active.reserve(graphs.size());
    if (static_util_.size() < graphs.size()) {
      static_util_.resize(graphs.size());
    }
    double total_util = 0.0;
    for (const auto& g : graphs) {
      // wc_total / (fmax * period) is static per graph; memoize the
      // division, keyed on its exact operands, so the per-step loop
      // reads back the identical quotient instead of re-dividing.
      const auto slot = static_cast<std::size_t>(g.graph);
      if (slot >= static_util_.size()) {
        static_util_.resize(slot + 1);
      }
      auto& su = static_util_[slot];
      if (su.wc_total_cycles != g.wc_total_cycles ||
          su.period_s != g.period_s) {
        su.wc_total_cycles = g.wc_total_cycles;
        su.period_s = g.period_s;
        su.util = g.wc_total_cycles / (fmax_hz_ * g.period_s);
      }
      total_util += su.util;
      if (g.remaining_wc_cycles > kEps) {
        active.push_back(&g);
      }
    }
    if (active.empty()) {
      return 0.0;
    }
    // (deadline desc, graph desc) is a strict total order, the
    // contract util::insertion_sort's output-identity argument needs.
    util::insertion_sort(active, [](const GraphStatus* a,
                                    const GraphStatus* b) {
      if (a->abs_deadline_s != b->abs_deadline_s) {
        return a->abs_deadline_s > b->abs_deadline_s;  // latest 1st
      }
      return a->graph > b->graph;
    });
    const double dn = active.back()->abs_deadline_s;
    if (dn - now <= kEps) {
      return fmax_hz_;  // at/past the earliest deadline: flat out
    }
    double u = total_util;
    double must_run_cycles = 0.0;
    for (const GraphStatus* g : active) {
      u -= static_util_[static_cast<std::size_t>(g->graph)].util;
      const double horizon_s = g->abs_deadline_s - dn;
      // Cycles of this instance that cannot be deferred past dn: its
      // remaining work minus what the spare bandwidth (1 - u) * fmax can
      // absorb between dn and its own deadline.
      const double deferrable =
          std::max(0.0, (1.0 - u) * fmax_hz_ * horizon_s);
      const double x = std::max(0.0, g->remaining_wc_cycles - deferrable);
      if (horizon_s > kEps) {
        u += (g->remaining_wc_cycles - x) / (fmax_hz_ * horizon_s);
      }
      must_run_cycles += x;
    }
    return std::min(must_run_cycles / (dn - now), fmax_hz_);
  }

 private:
  struct StaticUtil {
    double wc_total_cycles = -1.0;  // impossible key: cold entries miss
    double period_s = 0.0;
    double util = 0.0;
  };

  double fmax_hz_;
  std::vector<const GraphStatus*> active_;
  std::vector<StaticUtil> static_util_;
};

}  // namespace

std::unique_ptr<DvsPolicy> make_no_dvs(double fmax_hz) {
  return std::make_unique<NoDvs>(fmax_hz);
}

std::unique_ptr<DvsPolicy> make_static_dvs(double fmax_hz) {
  return std::make_unique<StaticDvs>(fmax_hz);
}

std::unique_ptr<DvsPolicy> make_cc_edf(double fmax_hz) {
  return std::make_unique<CcEdf>(fmax_hz);
}

std::unique_ptr<DvsPolicy> make_la_edf(double fmax_hz) {
  return std::make_unique<LaEdf>(fmax_hz);
}

}  // namespace bas::dvs
