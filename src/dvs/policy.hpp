#pragma once
// Frequency-setting (DVS) policies — the "global frequency selection"
// half of the paper's methodology (§4.1).
//
// A policy observes the status of every task graph's current instance
// and returns the reference frequency fref that keeps all future
// deadlines safe. The simulator re-queries the policy at every release
// and node completion, exactly the two hook points of the paper's
// Algorithm 1.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace bas::dvs {

/// Scheduler-visible status of one task graph's current instance, the
/// common currency between DVS policies, the feasibility check, and the
/// simulator.
struct GraphStatus {
  /// Index of the graph within its TaskGraphSet.
  int graph = 0;
  /// Period Di (= relative deadline), seconds.
  double period_s = 0.0;
  /// Absolute deadline of the current instance, seconds.
  double abs_deadline_s = 0.0;
  /// Static worst case: sum of all node wcets, cycles (used for the
  /// schedulability-level utilization).
  double wc_total_cycles = 0.0;
  /// The paper's WCi: sum of actual cycles for completed nodes plus
  /// worst-case cycles for incomplete ones (Algorithm 1's update
  /// WCi <- WCi + ac_ij - wc_ij). Resets to wc_total at each release.
  double cc_wc_cycles = 0.0;
  /// Work provably still pending in the worst case: worst-case cycles of
  /// incomplete nodes minus verified progress on the running node.
  /// This is laEDF's c_left and the feasibility check's WC-remaining.
  double remaining_wc_cycles = 0.0;
  /// True once every node of the instance has completed.
  bool complete = false;
};

class DvsPolicy {
 public:
  virtual ~DvsPolicy() = default;

  virtual std::string name() const = 0;

  /// Returns fref (Hz) given the status of every graph's current
  /// instance (one entry per graph in the set, any order) at time `now`.
  /// Callers clamp to the processor's range via the realizer.
  virtual double select(std::span<const GraphStatus> graphs, double now) = 0;

  /// True when select() is a pure function of per-run constants — it
  /// reads neither `now` nor any dynamic GraphStatus field — so one
  /// call's result holds for the whole run. The event engine uses this
  /// to hoist frequency selection (and the realized plan) out of its
  /// inner loop; the tick engine ignores it, and since the hoisted
  /// value is exactly what every per-step call would have returned, the
  /// engines still agree. Policies with any dynamic input must return
  /// false (the default).
  virtual bool run_constant() const { return false; }

  /// Clears internal state (if any) for a fresh simulation run.
  virtual void reset() {}
};

/// No DVS: always fmax. The paper's "EDF" baseline row in Table 2.
std::unique_ptr<DvsPolicy> make_no_dvs(double fmax_hz);

/// Static speed: U * fmax with U the static worst-case utilization,
/// never revised at runtime. (A classic baseline; not in Table 2 but
/// used by the ablation benches.)
std::unique_ptr<DvsPolicy> make_static_dvs(double fmax_hz);

/// Cycle-conserving EDF extended to task graphs (paper Algorithm 1):
/// fref = fmax * Σ WCi / Di with WCi tracking actuals of completed nodes.
std::unique_ptr<DvsPolicy> make_cc_edf(double fmax_hz);

/// Look-ahead EDF (Pillai-Shin) over graph instances: defers work past
/// the earliest deadline as far as utilization allows and runs just fast
/// enough to finish the rest, using remaining worst-case work.
std::unique_ptr<DvsPolicy> make_la_edf(double fmax_hz);

}  // namespace bas::dvs
