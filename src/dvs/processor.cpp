#include "dvs/processor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bas::dvs {

Processor::Processor(std::vector<OperatingPoint> points, double vbat_v,
                     double converter_eta, double ceff_farad,
                     double idle_current_a)
    : points_(std::move(points)),
      vbat_v_(vbat_v),
      eta_(converter_eta),
      ceff_(ceff_farad),
      idle_current_a_(idle_current_a) {
  if (points_.empty()) {
    throw std::invalid_argument("Processor: no operating points");
  }
  for (const auto& op : points_) {
    if (!(op.freq_hz > 0.0) || !(op.voltage_v > 0.0)) {
      throw std::invalid_argument("Processor: non-positive operating point");
    }
  }
  if (!(vbat_v_ > 0.0) || !(eta_ > 0.0) || eta_ > 1.0 || !(ceff_ > 0.0) ||
      idle_current_a_ < 0.0) {
    throw std::invalid_argument("Processor: bad electrical parameters");
  }
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.freq_hz < b.freq_hz;
            });
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].freq_hz == points_[i - 1].freq_hz) {
      throw std::invalid_argument("Processor: duplicate frequency");
    }
    if (points_[i].voltage_v < points_[i - 1].voltage_v) {
      throw std::invalid_argument(
          "Processor: voltage must be non-decreasing in frequency");
    }
  }
}

Processor Processor::continuous_ideal(double fmax_hz, double vmax_v,
                                      double vbat_v, double converter_eta,
                                      double ceff_farad,
                                      double idle_current_a) {
  Processor p({{fmax_hz, vmax_v}}, vbat_v, converter_eta, ceff_farad,
              idle_current_a);
  p.continuous_ = true;
  return p;
}

Processor Processor::paper_default() {
  // (0.5 GHz, 3 V), (0.75 GHz, 4 V), (1.0 GHz, 5 V); 1.2 V NiMH rail.
  // Ceff = 7.776e-11 F makes the full-speed battery current 1.8 A, which
  // reproduces the paper's no-DVS anchor of ~1567 mAh / ~74 min at 70%
  // utilization on a 2000 mAh cell.
  return Processor({{0.5e9, 3.0}, {0.75e9, 4.0}, {1.0e9, 5.0}},
                   /*vbat_v=*/1.2, /*converter_eta=*/0.9,
                   /*ceff_farad=*/7.776e-11, /*idle_current_a=*/0.01);
}

double Processor::voltage_at(double freq_hz) const {
  if (continuous_) {
    const auto& anchor = points_.back();
    return anchor.voltage_v * freq_hz / anchor.freq_hz;
  }
  for (const auto& op : points_) {
    if (std::abs(op.freq_hz - freq_hz) <= 1e-6 * op.freq_hz) {
      return op.voltage_v;
    }
  }
  throw std::invalid_argument(
      "Processor::voltage_at: frequency is not an operating point");
}

double Processor::core_power_w(const OperatingPoint& op) const noexcept {
  return ceff_ * op.voltage_v * op.voltage_v * op.freq_hz;
}

double Processor::battery_current_a(const OperatingPoint& op) const noexcept {
  return core_power_w(op) / (eta_ * vbat_v_);
}

double Processor::energy_per_cycle_j(const OperatingPoint& op) const noexcept {
  return ceff_ * op.voltage_v * op.voltage_v;
}

}  // namespace bas::dvs
