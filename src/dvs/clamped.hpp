#pragma once
// Profile-clamped DVS decorator — Guideline 1 enforced at the DVS level.
//
// ccEDF/laEDF already yield *locally* non-increasing frequencies (slack
// only lowers fref until the next release pops it back up). This
// decorator goes further: within one busy interval it never lets fref
// rise above the level already committed, even if the inner policy asks
// for more, re-arming only when the system goes idle or a new instance
// is released. It is our ablation of "how much of BAS's battery win is
// the profile shape vs the energy total" — clamping trades a little
// deadline margin for a smoother profile, and is only safe on top of a
// policy that already over-provisions (it clamps to no lower than the
// inner policy's just-in-time minimum across the earliest deadline, so
// deadline guarantees are preserved; see ClampedDvs::select).

#include <memory>

#include "dvs/policy.hpp"

namespace bas::dvs {

/// Wraps `inner`; returns min(inner's fref history high-water mark
/// since the last re-arm, inner's current fref) but never below the
/// work-conserving floor required by the earliest deadline:
///     floor = remaining_wc(most imminent) / (d_imminent - now).
/// Re-arms (forgets the clamp) whenever a new release is detected
/// (any graph's deadline moved forward) or everything is complete.
std::unique_ptr<DvsPolicy> make_profile_clamped(
    std::unique_ptr<DvsPolicy> inner);

}  // namespace bas::dvs
