// The discrete-event inner loop (Engine::kEvent, the default).
//
// Instead of scanning every arrival stream at the top of each step, the
// engine keeps a priority queue of (time, kind, actor) events — one
// pending release per graph (re-armed from its ArrivalProcess on pop),
// battery-observation points, and the fixed-horizon marker — and keeps
// the at-most-one pending job completion in a running-slice register
// compared against the queue head (see event_queue.hpp for the
// taxonomy and the deterministic ordering contract). Scheduling
// decisions are taken at exactly the tick engine's decision points with
// exactly the tick engine's candidate enumeration and policy-call
// sequence, so the two engines produce the same execution trajectory
// in exact arithmetic; where no battery merging applies (no battery,
// or a recorded profile/trace) the engines agree draw-for-draw.
//
// The battery is where the engines differ numerically: executed and
// idle slices shorter than SimConfig::battery_window_s accrue into a
// charge-equivalent mean-current window that advances the kernel once
// per observation point, and constant stretches of at least a window
// (long idle gaps) advance it in one exact closed-form call. The
// tolerance argument — why <= 5 s mean-current merging moves lifetimes
// by < 0.1% on every calibrated kernel — is written up in
// EXPERIMENTS.md ("Event-driven core"). When a window's flush empties
// the cell mid-interval, the buffered slices attribute energy, charge
// and busy time exactly up to the cutoff; discrete counters
// (completions, deadline misses) may include work from the remainder
// of that one window — the documented slop of deferring battery
// evaluation.

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

#include "dvs/realizer.hpp"
#include "sched/feasibility.hpp"
#include "sim/engine_internal.hpp"
#include "util/sort.hpp"

namespace bas::sim {

using namespace detail;

SimResult Simulator::run_event(bat::Battery* battery) {
  scheme_.reset();
  if (battery != nullptr) {
    battery->reset();
  }

  SimResult res;
  res.battery_attached = battery != nullptr;
  const bool count_perf = config_.record_perf_counters;
  const int n_graphs = static_cast<int>(set_.size());
  const std::size_t n = set_.size();

  // Phase profiler (no-op shell unless BAS_PROFILE compiled it in) and
  // optional trace sink. Both are pure instrumentation: they read
  // clocks and append to res.perf.phases / the log, never simulation
  // state, so results are bitwise identical with them on or off.
  obs::TraceLog* const tlog = config_.trace_log;
  obs::PhaseClock prof(
      config_.record_phase_profile ? &res.perf.phases : nullptr, tlog);

  Scratch& s = *scratch_;
  reset_run_state(s, n);
  if (config_.record_trace) {
    res.trace.reserve(1024);
  }
  if (config_.record_profile) {
    res.profile.reserve(1024);
  }

  const ByGraph inst(s.inst);
  const ByGraph statuses(s.statuses);
  auto graph_at = [&](int g) -> decltype(auto) {
    return set_.graph(static_cast<std::size_t>(g));
  };
  auto scratch_caps = [&s] {
    std::size_t caps = s.edf.capacity() + s.candidates.capacity() +
                       s.statuses.capacity() + s.queue.capacity() +
                       s.win_slices.capacity() + s.released_batch.capacity() +
                       s.expiry.capacity() + s.edf_check.capacity();
    for (const auto& ir : s.inst) {
      caps += ir.ready.capacity();
    }
    return caps;
  };
  const std::size_t caps_at_start = count_perf ? scratch_caps() : 0;

  // Audit runs (profile/trace) flush the battery per slice and stay
  // draw-for-draw identical to the tick engine; merging applies to the
  // plain lifetime/feasibility runs campaigns are made of.
  const bool merging = battery != nullptr && config_.battery_window_s > 0.0 &&
                       !config_.record_profile && !config_.record_trace;

  double t = 0.0;
  bool battery_dead = false;
  double death_t = kInf;
  double last_busy_current = kInf;

  init_arrivals(s, config_, n_graphs);
  double next_release_s = min_next_release(s);

  EventQueue& q = s.queue;
  q.clear();
  for (int g = 0; g < n_graphs; ++g) {
    const double first = s.arrivals[static_cast<std::size_t>(g)].next;
    if (first != kInf) {
      q.push({first, EventKind::kRelease, g});
    }
  }
  if (!config_.drain) {
    q.push({config_.horizon_s, EventKind::kHorizon, -1});
  }

  // ---- battery merge window -------------------------------------------
  bool win_open = false;
  bool obs_scheduled = false;
  double win_start = 0.0;
  double win_span = 0.0;
  double win_charge = 0.0;

  // Advances the kernel over the open window in one charge-equivalent
  // mean-current call, then attributes the buffered slices to the
  // result exactly up to the sustained duration (the whole window
  // unless the cell hit cutoff inside it).
  auto flush_window = [&] {
    if (!win_open) {
      return;
    }
    win_open = false;
    const double span = win_span;
    if (span <= 0.0) {
      s.win_slices.clear();
      return;
    }
    const double sustained = battery->advance_interval(win_charge, span);
    if (count_perf) {
      ++res.perf.battery_draws;
      ++res.perf.battery_interval_advances;
    }
    if (battery->empty()) {
      battery_dead = true;
      res.battery_died = true;
      death_t = std::min(death_t, win_start + sustained);
    }
    double remaining = sustained;
    for (const auto& sl : s.win_slices) {
      const double take = std::min(sl.dur, remaining);
      if (take <= 0.0) {
        break;
      }
      res.charge_c += sl.current_a * take;
      res.energy_j += sl.power_w * take;
      if (sl.busy) {
        res.busy_s += take;
      }
      remaining -= take;
    }
    s.win_slices.clear();
  };

  // Accounts `current_a` at `power_w` for `dur` starting at `t0`.
  // Returns the sustained duration: `dur` unless the battery died — in
  // merge mode a slice rejected because an earlier flush emptied the
  // cell returns 0 and death_t already holds the cutoff time.
  auto accrue = [&](double t0, double dur, double current_a, double power_w,
                    bool busy) -> double {
    double sustained = dur;
    if (battery != nullptr && !battery_dead) {
      if (merging) {
        if (win_open && win_span + dur > config_.battery_window_s + kEps) {
          flush_window();
        }
        if (battery_dead) {
          return 0.0;
        }
        if (dur >= config_.battery_window_s) {
          // Constant stretch of at least a window (a long idle gap):
          // one exact closed-form advance, no merging error at all.
          flush_window();
          if (battery_dead) {
            return 0.0;
          }
          sustained = battery->draw(current_a, dur);
          if (count_perf) {
            ++res.perf.battery_draws;
            ++res.perf.battery_interval_advances;
          }
          if (battery->empty()) {
            battery_dead = true;
            res.battery_died = true;
            death_t = std::min(death_t, t0 + sustained);
          }
          res.charge_c += current_a * sustained;
          res.energy_j += power_w * sustained;
          if (busy) {
            res.busy_s += sustained;
          }
          return sustained;
        }
        if (!win_open) {
          win_open = true;
          win_start = t0;
          win_span = 0.0;
          win_charge = 0.0;
          s.win_slices.clear();
          if (!obs_scheduled) {
            q.push({t0 + config_.battery_window_s, EventKind::kBatteryObs,
                    -1});
            obs_scheduled = true;
          }
        }
        win_span += dur;
        win_charge += current_a * dur;
        s.win_slices.push_back({dur, current_a, power_w, busy});
        if (count_perf) {
          ++res.perf.ticks_skipped;
        }
        return dur;  // applied to res at the flush
      }
      // Exact per-slice path (audit runs): identical to the tick
      // engine's consume().
      sustained = battery->draw(current_a, dur);
      if (count_perf) {
        ++res.perf.battery_draws;
      }
      if (battery->empty()) {
        battery_dead = true;
        res.battery_died = true;
        death_t = std::min(death_t, t0 + sustained);
      }
    }
    if (config_.record_profile && sustained > 0.0) {
      res.profile.add(sustained, current_a);
    }
    res.charge_c += current_a * sustained;
    res.energy_j += power_w * sustained;
    if (busy) {
      res.busy_s += sustained;
    }
    return sustained;
  };

  const bool stochastic_prio = scheme_.priority->stochastic();
  const bool need_estimate = scheme_.priority->uses_estimate();
  // Estimator history is observable only through estimate() calls; when
  // the priority never consults the estimator (Random and the fixed
  // orderings), feeding its history is dead work the event engine
  // skips. The tick engine keeps observing — the skip cannot move any
  // output either engine reports.
  const bool feed_estimator = need_estimate;

  // A run-constant DVS policy (noDVS, staticDVS) returns the same fref
  // at every decision point; select it once and realize the plan here
  // instead of per step. For the rest, realize() is memoized on fref:
  // policies saturate (fmax under load, repeated clamps), and the
  // mapping fref -> plan is pure.
  const bool constant_dvs = scheme_.dvs->run_constant();
  double cached_fref = -1.0;
  dvs::FreqPlan cached_plan{};
  if (constant_dvs) {
    cached_fref = std::clamp(scheme_.dvs->select(s.statuses, 0.0), 0.0,
                             proc_.fmax_hz());
    cached_plan = dvs::realize(proc_, cached_fref);
  }
  // The status snapshot feeds exactly two readers: DvsPolicy::select and
  // the feasibility guard. With a run-constant policy (select hoisted)
  // and most-imminent scope (every candidate sits at EDF position 0, so
  // the guard never fires), neither reader exists and the snapshot is
  // dead work.
  const bool need_statuses =
      !constant_dvs || scheme_.scope == core::ReadyScope::kAllReleased;
  // The debug cross-check compares the snapshot too, so it forces the
  // write-through maintenance on even when no reader exists.
  const bool maintain_statuses =
      need_statuses || config_.check_incremental_state;
  // Considered and dropped: a per-(graph, node) cache of estimate()
  // results keyed on (instance, observe-epoch). Exact — the history
  // estimator is a pure function of its observed history — but the
  // interleaved A/B harness measured it ~5-8% SLOWER on the dense
  // BAS-2 cell: the estimator's EMA read is already one array load, so
  // the two-level cache indirection plus key compare cost more than
  // the devirtualized call it elided (EXPERIMENTS.md, "Scheduler-loop
  // perf").

  // ---- persistent incremental state ---------------------------------
  // s.edf, the status snapshot and the expiry watch are maintained
  // across steps from here on: releases and the running node's
  // bookkeeping are the only writers, so the per-step rebuild the loop
  // used to do is pure recomputation of unchanged state.
  s.edf.clear();
  s.released_batch.clear();
  s.expiry.clear();
  if (maintain_statuses) {
    // Pre-first-release snapshot at t = 0: every instance is an empty
    // node list (complete()) whose deadline 0 counts as expired — the
    // bytes the old rebuild produced on the first step.
    for (int g = 0; g < n_graphs; ++g) {
      auto& st = statuses[g];
      st.abs_deadline_s = 0.0;
      st.complete = true;
      st.cc_wc_cycles = 0.0;
      st.remaining_wc_cycles = 0.0;
    }
  }
  const auto edf_less = [&](int a, int b) {
    const double da = inst[a].deadline_s;
    const double db = inst[b].deadline_s;
    return da != db ? da < db : a < b;
  };

  // SimConfig::check_incremental_state: rebuild both maintained
  // structures from scratch — the EDF order via the original
  // insertion_sort path — and require them element-for-element (and
  // for the snapshot, byte-for-byte) identical.
  auto check_state = [&](double now) {
    s.edf_check.clear();
    for (int g = 0; g < n_graphs; ++g) {
      if (!inst[g].complete()) {
        s.edf_check.push_back(g);
      }
    }
    util::insertion_sort(s.edf_check, edf_less);
    if (s.edf_check != s.edf) {
      throw std::logic_error(
          "event engine: maintained EDF order diverged from rebuild");
    }
    for (int g = 0; g < n_graphs; ++g) {
      const auto& ir = inst[g];
      const auto& st = statuses[g];
      const bool complete = ir.complete();
      const bool expired = complete && now >= ir.deadline_s - kEps;
      const double cc = expired ? 0.0 : ir.cc_wc;
      if (st.abs_deadline_s != ir.deadline_s || st.complete != complete ||
          st.cc_wc_cycles != cc ||
          st.remaining_wc_cycles != ir.remaining_wc) {
        throw std::logic_error(
            "event engine: write-through status snapshot diverged from "
            "rebuild");
      }
    }
  };

  while (true) {
    if (count_perf) {
      ++res.perf.steps;
    }
    prof.mark();

    // ---- 1. dispatch every event due now -----------------------------
    if (!q.empty() && q.top().time <= t + kEps) {
      bool released = false;
      do {
        const Event e = q.pop();
        if (count_perf) {
          ++res.perf.events_popped;
        }
        switch (e.kind) {
          case EventKind::kRelease: {
            // Collect each graph once per batch; the EDF/status
            // maintenance replays after the whole batch so the list is
            // only ever searched with consistent keys (a graph may
            // release twice at one instant under bursty arrivals).
            bool seen = false;
            for (const int other : s.released_batch) {
              if (other == e.actor) {
                seen = true;
                break;
              }
            }
            if (!seen) {
              s.released_batch.push_back(e.actor);
            }
            release_instance(s, config_, e.actor, res, count_perf);
            const double upcoming =
                s.arrivals[static_cast<std::size_t>(e.actor)].next;
            if (upcoming != kInf) {
              q.push({upcoming, EventKind::kRelease, e.actor});
            }
            released = true;
            break;
          }
          case EventKind::kBatteryObs:
            obs_scheduled = false;
            flush_window();
            break;
          case EventKind::kHorizon:
          case EventKind::kCompletion:
            // Horizon is handled by the time check below; completions
            // live in the running-slice register, never in the queue.
            break;
        }
      } while (!q.empty() && q.top().time <= t + kEps);
      if (released) {
        next_release_s = min_next_release(s);
      }
    }
    prof.lap(obs::Phase::kQueueOps);

    if (!config_.drain && t >= config_.horizon_s - kEps) {
      break;
    }
    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    // ---- 2. incremental maintenance: releases + expiry ---------------
    // The maintained EDF order and snapshot can only have moved at the
    // releases the batch above dispatched; time passing additionally
    // carries complete instances across their deadline, which the
    // expiry watch applies. Everything else is unchanged state the old
    // per-step rebuild recomputed for nothing.
    if (!s.released_batch.empty()) {
      // Pass 1: drop entries keyed under superseded deadlines, so the
      // re-inserts below only ever search a list whose keys are
      // current (inst[g].deadline_s already moved for the whole batch).
      for (const int rg : s.released_batch) {
        const auto it = std::find(s.edf.begin(), s.edf.end(), rg);
        if (it != s.edf.end()) {
          s.edf.erase(it);
          if (count_perf) {
            ++res.perf.edf_incremental_ops;
          }
        }
        if (maintain_statuses && !s.expiry.empty()) {
          const auto we =
              std::find_if(s.expiry.begin(), s.expiry.end(),
                           [rg](const std::pair<double, int>& e) {
                             return e.second == rg;
                           });
          if (we != s.expiry.end()) {
            s.expiry.erase(we);
          }
        }
      }
      // Pass 2: insert the fresh instances at their (deadline, id)
      // slots. Same comparator total order as the rebuild's sort, so
      // the maintained list is the unique sequence insertion_sort
      // produced — element for element.
      for (const int rg : s.released_batch) {
        const auto& ir = inst[rg];
        if (!ir.complete()) {
          util::insert_sorted(s.edf, rg, edf_less);
          if (count_perf) {
            ++res.perf.edf_incremental_ops;
          }
        }
        if (maintain_statuses) {
          auto& st = statuses[rg];
          st.abs_deadline_s = ir.deadline_s;
          st.complete = ir.complete();
          const bool expired = st.complete && t >= ir.deadline_s - kEps;
          st.cc_wc_cycles = expired ? 0.0 : ir.cc_wc;
          st.remaining_wc_cycles = ir.remaining_wc;
          if (st.complete && !expired) {
            // Zero-node graph: released complete with a live deadline.
            util::insert_sorted(s.expiry, {ir.deadline_s, rg},
                                std::less<std::pair<double, int>>{});
          }
        }
      }
      s.released_batch.clear();
    }
    if (maintain_statuses) {
      // Expiry watch: a complete instance's cc_wc_cycles drops to 0
      // the moment t passes its deadline — the rebuild's `expired`
      // rule with the same epsilon, applied once per crossing instead
      // of re-derived per step per graph.
      while (!s.expiry.empty() && t >= s.expiry.front().first - kEps) {
        statuses[s.expiry.front().second].cc_wc_cycles = 0.0;
        s.expiry.erase(s.expiry.begin());
      }
    }
    if (config_.check_incremental_state) {
      check_state(t);
    }
    prof.lap(obs::Phase::kIncrementalMaint);

    if (s.edf.empty()) {
      // Jump the whole idle gap to the next release (or the horizon).
      double t_next = next_release_s;
      if (t_next == kInf) {
        if (config_.drain || t >= config_.horizon_s - kEps) {
          break;  // drained: nothing in flight, nothing to release
        }
        t_next = config_.horizon_s;
      }
      const double dt = t_next - t;
      if (dt > 0.0) {
        if (count_perf) {
          res.perf.idle_time_jumped_s += dt;
        }
        accrue(t, dt, proc_.idle_current_a(), 0.0, false);
        if (battery_dead && config_.stop_when_battery_empty) {
          prof.lap(obs::Phase::kBatteryAdvance);
          break;
        }
      }
      t = t_next;
      prof.lap(obs::Phase::kBatteryAdvance);
      continue;
    }

    // ---- 4. frequency selection (the scheme's DVS half) --------------
    if (!constant_dvs) {
      const double fref = std::clamp(scheme_.dvs->select(s.statuses, t), 0.0,
                                     proc_.fmax_hz());
      if (fref != cached_fref) {
        cached_fref = fref;
        cached_plan = dvs::realize(proc_, fref);
      }
    }
    const auto& plan = cached_plan;
    prof.lap(obs::Phase::kDvsSelect);

    // ---- 5. ready list + priority order (the ordering half) ----------
    // Candidate enumeration order is the tick engine's exactly, so a
    // stochastic priority's draw stream stays aligned across engines.
    s.candidates.clear();
    const std::size_t scan_depth =
        scheme_.scope == core::ReadyScope::kAllReleased ? s.edf.size() : 1;
    for (std::size_t pos = 0; pos < scan_depth; ++pos) {
      const int g = s.edf[pos];
      const auto& ir = inst[g];
      for (const tg::NodeId id : ir.ready) {
        const auto& nr = ir.nodes[id];
        auto& sc = s.candidates.emplace_back();
        auto& c = sc.cand;
        c.graph = g;
        c.node = id;
        c.wc_cycles = std::max(nr.wc - nr.executed(), kCycleEps);
        c.actual_cycles = nr.remaining_ac;
        c.estimate_cycles = c.wc_cycles;  // overwritten when needed
        c.graph_abs_deadline_s = ir.deadline_s;
        c.graph_remaining_wc_cycles = ir.remaining_wc;
        c.edf_position = static_cast<int>(pos);
        sc.score = 0.0;
      }
    }
    const std::size_t n_cand = s.candidates.size();
    if (count_perf) {
      res.perf.candidates_scored += n_cand;
    }
    prof.lap(obs::Phase::kCandidateBuild);
    // A lone candidate needs no order — unless the priority consumes
    // randomness, in which case it is scored anyway to keep its stream
    // aligned with the tick engine's.
    const bool do_score = n_cand > 1 || stochastic_prio;
    if (do_score) {
      for (auto& sc : s.candidates) {
        if (need_estimate) {
          const auto& nr = inst[sc.cand.graph].nodes[sc.cand.node];
          const double full_estimate = scheme_.estimator->estimate(
              sc.cand.graph, sc.cand.node, nr.wc, nr.ac);
          sc.cand.estimate_cycles =
              std::max(full_estimate - nr.executed(), kCycleEps);
        }
        sc.score = scheme_.priority->score(sc.cand, t);
      }
    }
    prof.lap(obs::Phase::kEstimateScore);

    // Selection: the unique (score, graph, node) minimum, falling back
    // to the fully sorted walk only when that minimum fails the
    // feasibility guard (rare) — the same chosen candidate the tick
    // engine's sort-then-walk produces.
    auto cand_less = [](const ScoredCandidate& a, const ScoredCandidate& b) {
      if (a.score != b.score) {
        return a.score < b.score;
      }
      if (a.cand.graph != b.cand.graph) {
        return a.cand.graph < b.cand.graph;
      }
      return a.cand.node < b.cand.node;
    };
    auto feasible = [&](const ScoredCandidate& sc) {
      return sc.cand.edf_position == 0 ||
             sched::feasibility_check(s.statuses, s.edf, sc.cand.edf_position,
                                      sc.cand.wc_cycles,
                                      plan.effective_freq_hz, t);
    };
    const ScoredCandidate* chosen = nullptr;
    if (n_cand == 1) {
      chosen = &s.candidates[0];  // pos 0 by construction: unguarded
    } else {
      const ScoredCandidate* best = &s.candidates[0];
      for (std::size_t i = 1; i < n_cand; ++i) {
        if (cand_less(s.candidates[i], *best)) {
          best = &s.candidates[i];
        }
      }
      if (feasible(*best)) {
        chosen = best;
      } else {
        util::insertion_sort(s.candidates, cand_less);
        for (const auto& sc : s.candidates) {
          if (feasible(sc)) {
            chosen = &sc;
            break;
          }
        }
      }
    }
    // The most-imminent graph always offers an unguarded candidate.
    if (chosen == nullptr) {
      throw std::logic_error("Simulator: no feasible candidate (bug)");
    }
    prof.lap(obs::Phase::kSelect);

    // ---- 6. run the chosen node until completion or next release -----
    const int g = chosen->cand.graph;
    auto& ir = inst[g];
    auto& nr = ir.nodes[chosen->cand.node];

    const double full_duration = nr.remaining_ac / plan.effective_freq_hz;
    const double t_release = next_release_s;
    const double run_until = std::min(t + full_duration, t_release);

    const double hi_end = t + plan.hi_fraction * full_duration;
    Phase phase_buf[2];
    std::size_t n_phases = 0;
    if (run_until <= hi_end + kEps || plan.single_level()) {
      phase_buf[n_phases++] = {plan.hi_fraction > 0.0 ? plan.hi : plan.lo, t,
                               run_until};
    } else {
      phase_buf[n_phases++] = {plan.hi, t, hi_end};
      phase_buf[n_phases++] = {plan.lo, hi_end, run_until};
    }

    double executed_cycles = 0.0;
    double t_now = t;
    for (std::size_t p = 0; p < n_phases; ++p) {
      const auto& ph = phase_buf[p];
      const double dt = ph.end - ph.start;
      if (dt <= 0.0) {
        continue;
      }
      const double current = proc_.battery_current_a(ph.op);
      const double power = proc_.core_power_w(ph.op);
      const double sustained = accrue(t_now, dt, current, power, true);
      executed_cycles += ph.op.freq_hz * sustained;
      if (config_.record_trace && sustained > 0.0) {
        res.trace.push_back(ExecSlice{g, ir.number, chosen->cand.node,
                                      t_now, t_now + sustained,
                                      ph.op.freq_hz, current});
      }
      if (tlog != nullptr && sustained > 0.0) {
        char name[48];
        std::snprintf(name, sizeof(name), "g%d/n%u i%llu", g,
                      static_cast<unsigned>(chosen->cand.node),
                      static_cast<unsigned long long>(ir.number));
        tlog->span(name, obs::kSimPid, g, t_now * 1e6, sustained * 1e6);
      }
      if (current > last_busy_current + 1e-12) {
        ++res.frequency_increases;
      }
      last_busy_current = current;
      t_now += sustained;
      if (battery_dead && config_.stop_when_battery_empty) {
        break;
      }
    }
    t = t_now;
    prof.lap(obs::Phase::kBatteryAdvance);

    // ---- 7. bookkeeping ----------------------------------------------
    executed_cycles = std::min(executed_cycles, nr.remaining_ac);
    nr.remaining_ac -= executed_cycles;
    ir.remaining_wc = std::max(0.0, ir.remaining_wc - executed_cycles);

    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    bool node_completed = false;
    bool instance_completed = false;
    if (nr.remaining_ac <= kCycleEps) {
      // The running-slice register dispatches its completion here —
      // the kCompletion arm of the event taxonomy.
      if (count_perf) {
        ++res.perf.events_popped;
      }
      node_completed = true;
      nr.remaining_ac = 0.0;
      nr.done = true;
      ++ir.done_count;
      ++res.nodes_executed;
      ir.cc_wc += nr.ac - nr.wc;
      ir.remaining_wc = std::max(0.0, ir.remaining_wc - (nr.wc - nr.ac));
      auto& rd = ir.ready;
      rd.erase(std::lower_bound(rd.begin(), rd.end(), chosen->cand.node));
      const auto& graph = graph_at(g);
      for (tg::NodeId succ : graph.successors(chosen->cand.node)) {
        if (--ir.nodes[succ].pending_preds == 0) {
          rd.insert(std::lower_bound(rd.begin(), rd.end(), succ), succ);
        }
      }
      if (feed_estimator) {
        scheme_.estimator->observe(g, chosen->cand.node, nr.ac);
      }
      if (ir.complete()) {
        instance_completed = true;
        ++res.instances_completed;
        if (t > ir.deadline_s + 1e-6) {
          ++res.deadline_misses;
        }
        if (tlog != nullptr) {
          char args[64];
          std::snprintf(args, sizeof(args),
                        "{\"graph\": %d, \"instance\": %llu}", g,
                        static_cast<unsigned long long>(ir.number));
          tlog->instant("complete", obs::kSimPid, g, t * 1e6, args);
        }
      }
    } else if (run_until >= t_release - kEps) {
      ++res.preemptions;
    }
    prof.lap(obs::Phase::kBookkeeping);

    // ---- 8. incremental maintenance: only the running graph moved ----
    if (maintain_statuses) {
      auto& st = statuses[g];
      st.remaining_wc_cycles = ir.remaining_wc;
      if (instance_completed) {
        st.complete = true;
        if (t >= ir.deadline_s - kEps) {
          st.cc_wc_cycles = 0.0;  // completed at/after its deadline
        } else {
          st.cc_wc_cycles = ir.cc_wc;
          util::insert_sorted(s.expiry, {ir.deadline_s, g},
                              std::less<std::pair<double, int>>{});
        }
      } else if (node_completed) {
        st.cc_wc_cycles = ir.cc_wc;
      }
    }
    if (instance_completed) {
      // edf_position indexes the maintained list, which nothing has
      // touched since the candidate build read it.
      s.edf.erase(s.edf.begin() + chosen->cand.edf_position);
      if (count_perf) {
        ++res.perf.edf_incremental_ops;
      }
    }
    prof.lap(obs::Phase::kIncrementalMaint);
  }

  // Settle the battery: flush whatever the last window holds, then pin
  // the end time to the cutoff if the cell emptied.
  flush_window();
  if (res.battery_died && config_.stop_when_battery_empty) {
    t = death_t;
  }

  if (count_perf && scratch_caps() != caps_at_start) {
    ++res.perf.scratch_grows;
  }

  res.end_time_s = t;
  if (battery != nullptr) {
    res.battery_lifetime_s = battery->time_alive_s();
    res.battery_delivered_mah = battery->charge_delivered_mah();
    if (count_perf) {
      res.perf.kernel = battery->kernel_counters();
    }
  }
  return res;
}

}  // namespace bas::sim
