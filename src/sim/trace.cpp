#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace bas::sim {

namespace {

constexpr double kTol = 1e-6;  // seconds of tolerance for float drift

void note(TraceAudit& audit, std::size_t& counter, const std::string& what) {
  ++counter;
  audit.ok = false;
  if (audit.first_problem.empty()) {
    audit.first_problem = what;
  }
}

}  // namespace

std::string TraceAudit::summary() const {
  if (ok) {
    return "trace audit: clean";
  }
  std::ostringstream out;
  out << "trace audit: FAILED (overlap=" << overlap_violations
      << ", precedence=" << precedence_violations
      << ", window=" << window_violations
      << ", frequency=" << frequency_violations
      << ", incomplete=" << incomplete_instances << "): " << first_problem;
  return out.str();
}

TraceAudit audit_trace(const std::vector<ExecSlice>& trace,
                       const tg::TaskGraphSet& set,
                       const dvs::Processor& proc, bool drained) {
  TraceAudit audit;

  // --- processor exclusivity & frequency range --------------------------
  std::vector<const ExecSlice*> by_time;
  by_time.reserve(trace.size());
  for (const auto& s : trace) {
    by_time.push_back(&s);
  }
  std::sort(by_time.begin(), by_time.end(),
            [](const ExecSlice* a, const ExecSlice* b) {
              return a->start_s < b->start_s;
            });
  for (std::size_t i = 0; i < by_time.size(); ++i) {
    const auto& s = *by_time[i];
    if (s.end_s < s.start_s - kTol) {
      note(audit, audit.overlap_violations, "slice with negative duration");
    }
    if (i + 1 < by_time.size() &&
        by_time[i + 1]->start_s < s.end_s - kTol) {
      std::ostringstream what;
      what << "overlap at t=" << by_time[i + 1]->start_s;
      note(audit, audit.overlap_violations, what.str());
    }
    if (s.freq_hz > proc.fmax_hz() * (1.0 + 1e-9) ||
        s.freq_hz < proc.fmin_hz() * (1.0 - 1e-9)) {
      std::ostringstream what;
      what << "frequency " << s.freq_hz << " outside processor range";
      note(audit, audit.frequency_violations, what.str());
    }
  }

  // --- per-instance grouping --------------------------------------------
  struct Key {
    int graph;
    std::uint32_t instance;
    bool operator<(const Key& other) const {
      return std::tie(graph, instance) <
             std::tie(other.graph, other.instance);
    }
  };
  std::map<Key, std::vector<const ExecSlice*>> instances;
  for (const auto& s : trace) {
    instances[{s.graph, s.instance}].push_back(&s);
  }

  double trace_end = 0.0;
  for (const auto& s : trace) {
    trace_end = std::max(trace_end, s.end_s);
  }

  for (auto& [key, slices] : instances) {
    const auto& graph = set.graph(static_cast<std::size_t>(key.graph));
    const double release = key.instance * graph.period();
    const double deadline = release + graph.deadline();

    std::sort(slices.begin(), slices.end(),
              [](const ExecSlice* a, const ExecSlice* b) {
                return a->start_s < b->start_s;
              });

    // Window containment.
    for (const auto* s : slices) {
      if (s->start_s < release - kTol || s->end_s > deadline + kTol) {
        std::ostringstream what;
        what << "graph " << key.graph << " instance " << key.instance
             << " executed outside its window at t=" << s->start_s;
        note(audit, audit.window_violations, what.str());
      }
    }

    // First-start / last-end per node for precedence checking, and node
    // completeness.
    std::map<tg::NodeId, std::pair<double, double>> node_span;
    for (const auto* s : slices) {
      auto [it, inserted] =
          node_span.try_emplace(s->node, s->start_s, s->end_s);
      if (!inserted) {
        it->second.first = std::min(it->second.first, s->start_s);
        it->second.second = std::max(it->second.second, s->end_s);
      }
    }
    for (const auto& [node, span] : node_span) {
      for (tg::NodeId p : graph.predecessors(node)) {
        const auto pit = node_span.find(p);
        if (pit == node_span.end() || span.first < pit->second.second - kTol) {
          std::ostringstream what;
          what << "graph " << key.graph << " instance " << key.instance
               << ": node " << node << " started before predecessor " << p
               << " finished";
          note(audit, audit.precedence_violations, what.str());
        }
      }
    }

    if (drained && node_span.size() != graph.node_count()) {
      // Instances released too close to the end of a capped run are
      // forgivable only in non-drained mode.
      std::ostringstream what;
      what << "graph " << key.graph << " instance " << key.instance
           << " incomplete (" << node_span.size() << "/" << graph.node_count()
           << " nodes)";
      note(audit, audit.incomplete_instances, what.str());
    }
  }
  return audit;
}

}  // namespace bas::sim
