#pragma once
// Execution traces and their auditor.
//
// The simulator can record every executed slice (task, time window,
// frequency, battery current). The auditor re-checks from the trace
// alone that a run respected the real-time contract: no processor
// overlap, precedence order within each instance, every slice inside its
// instance's [release, deadline] window, and frequencies within the
// processor's range. Tests sweep random workloads through every scheme
// and require a clean audit — the paper's claim that the methodology
// never violates deadlines regardless of DVS policy or priority
// function.

#include <cstdint>
#include <string>
#include <vector>

#include "dvs/processor.hpp"
#include "taskgraph/set.hpp"

namespace bas::sim {

/// One contiguous stretch of execution of one task at one frequency.
struct ExecSlice {
  int graph = 0;
  std::uint32_t instance = 0;
  tg::NodeId node = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double freq_hz = 0.0;
  double current_a = 0.0;
};

struct TraceAudit {
  bool ok = true;
  std::size_t overlap_violations = 0;
  std::size_t precedence_violations = 0;
  std::size_t window_violations = 0;   // slice outside [release, deadline]
  std::size_t frequency_violations = 0;
  std::size_t incomplete_instances = 0;  // released but not fully executed
  std::string first_problem;  // human-readable description of the first issue

  std::string summary() const;
};

/// Audits `trace` against the workload and processor. `drained` tells the
/// auditor whether the run guaranteed that every released instance was
/// completed (drain mode); when false, instances still in flight at the
/// end of the trace are not counted as incomplete.
TraceAudit audit_trace(const std::vector<ExecSlice>& trace,
                       const tg::TaskGraphSet& set,
                       const dvs::Processor& proc, bool drained);

}  // namespace bas::sim
