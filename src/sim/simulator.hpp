#pragma once
// Event-driven simulation of a scheduling scheme over a periodic
// task-graph set on a DVS processor, optionally discharging a battery
// inline — the experimental apparatus behind every table and figure.
//
// Decision points are exactly the paper's: task-graph releases and node
// completions. Releases are pulled from a per-graph ArrivalProcess
// (arrival/arrival.hpp; default "periodic" = the paper's k * period
// clock, bit-identical), with deadlines release-relative. At each
// decision point the scheme's DVS policy re-selects fref, the
// realizer maps it onto the processor's operating points (higher point
// first within a slot), the ready list is built according to the
// scheme's scope, candidates are scored by the priority function, and
// the best candidate passing the feasibility check runs until it
// finishes or the next release preempts it.
//
// Actual computations are drawn per (seed, graph, instance, node) as
// U(ac_lo, ac_hi) * wc — identical across schemes for a given seed
// (common random numbers), as required for fair scheme comparisons.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arrival/arrival.hpp"
#include "battery/model.hpp"
#include "battery/profile.hpp"
#include "core/scheme.hpp"
#include "dvs/processor.hpp"
#include "obs/profiler.hpp"
#include "sim/trace.hpp"
#include "taskgraph/set.hpp"

namespace bas::sim {

namespace detail {
// Per-run working state (instance/arrival runtime, status snapshots,
// EDF order, candidate and phase lists, event queue), owned by the
// Simulator and reused across steps and runs so the scheduling loops
// allocate nothing in steady state. Defined in engine_internal.hpp,
// shared by both engines.
struct Scratch;
}  // namespace detail

/// Which inner loop drives the simulation.
enum class Engine {
  /// The PR 5 decision-stepping loop: scan arrivals for due releases at
  /// the top of every step, draw the battery once per executed slice.
  /// Kept selectable for A/B runs; bit-frozen by golden tests.
  kTick,
  /// The discrete-event core (default): a priority queue of
  /// (time, kind, actor) events — releases, completions, battery
  /// observations, horizon — with battery decay/recovery evaluated over
  /// merged intervals in one closed-form kernel call (see
  /// SimConfig::battery_window_s and EXPERIMENTS.md, "Event-driven
  /// core" for the numerical-equivalence argument).
  kEvent,
};

std::string to_string(Engine engine);
/// Parses "tick" / "event"; throws std::invalid_argument listing the
/// known values otherwise (the eager-validation contract CLI override
/// paths rely on).
Engine engine_from_string(const std::string& text);

/// How per-instance actual computations relate across instances.
enum class AcModel {
  /// Fresh U(lo, hi) * wc draw per (instance, node) — the paper's §5
  /// wording taken literally. History-based estimators see only the
  /// population mean.
  kIid,
  /// Each node has a persistent mean fraction drawn once from U(lo, hi),
  /// jittered per instance — tasks with stable data-dependent behaviour.
  /// This is the regime where "keep history of previous instances"
  /// (§4.2) pays off.
  kPerNodeMean,
};

struct SimConfig {
  /// Releases stop at this simulated time; with `drain` the run then
  /// finishes all in-flight instances (same total work for every scheme).
  double horizon_s = 60.0;
  bool drain = true;
  /// Seed for per-node actual computations.
  std::uint64_t seed = 1;
  /// Actual computation as a fraction of wc, drawn from
  /// [ac_lo_frac, ac_hi_frac] ("between 20% and 100% of the WCET", §5).
  double ac_lo_frac = 0.2;
  double ac_hi_frac = 1.0;
  AcModel ac_model = AcModel::kIid;
  /// kPerNodeMean: per-instance jitter added to the node's mean fraction
  /// (result clamped back into [ac_lo_frac, ac_hi_frac]).
  double ac_jitter = 0.1;
  /// Release model driving every graph's instance arrivals (see
  /// arrival/arrival.hpp). The default "periodic" reproduces the
  /// paper's k * period clock bit-identically. Deadlines stay
  /// release-relative (release + graph deadline) under every model.
  /// Per-graph arrival streams are seeded via util::derive_seed from
  /// `seed`, so arrivals are identical across schemes (CRN) and for
  /// any thread count.
  arrival::Spec arrival;
  /// Record the full execution trace (for audits and figures).
  bool record_trace = false;
  /// Record the battery-current load profile.
  bool record_profile = true;
  /// With an attached battery: stop the run the moment it empties.
  bool stop_when_battery_empty = true;
  /// Count hot-path work (scheduling steps, battery draws, scratch-
  /// buffer growth) into SimResult::perf. Counters are instrumentation
  /// only — they never enter a sink or a cache record, so recording
  /// them cannot perturb the byte-identity contract. The perf bench
  /// (bench/perf_hotpath) flips this on to normalize its timings.
  bool record_perf_counters = false;
  /// Arm the scoped phase profiler (obs/profiler.hpp): per-phase wall
  /// time and lap counts into SimResult::perf.phases. Opt-in per run
  /// and separate from record_perf_counters on purpose — profiling
  /// reads a clock at every phase boundary, which is far too expensive
  /// for timed benchmark reps (tens of percent on dense cells), so
  /// perf_hotpath profiles one dedicated rep instead of the timed
  /// ones. No-op (and free) unless the build compiled BAS_PROFILE in.
  bool record_phase_profile = false;
  /// Debug cross-check of the event engine's incrementally maintained
  /// state: at every decision point the engine additionally rebuilds
  /// the EDF order (via the original util::insertion_sort path) and the
  /// four dynamic status-snapshot fields from scratch and throws
  /// std::logic_error if either differs from the maintained copy.
  /// Instrumentation only — the check reads state and compares, so an
  /// enabled run that does not throw is byte-identical to a disabled
  /// one. The tick engine has no incremental state and ignores the
  /// flag. Far too slow for benchmarks; meant for tests.
  bool check_incremental_state = false;
  /// Which inner loop runs the simulation. Folded into
  /// ScenarioSpec::fingerprint(), so campaign caches from one engine
  /// never satisfy jobs of the other.
  Engine engine = Engine::kEvent;
  /// Event engine only: the maximum wall-clock span of one battery
  /// merge window. Busy/idle slices shorter than this accrue into a
  /// charge-equivalent mean-current interval that hits the kernel once
  /// at the next battery-observation point; constant stretches of at
  /// least this length (long idle gaps) are always evaluated exactly in
  /// a single closed-form call. 5 s shifts lifetimes by < 0.1% on every
  /// calibrated kernel (EXPERIMENTS.md, "Event-driven core"). Merging
  /// disables itself when a load profile or trace is recorded (those
  /// runs flush per slice and stay draw-for-draw exact); <= 0 disables
  /// it everywhere.
  double battery_window_s = 5.0;
  /// Optional Chrome-trace sink (obs/trace_log.hpp), not owned. When
  /// attached the engines emit release/completion instants and — with
  /// record_trace — per-node execution spans on the sim-time track,
  /// plus per-step phase spans in BAS_PROFILE builds. Instrumentation
  /// only: never enters a fingerprint, sink or store record, so
  /// attaching a log leaves every result byte-identical.
  obs::TraceLog* trace_log = nullptr;
};

/// Hot-path work counters (SimConfig::record_perf_counters).
struct PerfCounters {
  /// Scheduling-loop iterations — decision points visited (releases,
  /// completions, idle hops). The denominator behind steps/sec.
  std::uint64_t steps = 0;
  /// Battery::draw calls issued (busy and idle segments alike).
  std::uint64_t battery_draws = 0;
  /// Ready-list candidates scored across all steps.
  std::uint64_t candidates_scored = 0;
  /// Times a reused scratch buffer (status/EDF/candidate arrays,
  /// per-instance node and ready-list storage, event queue) had to
  /// allocate or grow. Steady state should hold this at a small warmup
  /// constant — the zero-alloc property bench/perf_hotpath tracks.
  std::uint64_t scratch_grows = 0;
  /// Event engine: events dispatched from the queue (releases,
  /// battery observations, horizon) plus completion dispatches of the
  /// running-slice register. Tick engine: 0.
  std::uint64_t events_popped = 0;
  /// Event engine: executed slices whose battery evaluation was
  /// deferred into a merge window instead of an individual kernel call
  /// — per-slice "ticks" of battery stepping that were skipped. The
  /// attribution counter behind the sparse-scenario win. Tick: 0.
  std::uint64_t ticks_skipped = 0;
  /// Closed-form battery advances over merged or long-constant
  /// intervals (window flushes + whole idle gaps). Every one replaces
  /// what the tick engine issues as per-slice draws. Tick: 0.
  std::uint64_t battery_interval_advances = 0;
  /// Event engine: sorted insert/erase operations on the persistently
  /// maintained EDF order (releases and completions are the only
  /// points it can change). Each step used to pay a full rebuild +
  /// sort; the attribution counter behind the incremental-state win.
  /// Tick: 0.
  std::uint64_t edf_incremental_ops = 0;
  /// Simulated seconds of empty time crossed in single jumps (both
  /// engines jump idle gaps; the counter makes the sparse/dense mix of
  /// a scenario visible in perf reports).
  double idle_time_jumped_s = 0.0;
  /// Per-kernel battery cache/work counters, copied from the attached
  /// battery at the end of the run (all zero when no battery is
  /// attached or the build compiled them out — check
  /// bat::KernelCounters::compiled_in). See battery/kernel_counters.hpp
  /// for field semantics.
  bat::KernelCounters kernel;
  /// Per-phase wall time of the scheduling loop (obs/profiler.hpp).
  /// All zero unless the build compiled BAS_PROFILE in (check
  /// obs::PhaseProfile::compiled_in) and the run recorded perf
  /// counters.
  obs::PhaseProfile phases;
};

struct SimResult {
  /// Simulated time reached (s).
  double end_time_s = 0.0;
  /// Core (processor-side) energy consumed by execution (J).
  double energy_j = 0.0;
  /// Battery-side charge for execution + idle (C); equals the profile
  /// integral when the profile is recorded.
  double charge_c = 0.0;
  /// Busy time (s) — everything that is not idle.
  double busy_s = 0.0;

  std::uint64_t instances_released = 0;
  std::uint64_t instances_completed = 0;
  std::uint64_t nodes_executed = 0;
  std::uint64_t preemptions = 0;
  /// Times the effective frequency rose between consecutive busy slices
  /// within one hyper-release window — a Guideline 1 proxy.
  std::uint64_t frequency_increases = 0;
  /// Instances that completed after their absolute deadline, plus
  /// instances superseded while incomplete: graphs are single-buffered
  /// (one instance in flight), so a new release replaces an unfinished
  /// predecessor and counts it here. Under periodic arrivals the next
  /// release IS the deadline, so both notions coincide; under
  /// jittered/stochastic arrivals an early next release clips the
  /// window short of the release-relative deadline — the price
  /// deferred-work schemes (BAS-2) pay on non-periodic traffic.
  std::size_t deadline_misses = 0;

  bat::LoadProfile profile;       // when record_profile
  std::vector<ExecSlice> trace;   // when record_trace
  PerfCounters perf;              // when record_perf_counters

  bool battery_attached = false;
  bool battery_died = false;
  double battery_lifetime_s = 0.0;
  double battery_delivered_mah = 0.0;

  double average_current_a() const {
    return end_time_s > 0.0 ? charge_c / end_time_s : 0.0;
  }
};

class Simulator {
 public:
  /// The scheme is held by reference and mutated (estimator history,
  /// random priority stream); it is reset() at the start of every run.
  Simulator(const tg::TaskGraphSet& set, const dvs::Processor& proc,
            core::Scheme& scheme, SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs the simulation; with a battery, discharges it inline and (by
  /// default) stops when it empties. The battery is reset first.
  SimResult run(bat::Battery* battery = nullptr);

 private:
  // The two inner loops (tick_engine.cpp / event_engine.cpp); run()
  // dispatches on config_.engine.
  SimResult run_tick(bat::Battery* battery);
  SimResult run_event(bat::Battery* battery);

  const tg::TaskGraphSet& set_;
  const dvs::Processor& proc_;
  core::Scheme& scheme_;
  SimConfig config_;
  std::unique_ptr<detail::Scratch> scratch_;
};

/// Convenience wrapper: build the scheme, simulate, return the result.
SimResult simulate_scheme(const tg::TaskGraphSet& set,
                          const dvs::Processor& proc, core::SchemeKind kind,
                          const SimConfig& config,
                          bat::Battery* battery = nullptr);

}  // namespace bas::sim
