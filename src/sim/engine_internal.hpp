#pragma once
// Shared internals of the two simulator engines (tick_engine.cpp and
// event_engine.cpp): per-run runtime structs, the per-(seed, graph,
// instance, node) actual-computation draw, the Scratch arena, and the
// setup/release helpers whose behaviour both engines must share
// exactly. Everything here was factored verbatim out of the PR 5
// simulator.cpp — the tick engine's observable behaviour is unchanged
// (bit-frozen by the tick golden tests).
//
// Not part of the public API: include only from src/sim/*.cpp.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "arrival/arrival.hpp"
#include "dvs/policy.hpp"
#include "dvs/processor.hpp"
#include "obs/trace_log.hpp"
#include "sched/priority.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bas::sim::detail {

constexpr double kEps = 1e-9;
constexpr double kCycleEps = 0.5;  // cycles; completion snap threshold
constexpr double kInf = std::numeric_limits<double>::infinity();

struct NodeRt {
  double wc = 0.0;
  double ac = 0.0;
  double remaining_ac = 0.0;
  int pending_preds = 0;
  bool done = false;

  double executed() const { return ac - remaining_ac; }
};

struct InstanceRt {
  std::uint32_t number = 0;
  double release_s = 0.0;
  double deadline_s = 0.0;
  std::vector<NodeRt> nodes;
  /// Ids with pending_preds == 0 and !done, ascending — incrementally
  /// maintained so the ready-list scan touches only ready nodes. The
  /// ascending order reproduces exactly the id-order walk the scan
  /// previously did over all nodes (same candidates, same sequence —
  /// which the Random priority's draw stream depends on).
  std::vector<tg::NodeId> ready;
  std::size_t done_count = 0;
  /// Paper's WCi: Σ ac(done) + Σ wc(pending).
  double cc_wc = 0.0;
  /// Σ over incomplete nodes of (wc − executed cycles).
  double remaining_wc = 0.0;

  bool complete() const { return done_count == nodes.size(); }
};

/// One graph's release stream. Each graph gets a fresh ArrivalProcess
/// bound to its period and a private Rng derived from (config seed,
/// arrival tag, graph index) — a pure function of the coordinates, so
/// arrivals are identical across schemes (common random numbers), for
/// any thread count under the campaign runner, and across engines.
/// `next` holds the one precomputed upcoming release; once it reaches
/// the horizon the stream is closed (kInf) and never drawn from again,
/// keeping the draw sequence independent of how the run ends.
struct ArrivalRt {
  std::unique_ptr<arrival::ArrivalProcess> process;
  util::Rng rng{0};
  double prev = -1.0;
  double next = kInf;
};

struct ScoredCandidate {
  sched::Candidate cand;
  double score = 0.0;
};

/// One constant-operating-point stretch of a chosen node's slot.
struct Phase {
  dvs::OperatingPoint op;
  double start, end;
};

/// One slice accrued into the event engine's battery merge window,
/// kept so a window that empties the cell mid-interval can attribute
/// energy/charge/busy time exactly up to the cutoff.
struct WinSlice {
  double dur = 0.0;
  double current_a = 0.0;
  double power_w = 0.0;
  bool busy = false;
};

/// Int-indexed view over per-graph state: the simulator addresses
/// graphs with the int ids GraphStatus uses, while the backing storage
/// is a std::vector. The one size_t cast lives here instead of at
/// every subscript.
template <typename T>
class ByGraph {
 public:
  explicit ByGraph(std::vector<T>& v) : v_(&v) {}
  T& operator[](int g) const { return (*v_)[static_cast<std::size_t>(g)]; }

 private:
  std::vector<T>* v_;
};

/// Immutable per-node facts hoisted out of the release loop: the wcet,
/// predecessor count, the draw_actual hash key (a pure function of
/// (seed, graph, node)) and — under kPerNodeMean — the node's
/// persistent mean fraction, which the original formula re-derived
/// from the same key at every release.
struct NodeStatic {
  double wc = 0.0;
  int pred_count = 0;
  std::uint64_t draw_key = 0;
  double mean_frac = 0.0;  // kPerNodeMean only
};

/// Immutable per-graph facts (TaskGraph::total_wcet_cycles() re-sums
/// the node list on every call, so the per-step status snapshot reads
/// the value from here instead).
struct GraphStatic {
  double period_s = 0.0;
  double deadline_s = 0.0;
  double total_wc_cycles = 0.0;
  std::vector<NodeStatic> nodes;
};

inline double draw_actual(const SimConfig& cfg, const NodeStatic& ns,
                          std::uint32_t instance) {
  const std::uint64_t inst_key =
      util::Rng::hash_combine(ns.draw_key, 0xabcd0000ULL + instance);
  if (cfg.ac_model == AcModel::kIid) {
    util::Rng rng(inst_key);
    return ns.wc * rng.uniform(cfg.ac_lo_frac, cfg.ac_hi_frac);
  }
  // Persistent per-node mean (precomputed: instance-independent) plus
  // per-instance jitter.
  util::Rng jitter_rng(inst_key);
  const double frac =
      std::clamp(ns.mean_frac + jitter_rng.uniform(-cfg.ac_jitter,
                                                   cfg.ac_jitter),
                 cfg.ac_lo_frac, cfg.ac_hi_frac);
  return ns.wc * frac;
}

/// The scheduling loop's working set, owned by the Simulator and reused
/// across steps and runs. Buffers are cleared (size 0) or overwritten
/// in full each step, never reallocated in steady state — the zero-
/// alloc property SimResult::perf.scratch_grows tracks. Reuse is an
/// exact transformation: every element written this step is written
/// before it is read, so the values never depend on what a previous
/// step (or run) left behind.
///
/// The event engine additionally maintains `edf`, `statuses` and
/// `expiry` persistently across steps (insert/erase at releases and
/// completions instead of a per-step rebuild); the tick engine keeps
/// rebuilding `edf` and `statuses` from scratch each step and never
/// touches the others.
struct Scratch {
  std::vector<GraphStatic> statics;  // filled once, in the ctor
  std::vector<InstanceRt> inst;
  std::vector<std::uint32_t> released_count;
  std::vector<ArrivalRt> arrivals;
  std::vector<dvs::GraphStatus> statuses;
  std::vector<int> edf;
  std::vector<ScoredCandidate> candidates;
  EventQueue queue;
  std::vector<WinSlice> win_slices;
  /// Event engine: graphs released in the current event batch, each
  /// once. EDF/status maintenance replays after the batch so the list
  /// keys stay consistent when several graphs release at one instant.
  std::vector<int> released_batch;
  /// Event engine: complete-but-unexpired instances as (abs deadline,
  /// graph), ascending — the watch that zeroes cc_wc_cycles the moment
  /// t passes the deadline, reproducing the rebuilt snapshot's
  /// "expired" rule without an O(graphs) sweep per step.
  std::vector<std::pair<double, int>> expiry;
  /// SimConfig::check_incremental_state: the from-scratch EDF rebuild
  /// the maintained order is compared against.
  std::vector<int> edf_check;
};

/// Resets the reused working set without releasing capacity, exactly
/// as the PR 5 run() prologue did: instances return to the
/// pre-first-release state (an empty node list counts as complete()),
/// each graph's node buffer keeps its allocation from earlier releases
/// and runs, and the static status fields are written once so the
/// per-step snapshot touches only the dynamic four.
inline void reset_run_state(Scratch& s, std::size_t n) {
  if (s.inst.size() != n) {
    s.inst.resize(n);
  }
  for (auto& ir : s.inst) {
    ir.number = 0;
    ir.release_s = 0.0;
    ir.deadline_s = 0.0;
    ir.nodes.clear();
    ir.ready.clear();
    ir.done_count = 0;
    ir.cc_wc = 0.0;
    ir.remaining_wc = 0.0;
  }
  s.released_count.assign(n, 0);
  if (s.arrivals.size() != n) {
    s.arrivals.resize(n);
  }
  s.statuses.resize(n);
  for (std::size_t g = 0; g < n; ++g) {
    auto& st = s.statuses[g];
    st.graph = static_cast<int>(g);
    st.period_s = s.statics[g].period_s;
    st.wc_total_cycles = s.statics[g].total_wc_cycles;
  }
}

/// Builds every graph's arrival stream and precomputes its first
/// release (streams past the horizon close to kInf and are never drawn
/// from again) — the exact PR 5 initialization, shared so both engines
/// see identical release sequences (CRN across engines too).
inline void init_arrivals(Scratch& s, const SimConfig& cfg,
                          int n_graphs) {
  for (int g = 0; g < n_graphs; ++g) {
    auto& ar = s.arrivals[static_cast<std::size_t>(g)];
    ar.process = arrival::make(cfg.arrival,
                               s.statics[static_cast<std::size_t>(g)].period_s);
    ar.rng = util::Rng(util::derive_seed(
        cfg.seed, {0x41525256ULL /*'ARRV'*/, static_cast<std::uint64_t>(g)}));
    ar.prev = -1.0;
    const double first = ar.process->next_release(ar.prev, ar.rng);
    ar.next = first < cfg.horizon_s - kEps ? first : kInf;
  }
}

/// Earliest upcoming release across all graphs. A graph's `next` only
/// changes when it releases, so callers refresh the cached minimum once
/// per release batch instead of rescanning at every decision point.
inline double min_next_release(const Scratch& s) {
  double best = kInf;
  for (const auto& ar : s.arrivals) {
    best = std::min(best, ar.next);
  }
  return best;
}

/// Releases graph g's next instance at time arrivals[g].next and
/// advances the stream — the PR 5 release body, shared verbatim:
/// single-buffered supersede counts a deadline miss, node actuals are
/// drawn from the stateless per-(instance, node) keys, and the ready
/// list starts as the no-predecessor ids in ascending order.
inline void release_instance(Scratch& s, const SimConfig& cfg,
                             int g, SimResult& res, bool count_perf) {
  auto& ir = s.inst[static_cast<std::size_t>(g)];
  auto& ar = s.arrivals[static_cast<std::size_t>(g)];
  const auto& gs = s.statics[static_cast<std::size_t>(g)];
  if (s.released_count[static_cast<std::size_t>(g)] > 0 && !ir.complete()) {
    ++res.deadline_misses;  // previous instance overran into this release
  }
  ir.number = s.released_count[static_cast<std::size_t>(g)];
  ir.release_s = ar.next;
  ir.deadline_s = ir.release_s + gs.deadline_s;
  ar.prev = ar.next;
  if (ar.next != kInf) {
    const double upcoming = ar.process->next_release(ar.prev, ar.rng);
    ar.next = upcoming < cfg.horizon_s - kEps ? upcoming : kInf;
  }
  const std::size_t n_nodes = gs.nodes.size();
  if (ir.nodes.size() != n_nodes) {
    if (count_perf && ir.nodes.capacity() < n_nodes) {
      ++res.perf.scratch_grows;
    }
    ir.nodes.resize(n_nodes);
  }
  ir.done_count = 0;
  ir.ready.clear();
  for (tg::NodeId id = 0; id < n_nodes; ++id) {
    const auto& ns = gs.nodes[id];
    auto& nr = ir.nodes[id];
    nr.wc = ns.wc;
    nr.ac = draw_actual(cfg, ns, ir.number);
    nr.remaining_ac = nr.ac;
    nr.pending_preds = ns.pred_count;
    nr.done = false;
    if (ns.pred_count == 0) {
      ir.ready.push_back(id);
    }
  }
  // Σ wc over the release loop is the same node-order fold
  // total_wcet_cycles() performs, precomputed in the constructor.
  ir.cc_wc = gs.total_wc_cycles;
  ir.remaining_wc = gs.total_wc_cycles;
  ++s.released_count[static_cast<std::size_t>(g)];
  ++res.instances_released;
  if (cfg.trace_log != nullptr) {
    // Sim-time release marker, one per instance on the graph's track.
    // The fixed name is what the trace-based arrival-rate diagnostic
    // counts (tests/test_arrival.cpp).
    char args[64];
    std::snprintf(args, sizeof(args), "{\"graph\": %d, \"instance\": %llu}",
                  g, static_cast<unsigned long long>(ir.number));
    cfg.trace_log->instant("release", obs::kSimPid, g, ir.release_s * 1e6,
                           args);
  }
}

}  // namespace bas::sim::detail
