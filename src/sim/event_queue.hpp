#pragma once
// Deterministic discrete-event queue — the spine of the event-driven
// simulator core (Engine::kEvent).
//
// The queue orders pending events by (time, kind, actor), a strict
// total order: two events never tie, so the pop sequence is unique and
// independent of insertion order and of how the heap happened to be
// laid out. That invariance is what keeps event-engine runs
// bit-reproducible for any thread count under the campaign runner (the
// same property util::insertion_sort documents for the scheduling
// sorts). The shape follows gacspp's CScheduleable priority-queue
// engine; the kinds are this simulator's taxonomy:
//
//   kCompletion  a running node finishes under the current speed. The
//                uniprocessor has at most one node in flight, so the
//                engine keeps the pending completion in a one-element
//                "running slice" register and compares it against
//                top() instead of paying heap traffic per slice; the
//                kind exists so the ordering contract (completions
//                dispatch before a simultaneous release) is explicit
//                and testable.
//   kRelease     a graph's next instance arrives (actor = graph id);
//                re-armed from the graph's ArrivalProcess on pop.
//   kBatteryObs  a battery-observation point: the open merge window
//                must be flushed through the kernel (actor unused).
//   kHorizon     fixed-horizon (drain = false) end of releases.
//
// DVS decision points are not queued: the paper re-selects the
// frequency exactly at releases and completions, so every dispatch of
// those kinds *is* a DVS point; the hi->lo switch of a realized
// two-point mix is an intra-slice boundary handled by the slice loop.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bas::sim {

enum class EventKind : std::uint8_t {
  kCompletion = 0,
  kRelease = 1,
  kBatteryObs = 2,
  kHorizon = 3,
};

inline std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCompletion: return "completion";
    case EventKind::kRelease: return "release";
    case EventKind::kBatteryObs: return "battery-obs";
    case EventKind::kHorizon: return "horizon";
  }
  return "?";
}

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kRelease;
  /// Graph id for releases/completions; unused (-1) otherwise.
  int actor = -1;
};

/// The queue's strict total order: time, then kind, then actor. Equal
/// (time, kind, actor) triples cannot occur — each (kind, actor) pair
/// has at most one pending event.
inline bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  return a.actor < b.actor;
}

/// Binary min-heap over event_before on a reused vector: push/pop are
/// O(log n) with no allocation once capacity is warm (the event
/// engine's zero-alloc property covers the queue too).
class EventQueue {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  std::size_t capacity() const noexcept { return heap_.capacity(); }
  void clear() noexcept { heap_.clear(); }

  const Event& top() const { return heap_.front(); }

  void push(const Event& e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!event_before(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  Event pop() {
    Event out = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t best = i;
      if (l < n && event_before(heap_[l], heap_[best])) {
        best = l;
      }
      if (r < n && event_before(heap_[r], heap_[best])) {
        best = r;
      }
      if (best == i) {
        break;
      }
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
    return out;
  }

 private:
  std::vector<Event> heap_;
};

}  // namespace bas::sim
