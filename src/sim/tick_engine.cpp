// The PR 5 decision-stepping inner loop (Engine::kTick), unchanged:
// scan the arrival streams for due releases at the top of every step,
// snapshot statuses, re-select the frequency, score the ready list,
// run the chosen node until completion or the next release, and draw
// the battery once per executed slice. Kept selectable for A/B runs
// against the event engine; its observable behaviour is bit-frozen by
// the tick golden tests (tests/golden/*_tick.csv).

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dvs/realizer.hpp"
#include "sched/feasibility.hpp"
#include "sim/engine_internal.hpp"
#include "util/sort.hpp"

namespace bas::sim {

using namespace detail;

SimResult Simulator::run_tick(bat::Battery* battery) {
  scheme_.reset();
  if (battery != nullptr) {
    battery->reset();
  }

  SimResult res;
  res.battery_attached = battery != nullptr;
  const bool count_perf = config_.record_perf_counters;
  const int n_graphs = static_cast<int>(set_.size());
  const std::size_t n = set_.size();

  // Phase profiler (no-op shell unless BAS_PROFILE compiled it in) and
  // optional trace sink — instrumentation only, reading clocks and
  // writing res.perf.phases / the log, so the tick engine's bit-frozen
  // trajectory is untouched.
  obs::TraceLog* const tlog = config_.trace_log;
  obs::PhaseClock prof(
      config_.record_phase_profile ? &res.perf.phases : nullptr, tlog);

  Scratch& s = *scratch_;
  reset_run_state(s, n);
  if (config_.record_trace) {
    res.trace.reserve(1024);
  }
  if (config_.record_profile) {
    res.profile.reserve(1024);
  }

  const ByGraph inst(s.inst);
  const ByGraph arrivals(s.arrivals);
  const ByGraph statuses(s.statuses);
  auto graph_at = [&](int g) -> decltype(auto) {
    return set_.graph(static_cast<std::size_t>(g));
  };
  auto scratch_caps = [&s] {
    std::size_t caps = s.edf.capacity() + s.candidates.capacity() +
                       s.statuses.capacity();
    for (const auto& ir : s.inst) {
      caps += ir.ready.capacity();
    }
    return caps;
  };

  double t = 0.0;
  bool battery_dead = false;
  double last_busy_current = kInf;

  init_arrivals(s, config_, n_graphs);
  double next_release_s = min_next_release(s);

  // Draws `current_a` for `dt`, updating the battery, profile and
  // accounting. Returns the sustained duration (== dt unless the
  // battery died inside the interval).
  auto consume = [&](double current_a, double dt) -> double {
    double sustained = dt;
    if (battery != nullptr && !battery_dead) {
      sustained = battery->draw(current_a, dt);
      if (count_perf) {
        ++res.perf.battery_draws;
      }
      if (battery->empty()) {
        battery_dead = true;
        res.battery_died = true;
      }
    }
    if (config_.record_profile && sustained > 0.0) {
      res.profile.add(sustained, current_a);
    }
    res.charge_c += current_a * sustained;
    return sustained;
  };

  while (true) {
    const std::size_t caps_before = count_perf ? scratch_caps() : 0;
    if (count_perf) {
      ++res.perf.steps;
    }
    prof.mark();

    // ---- 1. process due releases ------------------------------------
    if (next_release_s <= t + kEps) {
      for (int g = 0; g < n_graphs; ++g) {
        while (arrivals[g].next <= t + kEps) {
          release_instance(s, config_, g, res, count_perf);
        }
      }
      next_release_s = min_next_release(s);
    }
    prof.lap(obs::Phase::kQueueOps);

    if (!config_.drain && t >= config_.horizon_s - kEps) {
      break;
    }
    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    // ---- 2. status snapshot (static fields prefilled above) ----------
    for (int g = 0; g < n_graphs; ++g) {
      const auto& ir = inst[g];
      auto& st = statuses[g];
      st.abs_deadline_s = ir.deadline_s;
      st.complete = ir.complete();
      // Past its window with no successor instance released (drain tail):
      // the graph no longer claims bandwidth.
      const bool expired = st.complete && t >= ir.deadline_s - kEps;
      st.cc_wc_cycles = expired ? 0.0 : ir.cc_wc;
      st.remaining_wc_cycles = ir.remaining_wc;
    }

    // ---- 3. EDF order over incomplete instances ----------------------
    s.edf.clear();
    for (int g = 0; g < n_graphs; ++g) {
      if (!inst[g].complete()) {
        s.edf.push_back(g);
      }
    }
    util::insertion_sort(s.edf, [&](int a, int b) {
      const double da = inst[a].deadline_s;
      const double db = inst[b].deadline_s;
      return da != db ? da < db : a < b;
    });
    prof.lap(obs::Phase::kBookkeeping);

    if (s.edf.empty()) {
      double t_next = next_release_s;
      if (t_next == kInf) {
        if (config_.drain || t >= config_.horizon_s - kEps) {
          break;  // drained: nothing in flight, nothing to release
        }
        // Fixed-horizon run: idle out the tail (idle current still
        // drains the battery).
        t_next = config_.horizon_s;
      }
      const double dt = t_next - t;
      if (dt > 0.0) {
        if (count_perf) {
          res.perf.idle_time_jumped_s += dt;
        }
        const double sustained = consume(proc_.idle_current_a(), dt);
        t += sustained;
        if (battery_dead && config_.stop_when_battery_empty) {
          prof.lap(obs::Phase::kBatteryAdvance);
          break;
        }
      }
      t = t_next;
      if (count_perf && scratch_caps() != caps_before) {
        ++res.perf.scratch_grows;
      }
      prof.lap(obs::Phase::kBatteryAdvance);
      continue;
    }

    // ---- 4. frequency selection (the scheme's DVS half) --------------
    const double fref =
        std::clamp(scheme_.dvs->select(s.statuses, t), 0.0, proc_.fmax_hz());
    const auto plan = dvs::realize(proc_, fref);
    prof.lap(obs::Phase::kDvsSelect);

    // ---- 5. build the ready list (the scheme's ordering half) --------
    s.candidates.clear();
    const std::size_t scan_depth =
        scheme_.scope == core::ReadyScope::kAllReleased ? s.edf.size() : 1;
    for (std::size_t pos = 0; pos < scan_depth; ++pos) {
      const int g = s.edf[pos];
      const auto& ir = inst[g];
      // `ready` holds exactly the !done, no-pending-preds ids in
      // ascending order — the same nodes the full id-order scan of
      // ir.nodes used to select, without touching the rest.
      for (const tg::NodeId id : ir.ready) {
        const auto& nr = ir.nodes[id];
        auto& sc = s.candidates.emplace_back();
        auto& c = sc.cand;
        c.graph = g;
        c.node = id;
        c.wc_cycles = std::max(nr.wc - nr.executed(), kCycleEps);
        c.actual_cycles = nr.remaining_ac;
        const double full_estimate = scheme_.estimator->estimate(
            g, id, nr.wc, nr.ac);
        c.estimate_cycles =
            std::max(full_estimate - nr.executed(), kCycleEps);
        c.graph_abs_deadline_s = ir.deadline_s;
        c.graph_remaining_wc_cycles = ir.remaining_wc;
        c.edf_position = static_cast<int>(pos);
        sc.score = 0.0;
      }
    }
    if (count_perf) {
      res.perf.candidates_scored += s.candidates.size();
    }
    prof.lap(obs::Phase::kCandidateBuild);
    for (auto& sc : s.candidates) {
      sc.score = scheme_.priority->score(sc.cand, t);
    }
    prof.lap(obs::Phase::kEstimateScore);
    util::insertion_sort(s.candidates,
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) {
                       return a.score < b.score;
                     }
                     if (a.cand.graph != b.cand.graph) {
                       return a.cand.graph < b.cand.graph;
                     }
                     return a.cand.node < b.cand.node;
                   });

    const ScoredCandidate* chosen = nullptr;
    for (const auto& sc : s.candidates) {
      if (sc.cand.edf_position == 0 ||
          sched::feasibility_check(s.statuses, s.edf, sc.cand.edf_position,
                                   sc.cand.wc_cycles,
                                   plan.effective_freq_hz, t)) {
        chosen = &sc;
        break;
      }
    }
    // The most-imminent graph always offers an unguarded candidate.
    if (chosen == nullptr) {
      throw std::logic_error("Simulator: no feasible candidate (bug)");
    }
    prof.lap(obs::Phase::kSelect);

    // ---- 6. run the chosen node until completion or next release -----
    const int g = chosen->cand.graph;
    auto& ir = inst[g];
    auto& nr = ir.nodes[chosen->cand.node];

    const double full_duration = nr.remaining_ac / plan.effective_freq_hz;
    const double t_release = next_release_s;
    const double run_until = std::min(t + full_duration, t_release);

    // The two-point mix is laid out over the node's intended execution
    // window, higher point first (Guideline 1 within the slot). At most
    // two phases ever exist, so a fixed pair replaces the old vector.
    const double hi_end = t + plan.hi_fraction * full_duration;
    Phase phase_buf[2];
    std::size_t n_phases = 0;
    if (run_until <= hi_end + kEps || plan.single_level()) {
      phase_buf[n_phases++] = {plan.hi_fraction > 0.0 ? plan.hi : plan.lo, t,
                               run_until};
    } else {
      phase_buf[n_phases++] = {plan.hi, t, hi_end};
      phase_buf[n_phases++] = {plan.lo, hi_end, run_until};
    }

    double executed_cycles = 0.0;
    double t_now = t;
    for (std::size_t p = 0; p < n_phases; ++p) {
      const auto& ph = phase_buf[p];
      const double dt = ph.end - ph.start;
      if (dt <= 0.0) {
        continue;
      }
      const double current = proc_.battery_current_a(ph.op);
      const double sustained = consume(current, dt);
      const double cycles = ph.op.freq_hz * sustained;
      executed_cycles += cycles;
      res.energy_j += proc_.core_power_w(ph.op) * sustained;
      res.busy_s += sustained;
      if (config_.record_trace && sustained > 0.0) {
        res.trace.push_back(ExecSlice{g, ir.number, chosen->cand.node,
                                      t_now, t_now + sustained,
                                      ph.op.freq_hz, current});
      }
      if (tlog != nullptr && sustained > 0.0) {
        char name[48];
        std::snprintf(name, sizeof(name), "g%d/n%u i%llu", g,
                      static_cast<unsigned>(chosen->cand.node),
                      static_cast<unsigned long long>(ir.number));
        tlog->span(name, obs::kSimPid, g, t_now * 1e6, sustained * 1e6);
      }
      if (current > last_busy_current + 1e-12) {
        ++res.frequency_increases;
      }
      last_busy_current = current;
      t_now += sustained;
      if (battery_dead && config_.stop_when_battery_empty) {
        break;
      }
    }
    t = t_now;
    prof.lap(obs::Phase::kBatteryAdvance);

    // ---- 7. bookkeeping ----------------------------------------------
    executed_cycles = std::min(executed_cycles, nr.remaining_ac);
    nr.remaining_ac -= executed_cycles;
    ir.remaining_wc = std::max(0.0, ir.remaining_wc - executed_cycles);

    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    if (nr.remaining_ac <= kCycleEps) {
      nr.remaining_ac = 0.0;
      nr.done = true;
      ++ir.done_count;
      ++res.nodes_executed;
      // Completion adjustments (paper Algorithm 1): the instance's WCi
      // swaps this node's wc for its actual; remaining worst case drops
      // by the wc that was never going to run.
      ir.cc_wc += nr.ac - nr.wc;
      ir.remaining_wc = std::max(0.0, ir.remaining_wc - (nr.wc - nr.ac));
      auto& rd = ir.ready;
      rd.erase(std::lower_bound(rd.begin(), rd.end(), chosen->cand.node));
      const auto& graph = graph_at(g);
      for (tg::NodeId succ : graph.successors(chosen->cand.node)) {
        if (--ir.nodes[succ].pending_preds == 0) {
          rd.insert(std::lower_bound(rd.begin(), rd.end(), succ), succ);
        }
      }
      scheme_.estimator->observe(g, chosen->cand.node, nr.ac);
      if (ir.complete()) {
        ++res.instances_completed;
        if (t > ir.deadline_s + 1e-6) {
          ++res.deadline_misses;
        }
        if (tlog != nullptr) {
          char args[64];
          std::snprintf(args, sizeof(args),
                        "{\"graph\": %d, \"instance\": %llu}", g,
                        static_cast<unsigned long long>(ir.number));
          tlog->instant("complete", obs::kSimPid, g, t * 1e6, args);
        }
      }
    } else if (run_until >= t_release - kEps) {
      ++res.preemptions;
    }

    if (count_perf && scratch_caps() != caps_before) {
      ++res.perf.scratch_grows;
    }
    prof.lap(obs::Phase::kBookkeeping);
  }

  res.end_time_s = t;
  if (battery != nullptr) {
    res.battery_lifetime_s = battery->time_alive_s();
    res.battery_delivered_mah = battery->charge_delivered_mah();
    if (count_perf) {
      res.perf.kernel = battery->kernel_counters();
    }
  }
  return res;
}

}  // namespace bas::sim
