#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "dvs/realizer.hpp"
#include "sched/feasibility.hpp"
#include "util/rng.hpp"
#include "util/sort.hpp"

namespace bas::sim {

namespace {

constexpr double kEps = 1e-9;
constexpr double kCycleEps = 0.5;  // cycles; completion snap threshold
constexpr double kInf = std::numeric_limits<double>::infinity();

struct NodeRt {
  double wc = 0.0;
  double ac = 0.0;
  double remaining_ac = 0.0;
  int pending_preds = 0;
  bool done = false;

  double executed() const { return ac - remaining_ac; }
};

struct InstanceRt {
  std::uint32_t number = 0;
  double release_s = 0.0;
  double deadline_s = 0.0;
  std::vector<NodeRt> nodes;
  /// Ids with pending_preds == 0 and !done, ascending — incrementally
  /// maintained so the ready-list scan touches only ready nodes. The
  /// ascending order reproduces exactly the id-order walk the scan
  /// previously did over all nodes (same candidates, same sequence —
  /// which the Random priority's draw stream depends on).
  std::vector<tg::NodeId> ready;
  std::size_t done_count = 0;
  /// Paper's WCi: Σ ac(done) + Σ wc(pending).
  double cc_wc = 0.0;
  /// Σ over incomplete nodes of (wc − executed cycles).
  double remaining_wc = 0.0;

  bool complete() const { return done_count == nodes.size(); }
};

/// One graph's release stream. Each graph gets a fresh ArrivalProcess
/// bound to its period and a private Rng derived from (config seed,
/// arrival tag, graph index) — a pure function of the coordinates, so
/// arrivals are identical across schemes (common random numbers) and
/// for any thread count under the campaign runner. `next` holds the
/// one precomputed upcoming release; once it reaches the horizon the
/// stream is closed (kInf) and never drawn from again, keeping the
/// draw sequence independent of how the run ends.
struct ArrivalRt {
  std::unique_ptr<arrival::ArrivalProcess> process;
  util::Rng rng{0};
  double prev = -1.0;
  double next = kInf;
};

struct ScoredCandidate {
  sched::Candidate cand;
  double score = 0.0;
};

/// One constant-operating-point stretch of a chosen node's slot.
struct Phase {
  dvs::OperatingPoint op;
  double start, end;
};

/// Int-indexed view over per-graph state: the simulator addresses
/// graphs with the int ids GraphStatus uses, while the backing storage
/// is a std::vector. The one size_t cast lives here instead of at
/// every subscript.
template <typename T>
class ByGraph {
 public:
  explicit ByGraph(std::vector<T>& v) : v_(&v) {}
  T& operator[](int g) const { return (*v_)[static_cast<std::size_t>(g)]; }

 private:
  std::vector<T>* v_;
};

/// Immutable per-node facts hoisted out of the release loop: the wcet,
/// predecessor count, the draw_actual hash key (a pure function of
/// (seed, graph, node)) and — under kPerNodeMean — the node's
/// persistent mean fraction, which the original formula re-derived
/// from the same key at every release.
struct NodeStatic {
  double wc = 0.0;
  int pred_count = 0;
  std::uint64_t draw_key = 0;
  double mean_frac = 0.0;  // kPerNodeMean only
};

/// Immutable per-graph facts (TaskGraph::total_wcet_cycles() re-sums
/// the node list on every call, so the per-step status snapshot reads
/// the value from here instead).
struct GraphStatic {
  double period_s = 0.0;
  double deadline_s = 0.0;
  double total_wc_cycles = 0.0;
  std::vector<NodeStatic> nodes;
};

double draw_actual(const SimConfig& cfg, const NodeStatic& ns,
                   std::uint32_t instance) {
  const std::uint64_t inst_key =
      util::Rng::hash_combine(ns.draw_key, 0xabcd0000ULL + instance);
  if (cfg.ac_model == AcModel::kIid) {
    util::Rng rng(inst_key);
    return ns.wc * rng.uniform(cfg.ac_lo_frac, cfg.ac_hi_frac);
  }
  // Persistent per-node mean (precomputed: instance-independent) plus
  // per-instance jitter.
  util::Rng jitter_rng(inst_key);
  const double frac =
      std::clamp(ns.mean_frac + jitter_rng.uniform(-cfg.ac_jitter,
                                                   cfg.ac_jitter),
                 cfg.ac_lo_frac, cfg.ac_hi_frac);
  return ns.wc * frac;
}

}  // namespace

/// The scheduling loop's working set, owned by the Simulator and reused
/// across steps and runs. Buffers are cleared (size 0) or overwritten
/// in full each step, never reallocated in steady state — the zero-
/// alloc property SimResult::perf.scratch_grows tracks. Reuse is an
/// exact transformation: every element written this step is written
/// before it is read, so the values never depend on what a previous
/// step (or run) left behind.
struct Simulator::Scratch {
  std::vector<GraphStatic> statics;  // filled once, in the constructor
  std::vector<InstanceRt> inst;
  std::vector<std::uint32_t> released_count;
  std::vector<ArrivalRt> arrivals;
  std::vector<dvs::GraphStatus> statuses;
  std::vector<int> edf;
  std::vector<ScoredCandidate> candidates;
};

Simulator::Simulator(const tg::TaskGraphSet& set, const dvs::Processor& proc,
                     core::Scheme& scheme, SimConfig config)
    : set_(set),
      proc_(proc),
      scheme_(scheme),
      config_(config),
      scratch_(std::make_unique<Scratch>()) {
  set_.validate();
  if (!(config_.horizon_s > 0.0)) {
    throw std::invalid_argument("Simulator: horizon must be positive");
  }
  if (!(config_.ac_lo_frac > 0.0) || config_.ac_hi_frac > 1.0 ||
      config_.ac_hi_frac < config_.ac_lo_frac) {
    throw std::invalid_argument("Simulator: bad actual-computation range");
  }
  if (!scheme_.dvs || !scheme_.priority || !scheme_.estimator) {
    throw std::invalid_argument("Simulator: scheme has null components");
  }
  // Fail on a bad arrival model/params at construction, not mid-run
  // inside a worker thread.
  arrival::validate(config_.arrival);

  // Gather the immutable per-graph/per-node facts once. The values are
  // computed with exactly the expressions the scheduling loop used to
  // evaluate in place (same folds, same hash chains), so reading them
  // from here is bit-identical to re-deriving them.
  auto& statics = scratch_->statics;
  statics.resize(set_.size());
  for (std::size_t gi = 0; gi < set_.size(); ++gi) {
    const auto& graph = set_.graph(gi);
    auto& gs = statics[gi];
    gs.period_s = graph.period();
    gs.deadline_s = graph.deadline();
    gs.total_wc_cycles = graph.total_wcet_cycles();
    gs.nodes.resize(graph.node_count());
    for (tg::NodeId id = 0; id < graph.node_count(); ++id) {
      auto& ns = gs.nodes[id];
      ns.wc = graph.node(id).wcet_cycles;
      ns.pred_count = static_cast<int>(graph.predecessors(id).size());
      std::uint64_t key =
          util::Rng::hash_combine(config_.seed, 0x7a5c0ffeULL);
      key = util::Rng::hash_combine(key, static_cast<std::uint64_t>(gi));
      key = util::Rng::hash_combine(key, id);
      ns.draw_key = key;
      if (config_.ac_model == AcModel::kPerNodeMean) {
        util::Rng mean_rng(key);
        ns.mean_frac =
            mean_rng.uniform(config_.ac_lo_frac, config_.ac_hi_frac);
      }
    }
  }
}

Simulator::~Simulator() = default;

SimResult Simulator::run(bat::Battery* battery) {
  scheme_.reset();
  if (battery != nullptr) {
    battery->reset();
  }

  SimResult res;
  res.battery_attached = battery != nullptr;
  const bool count_perf = config_.record_perf_counters;
  const int n_graphs = static_cast<int>(set_.size());
  const std::size_t n = set_.size();

  // Reset the reused working set without releasing capacity. Instances
  // return to the pre-first-release state (an empty node list counts as
  // complete()), while each graph's node buffer keeps its allocation
  // from earlier releases and runs.
  Scratch& s = *scratch_;
  if (s.inst.size() != n) {
    s.inst.resize(n);
  }
  for (auto& ir : s.inst) {
    ir.number = 0;
    ir.release_s = 0.0;
    ir.deadline_s = 0.0;
    ir.nodes.clear();
    ir.ready.clear();
    ir.done_count = 0;
    ir.cc_wc = 0.0;
    ir.remaining_wc = 0.0;
  }
  s.released_count.assign(n, 0);
  if (s.arrivals.size() != n) {
    s.arrivals.resize(n);
  }
  s.statuses.resize(n);
  // The static status fields never change within a run; write them once
  // so the per-step snapshot touches only the dynamic four.
  for (int g = 0; g < n_graphs; ++g) {
    auto& st = s.statuses[static_cast<std::size_t>(g)];
    st.graph = g;
    st.period_s = s.statics[static_cast<std::size_t>(g)].period_s;
    st.wc_total_cycles = s.statics[static_cast<std::size_t>(g)].total_wc_cycles;
  }
  if (config_.record_trace) {
    res.trace.reserve(1024);
  }
  if (config_.record_profile) {
    res.profile.reserve(1024);
  }

  const ByGraph statics(s.statics);
  const ByGraph inst(s.inst);
  const ByGraph released_count(s.released_count);
  const ByGraph arrivals(s.arrivals);
  const ByGraph statuses(s.statuses);
  auto graph_at = [&](int g) -> decltype(auto) {
    return set_.graph(static_cast<std::size_t>(g));
  };
  auto scratch_caps = [&s] {
    std::size_t caps = s.edf.capacity() + s.candidates.capacity() +
                       s.statuses.capacity();
    for (const auto& ir : s.inst) {
      caps += ir.ready.capacity();
    }
    return caps;
  };

  double t = 0.0;
  bool battery_dead = false;
  double last_busy_current = kInf;

  for (int g = 0; g < n_graphs; ++g) {
    auto& ar = arrivals[g];
    ar.process = arrival::make(config_.arrival, statics[g].period_s);
    ar.rng = util::Rng(util::derive_seed(
        config_.seed, {0x41525256ULL /*'ARRV'*/,
                       static_cast<std::uint64_t>(g)}));
    ar.prev = -1.0;
    const double first = ar.process->next_release(ar.prev, ar.rng);
    ar.next = first < config_.horizon_s - kEps ? first : kInf;
  }

  // Earliest upcoming release across all graphs, maintained at release
  // time: a graph's `next` only changes when it releases, so the cached
  // minimum is refreshed once per release batch instead of rescanned at
  // every decision point.
  double next_release_s = kInf;
  auto recompute_next_release = [&] {
    double best = kInf;
    for (int g = 0; g < n_graphs; ++g) {
      best = std::min(best, arrivals[g].next);
    }
    next_release_s = best;
  };
  recompute_next_release();

  auto release_instance = [&](int g) {
    auto& ir = inst[g];
    auto& ar = arrivals[g];
    const auto& gs = statics[g];
    if (released_count[g] > 0 && !ir.complete()) {
      ++res.deadline_misses;  // previous instance overran into this release
    }
    ir.number = released_count[g];
    ir.release_s = ar.next;
    ir.deadline_s = ir.release_s + gs.deadline_s;
    ar.prev = ar.next;
    if (ar.next != kInf) {
      const double upcoming = ar.process->next_release(ar.prev, ar.rng);
      ar.next = upcoming < config_.horizon_s - kEps ? upcoming : kInf;
    }
    const std::size_t n_nodes = gs.nodes.size();
    if (ir.nodes.size() != n_nodes) {
      if (count_perf && ir.nodes.capacity() < n_nodes) {
        ++res.perf.scratch_grows;
      }
      ir.nodes.resize(n_nodes);
    }
    ir.done_count = 0;
    ir.ready.clear();
    for (tg::NodeId id = 0; id < n_nodes; ++id) {
      const auto& ns = gs.nodes[id];
      auto& nr = ir.nodes[id];
      nr.wc = ns.wc;
      nr.ac = draw_actual(config_, ns, ir.number);
      nr.remaining_ac = nr.ac;
      nr.pending_preds = ns.pred_count;
      nr.done = false;
      if (ns.pred_count == 0) {
        ir.ready.push_back(id);
      }
    }
    // Σ wc over the release loop is the same node-order fold
    // total_wcet_cycles() performs, precomputed in the constructor.
    ir.cc_wc = gs.total_wc_cycles;
    ir.remaining_wc = gs.total_wc_cycles;
    ++released_count[g];
    ++res.instances_released;
  };

  // Draws `current_a` for `dt`, updating the battery, profile and
  // accounting. Returns the sustained duration (== dt unless the
  // battery died inside the interval).
  auto consume = [&](double current_a, double dt) -> double {
    double sustained = dt;
    if (battery != nullptr && !battery_dead) {
      sustained = battery->draw(current_a, dt);
      if (count_perf) {
        ++res.perf.battery_draws;
      }
      if (battery->empty()) {
        battery_dead = true;
        res.battery_died = true;
      }
    }
    if (config_.record_profile && sustained > 0.0) {
      res.profile.add(sustained, current_a);
    }
    res.charge_c += current_a * sustained;
    return sustained;
  };

  while (true) {
    const std::size_t caps_before = count_perf ? scratch_caps() : 0;
    if (count_perf) {
      ++res.perf.steps;
    }

    // ---- 1. process due releases ------------------------------------
    if (next_release_s <= t + kEps) {
      for (int g = 0; g < n_graphs; ++g) {
        while (arrivals[g].next <= t + kEps) {
          release_instance(g);
        }
      }
      recompute_next_release();
    }

    if (!config_.drain && t >= config_.horizon_s - kEps) {
      break;
    }
    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    // ---- 2. status snapshot (static fields prefilled above) ----------
    for (int g = 0; g < n_graphs; ++g) {
      const auto& ir = inst[g];
      auto& st = statuses[g];
      st.abs_deadline_s = ir.deadline_s;
      st.complete = ir.complete();
      // Past its window with no successor instance released (drain tail):
      // the graph no longer claims bandwidth.
      const bool expired = st.complete && t >= ir.deadline_s - kEps;
      st.cc_wc_cycles = expired ? 0.0 : ir.cc_wc;
      st.remaining_wc_cycles = ir.remaining_wc;
    }

    // ---- 3. EDF order over incomplete instances ----------------------
    s.edf.clear();
    for (int g = 0; g < n_graphs; ++g) {
      if (!inst[g].complete()) {
        s.edf.push_back(g);
      }
    }
    util::insertion_sort(s.edf, [&](int a, int b) {
      const double da = inst[a].deadline_s;
      const double db = inst[b].deadline_s;
      return da != db ? da < db : a < b;
    });

    if (s.edf.empty()) {
      double t_next = next_release_s;
      if (t_next == kInf) {
        if (config_.drain || t >= config_.horizon_s - kEps) {
          break;  // drained: nothing in flight, nothing to release
        }
        // Fixed-horizon run: idle out the tail (idle current still
        // drains the battery).
        t_next = config_.horizon_s;
      }
      const double dt = t_next - t;
      if (dt > 0.0) {
        const double sustained = consume(proc_.idle_current_a(), dt);
        t += sustained;
        if (battery_dead && config_.stop_when_battery_empty) {
          break;
        }
      }
      t = t_next;
      if (count_perf && scratch_caps() != caps_before) {
        ++res.perf.scratch_grows;
      }
      continue;
    }

    // ---- 4. frequency selection (the scheme's DVS half) --------------
    const double fref =
        std::clamp(scheme_.dvs->select(s.statuses, t), 0.0, proc_.fmax_hz());
    const auto plan = dvs::realize(proc_, fref);

    // ---- 5. build the ready list (the scheme's ordering half) --------
    s.candidates.clear();
    const std::size_t scan_depth =
        scheme_.scope == core::ReadyScope::kAllReleased ? s.edf.size() : 1;
    for (std::size_t pos = 0; pos < scan_depth; ++pos) {
      const int g = s.edf[pos];
      const auto& ir = inst[g];
      // `ready` holds exactly the !done, no-pending-preds ids in
      // ascending order — the same nodes the full id-order scan of
      // ir.nodes used to select, without touching the rest.
      for (const tg::NodeId id : ir.ready) {
        const auto& nr = ir.nodes[id];
        auto& sc = s.candidates.emplace_back();
        auto& c = sc.cand;
        c.graph = g;
        c.node = id;
        c.wc_cycles = std::max(nr.wc - nr.executed(), kCycleEps);
        c.actual_cycles = nr.remaining_ac;
        const double full_estimate = scheme_.estimator->estimate(
            g, id, nr.wc, nr.ac);
        c.estimate_cycles =
            std::max(full_estimate - nr.executed(), kCycleEps);
        c.graph_abs_deadline_s = ir.deadline_s;
        c.graph_remaining_wc_cycles = ir.remaining_wc;
        c.edf_position = static_cast<int>(pos);
        sc.score = 0.0;
      }
    }
    if (count_perf) {
      res.perf.candidates_scored += s.candidates.size();
    }
    for (auto& sc : s.candidates) {
      sc.score = scheme_.priority->score(sc.cand, t);
    }
    util::insertion_sort(s.candidates,
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) {
                       return a.score < b.score;
                     }
                     if (a.cand.graph != b.cand.graph) {
                       return a.cand.graph < b.cand.graph;
                     }
                     return a.cand.node < b.cand.node;
                   });

    const ScoredCandidate* chosen = nullptr;
    for (const auto& sc : s.candidates) {
      if (sc.cand.edf_position == 0 ||
          sched::feasibility_check(s.statuses, s.edf, sc.cand.edf_position,
                                   sc.cand.wc_cycles,
                                   plan.effective_freq_hz, t)) {
        chosen = &sc;
        break;
      }
    }
    // The most-imminent graph always offers an unguarded candidate.
    if (chosen == nullptr) {
      throw std::logic_error("Simulator: no feasible candidate (bug)");
    }

    // ---- 6. run the chosen node until completion or next release -----
    const int g = chosen->cand.graph;
    auto& ir = inst[g];
    auto& nr = ir.nodes[chosen->cand.node];

    const double full_duration = nr.remaining_ac / plan.effective_freq_hz;
    const double t_release = next_release_s;
    const double run_until = std::min(t + full_duration, t_release);

    // The two-point mix is laid out over the node's intended execution
    // window, higher point first (Guideline 1 within the slot). At most
    // two phases ever exist, so a fixed pair replaces the old vector.
    const double hi_end = t + plan.hi_fraction * full_duration;
    Phase phase_buf[2];
    std::size_t n_phases = 0;
    if (run_until <= hi_end + kEps || plan.single_level()) {
      phase_buf[n_phases++] = {plan.hi_fraction > 0.0 ? plan.hi : plan.lo, t,
                               run_until};
    } else {
      phase_buf[n_phases++] = {plan.hi, t, hi_end};
      phase_buf[n_phases++] = {plan.lo, hi_end, run_until};
    }

    double executed_cycles = 0.0;
    double t_now = t;
    for (std::size_t p = 0; p < n_phases; ++p) {
      const auto& ph = phase_buf[p];
      const double dt = ph.end - ph.start;
      if (dt <= 0.0) {
        continue;
      }
      const double current = proc_.battery_current_a(ph.op);
      const double sustained = consume(current, dt);
      const double cycles = ph.op.freq_hz * sustained;
      executed_cycles += cycles;
      res.energy_j += proc_.core_power_w(ph.op) * sustained;
      res.busy_s += sustained;
      if (config_.record_trace && sustained > 0.0) {
        res.trace.push_back(ExecSlice{g, ir.number, chosen->cand.node,
                                      t_now, t_now + sustained,
                                      ph.op.freq_hz, current});
      }
      if (current > last_busy_current + 1e-12) {
        ++res.frequency_increases;
      }
      last_busy_current = current;
      t_now += sustained;
      if (battery_dead && config_.stop_when_battery_empty) {
        break;
      }
    }
    t = t_now;

    // ---- 7. bookkeeping ----------------------------------------------
    executed_cycles = std::min(executed_cycles, nr.remaining_ac);
    nr.remaining_ac -= executed_cycles;
    ir.remaining_wc = std::max(0.0, ir.remaining_wc - executed_cycles);

    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    if (nr.remaining_ac <= kCycleEps) {
      nr.remaining_ac = 0.0;
      nr.done = true;
      ++ir.done_count;
      ++res.nodes_executed;
      // Completion adjustments (paper Algorithm 1): the instance's WCi
      // swaps this node's wc for its actual; remaining worst case drops
      // by the wc that was never going to run.
      ir.cc_wc += nr.ac - nr.wc;
      ir.remaining_wc = std::max(0.0, ir.remaining_wc - (nr.wc - nr.ac));
      auto& rd = ir.ready;
      rd.erase(std::lower_bound(rd.begin(), rd.end(), chosen->cand.node));
      const auto& graph = graph_at(g);
      for (tg::NodeId succ : graph.successors(chosen->cand.node)) {
        if (--ir.nodes[succ].pending_preds == 0) {
          rd.insert(std::lower_bound(rd.begin(), rd.end(), succ), succ);
        }
      }
      scheme_.estimator->observe(g, chosen->cand.node, nr.ac);
      if (ir.complete()) {
        ++res.instances_completed;
        if (t > ir.deadline_s + 1e-6) {
          ++res.deadline_misses;
        }
      }
    } else if (run_until >= t_release - kEps) {
      ++res.preemptions;
    }

    if (count_perf && scratch_caps() != caps_before) {
      ++res.perf.scratch_grows;
    }
  }

  res.end_time_s = t;
  if (battery != nullptr) {
    res.battery_lifetime_s = battery->time_alive_s();
    res.battery_delivered_mah = battery->charge_delivered_mah();
  }
  return res;
}

SimResult simulate_scheme(const tg::TaskGraphSet& set,
                          const dvs::Processor& proc, core::SchemeKind kind,
                          const SimConfig& config, bat::Battery* battery) {
  core::Scheme scheme = core::make_scheme(kind, proc.fmax_hz(), config.seed);
  Simulator sim(set, proc, scheme, config);
  return sim.run(battery);
}

}  // namespace bas::sim
