#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "dvs/realizer.hpp"
#include "sched/feasibility.hpp"
#include "util/rng.hpp"

namespace bas::sim {

namespace {

constexpr double kEps = 1e-9;
constexpr double kCycleEps = 0.5;  // cycles; completion snap threshold
constexpr double kInf = std::numeric_limits<double>::infinity();

struct NodeRt {
  double wc = 0.0;
  double ac = 0.0;
  double remaining_ac = 0.0;
  int pending_preds = 0;
  bool done = false;

  double executed() const { return ac - remaining_ac; }
};

struct InstanceRt {
  std::uint32_t number = 0;
  double release_s = 0.0;
  double deadline_s = 0.0;
  std::vector<NodeRt> nodes;
  std::size_t done_count = 0;
  /// Paper's WCi: Σ ac(done) + Σ wc(pending).
  double cc_wc = 0.0;
  /// Σ over incomplete nodes of (wc − executed cycles).
  double remaining_wc = 0.0;

  bool complete() const { return done_count == nodes.size(); }
};

double draw_actual(const SimConfig& cfg, int graph, std::uint32_t instance,
                   tg::NodeId node, double wc) {
  std::uint64_t key = util::Rng::hash_combine(cfg.seed, 0x7a5c0ffeULL);
  key = util::Rng::hash_combine(key, static_cast<std::uint64_t>(graph));
  key = util::Rng::hash_combine(key, node);
  if (cfg.ac_model == AcModel::kIid) {
    key = util::Rng::hash_combine(key, 0xabcd0000ULL + instance);
    util::Rng rng(key);
    return wc * rng.uniform(cfg.ac_lo_frac, cfg.ac_hi_frac);
  }
  // Persistent per-node mean (instance-independent key) plus jitter.
  util::Rng mean_rng(key);
  const double mean = mean_rng.uniform(cfg.ac_lo_frac, cfg.ac_hi_frac);
  util::Rng jitter_rng(
      util::Rng::hash_combine(key, 0xabcd0000ULL + instance));
  const double frac =
      std::clamp(mean + jitter_rng.uniform(-cfg.ac_jitter, cfg.ac_jitter),
                 cfg.ac_lo_frac, cfg.ac_hi_frac);
  return wc * frac;
}

}  // namespace

Simulator::Simulator(const tg::TaskGraphSet& set, const dvs::Processor& proc,
                     core::Scheme& scheme, SimConfig config)
    : set_(set), proc_(proc), scheme_(scheme), config_(config) {
  set_.validate();
  if (!(config_.horizon_s > 0.0)) {
    throw std::invalid_argument("Simulator: horizon must be positive");
  }
  if (!(config_.ac_lo_frac > 0.0) || config_.ac_hi_frac > 1.0 ||
      config_.ac_hi_frac < config_.ac_lo_frac) {
    throw std::invalid_argument("Simulator: bad actual-computation range");
  }
  if (!scheme_.dvs || !scheme_.priority || !scheme_.estimator) {
    throw std::invalid_argument("Simulator: scheme has null components");
  }
  // Fail on a bad arrival model/params at construction, not mid-run
  // inside a worker thread.
  arrival::validate(config_.arrival);
}

SimResult Simulator::run(bat::Battery* battery) {
  scheme_.reset();
  if (battery != nullptr) {
    battery->reset();
  }

  SimResult res;
  res.battery_attached = battery != nullptr;
  const int n_graphs = static_cast<int>(set_.size());
  std::vector<InstanceRt> inst(static_cast<std::size_t>(n_graphs));
  std::vector<std::uint32_t> released_count(
      static_cast<std::size_t>(n_graphs), 0);

  double t = 0.0;
  bool battery_dead = false;
  double last_busy_current = kInf;

  // Per-graph release clocks. Each graph gets a fresh ArrivalProcess
  // bound to its period and a private Rng derived from (config seed,
  // arrival tag, graph index) — a pure function of the coordinates, so
  // arrivals are identical across schemes (common random numbers) and
  // for any thread count under the campaign runner. `next` holds the
  // one precomputed upcoming release; once it reaches the horizon the
  // stream is closed (kInf) and never drawn from again, keeping the
  // draw sequence independent of how the run ends.
  struct ArrivalRt {
    std::unique_ptr<arrival::ArrivalProcess> process;
    util::Rng rng{0};
    double prev = -1.0;
    double next = kInf;
  };
  std::vector<ArrivalRt> arrivals(static_cast<std::size_t>(n_graphs));
  for (int g = 0; g < n_graphs; ++g) {
    auto& ar = arrivals[static_cast<std::size_t>(g)];
    ar.process = arrival::make(config_.arrival,
                               set_.graph(static_cast<std::size_t>(g)).period());
    ar.rng = util::Rng(util::derive_seed(
        config_.seed, {0x41525256ULL /*'ARRV'*/,
                       static_cast<std::uint64_t>(g)}));
    const double first = ar.process->next_release(ar.prev, ar.rng);
    ar.next = first < config_.horizon_s - kEps ? first : kInf;
  }

  auto next_release_time = [&](int g) -> double {
    return arrivals[static_cast<std::size_t>(g)].next;
  };

  auto earliest_release = [&]() -> double {
    double best = kInf;
    for (int g = 0; g < n_graphs; ++g) {
      best = std::min(best, next_release_time(g));
    }
    return best;
  };

  auto release_instance = [&](int g) {
    auto& ir = inst[static_cast<std::size_t>(g)];
    auto& ar = arrivals[static_cast<std::size_t>(g)];
    const auto& graph = set_.graph(static_cast<std::size_t>(g));
    if (released_count[g] > 0 && !ir.complete()) {
      ++res.deadline_misses;  // previous instance overran into this release
    }
    ir.number = released_count[g];
    ir.release_s = ar.next;
    ir.deadline_s = ir.release_s + graph.deadline();
    ar.prev = ar.next;
    if (ar.next != kInf) {
      const double upcoming = ar.process->next_release(ar.prev, ar.rng);
      ar.next = upcoming < config_.horizon_s - kEps ? upcoming : kInf;
    }
    ir.nodes.assign(graph.node_count(), NodeRt{});
    ir.done_count = 0;
    double total_wc = 0.0;
    for (tg::NodeId id = 0; id < graph.node_count(); ++id) {
      auto& nr = ir.nodes[id];
      nr.wc = graph.node(id).wcet_cycles;
      nr.ac = draw_actual(config_, g, ir.number, id, nr.wc);
      nr.remaining_ac = nr.ac;
      nr.pending_preds = static_cast<int>(graph.predecessors(id).size());
      nr.done = false;
      total_wc += nr.wc;
    }
    ir.cc_wc = total_wc;
    ir.remaining_wc = total_wc;
    ++released_count[g];
    ++res.instances_released;
  };

  // Draws `current_a` for `dt`, updating the battery, profile and
  // accounting. Returns the sustained duration (== dt unless the
  // battery died inside the interval).
  auto consume = [&](double current_a, double dt) -> double {
    double sustained = dt;
    if (battery != nullptr && !battery_dead) {
      sustained = battery->draw(current_a, dt);
      if (battery->empty()) {
        battery_dead = true;
        res.battery_died = true;
      }
    }
    if (config_.record_profile && sustained > 0.0) {
      res.profile.add(sustained, current_a);
    }
    res.charge_c += current_a * sustained;
    return sustained;
  };

  while (true) {
    // ---- 1. process due releases ------------------------------------
    for (int g = 0; g < n_graphs; ++g) {
      while (next_release_time(g) <= t + kEps) {
        release_instance(g);
      }
    }

    if (!config_.drain && t >= config_.horizon_s - kEps) {
      break;
    }
    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    // ---- 2. status snapshot ------------------------------------------
    std::vector<dvs::GraphStatus> statuses(
        static_cast<std::size_t>(n_graphs));
    for (int g = 0; g < n_graphs; ++g) {
      const auto& graph = set_.graph(static_cast<std::size_t>(g));
      const auto& ir = inst[static_cast<std::size_t>(g)];
      auto& st = statuses[static_cast<std::size_t>(g)];
      st.graph = g;
      st.period_s = graph.period();
      st.abs_deadline_s = ir.deadline_s;
      st.wc_total_cycles = graph.total_wcet_cycles();
      st.complete = ir.complete();
      // Past its window with no successor instance released (drain tail):
      // the graph no longer claims bandwidth.
      const bool expired = st.complete && t >= ir.deadline_s - kEps;
      st.cc_wc_cycles = expired ? 0.0 : ir.cc_wc;
      st.remaining_wc_cycles = ir.remaining_wc;
    }

    // ---- 3. EDF order over incomplete instances ----------------------
    std::vector<int> edf;
    for (int g = 0; g < n_graphs; ++g) {
      if (!inst[static_cast<std::size_t>(g)].complete()) {
        edf.push_back(g);
      }
    }
    std::sort(edf.begin(), edf.end(), [&](int a, int b) {
      const double da = inst[static_cast<std::size_t>(a)].deadline_s;
      const double db = inst[static_cast<std::size_t>(b)].deadline_s;
      return da != db ? da < db : a < b;
    });

    if (edf.empty()) {
      double t_next = earliest_release();
      if (t_next == kInf) {
        if (config_.drain || t >= config_.horizon_s - kEps) {
          break;  // drained: nothing in flight, nothing to release
        }
        // Fixed-horizon run: idle out the tail (idle current still
        // drains the battery).
        t_next = config_.horizon_s;
      }
      const double dt = t_next - t;
      if (dt > 0.0) {
        const double sustained = consume(proc_.idle_current_a(), dt);
        t += sustained;
        if (battery_dead && config_.stop_when_battery_empty) {
          break;
        }
      }
      t = t_next;
      continue;
    }

    // ---- 4. frequency selection (the scheme's DVS half) --------------
    const double fref =
        std::clamp(scheme_.dvs->select(statuses, t), 0.0, proc_.fmax_hz());
    const auto plan = dvs::realize(proc_, fref);

    // EDF-ordered status view for the feasibility check.
    std::vector<dvs::GraphStatus> edf_statuses;
    edf_statuses.reserve(edf.size());
    for (int g : edf) {
      edf_statuses.push_back(statuses[static_cast<std::size_t>(g)]);
    }

    // ---- 5. build the ready list (the scheme's ordering half) --------
    struct ScoredCandidate {
      sched::Candidate cand;
      double score = 0.0;
    };
    std::vector<ScoredCandidate> candidates;
    const std::size_t scan_depth =
        scheme_.scope == core::ReadyScope::kAllReleased ? edf.size() : 1;
    for (std::size_t pos = 0; pos < scan_depth; ++pos) {
      const int g = edf[pos];
      const auto& ir = inst[static_cast<std::size_t>(g)];
      for (tg::NodeId id = 0; id < ir.nodes.size(); ++id) {
        const auto& nr = ir.nodes[id];
        if (nr.done || nr.pending_preds > 0) {
          continue;
        }
        sched::Candidate c;
        c.graph = g;
        c.node = id;
        c.wc_cycles = std::max(nr.wc - nr.executed(), kCycleEps);
        c.actual_cycles = nr.remaining_ac;
        const double full_estimate = scheme_.estimator->estimate(
            g, id, nr.wc, nr.ac);
        c.estimate_cycles =
            std::max(full_estimate - nr.executed(), kCycleEps);
        c.graph_abs_deadline_s = ir.deadline_s;
        c.graph_remaining_wc_cycles = ir.remaining_wc;
        c.edf_position = static_cast<int>(pos);
        candidates.push_back({c, 0.0});
      }
    }
    for (auto& sc : candidates) {
      sc.score = scheme_.priority->score(sc.cand, t);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const ScoredCandidate& a, const ScoredCandidate& b) {
                if (a.score != b.score) {
                  return a.score < b.score;
                }
                if (a.cand.graph != b.cand.graph) {
                  return a.cand.graph < b.cand.graph;
                }
                return a.cand.node < b.cand.node;
              });

    const ScoredCandidate* chosen = nullptr;
    for (const auto& sc : candidates) {
      if (sc.cand.edf_position == 0 ||
          sched::feasibility_check(edf_statuses, sc.cand.edf_position,
                                   sc.cand.wc_cycles,
                                   plan.effective_freq_hz, t)) {
        chosen = &sc;
        break;
      }
    }
    // The most-imminent graph always offers an unguarded candidate.
    if (chosen == nullptr) {
      throw std::logic_error("Simulator: no feasible candidate (bug)");
    }

    // ---- 6. run the chosen node until completion or next release -----
    const int g = chosen->cand.graph;
    auto& ir = inst[static_cast<std::size_t>(g)];
    auto& nr = ir.nodes[chosen->cand.node];

    const double full_duration = nr.remaining_ac / plan.effective_freq_hz;
    const double t_release = earliest_release();
    const double run_until = std::min(t + full_duration, t_release);

    // The two-point mix is laid out over the node's intended execution
    // window, higher point first (Guideline 1 within the slot).
    const double hi_end = t + plan.hi_fraction * full_duration;
    struct Phase {
      dvs::OperatingPoint op;
      double start, end;
    };
    std::vector<Phase> phases;
    if (run_until <= hi_end + kEps || plan.single_level()) {
      phases.push_back({plan.hi_fraction > 0.0 ? plan.hi : plan.lo, t,
                        run_until});
    } else {
      phases.push_back({plan.hi, t, hi_end});
      phases.push_back({plan.lo, hi_end, run_until});
    }

    double executed_cycles = 0.0;
    double t_now = t;
    for (const auto& ph : phases) {
      const double dt = ph.end - ph.start;
      if (dt <= 0.0) {
        continue;
      }
      const double current = proc_.battery_current_a(ph.op);
      const double sustained = consume(current, dt);
      const double cycles = ph.op.freq_hz * sustained;
      executed_cycles += cycles;
      res.energy_j += proc_.core_power_w(ph.op) * sustained;
      res.busy_s += sustained;
      if (config_.record_trace && sustained > 0.0) {
        res.trace.push_back(ExecSlice{g, ir.number, chosen->cand.node,
                                      t_now, t_now + sustained,
                                      ph.op.freq_hz, current});
      }
      if (current > last_busy_current + 1e-12) {
        ++res.frequency_increases;
      }
      last_busy_current = current;
      t_now += sustained;
      if (battery_dead && config_.stop_when_battery_empty) {
        break;
      }
    }
    t = t_now;

    // ---- 7. bookkeeping ----------------------------------------------
    executed_cycles = std::min(executed_cycles, nr.remaining_ac);
    nr.remaining_ac -= executed_cycles;
    ir.remaining_wc = std::max(0.0, ir.remaining_wc - executed_cycles);

    if (battery_dead && config_.stop_when_battery_empty) {
      break;
    }

    if (nr.remaining_ac <= kCycleEps) {
      nr.remaining_ac = 0.0;
      nr.done = true;
      ++ir.done_count;
      ++res.nodes_executed;
      // Completion adjustments (paper Algorithm 1): the instance's WCi
      // swaps this node's wc for its actual; remaining worst case drops
      // by the wc that was never going to run.
      ir.cc_wc += nr.ac - nr.wc;
      ir.remaining_wc = std::max(0.0, ir.remaining_wc - (nr.wc - nr.ac));
      const auto& graph = set_.graph(static_cast<std::size_t>(g));
      for (tg::NodeId succ : graph.successors(chosen->cand.node)) {
        --ir.nodes[succ].pending_preds;
      }
      scheme_.estimator->observe(g, chosen->cand.node, nr.ac);
      if (ir.complete()) {
        ++res.instances_completed;
        if (t > ir.deadline_s + 1e-6) {
          ++res.deadline_misses;
        }
      }
    } else if (run_until >= t_release - kEps) {
      ++res.preemptions;
    }
  }

  res.end_time_s = t;
  if (battery != nullptr) {
    res.battery_lifetime_s = battery->time_alive_s();
    res.battery_delivered_mah = battery->charge_delivered_mah();
  }
  return res;
}

SimResult simulate_scheme(const tg::TaskGraphSet& set,
                          const dvs::Processor& proc, core::SchemeKind kind,
                          const SimConfig& config, bat::Battery* battery) {
  core::Scheme scheme = core::make_scheme(kind, proc.fmax_hz(), config.seed);
  Simulator sim(set, proc, scheme, config);
  return sim.run(battery);
}

}  // namespace bas::sim
