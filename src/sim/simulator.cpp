#include "sim/simulator.hpp"

#include <stdexcept>

#include "sim/engine_internal.hpp"

namespace bas::sim {

std::string to_string(Engine engine) {
  return engine == Engine::kTick ? "tick" : "event";
}

Engine engine_from_string(const std::string& text) {
  if (text == "tick") {
    return Engine::kTick;
  }
  if (text == "event") {
    return Engine::kEvent;
  }
  throw std::invalid_argument("unknown engine '" + text +
                              "' (known values: tick, event)");
}

Simulator::Simulator(const tg::TaskGraphSet& set, const dvs::Processor& proc,
                     core::Scheme& scheme, SimConfig config)
    : set_(set),
      proc_(proc),
      scheme_(scheme),
      config_(config),
      scratch_(std::make_unique<detail::Scratch>()) {
  set_.validate();
  if (!(config_.horizon_s > 0.0)) {
    throw std::invalid_argument("Simulator: horizon must be positive");
  }
  if (!(config_.ac_lo_frac > 0.0) || config_.ac_hi_frac > 1.0 ||
      config_.ac_hi_frac < config_.ac_lo_frac) {
    throw std::invalid_argument("Simulator: bad actual-computation range");
  }
  if (!scheme_.dvs || !scheme_.priority || !scheme_.estimator) {
    throw std::invalid_argument("Simulator: scheme has null components");
  }
  // Fail on a bad arrival model/params at construction, not mid-run
  // inside a worker thread.
  arrival::validate(config_.arrival);

  // Gather the immutable per-graph/per-node facts once. The values are
  // computed with exactly the expressions the scheduling loop used to
  // evaluate in place (same folds, same hash chains), so reading them
  // from here is bit-identical to re-deriving them.
  auto& statics = scratch_->statics;
  statics.resize(set_.size());
  for (std::size_t gi = 0; gi < set_.size(); ++gi) {
    const auto& graph = set_.graph(gi);
    auto& gs = statics[gi];
    gs.period_s = graph.period();
    gs.deadline_s = graph.deadline();
    gs.total_wc_cycles = graph.total_wcet_cycles();
    gs.nodes.resize(graph.node_count());
    for (tg::NodeId id = 0; id < graph.node_count(); ++id) {
      auto& ns = gs.nodes[id];
      ns.wc = graph.node(id).wcet_cycles;
      ns.pred_count = static_cast<int>(graph.predecessors(id).size());
      std::uint64_t key =
          util::Rng::hash_combine(config_.seed, 0x7a5c0ffeULL);
      key = util::Rng::hash_combine(key, static_cast<std::uint64_t>(gi));
      key = util::Rng::hash_combine(key, id);
      ns.draw_key = key;
      if (config_.ac_model == AcModel::kPerNodeMean) {
        util::Rng mean_rng(key);
        ns.mean_frac =
            mean_rng.uniform(config_.ac_lo_frac, config_.ac_hi_frac);
      }
    }
  }
}

Simulator::~Simulator() = default;

SimResult Simulator::run(bat::Battery* battery) {
  return config_.engine == Engine::kTick ? run_tick(battery)
                                         : run_event(battery);
}

SimResult simulate_scheme(const tg::TaskGraphSet& set,
                          const dvs::Processor& proc, core::SchemeKind kind,
                          const SimConfig& config, bat::Battery* battery) {
  core::Scheme scheme = core::make_scheme(kind, proc.fmax_hz(), config.seed);
  Simulator sim(set, proc, scheme, config);
  return sim.run(battery);
}

}  // namespace bas::sim
