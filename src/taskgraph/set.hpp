#pragma once
// A set of periodic task graphs sharing one processor — the unit of
// workload the scheduler and simulator operate on.

#include <vector>

#include "taskgraph/graph.hpp"

namespace bas::tg {

class TaskGraphSet {
 public:
  TaskGraphSet() = default;
  explicit TaskGraphSet(std::vector<TaskGraph> graphs);

  /// Adds a graph; returns its index within the set.
  std::size_t add(TaskGraph graph);

  std::size_t size() const noexcept { return graphs_.size(); }
  bool empty() const noexcept { return graphs_.empty(); }
  const TaskGraph& graph(std::size_t i) const { return graphs_.at(i); }
  TaskGraph& graph(std::size_t i) { return graphs_.at(i); }

  auto begin() const noexcept { return graphs_.begin(); }
  auto end() const noexcept { return graphs_.end(); }

  /// Worst-case processor utilization at frequency fmax:
  /// U = Σ_i (WCi / fmax) / Di  with WCi the sum of node wcets (cycles).
  double utilization(double fmax_hz) const;

  /// Total node count across graphs.
  std::size_t total_nodes() const noexcept;

  /// Validates every graph plus set-level invariants (non-empty).
  /// Throws std::logic_error on violation.
  void validate() const;

 private:
  std::vector<TaskGraph> graphs_;
};

}  // namespace bas::tg
