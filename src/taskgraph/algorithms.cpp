#include "taskgraph/algorithms.hpp"

#include <algorithm>
#include <unordered_map>

namespace bas::tg {

std::vector<std::vector<bool>> reachability(const TaskGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  const auto order = g.topological_order();
  // Process in reverse topological order so successors are complete.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    for (NodeId next : g.successors(id)) {
      reach[id][next] = true;
      for (std::size_t k = 0; k < n; ++k) {
        if (reach[next][k]) {
          reach[id][k] = true;
        }
      }
    }
  }
  return reach;
}

std::vector<std::vector<NodeId>> ancestor_sets(const TaskGraph& g) {
  const auto reach = reachability(g);
  const std::size_t n = g.node_count();
  std::vector<std::vector<NodeId>> anc(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (reach[a][b]) {
        anc[b].push_back(static_cast<NodeId>(a));
      }
    }
  }
  return anc;
}

std::vector<std::vector<NodeId>> descendant_sets(const TaskGraph& g) {
  const auto reach = reachability(g);
  const std::size_t n = g.node_count();
  std::vector<std::vector<NodeId>> desc(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (reach[a][b]) {
        desc[a].push_back(static_cast<NodeId>(b));
      }
    }
  }
  return desc;
}

TaskGraph transitive_reduction(const TaskGraph& g) {
  const auto reach = reachability(g);
  TaskGraph out(g.period(), g.name());
  for (NodeId id = 0; id < g.node_count(); ++id) {
    out.add_node(g.node(id).wcet_cycles, g.node(id).name);
  }
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (NodeId b : g.successors(a)) {
      // Edge a->b is redundant if some other successor c of a reaches b.
      bool redundant = false;
      for (NodeId c : g.successors(a)) {
        if (c != b && reach[c][b]) {
          redundant = true;
          break;
        }
      }
      if (!redundant) {
        out.add_edge(a, b);
      }
    }
  }
  return out;
}

std::vector<int> levels(const TaskGraph& g) {
  const auto order = g.topological_order();
  std::vector<int> level(g.node_count(), 0);
  for (NodeId id : order) {
    for (NodeId p : g.predecessors(id)) {
      level[id] = std::max(level[id], level[p] + 1);
    }
  }
  return level;
}

namespace {

std::uint64_t count_orders_rec(
    const TaskGraph& g, std::uint64_t done_mask, std::uint64_t cap,
    std::unordered_map<std::uint64_t, std::uint64_t>& memo) {
  const std::size_t n = g.node_count();
  if (done_mask == (n == 64 ? ~0ULL : ((1ULL << n) - 1))) {
    return 1;
  }
  const auto it = memo.find(done_mask);
  if (it != memo.end()) {
    return it->second;
  }
  std::uint64_t total = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (done_mask & (1ULL << id)) {
      continue;
    }
    bool ready = true;
    for (NodeId p : g.predecessors(id)) {
      if (!(done_mask & (1ULL << p))) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      continue;
    }
    total += count_orders_rec(g, done_mask | (1ULL << id), cap, memo);
    if (total >= cap) {
      total = cap;
      break;
    }
  }
  memo.emplace(done_mask, total);
  return total;
}

}  // namespace

std::uint64_t count_topological_orders(const TaskGraph& g,
                                       std::uint64_t cap) {
  if (g.node_count() > 25) {
    return cap;  // subset DP would be intractable; report saturation
  }
  std::unordered_map<std::uint64_t, std::uint64_t> memo;
  return count_orders_rec(g, 0, cap, memo);
}

bool is_topological_order(const TaskGraph& g,
                          const std::vector<NodeId>& order) {
  if (order.size() != g.node_count()) {
    return false;
  }
  std::vector<std::size_t> position(g.node_count(), 0);
  std::vector<bool> seen(g.node_count(), false);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId id = order[i];
    if (id >= g.node_count() || seen[id]) {
      return false;
    }
    seen[id] = true;
    position[id] = i;
  }
  for (NodeId a = 0; a < g.node_count(); ++a) {
    for (NodeId b : g.successors(a)) {
      if (position[a] >= position[b]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace bas::tg
