#include "taskgraph/set.hpp"

#include <stdexcept>

namespace bas::tg {

TaskGraphSet::TaskGraphSet(std::vector<TaskGraph> graphs)
    : graphs_(std::move(graphs)) {}

std::size_t TaskGraphSet::add(TaskGraph graph) {
  graphs_.push_back(std::move(graph));
  return graphs_.size() - 1;
}

double TaskGraphSet::utilization(double fmax_hz) const {
  if (fmax_hz <= 0.0) {
    throw std::invalid_argument("TaskGraphSet::utilization: fmax must be > 0");
  }
  double u = 0.0;
  for (const auto& g : graphs_) {
    u += (g.total_wcet_cycles() / fmax_hz) / g.period();
  }
  return u;
}

std::size_t TaskGraphSet::total_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& g : graphs_) {
    n += g.node_count();
  }
  return n;
}

void TaskGraphSet::validate() const {
  if (graphs_.empty()) {
    throw std::logic_error("TaskGraphSet: empty set");
  }
  for (const auto& g : graphs_) {
    g.validate();
  }
}

}  // namespace bas::tg
