#pragma once
// Periodic task graphs: the workload model of the paper.
//
// A TaskGraph is a directed acyclic graph whose nodes are tasks with a
// worst-case computation demand expressed in CPU cycles, and whose edges
// are precedence constraints. Graphs are periodic; the relative deadline
// equals the period, and every node of an instance must finish by that
// instance's absolute deadline (paper §4, problem definition).

#include <cstdint>
#include <string>
#include <vector>

namespace bas::tg {

using NodeId = std::uint32_t;

/// One task (node) of a task graph.
struct Node {
  /// Worst-case computation demand in CPU cycles (> 0).
  double wcet_cycles = 0.0;
  /// Optional human-readable name; auto-generated as "n<k>" when empty.
  std::string name;
};

/// A periodic DAG of tasks with precedence constraints.
///
/// Mutation API (add_node/add_edge/set_period) is used by generators and
/// by hand-built examples; once handed to the simulator the graph is only
/// read. Call validate() (or let TaskGraphSet do it) after construction.
class TaskGraph {
 public:
  TaskGraph() = default;
  /// Constructs with a period (seconds); deadline is implicitly the period.
  explicit TaskGraph(double period_s, std::string name = {});

  /// Adds a task with the given worst-case cycles; returns its id.
  NodeId add_node(double wcet_cycles, std::string name = {});

  /// Adds the precedence edge `from` -> `to`. Duplicate edges are ignored.
  /// Throws std::out_of_range for unknown ids and std::invalid_argument
  /// for self-loops.
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<NodeId>& successors(NodeId id) const {
    return succ_.at(id);
  }
  const std::vector<NodeId>& predecessors(NodeId id) const {
    return pred_.at(id);
  }

  double period() const noexcept { return period_s_; }
  void set_period(double period_s) { period_s_ = period_s; }
  /// Relative deadline; equal to the period in this model.
  double deadline() const noexcept { return period_s_; }

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Sum of all nodes' worst-case cycles (the paper's WCi at release).
  double total_wcet_cycles() const noexcept;

  /// Scales every node's wcet by `factor` (> 0). Used by the workload
  /// builder to hit a target utilization.
  void scale_wcet(double factor);

  /// True when the graph has no directed cycle.
  bool is_acyclic() const;

  /// Kahn topological order (lowest-id-first tie-break for determinism).
  /// Throws std::logic_error when the graph is cyclic.
  std::vector<NodeId> topological_order() const;

  /// Length (cycles) of the longest wcet-weighted path; the minimum time
  /// to run one instance at a given frequency is critical_path / f only
  /// on parallel machines — on our single processor the bound is the
  /// total wcet, but the critical path is still useful for generators
  /// and sanity checks.
  double critical_path_cycles() const;

  /// Nodes without predecessors.
  std::vector<NodeId> sources() const;
  /// Nodes without successors.
  std::vector<NodeId> sinks() const;

  /// Checks structural invariants: at least one node, positive period,
  /// positive wcets, acyclicity. Throws std::logic_error on violation.
  void validate() const;

 private:
  std::string name_;
  double period_s_ = 0.0;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edge_count_ = 0;
};

}  // namespace bas::tg
