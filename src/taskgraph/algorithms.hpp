#pragma once
// Graph algorithms on task graphs beyond the basics TaskGraph itself
// offers: reachability, transitive reduction, level assignment, and
// topological-order counting (used to size the exhaustive search of the
// Table 1 experiment before committing to it).

#include <cstdint>
#include <vector>

#include "taskgraph/graph.hpp"

namespace bas::tg {

/// Reachability matrix: result[a][b] is true when a directed path a->b
/// exists (a != b). O(V * E) bitset-free implementation; fine for the
/// graph sizes in this domain (tens of nodes).
std::vector<std::vector<bool>> reachability(const TaskGraph& g);

/// All ancestors (transitive predecessors) of each node.
std::vector<std::vector<NodeId>> ancestor_sets(const TaskGraph& g);

/// All descendants (transitive successors) of each node.
std::vector<std::vector<NodeId>> descendant_sets(const TaskGraph& g);

/// Removes edges implied by transitivity, returning a copy with the same
/// reachability relation and minimal edge count.
TaskGraph transitive_reduction(const TaskGraph& g);

/// ASAP level of each node (longest edge-count distance from a source).
std::vector<int> levels(const TaskGraph& g);

/// Number of distinct topological orders, computed exactly by DP over
/// antichains up to `cap` (the count saturates at `cap` and stops early).
/// Exponential in the worst case; always called with a cap.
std::uint64_t count_topological_orders(const TaskGraph& g,
                                       std::uint64_t cap);

/// True when `order` is a valid topological order of g.
bool is_topological_order(const TaskGraph& g,
                          const std::vector<NodeId>& order);

}  // namespace bas::tg
