#include "taskgraph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace bas::tg {

TaskGraph::TaskGraph(double period_s, std::string name)
    : name_(std::move(name)), period_s_(period_s) {}

NodeId TaskGraph::add_node(double wcet_cycles, std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) {
    name = "n" + std::to_string(id);
  }
  nodes_.push_back(Node{wcet_cycles, std::move(name)});
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void TaskGraph::add_edge(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("TaskGraph::add_edge: unknown node id");
  }
  if (from == to) {
    throw std::invalid_argument("TaskGraph::add_edge: self-loop");
  }
  auto& out = succ_[from];
  if (std::find(out.begin(), out.end(), to) != out.end()) {
    return;  // duplicate edge
  }
  out.push_back(to);
  pred_[to].push_back(from);
  ++edge_count_;
}

double TaskGraph::total_wcet_cycles() const noexcept {
  double total = 0.0;
  for (const auto& n : nodes_) {
    total += n.wcet_cycles;
  }
  return total;
}

void TaskGraph::scale_wcet(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("TaskGraph::scale_wcet: factor must be > 0");
  }
  for (auto& n : nodes_) {
    n.wcet_cycles *= factor;
  }
}

bool TaskGraph::is_acyclic() const {
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    in_degree[id] = pred_[id].size();
  }
  std::vector<NodeId> frontier;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (in_degree[id] == 0) {
      frontier.push_back(id);
    }
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const NodeId id = frontier.back();
    frontier.pop_back();
    ++visited;
    for (NodeId next : succ_[id]) {
      if (--in_degree[next] == 0) {
        frontier.push_back(next);
      }
    }
  }
  return visited == nodes_.size();
}

std::vector<NodeId> TaskGraph::topological_order() const {
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    in_degree[id] = pred_[id].size();
  }
  // Min-heap on node id keeps the order deterministic across platforms.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (in_degree[id] == 0) {
      ready.push(id);
    }
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (NodeId next : succ_[id]) {
      if (--in_degree[next] == 0) {
        ready.push(next);
      }
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("TaskGraph::topological_order: graph is cyclic");
  }
  return order;
}

double TaskGraph::critical_path_cycles() const {
  const auto order = topological_order();
  std::vector<double> longest(nodes_.size(), 0.0);
  double best = 0.0;
  for (NodeId id : order) {
    double in = 0.0;
    for (NodeId p : pred_[id]) {
      in = std::max(in, longest[p]);
    }
    longest[id] = in + nodes_[id].wcet_cycles;
    best = std::max(best, longest[id]);
  }
  return best;
}

std::vector<NodeId> TaskGraph::sources() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pred_[id].empty()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<NodeId> TaskGraph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (succ_[id].empty()) {
      out.push_back(id);
    }
  }
  return out;
}

void TaskGraph::validate() const {
  if (nodes_.empty()) {
    throw std::logic_error("TaskGraph: no nodes");
  }
  if (period_s_ <= 0.0) {
    throw std::logic_error("TaskGraph: period must be positive");
  }
  for (const auto& n : nodes_) {
    if (!(n.wcet_cycles > 0.0)) {
      throw std::logic_error("TaskGraph: node wcet must be positive");
    }
  }
  if (!is_acyclic()) {
    throw std::logic_error("TaskGraph: precedence graph has a cycle");
  }
}

}  // namespace bas::tg
