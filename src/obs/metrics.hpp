#pragma once
// The unified metrics registry: one named-counter/gauge surface over
// the counters that previously lived in four places — the simulator's
// PerfCounters, the per-kernel battery k_* counters, the runner's
// heartbeat figures and the store writer's stall/queue-depth stats.
//
// A Metrics is an ORDERED registry: entries keep insertion order, names
// are unique (set() on an existing name overwrites its value, never
// duplicates the entry), and the standard fillers below always register
// the same names in the same order — which is what makes the flat
// bas-perf/4 JSON emitted by bench/perf_hotpath and the heartbeat
// suffix rendered by the runner stable across runs and builds
// (tests/test_obs.cpp pins uniqueness and stability).
//
// Values are doubles: every counter in the repo is far below 2^53, so
// integral counters round-trip exactly; kCounter/kGauge only marks
// whether a value accumulates (counters sum across replicates) or
// samples a level (gauges — queue depth, peak — take the latest/max).

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace bas::sim {
struct PerfCounters;
}
namespace bas::store {
struct WriterStats;
}

namespace bas::obs {

enum class MetricKind { kCounter, kGauge };

class Metrics {
 public:
  struct Entry {
    std::string name;
    double value = 0.0;
    MetricKind kind = MetricKind::kCounter;
  };

  /// Registers `name` (keeping insertion order) or overwrites its
  /// value; the kind is fixed by the first registration.
  void set(const std::string& name, double value,
           MetricKind kind = MetricKind::kCounter);
  /// set(name, value(name) + delta) — registers at 0 when absent.
  void add(const std::string& name, double delta,
           MetricKind kind = MetricKind::kCounter);

  bool has(const std::string& name) const;
  /// Throws std::out_of_range when absent.
  double value(const std::string& name) const;

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// "name=value name=value ..." in registry order, integers rendered
  /// without a decimal point — the heartbeat-suffix form.
  std::string render_compact() const;

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

/// Renders a double the way the registry's consumers print it: integral
/// values (every counter) as plain integers, everything else %.6g.
std::string format_value(double value);

/// Registers the simulator hot-path lanes (steps, battery_draws, ...),
/// the per-kernel battery counters (k_*) and the phase profile (ph_*_ns
/// + ph_laps) — the exact flat names of the bas-perf/4 cell schema, in
/// schema order.
void fill(Metrics& metrics, const sim::PerfCounters& perf);

/// Registers the store writer lanes (store_enqueued, store_written,
/// store_batches, store_stalls, store_dropped) and gauges
/// (store_queue_depth, store_queue_peak, store_queue_capacity).
void fill(Metrics& metrics, const store::WriterStats& stats);

}  // namespace bas::obs
