#pragma once
// An in-memory Chrome-trace-event log (the about://tracing / Perfetto
// JSON format): named spans, instants and counter samples on (pid,
// tid) tracks, written out as one `{"traceEvents": [...]}` document.
//
// One TraceLog serves both trace producers in the repo:
//
//   single sim run   the engines emit release/completion instants,
//                    per-node execution spans (sim-time timeline,
//                    pid kSimPid, tid = graph) and — in BAS_PROFILE
//                    builds — per-step phase spans (wall-clock
//                    timeline, pid kProfilerPid)
//   whole campaign   the runner emits per-job spans (tid = worker),
//                    retry/steal/fail markers, and the async store
//                    writer samples its queue depth as a counter track
//                    (wall-clock timeline, pid kCampaignPid)
//
// The log is instrumentation only: it is attached through non-owning
// pointers (SimConfig::trace_log, RunnerOptions::trace_out), never
// enters a fingerprint, a sink or a store record, and recording it
// cannot perturb the byte-identity contract — a contract pinned by
// tests/test_obs.cpp and tests/trace_smoke.sh.
//
// Timestamps are microseconds (the format's unit). Sim-time producers
// pass sim seconds * 1e6; wall-clock producers use now_us(), measured
// from the log's construction. write() orders events by (pid, tid, ts)
// so every track is monotonically non-decreasing in ts — Perfetto does
// not require it, but it makes the file diffable and testable.
//
// Thread-safe: appends take one mutex. Producers that care about hot-
// path cost must simply not attach a log (the pointer checks are the
// only cost when detached).

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace bas::obs {

/// Track (process) ids — purely presentational, but fixed so tests and
/// docs can name them.
constexpr int kSimPid = 1;       ///< sim-time tracks (slices, releases)
constexpr int kProfilerPid = 2;  ///< wall-clock phase spans (BAS_PROFILE)
constexpr int kCampaignPid = 3;  ///< wall-clock runner/store tracks

/// One trace event. `ph` is the format's phase letter: 'X' complete
/// span, 'i' instant, 'C' counter, 'M' metadata.
struct TraceEvent {
  std::string name;
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;       ///< 'X' only
  int pid = 0;
  int tid = 0;
  std::string args_json;     ///< pre-rendered object body, may be empty
};

class TraceLog {
 public:
  TraceLog();

  /// Wall-clock microseconds since this log was constructed — the
  /// timestamp base every wall-clock producer shares.
  double now_us() const;

  /// A complete span ('X').
  void span(std::string name, int pid, int tid, double ts_us, double dur_us,
            std::string args_json = {});
  /// An instant marker ('i').
  void instant(std::string name, int pid, int tid, double ts_us,
               std::string args_json = {});
  /// One sample of a counter track ('C'); Perfetto draws the series
  /// named `name` as a filled counter plot.
  void counter(std::string name, int pid, double ts_us, double value);
  /// Names a pid's track in the viewer ('M' process_name metadata).
  void name_process(int pid, const std::string& name);

  std::size_t size() const;
  /// Events ordered by (pid, tid, ts) — exactly the write() order, so
  /// tests can assert per-track ts monotonicity without re-parsing.
  std::vector<TraceEvent> sorted_events() const;
  /// Number of events (any kind) with exactly this name — the query the
  /// trace-based arrival-rate diagnostic is built on.
  std::size_t count(const std::string& name) const;

  /// Renders the whole log as a trace-event JSON document.
  std::string to_json() const;
  /// Writes to_json() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace bas::obs
