#include "obs/trace_log.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bas::obs {

namespace {

/// Minimal JSON string escape: the names and args the repo emits are
/// ASCII, but scenario labels and error strings may carry quotes,
/// backslashes or control bytes.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.6f keeps sub-microsecond phase spans distinguishable while staying
/// fixed-point (the viewer sorts numerically either way).
std::string fmt_us(double us) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", us);
  return buffer;
}

}  // namespace

TraceLog::TraceLog() : epoch_(std::chrono::steady_clock::now()) {}

double TraceLog::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceLog::span(std::string name, int pid, int tid, double ts_us,
                    double dur_us, std::string args_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{std::move(name), 'X', ts_us, dur_us, pid, tid,
                               std::move(args_json)});
}

void TraceLog::instant(std::string name, int pid, int tid, double ts_us,
                       std::string args_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{std::move(name), 'i', ts_us, 0.0, pid, tid,
                               std::move(args_json)});
}

void TraceLog::counter(std::string name, int pid, double ts_us, double value) {
  char args[64];
  std::snprintf(args, sizeof(args), "{\"value\": %.17g}", value);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      TraceEvent{std::move(name), 'C', ts_us, 0.0, pid, 0, args});
}

void TraceLog::name_process(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{"process_name", 'M', 0.0, 0.0, pid, 0,
                               "{\"name\": \"" + escape(name) + "\"}"});
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceLog::sorted_events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  // stable_sort keeps same-timestamp events (e.g. a release and the
  // slice it triggers) in emission order within a track.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) {
                       return a.pid < b.pid;
                     }
                     if (a.tid != b.tid) {
                       return a.tid < b.tid;
                     }
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::size_t TraceLog::count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.name == name) {
      ++n;
    }
  }
  return n;
}

std::string TraceLog::to_json() const {
  const auto events = sorted_events();
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    out << "  {\"name\": \"" << escape(e.name) << "\", \"ph\": \"" << e.ph
        << "\", \"pid\": " << e.pid << ", \"tid\": " << e.tid
        << ", \"ts\": " << fmt_us(e.ts_us);
    if (e.ph == 'X') {
      out << ", \"dur\": " << fmt_us(e.dur_us);
    }
    if (e.ph == 'i') {
      out << ", \"s\": \"t\"";  // thread-scoped instant
    }
    if (!e.args_json.empty()) {
      out << ", \"args\": " << e.args_json;
    }
    out << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return out.str();
}

void TraceLog::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open trace file '" + path +
                             "' for writing");
  }
  file << to_json();
  file.flush();
  if (!file) {
    throw std::runtime_error("failed writing trace file '" + path + "'");
  }
}

}  // namespace bas::obs
