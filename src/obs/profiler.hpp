#pragma once
// Scoped phase profiling of the simulator engines (the BAS_PROFILE
// CMake option, mirroring BAS_KERNEL_COUNTERS).
//
// The scheduling loops are partitioned into a fixed phase taxonomy —
// the same phases in both engines, so a tick/event profile is
// comparable phase for phase:
//
//   queue-ops        release scanning / event dispatch, queue pushes,
//                    merge-window observation flushes
//   incremental-maint event engine only: maintaining the persistent
//                    EDF order and write-through status snapshot at
//                    releases/completions plus the deadline-expiry
//                    watch (work the per-step rebuild used to do under
//                    bookkeeping; the tick engine never laps it)
//   bookkeeping      status snapshot + EDF ordering (tick engine's
//                    per-step rebuild), post-slice completion
//                    bookkeeping
//   dvs-select       DvsPolicy::select + realize (the scheme's DVS half)
//   candidate-build  ready-list candidate enumeration
//   estimate-score   estimator lookups + priority scoring
//   select           min/sort walk + feasibility guard
//   battery-advance  executing the chosen slice: battery draws, merge
//                    accrual, profile/trace recording
//
// A PhaseClock marks the start of a step and laps at each phase
// boundary: one clock read per boundary, with the delta credited to
// the phase that just ended. The phases therefore PARTITION the loop
// body — their sum is the loop's wall time (minus the clock reads
// themselves), which is what lets bench/perf_hotpath report a per-phase
// table whose rows add up to the measured step time.
//
// Cost model (EXPERIMENTS.md, "Observability" has measurements):
//   BAS_PROFILE=0 (default)  mark()/lap() are empty inline functions —
//                            the loops carry zero instrumentation.
//   BAS_PROFILE=1, off       one pointer test per boundary (the clock
//                            is only read when a run asked for
//                            profiling via record_phase_profile).
//   BAS_PROFILE=1, on        one TSC read (x86-64) or steady_clock
//                            read per boundary; raw ticks accumulate
//                            and are converted to ns once per run
//                            against a steady_clock span, so the hot
//                            path never divides.
//
// Profiling is instrumentation only: it reads clocks and writes
// PhaseProfile/TraceLog, never any simulation state, so results are
// bitwise identical with profiling on or off (tests/test_obs.cpp).

#include <cstdint>

#ifndef BAS_PROFILE
#define BAS_PROFILE 0
#endif

#if BAS_PROFILE && (defined(__x86_64__) || defined(_M_X64))
#define BAS_PROFILE_TSC 1
#else
#define BAS_PROFILE_TSC 0
#endif

#if BAS_PROFILE
#include <chrono>
#endif

namespace bas::obs {

class TraceLog;

/// The fixed phase taxonomy, in loop order.
enum class Phase : int {
  kQueueOps = 0,
  kIncrementalMaint,
  kBookkeeping,
  kDvsSelect,
  kCandidateBuild,
  kEstimateScore,
  kSelect,
  kBatteryAdvance,
};
constexpr int kPhaseCount = 8;

/// Display name ("dvs-select") — trace spans and tables.
const char* phase_name(Phase phase);
/// Flat metric/JSON field name ("ph_dvs_select_ns") — the bas-perf/4
/// schema and the metrics registry.
const char* phase_field(Phase phase);

/// Per-phase accumulated wall time and boundary counts for one run
/// (SimResult::perf.phases). Always present so the bas-perf schema is
/// build-independent; all zero unless the build compiled the profiler
/// in AND the run set SimConfig::record_phase_profile.
struct PhaseProfile {
  /// True when BAS_PROFILE compiled the clock reads in.
  static constexpr bool compiled_in = BAS_PROFILE != 0;

  std::uint64_t ns[kPhaseCount] = {};
  std::uint64_t laps[kPhaseCount] = {};

  std::uint64_t total_ns() const {
    std::uint64_t total = 0;
    for (int p = 0; p < kPhaseCount; ++p) {
      total += ns[p];
    }
    return total;
  }

  void clear() { *this = PhaseProfile{}; }

  PhaseProfile& operator+=(const PhaseProfile& o) {
    for (int p = 0; p < kPhaseCount; ++p) {
      ns[p] += o.ns[p];
      laps[p] += o.laps[p];
    }
    return *this;
  }
};

#if BAS_PROFILE

/// The engines' boundary timer. Accumulates raw ticks per phase;
/// finish() converts to ns in one run-level calibration (wall span /
/// tick span) and adds into the attached profile. With a TraceLog
/// attached, every lap additionally emits a wall-clock phase span on
/// the kProfilerPid track (capped per run — see kMaxLoggedSpans).
class PhaseClock {
 public:
  /// Either pointer may be null; with both null the clock is disabled
  /// and mark()/lap() reduce to one predictable branch.
  PhaseClock(PhaseProfile* profile, TraceLog* log);
  ~PhaseClock() { finish(); }

  PhaseClock(const PhaseClock&) = delete;
  PhaseClock& operator=(const PhaseClock&) = delete;

  /// Opens a step: the next lap is measured from here.
  void mark() {
    if (enabled_) {
      last_ = tick_now();
    }
  }

  /// Closes the phase that just ran: credits [last mark/lap, now) to
  /// `phase` and re-marks.
  void lap(Phase phase) {
    if (!enabled_) {
      return;
    }
    const std::uint64_t now = tick_now();
    ticks_[static_cast<int>(phase)] += now - last_;
    ++profile_scratch_.laps[static_cast<int>(phase)];
    last_ = now;
    if (log_ != nullptr) {
      lap_log(phase);
    }
  }

  /// Converts accumulated ticks to ns and flushes into the profile.
  /// Idempotent; called by the destructor.
  void finish();

 private:
  static std::uint64_t tick_now() {
#if BAS_PROFILE_TSC
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  void lap_log(Phase phase);  // out of line: touches TraceLog

  /// Phase spans a single run may emit into a TraceLog — a defensive
  /// cap so attaching a trace to a long run cannot balloon the file;
  /// aggregate ns/laps keep counting past it.
  static constexpr std::uint64_t kMaxLoggedSpans = 50000;

  bool enabled_ = false;
  PhaseProfile* profile_ = nullptr;
  TraceLog* log_ = nullptr;
  std::uint64_t last_ = 0;
  std::uint64_t ticks_[kPhaseCount] = {};
  PhaseProfile profile_scratch_;  ///< laps counted here until finish()
  std::uint64_t logged_spans_ = 0;
  double log_last_us_ = 0.0;
  bool finished_ = false;
  std::uint64_t tick_epoch_ = 0;
  std::chrono::steady_clock::time_point wall_epoch_;
};

#else  // !BAS_PROFILE

/// Compiled-out shell: every member is an empty inline, so the engines'
/// mark()/lap() calls vanish entirely in default builds.
class PhaseClock {
 public:
  PhaseClock(PhaseProfile*, TraceLog*) {}
  void mark() {}
  void lap(Phase) {}
  void finish() {}
};

#endif  // BAS_PROFILE

}  // namespace bas::obs
