#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "sim/simulator.hpp"
#include "store/async_writer.hpp"

namespace bas::obs {

void Metrics::set(const std::string& name, double value, MetricKind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    index_.emplace(name, entries_.size());
    entries_.push_back(Entry{name, value, kind});
    return;
  }
  entries_[it->second].value = value;
}

void Metrics::add(const std::string& name, double delta, MetricKind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    set(name, delta, kind);
    return;
  }
  entries_[it->second].value += delta;
}

bool Metrics::has(const std::string& name) const {
  return index_.find(name) != index_.end();
}

double Metrics::value(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("unknown metric '" + name + "'");
  }
  return entries_[it->second].value;
}

std::string Metrics::render_compact() const {
  std::string out;
  for (const auto& entry : entries_) {
    if (!out.empty()) {
      out += ' ';
    }
    out += entry.name;
    out += '=';
    out += format_value(entry.value);
  }
  return out;
}

std::string format_value(double value) {
  char buffer[64];
  // Counters are integral doubles well inside 2^53; print them as the
  // integers they are so registry output matches the u64 fields the
  // values came from.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  }
  return buffer;
}

void fill(Metrics& metrics, const sim::PerfCounters& perf) {
  auto u = [](std::uint64_t v) { return static_cast<double>(v); };
  // Hot-path lanes, in the bas-perf cell order.
  metrics.set("steps", u(perf.steps));
  metrics.set("battery_draws", u(perf.battery_draws));
  metrics.set("battery_interval_advances", u(perf.battery_interval_advances));
  metrics.set("candidates_scored", u(perf.candidates_scored));
  metrics.set("scratch_grows", u(perf.scratch_grows));
  metrics.set("events_popped", u(perf.events_popped));
  metrics.set("ticks_skipped", u(perf.ticks_skipped));
  metrics.set("edf_incremental_ops", u(perf.edf_incremental_ops));
  // Battery kernel counters (k_*), in bas-perf cell order.
  const auto& k = perf.kernel;
  metrics.set("k_exp_sweeps", u(k.exp_sweeps));
  metrics.set("k_exp_calls", u(k.exp_calls));
  metrics.set("k_decay_hits", u(k.decay_hits));
  metrics.set("k_decay_misses", u(k.decay_misses));
  metrics.set("k_gain_hits", u(k.gain_hits));
  metrics.set("k_gain_misses", u(k.gain_misses));
  metrics.set("k_kibam_shared_exps", u(k.kibam_shared_exps));
  metrics.set("k_pow_hits", u(k.pow_hits));
  metrics.set("k_pow_misses", u(k.pow_misses));
  metrics.set("k_batch_calls", u(k.batch_calls));
  metrics.set("k_batch_lanes", u(k.batch_lanes));
  metrics.set("k_fast_advances", u(k.fast_advances));
  // Phase profile (ph_*), in phase order; all zero unless the build
  // compiled BAS_PROFILE in and the run recorded perf counters.
  std::uint64_t laps = 0;
  for (int p = 0; p < kPhaseCount; ++p) {
    metrics.set(phase_field(static_cast<Phase>(p)),
                u(perf.phases.ns[p]));
    laps += perf.phases.laps[p];
  }
  metrics.set("ph_laps", u(laps));
}

void fill(Metrics& metrics, const store::WriterStats& stats) {
  auto u = [](std::uint64_t v) { return static_cast<double>(v); };
  metrics.set("store_enqueued", u(stats.enqueued));
  metrics.set("store_written", u(stats.written));
  metrics.set("store_batches", u(stats.batches));
  metrics.set("store_stalls", u(stats.stalls));
  metrics.set("store_dropped", u(stats.dropped));
  metrics.set("store_queue_depth", static_cast<double>(stats.depth),
              MetricKind::kGauge);
  metrics.set("store_queue_peak", static_cast<double>(stats.high_water),
              MetricKind::kGauge);
  metrics.set("store_queue_capacity", static_cast<double>(stats.capacity),
              MetricKind::kGauge);
}

}  // namespace bas::obs
