#include "obs/profiler.hpp"

#include "obs/trace_log.hpp"

namespace bas::obs {

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "queue-ops",      "incremental-maint", "bookkeeping",
    "dvs-select",     "candidate-build",   "estimate-score",
    "select",         "battery-advance"};

constexpr const char* kPhaseFields[kPhaseCount] = {
    "ph_queue_ops_ns",      "ph_incremental_maint_ns",
    "ph_bookkeeping_ns",    "ph_dvs_select_ns",
    "ph_candidate_build_ns", "ph_estimate_score_ns",
    "ph_select_ns",         "ph_battery_advance_ns"};

}  // namespace

const char* phase_name(Phase phase) {
  return kPhaseNames[static_cast<int>(phase)];
}

const char* phase_field(Phase phase) {
  return kPhaseFields[static_cast<int>(phase)];
}

#if BAS_PROFILE

PhaseClock::PhaseClock(PhaseProfile* profile, TraceLog* log)
    : enabled_(profile != nullptr || log != nullptr),
      profile_(profile),
      log_(log) {
  if (enabled_) {
    tick_epoch_ = tick_now();
    wall_epoch_ = std::chrono::steady_clock::now();
    last_ = tick_epoch_;
    if (log_ != nullptr) {
      log_last_us_ = log_->now_us();
    }
  }
}

void PhaseClock::lap_log(Phase phase) {
  if (logged_spans_ >= kMaxLoggedSpans) {
    return;
  }
  ++logged_spans_;
  const double now_us = log_->now_us();
  log_->span(phase_name(phase), kProfilerPid, 0, log_last_us_,
             now_us - log_last_us_);
  log_last_us_ = now_us;
}

void PhaseClock::finish() {
  if (!enabled_ || finished_) {
    return;
  }
  finished_ = true;
  if (profile_ == nullptr) {
    return;
  }
  // Run-level calibration: ns per tick measured over the whole run, so
  // the hot path accumulated raw TSC ticks without ever converting.
  // (With the steady_clock fallback ticks already are ns and the ratio
  // is ~1; the calibration still holds exactly.)
  const std::uint64_t tick_span = tick_now() - tick_epoch_;
  const double wall_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - wall_epoch_)
          .count();
  const double ns_per_tick =
      tick_span > 0 ? wall_ns / static_cast<double>(tick_span) : 0.0;
  for (int p = 0; p < kPhaseCount; ++p) {
    profile_->ns[p] +=
        static_cast<std::uint64_t>(static_cast<double>(ticks_[p]) *
                                   ns_per_tick);
    profile_->laps[p] += profile_scratch_.laps[p];
  }
}

#endif  // BAS_PROFILE

}  // namespace bas::obs
