#include "analysis/compare.hpp"

namespace bas::analysis {

std::vector<SchemeOutcome> compare_schemes(
    const tg::TaskGraphSet& set, const dvs::Processor& proc,
    const std::vector<core::SchemeKind>& kinds, const sim::SimConfig& config,
    const bat::Battery* battery_prototype) {
  std::vector<SchemeOutcome> outcomes;
  outcomes.reserve(kinds.size());
  for (const auto kind : kinds) {
    core::Scheme scheme = core::make_scheme(kind, proc.fmax_hz(), config.seed);
    sim::Simulator sim(set, proc, scheme, config);
    if (battery_prototype != nullptr) {
      const auto battery = battery_prototype->fresh_clone();
      outcomes.push_back({scheme.name, sim.run(battery.get())});
    } else {
      outcomes.push_back({scheme.name, sim.run()});
    }
  }
  return outcomes;
}

tg::TaskGraphSet strip_precedence(const tg::TaskGraphSet& set) {
  tg::TaskGraphSet out;
  for (const auto& g : set) {
    tg::TaskGraph copy(g.period(), g.name());
    for (tg::NodeId id = 0; id < g.node_count(); ++id) {
      copy.add_node(g.node(id).wcet_cycles, g.node(id).name);
    }
    out.add(std::move(copy));
  }
  return out;
}

double near_optimal_energy_j(const tg::TaskGraphSet& set,
                             const dvs::Processor& proc,
                             const sim::SimConfig& config) {
  const auto independent = strip_precedence(set);
  core::Scheme scheme = core::make_custom_scheme(
      "near-optimal", dvs::make_la_edf(proc.fmax_hz()),
      sched::make_pubs_priority(), sched::make_oracle_estimator(),
      core::ReadyScope::kAllReleased);
  sim::Simulator sim(independent, proc, scheme, config);
  return sim.run().energy_j;
}

}  // namespace bas::analysis
