#pragma once
// Scheme comparison harnesses shared by the bench binaries and the
// integration tests: run several schemes over the same workload with
// common random numbers, with or without a battery in the loop.

#include <string>
#include <vector>

#include "battery/model.hpp"
#include "core/scheme.hpp"
#include "dvs/processor.hpp"
#include "sim/simulator.hpp"
#include "taskgraph/set.hpp"

namespace bas::analysis {

struct SchemeOutcome {
  std::string scheme;
  sim::SimResult result;
};

/// Runs each named scheme on the same workload/processor/config. When
/// `battery_prototype` is non-null a fresh clone is discharged per
/// scheme (Table 2 mode); otherwise runs are energy-only (Figure 6
/// mode). Results are returned in the order of `kinds`.
std::vector<SchemeOutcome> compare_schemes(
    const tg::TaskGraphSet& set, const dvs::Processor& proc,
    const std::vector<core::SchemeKind>& kinds, const sim::SimConfig& config,
    const bat::Battery* battery_prototype = nullptr);

/// Same-structure workload with every precedence edge removed — the
/// paper's "near optimal schedule obtained by removing precedence
/// constraints within the taskgraphs" reference for Figure 6.
tg::TaskGraphSet strip_precedence(const tg::TaskGraphSet& set);

/// Energy of the near-optimal reference: precedence stripped, laEDF,
/// pUBS with a clairvoyant estimator over all released graphs.
double near_optimal_energy_j(const tg::TaskGraphSet& set,
                             const dvs::Processor& proc,
                             const sim::SimConfig& config);

}  // namespace bas::analysis
