#pragma once
// Deterministic pseudo-random number generation for all simulations.
//
// Every stochastic component of the library draws from an explicitly seeded
// bas::util::Rng so that experiments are bit-reproducible, and so that
// scheme comparisons can use common random numbers: the actual computation
// of (set seed, graph, instance, node) is derived by hashing those
// coordinates rather than by consuming a shared stream (see derive()).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>

namespace bas::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
///
/// Fast, high-quality, 2^256-1 period. Not cryptographic; plenty for
/// simulation. All distribution helpers are convenience wrappers that
/// consume exactly one or two raw draws, keeping replay stable.
class Rng {
 public:
  /// Seeds the four-word state by running SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi (returns lo when equal).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Uniform size_t in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed draw with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Normal draw (Box-Muller, consumes two uniforms every call).
  double normal(double mean, double stddev) noexcept;

  /// Derives an independent generator for a sub-stream. Mixing is by
  /// SplitMix64 over (state fingerprint, tag), so derive(a) and derive(b)
  /// are decorrelated for a != b and stable across runs.
  [[nodiscard]] Rng derive(std::uint64_t tag) const noexcept;

  /// Stateless 64-bit mix of two values (SplitMix64 finalizer over a
  /// boost-style combine). Used to key per-(graph, instance, node) draws.
  static std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

  /// Stateless SplitMix64 finalizer.
  static std::uint64_t mix(std::uint64_t x) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Folds `tags` into `base` with Rng::hash_combine — the canonical way to
/// derive a sub-experiment seed from grid coordinates (scheme index,
/// replicate number, ...). Pure and stateless, so the result depends only
/// on the coordinates: two jobs with equal coordinates get equal seeds on
/// every platform and for any thread count.
std::uint64_t derive_seed(std::uint64_t base, const std::uint64_t* tags,
                          std::size_t count) noexcept;
std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> tags) noexcept;

}  // namespace bas::util
