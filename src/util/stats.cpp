#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bas::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Sample::mean() const noexcept {
  if (values_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double v : values_) {
    s += v;
  }
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const noexcept {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Sample::min() const noexcept {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const noexcept {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::quantile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace bas::util
