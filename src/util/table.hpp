#pragma once
// ASCII table rendering for the benchmark harnesses: every bench binary
// prints the same rows the paper's tables/figures report, via this helper.

#include <string>
#include <vector>

namespace bas::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendered with a header rule, e.g.
///
///   # of tasks  Random  LTF    pUBS
///   ----------  ------  -----  -----
///   5           1.32    1.25   1.05
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 2);
  /// Formats an integer.
  static std::string num(long long value);

  /// Renders the table to a string (trailing newline included).
  std::string str() const;

  /// Renders to stdout.
  void print() const;

  /// Writes the table as CSV (headers + rows) to the given path.
  /// Throws std::runtime_error when the file cannot be opened.
  void write_csv(const std::string& path) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner:  ==== title ====
void print_banner(const std::string& title);

}  // namespace bas::util
