#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace bas::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::num(long long value) { return std::to_string(value); }

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  emit_row(rule);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::print() const { std::cout << str(); }

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Table::write_csv: cannot open " + path);
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << csv_escape(cells[c]);
      if (c + 1 < cells.size()) {
        out << ',';
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

void print_banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

}  // namespace bas::util
