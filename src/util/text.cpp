#include "util/text.hpp"

#include <cstdio>

namespace bas::util {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    out += (out.empty() ? "" : ", ") + item;
  }
  return out;
}

std::string format_g17(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace bas::util
