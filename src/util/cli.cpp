#include "util/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace bas::util {

Cli::Cli(int argc, const char* const* argv,
         std::map<std::string, std::string> defaults)
    : values_(std::move(defaults)) {
  // Flag-ness is fixed by the declared default, never by the current
  // value — a value option that happens to hold "0"/"1" (e.g. --seed 1)
  // must still consume `--seed 7`'s argument.
  for (const auto& [key, value] : values_) {
    if (value == "false" || value == "true") {
      flags_.push_back(key);
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = values_.find(name);
    if (it == values_.end()) {
      std::ostringstream msg;
      msg << "unknown option --" << name << " (known options:";
      for (const auto& [key, unused] : values_) {
        msg << " --" << key;
      }
      msg << ")";
      throw std::runtime_error(msg.str());
    }
    const bool is_flag =
        std::find(flags_.begin(), flags_.end(), name) != flags_.end();
    if (!has_value) {
      if (is_flag) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::runtime_error("option --" + name + " expects a value");
      }
    }
    it->second = value;
  }
}

std::map<std::string, std::string> Cli::with_bench_defaults(
    std::map<std::string, std::string> defaults) {
  defaults.emplace("jobs", "auto");
  defaults.emplace("csv", "");
  defaults.emplace("shard", "");
  defaults.emplace("cache", "");
  defaults.emplace("store", "jsonl");
  defaults.emplace("cache-compact", "false");
  defaults.emplace("merge", "false");
  defaults.emplace("progress", "false");
  defaults.emplace("progress-interval", "0.5");
  defaults.emplace("trace-out", "");
  defaults.emplace("job-timeout", "0");
  defaults.emplace("job-attempts", "1");
  defaults.emplace("keep-going", "false");
  return defaults;
}

int Cli::jobs() const {
  const std::string value = get("jobs");
  if (value == "auto" || value == "0") {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  long long parsed = 0;
  std::size_t consumed = 0;
  try {
    parsed = std::stoll(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  // Reject trailing garbage ("4x") and out-of-range counts rather than
  // silently truncating.
  if (consumed != value.size() || parsed < 1 || parsed > 4096) {
    throw std::runtime_error(
        "option --jobs expects a thread count in [1, 4096] or 'auto', got '" +
        value + "'");
  }
  return static_cast<int>(parsed);
}

bool Cli::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Cli::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::runtime_error("undeclared option --" + name);
  }
  return it->second;
}

long long Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double Cli::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool Cli::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes";
}

std::uint64_t Cli::get_u64(const std::string& name) const {
  return std::stoull(get(name));
}

std::string Cli::summary() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    // Unset optional values would render as a bare "--key" and make the
    // banner ambiguous to paste back; the empty string is their default.
    if (value.empty()) {
      continue;
    }
    if (!first) {
      out << ' ';
    }
    first = false;
    out << "--" << key << ' ' << value;
  }
  return out.str();
}

std::string Cli::config_summary() const {
  // --store, --job-timeout, --job-attempts and --keep-going are engine
  // flags too: they change how jobs execute and persist, never what a
  // job computes, so switching backend or adding retries must not
  // invalidate a store full of results.
  // Flags that steer execution, reporting or storage without changing
  // any job's output — excluded from the cache-keying summary.
  static const char* const kEngineFlags[] = {
      "jobs",        "csv",          "shard",        "cache",
      "store",       "cache-compact", "merge",       "progress",
      "progress-interval",            "trace-out",
      "job-timeout", "job-attempts", "keep-going",   "list-scenarios"};
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (std::find_if(std::begin(kEngineFlags), std::end(kEngineFlags),
                     [&key](const char* flag) { return key == flag; }) !=
        std::end(kEngineFlags)) {
      continue;
    }
    // Empty values mark unset optional settings (e.g. --scenario.FIELD
    // overrides); leaving them out keeps the cache key stable when a new
    // optional field is introduced.
    if (value.empty()) {
      continue;
    }
    if (!first) {
      out << ' ';
    }
    first = false;
    out << "--" << key << ' ' << value;
  }
  return out.str();
}

}  // namespace bas::util
