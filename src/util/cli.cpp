#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace bas::util {

Cli::Cli(int argc, const char* const* argv,
         std::map<std::string, std::string> defaults)
    : values_(std::move(defaults)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = values_.find(name);
    if (it == values_.end()) {
      throw std::runtime_error("unknown option --" + name);
    }
    const bool is_flag = it->second == "0" || it->second == "1";
    if (!has_value) {
      if (is_flag) {
        value = "1";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::runtime_error("option --" + name + " expects a value");
      }
    }
    it->second = value;
  }
}

bool Cli::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Cli::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::runtime_error("undeclared option --" + name);
  }
  return it->second;
}

long long Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double Cli::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool Cli::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes";
}

std::uint64_t Cli::get_u64(const std::string& name) const {
  return std::stoull(get(name));
}

std::string Cli::summary() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) {
      out << ' ';
    }
    first = false;
    out << "--" << key << ' ' << value;
  }
  return out.str();
}

}  // namespace bas::util
