#pragma once
// Minimal command-line option parsing for bench/example binaries.
//
// Supported syntax:  --name value | --name=value | --flag
// Unknown options throw, so typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bas::util {

class Cli {
 public:
  /// Parses argv. `defaults` maps option name (without dashes) to a
  /// default value. An option whose default is exactly "false" or
  /// "true" is a boolean flag: bare `--name` sets it to "true" and it
  /// never consumes the following argument (use `--name=false` to
  /// override explicitly). Every other option requires a value.
  /// Unknown options throw std::runtime_error naming the known options.
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> defaults);

  /// Merges the options every sweep-style bench shares into `defaults`
  /// (without overriding caller-provided entries):
  ///   --jobs N     worker threads for the experiment engine
  ///                ("auto" = hardware concurrency; results are
  ///                bit-identical for any value)
  ///   --csv PATH   write aggregated cells as CSV (.json for JSON)
  ///   --shard i/n  execute only slice i of an n-way deterministic job
  ///                partition (cluster fan-out; pair with --cache)
  ///   --cache DIR  campaign store: skip jobs already recorded under
  ///                DIR, append fresh results as they finish
  ///   --store B    store backend under --cache: "jsonl" (append-only
  ///                files, the default) or "sqlite" (one shared
  ///                campaign.sqlite); merge output is byte-identical
  ///                across backends
  ///   --cache-compact
  ///                before loading, rewrite the store in place: dedupe
  ///                re-run jobs, drop stale-fingerprint records, VACUUM
  ///                sqlite (requires --cache; composes with --merge;
  ///                refuses while another writer process is live)
  ///   --merge      fold the complete result from the store alone
  ///                (combines shard outputs; requires --cache)
  ///   --progress   report jobs-done/total, ETA and writer-queue stats
  ///                to stderr
  ///   --progress-interval S
  ///                seconds between progress heartbeat lines (default
  ///                0.5; <= 0 prints on every finished job)
  ///   --trace-out PATH
  ///                write a Chrome-trace-event JSON of the campaign
  ///                (per-job spans per worker, retry/steal markers,
  ///                writer queue depth) — load in Perfetto or
  ///                chrome://tracing; purely observational
  ///   --job-timeout S
  ///                per-job wall-clock deadline in seconds (0 = off)
  ///   --job-attempts N
  ///                attempts per job before it counts as failed
  ///   --keep-going record permanently failed jobs as error rows and
  ///                finish the shard instead of aborting
  static std::map<std::string, std::string> with_bench_defaults(
      std::map<std::string, std::string> defaults);

  /// Resolved worker-thread count from --jobs: "auto" (or "0") maps to
  /// the hardware concurrency; anything else must be an integer in
  /// [1, 4096] or std::runtime_error is thrown.
  int jobs() const;

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  std::uint64_t get_u64(const std::string& name) const;

  /// Positional arguments (anything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders "--key value" pairs of the effective configuration, for
  /// reproducibility banners at the top of each bench's output. Options
  /// whose value is empty (unset optional settings) are left out.
  std::string summary() const;

  /// summary() minus the engine/campaign flags (--jobs, --csv, --shard,
  /// --cache, --store, --merge, --progress, --progress-interval,
  /// --trace-out, --job-timeout,
  /// --job-attempts, --keep-going, --list-scenarios) and minus options
  /// whose value is empty (unset optional settings, e.g. unused
  /// --scenario.FIELD overrides) — exactly the options that can alter
  /// job outputs. Feed it to ExperimentSpec::config so the campaign
  /// store is invalidated when any driver parameter changes, while
  /// sharded, resumed, differently-threaded and differently-backed runs
  /// of one sweep still share a fingerprint.
  std::string config_summary() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bas::util
