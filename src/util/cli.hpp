#pragma once
// Minimal command-line option parsing for bench/example binaries.
//
// Supported syntax:  --name value | --name=value | --flag
// Unknown options throw, so typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bas::util {

class Cli {
 public:
  /// Parses argv. `spec` maps option name (without dashes) to a default
  /// value; the empty string marks a boolean flag (value "0"/"1").
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> defaults);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  std::uint64_t get_u64(const std::string& name) const;

  /// Positional arguments (anything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders "--key value" pairs of the effective configuration, for
  /// reproducibility banners at the top of each bench's output.
  std::string summary() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bas::util
