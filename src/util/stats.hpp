#pragma once
// Small statistics toolkit used by the benchmark harnesses and tests.

#include <cstddef>
#include <vector>

namespace bas::util {

/// Streaming mean/variance accumulator (Welford's algorithm) with min/max.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch statistics over a stored sample (keeps values; offers quantiles).
class Sample {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated quantile, q in [0,1]. Empty sample yields 0.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
};

/// Geometric mean of a sample of positive values; 0 if empty.
double geometric_mean(const std::vector<double>& values);

}  // namespace bas::util
