#pragma once
// Small-N sorting for hot loops.
//
// The scheduling hot path sorts a handful of elements per step (EDF
// order, scored candidates, laEDF's deferral order). Each comparator is
// a strict TOTAL order — every tie is broken explicitly by an id — so
// any comparison sort produces the same unique sequence std::sort
// would; insertion sort merely skips the introsort dispatch, which
// dominates at these sizes. That output-identity argument is
// load-bearing for the byte-identity contract (EXPERIMENTS.md,
// "Performance"): do not use this with comparators that can tie.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace bas::util {

/// Inserts `value` at its lower_bound position, keeping `v` sorted
/// under `less`. With a strict TOTAL order this grows exactly the
/// unique sorted sequence insertion_sort would produce over the same
/// elements — the property that lets the event engine maintain its EDF
/// order incrementally (one insert per release, one erase per
/// completion) while staying element-for-element identical to a
/// per-step rebuild. The comparator must key every element it is asked
/// to compare by that element's CURRENT sort key.
template <typename T, typename Less>
void insert_sorted(std::vector<T>& v, const T& value, Less less) {
  v.insert(std::lower_bound(v.begin(), v.end(), value, less), value);
}

template <typename T, typename Less>
void insertion_sort(std::vector<T>& v, Less less) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    T key = std::move(v[i]);
    std::size_t j = i;
    while (j > 0 && less(key, v[j - 1])) {
      v[j] = std::move(v[j - 1]);
      --j;
    }
    v[j] = std::move(key);
  }
}

}  // namespace bas::util
