#include "util/rng.hpp"

#include <cmath>

namespace bas::util {

namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += kSplitMixGamma;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64_next(sm);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // Top 53 bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(next_u64() % n);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    next_u64();  // keep the stream position deterministic
    return false;
  }
  if (p >= 1.0) {
    next_u64();
    return true;
  }
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng Rng::derive(std::uint64_t tag) const noexcept {
  const std::uint64_t fingerprint =
      hash_combine(hash_combine(s_[0], s_[1]), hash_combine(s_[2], s_[3]));
  return Rng(hash_combine(fingerprint, tag));
}

std::uint64_t Rng::hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix(a ^ (b + kSplitMixGamma + (a << 6) + (a >> 2)));
}

std::uint64_t Rng::mix(std::uint64_t x) noexcept {
  x += kSplitMixGamma;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, const std::uint64_t* tags,
                          std::size_t count) noexcept {
  std::uint64_t seed = Rng::mix(base);
  for (std::size_t i = 0; i < count; ++i) {
    seed = Rng::hash_combine(seed, tags[i]);
  }
  return seed;
}

std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> tags) noexcept {
  return derive_seed(base, tags.begin(), tags.size());
}

}  // namespace bas::util
