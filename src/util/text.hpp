#pragma once
// Small shared text helpers used across layers (arrival, scenario,
// exp): label-list joining for "unknown X (known: ...)" error messages
// and the repo's canonical %.17g double rendering. One definition each
// keeps error-message and serialization formats from drifting between
// hand-rolled copies.

#include <string>
#include <vector>

namespace bas::util {

/// ", "-joined items — the error-message idiom for listing valid
/// registry labels.
std::string join(const std::vector<std::string>& items);

/// %.17g: the shortest fixed precision that round-trips every finite
/// double. The canonical rendering for fingerprints and machine
/// outputs (exp::format_double forwards here; the cache/sink
/// byte-identity contracts depend on them never diverging).
std::string format_g17(double value);

}  // namespace bas::util
