#pragma once
// Workload construction: turns a bag of random task graphs into a
// periodic task-graph set with an exact target worst-case utilization,
// reproducing the paper's setup ("Utilization of the system was kept to
// 70%", §5).

#include "taskgraph/set.hpp"
#include "tgff/generator.hpp"
#include "util/rng.hpp"

namespace bas::tgff {

struct WorkloadParams {
  /// Number of task graphs in the set.
  int graph_count = 3;
  /// Node count per graph drawn uniformly from [min_nodes, max_nodes]
  /// (the paper's sets use graphs of 5..15 nodes).
  int min_nodes = 5;
  int max_nodes = 15;
  /// Target worst-case utilization at fmax (0 < u <= 1).
  double target_utilization = 0.7;
  /// Maximum processor frequency the utilization refers to.
  double fmax_hz = 1.0e9;
  /// Periods drawn log-uniformly from [period_lo_s, period_hi_s]; node
  /// wcets are then rescaled so the set hits the target utilization
  /// exactly while the random structure and relative wcets are kept.
  double period_lo_s = 0.1;
  double period_hi_s = 1.0;
  /// How unevenly utilization is split across graphs: each graph gets a
  /// weight drawn from [1, 1 + utilization_spread].
  double utilization_spread = 0.5;
  /// Structural knobs forwarded to the graph generator.
  GeneratorParams shape;
};

/// Builds a validated periodic task-graph set hitting the target
/// utilization exactly (up to floating-point rounding).
tg::TaskGraphSet make_workload(const WorkloadParams& params, util::Rng& rng);

/// Convenience: the paper's evaluation workload — `graph_count` graphs of
/// 5..15 nodes at 70% utilization on a 1 GHz-max processor.
tg::TaskGraphSet paper_workload(int graph_count, util::Rng& rng);

}  // namespace bas::tgff
