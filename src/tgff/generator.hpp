#pragma once
// Random task-graph generation in the style of TGFF (Dick & Wolf,
// "Task Graphs For Free"), which the paper uses for all its workloads.
// The original tool is not available offline, so this module reimplements
// its fan-in/fan-out growth method plus two structured alternatives with
// equivalent knobs. See DESIGN.md §5 (substitutions).

#include "taskgraph/graph.hpp"
#include "util/rng.hpp"

namespace bas::tgff {

enum class Method {
  /// TGFF's method: grow the DAG by alternating fan-out expansions from
  /// nodes with spare out-degree and fan-in merges of existing nodes.
  kFanInFanOut,
  /// Nodes arranged in layers; every node in layer l>0 gets at least one
  /// predecessor in layer l-1 plus extra random back edges.
  kLayered,
  /// Random series-parallel graph (single source/sink), a common shape
  /// for media pipelines.
  kSeriesParallel,
};

struct GeneratorParams {
  int node_count = 10;
  Method method = Method::kFanInFanOut;
  /// Degree bounds (respected by kFanInFanOut and kLayered).
  int max_out_degree = 3;
  int max_in_degree = 3;
  /// Worst-case cycles drawn uniformly from [wcet_lo, wcet_hi]
  /// ("the worst case computation of each node was chosen randomly
  /// following a uniform distribution", paper §5).
  double wcet_lo_cycles = 1.0e6;
  double wcet_hi_cycles = 1.0e7;
  /// kLayered: probability of an extra edge from any earlier layer.
  double edge_density = 0.25;
  /// kLayered: target number of layers; <=0 picks ~sqrt(node_count).
  int layer_count = 0;
};

/// Generates one random task graph (period left at 0; assign it via the
/// workload builder or set_period). The result is validated acyclic.
/// Throws std::invalid_argument for nonsensical parameters.
tg::TaskGraph generate(const GeneratorParams& params, util::Rng& rng);

}  // namespace bas::tgff
