#include "tgff/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace bas::tgff {

namespace {

double draw_wcet(const GeneratorParams& p, util::Rng& rng) {
  return rng.uniform(p.wcet_lo_cycles, p.wcet_hi_cycles);
}

void check_params(const GeneratorParams& p) {
  if (p.node_count < 1) {
    throw std::invalid_argument("generator: node_count must be >= 1");
  }
  if (p.max_out_degree < 1 || p.max_in_degree < 1) {
    throw std::invalid_argument("generator: degree bounds must be >= 1");
  }
  if (!(p.wcet_lo_cycles > 0.0) || p.wcet_hi_cycles < p.wcet_lo_cycles) {
    throw std::invalid_argument("generator: bad wcet range");
  }
  if (p.edge_density < 0.0 || p.edge_density > 1.0) {
    throw std::invalid_argument("generator: edge_density must be in [0,1]");
  }
}

tg::TaskGraph generate_fanio(const GeneratorParams& p, util::Rng& rng) {
  tg::TaskGraph g;
  std::vector<int> out_degree;
  std::vector<int> in_degree;
  auto new_node = [&] {
    out_degree.push_back(0);
    in_degree.push_back(0);
    return g.add_node(draw_wcet(p, rng));
  };
  new_node();  // root
  while (static_cast<int>(g.node_count()) < p.node_count) {
    const bool fan_out = rng.bernoulli(0.5);
    if (fan_out) {
      // Pick a parent with spare out-degree; attach a random-width fan.
      std::vector<tg::NodeId> parents;
      for (tg::NodeId id = 0; id < g.node_count(); ++id) {
        if (out_degree[id] < p.max_out_degree) {
          parents.push_back(id);
        }
      }
      if (parents.empty()) {
        continue;  // fall through to another iteration (fan-in next time)
      }
      const tg::NodeId parent = parents[rng.index(parents.size())];
      const int room = p.max_out_degree - out_degree[parent];
      const int remaining = p.node_count - static_cast<int>(g.node_count());
      const int width = std::min(rng.uniform_int(1, room), remaining);
      for (int k = 0; k < width; ++k) {
        const tg::NodeId child = new_node();
        g.add_edge(parent, child);
        ++out_degree[parent];
        ++in_degree[child];
      }
    } else {
      // Fan-in: a new node joining several existing branches.
      std::vector<tg::NodeId> eligible;
      for (tg::NodeId id = 0; id < g.node_count(); ++id) {
        if (out_degree[id] < p.max_out_degree) {
          eligible.push_back(id);
        }
      }
      if (eligible.empty()) {
        continue;
      }
      const int fan =
          std::min<int>(rng.uniform_int(1, p.max_in_degree),
                        static_cast<int>(eligible.size()));
      const tg::NodeId merge = new_node();
      // Sample `fan` distinct parents (partial Fisher-Yates).
      for (int k = 0; k < fan; ++k) {
        const std::size_t pick =
            k + rng.index(eligible.size() - static_cast<std::size_t>(k));
        std::swap(eligible[k], eligible[pick]);
        g.add_edge(eligible[k], merge);
        ++out_degree[eligible[k]];
        ++in_degree[merge];
      }
    }
  }
  return g;
}

tg::TaskGraph generate_layered(const GeneratorParams& p, util::Rng& rng) {
  tg::TaskGraph g;
  const int n = p.node_count;
  int layer_count = p.layer_count;
  if (layer_count <= 0) {
    layer_count = std::max(1, static_cast<int>(std::lround(std::sqrt(n))));
  }
  layer_count = std::min(layer_count, n);

  // Assign every node a layer; guarantee each layer is non-empty by
  // seeding one node per layer, then spreading the rest at random.
  std::vector<int> layer_of(n, 0);
  for (int i = 0; i < layer_count; ++i) {
    layer_of[i] = i;
  }
  for (int i = layer_count; i < n; ++i) {
    layer_of[i] = rng.uniform_int(0, layer_count - 1);
  }
  std::vector<std::vector<tg::NodeId>> layers(layer_count);
  for (int i = 0; i < n; ++i) {
    const tg::NodeId id = g.add_node(draw_wcet(p, rng));
    layers[layer_of[i]].push_back(id);
  }
  std::vector<int> in_degree(n, 0);
  std::vector<int> out_degree(n, 0);
  for (int l = 1; l < layer_count; ++l) {
    for (tg::NodeId id : layers[l]) {
      // Mandatory edge from the previous layer keeps the DAG connected
      // in depth (every non-root node has a predecessor).
      const auto& prev = layers[l - 1];
      const tg::NodeId parent = prev[rng.index(prev.size())];
      g.add_edge(parent, id);
      ++out_degree[parent];
      ++in_degree[id];
      // Optional extra edges from any earlier layer.
      for (int e = 0; e < l; ++e) {
        if (in_degree[id] >= p.max_in_degree) {
          break;
        }
        if (!rng.bernoulli(p.edge_density)) {
          continue;
        }
        const auto& src_layer = layers[rng.index(static_cast<std::size_t>(l))];
        const tg::NodeId src = src_layer[rng.index(src_layer.size())];
        if (src == parent || out_degree[src] >= p.max_out_degree) {
          continue;
        }
        const std::size_t before = g.edge_count();
        g.add_edge(src, id);
        if (g.edge_count() != before) {
          ++out_degree[src];
          ++in_degree[id];
        }
      }
    }
  }
  return g;
}

tg::TaskGraph generate_series_parallel(const GeneratorParams& p,
                                       util::Rng& rng) {
  // Start from the two-node chain source->sink and repeatedly apply a
  // series split (insert a node on an edge) or a parallel split
  // (duplicate an edge through a fresh node) until node_count is reached.
  tg::TaskGraph g;
  const tg::NodeId source = g.add_node(draw_wcet(p, rng), "src");
  if (p.node_count == 1) {
    return g;
  }
  const tg::NodeId sink = g.add_node(draw_wcet(p, rng), "sink");
  struct Edge {
    tg::NodeId from, to;
  };
  std::vector<Edge> edges{{source, sink}};
  std::vector<Edge> final_edges;
  while (static_cast<int>(g.node_count()) < p.node_count) {
    const std::size_t pick = rng.index(edges.size());
    const Edge e = edges[pick];
    edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(pick));
    const tg::NodeId mid = g.add_node(draw_wcet(p, rng));
    if (rng.bernoulli(0.5)) {
      // Series: from -> mid -> to replaces from -> to.
      edges.push_back({e.from, mid});
      edges.push_back({mid, e.to});
    } else {
      // Parallel: keep from -> to and add from -> mid -> to.
      final_edges.push_back(e);
      edges.push_back({e.from, mid});
      edges.push_back({mid, e.to});
    }
  }
  for (const Edge& e : edges) {
    g.add_edge(e.from, e.to);
  }
  for (const Edge& e : final_edges) {
    g.add_edge(e.from, e.to);
  }
  return g;
}

}  // namespace

tg::TaskGraph generate(const GeneratorParams& params, util::Rng& rng) {
  check_params(params);
  tg::TaskGraph g;
  switch (params.method) {
    case Method::kFanInFanOut:
      g = generate_fanio(params, rng);
      break;
    case Method::kLayered:
      g = generate_layered(params, rng);
      break;
    case Method::kSeriesParallel:
      g = generate_series_parallel(params, rng);
      break;
  }
  g.set_period(1.0);  // placeholder; workload builder reassigns
  g.validate();
  return g;
}

}  // namespace bas::tgff
