#include "tgff/workload.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace bas::tgff {

tg::TaskGraphSet make_workload(const WorkloadParams& params, util::Rng& rng) {
  if (params.graph_count < 1) {
    throw std::invalid_argument("make_workload: graph_count must be >= 1");
  }
  // Worst-case utilization above 1 is allowed (up to 2): the paper's
  // evaluation keeps the *actual* utilization at 70%, which with actuals
  // in U(0.2, 1.0)*wc puts the worst-case utilization near 1.17. EDF's
  // worst-case guarantee no longer holds there; the simulator reports
  // any misses that materialize.
  if (!(params.target_utilization > 0.0) || params.target_utilization > 2.0) {
    throw std::invalid_argument(
        "make_workload: target_utilization must be in (0, 2]");
  }
  if (params.min_nodes < 1 || params.max_nodes < params.min_nodes) {
    throw std::invalid_argument("make_workload: bad node-count range");
  }
  if (!(params.period_lo_s > 0.0) || params.period_hi_s < params.period_lo_s) {
    throw std::invalid_argument("make_workload: bad period range");
  }

  // Random utilization shares.
  std::vector<double> weights(static_cast<std::size_t>(params.graph_count));
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = rng.uniform(1.0, 1.0 + std::max(0.0, params.utilization_spread));
    weight_sum += w;
  }

  tg::TaskGraphSet set;
  for (int i = 0; i < params.graph_count; ++i) {
    GeneratorParams shape = params.shape;
    shape.node_count = rng.uniform_int(params.min_nodes, params.max_nodes);
    tg::TaskGraph g = generate(shape, rng);

    // Log-uniform period in [lo, hi].
    const double log_lo = std::log(params.period_lo_s);
    const double log_hi = std::log(params.period_hi_s);
    const double period = std::exp(rng.uniform(log_lo, log_hi));
    g.set_period(period);
    g.set_name("G" + std::to_string(i));

    // Rescale wcets so this graph contributes exactly its share:
    //   u_i = target * w_i / sum(w)  =  (WC_i / fmax) / period_i
    const double u_i = params.target_utilization *
                       weights[static_cast<std::size_t>(i)] / weight_sum;
    const double wanted_cycles = u_i * params.fmax_hz * period;
    const double factor = wanted_cycles / g.total_wcet_cycles();
    g.scale_wcet(factor);

    set.add(std::move(g));
  }
  set.validate();
  return set;
}

tg::TaskGraphSet paper_workload(int graph_count, util::Rng& rng) {
  WorkloadParams p;
  p.graph_count = graph_count;
  p.min_nodes = 5;
  p.max_nodes = 15;
  p.target_utilization = 0.7;
  p.fmax_hz = 1.0e9;
  return make_workload(p, rng);
}

}  // namespace bas::tgff
