#include "tgff/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bas::tgff {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("tgff parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

void write_tgff(std::ostream& out, const tg::TaskGraphSet& set) {
  out << "# bas task-graph set: " << set.size() << " graphs, "
      << set.total_nodes() << " tasks\n";
  out << std::setprecision(17);
  for (const auto& g : set) {
    out << "@TASKGRAPH " << (g.name().empty() ? "G" : g.name()) << " PERIOD "
        << g.period() << "\n";
    for (tg::NodeId id = 0; id < g.node_count(); ++id) {
      out << "  TASK " << g.node(id).name << " WCET "
          << g.node(id).wcet_cycles << "\n";
    }
    for (tg::NodeId id = 0; id < g.node_count(); ++id) {
      for (tg::NodeId succ : g.successors(id)) {
        out << "  ARC " << id << " " << succ << "\n";
      }
    }
    out << "@END\n";
  }
}

std::string to_tgff_string(const tg::TaskGraphSet& set) {
  std::ostringstream out;
  write_tgff(out, set);
  return out.str();
}

tg::TaskGraphSet parse_tgff(std::istream& in) {
  tg::TaskGraphSet set;
  std::string line;
  std::size_t line_no = 0;
  bool in_graph = false;
  tg::TaskGraph current;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) {
      continue;  // blank/comment line
    }
    if (keyword == "@TASKGRAPH") {
      if (in_graph) {
        fail(line_no, "@TASKGRAPH inside another graph (missing @END?)");
      }
      std::string name;
      std::string period_kw;
      double period = 0.0;
      if (!(tokens >> name >> period_kw >> period) || period_kw != "PERIOD") {
        fail(line_no, "expected '@TASKGRAPH <name> PERIOD <seconds>'");
      }
      current = tg::TaskGraph(period, name);
      in_graph = true;
    } else if (keyword == "TASK") {
      if (!in_graph) {
        fail(line_no, "TASK outside @TASKGRAPH");
      }
      std::string name;
      std::string wcet_kw;
      double wcet = 0.0;
      if (!(tokens >> name >> wcet_kw >> wcet) || wcet_kw != "WCET") {
        fail(line_no, "expected 'TASK <name> WCET <cycles>'");
      }
      current.add_node(wcet, name);
    } else if (keyword == "ARC") {
      if (!in_graph) {
        fail(line_no, "ARC outside @TASKGRAPH");
      }
      long long from = -1;
      long long to = -1;
      if (!(tokens >> from >> to) || from < 0 || to < 0) {
        fail(line_no, "expected 'ARC <from-index> <to-index>'");
      }
      try {
        current.add_edge(static_cast<tg::NodeId>(from),
                         static_cast<tg::NodeId>(to));
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "@END") {
      if (!in_graph) {
        fail(line_no, "@END without @TASKGRAPH");
      }
      current.validate();
      set.add(std::move(current));
      current = tg::TaskGraph();
      in_graph = false;
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (in_graph) {
    fail(line_no, "unterminated @TASKGRAPH (missing @END)");
  }
  return set;
}

tg::TaskGraphSet parse_tgff_string(const std::string& text) {
  std::istringstream in(text);
  return parse_tgff(in);
}

void save_tgff_file(const std::string& path, const tg::TaskGraphSet& set) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_tgff_file: cannot open " + path);
  }
  write_tgff(out, set);
}

tg::TaskGraphSet load_tgff_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_tgff_file: cannot open " + path);
  }
  return parse_tgff(in);
}

}  // namespace bas::tgff
