#pragma once
// Text serialization of task-graph sets, in the spirit of TGFF's .tgff
// files: lets workloads be generated once, versioned, and replayed
// across machines/branches, instead of living only behind a seed.
//
// Format (line-oriented, '#' comments, whitespace-separated):
//
//   @TASKGRAPH <name> PERIOD <seconds>
//     TASK <name> WCET <cycles>
//     ARC <from-index> <to-index>
//   @END
//
// Task indices are assignment order within the graph, matching
// tg::NodeId. parse() validates each graph (acyclicity, positive wcets)
// before returning.

#include <iosfwd>
#include <string>

#include "taskgraph/set.hpp"

namespace bas::tgff {

/// Writes the set in the format above (stable across platforms; doubles
/// with 17 significant digits so round-trips are exact).
void write_tgff(std::ostream& out, const tg::TaskGraphSet& set);
std::string to_tgff_string(const tg::TaskGraphSet& set);

/// Parses a task-graph set. Throws std::runtime_error with a line
/// number on malformed input, and std::logic_error when a parsed graph
/// fails validation.
tg::TaskGraphSet parse_tgff(std::istream& in);
tg::TaskGraphSet parse_tgff_string(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_tgff_file(const std::string& path, const tg::TaskGraphSet& set);
tg::TaskGraphSet load_tgff_file(const std::string& path);

}  // namespace bas::tgff
