#include "exp/factories.hpp"

#include <stdexcept>

#include "battery/diffusion.hpp"
#include "battery/ideal.hpp"
#include "battery/kibam.hpp"
#include "battery/peukert.hpp"
#include "battery/stochastic.hpp"

namespace bas::exp {

const std::vector<std::string>& battery_labels() {
  static const std::vector<std::string> labels{
      "ideal", "peukert", "kibam", "diffusion", "stochastic"};
  return labels;
}

std::unique_ptr<bat::Battery> make_battery(const std::string& label) {
  if (label == "ideal") {
    return std::make_unique<bat::IdealBattery>(bat::to_coulombs(2000.0));
  }
  if (label == "peukert") {
    return std::make_unique<bat::PeukertBattery>(
        bat::PeukertParams{bat::to_coulombs(2000.0), 1.2, 0.2});
  }
  if (label == "kibam") {
    return std::make_unique<bat::KibamBattery>(
        bat::KibamParams::paper_aaa_nimh());
  }
  if (label == "diffusion") {
    return std::make_unique<bat::DiffusionBattery>(
        bat::DiffusionParams::paper_aaa_nimh());
  }
  if (label == "stochastic") {
    return std::make_unique<bat::StochasticBattery>(bat::StochasticParams{});
  }
  std::string known;
  for (const auto& l : battery_labels()) {
    known += (known.empty() ? "" : ", ") + l;
  }
  throw std::invalid_argument("unknown battery model '" + label +
                              "' (known: " + known + ")");
}

Axis battery_axis() { return Axis{"battery", battery_labels()}; }

std::vector<std::string> scheme_labels() {
  std::vector<std::string> labels;
  for (const auto kind : core::table2_schemes()) {
    labels.push_back(core::to_string(kind));
  }
  return labels;
}

core::SchemeKind scheme_kind_at(std::size_t i) {
  return core::table2_schemes().at(i);
}

Axis scheme_axis() { return Axis{"scheme", scheme_labels()}; }

}  // namespace bas::exp
