#include "exp/factories.hpp"

#include "arrival/arrival.hpp"
#include "scenario/scenario.hpp"

namespace bas::exp {

const std::vector<std::string>& battery_labels() {
  return scenario::battery_labels();
}

std::unique_ptr<bat::Battery> make_battery(const std::string& label) {
  return scenario::make_battery(label);
}

Axis battery_axis() { return Axis{"battery", battery_labels()}; }

const std::vector<std::string>& scheme_labels() {
  static const std::vector<std::string> labels = [] {
    std::vector<std::string> out;
    for (const auto kind : core::table2_schemes()) {
      out.push_back(core::to_string(kind));
    }
    return out;
  }();
  return labels;
}

core::SchemeKind scheme_kind_at(std::size_t i) {
  return core::table2_schemes().at(i);
}

Axis scheme_axis() { return Axis{"scheme", scheme_labels()}; }

Axis scenario_axis() { return Axis{"scenario", scenario::scenario_names()}; }

Axis arrival_axis() { return Axis{"arrival", arrival::labels()}; }

}  // namespace bas::exp
