#pragma once
// Declarative experiments: a grid of cells, a fixed set of named
// metrics, and a pure job function evaluated once per (cell, replicate).
// The Runner (runner.hpp) expands the grid into jobs, executes them on a
// thread pool, and folds the per-job metrics into per-cell Accumulators
// in job order — so aggregates are bit-identical for any thread count.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/grid.hpp"
#include "exp/job.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bas::exp {

struct ExperimentSpec {
  /// Shown in error messages and recorded by the JSON sink.
  std::string title;
  Grid grid;
  /// Names of the values every job returns, in order.
  std::vector<std::string> metrics;
  /// Replicates per cell (the paper's "100 random task graph sets").
  int replicates = 1;
  /// Root seed; all job seeds derive from it (see job.hpp).
  std::uint64_t seed = 1;
  /// Extra identity folded into spec_fingerprint() (plan.hpp): driver
  /// parameters the run function captures in its closure (battery
  /// label, horizon, utilization, ...) that change job outputs without
  /// changing grid/metrics/seed. Set it from Cli::config_summary() so
  /// the resume cache is invalidated when any such parameter changes.
  std::string config;

  /// Evaluates one job and returns exactly metrics.size() values. MUST
  /// be thread-safe: build schemes, batteries and workloads locally from
  /// the job's seeds; never mutate state shared between jobs.
  std::function<std::vector<double>(const Job&)> run;

  std::size_t job_count() const {
    return grid.cell_count() * static_cast<std::size_t>(replicates);
  }
};

/// Aggregates of one cell: an Accumulator per metric, fed in replicate
/// order.
struct CellStats {
  std::vector<util::Accumulator> metrics;
};

class ExperimentResult {
 public:
  ExperimentResult(std::string title, Grid grid,
                   std::vector<std::string> metric_names, int replicates);

  const std::string& title() const noexcept { return title_; }
  const Grid& grid() const noexcept { return grid_; }
  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }
  int replicates() const noexcept { return replicates_; }
  std::size_t cell_count() const noexcept { return cells_.size(); }

  /// Index of a metric by name; throws std::out_of_range when absent.
  std::size_t metric_index(const std::string& name) const;

  const util::Accumulator& at(std::size_t cell, std::size_t metric) const;
  const util::Accumulator& at(const std::vector<std::size_t>& coord,
                              std::size_t metric) const {
    return at(grid_.index(coord), metric);
  }

  double mean(std::size_t cell, std::size_t metric) const {
    return at(cell, metric).mean();
  }
  double mean(const std::vector<std::size_t>& coord,
              std::size_t metric) const {
    return at(coord, metric).mean();
  }
  double sum(std::size_t cell, std::size_t metric) const {
    return at(cell, metric).sum();
  }
  double sum(const std::vector<std::size_t>& coord, std::size_t metric) const {
    return at(coord, metric).sum();
  }

  /// Default rendering: one row per cell — axis labels first, then the
  /// mean of every metric with `precision` decimals.
  util::Table table(int precision = 2) const;

  /// Mutable cell access for the Runner's aggregation pass.
  CellStats& cell(std::size_t cell) { return cells_.at(cell); }
  const CellStats& cell(std::size_t cell) const { return cells_.at(cell); }

 private:
  std::string title_;
  Grid grid_;
  std::vector<std::string> metric_names_;
  int replicates_ = 1;
  std::vector<CellStats> cells_;
};

}  // namespace bas::exp
