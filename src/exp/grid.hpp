#pragma once
// Declarative experiment grids.
//
// Every table and figure of the paper is an average over a cross product
// of factors (scheme x battery model x utilization x workload x seed).
// A Grid names those factors as ordered axes of labeled values; the
// cross product defines the cells of a sweep. Cells enumerate in
// row-major order with the LAST axis varying fastest, i.e. exactly like
// the nested for-loops the bench drivers used to hand-roll.

#include <cstddef>
#include <string>
#include <vector>

namespace bas::exp {

/// One experimental factor: a name and the labels of its values. The
/// label is display/CSV text; drivers map the value *index* to objects
/// (schemes, batteries, parameter structs).
struct Axis {
  std::string name;
  std::vector<std::string> labels;

  std::size_t size() const noexcept { return labels.size(); }
};

class Grid {
 public:
  Grid() = default;
  explicit Grid(std::vector<Axis> axes);

  /// Appends an axis; returns *this for chaining. Throws
  /// std::invalid_argument on an empty name or label list.
  Grid& add(std::string name, std::vector<std::string> labels);

  std::size_t axis_count() const noexcept { return axes_.size(); }
  const Axis& axis(std::size_t i) const { return axes_.at(i); }
  const std::vector<Axis>& axes() const noexcept { return axes_; }

  /// Product of axis sizes; 1 for an axis-free grid (a single cell).
  std::size_t cell_count() const noexcept;

  /// Flat cell index -> per-axis value indices (last axis fastest).
  std::vector<std::size_t> coord(std::size_t cell) const;

  /// Inverse of coord(). Throws std::out_of_range on a bad coordinate.
  std::size_t index(const std::vector<std::size_t>& coord) const;

  /// Axis labels of a cell, in axis order.
  std::vector<std::string> labels(std::size_t cell) const;

 private:
  std::vector<Axis> axes_;
};

}  // namespace bas::exp
