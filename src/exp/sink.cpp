#include "exp/sink.hpp"

#include "util/text.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bas::exp {

namespace {

std::string csv_escape(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) {
    return text;
  }
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

const char* const kStats[] = {"count", "mean", "stddev", "min", "max", "sum"};

std::vector<double> stat_values(const util::Accumulator& acc) {
  return {static_cast<double>(acc.count()), acc.mean(), acc.stddev(),
          acc.min(),                        acc.max(),  acc.sum()};
}

}  // namespace

std::string format_double(double value) { return util::format_g17(value); }

std::string to_csv(const ExperimentResult& result) {
  std::ostringstream out;
  bool first = true;
  for (const auto& axis : result.grid().axes()) {
    out << (first ? "" : ",") << csv_escape(axis.name);
    first = false;
  }
  for (const auto& metric : result.metric_names()) {
    for (const auto* stat : kStats) {
      out << (first ? "" : ",") << csv_escape(metric + "_" + stat);
      first = false;
    }
  }
  out << '\n';
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    first = true;
    for (const auto& label : result.grid().labels(c)) {
      out << (first ? "" : ",") << csv_escape(label);
      first = false;
    }
    for (std::size_t m = 0; m < result.metric_names().size(); ++m) {
      for (const double v : stat_values(result.at(c, m))) {
        out << (first ? "" : ",") << format_double(v);
        first = false;
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const ExperimentResult& result) {
  std::ostringstream out;
  out << "{\n  \"title\": \"" << json_escape(result.title()) << "\",\n";
  out << "  \"replicates\": " << result.replicates() << ",\n";
  out << "  \"axes\": [";
  for (std::size_t a = 0; a < result.grid().axis_count(); ++a) {
    const auto& axis = result.grid().axis(a);
    out << (a ? ", " : "") << "{\"name\": \"" << json_escape(axis.name)
        << "\", \"labels\": [";
    for (std::size_t i = 0; i < axis.labels.size(); ++i) {
      out << (i ? ", " : "") << '"' << json_escape(axis.labels[i]) << '"';
    }
    out << "]}";
  }
  out << "],\n  \"metrics\": [";
  for (std::size_t m = 0; m < result.metric_names().size(); ++m) {
    out << (m ? ", " : "") << '"' << json_escape(result.metric_names()[m])
        << '"';
  }
  out << "],\n  \"cells\": [\n";
  for (std::size_t c = 0; c < result.cell_count(); ++c) {
    out << "    {\"coord\": [";
    const auto coord = result.grid().coord(c);
    for (std::size_t i = 0; i < coord.size(); ++i) {
      out << (i ? ", " : "") << coord[i];
    }
    out << "], \"values\": {";
    for (std::size_t m = 0; m < result.metric_names().size(); ++m) {
      out << (m ? ", " : "") << '"' << json_escape(result.metric_names()[m])
          << "\": {";
      const auto values = stat_values(result.at(c, m));
      for (std::size_t s = 0; s < values.size(); ++s) {
        out << (s ? ", " : "") << '"' << kStats[s]
            << "\": " << format_double(values[s]);
      }
      out << '}';
    }
    out << "}}" << (c + 1 < result.cell_count() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

void write(const ExperimentResult& result, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  file << (json ? to_json(result) : to_csv(result));
}

}  // namespace bas::exp
