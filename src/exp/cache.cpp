#include "exp/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "exp/plan.hpp"
#include "exp/sink.hpp"

namespace bas::exp {

namespace {

/// Parses one JSONL record. Returns false (leaving outputs untouched)
/// on anything malformed — the caller treats that as "not cached".
bool parse_record(const std::string& line, const std::string& fp_hex,
                  std::size_t* job_index, std::vector<double>* metrics) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return false;
  }
  const auto fp_at = line.find("\"fp\":\"");
  if (fp_at == std::string::npos ||
      line.compare(fp_at + 6, fp_hex.size(), fp_hex) != 0 ||
      fp_at + 6 + fp_hex.size() >= line.size() ||
      line[fp_at + 6 + fp_hex.size()] != '"') {
    return false;
  }
  const auto job_at = line.find("\"job\":");
  if (job_at == std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const char* cursor = line.c_str() + job_at + 6;
  const unsigned long long index = std::strtoull(cursor, &end, 10);
  if (end == cursor) {
    return false;
  }
  const auto metrics_at = line.find("\"metrics\":[", job_at);
  if (metrics_at == std::string::npos) {
    return false;
  }
  std::vector<double> values;
  cursor = line.c_str() + metrics_at + 11;
  while (*cursor != ']') {
    const double value = std::strtod(cursor, &end);
    if (end == cursor) {
      return false;
    }
    values.push_back(value);
    cursor = end;
    if (*cursor == ',') {
      ++cursor;
    } else if (*cursor != ']') {
      return false;
    }
  }
  *job_index = static_cast<std::size_t>(index);
  *metrics = std::move(values);
  return true;
}

std::string format_record(const std::string& fp_hex, std::size_t job_index,
                          const std::vector<double>& metrics) {
  std::string line =
      "{\"fp\":\"" + fp_hex + "\",\"job\":" + std::to_string(job_index) +
      ",\"metrics\":[";
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    if (m) {
      line += ',';
    }
    line += format_double(metrics[m]);
  }
  line += "]}\n";
  return line;
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t fingerprint,
                         std::string tag)
    : dir_(std::move(dir)), fingerprint_(fingerprint) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create cache directory '" + dir_ +
                             "': " + ec.message());
  }
  write_path_ = dir_ + "/" + fingerprint_hex(fingerprint_) +
                (tag.empty() ? "" : "-" + tag) + ".jsonl";
}

std::map<std::size_t, std::vector<double>> ResultCache::load(
    std::size_t metric_count) const {
  std::map<std::size_t, std::vector<double>> cached;
  const std::string fp_hex = fingerprint_hex(fingerprint_);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl") {
      continue;
    }
    std::ifstream file(entry.path());
    std::string line;
    while (std::getline(file, line)) {
      std::size_t job_index = 0;
      std::vector<double> metrics;
      if (parse_record(line, fp_hex, &job_index, &metrics) &&
          metrics.size() == metric_count) {
        cached[job_index] = std::move(metrics);
      }
    }
  }
  return cached;
}

void ResultCache::append(std::size_t job_index,
                         const std::vector<double>& metrics) {
  const std::string line =
      format_record(fingerprint_hex(fingerprint_), job_index, metrics);

  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) {
    // A killed writer can leave the file without a trailing newline;
    // appending straight onto that torn line would merge two records
    // (and the torn prefix could steal the new record's metrics). Heal
    // with a newline so the torn line stays torn and load() skips it.
    bool needs_newline = false;
    {
      std::ifstream existing(write_path_, std::ios::binary | std::ios::ate);
      if (existing && existing.tellg() > 0) {
        existing.seekg(-1, std::ios::end);
        needs_newline = existing.get() != '\n';
      }
    }
    out_.open(write_path_, std::ios::app);
    if (!out_) {
      throw std::runtime_error("cannot open cache file '" + write_path_ +
                               "' for appending");
    }
    if (needs_newline) {
      out_.put('\n');
    }
  }
  // One buffered write + one flush per job: the record was formatted
  // into a single string above, so the per-field `<<` formatting all
  // happened off the stream, and the durability contract (a completed
  // job's line survives a kill) costs exactly one flush.
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.flush();
}

CompactionStats compact_cache(const std::string& dir,
                              std::uint64_t fingerprint,
                              std::size_t metric_count) {
  CompactionStats stats;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return stats;  // nothing to compact
  }

  // Scan exactly the way load() does — same iteration order, last
  // record per job index wins — so the survivors are the records a
  // load() of the uncompacted directory would have served.
  const std::string fp_hex = fingerprint_hex(fingerprint);
  std::map<std::size_t, std::vector<double>> kept;
  std::vector<std::filesystem::path> old_files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl") {
      continue;
    }
    ++stats.files_scanned;
    old_files.push_back(entry.path());
    std::ifstream file(entry.path());
    std::string line;
    while (std::getline(file, line)) {
      if (line.empty()) {
        continue;
      }
      ++stats.records_seen;
      std::size_t job_index = 0;
      std::vector<double> metrics;
      if (parse_record(line, fp_hex, &job_index, &metrics) &&
          metrics.size() == metric_count) {
        kept[job_index] = std::move(metrics);
      }
    }
  }
  stats.records_kept = kept.size();

  // Write the survivors (in job order — compacted files are canonical,
  // so two compactions of equivalent directories are byte-identical)
  // to a temp name, rename it into place, and only then remove the old
  // files. A crash before the rename leaves the originals untouched
  // (load() ignores the ".tmp" extension); a crash after it leaves the
  // compacted file plus some originals, which load() merges to the
  // same records. At no instant does the directory lack the data.
  const std::string target = dir + "/" + fp_hex + ".jsonl";
  const std::string target_name = fp_hex + ".jsonl";
  if (!kept.empty()) {
    const std::string tmp = target + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write compacted cache file '" + tmp +
                               "'");
    }
    std::string records;
    for (const auto& [job_index, metrics] : kept) {
      records += format_record(fp_hex, job_index, metrics);
    }
    out.write(records.data(), static_cast<std::streamsize>(records.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("failed writing compacted cache file '" + tmp +
                               "'");
    }
    out.close();
    std::filesystem::rename(tmp, target);
  }
  for (const auto& path : old_files) {
    if (!kept.empty() && path.filename().string() == target_name) {
      continue;  // now holds the compacted records
    }
    if (std::filesystem::remove(path, ec)) {
      ++stats.files_removed;
    }
  }
  return stats;
}

}  // namespace bas::exp
