#include "exp/plan.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace bas::exp {

namespace {

// Domain-separation tags so cell seeds, replicate seeds and job seeds
// can never collide even for coinciding coordinate values.
constexpr std::uint64_t kCellDomain = 0x9d8f0c3b5a1e77c1ULL;
constexpr std::uint64_t kReplicateDomain = 0x6a09e667f3bcc909ULL;

Job make_job(const ExperimentSpec& spec, std::size_t index) {
  const auto replicates = static_cast<std::size_t>(spec.replicates);
  Job job;
  job.index = index;
  job.cell = index / replicates;
  job.replicate = static_cast<int>(index % replicates);
  job.coord = spec.grid.coord(job.cell);

  std::vector<std::uint64_t> tags;
  tags.reserve(job.coord.size() + 1);
  tags.push_back(kCellDomain);
  for (const auto c : job.coord) {
    tags.push_back(static_cast<std::uint64_t>(c));
  }
  job.cell_seed = util::derive_seed(spec.seed, tags.data(), tags.size());
  job.replicate_seed = util::derive_seed(
      spec.seed,
      {kReplicateDomain, static_cast<std::uint64_t>(job.replicate)});
  job.seed = util::Rng::hash_combine(
      job.cell_seed, static_cast<std::uint64_t>(job.replicate));
  return job;
}

// FNV-1a 64, fed length-prefixed fields so "ab"+"c" and "a"+"bc" can
// never serialize identically.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void feed_byte(std::uint64_t& hash, unsigned char byte) {
  hash ^= byte;
  hash *= kFnvPrime;
}

void feed_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    feed_byte(hash, static_cast<unsigned char>(value >> (8 * i)));
  }
}

void feed_string(std::uint64_t& hash, const std::string& text) {
  feed_u64(hash, text.size());
  for (const char c : text) {
    feed_byte(hash, static_cast<unsigned char>(c));
  }
}

}  // namespace

Shard parse_shard(const std::string& text) {
  const auto slash = text.find('/');
  long long index = -1;
  long long count = -1;
  bool ok = slash != std::string::npos && slash > 0;
  if (ok) {
    try {
      std::size_t consumed = 0;
      index = std::stoll(text.substr(0, slash), &consumed);
      ok = consumed == slash;
      if (ok) {
        const std::string rest = text.substr(slash + 1);
        count = std::stoll(rest, &consumed);
        ok = !rest.empty() && consumed == rest.size();
      }
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok || count < 1 || index < 0 || index >= count) {
    throw std::runtime_error(
        "option --shard expects 'i/n' with 0 <= i < n, got '" + text + "'");
  }
  return Shard{static_cast<int>(index), static_cast<int>(count)};
}

std::uint64_t spec_fingerprint(const ExperimentSpec& spec) {
  std::uint64_t hash = kFnvOffset;
  feed_string(hash, spec.title);
  feed_string(hash, spec.config);
  feed_u64(hash, spec.seed);
  feed_u64(hash, static_cast<std::uint64_t>(spec.replicates));
  feed_u64(hash, spec.grid.axis_count());
  for (const auto& axis : spec.grid.axes()) {
    feed_string(hash, axis.name);
    feed_u64(hash, axis.labels.size());
    for (const auto& label : axis.labels) {
      feed_string(hash, label);
    }
  }
  feed_u64(hash, spec.metrics.size());
  for (const auto& metric : spec.metrics) {
    feed_string(hash, metric);
  }
  return hash;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

Plan::Plan(const ExperimentSpec& spec) : grid_(spec.grid) {
  if (!spec.run) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "' has no run function");
  }
  if (spec.metrics.empty()) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "' declares no metrics");
  }
  if (spec.replicates < 1) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "' needs replicates >= 1");
  }
  fingerprint_ = spec_fingerprint(spec);
  const std::size_t n = spec.job_count();
  jobs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs_.push_back(make_job(spec, i));
  }
}

std::string Plan::describe(const Job& job) const {
  std::ostringstream out;
  out << "job " << job.index << " [";
  for (std::size_t a = 0; a < grid_.axis_count(); ++a) {
    out << (a ? ", " : "") << grid_.axis(a).name << '='
        << grid_.axis(a).labels.at(job.coord.at(a));
  }
  out << "] replicate " << job.replicate;
  return out.str();
}

}  // namespace bas::exp
