#pragma once
// Stage 2's progress reporter.
//
// Long campaigns (the paper's --full Table 2 is thousands of jobs) need
// a heartbeat: Progress counts finished jobs and prints
//
//   <title>: 128/1024 jobs (12.5%), elapsed 42.0s, eta 294.1s
//
// to stderr, throttled to one line per `interval_s` (default half a
// second, --progress-interval on the bench CLIs) plus a final line at
// completion. A stats hook (set_stats) appends a caller-supplied suffix
// — the runner uses it for a metrics-registry snapshot of the async
// writer's queue depth/stall counters. stdout is untouched, so tables
// and CSV byte-compare regardless of whether reporting is on. tick()
// is thread-safe and, when disabled, a single atomic increment.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

namespace bas::exp {

class Progress {
 public:
  /// `total` is the number of jobs this process will execute (after
  /// shard selection and cache hits). Disabled reporters never print.
  /// `interval_s` throttles heartbeat lines (<= 0 prints every tick);
  /// the final line always prints.
  Progress(std::string title, std::size_t total, bool enabled,
           double interval_s = 0.5);

  /// Records one finished job; prints a throttled status line.
  void tick();

  /// Prints `text` to stderr when enabled — for one-off notes like the
  /// store-resume summary.
  void note(const std::string& text) const;

  /// Installs (or, with an empty function, removes) a supplier whose
  /// string is appended to each heartbeat line, e.g. the writer-queue
  /// stats. The supplier is called under the print throttle, at most
  /// once per interval — it may take its own locks.
  void set_stats(std::function<std::string()> stats);

  std::size_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  std::string title_;
  std::size_t total_ = 0;
  bool enabled_ = false;
  double interval_s_ = 0.5;
  std::atomic<std::size_t> done_{0};
  std::mutex print_mutex_;
  std::function<std::string()> stats_;  ///< guarded by print_mutex_
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace bas::exp
