#include "exp/grid.hpp"

#include <stdexcept>

namespace bas::exp {

Grid::Grid(std::vector<Axis> axes) {
  for (auto& axis : axes) {
    add(std::move(axis.name), std::move(axis.labels));
  }
}

Grid& Grid::add(std::string name, std::vector<std::string> labels) {
  if (name.empty()) {
    throw std::invalid_argument("Grid axis needs a name");
  }
  if (labels.empty()) {
    throw std::invalid_argument("Grid axis '" + name + "' has no values");
  }
  axes_.push_back(Axis{std::move(name), std::move(labels)});
  return *this;
}

std::size_t Grid::cell_count() const noexcept {
  std::size_t count = 1;
  for (const auto& axis : axes_) {
    count *= axis.size();
  }
  return count;
}

std::vector<std::size_t> Grid::coord(std::size_t cell) const {
  if (cell >= cell_count()) {
    throw std::out_of_range("Grid cell index out of range");
  }
  std::vector<std::size_t> coord(axes_.size(), 0);
  for (std::size_t i = axes_.size(); i-- > 0;) {
    coord[i] = cell % axes_[i].size();
    cell /= axes_[i].size();
  }
  return coord;
}

std::size_t Grid::index(const std::vector<std::size_t>& coord) const {
  if (coord.size() != axes_.size()) {
    throw std::out_of_range("Grid coordinate arity mismatch");
  }
  std::size_t cell = 0;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (coord[i] >= axes_[i].size()) {
      throw std::out_of_range("Grid coordinate out of range on axis " +
                              axes_[i].name);
    }
    cell = cell * axes_[i].size() + coord[i];
  }
  return cell;
}

std::vector<std::string> Grid::labels(std::size_t cell) const {
  const auto c = coord(cell);
  std::vector<std::string> labels;
  labels.reserve(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    labels.push_back(axes_[i].labels[c[i]]);
  }
  return labels;
}

}  // namespace bas::exp
