#include "exp/progress.hpp"

#include <cstdio>

namespace bas::exp {

Progress::Progress(std::string title, std::size_t total, bool enabled,
                   double interval_s)
    : title_(std::move(title)),
      total_(total),
      enabled_(enabled),
      interval_s_(interval_s),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

void Progress::tick() {
  const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_) {
    return;
  }
  // Drop the line rather than block a worker when another thread holds
  // the throttle; the final line (done == total) always prints.
  std::unique_lock<std::mutex> lock(print_mutex_, std::defer_lock);
  if (done == total_) {
    lock.lock();
  } else if (!lock.try_lock()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  const double since_print =
      std::chrono::duration<double>(now - last_print_).count();
  if (done != total_ && since_print < interval_s_) {
    return;
  }
  last_print_ = now;
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double eta =
      done > 0 ? elapsed * static_cast<double>(total_ - done) /
                     static_cast<double>(done)
               : 0.0;
  std::string suffix;
  if (stats_) {
    suffix = ", " + stats_();
  }
  std::fprintf(stderr,
               "%s: %zu/%zu jobs (%.1f%%), elapsed %.1fs, eta %.1fs%s\n",
               title_.c_str(), done, total_,
               total_ > 0 ? 100.0 * static_cast<double>(done) /
                                static_cast<double>(total_)
                          : 100.0,
               elapsed, eta, suffix.c_str());
}

void Progress::set_stats(std::function<std::string()> stats) {
  std::lock_guard<std::mutex> lock(print_mutex_);
  stats_ = std::move(stats);
}

void Progress::note(const std::string& text) const {
  if (enabled_) {
    std::fprintf(stderr, "%s: %s\n", title_.c_str(), text.c_str());
  }
}

}  // namespace bas::exp
