#pragma once
// Stage 1 of a campaign: planning.
//
// A Plan materializes an ExperimentSpec's job manifest — every
// (cell, replicate) Job with its deterministically derived seeds — and a
// canonical fingerprint of the spec. The fingerprint covers everything
// that determines job outputs (title, axes, metric names, replicates,
// root seed), so it keys the campaign store (store/store.hpp): change
// the grid or the seed and previously stored rows are ignored rather
// than served as wrong results.
//
// Cross-process sharding partitions the manifest round-robin: shard i of
// n owns the jobs whose index ≡ i (mod n). Because replicates of a cell
// are contiguous in job order, round-robin spreads every cell across
// shards, which balances load when cells differ in cost.

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/job.hpp"

namespace bas::exp {

/// One slice of a cross-process partition: shard `index` of `count`.
struct Shard {
  int index = 0;
  int count = 1;

  bool contains(std::size_t job_index) const noexcept {
    return job_index % static_cast<std::size_t>(count) ==
           static_cast<std::size_t>(index);
  }
};

/// Parses "i/n" with 0 <= i < n; throws std::runtime_error otherwise.
Shard parse_shard(const std::string& text);

/// Canonical 64-bit fingerprint of a spec: FNV-1a over a
/// length-prefixed serialization of title, config, seed, replicates,
/// axes (names and labels) and metric names. Identical specs
/// fingerprint identically on every platform; any change to the
/// sweep's identity changes the fingerprint.
std::uint64_t spec_fingerprint(const ExperimentSpec& spec);

/// Fixed-width lowercase hex rendering of a fingerprint.
std::string fingerprint_hex(std::uint64_t fingerprint);

/// The materialized manifest of one spec: jobs in index order plus the
/// spec fingerprint. Construction validates the spec (run function
/// present, metrics non-empty, replicates >= 1) and throws
/// std::invalid_argument on violations.
class Plan {
 public:
  explicit Plan(const ExperimentSpec& spec);

  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  const Job& job(std::size_t index) const { return jobs_.at(index); }
  std::size_t job_count() const noexcept { return jobs_.size(); }
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// "job 7 [scheme=BAS-2, battery=kibam] replicate 1" — for error
  /// messages and progress notes of multi-thousand-job campaigns.
  std::string describe(const Job& job) const;

 private:
  Grid grid_;
  std::vector<Job> jobs_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace bas::exp
