#pragma once
// Shared axis/object factories for bench sweeps.
//
// The bench drivers used to duplicate these lists: the battery-model
// ladder (calibrated to the paper's 2000 mAh AAA NiMH cell where the
// model has parameters to calibrate) and the five Table-2 scheduling
// schemes. Keeping label -> object construction here means a Job's axis
// index is all a run function needs to build its own private instances.

#include <memory>
#include <string>
#include <vector>

#include "battery/model.hpp"
#include "core/scheme.hpp"
#include "exp/grid.hpp"

namespace bas::exp {

/// {"ideal", "peukert", "kibam", "diffusion", "stochastic"}.
const std::vector<std::string>& battery_labels();

/// Fresh battery by label; throws std::invalid_argument on an unknown
/// one (the message lists the valid labels).
std::unique_ptr<bat::Battery> make_battery(const std::string& label);

/// Axis "battery" over battery_labels().
Axis battery_axis();

/// Table-2 scheme labels in the paper's order (EDF .. BAS-2).
std::vector<std::string> scheme_labels();

/// The SchemeKind behind scheme_labels()[i].
core::SchemeKind scheme_kind_at(std::size_t i);

/// Axis "scheme" over scheme_labels().
Axis scheme_axis();

}  // namespace bas::exp
