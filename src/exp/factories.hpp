#pragma once
// Shared axis/object factories for bench sweeps.
//
// Label -> object construction for platform pieces lives in the
// scenario registry (scenario/scenario.hpp) — the functions here are
// thin forwards plus the Axis adapters the experiment grids consume, so
// a Job's axis index is all a run function needs to build its own
// private instances. Every label function returns a reference to one
// static list; there is exactly one source of truth per axis.

#include <memory>
#include <string>
#include <vector>

#include "battery/model.hpp"
#include "core/scheme.hpp"
#include "exp/grid.hpp"

namespace bas::exp {

/// {"ideal", "peukert", "kibam", "diffusion", "stochastic"} — forwarded
/// from scenario::battery_labels().
const std::vector<std::string>& battery_labels();

/// Fresh battery by label (scenario::make_battery); throws
/// std::invalid_argument on an unknown one (the message lists the valid
/// labels).
std::unique_ptr<bat::Battery> make_battery(const std::string& label);

/// Axis "battery" over battery_labels().
Axis battery_axis();

/// Table-2 scheme labels in the paper's order (EDF .. BAS-2).
const std::vector<std::string>& scheme_labels();

/// The SchemeKind behind scheme_labels()[i].
core::SchemeKind scheme_kind_at(std::size_t i);

/// Axis "scheme" over scheme_labels().
Axis scheme_axis();

/// Axis "scenario" over scenario::scenario_names() — sweep workload
/// worlds like any other factor.
Axis scenario_axis();

/// Axis "arrival" over arrival::labels() — sweep release models
/// (periodic, jitter, sporadic, Poisson, IPPP, trace replay) like any
/// other factor.
Axis arrival_axis();

}  // namespace bas::exp
