#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace bas::exp {

namespace {

// Domain-separation tags so cell seeds, replicate seeds and job seeds
// can never collide even for coinciding coordinate values.
constexpr std::uint64_t kCellDomain = 0x9d8f0c3b5a1e77c1ULL;
constexpr std::uint64_t kReplicateDomain = 0x6a09e667f3bcc909ULL;

Job make_job(const ExperimentSpec& spec, std::size_t index) {
  const auto replicates = static_cast<std::size_t>(spec.replicates);
  Job job;
  job.index = index;
  job.cell = index / replicates;
  job.replicate = static_cast<int>(index % replicates);
  job.coord = spec.grid.coord(job.cell);

  std::vector<std::uint64_t> tags;
  tags.reserve(job.coord.size() + 1);
  tags.push_back(kCellDomain);
  for (const auto c : job.coord) {
    tags.push_back(static_cast<std::uint64_t>(c));
  }
  job.cell_seed = util::derive_seed(spec.seed, tags.data(), tags.size());
  job.replicate_seed = util::derive_seed(
      spec.seed,
      {kReplicateDomain, static_cast<std::uint64_t>(job.replicate)});
  job.seed = util::Rng::hash_combine(
      job.cell_seed, static_cast<std::uint64_t>(job.replicate));
  return job;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(options) {}

ExperimentResult Runner::run(const ExperimentSpec& spec) const {
  if (!spec.run) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "' has no run function");
  }
  if (spec.metrics.empty()) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "' declares no metrics");
  }
  if (spec.replicates < 1) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "' needs replicates >= 1");
  }

  const std::size_t n_jobs = spec.job_count();
  std::vector<std::vector<double>> results(n_jobs);

  std::mutex error_mutex;
  std::string first_error;
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> next{0};

  auto work = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_jobs) {
        return;
      }
      try {
        const Job job = make_job(spec, i);
        auto metrics = spec.run(job);
        if (metrics.size() != spec.metrics.size()) {
          throw std::runtime_error(
              "job returned " + std::to_string(metrics.size()) +
              " metrics, expected " + std::to_string(spec.metrics.size()));
        }
        results[i] = std::move(metrics);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) {
          first_error = e.what();
        }
        return;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) {
          first_error = "job threw a non-standard exception";
        }
        return;
      }
    }
  };

  int threads = options_.jobs;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, threads);
  const auto pool_size =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n_jobs);

  if (pool_size <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) {
      pool.emplace_back(work);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }

  if (failed.load()) {
    throw std::runtime_error("experiment '" + spec.title +
                             "' failed: " + first_error);
  }

  // Sequential fold in job order: replicates of a cell are contiguous,
  // so each Accumulator sees its samples in replicate order no matter
  // how the pool interleaved execution.
  ExperimentResult result(spec.title, spec.grid, spec.metrics,
                          spec.replicates);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const std::size_t cell = i / static_cast<std::size_t>(spec.replicates);
    auto& stats = result.cell(cell);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      stats.metrics[m].add(results[i][m]);
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs) {
  return Runner(RunnerOptions{jobs}).run(spec);
}

}  // namespace bas::exp
