#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/cache.hpp"
#include "exp/progress.hpp"
#include "util/cli.hpp"

namespace bas::exp {

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {}

ExperimentResult Runner::run(const ExperimentSpec& spec) const {
  // ---- plan: manifest, fingerprint, option validation ----------------
  const Plan plan(spec);
  const std::size_t n_jobs = plan.job_count();

  if (options_.merge_only && options_.cache_dir.empty()) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': merge mode requires a cache directory");
  }
  if (options_.compact_cache && options_.cache_dir.empty()) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': cache compaction requires a cache "
                                "directory");
  }
  if (options_.compact_cache && options_.shard) {
    // Compaction removes every other writer's file; a shard run is by
    // definition one of several concurrent writers, so the combination
    // would silently discard the records its siblings are appending.
    // Compact from the lone coordinating process (--merge or a full
    // run) after the shards finish.
    throw std::invalid_argument("experiment '" + spec.title +
                                "': cache compaction cannot run from a "
                                "shard (sibling shards may be appending); "
                                "compact from the merge step instead");
  }
  if (options_.merge_only && options_.shard) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': merge mode is incompatible with a shard");
  }
  if (options_.shard &&
      (options_.shard->count < 1 || options_.shard->index < 0 ||
       options_.shard->index >= options_.shard->count)) {
    throw std::invalid_argument(
        "experiment '" + spec.title + "': shard " +
        std::to_string(options_.shard->index) + "/" +
        std::to_string(options_.shard->count) + " needs 0 <= i < n");
  }

  std::optional<CompactionStats> compaction;
  if (options_.compact_cache) {
    compaction = compact_cache(options_.cache_dir, plan.fingerprint(),
                               spec.metrics.size());
  }

  std::optional<ResultCache> cache;
  std::map<std::size_t, std::vector<double>> cached;
  if (!options_.cache_dir.empty()) {
    std::string tag;
    if (options_.shard) {
      tag += 's';
      tag += std::to_string(options_.shard->index);
      tag += "of";
      tag += std::to_string(options_.shard->count);
    }
    cache.emplace(options_.cache_dir, plan.fingerprint(), tag);
    cached = cache->load(spec.metrics.size());
  }

  std::vector<std::size_t> pending;
  if (options_.merge_only) {
    // Check every index, not the record count: stray out-of-range
    // records (a hand-edited or corrupted file) must not mask a
    // genuinely missing job.
    std::size_t present = 0;
    std::size_t first_missing = n_jobs;
    for (std::size_t i = 0; i < n_jobs; ++i) {
      if (cached.count(i)) {
        ++present;
      } else if (first_missing == n_jobs) {
        first_missing = i;
      }
    }
    if (present < n_jobs) {
      throw std::runtime_error(
          "experiment '" + spec.title + "': merge found only " +
          std::to_string(present) + " of " + std::to_string(n_jobs) +
          " jobs in cache '" + options_.cache_dir + "' (first missing: " +
          plan.describe(plan.job(first_missing)) + ")");
    }
  } else {
    pending.reserve(n_jobs);
    for (std::size_t i = 0; i < n_jobs; ++i) {
      if (options_.shard && !options_.shard->contains(i)) {
        continue;
      }
      if (cached.count(i)) {
        continue;
      }
      pending.push_back(i);
    }
  }

  // ---- execute: pool over pending jobs, cache + progress as we go ----
  std::vector<std::vector<double>> results(n_jobs);
  Progress progress(spec.title, pending.size(), options_.progress);
  if (compaction) {
    progress.note("compacted cache '" + options_.cache_dir + "': kept " +
                  std::to_string(compaction->records_kept) + " of " +
                  std::to_string(compaction->records_seen) + " records, " +
                  std::to_string(compaction->files_scanned) + " file(s) -> " +
                  (compaction->records_kept > 0 ? "1" : "0"));
  }
  if (!cached.empty()) {
    progress.note(std::to_string(cached.size()) + "/" +
                  std::to_string(n_jobs) + " jobs cached, executing " +
                  std::to_string(pending.size()));
  }

  std::mutex error_mutex;
  std::string first_error;
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> next{0};

  auto work = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= pending.size()) {
        return;
      }
      const Job& job = plan.job(pending[k]);
      try {
        auto metrics = spec.run(job);
        if (metrics.size() != spec.metrics.size()) {
          throw std::runtime_error(
              "returned " + std::to_string(metrics.size()) +
              " metrics, expected " + std::to_string(spec.metrics.size()));
        }
        if (cache) {
          cache->append(job.index, metrics);
        }
        results[job.index] = std::move(metrics);
        progress.tick();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) {
          first_error = plan.describe(job) + ": " + e.what();
        }
        return;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) {
          first_error = plan.describe(job) + ": non-standard exception";
        }
        return;
      }
    }
  };

  int threads = options_.jobs;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, threads);
  const auto pool_size =
      std::min<std::size_t>(static_cast<std::size_t>(threads), pending.size());

  if (pool_size <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) {
      pool.emplace_back(work);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }

  if (failed.load()) {
    throw std::runtime_error("experiment '" + spec.title +
                             "' failed at " + first_error);
  }

  // ---- collect: job-order fold over cached + fresh metrics -----------
  // Replicates of a cell are contiguous, so each Accumulator sees its
  // samples in replicate order no matter how the pool (or an earlier
  // cached/sharded run) interleaved execution. Jobs outside this shard
  // and absent from the cache are simply skipped, yielding the shard's
  // partial result.
  ExperimentResult result(spec.title, spec.grid, spec.metrics,
                          spec.replicates);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const std::vector<double>* metrics = nullptr;
    if (!results[i].empty()) {
      metrics = &results[i];
    } else if (const auto it = cached.find(i); it != cached.end()) {
      metrics = &it->second;
    } else {
      continue;
    }
    const std::size_t cell = i / static_cast<std::size_t>(spec.replicates);
    auto& stats = result.cell(cell);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      stats.metrics[m].add((*metrics)[m]);
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs) {
  RunnerOptions options;
  options.jobs = jobs;
  return Runner(options).run(spec);
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const RunnerOptions& options) {
  return Runner(options).run(spec);
}

RunnerOptions options_from_cli(const util::Cli& cli) {
  RunnerOptions options;
  options.jobs = cli.jobs();
  if (const auto shard = cli.get("shard"); !shard.empty()) {
    options.shard = parse_shard(shard);
  }
  options.cache_dir = cli.get("cache");
  options.merge_only = cli.get_flag("merge");
  options.compact_cache = cli.get_flag("cache-compact");
  options.progress = cli.get_flag("progress");
  // Runner::run owns the merge/cache/shard consistency rules.
  return options;
}

}  // namespace bas::exp
