#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/progress.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"
#include "store/async_writer.hpp"
#include "store/store.hpp"
#include "util/cli.hpp"

namespace bas::exp {

namespace {

/// Job distribution inside one shard: the pending list is split into
/// per-worker contiguous ranges, each claimed lock-free through its own
/// atomic cursor; a worker that exhausts its range steals from the
/// range with the most work left. Contiguous ranges keep a worker's
/// claims cache-local (replicates of a cell are adjacent in job order)
/// and spread cursor contention across workers; stealing keeps every
/// thread busy when cell costs are uneven (overload vs idle-heavy
/// scenarios). Determinism is untouched: stealing changes who computes
/// a job, never what it computes — results land in job-indexed slots
/// and are folded in job order afterwards.
class WorkQueue {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  WorkQueue(std::size_t total, std::size_t workers)
      : worker_count_(std::max<std::size_t>(1, workers)),
        ranges_(std::make_unique<Range[]>(worker_count_)) {
    const std::size_t base = total / worker_count_;
    const std::size_t extra = total % worker_count_;
    std::size_t begin = 0;
    for (std::size_t w = 0; w < worker_count_; ++w) {
      const std::size_t len = base + (w < extra ? 1 : 0);
      ranges_[w].next.store(begin, std::memory_order_relaxed);
      ranges_[w].end = begin + len;
      begin += len;
    }
  }

  /// Claims the next position in [0, total), or npos when every range
  /// is exhausted. Each position is returned exactly once. `stole`,
  /// when non-null, reports whether the claim came from another
  /// worker's range — the campaign trace marks those.
  std::size_t claim(std::size_t worker, bool* stole = nullptr) {
    if (stole != nullptr) {
      *stole = false;
    }
    if (const std::size_t k = take(worker % worker_count_); k != npos) {
      return k;
    }
    if (stole != nullptr) {
      *stole = true;
    }
    // Steal from the victim with the most remaining work; rescan on a
    // lost race until everything is exhausted.
    for (;;) {
      std::size_t best = npos;
      std::size_t best_left = 0;
      for (std::size_t w = 0; w < worker_count_; ++w) {
        const std::size_t next = ranges_[w].next.load(std::memory_order_relaxed);
        const std::size_t left = next < ranges_[w].end ? ranges_[w].end - next : 0;
        if (left > best_left) {
          best_left = left;
          best = w;
        }
      }
      if (best == npos) {
        return npos;
      }
      if (const std::size_t k = take(best); k != npos) {
        return k;
      }
    }
  }

 private:
  /// Padded so neighbouring cursors never share a cache line.
  struct alignas(64) Range {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  std::size_t take(std::size_t w) {
    Range& range = ranges_[w];
    if (range.next.load(std::memory_order_relaxed) >= range.end) {
      return npos;
    }
    // fetch_add may overshoot past `end` when claimants race; the
    // cursor only grows, so an overshot claim is simply rejected and
    // no position is handed out twice.
    const std::size_t k = range.next.fetch_add(1, std::memory_order_relaxed);
    return k < range.end ? k : npos;
  }

  std::size_t worker_count_;
  std::unique_ptr<Range[]> ranges_;
};

/// Evaluates one job attempt under an optional wall-clock deadline.
/// With no deadline this is a plain call. With one, the attempt runs on
/// a helper thread; when the deadline passes the helper is abandoned
/// (detached — its state is shared_ptr-owned, so it finishes or dies
/// harmlessly in the background) and the attempt counts as failed.
std::vector<double> run_with_deadline(
    const std::function<std::vector<double>(const Job&)>& run, const Job& job,
    double timeout_s) {
  if (timeout_s <= 0.0) {
    return run(job);
  }
  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::vector<double> metrics;
    std::exception_ptr error;
    std::function<std::vector<double>(const Job&)> run;
    Job job;
  };
  auto state = std::make_shared<Shared>();
  state->run = run;
  state->job = job;
  std::thread helper([state] {
    std::vector<double> metrics;
    std::exception_ptr error;
    try {
      metrics = state->run(state->job);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(state->mutex);
    state->metrics = std::move(metrics);
    state->error = error;
    state->done = true;
    state->done_cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool finished =
      state->done_cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                              [&] { return state->done; });
  if (!finished) {
    lock.unlock();
    helper.detach();
    throw std::runtime_error("exceeded the per-job deadline of " +
                             std::to_string(timeout_s) + "s");
  }
  lock.unlock();
  helper.join();
  if (state->error) {
    std::rethrow_exception(state->error);
  }
  return std::move(state->metrics);
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {}

ExperimentResult Runner::run(const ExperimentSpec& spec) const {
  // ---- plan: manifest, fingerprint, option validation ----------------
  const Plan plan(spec);
  const std::size_t n_jobs = plan.job_count();

  if (options_.merge_only && options_.cache_dir.empty()) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': merge mode requires a store directory");
  }
  if (options_.compact_cache && options_.cache_dir.empty()) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': store compaction requires a store "
                                "directory");
  }
  if (options_.compact_cache && options_.shard) {
    // Compaction rewrites every writer's data; a shard run is by
    // definition one of several concurrent writers, so the combination
    // would silently discard the records its siblings are appending.
    // Compact from the lone coordinating process (--merge or a full
    // run) after the shards finish.
    throw std::invalid_argument("experiment '" + spec.title +
                                "': store compaction cannot run from a "
                                "shard (sibling shards may be appending); "
                                "compact from the merge step instead");
  }
  if (options_.merge_only && options_.shard) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': merge mode is incompatible with a shard");
  }
  if (options_.shard &&
      (options_.shard->count < 1 || options_.shard->index < 0 ||
       options_.shard->index >= options_.shard->count)) {
    throw std::invalid_argument(
        "experiment '" + spec.title + "': shard " +
        std::to_string(options_.shard->index) + "/" +
        std::to_string(options_.shard->count) + " needs 0 <= i < n");
  }
  if (options_.job_attempts < 1) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': job_attempts must be >= 1");
  }
  if (options_.job_timeout_s < 0.0) {
    throw std::invalid_argument("experiment '" + spec.title +
                                "': job_timeout_s must be >= 0");
  }

  std::optional<store::CompactionStats> compaction;
  if (options_.compact_cache) {
    compaction = store::compact_store(options_.store_backend,
                                      options_.cache_dir, plan.fingerprint(),
                                      spec.metrics.size());
  }

  std::unique_ptr<store::CampaignStore> cache;
  std::map<std::size_t, std::vector<double>> cached;
  if (!options_.cache_dir.empty()) {
    std::string tag;
    if (options_.shard) {
      tag += 's';
      tag += std::to_string(options_.shard->index);
      tag += "of";
      tag += std::to_string(options_.shard->count);
    }
    cache = store::make_store(options_.store_backend, options_.cache_dir,
                              plan.fingerprint(), tag);
    cached = cache->load(spec.metrics.size());
  }

  std::vector<std::size_t> pending;
  std::size_t merge_missing = 0;
  if (options_.merge_only) {
    // Check every index, not the record count: stray out-of-range
    // records (a hand-edited or corrupted store) must not mask a
    // genuinely missing job.
    std::size_t present = 0;
    std::size_t first_missing = n_jobs;
    for (std::size_t i = 0; i < n_jobs; ++i) {
      if (cached.count(i)) {
        ++present;
      } else if (first_missing == n_jobs) {
        first_missing = i;
      }
    }
    merge_missing = n_jobs - present;
    if (present < n_jobs && !options_.keep_going) {
      std::string message =
          "experiment '" + spec.title + "': merge found only " +
          std::to_string(present) + " of " + std::to_string(n_jobs) +
          " jobs in store '" + options_.cache_dir + "' (first missing: " +
          plan.describe(plan.job(first_missing)) + ")";
      // Jobs that failed permanently under --keep-going left error rows
      // instead of metrics; say so rather than just "missing".
      const auto errors = cache->load_errors();
      std::size_t failed = 0;
      std::string first_error;
      for (const auto& [index, error] : errors) {
        if (index < n_jobs && !cached.count(index)) {
          if (failed++ == 0) {
            first_error = "job " + std::to_string(index) + ": " + error;
          }
        }
      }
      if (failed > 0) {
        message += "; " + std::to_string(failed) +
                   " of the missing job(s) recorded as failed (first: " +
                   first_error + "); re-run without --merge to retry them" +
                   " or pass --keep-going to fold the partial result";
      }
      throw std::runtime_error(message);
    }
  } else {
    pending.reserve(n_jobs);
    for (std::size_t i = 0; i < n_jobs; ++i) {
      if (options_.shard && !options_.shard->contains(i)) {
        continue;
      }
      if (cached.count(i)) {
        continue;
      }
      pending.push_back(i);
    }
  }

  // ---- execute: pool over pending jobs, store + progress as we go ----
  std::vector<std::vector<double>> results(n_jobs);
  Progress progress(spec.title, pending.size(), options_.progress,
                    options_.progress_interval_s);

  // Campaign trace (--trace-out): per-job spans on per-worker tracks,
  // retry/steal/fail markers, the writer's queue-depth counter. The log
  // is observational only — it never feeds results or the store.
  std::optional<obs::TraceLog> trace;
  if (!options_.trace_out.empty()) {
    trace.emplace();
    trace->name_process(obs::kCampaignPid, "campaign: " + spec.title);
  }
  obs::TraceLog* const tlog = trace ? &*trace : nullptr;
  if (compaction) {
    progress.note("compacted store '" + options_.cache_dir + "': kept " +
                  std::to_string(compaction->records_kept) + " of " +
                  std::to_string(compaction->records_seen) + " records, " +
                  std::to_string(compaction->files_scanned) + " file(s) -> " +
                  (compaction->records_kept > 0 ? "1" : "0"));
  }
  if (!cached.empty()) {
    progress.note(std::to_string(cached.size()) + "/" +
                  std::to_string(n_jobs) + " jobs stored, executing " +
                  std::to_string(pending.size()));
  }
  if (options_.merge_only && merge_missing > 0) {
    progress.note(std::to_string(merge_missing) + " job(s) missing from "
                  "the store; folding the partial result (--keep-going)");
  }

  std::optional<store::AsyncWriter> writer;
  if (cache && !pending.empty()) {
    cache->annotate(spec.title, spec.metrics);
    writer.emplace(*cache, options_.writer_queue_capacity, tlog);
    // Heartbeat suffix: a metrics-registry snapshot of the writer
    // counters, so the heartbeat and BENCH_perf.json speak the same
    // metric names.
    progress.set_stats([&writer] {
      obs::Metrics metrics;
      obs::fill(metrics, writer->stats());
      return metrics.render_compact();
    });
  }

  std::mutex error_mutex;
  std::string first_error;
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> failed_jobs{0};
  std::string first_failure;  // guarded by error_mutex (keep_going path)

  int threads = options_.jobs;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, threads);
  const auto pool_size =
      std::min<std::size_t>(static_cast<std::size_t>(threads), pending.size());

  WorkQueue queue(pending.size(), pool_size);

  auto work = [&](std::size_t worker) {
    while (!failed.load(std::memory_order_relaxed)) {
      bool stole = false;
      const std::size_t k = queue.claim(worker, &stole);
      if (k == WorkQueue::npos) {
        return;
      }
      const Job& job = plan.job(pending[k]);
      const int tid = static_cast<int>(worker);
      if (tlog != nullptr && stole) {
        tlog->instant("steal", obs::kCampaignPid, tid,
                      tlog->now_us(),
                      "{\"job\": " + std::to_string(job.index) + "}");
      }
      const double job_t0 = tlog != nullptr ? tlog->now_us() : 0.0;
      const int attempts = options_.job_attempts;
      for (int attempt = 1; attempt <= attempts; ++attempt) {
        std::string what;
        try {
          auto metrics =
              run_with_deadline(spec.run, job, options_.job_timeout_s);
          if (metrics.size() != spec.metrics.size()) {
            throw std::runtime_error(
                "returned " + std::to_string(metrics.size()) +
                " metrics, expected " + std::to_string(spec.metrics.size()));
          }
          if (writer) {
            store::StoreRecord record;
            record.job_index = job.index;
            record.metrics = metrics;
            writer->enqueue(std::move(record));
          }
          results[job.index] = std::move(metrics);
          if (tlog != nullptr) {
            const double now = tlog->now_us();
            tlog->span(plan.describe(job), obs::kCampaignPid, tid, job_t0,
                       now - job_t0,
                       "{\"job\": " + std::to_string(job.index) +
                           ", \"attempt\": " + std::to_string(attempt) + "}");
          }
          progress.tick();
          break;
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
          what = "non-standard exception";
        }
        if (attempt < attempts) {
          if (tlog != nullptr) {
            tlog->instant("retry", obs::kCampaignPid, tid, tlog->now_us(),
                          "{\"job\": " + std::to_string(job.index) +
                              ", \"attempt\": " + std::to_string(attempt) +
                              "}");
          }
          // Exponential backoff before the retry: transient failures
          // (I/O hiccups, load-induced deadline misses) get room to
          // clear without hammering.
          const double backoff =
              options_.retry_backoff_s * static_cast<double>(1 << (attempt - 1));
          if (backoff > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          }
          continue;
        }
        // Attempts exhausted: record the failure and either carry on
        // (keep_going) or abort the run.
        const std::string described =
            plan.describe(job) + ": " + what +
            (attempts > 1 ? " (after " + std::to_string(attempts) +
                                " attempts)"
                          : "");
        if (options_.keep_going) {
          try {
            if (writer) {
              store::StoreRecord record;
              record.job_index = job.index;
              record.error = described;
              writer->enqueue(std::move(record));
            }
            failed_jobs.fetch_add(1, std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lock(error_mutex);
              if (first_failure.empty()) {
                first_failure = described;
              }
            }
            if (tlog != nullptr) {
              const double now = tlog->now_us();
              tlog->instant("fail", obs::kCampaignPid, tid, now,
                            "{\"job\": " + std::to_string(job.index) + "}");
              tlog->span(plan.describe(job), obs::kCampaignPid, tid, job_t0,
                         now - job_t0,
                         "{\"job\": " + std::to_string(job.index) +
                             ", \"failed\": true}");
            }
            progress.tick();
            break;
          } catch (const std::exception& e) {
            // The store itself failed — that is fatal even under
            // keep_going; fall through to the abort path.
            what = e.what();
          }
        }
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) {
          first_error = options_.keep_going
                            ? plan.describe(job) + ": " + what
                            : described;
        }
        return;
      }
    }
  };

  if (pool_size <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) {
      pool.emplace_back(work, t);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }

  // Drain the writer before reporting anything: a campaign is not done
  // until its rows are durable, and a backend failure must surface on
  // this thread with the experiment's name attached.
  if (writer) {
    try {
      writer->drain();
    } catch (const std::exception& e) {
      if (!failed.exchange(true)) {
        first_error = e.what();
      }
    }
    const auto stats = writer->stats();
    progress.set_stats({});
    progress.note("store '" + cache->describe() + "': " +
                  std::to_string(stats.written) + " row(s) in " +
                  std::to_string(stats.batches) + " batch(es), " +
                  stats.summary());
    writer.reset();
  }

  // Write the campaign trace even when a job failed — a trace of the
  // run that died is exactly what the post-mortem wants.
  if (trace) {
    try {
      trace->write(options_.trace_out);
      progress.note("campaign trace (" + std::to_string(trace->size()) +
                    " events) written to '" + options_.trace_out + "'");
    } catch (const std::exception& e) {
      if (!failed.exchange(true)) {
        first_error = e.what();
      }
    }
  }

  if (failed.load()) {
    throw std::runtime_error("experiment '" + spec.title + "' failed at " +
                             first_error);
  }
  if (const std::size_t n_failed = failed_jobs.load(); n_failed > 0) {
    progress.note(std::to_string(n_failed) +
                  " job(s) failed permanently (first: " + first_failure +
                  "); their cells aggregate the surviving replicates and "
                  "the failures are recorded as error rows");
  }

  // ---- collect: job-order fold over stored + fresh metrics -----------
  // Replicates of a cell are contiguous, so each Accumulator sees its
  // samples in replicate order no matter how the pool (or an earlier
  // stored/sharded run) interleaved execution. Jobs outside this shard
  // and absent from the store are simply skipped, yielding the shard's
  // partial result.
  ExperimentResult result(spec.title, spec.grid, spec.metrics,
                          spec.replicates);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const std::vector<double>* metrics = nullptr;
    if (!results[i].empty()) {
      metrics = &results[i];
    } else if (const auto it = cached.find(i); it != cached.end()) {
      metrics = &it->second;
    } else {
      continue;
    }
    const std::size_t cell = i / static_cast<std::size_t>(spec.replicates);
    auto& stats = result.cell(cell);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      stats.metrics[m].add((*metrics)[m]);
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs) {
  RunnerOptions options;
  options.jobs = jobs;
  return Runner(options).run(spec);
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const RunnerOptions& options) {
  return Runner(options).run(spec);
}

RunnerOptions options_from_cli(const util::Cli& cli) {
  RunnerOptions options;
  options.jobs = cli.jobs();
  if (const auto shard = cli.get("shard"); !shard.empty()) {
    options.shard = parse_shard(shard);
  }
  options.cache_dir = cli.get("cache");
  if (cli.has("store")) {
    options.store_backend = store::backend_from_label(cli.get("store"));
  }
  options.merge_only = cli.get_flag("merge");
  options.compact_cache = cli.get_flag("cache-compact");
  options.progress = cli.get_flag("progress");
  if (cli.has("job-timeout")) {
    options.job_timeout_s = cli.get_double("job-timeout");
  }
  if (cli.has("job-attempts")) {
    options.job_attempts = static_cast<int>(cli.get_int("job-attempts"));
  }
  if (cli.has("keep-going")) {
    options.keep_going = cli.get_flag("keep-going");
  }
  if (cli.has("progress-interval")) {
    options.progress_interval_s = cli.get_double("progress-interval");
  }
  options.trace_out = cli.get("trace-out");
  // Runner::run owns the merge/store/shard consistency rules.
  return options;
}

}  // namespace bas::exp
