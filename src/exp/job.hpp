#pragma once
// One unit of work of an experiment sweep: a (cell, replicate) pair with
// deterministically derived seeds.
//
// Seed discipline (the contract that makes sweeps bit-reproducible for
// any --jobs value):
//
//   seed            unique per job — hash of (spec seed, coordinates,
//                   replicate). Use for anything private to the job.
//   cell_seed       shared by all replicates of one cell.
//   replicate_seed  shared by all cells of one replicate. Use it for
//                   workload generation and actual-computation draws so
//                   cells compared across an axis see common random
//                   numbers (CRN) — the paper's per-set evaluation runs
//                   every scheme on the same random task-graph sets.
//
// All three are pure functions of the coordinates, never of execution
// order or thread identity.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bas::exp {

struct Job {
  /// Flat job index in [0, cell_count * replicates); replicates of a
  /// cell are contiguous.
  std::size_t index = 0;
  /// Flat cell index into the spec's grid.
  std::size_t cell = 0;
  /// Per-axis value indices of the cell.
  std::vector<std::size_t> coord;
  int replicate = 0;

  std::uint64_t seed = 0;
  std::uint64_t cell_seed = 0;
  std::uint64_t replicate_seed = 0;

  /// Value index of this job on axis `axis`.
  std::size_t at(std::size_t axis) const { return coord.at(axis); }
};

}  // namespace bas::exp
