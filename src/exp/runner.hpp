#pragma once
// The campaign runner: plan -> execute -> collect.
//
//  plan     A Plan (plan.hpp) materializes the job manifest — indices,
//           coordinates, seeds — and the spec fingerprint that keys the
//           resume cache.
//  execute  The worker pool runs only the jobs selected by the optional
//           shard partition and not already present in the resume cache
//           (cache.hpp); fresh results are appended to the cache as they
//           finish, and a Progress reporter (progress.hpp) heartbeats to
//           stderr.
//  collect  The job-order fold merges cached and freshly computed
//           metrics into an ExperimentResult. Because %.17g round-trips
//           doubles exactly, a result folded from any mix of cache hits,
//           shard partials and live jobs is byte-identical to a fresh
//           single-process run.
//
// Two properties are guaranteed:
//
//  1. Determinism for any thread count, shard split or resume history.
//     Job seeds are pure functions of grid coordinates (job.hpp), each
//     job's metrics land in a slot indexed by job id, and the fold
//     happens after the pool drains, in job order.
//  2. Isolation. The spec's run function receives only the Job; it is
//     expected to build its own Scheme / Battery / TaskGraphSet, so no
//     mutable state is shared between workers.
//
// Cluster fan-out: run shard i with `{.shard = Shard{i, n},
// .cache_dir = DIR}` on n machines sharing DIR (or copy the shard files
// together afterwards), then fold everything with `{.merge_only = true,
// .cache_dir = DIR}`.

#include <optional>
#include <string>

#include "exp/experiment.hpp"
#include "exp/plan.hpp"

namespace bas::util {
class Cli;
}

namespace bas::exp {

struct RunnerOptions {
  /// Worker threads; <= 0 selects std::thread::hardware_concurrency().
  int jobs = 1;
  /// When set, execute only the jobs of this slice of the round-robin
  /// partition; the collected result covers just those jobs unless a
  /// cache supplies the rest.
  std::optional<Shard> shard;
  /// When non-empty, load previously cached jobs from this directory
  /// instead of recomputing them, and append fresh results to it.
  std::string cache_dir;
  /// Execute nothing: fold the complete result from the cache alone.
  /// Requires cache_dir; throws when any job is missing.
  bool merge_only = false;
  /// Before loading the cache, rewrite the directory in place:
  /// dedupe re-run jobs and drop records whose fingerprint does not
  /// match this spec (exp::compact_cache). Requires cache_dir, and is
  /// rejected together with a shard — sibling shard processes may
  /// still be appending, and compaction removes other writers' files.
  /// Composes with merging (compact-then-merge) and resuming.
  bool compact_cache = false;
  /// Report jobs-done/total and ETA to stderr while executing.
  bool progress = false;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Runs the spec's campaign. Throws std::invalid_argument on a
  /// malformed spec (no run function, no metrics, replicates < 1) or an
  /// inconsistent option set (merge without a cache, merge with a
  /// shard), and std::runtime_error when a job throws or returns the
  /// wrong number of metrics — the message names the failing job's grid
  /// coordinates and replicate; remaining jobs are abandoned.
  ExperimentResult run(const ExperimentSpec& spec) const;

 private:
  RunnerOptions options_;
};

/// One-shot convenience: Runner{{.jobs = jobs}}.run(spec).
ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs = 1);

/// One-shot convenience with the full campaign option set.
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const RunnerOptions& options);

/// Builds RunnerOptions from the shared bench flags (--jobs, --shard,
/// --cache, --cache-compact, --merge, --progress; see
/// util::Cli::with_bench_defaults).
/// Throws std::runtime_error on a malformed --shard; cross-option
/// consistency (--merge needs --cache, ...) is enforced by Runner::run.
RunnerOptions options_from_cli(const util::Cli& cli);

}  // namespace bas::exp
