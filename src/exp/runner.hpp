#pragma once
// Parallel experiment runner.
//
// Expands an ExperimentSpec's grid into (cell, replicate) jobs, executes
// them on a worker pool, and aggregates metrics into per-cell
// Accumulators. Two properties are guaranteed:
//
//  1. Determinism for any thread count. Job seeds are pure functions of
//     grid coordinates (job.hpp), each job stores its metrics into a
//     slot indexed by job id, and the fold into Accumulators happens
//     after the pool drains, in job order. jobs=1 and jobs=64 produce
//     bit-identical aggregates.
//  2. Isolation. The spec's run function receives only the Job; it is
//     expected to build its own Scheme / Battery / TaskGraphSet, so no
//     mutable state is shared between workers.

#include "exp/experiment.hpp"

namespace bas::exp {

struct RunnerOptions {
  /// Worker threads; <= 0 selects std::thread::hardware_concurrency().
  int jobs = 1;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Runs every job of the spec. Throws std::invalid_argument on a
  /// malformed spec (no run function, no metrics, replicates < 1) and
  /// std::runtime_error when a job throws or returns the wrong number of
  /// metrics (the first failure is reported; remaining jobs are
  /// abandoned).
  ExperimentResult run(const ExperimentSpec& spec) const;

 private:
  RunnerOptions options_;
};

/// One-shot convenience: Runner{{.jobs = jobs}}.run(spec).
ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs = 1);

}  // namespace bas::exp
