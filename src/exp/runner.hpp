#pragma once
// The campaign runner: plan -> execute -> collect.
//
//  plan     A Plan (plan.hpp) materializes the job manifest — indices,
//           coordinates, seeds — and the spec fingerprint that keys the
//           campaign store.
//  execute  The worker pool runs only the jobs selected by the optional
//           shard partition and not already present in the campaign
//           store (store/store.hpp). Jobs are claimed from per-worker
//           ranges with work stealing, so uneven cell costs never leave
//           a thread idle; finished metrics are handed to an async
//           writer (store/async_writer.hpp) whose consumer thread
//           batches them into the backend — workers never pay a
//           write+flush. A Progress reporter (progress.hpp) heartbeats
//           jobs/ETA plus the writer-queue stats to stderr.
//  collect  The job-order fold merges stored and freshly computed
//           metrics into an ExperimentResult. Because %.17g round-trips
//           doubles exactly (both backends store that rendering), a
//           result folded from any mix of store hits, shard partials
//           and live jobs is byte-identical to a fresh single-process
//           run — on either backend.
//
// Two properties are guaranteed:
//
//  1. Determinism for any thread count, shard split, store backend or
//     resume history. Job seeds are pure functions of grid coordinates
//     (job.hpp), each job's metrics land in a slot indexed by job id,
//     and the fold happens after the pool drains, in job order — work
//     stealing changes who computes a job, never what it computes or
//     where it lands.
//  2. Isolation. The spec's run function receives only the Job; it is
//     expected to build its own Scheme / Battery / TaskGraphSet, so no
//     mutable state is shared between workers.
//
// Robustness: a per-job deadline (job_timeout_s) and bounded retries
// with exponential backoff (job_attempts) guard long campaigns against
// hung or flaky cells; with keep_going, a job that still fails is
// recorded in the store as an error row and the shard carries on —
// resumed runs re-execute failed jobs rather than trusting the
// failure.
//
// Cluster fan-out: run shard i with `{.shard = Shard{i, n},
// .cache_dir = DIR}` on n machines sharing DIR (or copy the shard files
// together afterwards), then fold everything with `{.merge_only = true,
// .cache_dir = DIR}`. With `.store_backend = Backend::kSqlite` the
// shards upsert into one `campaign.sqlite` and the merge is a query.

#include <cstddef>
#include <optional>
#include <string>

#include "exp/experiment.hpp"
#include "exp/plan.hpp"
#include "store/store.hpp"

namespace bas::util {
class Cli;
}

namespace bas::exp {

struct RunnerOptions {
  /// Worker threads; <= 0 selects std::thread::hardware_concurrency().
  int jobs = 1;
  /// When set, execute only the jobs of this slice of the round-robin
  /// partition; the collected result covers just those jobs unless the
  /// store supplies the rest.
  std::optional<Shard> shard;
  /// When non-empty, load previously stored jobs from this campaign
  /// store directory instead of recomputing them, and append fresh
  /// results to it.
  std::string cache_dir;
  /// Which backend reads and writes cache_dir: the append-only JSONL
  /// cache (default) or the SQLite database. Both store %.17g doubles,
  /// so merge output is byte-identical across backends.
  store::Backend store_backend = store::Backend::kJsonl;
  /// Bound of the async writer's ring buffer (records). A full ring
  /// blocks producers (backpressure) rather than dropping records.
  std::size_t writer_queue_capacity = 1024;
  /// Execute nothing: fold the complete result from the store alone.
  /// Requires cache_dir; throws when any job is missing (unless
  /// keep_going tolerates jobs recorded as failed).
  bool merge_only = false;
  /// Before loading, rewrite the store in place: dedupe re-run jobs,
  /// drop records whose fingerprint does not match this spec, VACUUM
  /// the sqlite backend (store::compact_store). Requires cache_dir,
  /// refuses when another live writer process holds the directory, and
  /// is rejected together with a shard — sibling shard processes may
  /// still be appending. Composes with merging and resuming.
  bool compact_cache = false;
  /// Report jobs-done/total, ETA and writer-queue stats to stderr
  /// while executing.
  bool progress = false;
  /// Seconds between progress heartbeat lines (--progress-interval);
  /// <= 0 prints on every finished job.
  double progress_interval_s = 0.5;
  /// When non-empty, record a whole-campaign Chrome trace (per-job
  /// spans on per-worker tracks, retry/steal/fail markers, the async
  /// writer's queue-depth counter) and write it to this path after the
  /// pool drains — load it in Perfetto / chrome://tracing. Purely
  /// observational: results and stored rows are byte-identical with or
  /// without it.
  std::string trace_out;
  /// Per-job wall-clock deadline in seconds; 0 disables. A job past
  /// its deadline counts as a failed attempt (the runner stops waiting
  /// for it; the abandoned attempt finishes on a detached thread).
  double job_timeout_s = 0.0;
  /// Attempts per job (>= 1). Failed attempts retry with exponential
  /// backoff starting at retry_backoff_s.
  int job_attempts = 1;
  double retry_backoff_s = 0.05;
  /// When a job exhausts its attempts: record an error row in the
  /// store and carry on (true) instead of aborting the run (false).
  /// Cells with failed jobs aggregate the replicates that succeeded.
  bool keep_going = false;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Runs the spec's campaign. Throws std::invalid_argument on a
  /// malformed spec (no run function, no metrics, replicates < 1) or an
  /// inconsistent option set (merge without a store, merge with a
  /// shard, job_attempts < 1), and std::runtime_error when a job fails
  /// permanently without keep_going or the store cannot be written —
  /// the message names the failing job's grid coordinates and
  /// replicate; remaining jobs are abandoned.
  ExperimentResult run(const ExperimentSpec& spec) const;

 private:
  RunnerOptions options_;
};

/// One-shot convenience: Runner{{.jobs = jobs}}.run(spec).
ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs = 1);

/// One-shot convenience with the full campaign option set.
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const RunnerOptions& options);

/// Builds RunnerOptions from the shared bench flags (--jobs, --shard,
/// --cache, --store, --cache-compact, --merge, --progress,
/// --progress-interval, --trace-out, --job-timeout, --job-attempts,
/// --keep-going; see util::Cli::with_bench_defaults).
/// Throws std::runtime_error on a malformed --shard or --store;
/// cross-option consistency (--merge needs --cache, ...) is enforced
/// by Runner::run.
RunnerOptions options_from_cli(const util::Cli& cli);

}  // namespace bas::exp
