#pragma once
// Machine-readable sinks for experiment results.
//
// Both formats emit one record per cell with the axis labels and the
// full per-metric statistics (count, mean, stddev, min, max, sum).
// Doubles render with %.17g, so equal results are byte-identical files —
// the property the determinism guarantee (runner.hpp) is verified
// against: a sweep written at --jobs 1 and --jobs 4 diffs empty.

#include <string>

#include "exp/experiment.hpp"

namespace bas::exp {

/// The engine's canonical double rendering: %.17g, the shortest fixed
/// precision that round-trips every finite double. The sinks AND both
/// campaign-store backends (store/store.hpp) must share it — the
/// shard/merge/resume byte-identity contract breaks if their precisions
/// ever diverge.
std::string format_double(double value);

/// Long-format CSV: header `axis...,metric_stat...`, one row per cell.
std::string to_csv(const ExperimentResult& result);

/// JSON object with the title, axes, metric names and a cells array.
std::string to_json(const ExperimentResult& result);

/// Writes CSV — or JSON when `path` ends in ".json". Throws
/// std::runtime_error when the file cannot be opened.
void write(const ExperimentResult& result, const std::string& path);

}  // namespace bas::exp
