#include "exp/experiment.hpp"

#include <stdexcept>

namespace bas::exp {

ExperimentResult::ExperimentResult(std::string title, Grid grid,
                                   std::vector<std::string> metric_names,
                                   int replicates)
    : title_(std::move(title)),
      grid_(std::move(grid)),
      metric_names_(std::move(metric_names)),
      replicates_(replicates) {
  cells_.resize(grid_.cell_count());
  for (auto& cell : cells_) {
    cell.metrics.resize(metric_names_.size());
  }
}

std::size_t ExperimentResult::metric_index(const std::string& name) const {
  for (std::size_t i = 0; i < metric_names_.size(); ++i) {
    if (metric_names_[i] == name) {
      return i;
    }
  }
  throw std::out_of_range("unknown metric '" + name + "' in experiment '" +
                          title_ + "'");
}

const util::Accumulator& ExperimentResult::at(std::size_t cell,
                                              std::size_t metric) const {
  return cells_.at(cell).metrics.at(metric);
}

util::Table ExperimentResult::table(int precision) const {
  std::vector<std::string> headers;
  for (const auto& axis : grid_.axes()) {
    headers.push_back(axis.name);
  }
  for (const auto& name : metric_names_) {
    headers.push_back(name);
  }
  util::Table table(std::move(headers));
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    std::vector<std::string> row = grid_.labels(c);
    for (std::size_t m = 0; m < metric_names_.size(); ++m) {
      row.push_back(util::Table::num(mean(c, m), precision));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace bas::exp
