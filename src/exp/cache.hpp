#pragma once
// Stage 2's resume cache: an append-only JSONL store of per-job metrics.
//
// Every record is one line
//
//   {"fp":"<16-hex fingerprint>","job":<index>,"metrics":[<%.17g>...]}
//
// keyed on (spec fingerprint, job index). Doubles render with %.17g and
// parse back bit-identically, so a result folded from cached rows is
// byte-for-byte the result of a fresh run. Records are flushed line by
// line: a killed campaign loses at most its in-flight jobs, and load()
// simply skips a torn final line.
//
// Writers never share a file — each (fingerprint, writer tag) pair
// appends to its own `<fingerprint>[-<tag>].jsonl` — so concurrent shard
// processes can point at the same --cache DIR. load() scans every
// *.jsonl file in the directory and filters records by fingerprint,
// which is also what makes `--merge` work: shard outputs and resumed
// runs are just more files in the pool.

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bas::exp {

class ResultCache {
 public:
  /// Opens the cache in `dir` (created if missing) for one spec
  /// fingerprint. `tag` distinguishes this writer's file from other
  /// processes appending to the same directory (e.g. "s0of2"); pass ""
  /// for an unsharded run. Throws std::runtime_error when the directory
  /// cannot be created.
  ResultCache(std::string dir, std::uint64_t fingerprint, std::string tag);

  /// Scans every *.jsonl file in the directory and returns the metrics
  /// of all records whose fingerprint matches and whose metric count is
  /// `metric_count`. Stale-fingerprint records, malformed lines and torn
  /// tails are skipped silently; duplicate job indices keep the record
  /// read last.
  std::map<std::size_t, std::vector<double>> load(
      std::size_t metric_count) const;

  /// Appends one record to this writer's file and flushes. Thread-safe.
  /// Throws std::runtime_error when the file cannot be opened.
  void append(std::size_t job_index, const std::vector<double>& metrics);

  /// The file this writer appends to (inside the cache directory).
  const std::string& write_path() const noexcept { return write_path_; }

 private:
  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::string write_path_;
  std::mutex mutex_;
  std::ofstream out_;
};

/// What compact_cache() did, for progress notes and tests.
struct CompactionStats {
  std::size_t files_scanned = 0;
  std::size_t files_removed = 0;
  std::size_t records_seen = 0;
  std::size_t records_kept = 0;
};

/// Rewrites cache directory `dir` into a single `<fingerprint>.jsonl`
/// holding exactly one record per job index: re-run duplicates are
/// deduped (the surviving record is the one load() would have served),
/// and records with stale fingerprints, the wrong metric arity or torn
/// tails are dropped. Every other *.jsonl file — shard partials,
/// resumed-run appendixes, dead campaigns — is removed. The compacted
/// file is written to a temp name, renamed into place, and only then
/// are the old files removed, so a kill at any instant leaves the
/// directory loading to the same records. Callers must be the only
/// process touching `dir` — compacting while another writer appends
/// discards that writer's file (Runner::run therefore rejects
/// compaction from a shard). A missing directory is a no-op (zero
/// stats). Throws std::runtime_error when the compacted file cannot be
/// written.
CompactionStats compact_cache(const std::string& dir,
                              std::uint64_t fingerprint,
                              std::size_t metric_count);

}  // namespace bas::exp
